package privacymaxent

import (
	"bytes"
	"math"
	"testing"

	"privacymaxent/internal/dataset"
)

// TestFacadeEndToEnd drives the whole library through the public surface
// only: build a table, publish it, mine rules, quantify, score.
func TestFacadeEndToEnd(t *testing.T) {
	gender := NewAttribute("Gender", QuasiIdentifier, []string{"male", "female"})
	zip := NewAttribute("Zip", QuasiIdentifier, []string{"13244", "13210", "13203"})
	disease := NewAttribute("Disease", Sensitive, []string{"Flu", "HIV", "Cancer", "Cold", "Asthma"})
	schema, err := NewSchema(gender, zip, disease)
	if err != nil {
		t.Fatal(err)
	}
	tbl := NewTable(schema)
	diseases := disease.Domain
	for i := 0; i < 60; i++ {
		g := []string{"male", "female"}[i%2]
		z := zip.Domain[i%3]
		d := diseases[(i+i/5)%5]
		if err := tbl.Append(g, z, d); err != nil {
			t.Fatal(err)
		}
	}

	pub, _, err := Anatomize(tbl, BucketOptions{L: 3, ExemptMostFrequent: true})
	if err != nil {
		t.Fatal(err)
	}
	rules, err := MineRules(tbl, MineOptions{MinSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	truth, err := TrueConditional(tbl, pub.Universe())
	if err != nil {
		t.Fatal(err)
	}

	q := New(Config{Diversity: 3, MinSupport: 2})
	rep, err := q.QuantifyWithRules(pub, rules, Bound{KPos: 5, KNeg: 5}, truth)
	if err != nil {
		t.Fatal(err)
	}
	if rep.EstimationAccuracy < 0 {
		t.Fatalf("accuracy = %g", rep.EstimationAccuracy)
	}
	if d := MaxDisclosure(rep.Posterior); d <= 0 || d > 1+1e-9 {
		t.Fatalf("disclosure = %g", d)
	}
	acc, err := EstimationAccuracy(truth, rep.Posterior)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(acc-rep.EstimationAccuracy) > 1e-12 {
		t.Fatalf("facade metric %g != report metric %g", acc, rep.EstimationAccuracy)
	}
}

func TestFacadeRunOnPaperExample(t *testing.T) {
	tbl := dataset.PaperExample()
	q := New(Config{Diversity: 3, MinSupport: 1})
	rep, err := q.Run(tbl, Bound{KNeg: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Bound.KNeg != 2 {
		t.Fatalf("bound = %+v", rep.Bound)
	}
	if len(rep.Knowledge) != 2 {
		t.Fatalf("knowledge = %d, want 2", len(rep.Knowledge))
	}
}

func TestTopKFacade(t *testing.T) {
	tbl := dataset.PaperExample()
	rules, err := MineRules(tbl, MineOptions{MinSupport: 1})
	if err != nil {
		t.Fatal(err)
	}
	top := TopK(rules, 1, 1)
	if len(top) != 2 {
		t.Fatalf("TopK = %d rules, want 2", len(top))
	}
}

// TestFacadeNewSubstrates exercises the generalization, randomization,
// worst-case and serialization entry points through the facade only.
func TestFacadeNewSubstrates(t *testing.T) {
	tbl := dataset.PaperExample()

	pub, classes, err := Generalize(tbl, 3)
	if err != nil {
		t.Fatal(err)
	}
	if pub.NumBuckets() != len(classes) || pub.N() != tbl.Len() {
		t.Fatalf("generalize shape: %d buckets, %d classes", pub.NumBuckets(), len(classes))
	}
	if tc := TCloseness(pub); tc < 0 || tc > 1 {
		t.Fatalf("TCloseness = %g", tc)
	}
	if p, err := WorstCaseDisclosure(pub, 0); err != nil || p <= 0 || p > 1 {
		t.Fatalf("WorstCaseDisclosure = %g, %v", p, err)
	}

	perturbed, mech, err := Randomize(tbl, 0.8, 3)
	if err != nil {
		t.Fatal(err)
	}
	post, err := RandomizedPosterior(perturbed, mech, 0, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if post.NumSA() != tbl.Schema().SA().Cardinality() {
		t.Fatalf("posterior SA cardinality = %d", post.NumSA())
	}

	var buf bytes.Buffer
	if err := WritePublishedJSON(&buf, pub); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPublishedJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != pub.N() {
		t.Fatalf("round trip N = %d, want %d", back.N(), pub.N())
	}

	buf.Reset()
	ks := []DistributionKnowledge{{
		Attrs:  []int{tbl.Schema().Index("Gender")},
		Values: []int{0},
		SA:     0,
		P:      0.25,
	}}
	if err := WriteKnowledgeJSON(&buf, tbl.Schema(), ks); err != nil {
		t.Fatal(err)
	}
	got, err := ParseKnowledgeJSON(&buf, tbl.Schema())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].P != 0.25 {
		t.Fatalf("knowledge round trip = %+v", got)
	}
}
