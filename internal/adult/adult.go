// Package adult generates a synthetic stand-in for the UCI Adult data set
// the paper evaluates on. The real data cannot be bundled here, so we
// reproduce the properties the experiments actually depend on: the same
// schema shape (8 categorical quasi-identifiers and the 16-value
// `education` sensitive attribute), a skewed education marginal, and
// strong QI↔SA correlations so that high-confidence positive and negative
// association rules exist at every subset size T — exactly what the
// Top-(K+, K−) bound needs to bite in Figures 5 and 6.
//
// Generation is deterministic for a given Config, so experiments and
// benchmarks are reproducible.
package adult

import (
	"math/rand"

	"privacymaxent/internal/dataset"
)

// Education is the sensitive attribute's domain, matching UCI Adult's 16
// education levels, ordered roughly by frequency in the real data.
var Education = []string{
	"HS-grad", "Some-college", "Bachelors", "Masters", "Assoc-voc",
	"11th", "Assoc-acdm", "10th", "7th-8th", "Prof-school",
	"9th", "12th", "Doctorate", "5th-6th", "1st-4th", "Preschool",
}

// educationWeights is the skewed marginal (unnormalized), shaped like the
// real Adult distribution where HS-grad dominates.
// Compared with the real marginal, Some-college is softened below 1/5 so
// that strict 5-diversity with only the most frequent value exempted stays
// satisfiable (a record share above 1/L of a non-exempt value cannot avoid
// repeating in some bucket of L records).
var educationWeights = []float64{
	32, 17, 14, 6, 4.5,
	4, 3.5, 3, 2.2, 2,
	1.7, 1.4, 1.3, 1.1, 0.6, 0.2,
}

// QI attribute domains (8 quasi-identifiers, as in the paper's setup).
var (
	ageGroups = []string{"17-22", "23-28", "29-34", "35-40", "41-46", "47-52", "53-58", "59-64", "65+"}
	workclass = []string{"Private", "Self-emp", "Self-emp-inc", "Federal-gov", "Local-gov", "State-gov", "Unemployed"}
	marital   = []string{"Married", "Never-married", "Divorced", "Separated", "Widowed", "Married-spouse-absent", "Married-AF"}
	occups    = []string{
		"Craft-repair", "Prof-specialty", "Exec-managerial", "Adm-clerical", "Sales",
		"Other-service", "Machine-op-inspct", "Transport-moving", "Handlers-cleaners",
		"Farming-fishing", "Tech-support", "Protective-serv", "Priv-house-serv", "Armed-Forces",
	}
	relations = []string{"Husband", "Not-in-family", "Own-child", "Unmarried", "Wife", "Other-relative"}
	races     = []string{"White", "Black", "Asian-Pac-Islander", "Amer-Indian-Eskimo", "Other"}
	sexes     = []string{"Male", "Female"}
	countries = []string{"United-States", "Mexico", "Philippines", "Germany", "Canada", "India", "England", "Cuba", "China", "Other"}
)

// Config parameterizes generation.
type Config struct {
	// Records is the number of rows; the paper uses 14,210. Default 1000.
	Records int
	// Seed drives the deterministic PRNG. Zero means seed 1.
	Seed int64
	// Correlation in [0, 1] is the probability that each QI attribute is
	// drawn from its education-conditioned distribution instead of its
	// base distribution. Higher correlation yields stronger association
	// rules (more informative background knowledge). Default 0.7; use a
	// negative value to force 0.
	Correlation float64
}

func (c Config) withDefaults() Config {
	if c.Records <= 0 {
		c.Records = 1000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	switch {
	case c.Correlation < 0:
		c.Correlation = 0
	case c.Correlation == 0:
		c.Correlation = 0.7
	case c.Correlation > 1:
		c.Correlation = 1
	}
	return c
}

// Schema returns the Adult-like schema: 8 QI attributes plus the
// `education` sensitive attribute.
func Schema() *dataset.Schema {
	return dataset.MustSchema(
		dataset.NewAttribute("age", dataset.QuasiIdentifier, ageGroups),
		dataset.NewAttribute("workclass", dataset.QuasiIdentifier, workclass),
		dataset.NewAttribute("marital-status", dataset.QuasiIdentifier, marital),
		dataset.NewAttribute("occupation", dataset.QuasiIdentifier, occups),
		dataset.NewAttribute("relationship", dataset.QuasiIdentifier, relations),
		dataset.NewAttribute("race", dataset.QuasiIdentifier, races),
		dataset.NewAttribute("sex", dataset.QuasiIdentifier, sexes),
		dataset.NewAttribute("native-country", dataset.QuasiIdentifier, countries),
		dataset.NewAttribute("education", dataset.Sensitive, Education),
	)
}

// eduTier buckets the 16 education codes into 4 coarse tiers used to tilt
// the conditional QI distributions: 0 = advanced (Masters, Prof-school,
// Doctorate), 1 = college (Bachelors, Some-college, Assoc-*), 2 = high
// school (HS-grad, 11th, 10th, 12th, 9th), 3 = low.
func eduTier(edu int) int {
	switch Education[edu] {
	case "Masters", "Prof-school", "Doctorate":
		return 0
	case "Bachelors", "Some-college", "Assoc-voc", "Assoc-acdm":
		return 1
	case "HS-grad", "11th", "10th", "12th", "9th":
		return 2
	default:
		return 3
	}
}

// tiltTables gives, per QI attribute, per education tier, an unnormalized
// weight vector over the attribute's domain. These encode the real-world
// correlations the rules pick up: advanced degrees skew professional
// occupations, older ages, government/self-employment, etc.
var tiltTables = map[string][4][]float64{
	"age": {
		{0.5, 1, 2, 3, 3, 2.5, 2, 1.5, 1}, // advanced: older
		{1, 3, 3, 2.5, 2, 1.5, 1, 0.7, 0.5},
		{2, 2.5, 2, 2, 2, 1.5, 1.2, 1, 0.8},
		{3, 2, 1.5, 1.5, 1.5, 1.5, 1.2, 1, 1},
	},
	"workclass": {
		{4, 2, 2, 2.5, 2.5, 2.5, 0.3}, // advanced: gov + self-emp-inc
		{8, 1.5, 1, 1.5, 1.5, 1.5, 0.7},
		{9, 1.2, 0.5, 0.7, 0.9, 0.8, 1.2},
		{8, 1, 0.3, 0.4, 0.6, 0.5, 2.5},
	},
	"occupation": {
		{1, 10, 6, 1, 1.5, 0.5, 0.3, 0.3, 0.2, 0.3, 2, 0.7, 0.1, 0.1}, // advanced: professional
		{2, 4, 4, 3, 3, 1.5, 1, 1, 0.7, 0.7, 2.5, 1.2, 0.2, 0.1},
		{5, 0.7, 1.5, 2.5, 2.5, 3, 3, 2.5, 2.5, 1.5, 0.7, 1.2, 0.4, 0.1},
		{4, 0.2, 0.5, 1, 1.5, 4, 3.5, 2.5, 3.5, 3, 0.2, 0.7, 1.2, 0.1},
	},
	"marital-status": {
		{4, 1.5, 1, 0.3, 0.3, 0.3, 0.1},
		{3, 2.5, 1.2, 0.4, 0.3, 0.3, 0.1},
		{3, 2.5, 1.5, 0.6, 0.6, 0.4, 0.1},
		{2.5, 3, 1.2, 0.8, 0.8, 0.6, 0.1},
	},
	"relationship": {
		{4, 2, 0.5, 1, 1.5, 0.5},
		{3, 2.5, 1.5, 1.5, 1.2, 0.6},
		{3, 2.5, 2, 1.5, 1, 0.8},
		{2.5, 2.5, 2.5, 1.5, 0.8, 1.2},
	},
	"race": {
		{10, 0.8, 1.5, 0.2, 0.3},
		{9, 1.2, 1, 0.3, 0.4},
		{8.5, 1.5, 0.5, 0.4, 0.5},
		{7.5, 1.8, 0.6, 0.5, 1},
	},
	"sex": {
		{2, 1},
		{1.3, 1},
		{1.5, 1},
		{1.4, 1},
	},
	"native-country": {
		{20, 0.3, 0.5, 0.4, 0.5, 1, 0.4, 0.2, 0.6, 1},
		{20, 0.5, 0.6, 0.4, 0.5, 0.6, 0.4, 0.3, 0.4, 1},
		{18, 1.2, 0.4, 0.4, 0.4, 0.2, 0.3, 0.4, 0.3, 1},
		{12, 3, 0.6, 0.2, 0.2, 0.3, 0.1, 0.6, 0.8, 2},
	},
}

// baseTables gives the unconditional (tier-free) weight per attribute,
// used with probability 1 − Correlation.
var baseTables = map[string][]float64{
	"age":            {2, 2.5, 2.3, 2.2, 2, 1.7, 1.4, 1, 0.9},
	"workclass":      {8, 1.3, 0.7, 1, 1.2, 1.1, 1},
	"occupation":     {3, 3, 3, 2.5, 2.5, 2.3, 1.5, 1.2, 1, 0.7, 0.7, 0.5, 0.1, 0.05},
	"marital-status": {3, 2.5, 1.3, 0.5, 0.5, 0.4, 0.1},
	"relationship":   {3, 2.5, 1.5, 1.2, 1, 0.7},
	"race":           {8.5, 1.3, 0.8, 0.3, 0.5},
	"sex":            {1.5, 1},
	"native-country": {18, 1, 0.5, 0.4, 0.4, 0.4, 0.3, 0.3, 0.4, 1.3},
}

// Generate builds the synthetic table. Rows are drawn independently:
// education first from its skewed marginal, then each QI attribute either
// from its education-tier-conditioned weights (probability Correlation) or
// from its base weights.
func Generate(cfg Config) *dataset.Table {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	schema := Schema()
	t := dataset.NewTable(schema)

	saPos := schema.SAIndex()
	row := make([]int, schema.Len())
	for r := 0; r < cfg.Records; r++ {
		edu := sampleWeighted(rng, educationWeights)
		tier := eduTier(edu)
		row[saPos] = edu
		for pos := 0; pos < schema.Len(); pos++ {
			if pos == saPos {
				continue
			}
			name := schema.Attr(pos).Name
			var w []float64
			if rng.Float64() < cfg.Correlation {
				w = tiltTables[name][tier]
			} else {
				w = baseTables[name]
			}
			row[pos] = sampleWeighted(rng, w)
		}
		if err := t.AppendCoded(row); err != nil {
			panic(err) // all codes are produced within domain bounds
		}
	}
	return t
}

// sampleWeighted draws an index proportionally to the (unnormalized)
// weights.
func sampleWeighted(rng *rand.Rand, w []float64) int {
	var total float64
	for _, v := range w {
		total += v
	}
	u := rng.Float64() * total
	for i, v := range w {
		u -= v
		if u < 0 {
			return i
		}
	}
	return len(w) - 1
}
