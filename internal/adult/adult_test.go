package adult

import (
	"math"
	"math/rand"
	"testing"

	"privacymaxent/internal/assoc"
	"privacymaxent/internal/bucket"
	"privacymaxent/internal/dataset"
)

func TestSchemaShape(t *testing.T) {
	s := Schema()
	if got := s.NumQI(); got != 8 {
		t.Fatalf("NumQI = %d, want 8 (paper's setup)", got)
	}
	if got := s.SA().Cardinality(); got != 16 {
		t.Fatalf("SA cardinality = %d, want 16 education levels", got)
	}
	if s.SA().Name != "education" {
		t.Fatalf("SA = %q, want education", s.SA().Name)
	}
}

func TestTiltTablesMatchDomains(t *testing.T) {
	s := Schema()
	for _, pos := range s.QIIndices() {
		attr := s.Attr(pos)
		tilts, ok := tiltTables[attr.Name]
		if !ok {
			t.Fatalf("no tilt table for %q", attr.Name)
		}
		for tier, w := range tilts {
			if len(w) != attr.Cardinality() {
				t.Fatalf("%q tier %d has %d weights, domain has %d", attr.Name, tier, len(w), attr.Cardinality())
			}
		}
		base, ok := baseTables[attr.Name]
		if !ok || len(base) != attr.Cardinality() {
			t.Fatalf("%q base table has %d weights, domain has %d", attr.Name, len(base), attr.Cardinality())
		}
	}
	if len(educationWeights) != len(Education) {
		t.Fatalf("education weights %d, domain %d", len(educationWeights), len(Education))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Records: 200, Seed: 7})
	b := Generate(Config{Records: 200, Seed: 7})
	if a.Len() != b.Len() {
		t.Fatal("lengths differ")
	}
	for r := 0; r < a.Len(); r++ {
		for c := 0; c < a.Schema().Len(); c++ {
			if a.Row(r)[c] != b.Row(r)[c] {
				t.Fatalf("cell (%d,%d) differs across runs", r, c)
			}
		}
	}
	c := Generate(Config{Records: 200, Seed: 8})
	same := true
	for r := 0; r < a.Len() && same; r++ {
		for i := range a.Row(r) {
			if a.Row(r)[i] != c.Row(r)[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical tables")
	}
}

func TestGenerateDefaults(t *testing.T) {
	tbl := Generate(Config{})
	if tbl.Len() != 1000 {
		t.Fatalf("default records = %d, want 1000", tbl.Len())
	}
}

func TestEducationMarginalSkewed(t *testing.T) {
	tbl := Generate(Config{Records: 8000, Seed: 3})
	counts := make([]int, len(Education))
	for r := 0; r < tbl.Len(); r++ {
		counts[tbl.SACode(r)]++
	}
	hs := tbl.Schema().SA().MustCode("HS-grad")
	pre := tbl.Schema().SA().MustCode("Preschool")
	if counts[hs] < 5*counts[pre] {
		t.Fatalf("marginal not skewed: HS-grad %d vs Preschool %d", counts[hs], counts[pre])
	}
	// Rough agreement with the configured marginal (HS-grad ≈ 32%).
	frac := float64(counts[hs]) / float64(tbl.Len())
	if math.Abs(frac-0.32) > 0.05 {
		t.Fatalf("HS-grad fraction = %g, want ≈ 0.32", frac)
	}
}

// TestCorrelationProducesStrongRules checks the property the experiments
// rely on: the generator yields high-confidence association rules, and
// more of them than an uncorrelated table.
func TestCorrelationProducesStrongRules(t *testing.T) {
	corr := Generate(Config{Records: 3000, Seed: 5, Correlation: 0.9})
	flat := Generate(Config{Records: 3000, Seed: 5, Correlation: -1})

	strong := func(tbl *dataset.Table) int {
		rules, err := assoc.Mine(tbl, assoc.Options{MinSupport: 3, Sizes: []int{1}})
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for i := range rules {
			if rules[i].Positive && rules[i].Confidence >= 0.4 {
				n++
			}
		}
		return n
	}
	sc, sf := strong(corr), strong(flat)
	if sc <= sf {
		t.Fatalf("correlated table has %d strong positive rules, uncorrelated has %d", sc, sf)
	}
}

// TestBucketizable ensures the generated data passes through the paper's
// 5-diversity Anatomy pipeline (with the footnote-3 exemption).
func TestBucketizable(t *testing.T) {
	tbl := Generate(Config{Records: 2000, Seed: 11})
	d, _, err := bucket.Anatomize(tbl, bucket.Options{L: 5, ExemptMostFrequent: true})
	if err != nil {
		t.Fatal(err)
	}
	exempt := bucket.ExemptValues(tbl, 5)
	if err := bucket.CheckDiversity(d, 5, exempt...); err != nil {
		t.Fatal(err)
	}
	// Bucket count is about N/5, as in the paper (14210 -> 2842).
	want := tbl.Len() / 5
	if d.NumBuckets() < want*9/10 || d.NumBuckets() > want {
		t.Fatalf("buckets = %d, want ≈ %d", d.NumBuckets(), want)
	}
}

func TestSampleWeighted(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := []float64{0, 0, 5}
	for i := 0; i < 50; i++ {
		if got := sampleWeighted(rng, w); got != 2 {
			t.Fatalf("sampleWeighted = %d, want 2", got)
		}
	}
	// Frequencies roughly proportional to weights.
	w = []float64{1, 3}
	counts := [2]int{}
	for i := 0; i < 40000; i++ {
		counts[sampleWeighted(rng, w)]++
	}
	ratio := float64(counts[1]) / float64(counts[0])
	if math.Abs(ratio-3) > 0.3 {
		t.Fatalf("weight ratio = %g, want ≈ 3", ratio)
	}
}

func TestEduTierCoversDomain(t *testing.T) {
	seen := map[int]bool{}
	for e := range Education {
		tier := eduTier(e)
		if tier < 0 || tier > 3 {
			t.Fatalf("eduTier(%d) = %d out of range", e, tier)
		}
		seen[tier] = true
	}
	if len(seen) != 4 {
		t.Fatalf("education tiers used: %v, want all 4", seen)
	}
}
