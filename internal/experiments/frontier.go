package experiments

import (
	"context"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"
	"sync"

	"privacymaxent/internal/assoc"
	"privacymaxent/internal/bucket"
	"privacymaxent/internal/core"
	"privacymaxent/internal/dataset"
	"privacymaxent/internal/errs"
	"privacymaxent/internal/scheme"
)

// FrontierPoint is one (scheme, parameter) sample of the privacy–utility
// frontier: the same original table published under one mechanism at one
// parameter setting, quantified by the same adversary.
type FrontierPoint struct {
	// Scheme is the mechanism's wire name; Param a compact parameter
	// label ("l=4", "rho=0.6").
	Scheme string
	Param  string
	// Disclosure is max P*(s|q) under the Top-(K+, K−) mined knowledge —
	// the worst-case linking confidence an informed adversary reaches.
	Disclosure float64
	// EntropyBits is the adversary's residual posterior entropy (bits)
	// under the same knowledge.
	EntropyBits float64
	// Utility is the paper's estimation-accuracy metric against the
	// knowledge-free posterior: the weighted KL distance between the true
	// P(S|Q) and what the published view alone supports. Lower means the
	// view preserves more of the distribution — better utility.
	Utility float64
	// Converged reports whether both solves behind the point converged;
	// boxed (randomized-response) solves with conflicting exact knowledge
	// may stop at the iteration cap.
	Converged bool
}

// frontierSweep is the default parameter grid: three settings per
// scheme, ordered weakest to strongest disguise.
func frontierSweep(seed int64) []struct {
	sch   scheme.Scheme
	param string
} {
	var out []struct {
		sch   scheme.Scheme
		param string
	}
	for _, l := range []int{2, 4, 6} {
		out = append(out, struct {
			sch   scheme.Scheme
			param string
		}{scheme.NewAnatomy(l), "l=" + strconv.Itoa(l)})
	}
	for _, k := range []int{2, 5, 10} {
		out = append(out, struct {
			sch   scheme.Scheme
			param string
		}{scheme.NewMondrian(k), "k=" + strconv.Itoa(k)})
	}
	for _, rho := range []float64{0.9, 0.6, 0.3} {
		out = append(out, struct {
			sch   scheme.Scheme
			param string
		}{scheme.NewRandomizedResponse(rho, seed), fmt.Sprintf("rho=%.1f", rho)})
	}
	return out
}

// Frontier sweeps every publication scheme over its parameter grid and
// quantifies each published view twice under the identical pipeline: once
// with the Top-(kPos, kNeg) mined rules for the disclosure axis, once
// knowledge-free and truth-scored for the utility axis. Because every
// mechanism flows through the same PrepareScheme→Quantify path with the
// same rule pool, the resulting (disclosure, utility) points are directly
// comparable across mechanisms — the frontier a publisher picks from.
//
// The published views are derived fresh from the instance's original
// table (the instance's own Anatomy view is not reused), and each sweep
// point builds one core.Prepared shared by both of its solves. Points
// run concurrently under Config.Workers.
func Frontier(in *Instance, kPos, kNeg int) ([]FrontierPoint, error) {
	sweep := frontierSweep(in.Config.Seed)
	points := make([]FrontierPoint, len(sweep))
	errs := make([]error, len(sweep))

	sem := make(chan struct{}, in.Config.workerCount())
	var wg sync.WaitGroup
	for i := range sweep {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			points[i], errs[i] = in.frontierPoint(sweep[i].sch, sweep[i].param, kPos, kNeg)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("experiments: frontier %s %s: %w", sweep[i].sch.Name(), sweep[i].param, err)
		}
	}
	return points, nil
}

// frontierPoint evaluates one (scheme, parameter) setting.
func (in *Instance) frontierPoint(sch scheme.Scheme, param string, kPos, kNeg int) (FrontierPoint, error) {
	ctx := context.Background()
	view, err := sch.Publish(in.Table)
	if err != nil {
		return FrontierPoint{}, fmt.Errorf("publish: %w", err)
	}
	truth, err := dataset.TrueConditional(in.Table, view.Universe())
	if err != nil {
		return FrontierPoint{}, fmt.Errorf("truth: %w", err)
	}
	p, err := in.quantifier().PrepareScheme(ctx, view, sch)
	if err != nil {
		return FrontierPoint{}, fmt.Errorf("prepare: %w", err)
	}
	// Utility: the knowledge-free posterior scored against the truth.
	base, err := p.QuantifyContext(ctx, nil, truth)
	if err != nil {
		return FrontierPoint{}, fmt.Errorf("utility solve: %w", err)
	}
	// Disclosure: the same view under the shared Top-K rule pool. For
	// boxed (noisy) views the pool is first filtered to rules the view's
	// structural support can satisfy: exact knowledge mined from the
	// original table can contradict a perturbed view (a flipped singleton
	// group pins probability the rule says is zero), and the adversary
	// model keeps only the knowledge consistent with what they observe.
	rules := in.Rules
	if scheme.Boxed(sch) {
		rules = compatibleRules(view, rules)
	}
	informed, err := p.QuantifyWithRules(ctx, rules, core.Bound{KPos: kPos, KNeg: kNeg}, nil, nil)
	for err != nil && scheme.Boxed(sch) && errors.Is(err, errs.ErrInfeasible) && (kPos > 0 || kNeg > 0) {
		// The single-row filter above cannot catch joint infeasibility:
		// presolve interaction between several exact rules and a perturbed
		// view's pinned cells can still contradict. Back the knowledge off
		// (halving Top-K) until a consistent prefix solves — the adversary
		// keeps the strongest knowledge set the observation supports.
		kPos, kNeg = kPos/2, kNeg/2
		informed, err = p.QuantifyWithRules(ctx, rules, core.Bound{KPos: kPos, KNeg: kNeg}, nil, nil)
	}
	if err != nil {
		return FrontierPoint{}, fmt.Errorf("disclosure solve: %w", err)
	}
	return FrontierPoint{
		Scheme:      sch.Name(),
		Param:       param,
		Disclosure:  informed.MaxDisclosure,
		EntropyBits: informed.PosteriorEntropy,
		Utility:     base.EstimationAccuracy,
		Converged:   base.Solution.Stats.Converged && informed.Solution.Stats.Converged,
	}, nil
}

// compatibleRules filters a mined rule pool to the statements a
// published view's term space can satisfy. For each rule P(s|Qv) = p the
// feasible range of Σ P(q, s, B) over the view is an interval: at most
// the mass of the matching (q, b) cells where s appears at all, and at
// least the mass of cells where s is the bucket's only SA value (those
// are structurally pinned to the full cell mass). Rules whose target
// p·P(Qv) falls outside that interval are single-row infeasible over the
// view and are dropped. Rules conditioning on QI values absent from the
// view are vacuous and dropped too.
func compatibleRules(d *bucket.Bucketized, rules []assoc.Rule) []assoc.Rule {
	u := d.Universe()
	qiPos := make(map[int]int, len(d.Schema().QIIndices()))
	for i, p := range d.Schema().QIIndices() {
		qiPos[p] = i
	}
	matches := func(r *assoc.Rule, qid int) bool {
		codes := u.Codes(qid)
		for i, a := range r.Attrs {
			if codes[qiPos[a]] != r.Values[i] {
				return false
			}
		}
		return true
	}
	const tol = 1e-9
	out := make([]assoc.Rule, 0, len(rules))
	for i := range rules {
		r := &rules[i]
		var pinned, reach, pqv float64
		for qid := 0; qid < u.Len(); qid++ {
			if !matches(r, qid) {
				continue
			}
			pqv += u.P(qid)
			for _, b := range d.BucketsWithQID(qid) {
				sas := d.Bucket(b).DistinctSAs()
				for _, s := range sas {
					if s == r.SA {
						reach += d.PQB(qid, b)
						if len(sas) == 1 {
							pinned += d.PQB(qid, b)
						}
						break
					}
				}
			}
		}
		if pqv == 0 {
			continue
		}
		if target := r.PSA() * pqv; target < pinned-tol || target > reach+tol {
			continue
		}
		out = append(out, rules[i])
	}
	return out
}

// WriteFrontierCSV writes the frontier as CSV (header + one row per
// point) — the artifact the CI frontier-smoke job uploads.
func WriteFrontierCSV(w io.Writer, points []FrontierPoint) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"scheme", "param", "disclosure", "entropy_bits", "utility_kl", "converged"}); err != nil {
		return err
	}
	for _, p := range points {
		if err := cw.Write([]string{
			p.Scheme,
			p.Param,
			strconv.FormatFloat(p.Disclosure, 'g', 8, 64),
			strconv.FormatFloat(p.EntropyBits, 'g', 8, 64),
			strconv.FormatFloat(p.Utility, 'g', 8, 64),
			strconv.FormatBool(p.Converged),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// PrintFrontier renders the frontier as an aligned text table.
func PrintFrontier(w io.Writer, points []FrontierPoint) error {
	if _, err := fmt.Fprintf(w, "%-20s %-9s %12s %13s %12s %s\n",
		"SCHEME", "PARAM", "DISCLOSURE", "ENTROPY(BITS)", "UTILITY(KL)", "CONVERGED"); err != nil {
		return err
	}
	for _, p := range points {
		if _, err := fmt.Fprintf(w, "%-20s %-9s %12.6f %13.6f %12.6f %v\n",
			p.Scheme, p.Param, p.Disclosure, p.EntropyBits, p.Utility, p.Converged); err != nil {
			return err
		}
	}
	return nil
}
