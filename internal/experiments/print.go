package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"privacymaxent/internal/core"
)

// PrintSeries renders series as an aligned text table with one row per x
// value and one column per series — the textual equivalent of the paper's
// plots.
func PrintSeries(w io.Writer, title, xLabel string, series []Series) error {
	if _, err := fmt.Fprintf(w, "== %s ==\n", title); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "%s", xLabel)
	for _, s := range series {
		fmt.Fprintf(tw, "\t%s", s.Name)
	}
	fmt.Fprintln(tw)

	// Collect the union of x values in first-seen order.
	var xs []float64
	seen := map[float64]bool{}
	for _, s := range series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	for _, x := range xs {
		fmt.Fprintf(tw, "%g", x)
		for _, s := range series {
			val, ok := lookup(s, x)
			if ok {
				fmt.Fprintf(tw, "\t%.6g", val)
			} else {
				fmt.Fprintf(tw, "\t-")
			}
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

func lookup(s Series, x float64) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}

// PrintAlgorithmComparison renders the solver ablation.
func PrintAlgorithmComparison(w io.Writer, results []AlgorithmResult) error {
	if _, err := fmt.Fprintln(w, "== Solver comparison (Malouf-style, Sec. 3.3) =="); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "algorithm\titerations\tseconds\tmax violation\tconverged")
	for _, r := range results {
		fmt.Fprintf(tw, "%v\t%d\t%.4f\t%.2e\t%v\n", r.Algorithm, r.Iterations, r.Duration.Seconds(), r.MaxViolation, r.Converged)
	}
	return tw.Flush()
}

// PrintDecomposition renders the Sec. 5.5 ablation.
func PrintDecomposition(w io.Writer, results []DecompositionResult) error {
	if _, err := fmt.Fprintln(w, "== Irrelevant-bucket optimization (Sec. 5.5) =="); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "decomposed\tactive vars\tirrelevant buckets\tseconds\testimation accuracy\tformulate s\tsolve s\tscore s")
	for _, r := range results {
		fmt.Fprintf(tw, "%v\t%d\t%d\t%.4f\t%.6g\t%.4f\t%.4f\t%.4f\n",
			r.Decomposed, r.ActiveVariables, r.IrrelevantBuckets, r.Duration.Seconds(), r.Accuracy,
			r.Timings.Get(core.StageFormulate).Seconds(), r.Timings.Get(core.StageSolve).Seconds(),
			r.Timings.Get(core.StageScore).Seconds())
	}
	return tw.Flush()
}
