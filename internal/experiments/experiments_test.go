package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"privacymaxent/internal/audit"
	"privacymaxent/internal/maxent"
)

// smallInstance keeps test runtime reasonable while preserving the
// qualitative shapes the figures show.
func smallInstance(t *testing.T) *Instance {
	t.Helper()
	in, err := NewInstance(Config{Records: 400, Seed: 2, MaxRuleSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestNewInstance(t *testing.T) {
	in := smallInstance(t)
	if in.Data.NumBuckets() != 80 {
		t.Fatalf("buckets = %d, want 80", in.Data.NumBuckets())
	}
	if len(in.Rules) == 0 {
		t.Fatal("no rules mined")
	}
}

// TestFigure5Shape verifies the paper's headline curve shapes: accuracy
// decreases (estimation improves) as K grows, and the mixed (K+, K−)
// curve is at or below the single-polarity curves at the largest K.
func TestFigure5Shape(t *testing.T) {
	in := smallInstance(t)
	series, err := Figure5(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatalf("series = %d, want 3", len(series))
	}
	for _, s := range series {
		if len(s.Points) < 3 {
			t.Fatalf("series %q has %d points", s.Name, len(s.Points))
		}
		first := s.Points[0].Y
		last := s.Points[len(s.Points)-1].Y
		if last > first {
			t.Fatalf("series %q: accuracy rose from %g to %g; more knowledge must not hurt the adversary", s.Name, first, last)
		}
		// The K = 0 anchor is the same for every curve.
		if s.Points[0].X != 0 {
			t.Fatalf("series %q does not start at K=0", s.Name)
		}
	}
	base := series[0].Points[0].Y
	for _, s := range series[1:] {
		if s.Points[0].Y != base {
			t.Fatalf("K=0 anchors differ: %g vs %g", s.Points[0].Y, base)
		}
	}
	// Mixed knowledge is the most informative at the end of the sweep
	// (the paper: "the curve for (K+, K−) drops the fastest").
	end := func(i int) float64 { return series[i].Points[len(series[i].Points)-1].Y }
	if end(2) > end(0)+1e-9 || end(2) > end(1)+1e-9 {
		t.Fatalf("mixed curve ends at %g, above K-=%g or K+=%g", end(2), end(0), end(1))
	}
}

func TestFigure6Shape(t *testing.T) {
	in := smallInstance(t)
	series, err := Figure6(in, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatalf("series = %d, want 3 (T=1..3)", len(series))
	}
	for _, s := range series {
		if len(s.Points) == 0 {
			t.Fatalf("series %q empty", s.Name)
		}
		first, last := s.Points[0].Y, s.Points[len(s.Points)-1].Y
		if last > first {
			t.Fatalf("series %q: accuracy rose with more knowledge", s.Name)
		}
	}
}

func TestFigure7aShape(t *testing.T) {
	in := smallInstance(t)
	series, err := Figure7a(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("series = %d, want 2 (time, iterations)", len(series))
	}
	for _, s := range series {
		if len(s.Points) < 2 {
			t.Fatalf("series %q has %d points", s.Name, len(s.Points))
		}
		for _, p := range s.Points {
			if p.Y < 0 {
				t.Fatalf("series %q has negative value %g", s.Name, p.Y)
			}
		}
	}
}

func TestFigure7bcShape(t *testing.T) {
	timeS, iterS, err := Figure7bc(Config{Records: 400, Seed: 2, MaxRuleSize: 2}, []int{20, 40, 80}, []int{0, 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(timeS) != 2 || len(iterS) != 2 {
		t.Fatalf("series = %d/%d, want 2/2", len(timeS), len(iterS))
	}
	// Zero-knowledge solves take zero iterations only if presolve does
	// everything; what the paper shows is a roughly flat iteration curve.
	// Here we simply require every x grid point to be present.
	for _, s := range append(timeS, iterS...) {
		if len(s.Points) != 3 {
			t.Fatalf("series %q has %d points, want 3", s.Name, len(s.Points))
		}
	}
}

func TestCompareAlgorithms(t *testing.T) {
	in := smallInstance(t)
	res, err := CompareAlgorithms(in, 20, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 5 {
		t.Fatalf("results = %d, want 5", len(res))
	}
	var lbfgs, steepest AlgorithmResult
	for _, r := range res {
		if r.MaxViolation > 1e-4 {
			t.Fatalf("%v violation %g", r.Algorithm, r.MaxViolation)
		}
		switch r.Algorithm {
		case maxent.LBFGS:
			lbfgs = r
		case maxent.SteepestDescent:
			steepest = r
		}
	}
	// Malouf's finding, reproduced: LBFGS needs no more iterations than
	// steepest descent.
	if lbfgs.Iterations > steepest.Iterations {
		t.Fatalf("LBFGS took %d iterations, steepest descent %d", lbfgs.Iterations, steepest.Iterations)
	}
}

func TestCompareDecomposition(t *testing.T) {
	in := smallInstance(t)
	res, err := CompareDecomposition(in, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("results = %d, want 2", len(res))
	}
	dec, full := res[0], res[1]
	if !dec.Decomposed || full.Decomposed {
		t.Fatal("result order: want decomposed first")
	}
	if dec.IrrelevantBuckets == 0 {
		t.Fatal("expected irrelevant buckets with only 6 rules")
	}
	if dec.ActiveVariables >= full.ActiveVariables {
		t.Fatalf("decomposition did not shrink: %d vs %d", dec.ActiveVariables, full.ActiveVariables)
	}
	// Same answer either way.
	if diff := dec.Accuracy - full.Accuracy; diff > 1e-4 || diff < -1e-4 {
		t.Fatalf("accuracy differs: %g vs %g", dec.Accuracy, full.Accuracy)
	}
}

func TestBaselineAccuracy(t *testing.T) {
	in := smallInstance(t)
	acc, distinct, entropy, err := BaselineAccuracy(in)
	if err != nil {
		t.Fatal(err)
	}
	if acc <= 0 {
		t.Fatalf("baseline accuracy = %g, want > 0 (bucketization hides information)", acc)
	}
	if distinct < 1 || entropy <= 0 {
		t.Fatalf("diversity scores: distinct=%d entropy=%g", distinct, entropy)
	}
}

func TestPrintSeries(t *testing.T) {
	series := []Series{
		{Name: "a", Points: []Point{{X: 0, Y: 1}, {X: 10, Y: 0.5}}},
		{Name: "b", Points: []Point{{X: 0, Y: 1}}},
	}
	var buf bytes.Buffer
	if err := PrintSeries(&buf, "demo", "K", series); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"demo", "K", "a", "b", "0.5", "-"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestPrintAblations(t *testing.T) {
	var buf bytes.Buffer
	if err := PrintAlgorithmComparison(&buf, []AlgorithmResult{{Algorithm: maxent.LBFGS, Iterations: 3}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "lbfgs") {
		t.Fatalf("missing algorithm name: %s", buf.String())
	}
	buf.Reset()
	if err := PrintDecomposition(&buf, []DecompositionResult{{Decomposed: true, ActiveVariables: 5}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "true") {
		t.Fatalf("missing row: %s", buf.String())
	}
}

func TestFigure5CustomKGrid(t *testing.T) {
	in := smallInstance(t)
	series, err := Figure5(in, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range series {
		if len(s.Points) != 2 || s.Points[0].X != 0 || s.Points[1].X != 10 {
			t.Fatalf("series %q grid = %+v, want [0 10]", s.Name, s.Points)
		}
	}
}

func TestFigure6CustomKGrid(t *testing.T) {
	in := smallInstance(t)
	series, err := Figure6(in, 2, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range series {
		if len(s.Points) != 2 {
			t.Fatalf("series %q has %d points, want 2", s.Name, len(s.Points))
		}
	}
}

func TestDefaultKSweep(t *testing.T) {
	got := defaultKSweep(120)
	want := []int{0, 5, 10, 25, 50, 100}
	if len(got) != len(want) {
		t.Fatalf("sweep = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sweep = %v, want %v", got, want)
		}
	}
	if got := defaultKSweep(0); len(got) != 1 || got[0] != 0 {
		t.Fatalf("empty-pool sweep = %v, want [0]", got)
	}
}

func TestSeriesLookup(t *testing.T) {
	s := Series{Points: []Point{{X: 1, Y: 2}}}
	if v, ok := lookup(s, 1); !ok || v != 2 {
		t.Fatalf("lookup hit = %g, %v", v, ok)
	}
	if _, ok := lookup(s, 3); ok {
		t.Fatal("lookup miss should report false")
	}
}

// TestAuditDir: with Config.AuditDir set, every performance-figure grid
// point and every solver-ablation algorithm leaves a readable audit
// snapshot with a trajectory.
func TestAuditDir(t *testing.T) {
	dir := t.TempDir()
	in, err := NewInstance(Config{Records: 400, Seed: 2, MaxRuleSize: 2, AuditDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.solveWithTopK(20, "figure7a_k20"); err != nil {
		t.Fatal(err)
	}
	if _, err := CompareAlgorithms(in, 20, []maxent.Algorithm{maxent.LBFGS, maxent.GIS}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"figure7a_k20", "solvers_lbfgs_k20", "solvers_gis_k20"} {
		a, err := audit.ReadFile(filepath.Join(dir, name+".json"))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(a.Families) == 0 {
			t.Fatalf("%s: no family breakdown", name)
		}
		if len(a.Trajectory) == 0 || a.Trajectory[len(a.Trajectory)-1].Index != a.Iterations {
			t.Fatalf("%s: trajectory %d points, %d iterations", name, len(a.Trajectory), a.Iterations)
		}
	}
	// Audits stay off without the config knob.
	plain, err := NewInstance(Config{Records: 400, Seed: 2, MaxRuleSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plain.solveWithTopK(20, "figure7a_k20_unaudited"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "figure7a_k20_unaudited.json")); !os.IsNotExist(err) {
		t.Fatal("audit written without AuditDir")
	}
}
