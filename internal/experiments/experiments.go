// Package experiments regenerates the data series behind every figure in
// the paper's evaluation (Sec. 7): Figure 5 (estimation accuracy vs the
// amount of background knowledge, for positive, negative and mixed
// association rules), Figure 6 (the effect of the number of QI attributes
// T in the knowledge), and Figures 7(a)–(c) (running time and iteration
// counts versus knowledge size and data size). It also provides the two
// ablations DESIGN.md calls out: the solver comparison the paper cites
// from Malouf, and the Sec. 5.5 irrelevant-bucket optimization.
//
// The paper's full-size experiment (14,210 records, knowledge sweeps to
// 3·10⁵ rules, 2008-era C++) is scaled down by default so the whole suite
// runs in seconds; Config restores any size. Shapes, not absolute
// numbers, are the reproduction target.
package experiments

import (
	"fmt"
	"time"

	"privacymaxent/internal/adult"
	"privacymaxent/internal/assoc"
	"privacymaxent/internal/bucket"
	"privacymaxent/internal/constraint"
	"privacymaxent/internal/core"
	"privacymaxent/internal/dataset"
	"privacymaxent/internal/maxent"
	"privacymaxent/internal/metrics"
	"privacymaxent/internal/solver"
)

// Config sizes an experiment run.
type Config struct {
	// Records is the synthetic Adult table size. Default 1500 (paper:
	// 14,210).
	Records int
	// Seed drives data generation. Default 1.
	Seed int64
	// Diversity is the bucket size / L parameter. Default 5 (paper).
	Diversity int
	// MinSupport is the rule-support threshold. Default 3 (paper).
	MinSupport int
	// MaxRuleSize caps the QI-subset size mined for knowledge. Default 3
	// (mining all 8 sizes is only needed for Figure 6; the accuracy
	// figures saturate well before that).
	MaxRuleSize int
	// MaxIterations bounds the LBFGS iterations of the accuracy solves.
	// Default 6000; paper-scale sweeps with heavily coupled knowledge can
	// need more to avoid boundary-convergence artifacts in the KL metric.
	MaxIterations int
}

func (c Config) withDefaults() Config {
	if c.Records <= 0 {
		c.Records = 1500
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Diversity <= 0 {
		c.Diversity = 5
	}
	if c.MinSupport <= 0 {
		c.MinSupport = 3
	}
	if c.MaxRuleSize <= 0 {
		c.MaxRuleSize = 3
	}
	if c.MaxIterations <= 0 {
		c.MaxIterations = 6000
	}
	return c
}

// Point is one (x, y) sample of a series.
type Point struct {
	X float64
	Y float64
}

// Series is a named curve, as plotted in the paper's figures.
type Series struct {
	Name   string
	Points []Point
}

// Instance bundles the generated workload every figure shares: the
// original data D, its bucketization D′, the true conditional, and the
// mined rule pool.
type Instance struct {
	Config Config
	Table  *dataset.Table
	Data   *bucket.Bucketized
	Truth  *dataset.Conditional
	Rules  []assoc.Rule
}

// NewInstance generates and prepares the workload.
func NewInstance(cfg Config) (*Instance, error) {
	cfg = cfg.withDefaults()
	tbl := adult.Generate(adult.Config{Records: cfg.Records, Seed: cfg.Seed})
	d, _, err := bucket.Anatomize(tbl, bucket.Options{L: cfg.Diversity, ExemptMostFrequent: true})
	if err != nil {
		return nil, fmt.Errorf("experiments: bucketize: %w", err)
	}
	truth, err := dataset.TrueConditional(tbl, d.Universe())
	if err != nil {
		return nil, fmt.Errorf("experiments: truth: %w", err)
	}
	sizes := make([]int, 0, cfg.MaxRuleSize)
	for k := 1; k <= cfg.MaxRuleSize && k <= tbl.Schema().NumQI(); k++ {
		sizes = append(sizes, k)
	}
	rules, err := assoc.Mine(tbl, assoc.Options{MinSupport: cfg.MinSupport, Sizes: sizes})
	if err != nil {
		return nil, fmt.Errorf("experiments: mining: %w", err)
	}
	return &Instance{Config: cfg, Table: tbl, Data: d, Truth: truth, Rules: rules}, nil
}

// quantifier builds the standard pipeline configuration.
func (in *Instance) quantifier() *core.Quantifier {
	return core.New(core.Config{
		Diversity:  in.Config.Diversity,
		MinSupport: in.Config.MinSupport,
		Solve: maxent.Options{
			Solver: solver.Options{MaxIterations: in.Config.MaxIterations, GradTol: 1e-8},
		},
	})
}

// accuracyAt runs one quantification under the Top-(kPos, kNeg) bound and
// returns the estimation accuracy.
func (in *Instance) accuracyAt(rules []assoc.Rule, kPos, kNeg int) (float64, error) {
	rep, err := in.quantifier().QuantifyWithRules(in.Data, rules, core.Bound{KPos: kPos, KNeg: kNeg}, in.Truth)
	if err != nil {
		return 0, err
	}
	return rep.EstimationAccuracy, nil
}

// defaultKSweep produces the K grid for accuracy figures, scaled to the
// available rule pool: 0 plus roughly geometric steps.
func defaultKSweep(maxRules int) []int {
	grid := []int{0, 5, 10, 25, 50, 100, 200, 400, 800, 1600, 3200}
	out := grid[:0]
	for _, k := range grid {
		if k <= maxRules {
			out = append(out, k)
		}
	}
	return out
}

// Figure5 reproduces "Positive and negative association rules":
// estimation accuracy versus K for the K− curve (K negative rules), the
// K+ curve (K positive rules), and the (K+, K−) curve (K/2 of each).
// ks overrides the K grid; nil uses the default sweep.
func Figure5(in *Instance, ks ...int) ([]Series, error) {
	pos, neg := assoc.Split(in.Rules)
	maxK := len(pos)
	if len(neg) < maxK {
		maxK = len(neg)
	}
	if len(ks) == 0 {
		ks = defaultKSweep(maxK)
	}
	series := []Series{{Name: "K-"}, {Name: "K+"}, {Name: "(K+, K-)"}}
	for _, k := range ks {
		accNeg, err := in.accuracyAt(in.Rules, 0, k)
		if err != nil {
			return nil, fmt.Errorf("figure5 K-=%d: %w", k, err)
		}
		accPos, err := in.accuracyAt(in.Rules, k, 0)
		if err != nil {
			return nil, fmt.Errorf("figure5 K+=%d: %w", k, err)
		}
		accMix, err := in.accuracyAt(in.Rules, k/2, k-k/2)
		if err != nil {
			return nil, fmt.Errorf("figure5 mix=%d: %w", k, err)
		}
		series[0].Points = append(series[0].Points, Point{X: float64(k), Y: accNeg})
		series[1].Points = append(series[1].Points, Point{X: float64(k), Y: accPos})
		series[2].Points = append(series[2].Points, Point{X: float64(k), Y: accMix})
	}
	return series, nil
}

// Figure6 reproduces "Number of QI attributes in knowledge": estimation
// accuracy versus K where the knowledge contains only rules with exactly
// T QI attributes, one series per T from 1 to maxT. ks overrides the K
// grid; nil uses the default sweep per T.
func Figure6(in *Instance, maxT int, ks ...int) ([]Series, error) {
	if maxT <= 0 {
		maxT = in.Table.Schema().NumQI()
	}
	var series []Series
	for t := 1; t <= maxT; t++ {
		rules, err := assoc.Mine(in.Table, assoc.Options{MinSupport: in.Config.MinSupport, Sizes: []int{t}})
		if err != nil {
			return nil, fmt.Errorf("figure6 T=%d: %w", t, err)
		}
		pos, neg := assoc.Split(rules)
		maxK := len(pos)
		if len(neg) < maxK {
			maxK = len(neg)
		}
		grid := ks
		if len(grid) == 0 {
			grid = defaultKSweep(2 * maxK)
		}
		s := Series{Name: fmt.Sprintf("T=%d", t)}
		for _, k := range grid {
			acc, err := in.accuracyAt(rules, k/2, k-k/2)
			if err != nil {
				return nil, fmt.Errorf("figure6 T=%d K=%d: %w", t, k, err)
			}
			s.Points = append(s.Points, Point{X: float64(k), Y: acc})
		}
		series = append(series, s)
	}
	return series, nil
}

// solveWithTopK builds the constraint system for the Top-K mixed bound
// and solves it without decomposition (as the paper's performance section
// notes, the Sec. 5.5 optimizations are off in Figure 7), returning the
// solver statistics.
func (in *Instance) solveWithTopK(k int) (maxent.Stats, error) {
	sp := constraint.NewSpace(in.Data)
	sys := constraint.DataInvariants(sp, constraint.InvariantOptions{DropRedundant: true})
	selected := assoc.TopK(in.Rules, k/2, k-k/2)
	for i := range selected {
		kn := selected[i].Knowledge()
		c, err := kn.Constraint(sp)
		if err != nil {
			return maxent.Stats{}, err
		}
		if err := sys.Add(c); err != nil {
			return maxent.Stats{}, err
		}
	}
	sol, err := maxent.Solve(sys, maxent.Options{Solver: solver.Options{MaxIterations: 3000, GradTol: 1e-6}})
	if err != nil {
		return maxent.Stats{}, err
	}
	return sol.Stats, nil
}

// Figure7a reproduces "Performance vs. Knowledge": running time (seconds)
// and iteration count versus the number of background-knowledge
// constraints, on a fixed data set. The x grid is geometric, matching the
// paper's log-scaled axis.
func Figure7a(in *Instance) ([]Series, error) {
	grid := []int{10, 30, 100, 300, 1000, 3000, 10000}
	timeSeries := Series{Name: "Running time (seconds)"}
	iterSeries := Series{Name: "Number of iterations"}
	for _, k := range grid {
		if k > len(in.Rules) {
			break
		}
		stats, err := in.solveWithTopK(k)
		if err != nil {
			return nil, fmt.Errorf("figure7a K=%d: %w", k, err)
		}
		timeSeries.Points = append(timeSeries.Points, Point{X: float64(k), Y: stats.Duration.Seconds()})
		iterSeries.Points = append(iterSeries.Points, Point{X: float64(k), Y: float64(stats.Iterations)})
	}
	return []Series{timeSeries, iterSeries}, nil
}

// Figure7bc reproduces "Running time vs. Data Size" and "Iteration vs.
// Data Size": for each knowledge budget (number of constraints), sweep
// the number of buckets by growing the data set. It returns the running
// time series (Figure 7b) and iteration series (Figure 7c), one per
// knowledge budget.
func Figure7bc(cfg Config, bucketCounts []int, constraintCounts []int) (timeSeries, iterSeries []Series, err error) {
	cfg = cfg.withDefaults()
	if len(bucketCounts) == 0 {
		bucketCounts = []int{50, 100, 200, 400}
	}
	if len(constraintCounts) == 0 {
		constraintCounts = []int{0, 100, 1000}
	}
	for _, kc := range constraintCounts {
		timeSeries = append(timeSeries, Series{Name: fmt.Sprintf("#Constraints = %d", kc)})
		iterSeries = append(iterSeries, Series{Name: fmt.Sprintf("#Constraints = %d", kc)})
	}
	for _, nb := range bucketCounts {
		sub := cfg
		sub.Records = nb * cfg.Diversity
		in, err := NewInstance(sub)
		if err != nil {
			return nil, nil, fmt.Errorf("figure7bc buckets=%d: %w", nb, err)
		}
		for ci, kc := range constraintCounts {
			stats, err := in.solveWithTopK(kc)
			if err != nil {
				return nil, nil, fmt.Errorf("figure7bc buckets=%d constraints=%d: %w", nb, kc, err)
			}
			x := float64(in.Data.NumBuckets())
			timeSeries[ci].Points = append(timeSeries[ci].Points, Point{X: x, Y: stats.Duration.Seconds()})
			iterSeries[ci].Points = append(iterSeries[ci].Points, Point{X: x, Y: float64(stats.Iterations)})
		}
	}
	return timeSeries, iterSeries, nil
}

// AlgorithmComparison is the Malouf-style ablation the paper cites in
// Sec. 3.3: solve the same Top-K problem with each dual algorithm and
// report (iterations, seconds, max violation).
type AlgorithmResult struct {
	Algorithm    maxent.Algorithm
	Iterations   int
	Duration     time.Duration
	MaxViolation float64
	Converged    bool
}

// CompareAlgorithms runs LBFGS, GIS, steepest descent and Newton on the
// instance's Top-K problem.
func CompareAlgorithms(in *Instance, k int, algs []maxent.Algorithm) ([]AlgorithmResult, error) {
	if len(algs) == 0 {
		algs = []maxent.Algorithm{maxent.LBFGS, maxent.GIS, maxent.IIS, maxent.SteepestDescent, maxent.Newton}
	}
	var out []AlgorithmResult
	for _, alg := range algs {
		sp := constraint.NewSpace(in.Data)
		sys := constraint.DataInvariants(sp, constraint.InvariantOptions{DropRedundant: true})
		selected := assoc.TopK(in.Rules, k/2, k-k/2)
		for i := range selected {
			kn := selected[i].Knowledge()
			c, err := kn.Constraint(sp)
			if err != nil {
				return nil, err
			}
			if err := sys.Add(c); err != nil {
				return nil, err
			}
		}
		// Decompose so Newton's dense Hessian only sees the relevant
		// buckets' constraints.
		sol, err := maxent.Solve(sys, maxent.Options{
			Algorithm: alg,
			Decompose: true,
			Solver:    solver.Options{MaxIterations: 3000, GradTol: 1e-7},
		})
		if err != nil {
			return nil, fmt.Errorf("algorithm %v: %w", alg, err)
		}
		out = append(out, AlgorithmResult{
			Algorithm:    alg,
			Iterations:   sol.Stats.Iterations,
			Duration:     sol.Stats.Duration,
			MaxViolation: sol.Stats.MaxViolation,
			Converged:    sol.Stats.Converged,
		})
	}
	return out, nil
}

// DecompositionAblation measures the Sec. 5.5 optimization: the same
// Top-K solve with and without the irrelevant-bucket decomposition.
type DecompositionResult struct {
	Decomposed        bool
	ActiveVariables   int
	IrrelevantBuckets int
	Duration          time.Duration
	Accuracy          float64
	// Timings is the per-stage breakdown of the quantification (select,
	// formulate, solve, score) — the Figure-7 running-time decomposition.
	Timings core.Timings
}

// CompareDecomposition quantifies with and without decomposition.
func CompareDecomposition(in *Instance, k int) ([]DecompositionResult, error) {
	var out []DecompositionResult
	for _, dec := range []bool{true, false} {
		q := core.New(core.Config{
			Diversity:   in.Config.Diversity,
			MinSupport:  in.Config.MinSupport,
			NoDecompose: !dec,
			Solve: maxent.Options{
				Solver: solver.Options{MaxIterations: 6000, GradTol: 1e-8},
			},
		})
		rep, err := q.QuantifyWithRules(in.Data, in.Rules, core.Bound{KPos: k / 2, KNeg: k - k/2}, in.Truth)
		if err != nil {
			return nil, err
		}
		out = append(out, DecompositionResult{
			Decomposed:        dec,
			ActiveVariables:   rep.Solution.Stats.ActiveVariables,
			IrrelevantBuckets: rep.Solution.Stats.IrrelevantBuckets,
			Duration:          rep.Solution.Stats.Duration,
			Accuracy:          rep.EstimationAccuracy,
			Timings:           rep.Timings,
		})
	}
	return out, nil
}

// StageBreakdown runs one Top-K quantification per knowledge budget and
// returns the per-stage running time as series (one per pipeline stage,
// x = constraint count) — the Figure-7 running-time panel refined by
// stage, taken from Report.Timings instead of external re-timing.
func StageBreakdown(in *Instance, ks []int) ([]Series, error) {
	if len(ks) == 0 {
		ks = []int{10, 30, 100, 300, 1000}
	}
	stages := []string{core.StageSelect, core.StageFormulate, core.StageSolve, core.StageScore}
	series := make([]Series, len(stages))
	for i, st := range stages {
		series[i] = Series{Name: st}
	}
	q := in.quantifier()
	for _, k := range ks {
		if k > len(in.Rules) {
			break
		}
		rep, err := q.QuantifyWithRules(in.Data, in.Rules, core.Bound{KPos: k / 2, KNeg: k - k/2}, in.Truth)
		if err != nil {
			return nil, fmt.Errorf("stage breakdown K=%d: %w", k, err)
		}
		for i, st := range stages {
			series[i].Points = append(series[i].Points, Point{X: float64(k), Y: rep.Timings.Get(st).Seconds()})
		}
	}
	return series, nil
}

// BaselineAccuracy reports the no-knowledge estimation accuracy plus
// bucket-level diversity scores, the reference point of every curve.
func BaselineAccuracy(in *Instance) (accuracy float64, distinctL int, entropyL float64, err error) {
	acc, err := in.accuracyAt(in.Rules, 0, 0)
	if err != nil {
		return 0, 0, 0, err
	}
	return acc, metrics.DistinctDiversity(in.Data), metrics.EntropyDiversity(in.Data), nil
}
