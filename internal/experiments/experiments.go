// Package experiments regenerates the data series behind every figure in
// the paper's evaluation (Sec. 7): Figure 5 (estimation accuracy vs the
// amount of background knowledge, for positive, negative and mixed
// association rules), Figure 6 (the effect of the number of QI attributes
// T in the knowledge), and Figures 7(a)–(c) (running time and iteration
// counts versus knowledge size and data size). It also provides the two
// ablations DESIGN.md calls out: the solver comparison the paper cites
// from Malouf, and the Sec. 5.5 irrelevant-bucket optimization.
//
// The paper's full-size experiment (14,210 records, knowledge sweeps to
// 3·10⁵ rules, 2008-era C++) is scaled down by default so the whole suite
// runs in seconds; Config restores any size. Shapes, not absolute
// numbers, are the reproduction target.
package experiments

import (
	"context"
	"fmt"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"privacymaxent/internal/adult"
	"privacymaxent/internal/assoc"
	"privacymaxent/internal/audit"
	"privacymaxent/internal/bucket"
	"privacymaxent/internal/constraint"
	"privacymaxent/internal/core"
	"privacymaxent/internal/dataset"
	"privacymaxent/internal/maxent"
	"privacymaxent/internal/metrics"
	"privacymaxent/internal/solver"
)

// Config sizes an experiment run.
type Config struct {
	// Records is the synthetic Adult table size. Default 1500 (paper:
	// 14,210).
	Records int
	// Seed drives data generation. Default 1.
	Seed int64
	// Diversity is the bucket size / L parameter. Default 5 (paper).
	Diversity int
	// MinSupport is the rule-support threshold. Default 3 (paper).
	MinSupport int
	// MaxRuleSize caps the QI-subset size mined for knowledge. Default 3
	// (mining all 8 sizes is only needed for Figure 6; the accuracy
	// figures saturate well before that).
	MaxRuleSize int
	// MaxIterations bounds the LBFGS iterations of the accuracy solves.
	// Default 6000; paper-scale sweeps with heavily coupled knowledge can
	// need more to avoid boundary-convergence artifacts in the KL metric.
	MaxIterations int
	// Workers bounds how many independent grid evaluations run
	// concurrently in the sweep figures (the three Figure 5 curves per K,
	// the Figure 6 per-T series, Figure 7bc instance generation). It
	// follows the maxent convention: zero means runtime.GOMAXPROCS(0),
	// negative (or 1) runs sequentially. The timing figures' solves
	// themselves are never run concurrently — wall-clock is their y-axis.
	Workers int
	// KernelWorkers is passed through to maxent.Options.KernelWorkers: it
	// shards the dual gradient/exp kernels inside each solve. Zero inherits
	// the solve's resolved worker count, negative forces serial kernels.
	// Kernel sharding is bit-deterministic, so it never changes a figure —
	// but it does change the wall-clock the timing figures measure, which
	// is exactly why it is exposed here (serial-vs-parallel A/B runs).
	KernelWorkers int
	// Reduce is passed through to maxent.Options.Reduce: the structural
	// presolve (closed-form untouched buckets + Schur-reduced dual).
	Reduce bool
	// FastMath is passed through to maxent.Options.FastMath: reassociated
	// multi-accumulator dual kernels.
	FastMath bool
	// AuditDir, when non-empty, writes one solve-audit JSON per grid
	// point of the performance figures (7a/7bc) and per algorithm of the
	// solver ablation into this directory, named after the point
	// (figure7a_k100.json, solvers_gis_k50.json, ...). Audited solves run
	// with trajectory capture, so expect slightly different wall-clock on
	// the timing figures.
	AuditDir string
}

// workerCount resolves Config.Workers following the maxent convention.
func (c Config) workerCount() int {
	w := c.Workers
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		w = 1
	}
	return w
}

func (c Config) withDefaults() Config {
	if c.Records <= 0 {
		c.Records = 1500
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Diversity <= 0 {
		c.Diversity = 5
	}
	if c.MinSupport <= 0 {
		c.MinSupport = 3
	}
	if c.MaxRuleSize <= 0 {
		c.MaxRuleSize = 3
	}
	if c.MaxIterations <= 0 {
		c.MaxIterations = 6000
	}
	return c
}

// Point is one (x, y) sample of a series.
type Point struct {
	X float64
	Y float64
	// Converged reports whether the solve behind this point reached
	// GradTol within the iteration budget (false for capped solves and
	// for closed-form points with nothing to solve, where it is true).
	Converged bool
}

// Series is a named curve, as plotted in the paper's figures.
type Series struct {
	Name   string
	Points []Point
}

// Instance bundles the generated workload every figure shares: the
// original data D, its bucketization D′, the true conditional, and the
// mined rule pool.
type Instance struct {
	Config Config
	Table  *dataset.Table
	Data   *bucket.Bucketized
	Truth  *dataset.Conditional
	Rules  []assoc.Rule

	prepOnce sync.Once
	prep     *core.Prepared
	prepErr  error
}

// NewInstance generates and prepares the workload.
func NewInstance(cfg Config) (*Instance, error) {
	cfg = cfg.withDefaults()
	tbl := adult.Generate(adult.Config{Records: cfg.Records, Seed: cfg.Seed})
	d, _, err := bucket.Anatomize(tbl, bucket.Options{L: cfg.Diversity, ExemptMostFrequent: true})
	if err != nil {
		return nil, fmt.Errorf("experiments: bucketize: %w", err)
	}
	truth, err := dataset.TrueConditional(tbl, d.Universe())
	if err != nil {
		return nil, fmt.Errorf("experiments: truth: %w", err)
	}
	sizes := make([]int, 0, cfg.MaxRuleSize)
	for k := 1; k <= cfg.MaxRuleSize && k <= tbl.Schema().NumQI(); k++ {
		sizes = append(sizes, k)
	}
	rules, err := assoc.Mine(tbl, assoc.Options{MinSupport: cfg.MinSupport, Sizes: sizes, Workers: cfg.workerCount()})
	if err != nil {
		return nil, fmt.Errorf("experiments: mining: %w", err)
	}
	return &Instance{Config: cfg, Table: tbl, Data: d, Truth: truth, Rules: rules}, nil
}

// quantifier builds the standard pipeline configuration.
func (in *Instance) quantifier() *core.Quantifier {
	return core.New(core.Config{
		Diversity:  in.Config.Diversity,
		MinSupport: in.Config.MinSupport,
		Solve: maxent.Options{
			KernelWorkers: in.Config.KernelWorkers,
			Reduce:        in.Config.Reduce,
			FastMath:      in.Config.FastMath,
			Solver:        solver.Options{MaxIterations: in.Config.MaxIterations, GradTol: 1e-8},
		},
	})
}

// prepared returns the instance's cached core.Prepared: the term space
// and data-invariant base system, built once and shared by every grid
// point of every figure (the base depends only on the published data,
// never on the knowledge). Safe for concurrent use.
func (in *Instance) prepared() (*core.Prepared, error) {
	in.prepOnce.Do(func() {
		in.prep, in.prepErr = in.quantifier().Prepare(context.Background(), in.Data)
	})
	return in.prep, in.prepErr
}

// accuracyAt runs one quantification under the Top-(kPos, kNeg) bound and
// returns the estimation accuracy.
func (in *Instance) accuracyAt(rules []assoc.Rule, kPos, kNeg int) (float64, error) {
	p, err := in.prepared()
	if err != nil {
		return 0, err
	}
	rep, err := p.QuantifyWithRules(context.Background(), rules, core.Bound{KPos: kPos, KNeg: kNeg}, in.Truth, nil)
	if err != nil {
		return 0, err
	}
	return rep.EstimationAccuracy, nil
}

// defaultKSweep produces the K grid for accuracy figures, scaled to the
// available rule pool: 0 plus roughly geometric steps.
func defaultKSweep(maxRules int) []int {
	grid := []int{0, 5, 10, 25, 50, 100, 200, 400, 800, 1600, 3200}
	out := grid[:0]
	for _, k := range grid {
		if k <= maxRules {
			out = append(out, k)
		}
	}
	return out
}

// Figure5 reproduces "Positive and negative association rules":
// estimation accuracy versus K for the K− curve (K negative rules), the
// K+ curve (K positive rules), and the (K+, K−) curve (K/2 of each).
// ks overrides the K grid; nil uses the default sweep.
//
// All three solves share the instance's cached invariant base system
// (only the K knowledge rows are appended per grid point), each curve
// warm-starts from its own previous K point's duals, and the three
// curves of a K point run concurrently under Config.Workers. None of
// this changes the curves: warm starts and system reuse are pure
// performance devices (the MaxEnt optimum is start-independent).
func Figure5(in *Instance, ks ...int) ([]Series, error) {
	pos, neg := assoc.Split(in.Rules)
	maxK := len(pos)
	if len(neg) < maxK {
		maxK = len(neg)
	}
	if len(ks) == 0 {
		ks = defaultKSweep(maxK)
	}
	series := []Series{{Name: "K-"}, {Name: "K+"}, {Name: "(K+, K-)"}}
	// One warm-start chain per curve: curve ci at K seeds from curve ci
	// at the previous K, whose surviving rows are a near-superset.
	warm := make([][]maxent.ConstraintDual, len(series))
	workers := in.Config.workerCount()
	if workers > len(series) {
		workers = len(series)
	}
	sem := make(chan struct{}, workers)
	for _, k := range ks {
		bounds := []core.Bound{
			{KPos: 0, KNeg: k},
			{KPos: k, KNeg: 0},
			{KPos: k / 2, KNeg: k - k/2},
		}
		accs := make([]float64, len(series))
		convs := make([]bool, len(series))
		errs := make([]error, len(series))
		var wg sync.WaitGroup
		for ci := range series {
			wg.Add(1)
			sem <- struct{}{}
			go func(ci int) {
				defer wg.Done()
				defer func() { <-sem }()
				p, err := in.prepared()
				if err != nil {
					errs[ci] = err
					return
				}
				rep, err := p.QuantifyWithRules(context.Background(), in.Rules, bounds[ci], in.Truth, warm[ci])
				if err != nil {
					errs[ci] = err
					return
				}
				accs[ci] = rep.EstimationAccuracy
				convs[ci] = rep.Solution.Stats.Converged
				// Chain duals only from converged solves: a capped solve's
				// endpoint is start-dependent, so seeding the next point
				// from it would change the curve without saving iterations.
				// After a capped point the chain restarts cold.
				if rep.Solution.Stats.Converged {
					warm[ci] = rep.Solution.Duals
				} else {
					warm[ci] = nil
				}
			}(ci)
		}
		wg.Wait()
		for ci, err := range errs {
			if err != nil {
				return nil, fmt.Errorf("figure5 %s K=%d: %w", series[ci].Name, k, err)
			}
		}
		for ci := range series {
			series[ci].Points = append(series[ci].Points, Point{X: float64(k), Y: accs[ci], Converged: convs[ci]})
		}
	}
	return series, nil
}

// Figure6 reproduces "Number of QI attributes in knowledge": estimation
// accuracy versus K where the knowledge contains only rules with exactly
// T QI attributes, one series per T from 1 to maxT. ks overrides the K
// grid; nil uses the default sweep per T.
//
// The per-T series are independent and run concurrently under
// Config.Workers; within a series the K grid is swept sequentially so
// each point can warm-start from the previous one's duals. All solves
// share the instance's cached invariant base system.
func Figure6(in *Instance, maxT int, ks ...int) ([]Series, error) {
	if maxT <= 0 {
		maxT = in.Table.Schema().NumQI()
	}
	series := make([]Series, maxT)
	errs := make([]error, maxT)
	workers := in.Config.workerCount()
	if workers > maxT {
		workers = maxT
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for t := 1; t <= maxT; t++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(t int) {
			defer wg.Done()
			defer func() { <-sem }()
			series[t-1], errs[t-1] = in.figure6Series(t, ks)
		}(t)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return series, nil
}

// figure6Series sweeps the K grid for a single T, chaining warm starts
// from one K point to the next.
func (in *Instance) figure6Series(t int, ks []int) (Series, error) {
	rules, err := assoc.Mine(in.Table, assoc.Options{MinSupport: in.Config.MinSupport, Sizes: []int{t}})
	// Workers deliberately unset: the per-T series already run concurrently
	// under Config.Workers, so nested parallel mining would oversubscribe.
	if err != nil {
		return Series{}, fmt.Errorf("figure6 T=%d: %w", t, err)
	}
	pos, neg := assoc.Split(rules)
	maxK := len(pos)
	if len(neg) < maxK {
		maxK = len(neg)
	}
	grid := ks
	if len(grid) == 0 {
		grid = defaultKSweep(2 * maxK)
	}
	s := Series{Name: fmt.Sprintf("T=%d", t)}
	p, err := in.prepared()
	if err != nil {
		return Series{}, err
	}
	var warm []maxent.ConstraintDual
	for _, k := range grid {
		rep, err := p.QuantifyWithRules(context.Background(), rules, core.Bound{KPos: k / 2, KNeg: k - k/2}, in.Truth, warm)
		if err != nil {
			return Series{}, fmt.Errorf("figure6 T=%d K=%d: %w", t, k, err)
		}
		// As in Figure5, only converged solves extend the warm chain.
		if rep.Solution.Stats.Converged {
			warm = rep.Solution.Duals
		} else {
			warm = nil
		}
		s.Points = append(s.Points, Point{X: float64(k), Y: rep.EstimationAccuracy, Converged: rep.Solution.Stats.Converged})
	}
	return s, nil
}

// solveWithTopK builds the constraint system for the Top-K mixed bound
// and solves it without decomposition (as the paper's performance section
// notes, the Sec. 5.5 optimizations are off in Figure 7), returning the
// solver statistics. The invariant base comes from the cached Prepared
// overlay (only the K knowledge rows are appended per call), but the
// solve itself is deliberately cold — no warm start, no concurrency —
// because Figure 7's y-axis is exactly this solver cost. When
// Config.AuditDir is set, the solve is audited under auditName.
func (in *Instance) solveWithTopK(k int, auditName string) (maxent.Stats, error) {
	p, err := in.prepared()
	if err != nil {
		return maxent.Stats{}, err
	}
	sys := p.CloneSystem()
	selected := assoc.TopK(in.Rules, k/2, k-k/2)
	for i := range selected {
		kn := selected[i].Knowledge()
		c, err := kn.Constraint(p.Space())
		if err != nil {
			return maxent.Stats{}, err
		}
		if err := sys.Add(c); err != nil {
			return maxent.Stats{}, err
		}
	}
	opts := maxent.Options{
		KernelWorkers: in.Config.KernelWorkers,
		Reduce:        in.Config.Reduce,
		FastMath:      in.Config.FastMath,
		Solver:        solver.Options{MaxIterations: 3000, GradTol: 1e-6},
	}
	opts.CaptureTrace = in.Config.AuditDir != ""
	sol, err := maxent.Solve(sys, opts)
	if err != nil {
		return maxent.Stats{}, err
	}
	if err := in.writeAudit(auditName, sys, sol); err != nil {
		return maxent.Stats{}, err
	}
	return sol.Stats, nil
}

// writeAudit persists one per-point solve audit under Config.AuditDir
// (no-op when unset).
func (in *Instance) writeAudit(name string, sys *constraint.System, sol *maxent.Solution) error {
	if in.Config.AuditDir == "" || name == "" {
		return nil
	}
	a := audit.New(sys, sol, audit.Options{})
	path := filepath.Join(in.Config.AuditDir, name+".json")
	if err := a.WriteFile(path); err != nil {
		return fmt.Errorf("experiments: audit %s: %w", name, err)
	}
	return nil
}

// Figure7a reproduces "Performance vs. Knowledge": running time (seconds)
// and iteration count versus the number of background-knowledge
// constraints, on a fixed data set. The x grid is geometric, matching the
// paper's log-scaled axis.
func Figure7a(in *Instance) ([]Series, error) {
	grid := []int{10, 30, 100, 300, 1000, 3000, 10000}
	timeSeries := Series{Name: "Running time (seconds)"}
	iterSeries := Series{Name: "Number of iterations"}
	for _, k := range grid {
		if k > len(in.Rules) {
			break
		}
		stats, err := in.solveWithTopK(k, fmt.Sprintf("figure7a_k%d", k))
		if err != nil {
			return nil, fmt.Errorf("figure7a K=%d: %w", k, err)
		}
		timeSeries.Points = append(timeSeries.Points, Point{X: float64(k), Y: stats.Duration.Seconds()})
		iterSeries.Points = append(iterSeries.Points, Point{X: float64(k), Y: float64(stats.Iterations)})
	}
	return []Series{timeSeries, iterSeries}, nil
}

// Figure7bc reproduces "Running time vs. Data Size" and "Iteration vs.
// Data Size": for each knowledge budget (number of constraints), sweep
// the number of buckets by growing the data set. It returns the running
// time series (Figure 7b) and iteration series (Figure 7c), one per
// knowledge budget.
func Figure7bc(cfg Config, bucketCounts []int, constraintCounts []int) (timeSeries, iterSeries []Series, err error) {
	cfg = cfg.withDefaults()
	if len(bucketCounts) == 0 {
		bucketCounts = []int{50, 100, 200, 400}
	}
	if len(constraintCounts) == 0 {
		constraintCounts = []int{0, 100, 1000}
	}
	for _, kc := range constraintCounts {
		timeSeries = append(timeSeries, Series{Name: fmt.Sprintf("#Constraints = %d", kc)})
		iterSeries = append(iterSeries, Series{Name: fmt.Sprintf("#Constraints = %d", kc)})
	}
	// Instance generation (synthesize, bucketize, mine) is independent
	// across data sizes and runs concurrently under Config.Workers; the
	// timed solves below stay sequential so wall-clock measurements do
	// not contend for cores.
	ins := make([]*Instance, len(bucketCounts))
	errs := make([]error, len(bucketCounts))
	workers := cfg.workerCount()
	if workers > len(bucketCounts) {
		workers = len(bucketCounts)
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, nb := range bucketCounts {
		wg.Add(1)
		sem <- struct{}{}
		go func(i, nb int) {
			defer wg.Done()
			defer func() { <-sem }()
			sub := cfg
			sub.Records = nb * cfg.Diversity
			// Instances already generate concurrently here; serial mining
			// inside each avoids multiplying the two worker budgets.
			sub.Workers = -1
			ins[i], errs[i] = NewInstance(sub)
		}(i, nb)
	}
	wg.Wait()
	for i, nb := range bucketCounts {
		if errs[i] != nil {
			return nil, nil, fmt.Errorf("figure7bc buckets=%d: %w", nb, errs[i])
		}
	}
	for i := range bucketCounts {
		in := ins[i]
		for ci, kc := range constraintCounts {
			stats, err := in.solveWithTopK(kc, fmt.Sprintf("figure7bc_b%d_k%d", bucketCounts[i], kc))
			if err != nil {
				return nil, nil, fmt.Errorf("figure7bc buckets=%d constraints=%d: %w", bucketCounts[i], kc, err)
			}
			x := float64(in.Data.NumBuckets())
			timeSeries[ci].Points = append(timeSeries[ci].Points, Point{X: x, Y: stats.Duration.Seconds()})
			iterSeries[ci].Points = append(iterSeries[ci].Points, Point{X: x, Y: float64(stats.Iterations)})
		}
	}
	return timeSeries, iterSeries, nil
}

// AlgorithmComparison is the Malouf-style ablation the paper cites in
// Sec. 3.3: solve the same Top-K problem with each dual algorithm and
// report (iterations, seconds, max violation).
type AlgorithmResult struct {
	Algorithm    maxent.Algorithm
	Iterations   int
	Duration     time.Duration
	MaxViolation float64
	Converged    bool
}

// CompareAlgorithms runs LBFGS, GIS, steepest descent and Newton on the
// instance's Top-K problem.
func CompareAlgorithms(in *Instance, k int, algs []maxent.Algorithm) ([]AlgorithmResult, error) {
	if len(algs) == 0 {
		algs = []maxent.Algorithm{maxent.LBFGS, maxent.GIS, maxent.IIS, maxent.SteepestDescent, maxent.Newton}
	}
	// The system is knowledge-dependent but algorithm-independent: build
	// it once from the cached invariant base and reuse it for every
	// algorithm (Solve never mutates its input system).
	p, err := in.prepared()
	if err != nil {
		return nil, err
	}
	sys := p.CloneSystem()
	selected := assoc.TopK(in.Rules, k/2, k-k/2)
	for i := range selected {
		kn := selected[i].Knowledge()
		c, err := kn.Constraint(p.Space())
		if err != nil {
			return nil, err
		}
		if err := sys.Add(c); err != nil {
			return nil, err
		}
	}
	var out []AlgorithmResult
	for _, alg := range algs {
		// Decompose so Newton's dense Hessian only sees the relevant
		// buckets' constraints.
		sol, err := maxent.Solve(sys, maxent.Options{
			Algorithm:     alg,
			Decompose:     true,
			CaptureTrace:  in.Config.AuditDir != "",
			KernelWorkers: in.Config.KernelWorkers,
			Reduce:        in.Config.Reduce,
			FastMath:      in.Config.FastMath,
			Solver:        solver.Options{MaxIterations: 3000, GradTol: 1e-7},
		})
		if err != nil {
			return nil, fmt.Errorf("algorithm %v: %w", alg, err)
		}
		if err := in.writeAudit(fmt.Sprintf("solvers_%s_k%d", alg, k), sys, sol); err != nil {
			return nil, err
		}
		out = append(out, AlgorithmResult{
			Algorithm:    alg,
			Iterations:   sol.Stats.Iterations,
			Duration:     sol.Stats.Duration,
			MaxViolation: sol.Stats.MaxViolation,
			Converged:    sol.Stats.Converged,
		})
	}
	return out, nil
}

// DecompositionAblation measures the Sec. 5.5 optimization: the same
// Top-K solve with and without the irrelevant-bucket decomposition.
type DecompositionResult struct {
	Decomposed        bool
	ActiveVariables   int
	IrrelevantBuckets int
	Duration          time.Duration
	Accuracy          float64
	// Timings is the per-stage breakdown of the quantification (select,
	// formulate, solve, score) — the Figure-7 running-time decomposition.
	Timings core.Timings
}

// CompareDecomposition quantifies with and without decomposition.
func CompareDecomposition(in *Instance, k int) ([]DecompositionResult, error) {
	var out []DecompositionResult
	for _, dec := range []bool{true, false} {
		q := core.New(core.Config{
			Diversity:   in.Config.Diversity,
			MinSupport:  in.Config.MinSupport,
			NoDecompose: !dec,
			Solve: maxent.Options{
				KernelWorkers: in.Config.KernelWorkers,
				Reduce:        in.Config.Reduce,
				FastMath:      in.Config.FastMath,
				Solver:        solver.Options{MaxIterations: 6000, GradTol: 1e-8},
			},
		})
		rep, err := q.QuantifyWithRules(in.Data, in.Rules, core.Bound{KPos: k / 2, KNeg: k - k/2}, in.Truth)
		if err != nil {
			return nil, err
		}
		out = append(out, DecompositionResult{
			Decomposed:        dec,
			ActiveVariables:   rep.Solution.Stats.ActiveVariables,
			IrrelevantBuckets: rep.Solution.Stats.IrrelevantBuckets,
			Duration:          rep.Solution.Stats.Duration,
			Accuracy:          rep.EstimationAccuracy,
			Timings:           rep.Timings,
		})
	}
	return out, nil
}

// StageBreakdown runs one Top-K quantification per knowledge budget and
// returns the per-stage running time as series (one per pipeline stage,
// x = constraint count) — the Figure-7 running-time panel refined by
// stage, taken from Report.Timings instead of external re-timing.
func StageBreakdown(in *Instance, ks []int) ([]Series, error) {
	if len(ks) == 0 {
		ks = []int{10, 30, 100, 300, 1000}
	}
	stages := []string{core.StageSelect, core.StageFormulate, core.StageSolve, core.StageScore}
	series := make([]Series, len(stages))
	for i, st := range stages {
		series[i] = Series{Name: st}
	}
	q := in.quantifier()
	for _, k := range ks {
		if k > len(in.Rules) {
			break
		}
		rep, err := q.QuantifyWithRules(in.Data, in.Rules, core.Bound{KPos: k / 2, KNeg: k - k/2}, in.Truth)
		if err != nil {
			return nil, fmt.Errorf("stage breakdown K=%d: %w", k, err)
		}
		for i, st := range stages {
			series[i].Points = append(series[i].Points, Point{X: float64(k), Y: rep.Timings.Get(st).Seconds()})
		}
	}
	return series, nil
}

// BaselineAccuracy reports the no-knowledge estimation accuracy plus
// bucket-level diversity scores, the reference point of every curve.
func BaselineAccuracy(in *Instance) (accuracy float64, distinctL int, entropyL float64, err error) {
	acc, err := in.accuracyAt(in.Rules, 0, 0)
	if err != nil {
		return 0, 0, 0, err
	}
	return acc, metrics.DistinctDiversity(in.Data), metrics.EntropyDiversity(in.Data), nil
}
