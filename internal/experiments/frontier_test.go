package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestFrontierShape: the sweep yields one point per (scheme, parameter)
// setting, every scheme appears, and the knowledge-free utility axis
// behaves monotonically within the anatomy family — bigger buckets hide
// more of P(S|Q), so the weighted-KL distance grows with l.
func TestFrontierShape(t *testing.T) {
	in := smallInstance(t)
	points, err := Frontier(in, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(frontierSweep(in.Config.Seed)); len(points) != want {
		t.Fatalf("points = %d, want %d", len(points), want)
	}
	byScheme := make(map[string][]FrontierPoint)
	for _, p := range points {
		byScheme[p.Scheme] = append(byScheme[p.Scheme], p)
		if p.Disclosure <= 0 || p.Disclosure > 1+1e-9 {
			t.Errorf("%s %s disclosure = %g", p.Scheme, p.Param, p.Disclosure)
		}
		if p.Utility < 0 {
			t.Errorf("%s %s utility = %g", p.Scheme, p.Param, p.Utility)
		}
	}
	for _, name := range []string{"anatomy", "mondrian", "randomized_response"} {
		if len(byScheme[name]) != 3 {
			t.Errorf("scheme %s has %d points, want 3", name, len(byScheme[name]))
		}
	}
	anat := byScheme["anatomy"] // sweep order: l=2, 4, 6
	if !(anat[0].Utility <= anat[1].Utility && anat[1].Utility <= anat[2].Utility) {
		t.Errorf("anatomy utility-KL not monotone in l: %g, %g, %g",
			anat[0].Utility, anat[1].Utility, anat[2].Utility)
	}
}

func TestWriteFrontierCSV(t *testing.T) {
	var buf bytes.Buffer
	err := WriteFrontierCSV(&buf, []FrontierPoint{
		{Scheme: "anatomy", Param: "l=2", Disclosure: 0.5, EntropyBits: 1.25, Utility: 0.01, Converged: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv lines = %d:\n%s", len(lines), buf.String())
	}
	if lines[0] != "scheme,param,disclosure,entropy_bits,utility_kl,converged" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "anatomy,l=2,0.5,1.25,0.01,true" {
		t.Fatalf("row = %q", lines[1])
	}
}
