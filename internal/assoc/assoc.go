// Package assoc mines the positive and negative association rules between
// QI attribute subsets and the sensitive attribute that the paper uses as
// its bound on background knowledge (Sec. 4.4, Top-(K+, K−) strongest
// associations). Rules are mined from the original data D, which Sec. 4.2
// argues is the right source: knowledge inconsistent with D is incorrect
// for D regardless of its general truth.
package assoc

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"privacymaxent/internal/constraint"
	"privacymaxent/internal/dataset"
	"privacymaxent/internal/errs"
	"privacymaxent/internal/pool"
	"privacymaxent/internal/telemetry"
)

// Rule is an association between a QI-subset condition Qv and a sensitive
// value: positive rules Qv ⇒ s say P(s|Qv) is high; negative rules
// Qv ⇒ ¬s say it is low (the paper's breast-cancer example).
type Rule struct {
	// Attrs are schema positions of the conditioned QI attributes, with
	// parallel Values; always sorted by attribute position.
	Attrs  []int
	Values []int
	// SA is the sensitive code the rule concerns.
	SA int
	// Positive distinguishes Qv ⇒ s from Qv ⇒ ¬s.
	Positive bool
	// Confidence is P(s|Qv) for positive rules and P(¬s|Qv) for negative
	// rules, computed exactly from the mined table.
	Confidence float64
	// Support is the number of records witnessing the rule head:
	// count(Qv ∧ s) for positive, count(Qv ∧ ¬s) for negative.
	Support int
	// CondCount is count(Qv), the body support.
	CondCount int
}

// PSA returns the conditional probability P(SA | Qv) the rule pins — the
// value fed to the ME constraint regardless of rule polarity.
func (r *Rule) PSA() float64 {
	if r.Positive {
		return r.Confidence
	}
	return 1 - r.Confidence
}

// Knowledge converts the rule into the background-knowledge statement
// P(SA | Qv) = PSA() used to build an ME constraint.
func (r *Rule) Knowledge() constraint.DistributionKnowledge {
	return constraint.DistributionKnowledge{
		Attrs:  append([]int(nil), r.Attrs...),
		Values: append([]int(nil), r.Values...),
		SA:     r.SA,
		P:      r.PSA(),
	}
}

// String renders the rule, e.g. "{Gender=male} => ¬Breast Cancer (conf 1.00, sup 6)".
func (r *Rule) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i := range r.Attrs {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "a%d=%d", r.Attrs[i], r.Values[i])
	}
	b.WriteString("} => ")
	if !r.Positive {
		b.WriteString("¬")
	}
	fmt.Fprintf(&b, "s%d (conf %.3f, sup %d)", r.SA, r.Confidence, r.Support)
	return b.String()
}

// Options configures mining.
type Options struct {
	// MinSupport is the minimum number of witnessing records; the paper
	// uses 3 ("each association rule must be supported by at least three
	// records"). Values below 1 default to 1.
	MinSupport int
	// Sizes lists the QI-subset sizes T to mine (the paper's Figure 6
	// varies T from 1 to the number of QI attributes). Empty means every
	// size from 1 to NumQI.
	Sizes []int
	// Workers bounds how many attribute subsets are mined concurrently;
	// values below 2 mine sequentially. The final rule order is
	// deterministic either way (rules are fully ordered before Top-K
	// selection).
	Workers int
}

// Mine enumerates every QI attribute subset of the requested sizes,
// groups records by the subset's projected values, and emits the positive
// and negative rules meeting the support threshold. It is a thin wrapper
// over MineContext with a background context.
func Mine(t *dataset.Table, opts Options) ([]Rule, error) {
	return MineContext(context.Background(), t, opts)
}

// MineContext is Mine with cancellation: once ctx is done, mining stops
// between subsets and the context's error is returned. A telemetry span
// ("assoc.mine") is emitted when a tracer is installed in ctx.
func MineContext(ctx context.Context, t *dataset.Table, opts Options) ([]Rule, error) {
	_, span := telemetry.Start(ctx, "assoc.mine",
		telemetry.Int("records", t.Len()),
		telemetry.Int("min_support", opts.MinSupport))
	defer span.End()
	schema := t.Schema()
	if schema.SAIndex() < 0 {
		return nil, fmt.Errorf("assoc: table has no sensitive attribute: %w", errs.ErrNoSensitiveAttribute)
	}
	qi := schema.QIIndices()
	if len(qi) == 0 {
		return nil, fmt.Errorf("assoc: table has no quasi-identifier attributes")
	}
	minSup := opts.MinSupport
	if minSup < 1 {
		minSup = 1
	}
	sizes := opts.Sizes
	if len(sizes) == 0 {
		for k := 1; k <= len(qi); k++ {
			sizes = append(sizes, k)
		}
	}
	for _, k := range sizes {
		if k < 1 || k > len(qi) {
			return nil, fmt.Errorf("assoc: subset size %d out of range [1,%d]", k, len(qi))
		}
	}

	// Collect every subset up front so the work can be distributed.
	var subsets [][]int
	for _, k := range sizes {
		forEachSubset(len(qi), k, func(idx []int) {
			attrs := make([]int, len(idx))
			for i, p := range idx {
				attrs[i] = qi[p]
			}
			subsets = append(subsets, attrs)
		})
	}

	// Subsets are mined independently on the shared worker pool (the same
	// pool type the solver's component and kernel parallelism draws from)
	// and merged in subset-enumeration order, so the flattened rule list —
	// and therefore the sortRules total order and every Top-K selection —
	// is identical to the sequential path at any worker count.
	var rules []Rule
	if opts.Workers < 2 || len(subsets) < 2 {
		for _, attrs := range subsets {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			rules = append(rules, mineSubset(t, attrs, minSup)...)
		}
	} else {
		perSubset := make([][]Rule, len(subsets))
		p := pool.New(opts.Workers)
		p.ParallelFor(ctx, len(subsets), 0, func(i int) {
			perSubset[i] = mineSubset(t, subsets[i], minSup)
		})
		p.Close()
		// ParallelFor drains without starting new subsets once ctx is
		// done; a partial perSubset must not masquerade as a full mine.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for _, rs := range perSubset {
			rules = append(rules, rs...)
		}
	}
	sortRules(rules)
	span.SetAttr(telemetry.Int("rules", len(rules)))
	return rules, nil
}

// mineSubset emits the rules of one QI attribute subset.
func mineSubset(t *dataset.Table, attrs []int, minSup int) []Rule {
	saCard := t.Schema().SA().Cardinality()
	type group struct {
		values []int
		count  int
		perSA  []int
	}
	groups := map[string]*group{}
	var keyBuf strings.Builder
	for row := 0; row < t.Len(); row++ {
		r := t.Row(row)
		keyBuf.Reset()
		for _, a := range attrs {
			fmt.Fprintf(&keyBuf, "%d|", r[a])
		}
		key := keyBuf.String()
		g := groups[key]
		if g == nil {
			values := make([]int, len(attrs))
			for i, a := range attrs {
				values[i] = r[a]
			}
			g = &group{values: values, perSA: make([]int, saCard)}
			groups[key] = g
		}
		g.count++
		g.perSA[t.SACode(row)]++
	}
	var rules []Rule
	for _, g := range groups {
		for s := 0; s < saCard; s++ {
			pos := g.perSA[s]
			neg := g.count - pos
			if pos >= minSup {
				rules = append(rules, Rule{
					Attrs: attrs, Values: g.values, SA: s,
					Positive:   true,
					Confidence: float64(pos) / float64(g.count),
					Support:    pos,
					CondCount:  g.count,
				})
			}
			if neg >= minSup {
				rules = append(rules, Rule{
					Attrs: attrs, Values: g.values, SA: s,
					Positive:   false,
					Confidence: float64(neg) / float64(g.count),
					Support:    neg,
					CondCount:  g.count,
				})
			}
		}
	}
	return rules
}

// forEachSubset calls fn with every size-k index subset of [0, n) in
// lexicographic order. The slice passed to fn is reused.
func forEachSubset(n, k int, fn func(idx []int)) {
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		fn(idx)
		// Advance to the next combination.
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			return
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

// sortRules orders by confidence (desc), then support (desc), then a
// deterministic structural key, so Top-K selections are reproducible.
func sortRules(rules []Rule) {
	sort.Slice(rules, func(i, j int) bool {
		a, b := &rules[i], &rules[j]
		if a.Confidence != b.Confidence {
			return a.Confidence > b.Confidence
		}
		if a.Support != b.Support {
			return a.Support > b.Support
		}
		if len(a.Attrs) != len(b.Attrs) {
			return len(a.Attrs) < len(b.Attrs)
		}
		for k := range a.Attrs {
			if a.Attrs[k] != b.Attrs[k] {
				return a.Attrs[k] < b.Attrs[k]
			}
			if a.Values[k] != b.Values[k] {
				return a.Values[k] < b.Values[k]
			}
		}
		if a.SA != b.SA {
			return a.SA < b.SA
		}
		return a.Positive && !b.Positive
	})
}

// TopK implements the paper's Top-(K+, K−) bound: the kPos strongest
// positive rules and the kNeg strongest negative rules by confidence.
// Rules must already be sorted (as Mine returns them).
func TopK(rules []Rule, kPos, kNeg int) []Rule {
	out := make([]Rule, 0, kPos+kNeg)
	nPos, nNeg := 0, 0
	for i := range rules {
		if rules[i].Positive {
			if nPos < kPos {
				out = append(out, rules[i])
				nPos++
			}
		} else if nNeg < kNeg {
			out = append(out, rules[i])
			nNeg++
		}
		if nPos == kPos && nNeg == kNeg {
			break
		}
	}
	return out
}

// Split partitions rules by polarity, preserving order.
func Split(rules []Rule) (positive, negative []Rule) {
	for i := range rules {
		if rules[i].Positive {
			positive = append(positive, rules[i])
		} else {
			negative = append(negative, rules[i])
		}
	}
	return positive, negative
}
