package assoc

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"privacymaxent/internal/adult"
	"privacymaxent/internal/dataset"
)

func TestForEachSubset(t *testing.T) {
	var got [][]int
	forEachSubset(4, 2, func(idx []int) {
		got = append(got, append([]int(nil), idx...))
	})
	want := [][]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("subsets = %v, want %v", got, want)
	}
	// k == n yields exactly one subset.
	n := 0
	forEachSubset(3, 3, func([]int) { n++ })
	if n != 1 {
		t.Fatalf("full subset count = %d, want 1", n)
	}
}

func TestMinePaperExample(t *testing.T) {
	tbl := dataset.PaperExample()
	rules, err := Mine(tbl, Options{MinSupport: 1, Sizes: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	gender := tbl.Schema().Index("Gender")
	male := tbl.Schema().Attr(gender).MustCode("male")
	bc := tbl.Schema().SA().MustCode("Breast Cancer")
	flu := tbl.Schema().SA().MustCode("Flu")

	// The motivating negative rule: male ⇒ ¬Breast Cancer with
	// confidence 1 (no male has breast cancer in D).
	var foundNeg, foundPos bool
	for i := range rules {
		r := &rules[i]
		if len(r.Attrs) == 1 && r.Attrs[0] == gender && r.Values[0] == male && r.SA == bc && !r.Positive {
			foundNeg = true
			if r.Confidence != 1 {
				t.Fatalf("male => ¬BreastCancer confidence = %g, want 1", r.Confidence)
			}
			if r.Support != 6 || r.CondCount != 6 {
				t.Fatalf("male => ¬BreastCancer support = %d/%d, want 6/6", r.Support, r.CondCount)
			}
			if r.PSA() != 0 {
				t.Fatalf("PSA = %g, want 0", r.PSA())
			}
		}
		// P(Flu | male) = 3/6.
		if len(r.Attrs) == 1 && r.Attrs[0] == gender && r.Values[0] == male && r.SA == flu && r.Positive {
			foundPos = true
			if math.Abs(r.Confidence-0.5) > 1e-12 {
				t.Fatalf("P(Flu|male) = %g, want 0.5", r.Confidence)
			}
			if r.Support != 3 {
				t.Fatalf("Flu|male support = %d, want 3", r.Support)
			}
		}
	}
	if !foundNeg || !foundPos {
		t.Fatalf("expected rules not mined (neg=%v pos=%v)", foundNeg, foundPos)
	}
	// Rules are sorted by confidence descending.
	for i := 1; i < len(rules); i++ {
		if rules[i].Confidence > rules[i-1].Confidence {
			t.Fatalf("rules not sorted: conf[%d]=%g > conf[%d]=%g", i, rules[i].Confidence, i-1, rules[i-1].Confidence)
		}
	}
}

func TestMineSupportThreshold(t *testing.T) {
	tbl := dataset.PaperExample()
	rules, err := Mine(tbl, Options{MinSupport: 3, Sizes: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	for i := range rules {
		if rules[i].Support < 3 {
			t.Fatalf("rule %v has support %d < 3", rules[i].String(), rules[i].Support)
		}
	}
}

func TestMineSizesAndValidation(t *testing.T) {
	tbl := dataset.PaperExample()
	// Size 2 = both QI attributes: conditions are full QI tuples.
	rules, err := Mine(tbl, Options{MinSupport: 1, Sizes: []int{2}})
	if err != nil {
		t.Fatal(err)
	}
	for i := range rules {
		if len(rules[i].Attrs) != 2 {
			t.Fatalf("rule conditions on %d attributes, want 2", len(rules[i].Attrs))
		}
	}
	if _, err := Mine(tbl, Options{Sizes: []int{0}}); err == nil {
		t.Fatal("expected size validation error")
	}
	if _, err := Mine(tbl, Options{Sizes: []int{3}}); err == nil {
		t.Fatal("expected size validation error (only 2 QI attrs)")
	}
	// Default sizes = 1..NumQI.
	all, err := Mine(tbl, Options{MinSupport: 1})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Mine(tbl, Options{MinSupport: 1, Sizes: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Mine(tbl, Options{MinSupport: 1, Sizes: []int{2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(r1)+len(r2) {
		t.Fatalf("default sizes mined %d rules, want %d", len(all), len(r1)+len(r2))
	}
}

func TestMineNoSATable(t *testing.T) {
	a := dataset.NewAttribute("x", dataset.QuasiIdentifier, []string{"1"})
	tbl := dataset.NewTable(dataset.MustSchema(a))
	if _, err := Mine(tbl, Options{}); err == nil {
		t.Fatal("expected error for table without SA")
	}
}

func TestTopK(t *testing.T) {
	tbl := dataset.PaperExample()
	rules, err := Mine(tbl, Options{MinSupport: 1})
	if err != nil {
		t.Fatal(err)
	}
	top := TopK(rules, 2, 3)
	pos, neg := Split(top)
	if len(pos) != 2 || len(neg) != 3 {
		t.Fatalf("TopK split = %d pos, %d neg; want 2, 3", len(pos), len(neg))
	}
	// Selected rules are the strongest of their polarity.
	allPos, allNeg := Split(rules)
	if pos[0].Confidence != allPos[0].Confidence || neg[0].Confidence != allNeg[0].Confidence {
		t.Fatal("TopK did not take the strongest rules")
	}
	// Asking for more than exist returns what's available.
	huge := TopK(rules, len(rules), len(rules))
	if len(huge) != len(rules) {
		t.Fatalf("TopK overflow = %d rules, want %d", len(huge), len(rules))
	}
}

func TestRuleKnowledgeConversion(t *testing.T) {
	tbl := dataset.PaperExample()
	gender := tbl.Schema().Index("Gender")
	r := Rule{
		Attrs:      []int{gender},
		Values:     []int{tbl.Schema().Attr(gender).MustCode("male")},
		SA:         tbl.Schema().SA().MustCode("Breast Cancer"),
		Positive:   false,
		Confidence: 1,
	}
	k := r.Knowledge()
	if k.P != 0 {
		t.Fatalf("negative rule knowledge P = %g, want 0", k.P)
	}
	r.Positive = true
	r.Confidence = 0.75
	if got := r.Knowledge().P; got != 0.75 {
		t.Fatalf("positive rule knowledge P = %g, want 0.75", got)
	}
	if s := r.String(); s == "" {
		t.Fatal("empty String()")
	}
}

func TestMineDeterministic(t *testing.T) {
	tbl := dataset.PaperExample()
	a, err := Mine(tbl, Options{MinSupport: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Mine(tbl, Options{MinSupport: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Mine is not deterministic")
	}
}

// TestMineParallelMatchesSequential: worker count must not change the
// mined rule list (ordering is fully deterministic after sorting).
func TestMineParallelMatchesSequential(t *testing.T) {
	tbl := dataset.PaperExample()
	seq, err := Mine(tbl, Options{MinSupport: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Mine(tbl, Options{MinSupport: 1, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("parallel mining differs from sequential")
	}
}

// TestMineParallelWorkerSweep: the pool-backed parallel path returns a
// rule list deeply equal to the sequential one — same rules, same order
// — on a larger workload, at worker counts below, at, and far above the
// subset count.
func TestMineParallelWorkerSweep(t *testing.T) {
	tbl := adult.Generate(adult.Config{Records: 400, Seed: 7})
	seq, err := Mine(tbl, Options{MinSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) == 0 {
		t.Fatal("workload mined no rules")
	}
	for _, w := range []int{2, 3, 8, 64} {
		par, err := Mine(tbl, Options{MinSupport: 2, Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("workers=%d: parallel mining differs from sequential", w)
		}
	}
}

// TestTopKQuick: for any (kPos, kNeg), TopK returns at most that many
// rules of each polarity, strongest-first, and every returned rule exists
// in the pool.
func TestTopKQuick(t *testing.T) {
	tbl := dataset.PaperExample()
	pool, err := Mine(tbl, Options{MinSupport: 1})
	if err != nil {
		t.Fatal(err)
	}
	f := func(kp, kn uint8) bool {
		kPos, kNeg := int(kp)%40, int(kn)%40
		top := TopK(pool, kPos, kNeg)
		pos, neg := Split(top)
		if len(pos) > kPos || len(neg) > kNeg {
			return false
		}
		for i := 1; i < len(pos); i++ {
			if pos[i].Confidence > pos[i-1].Confidence {
				return false
			}
		}
		for i := 1; i < len(neg); i++ {
			if neg[i].Confidence > neg[i-1].Confidence {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestRuleConfidenceConsistency: every mined rule's confidence equals
// support divided by body count, and PSA stays within [0, 1].
func TestRuleConfidenceConsistency(t *testing.T) {
	tbl := dataset.PaperExample()
	rules, err := Mine(tbl, Options{MinSupport: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range rules {
		r := &rules[i]
		want := float64(r.Support) / float64(r.CondCount)
		if math.Abs(r.Confidence-want) > 1e-12 {
			t.Fatalf("rule %v: confidence %g, want %g", r, r.Confidence, want)
		}
		if p := r.PSA(); p < 0 || p > 1 {
			t.Fatalf("rule %v: PSA %g", r, p)
		}
	}
}
