package solver

import (
	"math"
	"testing"
)

// quadraticH extends quadratic with its (diagonal) Hessian.
type quadraticH struct{ quadratic }

func (q *quadraticH) Hessian(x []float64, h [][]float64) {
	for i := range h {
		for j := range h[i] {
			h[i][j] = 0
		}
		h[i][i] = q.w[i]
	}
}

// expSumH extends expSum with its Hessian Σ_j a_j a_jᵀ exp(a_j·x − 1).
type expSumH struct{ expSum }

func (e *expSumH) Hessian(x []float64, h [][]float64) {
	n := len(e.c)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			h[i][j] = 0
		}
	}
	for _, row := range e.a {
		v := math.Exp(dot(row, x) - 1)
		for i := range row {
			for j := range row {
				h[i][j] += row[i] * row[j] * v
			}
		}
	}
}

func TestNewtonQuadraticOneStep(t *testing.T) {
	q := &quadraticH{quadratic{w: []float64{1, 10, 100}, c: []float64{3, -2, 0.5}}}
	res, err := Newton(q, []float64{0, 0, 0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: %+v", res)
	}
	// Newton solves a quadratic exactly in one iteration.
	if res.Iterations > 2 {
		t.Fatalf("iterations = %d, want <= 2", res.Iterations)
	}
	for i, want := range q.c {
		if math.Abs(res.X[i]-want) > 1e-8 {
			t.Fatalf("x[%d] = %g, want %g", i, res.X[i], want)
		}
	}
}

func TestNewtonExpSum(t *testing.T) {
	a := [][]float64{{1, 0}, {0, 1}, {1, 1}}
	lamStar := []float64{0.4, -0.9}
	c := make([]float64, 2)
	for _, row := range a {
		v := math.Exp(dot(row, lamStar) - 1)
		for i := range row {
			c[i] += row[i] * v
		}
	}
	e := &expSumH{expSum{a: a, c: c}}
	res, err := Newton(e, []float64{0, 0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: %+v", res)
	}
	for i := range lamStar {
		if math.Abs(res.X[i]-lamStar[i]) > 1e-7 {
			t.Fatalf("λ[%d] = %g, want %g", i, res.X[i], lamStar[i])
		}
	}
	// Newton should use dramatically fewer iterations than steepest
	// descent on the same problem.
	sd, err := SteepestDescent(&e.expSum, []float64{0, 0}, Options{MaxIterations: 10000, GradTol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if sd.Converged && sd.Iterations < res.Iterations {
		t.Fatalf("steepest descent (%d) beat Newton (%d)", sd.Iterations, res.Iterations)
	}
}

type nanHessObjective struct{ nanObjective }

func (nanHessObjective) Hessian(x []float64, h [][]float64) {}

func TestNewtonNonFiniteStart(t *testing.T) {
	if _, err := Newton(nanHessObjective{}, []float64{0}, Options{}); err != ErrNonFinite {
		t.Fatalf("err = %v, want ErrNonFinite", err)
	}
}

// indefObjective has a saddle-shaped Hessian so Newton must fall back to
// gradient descent and still make progress.
type indefObjective struct{}

func (indefObjective) Dim() int { return 2 }
func (indefObjective) Eval(x, grad []float64) float64 {
	// f = (x0²+x1²)/2 + x0⁴: convex, but we lie about the Hessian.
	grad[0] = x[0] + 4*x[0]*x[0]*x[0]
	grad[1] = x[1]
	return 0.5*(x[0]*x[0]+x[1]*x[1]) + x[0]*x[0]*x[0]*x[0]
}
func (indefObjective) Hessian(x []float64, h [][]float64) {
	h[0][0], h[0][1] = 1, 2
	h[1][0], h[1][1] = 2, 1 // indefinite
}

func TestNewtonIndefiniteFallback(t *testing.T) {
	res, err := Newton(indefObjective{}, []float64{2, -3}, Options{MaxIterations: 2000, GradTol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: %+v", res)
	}
	if math.Abs(res.X[0]) > 1e-4 || math.Abs(res.X[1]) > 1e-4 {
		t.Fatalf("minimizer = %v, want origin", res.X)
	}
}
