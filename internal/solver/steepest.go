package solver

import (
	"time"

	"privacymaxent/internal/linalg"
)

// SteepestDescent minimizes the objective by following the negative
// gradient with the same strong-Wolfe line search LBFGS uses. It is the
// slow baseline in the Malouf-style algorithm comparison the paper cites
// (Sec. 3.3); expect many more iterations than LBFGS on ill-conditioned
// duals.
func SteepestDescent(obj Objective, x0 []float64, opts Options) (Result, error) {
	opts = opts.withDefaults()
	n := obj.Dim()
	start := time.Now()

	x := linalg.CopyOf(x0)
	g := make([]float64, n)
	d := make([]float64, n)
	xPrev := make([]float64, n)
	f := obj.Eval(x, g)
	evals := 1
	if !finite(f) || !allFinite(g) {
		return Result{X: x, F: f, Duration: time.Since(start)}, ErrNonFinite
	}

	step := opts.InitialStep
	lf := newLineFunc(obj, xPrev, d)
	var lastStep float64
	var lastLSEvals int
	for iter := 0; iter < opts.MaxIterations; iter++ {
		if opts.interrupted() {
			return Result{X: x, F: f, GradNorm: linalg.NormInf(g), Iterations: iter, Evaluations: evals, Duration: time.Since(start)}, ErrInterrupted
		}
		gNorm := linalg.NormInf(g)
		if opts.Trace != nil {
			opts.Trace(TraceEvent{Iteration: iter, F: f, GradNorm: gNorm, Step: lastStep, LineSearchEvals: lastLSEvals})
		}
		if gNorm <= opts.GradTol {
			return Result{X: x, F: f, GradNorm: gNorm, Iterations: iter, Evaluations: evals, Converged: true, Duration: time.Since(start)}, nil
		}
		copy(d, g)
		linalg.Scale(-1, d)
		dg := -linalg.Dot(g, g)

		copy(xPrev, x)
		lf.reset(xPrev, d)
		accepted, _, ok := strongWolfe(lf, step, f, dg)
		evals += lf.evals
		lastStep, lastLSEvals = accepted, lf.evals
		if !ok || accepted == 0 {
			// Distinguish an interrupt-poisoned search from a genuine
			// stall (see the matching LBFGS comment).
			if opts.interrupted() {
				return Result{X: x, F: f, GradNorm: gNorm, Iterations: iter, Evaluations: evals, Duration: time.Since(start)}, ErrInterrupted
			}
			return Result{X: x, F: f, GradNorm: gNorm, Iterations: iter, Evaluations: evals, Duration: time.Since(start)}, nil
		}
		copy(x, xPrev)
		linalg.Axpy(accepted, d, x)
		f = obj.Eval(x, g)
		evals++
		// Reuse the accepted step as the next initial trial; gradient
		// methods benefit from step-length memory.
		step = accepted
	}
	if opts.Trace != nil {
		opts.Trace(TraceEvent{Iteration: opts.MaxIterations, F: f, GradNorm: linalg.NormInf(g), Step: lastStep, LineSearchEvals: lastLSEvals})
	}
	return Result{X: x, F: f, GradNorm: linalg.NormInf(g), Iterations: opts.MaxIterations, Evaluations: evals, Duration: time.Since(start)}, nil
}
