package solver

import (
	"math"

	"privacymaxent/internal/linalg"
)

// Line-search constants for the strong Wolfe conditions (Nocedal & Wright,
// Numerical Optimization, Algorithms 3.5/3.6). c1 is the sufficient
// decrease (Armijo) parameter, c2 the curvature parameter recommended for
// quasi-Newton directions.
const (
	wolfeC1       = 1e-4
	wolfeC2       = 0.9
	maxLineEvals  = 40
	maxZoomRounds = 40
)

// lineFunc evaluates φ(α) = f(x + α d) and φ'(α) = ∇f(x + α d)·d,
// tracking evaluation counts for the Result report.
type lineFunc struct {
	obj   Objective
	x     []float64 // base point
	d     []float64 // search direction
	xTmp  []float64
	gTmp  []float64
	evals int

	// lastX/lastG hold the point and gradient of the most recent
	// evaluation so the caller can reuse them without re-evaluating.
	lastF float64
}

func newLineFunc(obj Objective, x, d []float64) *lineFunc {
	n := obj.Dim()
	return &lineFunc{obj: obj, x: x, d: d, xTmp: make([]float64, n), gTmp: make([]float64, n)}
}

// reset re-targets the line function at a new base point and direction,
// reusing its evaluation buffers. The per-iteration evaluation count
// restarts from zero.
func (lf *lineFunc) reset(x, d []float64) {
	lf.x, lf.d, lf.evals = x, d, 0
}

// eval returns φ(α) and φ'(α).
func (lf *lineFunc) eval(alpha float64) (phi, dphi float64) {
	copy(lf.xTmp, lf.x)
	linalg.Axpy(alpha, lf.d, lf.xTmp)
	phi = lf.obj.Eval(lf.xTmp, lf.gTmp)
	lf.evals++
	lf.lastF = phi
	return phi, linalg.Dot(lf.gTmp, lf.d)
}

// strongWolfe searches for a step length satisfying the strong Wolfe
// conditions along descent direction d. phi0 and dphi0 are φ(0) and φ'(0)
// (dphi0 must be negative). It returns the accepted step, φ at that step,
// and whether a satisfying step was found; on failure the best step seen
// is returned so the optimizer can still make progress or bail out.
func strongWolfe(lf *lineFunc, alpha0, phi0, dphi0 float64) (alpha, phi float64, ok bool) {
	if dphi0 >= 0 {
		return 0, phi0, false
	}
	alphaPrev, phiPrev := 0.0, phi0
	alpha = alpha0
	const maxAlpha = 1e10
	for i := 0; i < maxLineEvals; i++ {
		phiA, dphiA := lf.eval(alpha)
		if !finite(phiA) {
			// Overstepped into an overflow region: shrink hard.
			alpha = alphaPrev + (alpha-alphaPrev)/10
			continue
		}
		if phiA > phi0+wolfeC1*alpha*dphi0 || (i > 0 && phiA >= phiPrev) {
			return zoom(lf, alphaPrev, alpha, phiPrev, phi0, dphi0)
		}
		if math.Abs(dphiA) <= -wolfeC2*dphi0 {
			return alpha, phiA, true
		}
		if dphiA >= 0 {
			return zoom(lf, alpha, alphaPrev, phiA, phi0, dphi0)
		}
		alphaPrev, phiPrev = alpha, phiA
		alpha *= 2
		if alpha > maxAlpha {
			return alphaPrev, phiPrev, false
		}
	}
	return alphaPrev, phiPrev, false
}

// zoom narrows [lo, hi] (in the sense of Nocedal & Wright Alg. 3.6; lo has
// the lower φ) until a strong-Wolfe point is found.
func zoom(lf *lineFunc, alphaLo, alphaHi, phiLo, phi0, dphi0 float64) (alpha, phi float64, ok bool) {
	for i := 0; i < maxZoomRounds; i++ {
		alpha = 0.5 * (alphaLo + alphaHi)
		phiA, dphiA := lf.eval(alpha)
		switch {
		case !finite(phiA) || phiA > phi0+wolfeC1*alpha*dphi0 || phiA >= phiLo:
			alphaHi = alpha
		default:
			if math.Abs(dphiA) <= -wolfeC2*dphi0 {
				return alpha, phiA, true
			}
			if dphiA*(alphaHi-alphaLo) >= 0 {
				alphaHi = alphaLo
			}
			alphaLo, phiLo = alpha, phiA
		}
		if math.Abs(alphaHi-alphaLo) < 1e-16*(1+math.Abs(alphaLo)) {
			break
		}
	}
	// Accept the best lower point even if curvature wasn't certified;
	// Armijo decrease still holds there.
	if alphaLo > 0 {
		phiA, _ := lf.eval(alphaLo)
		return alphaLo, phiA, finite(phiA) && phiA <= phi0+wolfeC1*alphaLo*dphi0
	}
	return 0, phi0, false
}
