package solver

import (
	"time"

	"privacymaxent/internal/linalg"
)

// LBFGS minimizes the objective from x0 with the limited-memory BFGS
// method (Liu & Nocedal 1989): the inverse Hessian is approximated
// implicitly by the last Memory correction pairs via the two-loop
// recursion, and steps are chosen by a strong-Wolfe line search. x0 is not
// modified.
func LBFGS(obj Objective, x0 []float64, opts Options) (Result, error) {
	opts = opts.withDefaults()
	n := obj.Dim()
	start := time.Now()

	x := linalg.CopyOf(x0)
	g := make([]float64, n)
	f := obj.Eval(x, g)
	evals := 1
	if !finite(f) || !allFinite(g) {
		return Result{X: x, F: f, Duration: time.Since(start)}, ErrNonFinite
	}

	// Correction-pair ring buffers.
	m := opts.Memory
	sBuf := make([][]float64, 0, m)
	yBuf := make([][]float64, 0, m)
	rhoBuf := make([]float64, 0, m)

	d := make([]float64, n)     // search direction
	q := make([]float64, n)     // two-loop scratch
	alpha := make([]float64, m) // two-loop scratch
	gPrev := make([]float64, n)
	xPrev := make([]float64, n)
	// sNew/yNew hold the candidate correction pair; once the ring is full,
	// each accepted pair recycles the storage of the pair it evicts, so
	// the iteration loop is allocation-free after the first m iterations.
	sNew := make([]float64, n)
	yNew := make([]float64, n)
	lf := newLineFunc(obj, xPrev, d)

	res := Result{}
	firstStep := opts.InitialStep
	var lastStep float64
	var lastLSEvals int
	for iter := 0; iter < opts.MaxIterations; iter++ {
		if opts.interrupted() {
			return Result{X: x, F: f, GradNorm: linalg.NormInf(g), Iterations: iter, Evaluations: evals, Duration: time.Since(start)}, ErrInterrupted
		}
		gNorm := linalg.NormInf(g)
		if opts.Trace != nil {
			opts.Trace(TraceEvent{Iteration: iter, F: f, GradNorm: gNorm, Step: lastStep, LineSearchEvals: lastLSEvals})
		}
		if gNorm <= opts.GradTol {
			res = Result{X: x, F: f, GradNorm: gNorm, Iterations: iter, Evaluations: evals, Converged: true}
			res.Duration = time.Since(start)
			return res, nil
		}

		// Two-loop recursion: d = -H g.
		copy(q, g)
		for i := len(sBuf) - 1; i >= 0; i-- {
			alpha[i] = rhoBuf[i] * linalg.Dot(sBuf[i], q)
			linalg.Axpy(-alpha[i], yBuf[i], q)
		}
		if k := len(sBuf); k > 0 {
			// Scale by γ = s·y / y·y (Nocedal & Wright Eq. 7.20).
			gamma := 1 / (rhoBuf[k-1] * linalg.Dot(yBuf[k-1], yBuf[k-1]))
			linalg.Scale(gamma, q)
		}
		for i := 0; i < len(sBuf); i++ {
			beta := rhoBuf[i] * linalg.Dot(yBuf[i], q)
			linalg.Axpy(alpha[i]-beta, sBuf[i], q)
		}
		copy(d, q)
		linalg.Scale(-1, d)

		dg := linalg.Dot(d, g)
		if dg >= 0 {
			// Numerical breakdown of the quasi-Newton model: reset to
			// steepest descent.
			copy(d, g)
			linalg.Scale(-1, d)
			dg = -linalg.Dot(g, g)
			sBuf, yBuf, rhoBuf = sBuf[:0], yBuf[:0], rhoBuf[:0]
			if dg == 0 {
				break
			}
		}

		copy(xPrev, x)
		copy(gPrev, g)
		lf.reset(xPrev, d)
		step0 := 1.0
		if len(sBuf) == 0 {
			step0 = firstStep
		}
		step, phi, ok := strongWolfe(lf, step0, f, dg)
		evals += lf.evals
		lastStep, lastLSEvals = step, lf.evals
		if !ok || step == 0 {
			// A stalled line search right after an interrupt fired is the
			// interrupt's doing, not the objective's: an internally
			// parallel objective (see Objective) drains its kernels on
			// cancellation and returns stale values the search cannot
			// satisfy Wolfe on. Report the interruption, not a stall.
			if opts.interrupted() {
				return Result{X: x, F: f, GradNorm: gNorm, Iterations: iter, Evaluations: evals, Duration: time.Since(start)}, ErrInterrupted
			}
			// Line search stalled; report the best point so far.
			res = Result{X: x, F: f, GradNorm: gNorm, Iterations: iter, Evaluations: evals}
			res.Duration = time.Since(start)
			return res, nil
		}
		// Adopt the line function's final evaluation point when it
		// matches the accepted step; otherwise re-evaluate.
		copy(x, xPrev)
		linalg.Axpy(step, d, x)
		f = obj.Eval(x, g)
		evals++

		// Update correction pairs.
		for i := range sNew {
			sNew[i] = x[i] - xPrev[i]
			yNew[i] = g[i] - gPrev[i]
		}
		sy := linalg.Dot(sNew, yNew)
		if sy > 1e-16 {
			var sOld, yOld []float64
			if len(sBuf) == m {
				sOld, yOld = sBuf[0], yBuf[0]
				copy(sBuf, sBuf[1:])
				copy(yBuf, yBuf[1:])
				copy(rhoBuf, rhoBuf[1:])
				sBuf, yBuf, rhoBuf = sBuf[:m-1], yBuf[:m-1], rhoBuf[:m-1]
			}
			sBuf = append(sBuf, sNew)
			yBuf = append(yBuf, yNew)
			rhoBuf = append(rhoBuf, 1/sy)
			if sOld != nil {
				sNew, yNew = sOld, yOld
			} else {
				sNew = make([]float64, n)
				yNew = make([]float64, n)
			}
		}
		_ = phi
	}

	if opts.Trace != nil {
		opts.Trace(TraceEvent{Iteration: opts.MaxIterations, F: f, GradNorm: linalg.NormInf(g), Step: lastStep, LineSearchEvals: lastLSEvals})
	}
	res = Result{X: x, F: f, GradNorm: linalg.NormInf(g), Iterations: opts.MaxIterations, Evaluations: evals}
	res.Duration = time.Since(start)
	return res, nil
}
