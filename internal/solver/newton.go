package solver

import (
	"time"

	"privacymaxent/internal/linalg"
)

// HessianObjective is an Objective that can also produce its dense
// Hessian. Newton's method — one of the classic options the paper lists
// for the ME dual (Sec. 3.3) — needs it; the MaxEnt dual's Hessian is
// A·diag(x(λ))·Aᵀ, cheap when the constraint count is small.
type HessianObjective interface {
	Objective
	// Hessian writes ∇²f(x) into h, a Dim×Dim dense matrix whose rows
	// are preallocated by the caller.
	Hessian(x []float64, h [][]float64)
}

// Newton minimizes the objective with a damped Newton method: solve
// ∇²f d = −∇f by Cholesky, fall back to steepest descent whenever the
// Hessian is not positive definite, and globalize with the strong-Wolfe
// line search. Quadratic local convergence makes it take very few
// iterations on small, well-conditioned duals; the dense O(n³) solve per
// iteration limits it to modest constraint counts.
func Newton(obj HessianObjective, x0 []float64, opts Options) (Result, error) {
	opts = opts.withDefaults()
	n := obj.Dim()
	start := time.Now()

	x := linalg.CopyOf(x0)
	g := make([]float64, n)
	d := make([]float64, n)
	xPrev := make([]float64, n)
	h := make([][]float64, n)
	for i := range h {
		h[i] = make([]float64, n)
	}

	f := obj.Eval(x, g)
	evals := 1
	if !finite(f) || !allFinite(g) {
		return Result{X: x, F: f, Duration: time.Since(start)}, ErrNonFinite
	}
	lf := newLineFunc(obj, xPrev, d)

	var lastStep float64
	var lastLSEvals int
	for iter := 0; iter < opts.MaxIterations; iter++ {
		if opts.interrupted() {
			return Result{X: x, F: f, GradNorm: linalg.NormInf(g), Iterations: iter, Evaluations: evals, Duration: time.Since(start)}, ErrInterrupted
		}
		gNorm := linalg.NormInf(g)
		if opts.Trace != nil {
			opts.Trace(TraceEvent{Iteration: iter, F: f, GradNorm: gNorm, Step: lastStep, LineSearchEvals: lastLSEvals})
		}
		if gNorm <= opts.GradTol {
			return Result{X: x, F: f, GradNorm: gNorm, Iterations: iter, Evaluations: evals, Converged: true, Duration: time.Since(start)}, nil
		}

		// Newton direction: solve H d = −g.
		obj.Hessian(x, h)
		copy(d, g)
		linalg.Scale(-1, d)
		if _, err := linalg.SolveSPD(h, d); err != nil {
			// Indefinite or singular Hessian: steepest descent step.
			copy(d, g)
			linalg.Scale(-1, d)
		}
		dg := linalg.Dot(d, g)
		if dg >= 0 {
			copy(d, g)
			linalg.Scale(-1, d)
			dg = -linalg.Dot(g, g)
			if dg == 0 {
				break
			}
		}

		copy(xPrev, x)
		lf.reset(xPrev, d)
		step, _, ok := strongWolfe(lf, 1, f, dg)
		evals += lf.evals
		lastStep, lastLSEvals = step, lf.evals
		if !ok || step == 0 {
			// Distinguish an interrupt-poisoned search from a genuine
			// stall (see the matching LBFGS comment).
			if opts.interrupted() {
				return Result{X: x, F: f, GradNorm: gNorm, Iterations: iter, Evaluations: evals, Duration: time.Since(start)}, ErrInterrupted
			}
			return Result{X: x, F: f, GradNorm: gNorm, Iterations: iter, Evaluations: evals, Duration: time.Since(start)}, nil
		}
		copy(x, xPrev)
		linalg.Axpy(step, d, x)
		f = obj.Eval(x, g)
		evals++
	}
	if opts.Trace != nil {
		opts.Trace(TraceEvent{Iteration: opts.MaxIterations, F: f, GradNorm: linalg.NormInf(g), Step: lastStep, LineSearchEvals: lastLSEvals})
	}
	return Result{X: x, F: f, GradNorm: linalg.NormInf(g), Iterations: opts.MaxIterations, Evaluations: evals, Duration: time.Since(start)}, nil
}
