package solver

import (
	"errors"
	"testing"
)

// TestInterruptStopsOptimizers verifies the Interrupt hook: each
// optimizer polls it once per outer iteration and abandons the run with
// ErrInterrupted when it fires, reporting the iterations done so far.
func TestInterruptStopsOptimizers(t *testing.T) {
	ill := func() *quadraticH {
		return &quadraticH{quadratic{
			w: []float64{1, 100, 10000},
			c: []float64{3, -2, 0.5},
		}}
	}
	runs := map[string]func(stopAfter int) (Result, error, *int){
		"lbfgs": func(stopAfter int) (Result, error, *int) {
			polls := 0
			res, err := LBFGS(ill(), []float64{0, 0, 0}, Options{Interrupt: func() bool {
				polls++
				return polls > stopAfter
			}})
			return res, err, &polls
		},
		"steepest": func(stopAfter int) (Result, error, *int) {
			polls := 0
			res, err := SteepestDescent(ill(), []float64{0, 0, 0}, Options{Interrupt: func() bool {
				polls++
				return polls > stopAfter
			}})
			return res, err, &polls
		},
		"newton": func(stopAfter int) (Result, error, *int) {
			polls := 0
			res, err := Newton(ill(), []float64{0, 0, 0}, Options{Interrupt: func() bool {
				polls++
				return polls > stopAfter
			}})
			return res, err, &polls
		},
	}
	for name, run := range runs {
		res, err, polls := run(1)
		if !errors.Is(err, ErrInterrupted) {
			t.Fatalf("%s: err = %v, want ErrInterrupted", name, err)
		}
		if res.Converged {
			t.Fatalf("%s: interrupted run reported convergence", name)
		}
		if res.Iterations != 1 {
			t.Fatalf("%s: iterations = %d, want 1 (interrupted at second poll)", name, res.Iterations)
		}
		if *polls != 2 {
			t.Fatalf("%s: polls = %d, want 2 (once per outer iteration)", name, *polls)
		}
	}

	// An interrupt that never fires leaves the run untouched.
	fired := false
	res, err := LBFGS(ill(), []float64{0, 0, 0}, Options{Interrupt: func() bool { return fired }})
	if err != nil || !res.Converged {
		t.Fatalf("inactive interrupt changed the run: res=%+v err=%v", res, err)
	}
}
