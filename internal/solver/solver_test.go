package solver

import (
	"math"
	"math/rand"
	"testing"
)

// quadratic is f(x) = ½ Σ w_i (x_i − c_i)², a strictly convex test
// function with known minimizer c.
type quadratic struct {
	w, c []float64
}

func (q *quadratic) Dim() int { return len(q.w) }

func (q *quadratic) Eval(x, grad []float64) float64 {
	var f float64
	for i := range x {
		d := x[i] - q.c[i]
		f += 0.5 * q.w[i] * d * d
		grad[i] = q.w[i] * d
	}
	return f
}

// rosenbrock is the classic nonconvex banana function (n = 2), a standard
// line-search stress test with minimum at (1, 1).
type rosenbrock struct{}

func (rosenbrock) Dim() int { return 2 }

func (rosenbrock) Eval(x, grad []float64) float64 {
	a, b := x[0], x[1]
	f := (1-a)*(1-a) + 100*(b-a*a)*(b-a*a)
	grad[0] = -2*(1-a) - 400*a*(b-a*a)
	grad[1] = 200 * (b - a*a)
	return f
}

// expSum mimics the MaxEnt dual's structure: f(λ) = Σ_j exp(a_j·λ − 1) −
// c·λ, smooth and convex with exponentials that can overflow if the line
// search is careless.
type expSum struct {
	a [][]float64 // a[j] is row j
	c []float64
}

func (e *expSum) Dim() int { return len(e.c) }

func (e *expSum) Eval(x, grad []float64) float64 {
	for i := range grad {
		grad[i] = -e.c[i]
	}
	f := -dot(e.c, x)
	for _, row := range e.a {
		v := math.Exp(dot(row, x) - 1)
		f += v
		for i := range row {
			grad[i] += row[i] * v
		}
	}
	return f
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func TestLBFGSQuadratic(t *testing.T) {
	q := &quadratic{w: []float64{1, 10, 100}, c: []float64{3, -2, 0.5}}
	res, err := LBFGS(q, []float64{0, 0, 0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: %+v", res)
	}
	for i, want := range q.c {
		if math.Abs(res.X[i]-want) > 1e-6 {
			t.Fatalf("x[%d] = %g, want %g", i, res.X[i], want)
		}
	}
	if res.Iterations == 0 || res.Evaluations == 0 {
		t.Fatalf("bookkeeping: %+v", res)
	}
}

func TestLBFGSRosenbrock(t *testing.T) {
	res, err := LBFGS(rosenbrock{}, []float64{-1.2, 1}, Options{MaxIterations: 2000, GradTol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-1) > 1e-5 || math.Abs(res.X[1]-1) > 1e-5 {
		t.Fatalf("minimizer = %v, want (1,1); %+v", res.X, res)
	}
}

func TestSteepestDescentQuadratic(t *testing.T) {
	q := &quadratic{w: []float64{1, 4}, c: []float64{1, 2}}
	res, err := SteepestDescent(q, []float64{-3, 7}, Options{MaxIterations: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: %+v", res)
	}
	if math.Abs(res.X[0]-1) > 1e-6 || math.Abs(res.X[1]-2) > 1e-6 {
		t.Fatalf("minimizer = %v", res.X)
	}
}

func TestLBFGSBeatsSteepestOnIllConditioned(t *testing.T) {
	// Condition number 1e4: steepest descent zigzags, LBFGS should not.
	q := &quadratic{w: []float64{1, 1e4}, c: []float64{5, -5}}
	x0 := []float64{0, 0}
	lb, err := LBFGS(q, x0, Options{MaxIterations: 500, GradTol: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	sd, err := SteepestDescent(q, x0, Options{MaxIterations: 500, GradTol: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if !lb.Converged {
		t.Fatalf("LBFGS did not converge: %+v", lb)
	}
	if sd.Converged && sd.Iterations <= lb.Iterations {
		t.Fatalf("steepest descent (%d iters) unexpectedly beat LBFGS (%d iters)", sd.Iterations, lb.Iterations)
	}
}

func TestLBFGSExpSum(t *testing.T) {
	// Two variables, three exp terms; minimizer satisfies A x(λ) = c with
	// x_j = exp(a_j·λ − 1). Feasibility of c is arranged by construction:
	// pick λ*, set c = Σ_j a_j exp(a_j·λ* − 1).
	a := [][]float64{{1, 0}, {0, 1}, {1, 1}}
	lamStar := []float64{0.3, -0.7}
	c := make([]float64, 2)
	for _, row := range a {
		v := math.Exp(dot(row, lamStar) - 1)
		for i := range row {
			c[i] += row[i] * v
		}
	}
	e := &expSum{a: a, c: c}
	res, err := LBFGS(e, []float64{0, 0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: %+v", res)
	}
	for i := range lamStar {
		if math.Abs(res.X[i]-lamStar[i]) > 1e-6 {
			t.Fatalf("λ[%d] = %g, want %g", i, res.X[i], lamStar[i])
		}
	}
}

func TestLBFGSAlreadyOptimal(t *testing.T) {
	q := &quadratic{w: []float64{1, 1}, c: []float64{0, 0}}
	res, err := LBFGS(q, []float64{0, 0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Iterations != 0 {
		t.Fatalf("expected immediate convergence: %+v", res)
	}
}

type nanObjective struct{}

func (nanObjective) Dim() int { return 1 }
func (nanObjective) Eval(x, grad []float64) float64 {
	grad[0] = math.NaN()
	return math.NaN()
}

func TestNonFiniteStart(t *testing.T) {
	if _, err := LBFGS(nanObjective{}, []float64{0}, Options{}); err != ErrNonFinite {
		t.Fatalf("LBFGS err = %v, want ErrNonFinite", err)
	}
	if _, err := SteepestDescent(nanObjective{}, []float64{0}, Options{}); err != ErrNonFinite {
		t.Fatalf("SteepestDescent err = %v, want ErrNonFinite", err)
	}
}

func TestLBFGSDoesNotModifyStart(t *testing.T) {
	q := &quadratic{w: []float64{2}, c: []float64{4}}
	x0 := []float64{1}
	if _, err := LBFGS(q, x0, Options{}); err != nil {
		t.Fatal(err)
	}
	if x0[0] != 1 {
		t.Fatal("LBFGS modified x0")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.MaxIterations != 500 || o.GradTol != 1e-9 || o.Memory != 10 || o.InitialStep != 1 {
		t.Fatalf("defaults = %+v", o)
	}
	custom := Options{MaxIterations: 7, GradTol: 0.5, Memory: 3, InitialStep: 2}.withDefaults()
	if custom.MaxIterations != 7 || custom.GradTol != 0.5 || custom.Memory != 3 || custom.InitialStep != 2 {
		t.Fatalf("custom options overridden: %+v", custom)
	}
}

func TestLBFGSIterationBudget(t *testing.T) {
	res, err := LBFGS(rosenbrock{}, []float64{-1.2, 1}, Options{MaxIterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatal("3 iterations should not converge on Rosenbrock")
	}
	if res.Iterations != 3 {
		t.Fatalf("Iterations = %d, want 3", res.Iterations)
	}
}

// Property-style test: from many random starts, LBFGS reaches the global
// minimum of a random strictly convex quadratic.
func TestLBFGSRandomQuadratics(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(20)
		q := &quadratic{w: make([]float64, n), c: make([]float64, n)}
		for i := 0; i < n; i++ {
			q.w[i] = math.Exp(rng.NormFloat64() * 2) // spread of curvatures
			q.c[i] = rng.NormFloat64() * 10
		}
		x0 := make([]float64, n)
		for i := range x0 {
			x0[i] = rng.NormFloat64() * 10
		}
		res, err := LBFGS(q, x0, Options{MaxIterations: 1000, GradTol: 1e-8})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range q.c {
			if math.Abs(res.X[i]-q.c[i]) > 1e-4*(1+math.Abs(q.c[i])) {
				t.Fatalf("trial %d: x[%d] = %g, want %g (converged=%v, iters=%d)",
					trial, i, res.X[i], q.c[i], res.Converged, res.Iterations)
			}
		}
	}
}

func TestTraceCallback(t *testing.T) {
	q := &quadratic{w: []float64{1, 10}, c: []float64{2, -1}}
	var events []TraceEvent
	opts := Options{Trace: func(ev TraceEvent) { events = append(events, ev) }}
	res, err := LBFGS(q, []float64{5, 5}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("trace never invoked")
	}
	for i, ev := range events {
		if ev.Iteration != i {
			t.Fatalf("trace iterations out of order: %+v", events)
		}
	}
	// The first event precedes any line search; later events carry the
	// accepted step and its evaluation count.
	if first := events[0]; first.Step != 0 || first.LineSearchEvals != 0 {
		t.Fatalf("first event should have no step: %+v", first)
	}
	if len(events) > 1 {
		if ev := events[1]; ev.Step <= 0 || ev.LineSearchEvals == 0 {
			t.Fatalf("second event missing line-search info: %+v", ev)
		}
	}
	// The final traced gradient matches the converged result's.
	last := events[len(events)-1]
	if !res.Converged || last.GradNorm > 1e-6 {
		t.Fatalf("last traced gradient = %g (converged=%v)", last.GradNorm, res.Converged)
	}
	// Steepest descent and Newton honour the hook too.
	count := 0
	opts = Options{Trace: func(TraceEvent) { count++ }, MaxIterations: 50}
	if _, err := SteepestDescent(q, []float64{5, 5}, opts); err != nil {
		t.Fatal(err)
	}
	if count == 0 {
		t.Fatal("steepest descent trace never invoked")
	}
	count = 0
	qh := &quadraticH{*q}
	if _, err := Newton(qh, []float64{5, 5}, opts); err != nil {
		t.Fatal(err)
	}
	if count == 0 {
		t.Fatal("newton trace never invoked")
	}
}

func TestTraceBudgetExhaustion(t *testing.T) {
	// When the iteration budget runs out, one extra event with
	// Iteration == MaxIterations reports the final iterate, so the trace
	// tail always matches the returned Result.
	var events []TraceEvent
	opts := Options{MaxIterations: 3, Trace: func(ev TraceEvent) { events = append(events, ev) }}
	res, err := LBFGS(rosenbrock{}, []float64{-1.2, 1}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatal("3 iterations should not converge on Rosenbrock")
	}
	if len(events) != 4 {
		t.Fatalf("want 4 events (iters 0..3), got %d: %+v", len(events), events)
	}
	last := events[len(events)-1]
	if last.Iteration != res.Iterations {
		t.Fatalf("last event iteration %d != Result.Iterations %d", last.Iteration, res.Iterations)
	}
	if last.F != res.F || last.GradNorm != res.GradNorm {
		t.Fatalf("last event %+v does not match result %+v", last, res)
	}
}
