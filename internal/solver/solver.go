// Package solver provides the unconstrained numerical optimizers used to
// minimize the MaxEnt dual: a hand-rolled limited-memory BFGS (the paper
// solves its Lagrangian dual with Nocedal's LBFGS [16]) with a strong-Wolfe
// line search, and a steepest-descent baseline for the Malouf-style
// algorithm comparison referenced in Sec. 3.3.
package solver

import (
	"errors"
	"math"
	"time"
)

// Objective is a smooth function f: ℝⁿ → ℝ with gradient. Eval must write
// the gradient at x into grad (len == Dim) and return f(x).
//
// The optimizers call Eval from a single goroutine, but Eval itself may
// be internally parallel (the MaxEnt dual shards its kernels over a
// worker pool). Such an objective must still behave as a pure function
// of x — same inputs, same outputs, at any internal worker count — with
// one sanctioned exception: after its cancellation signal fires it may
// return arbitrary (stale) values, provided the matching
// Options.Interrupt hook reports true from then on. The optimizers
// guarantee they poll Interrupt both at every outer iteration and
// whenever a line search stalls, so post-cancellation garbage is never
// misread as convergence or reported as a result.
type Objective interface {
	Dim() int
	Eval(x, grad []float64) float64
}

// Warm starts: every optimizer takes its starting iterate x0 explicitly,
// so seeding from a previous solution is simply passing that solution as
// x0 — convexity of the MaxEnt dual guarantees the same minimizer from
// any start, and a near-optimal seed cuts the iteration count (the effect
// Options.Trace and Result.Iterations expose). The maxent package's
// Options.WarmStart builds on exactly this entry point.

// Options tunes an optimizer run. Zero values select the defaults noted
// on each field.
type Options struct {
	// MaxIterations bounds outer iterations. Default 500.
	MaxIterations int
	// GradTol declares convergence when the gradient's infinity norm
	// falls below it. Default 1e-9.
	GradTol float64
	// Memory is the number of (s, y) correction pairs LBFGS keeps.
	// Default 10, as in Nocedal's reference implementation.
	Memory int
	// InitialStep is the first trial step of the very first line search.
	// Default 1.
	InitialStep float64
	// Trace, when non-nil, is invoked once per outer iteration with a
	// TraceEvent describing the iterate — a lightweight progress hook for
	// long solves and the raw feed for convergence-trajectory audits. When
	// a maxent solve runs with a telemetry registry in its context, a
	// recorder feeding the pmaxent_dual_* series is chained in front of
	// this callback; both fire. If the iteration budget runs out, one
	// extra event with Iteration == MaxIterations reports the final
	// iterate, so the trace always ends at the returned point.
	Trace func(TraceEvent)
	// Interrupt, when non-nil, is polled once per outer iteration — and
	// again when a line search stalls, so an internally-parallel
	// objective whose kernels drained mid-evaluation surfaces as
	// ErrInterrupted rather than as a bogus stalled result (see
	// Objective). When it returns true the optimizer abandons the run
	// and returns ErrInterrupted. Parallel component solves use it to
	// cancel in-flight siblings as soon as one component fails; maxent
	// also chains context cancellation through it.
	Interrupt func() bool
}

// TraceEvent is one point of an optimizer's convergence trajectory, handed
// to Options.Trace at the top of every outer iteration. Step and
// LineSearchEvals describe the line search that *produced* the current
// iterate, so they are zero on the very first event (no step has been
// taken yet) and for optimizers without a line search (GIS/IIS-style
// scaling methods report Step = 0).
type TraceEvent struct {
	// Iteration is the 0-based outer iteration number.
	Iteration int
	// F is the objective value at the current iterate.
	F float64
	// GradNorm is the infinity norm of the gradient at the current
	// iterate (for scaling methods: the worst constraint deviation).
	GradNorm float64
	// Step is the accepted step length of the line search that produced
	// this iterate (0 on the first event).
	Step float64
	// LineSearchEvals counts objective evaluations spent by that line
	// search (0 on the first event).
	LineSearchEvals int
}

func (o Options) withDefaults() Options {
	if o.MaxIterations <= 0 {
		o.MaxIterations = 500
	}
	if o.GradTol <= 0 {
		o.GradTol = 1e-9
	}
	if o.Memory <= 0 {
		o.Memory = 10
	}
	if o.InitialStep <= 0 {
		o.InitialStep = 1
	}
	return o
}

// Result reports the outcome of an optimizer run.
type Result struct {
	// X is the final iterate.
	X []float64
	// F is the objective value at X.
	F float64
	// GradNorm is the infinity norm of the gradient at X.
	GradNorm float64
	// Iterations is the number of outer iterations performed; the paper's
	// Figure 7 reports this quantity.
	Iterations int
	// Evaluations counts calls to Objective.Eval.
	Evaluations int
	// Converged reports whether GradTol was reached (as opposed to
	// stopping on the iteration budget or a stalled line search).
	Converged bool
	// Duration is the wall-clock time of the run.
	Duration time.Duration
}

// ErrNonFinite is returned when the objective produces NaN or ±Inf at the
// starting point, which indicates an infeasible or mis-scaled problem.
var ErrNonFinite = errors.New("solver: objective is not finite at the starting point")

// ErrInterrupted is returned when Options.Interrupt asked the optimizer
// to stop before reaching its tolerance or iteration budget.
var ErrInterrupted = errors.New("solver: interrupted")

// interrupted polls the Interrupt hook (nil-safe).
func (o Options) interrupted() bool { return o.Interrupt != nil && o.Interrupt() }

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

func allFinite(x []float64) bool {
	for _, v := range x {
		if !finite(v) {
			return false
		}
	}
	return true
}
