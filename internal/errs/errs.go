// Package errs defines the sentinel errors shared across the pipeline's
// internal packages and re-exported on the privacymaxent facade. Internal
// packages wrap (or Is-match) these sentinels so that callers — library
// users and the pmaxentd HTTP server alike — can classify any pipeline
// failure with errors.Is without reaching into internal packages:
//
//	if errors.Is(err, privacymaxent.ErrInfeasible) { ... } // 422 territory
//
// The package exists (rather than declaring the sentinels on the facade)
// because the facade imports every internal package; internal packages
// declaring their membership in the taxonomy must import something lower
// in the graph.
package errs

import "errors"

var (
	// ErrInfeasible marks a contradiction between constraints: the
	// published data's invariants plus the supplied background knowledge
	// admit no probability distribution. Every maxent.ErrInfeasible
	// matches it. The pmaxentd server maps it to 422 Unprocessable
	// Entity — the request was well-formed, the math says no.
	ErrInfeasible = errors.New("privacymaxent: infeasible constraints")

	// ErrInvalidSchema marks structurally invalid schema input: nil or
	// duplicate attributes, more than one sensitive attribute. The
	// server maps it to 400 Bad Request.
	ErrInvalidSchema = errors.New("privacymaxent: invalid schema")

	// ErrNoSensitiveAttribute marks an operation that requires a
	// sensitive attribute running over data that has none. The server
	// maps it to 400 Bad Request.
	ErrNoSensitiveAttribute = errors.New("privacymaxent: no sensitive attribute")
)
