package randomize

import (
	"math"
	"math/rand"
	"testing"

	"privacymaxent/internal/dataset"
	"privacymaxent/internal/maxent"
	"privacymaxent/internal/metrics"
	"privacymaxent/internal/solver"
)

func TestMechanismProbabilities(t *testing.T) {
	m := Mechanism{Rho: 0.7, M: 4}
	for s := 0; s < m.M; s++ {
		var sum float64
		for o := 0; o < m.M; o++ {
			p := m.Prob(o, s)
			if p < 0 || p > 1 {
				t.Fatalf("Prob(%d|%d) = %g", o, s, p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("column %d sums to %g", s, sum)
		}
	}
	if got := m.Prob(2, 2); math.Abs(got-(0.7+0.3/4)) > 1e-12 {
		t.Fatalf("diagonal = %g", got)
	}
	if err := (Mechanism{Rho: 1.5, M: 4}).Validate(); err == nil {
		t.Fatal("expected rho validation error")
	}
	if err := (Mechanism{Rho: 0.5, M: 1}).Validate(); err == nil {
		t.Fatal("expected domain validation error")
	}
}

// correlatedTable builds a table with few, populous QI groups and a
// strongly group-dependent SA so reconstruction quality is measurable.
func correlatedTable(rng *rand.Rand, n int) *dataset.Table {
	g := dataset.NewAttribute("G", dataset.QuasiIdentifier, []string{"g0", "g1", "g2", "g3"})
	s := dataset.NewAttribute("S", dataset.Sensitive, []string{"s0", "s1", "s2", "s3"})
	tbl := dataset.NewTable(dataset.MustSchema(g, s))
	for i := 0; i < n; i++ {
		grp := rng.Intn(4)
		// Group j prefers value j with probability 0.7.
		val := grp
		if rng.Float64() > 0.7 {
			val = rng.Intn(4)
		}
		if err := tbl.AppendCoded([]int{grp, val}); err != nil {
			panic(err)
		}
	}
	return tbl
}

func TestPerturbIdentityAtRhoOne(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tbl := correlatedTable(rng, 100)
	pub, mech, err := Perturb(tbl, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if mech.M != 4 {
		t.Fatalf("M = %d", mech.M)
	}
	for r := 0; r < tbl.Len(); r++ {
		if pub.SACode(r) != tbl.SACode(r) {
			t.Fatalf("row %d changed at rho=1", r)
		}
	}
}

func TestPerturbDeterministicAndDisturbing(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tbl := correlatedTable(rng, 400)
	a, _, err := Perturb(tbl, 0.5, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Perturb(tbl, 0.5, 9)
	if err != nil {
		t.Fatal(err)
	}
	changed := 0
	for r := 0; r < tbl.Len(); r++ {
		if a.SACode(r) != b.SACode(r) {
			t.Fatal("Perturb is not deterministic")
		}
		if a.SACode(r) != tbl.SACode(r) {
			changed++
		}
		// QI untouched.
		if a.Row(r)[0] != tbl.Row(r)[0] {
			t.Fatal("QI column modified")
		}
	}
	// With rho = 0.5 and uniform redraw over 4 values, ~37.5% of records
	// change.
	frac := float64(changed) / float64(tbl.Len())
	if frac < 0.25 || frac > 0.5 {
		t.Fatalf("changed fraction = %g, want ≈ 0.375", frac)
	}
}

func TestEstimateBeatsNaiveBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tbl := correlatedTable(rng, 4000)
	truthU := dataset.NewUniverse(tbl)
	truth, err := dataset.TrueConditional(tbl, truthU)
	if err != nil {
		t.Fatal(err)
	}
	pub, mech, err := Perturb(tbl, 0.5, 23)
	if err != nil {
		t.Fatal(err)
	}

	est, stats, err := Estimate(pub, mech, 3, maxent.Options{Solver: solver.Options{MaxIterations: 5000}})
	if err != nil {
		t.Fatal(err)
	}
	naive, err := ObservedConditional(pub)
	if err != nil {
		t.Fatal(err)
	}

	// The universes coincide structurally (QI untouched): remap truth by
	// key order to compare. The perturbed table visits rows in the same
	// order, so the universes are identical.
	accEst, err := metrics.EstimationAccuracy(remap(truth, est.Universe()), est)
	if err != nil {
		t.Fatal(err)
	}
	accNaive, err := metrics.EstimationAccuracy(remap(truth, naive.Universe()), naive)
	if err != nil {
		t.Fatal(err)
	}
	if accEst >= accNaive {
		t.Fatalf("MaxEnt inversion (%g) should beat the naive read-off (%g) at rho=0.5", accEst, accNaive)
	}
	if stats.MaxViolation > 1e-3 {
		t.Fatalf("violation %g", stats.MaxViolation)
	}
	// Posterior rows are distributions.
	for qid := 0; qid < est.Universe().Len(); qid++ {
		var sum float64
		for s := 0; s < est.NumSA(); s++ {
			sum += est.P(qid, s)
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("row %d sums to %g", qid, sum)
		}
	}
}

// remap rebuilds a conditional over the target universe, matching QI keys.
func remap(c *dataset.Conditional, target *dataset.Universe) *dataset.Conditional {
	out := dataset.NewConditional(target, c.NumSA())
	src := c.Universe()
	for qid := 0; qid < target.Len(); qid++ {
		if srcID, ok := src.QID(target.Key(qid)); ok {
			for s := 0; s < c.NumSA(); s++ {
				out.Set(qid, s, c.P(srcID, s))
			}
		}
	}
	return out
}

func TestEstimateAtRhoOneRecoversTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	tbl := correlatedTable(rng, 800)
	pub, mech, err := Perturb(tbl, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	// A tight tolerance (z = 0.5): with exact counts the boxes pin the
	// reconstruction near the truth. (Wide boxes would let MaxEnt drift
	// toward uniform inside them — by design.)
	est, _, err := Estimate(pub, mech, 0.5, maxent.Options{Solver: solver.Options{MaxIterations: 5000}})
	if err != nil {
		t.Fatal(err)
	}
	truth, err := dataset.TrueConditional(tbl, dataset.NewUniverse(tbl))
	if err != nil {
		t.Fatal(err)
	}
	acc, err := metrics.EstimationAccuracy(remap(truth, est.Universe()), est)
	if err != nil {
		t.Fatal(err)
	}
	// At rho = 1 the boxes collapse around exact counts: near-perfect
	// reconstruction (small slack from the z·σ tolerance).
	if acc > 0.05 {
		t.Fatalf("accuracy at rho=1 = %g, want ≈ 0", acc)
	}
}

func TestEstimateValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tbl := correlatedTable(rng, 50)
	pub, mech, err := Perturb(tbl, 0.8, 1)
	if err != nil {
		t.Fatal(err)
	}
	bad := mech
	bad.M = 7
	if _, _, err := Estimate(pub, bad, 3, maxent.Options{}); err == nil {
		t.Fatal("expected domain mismatch error")
	}
	if _, _, err := Perturb(tbl, -0.1, 1); err == nil {
		t.Fatal("expected rho validation error")
	}
	noSA := dataset.NewTable(dataset.MustSchema(
		dataset.NewAttribute("G", dataset.QuasiIdentifier, []string{"x"}),
	))
	noSA.MustAppend("x")
	if _, _, err := Perturb(noSA, 0.5, 1); err == nil {
		t.Fatal("expected no-SA error")
	}
}
