// Package randomize implements the randomization disguising method the
// paper's future work (Sec. 8) targets: uniform randomized response on
// the sensitive attribute (the Agrawal/Evfimievski line of work the
// related-work section cites). Each published record keeps its true
// sensitive value with probability ρ and otherwise reports a value drawn
// uniformly from the whole SA domain; ρ is public.
//
// Privacy-MaxEnt extends naturally: the unknowns are the true joints
// P(Q, S); the QI marginals give exact equality constraints
// Σ_s P(q,s) = P(q); and each observed perturbed count pins an expected
// linear combination Σ_s M(s′|s)·P(q,s) of the unknowns. Because the
// observation is a sample (not an expectation), equality would be
// infeasible, so the counts enter as sampling-tolerance *boxes* — the
// Sec. 4.5 inequality machinery — and the maximum-entropy distribution
// inside the box is the least-biased reconstruction.
package randomize

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"privacymaxent/internal/bucket"
	"privacymaxent/internal/constraint"
	"privacymaxent/internal/dataset"
	"privacymaxent/internal/errs"
	"privacymaxent/internal/maxent"
	"privacymaxent/internal/telemetry"
)

// Mechanism is uniform randomized response over an SA domain of
// cardinality M: report the truth with probability Rho, otherwise a
// uniform draw from the whole domain (which may repeat the truth).
type Mechanism struct {
	Rho float64
	M   int
}

// Prob returns P(observe = o | true = s).
func (m Mechanism) Prob(o, s int) float64 {
	p := (1 - m.Rho) / float64(m.M)
	if o == s {
		p += m.Rho
	}
	return p
}

// Validate checks the mechanism parameters.
func (m Mechanism) Validate() error {
	if m.Rho < 0 || m.Rho > 1 {
		return fmt.Errorf("randomize: retention probability %g outside [0,1]", m.Rho)
	}
	if m.M < 2 {
		return fmt.Errorf("randomize: SA domain of size %d cannot be randomized", m.M)
	}
	return nil
}

// Perturb publishes the table under the mechanism: the SA column of every
// record is re-drawn per Mechanism, QI columns are untouched.
// Deterministic for a given seed.
func Perturb(t *dataset.Table, rho float64, seed int64) (*dataset.Table, Mechanism, error) {
	if t.Schema().SAIndex() < 0 {
		return nil, Mechanism{}, fmt.Errorf("randomize: table has no sensitive attribute")
	}
	mech := Mechanism{Rho: rho, M: t.Schema().SA().Cardinality()}
	if err := mech.Validate(); err != nil {
		return nil, Mechanism{}, err
	}
	rng := rand.New(rand.NewSource(seed))
	out := dataset.NewTable(t.Schema())
	saPos := t.Schema().SAIndex()
	row := make([]int, t.Schema().Len())
	for r := 0; r < t.Len(); r++ {
		copy(row, t.Row(r))
		if rng.Float64() >= rho {
			row[saPos] = rng.Intn(mech.M)
		}
		if err := out.AppendCoded(row); err != nil {
			return nil, Mechanism{}, err
		}
	}
	return out, mech, nil
}

// Estimate reconstructs the adversary's MaxEnt posterior P(S | Q) from a
// perturbed publication. z sets the sampling-tolerance width (the box
// half-width per observed cell is z·σ̂ + 1/N, with σ̂ the binomial standard
// error of the observed share); z ≤ 0 defaults to 3. The returned stats
// describe the box-constrained dual solve. It is a thin wrapper over
// EstimateContext with a background context.
func Estimate(published *dataset.Table, mech Mechanism, z float64, opts maxent.Options) (*dataset.Conditional, maxent.Stats, error) {
	return EstimateContext(context.Background(), published, mech, z, opts)
}

// EstimateContext is Estimate with the context threaded into the
// underlying inequality solve: cancellation interrupts the optimizer
// (solver.ErrInterrupted) and telemetry installed in ctx instruments the
// solve under a "randomize.estimate" span.
func EstimateContext(ctx context.Context, published *dataset.Table, mech Mechanism, z float64, opts maxent.Options) (*dataset.Conditional, maxent.Stats, error) {
	ctx, span := telemetry.Start(ctx, "randomize.estimate",
		telemetry.Int("records", published.Len()))
	defer span.End()
	if err := mech.Validate(); err != nil {
		return nil, maxent.Stats{}, err
	}
	if published.Schema().SAIndex() < 0 {
		return nil, maxent.Stats{}, fmt.Errorf("randomize: published table has no sensitive attribute: %w", errs.ErrNoSensitiveAttribute)
	}
	if mech.M != published.Schema().SA().Cardinality() {
		return nil, maxent.Stats{}, fmt.Errorf("randomize: mechanism domain %d does not match SA cardinality %d",
			mech.M, published.Schema().SA().Cardinality())
	}
	if z <= 0 {
		z = 3
	}
	// The estimator is the offline twin of the served
	// RandomizedResponseScheme path: group the perturbed table by QI
	// tuple into a bucketized view, build the scheme's invariant rows
	// (exact QI equalities + observation boxes) over the view's term
	// space, and solve the boxed dual. Sharing the row builders keeps
	// the two paths' constraint systems identical by construction; see
	// DESIGN.md §13 for the (intentional) divergence from the older
	// full-domain formulation.
	view, err := GroupByQI(published)
	if err != nil {
		return nil, maxent.Stats{}, err
	}
	sp := constraint.NewSpace(view)
	sys, ineqs, err := Invariants(sp, mech, z)
	if err != nil {
		return nil, maxent.Stats{}, err
	}
	sol, err := maxent.SolveWithInequalitiesContext(ctx, sys, ineqs, opts)
	if err != nil {
		return nil, maxent.Stats{}, err
	}
	return sol.Posterior(), sol.Stats, nil
}

// GroupByQI builds the randomized-response published view: one bucket
// per distinct QI tuple, holding that tuple's records with their
// (perturbed) SA values. Bucket order follows the table's universe
// (first-appearance order of QI keys), so the construction is
// deterministic and bucket b's single distinct QID is qid b.
func GroupByQI(t *dataset.Table) (*bucket.Bucketized, error) {
	if t.Schema().SAIndex() < 0 {
		return nil, fmt.Errorf("randomize: table has no sensitive attribute: %w", errs.ErrNoSensitiveAttribute)
	}
	u := dataset.NewUniverse(t)
	groups := make([][]int, u.Len())
	for r := 0; r < t.Len(); r++ {
		qid, ok := u.QID(t.QIKey(r))
		if !ok {
			return nil, fmt.Errorf("randomize: row %d missing from universe", r)
		}
		groups[qid] = append(groups[qid], r)
	}
	return bucket.FromPartition(t, groups)
}

// Invariants builds what a randomized-response view certifies, over the
// view's term space: per-bucket QI marginal equalities (exact — QI
// columns are unperturbed) and, for every observed (QI, SA′) cell, a
// sampling-tolerance observation box
//
//	Σ_s M(s′|s)·P(q,s,b) ∈ [target − ε, target + ε],
//
// with target the observed share, σ̂ its binomial standard error, and
// ε = z·σ̂ + 1/N. SA values never observed for a QI group have no
// variable in the space (Eq. 6 zero-invariants held structurally), so
// both the coefficient sums and the zero-count boxes are restricted to
// the observed support. The view must be QI-grouped: every bucket has
// exactly one distinct QI tuple (GroupByQI's output shape).
func Invariants(sp *constraint.Space, mech Mechanism, z float64) (*constraint.System, []maxent.Inequality, error) {
	if err := mech.Validate(); err != nil {
		return nil, nil, err
	}
	d := sp.Data()
	if mech.M != d.SACardinality() {
		return nil, nil, fmt.Errorf("randomize: mechanism domain %d does not match SA cardinality %d",
			mech.M, d.SACardinality())
	}
	if z <= 0 {
		z = 3
	}
	bigN := float64(d.N())
	sys := constraint.NewSystem(sp)
	var ineqs []maxent.Inequality
	for b := 0; b < d.NumBuckets(); b++ {
		bk := d.Bucket(b)
		qids := bk.DistinctQIDs()
		if len(qids) != 1 {
			return nil, nil, fmt.Errorf("randomize: bucket %d has %d distinct QI tuples, want 1 (view must be QI-grouped): %w",
				b, len(qids), errs.ErrInvalidSchema)
		}
		q := qids[0]
		sas := bk.DistinctSAs()

		// Exact QI marginal: Σ_s P(q,s,b) = P(q ∧ b).
		terms := make([]int, 0, len(sas))
		coeffs := make([]float64, 0, len(sas))
		for _, s := range sas {
			id, ok := sp.Index(constraint.Term{QID: q, SA: s, Bucket: b})
			if !ok {
				return nil, nil, fmt.Errorf("randomize: bucket term missing from space")
			}
			terms = append(terms, id)
			coeffs = append(coeffs, 1)
		}
		sys.MustAdd(constraint.Constraint{
			Kind:   constraint.QIInvariant,
			Label:  fmt.Sprintf("QI q%d b%d", q+1, b+1),
			Terms:  terms,
			Coeffs: coeffs,
			RHS:    d.PQB(q, b),
		})

		// Observation boxes over the observed support.
		for _, o := range sas {
			bterms := make([]int, 0, len(sas))
			bcoeffs := make([]float64, 0, len(sas))
			for _, s := range sas {
				id, ok := sp.Index(constraint.Term{QID: q, SA: s, Bucket: b})
				if !ok {
					return nil, nil, fmt.Errorf("randomize: bucket term missing from space")
				}
				bterms = append(bterms, id)
				bcoeffs = append(bcoeffs, mech.Prob(o, s))
			}
			target := d.PSB(o, b)
			sigma := math.Sqrt(math.Max(target*(1-target), target) / bigN) // binomial SE of the share
			eps := z*sigma + 1/bigN
			ineqs = append(ineqs, maxent.Inequality{
				Label:  fmt.Sprintf("obs q%d s'%d", q+1, o+1),
				Terms:  bterms,
				Coeffs: bcoeffs,
				Lo:     math.Max(0, target-eps),
				Hi:     target + eps,
			})
		}
	}
	return sys, ineqs, nil
}

// ObservedConditional is the naive baseline: read P(S|Q) off the
// perturbed table as if it were the truth. It is biased toward uniform
// by the mechanism; Estimate should beat it whenever ρ < 1.
func ObservedConditional(published *dataset.Table) (*dataset.Conditional, error) {
	u := dataset.NewUniverse(published)
	return dataset.TrueConditional(published, u)
}
