// Package randomize implements the randomization disguising method the
// paper's future work (Sec. 8) targets: uniform randomized response on
// the sensitive attribute (the Agrawal/Evfimievski line of work the
// related-work section cites). Each published record keeps its true
// sensitive value with probability ρ and otherwise reports a value drawn
// uniformly from the whole SA domain; ρ is public.
//
// Privacy-MaxEnt extends naturally: the unknowns are the true joints
// P(Q, S); the QI marginals give exact equality constraints
// Σ_s P(q,s) = P(q); and each observed perturbed count pins an expected
// linear combination Σ_s M(s′|s)·P(q,s) of the unknowns. Because the
// observation is a sample (not an expectation), equality would be
// infeasible, so the counts enter as sampling-tolerance *boxes* — the
// Sec. 4.5 inequality machinery — and the maximum-entropy distribution
// inside the box is the least-biased reconstruction.
package randomize

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"privacymaxent/internal/constraint"
	"privacymaxent/internal/dataset"
	"privacymaxent/internal/errs"
	"privacymaxent/internal/maxent"
	"privacymaxent/internal/telemetry"
)

// Mechanism is uniform randomized response over an SA domain of
// cardinality M: report the truth with probability Rho, otherwise a
// uniform draw from the whole domain (which may repeat the truth).
type Mechanism struct {
	Rho float64
	M   int
}

// Prob returns P(observe = o | true = s).
func (m Mechanism) Prob(o, s int) float64 {
	p := (1 - m.Rho) / float64(m.M)
	if o == s {
		p += m.Rho
	}
	return p
}

// Validate checks the mechanism parameters.
func (m Mechanism) Validate() error {
	if m.Rho < 0 || m.Rho > 1 {
		return fmt.Errorf("randomize: retention probability %g outside [0,1]", m.Rho)
	}
	if m.M < 2 {
		return fmt.Errorf("randomize: SA domain of size %d cannot be randomized", m.M)
	}
	return nil
}

// Perturb publishes the table under the mechanism: the SA column of every
// record is re-drawn per Mechanism, QI columns are untouched.
// Deterministic for a given seed.
func Perturb(t *dataset.Table, rho float64, seed int64) (*dataset.Table, Mechanism, error) {
	if t.Schema().SAIndex() < 0 {
		return nil, Mechanism{}, fmt.Errorf("randomize: table has no sensitive attribute")
	}
	mech := Mechanism{Rho: rho, M: t.Schema().SA().Cardinality()}
	if err := mech.Validate(); err != nil {
		return nil, Mechanism{}, err
	}
	rng := rand.New(rand.NewSource(seed))
	out := dataset.NewTable(t.Schema())
	saPos := t.Schema().SAIndex()
	row := make([]int, t.Schema().Len())
	for r := 0; r < t.Len(); r++ {
		copy(row, t.Row(r))
		if rng.Float64() >= rho {
			row[saPos] = rng.Intn(mech.M)
		}
		if err := out.AppendCoded(row); err != nil {
			return nil, Mechanism{}, err
		}
	}
	return out, mech, nil
}

// Estimate reconstructs the adversary's MaxEnt posterior P(S | Q) from a
// perturbed publication. z sets the sampling-tolerance width (the box
// half-width per observed cell is z·σ̂ + 1/N, with σ̂ the binomial standard
// error of the observed share); z ≤ 0 defaults to 3. The returned stats
// describe the box-constrained dual solve. It is a thin wrapper over
// EstimateContext with a background context.
func Estimate(published *dataset.Table, mech Mechanism, z float64, opts maxent.Options) (*dataset.Conditional, maxent.Stats, error) {
	return EstimateContext(context.Background(), published, mech, z, opts)
}

// EstimateContext is Estimate with the context threaded into the
// underlying inequality solve: cancellation interrupts the optimizer
// (solver.ErrInterrupted) and telemetry installed in ctx instruments the
// solve under a "randomize.estimate" span.
func EstimateContext(ctx context.Context, published *dataset.Table, mech Mechanism, z float64, opts maxent.Options) (*dataset.Conditional, maxent.Stats, error) {
	ctx, span := telemetry.Start(ctx, "randomize.estimate",
		telemetry.Int("records", published.Len()))
	defer span.End()
	if err := mech.Validate(); err != nil {
		return nil, maxent.Stats{}, err
	}
	if published.Schema().SAIndex() < 0 {
		return nil, maxent.Stats{}, fmt.Errorf("randomize: published table has no sensitive attribute: %w", errs.ErrNoSensitiveAttribute)
	}
	if mech.M != published.Schema().SA().Cardinality() {
		return nil, maxent.Stats{}, fmt.Errorf("randomize: mechanism domain %d does not match SA cardinality %d",
			mech.M, published.Schema().SA().Cardinality())
	}
	if z <= 0 {
		z = 3
	}
	u := dataset.NewUniverse(published)
	m := mech.M
	n := u.Len() * m
	bigN := float64(published.Len())
	varIdx := func(qid, s int) int { return qid*m + s }

	// Observed perturbed counts per (q, s′).
	observed := make([]int, n)
	for r := 0; r < published.Len(); r++ {
		qid, ok := u.QID(published.QIKey(r))
		if !ok {
			return nil, maxent.Stats{}, fmt.Errorf("randomize: row %d missing from universe", r)
		}
		observed[varIdx(qid, published.SACode(r))]++
	}

	// Equalities: Σ_s P(q,s) = P(q) (exact — QI values are unperturbed).
	var cons []constraint.Constraint
	for qid := 0; qid < u.Len(); qid++ {
		terms := make([]int, m)
		coeffs := make([]float64, m)
		for s := 0; s < m; s++ {
			terms[s] = varIdx(qid, s)
			coeffs[s] = 1
		}
		cons = append(cons, constraint.Constraint{
			Kind:   constraint.QIInvariant,
			Label:  fmt.Sprintf("QI q%d", qid+1),
			Terms:  terms,
			Coeffs: coeffs,
			RHS:    u.P(qid),
		})
	}

	// Boxes: for each (q, s′), Σ_s M(s′|s)·P(q,s) within sampling
	// tolerance of the observed share.
	var ineqs []maxent.Inequality
	for qid := 0; qid < u.Len(); qid++ {
		for o := 0; o < m; o++ {
			terms := make([]int, m)
			coeffs := make([]float64, m)
			for s := 0; s < m; s++ {
				terms[s] = varIdx(qid, s)
				coeffs[s] = mech.Prob(o, s)
			}
			target := float64(observed[varIdx(qid, o)]) / bigN
			sigma := math.Sqrt(math.Max(target*(1-target), target) / bigN) // binomial SE of the share
			eps := z*sigma + 1/bigN
			ineqs = append(ineqs, maxent.Inequality{
				Label:  fmt.Sprintf("obs q%d s'%d", qid+1, o+1),
				Terms:  terms,
				Coeffs: coeffs,
				Lo:     math.Max(0, target-eps),
				Hi:     target + eps,
			})
		}
	}

	// Initialize from the independent joint P(q)·P̂(s): any variable the
	// solver leaves untouched stays at a sane prior.
	init := make([]float64, n)
	for qid := 0; qid < u.Len(); qid++ {
		for s := 0; s < m; s++ {
			init[varIdx(qid, s)] = u.P(qid) / float64(m)
		}
	}

	x, stats, err := maxent.SolveConstraintsWithInequalitiesContext(ctx, n, cons, ineqs, init, opts)
	if err != nil {
		return nil, maxent.Stats{}, err
	}
	cond := dataset.NewConditional(u, m)
	for qid := 0; qid < u.Len(); qid++ {
		pq := u.P(qid)
		if pq <= 0 {
			continue
		}
		for s := 0; s < m; s++ {
			cond.Set(qid, s, math.Max(0, x[varIdx(qid, s)])/pq)
		}
	}
	cond.Normalize()
	return cond, stats, nil
}

// ObservedConditional is the naive baseline: read P(S|Q) off the
// perturbed table as if it were the truth. It is biased toward uniform
// by the mechanism; Estimate should beat it whenever ρ < 1.
func ObservedConditional(published *dataset.Table) (*dataset.Conditional, error) {
	u := dataset.NewUniverse(published)
	return dataset.TrueConditional(published, u)
}
