package bucket

import (
	"math"
	"math/rand"
	"reflect"
	"strconv"
	"testing"
	"testing/quick"

	"privacymaxent/internal/dataset"
)

func paperBucketized(t *testing.T) *Bucketized {
	t.Helper()
	d, err := FromPartition(dataset.PaperExample(), dataset.PaperBuckets())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestFromPartitionPaperExample(t *testing.T) {
	d := paperBucketized(t)
	if d.NumBuckets() != 3 {
		t.Fatalf("NumBuckets = %d, want 3", d.NumBuckets())
	}
	if d.N() != 10 {
		t.Fatalf("N = %d, want 10", d.N())
	}
	// Figure 1(c): bucket 1 holds {q1, q1, q2, q3} and SA multiset
	// {s1, s2, s2, s3}.
	b1 := d.Bucket(0)
	if got := b1.Size(); got != 4 {
		t.Fatalf("bucket 1 size = %d, want 4", got)
	}
	if got := b1.DistinctQIDs(); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Fatalf("bucket 1 distinct qids = %v, want [0 1 2]", got)
	}
	sa := d.Schema().SA()
	if got := b1.SACount(sa.MustCode("Flu")); got != 2 {
		t.Fatalf("bucket 1 Flu count = %d, want 2 (s2 appears twice)", got)
	}
	if got := b1.SACount(sa.MustCode("Breast Cancer")); got != 1 {
		t.Fatalf("bucket 1 Breast Cancer count = %d, want 1", got)
	}
	if got := b1.SACount(sa.MustCode("HIV")); got != 0 {
		t.Fatalf("bucket 1 HIV count = %d, want 0", got)
	}
	// Paper Sec. 5.2 examples: P(q1, 1) = 2/10, P(s4, 2) = 1/10.
	if got := d.PQB(0, 0); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("P(q1, b1) = %g, want 0.2", got)
	}
	if got := d.PSB(sa.MustCode("HIV"), 1); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("P(s4, b2) = %g, want 0.1", got)
	}
	// Zero-invariant examples: q1 and s1 do not appear in bucket 3.
	if got := d.PQB(0, 2); got != 0 {
		t.Fatalf("P(q1, b3) = %g, want 0", got)
	}
	if got := d.PSB(sa.MustCode("Breast Cancer"), 2); got != 0 {
		t.Fatalf("P(s1, b3) = %g, want 0", got)
	}
}

func TestFromPartitionValidation(t *testing.T) {
	tbl := dataset.PaperExample()
	cases := []struct {
		name   string
		groups [][]int
	}{
		{"empty group", [][]int{{0, 1}, {}}},
		{"row out of range", [][]int{{0, 99}}},
		{"duplicate row", [][]int{{0, 1}, {1, 2}}},
		{"missing row", [][]int{{0, 1, 2}}},
	}
	for _, tc := range cases {
		if _, err := FromPartition(tbl, tc.groups); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestBucketsWith(t *testing.T) {
	d := paperBucketized(t)
	// q1 appears in buckets 1 and 2 (0-based 0, 1).
	if got := d.BucketsWithQID(0); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("BucketsWithQID(q1) = %v, want [0 1]", got)
	}
	flu := d.Schema().SA().MustCode("Flu")
	if got := d.BucketsWithSA(flu); !reflect.DeepEqual(got, []int{0, 2}) {
		t.Fatalf("BucketsWithSA(Flu) = %v, want [0 2]", got)
	}
}

func TestPBSumsToOne(t *testing.T) {
	d := paperBucketized(t)
	var sum float64
	for b := 0; b < d.NumBuckets(); b++ {
		sum += d.PB(b)
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("sum P(b) = %g, want 1", sum)
	}
}

// randomTable builds a table with nQI quasi-identifier attributes of the
// given cardinality and an SA attribute whose values are drawn from a
// skewed distribution, mimicking real microdata.
func randomTable(rng *rand.Rand, rows, nQI, qiCard, saCard int) *dataset.Table {
	attrs := make([]*dataset.Attribute, 0, nQI+1)
	for i := 0; i < nQI; i++ {
		dom := make([]string, qiCard)
		for v := range dom {
			dom[v] = string(rune('a'+i)) + strconv.Itoa(v)
		}
		attrs = append(attrs, dataset.NewAttribute(string(rune('A'+i)), dataset.QuasiIdentifier, dom))
	}
	saDom := make([]string, saCard)
	for v := range saDom {
		saDom[v] = "s" + strconv.Itoa(v)
	}
	attrs = append(attrs, dataset.NewAttribute("SA", dataset.Sensitive, saDom))
	t := dataset.NewTable(dataset.MustSchema(attrs...))
	row := make([]int, nQI+1)
	for r := 0; r < rows; r++ {
		for i := 0; i < nQI; i++ {
			row[i] = rng.Intn(qiCard)
		}
		// Zipf-ish skew on the SA value.
		s := rng.Intn(saCard)
		if rng.Intn(3) == 0 {
			s = 0
		}
		row[nQI] = s
		if err := t.AppendCoded(row); err != nil {
			panic(err)
		}
	}
	return t
}

func TestAnatomizeDiversityRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		rows := 40 + rng.Intn(200)
		saCard := 6 + rng.Intn(8)
		tbl := randomTable(rng, rows, 2, 3, saCard)
		exempt := MostFrequentSA(tbl)
		d, partition, err := Anatomize(tbl, Options{L: 4, ExemptMostFrequent: true})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := CheckDiversity(d, 4, exempt); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Partition covers each row exactly once.
		seen := make([]bool, tbl.Len())
		for _, g := range partition {
			for _, row := range g {
				if seen[row] {
					t.Fatalf("trial %d: row %d duplicated", trial, row)
				}
				seen[row] = true
			}
		}
		for row, ok := range seen {
			if !ok {
				t.Fatalf("trial %d: row %d missing", trial, row)
			}
		}
		if d.N() != tbl.Len() {
			t.Fatalf("trial %d: N = %d, want %d", trial, d.N(), tbl.Len())
		}
	}
}

func TestAnatomizeDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tbl := randomTable(rng, 120, 3, 3, 8)
	_, p1, err := Anatomize(tbl, Options{L: 5, ExemptMostFrequent: true})
	if err != nil {
		t.Fatal(err)
	}
	_, p2, err := Anatomize(tbl, Options{L: 5, ExemptMostFrequent: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p1, p2) {
		t.Fatal("Anatomize is not deterministic")
	}
}

func TestAnatomizeErrors(t *testing.T) {
	tbl := dataset.PaperExample()
	if _, _, err := Anatomize(tbl, Options{L: 1}); err == nil {
		t.Fatal("expected error for L < 2")
	}
	if _, _, err := Anatomize(tbl, Options{L: 100}); err == nil {
		t.Fatal("expected error for L > number of rows")
	}
	// A table whose records all share one SA value cannot be diversified
	// without the exemption.
	g := dataset.NewAttribute("g", dataset.QuasiIdentifier, []string{"x", "y"})
	s := dataset.NewAttribute("s", dataset.Sensitive, []string{"only", "unused"})
	mono := dataset.NewTable(dataset.MustSchema(g, s))
	for i := 0; i < 10; i++ {
		mono.MustAppend([]string{"x", "y"}[i%2], "only")
	}
	if _, _, err := Anatomize(mono, Options{L: 3}); err == nil {
		t.Fatal("expected error for single-valued SA without exemption")
	}
	// With the exemption it becomes trivially bucketizable.
	d, _, err := Anatomize(mono, Options{L: 3, ExemptMostFrequent: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckDiversity(d, 3, MostFrequentSA(mono)); err != nil {
		t.Fatal(err)
	}
}

func TestMostFrequentSA(t *testing.T) {
	tbl := dataset.PaperExample()
	// Flu appears three times, more than any other disease.
	want := tbl.Schema().SA().MustCode("Flu")
	if got := MostFrequentSA(tbl); got != want {
		t.Fatalf("MostFrequentSA = %d, want %d (Flu)", got, want)
	}
}

func TestAnatomizeBucketSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tbl := randomTable(rng, 203, 2, 4, 10) // deliberately not divisible by L
	_, partition, err := Anatomize(tbl, Options{L: 5, ExemptMostFrequent: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range partition {
		if len(g) < 5 {
			t.Fatalf("bucket %d has %d records, want >= 5", i, len(g))
		}
	}
}

// TestAnatomizeQuick is the quick-check form of the diversity property:
// for any seeded random table, Anatomize either errors or produces a
// diversity-respecting partition covering each row exactly once.
func TestAnatomizeQuick(t *testing.T) {
	f := func(seed int64, sizeHint uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 20 + int(sizeHint)%180
		tbl := randomTable(rng, rows, 2, 3, 4+rng.Intn(6))
		d, partition, err := Anatomize(tbl, Options{L: 3, ExemptMostFrequent: true})
		if err != nil {
			// Anatomize may legitimately reject infeasible inputs; with
			// the exemption and these shapes it should not, so treat an
			// error as a failure to keep the property sharp.
			return false
		}
		if err := CheckDiversity(d, 3, ExemptValues(tbl, 3)...); err != nil {
			return false
		}
		seen := make([]bool, tbl.Len())
		for _, g := range partition {
			for _, r := range g {
				if seen[r] {
					return false
				}
				seen[r] = true
			}
		}
		for _, ok := range seen {
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestMarginalsQuick: for any partition, P(q,b) sums over buckets to
// P(q), and P(s,b) sums to the SA marginal.
func TestMarginalsQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tbl := randomTable(rng, 30+rng.Intn(90), 2, 3, 5)
		d, _, err := Anatomize(tbl, Options{L: 3, ExemptMostFrequent: true})
		if err != nil {
			return false
		}
		u := d.Universe()
		for qid := 0; qid < u.Len(); qid++ {
			var sum float64
			for b := 0; b < d.NumBuckets(); b++ {
				sum += d.PQB(qid, b)
			}
			if math.Abs(sum-u.P(qid)) > 1e-12 {
				return false
			}
		}
		counts := make([]int, d.SACardinality())
		for r := 0; r < tbl.Len(); r++ {
			counts[tbl.SACode(r)]++
		}
		for s := 0; s < d.SACardinality(); s++ {
			var sum float64
			for b := 0; b < d.NumBuckets(); b++ {
				sum += d.PSB(s, b)
			}
			if math.Abs(sum-float64(counts[s])/float64(tbl.Len())) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
