package bucket

import (
	"bytes"
	"strings"
	"testing"

	"privacymaxent/internal/dataset"
)

// FuzzReadJSON hardens the published-view loader against malformed
// inputs: no panics, and anything accepted must round-trip with its
// marginals intact.
func FuzzReadJSON(f *testing.F) {
	// Seed with a real publication plus malformed variants.
	d, err := FromPartition(dataset.PaperExample(), dataset.PaperBuckets())
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, d); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(`{}`)
	f.Add(`{"qi":[],"sa":{},"buckets":[]}`)
	f.Add(`{"qi":[{"name":"g","domain":["x","x"]}],"sa":{"name":"s","domain":["a"]},"buckets":[{"qi_rows":[["x"]],"sa_values":["a"]}]}`)
	f.Add(`[1,2,3]`)
	f.Add(`{"qi":[{"name":"g","domain":["x"]}],"sa":{"name":"g","domain":["a"]},"buckets":[{"qi_rows":[["x"]],"sa_values":["a"]}]}`)

	f.Fuzz(func(t *testing.T, input string) {
		got, err := ReadJSON(strings.NewReader(input))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteJSON(&out, got); err != nil {
			t.Fatalf("accepted publication failed to serialize: %v", err)
		}
		back, err := ReadJSON(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if back.N() != got.N() || back.NumBuckets() != got.NumBuckets() {
			t.Fatalf("round trip changed shape")
		}
	})
}
