// Package bucket implements the bucketization publishing method the paper
// analyzes (Xiao & Tao's Anatomy, further studied by Martin et al.): records
// are partitioned into buckets, and within each bucket the sensitive values
// are mixed together so any QI row could bind to any SA value in its bucket.
//
// Bucketized is the published data set D′: per bucket, the multiset of QI
// tuples and the multiset of SA values, with the bindings between them
// destroyed. All the joint probabilities a constraint system may treat as
// constants — P(q,b), P(s,b), P(b) — are exposed here.
package bucket

import (
	"fmt"
	"sort"
	"sync"

	"privacymaxent/internal/dataset"
)

// Bucket holds one published bucket: the QI tuples of its records (as qids
// into the shared Universe, order preserved) and the counts of each SA code
// appearing in the bucket. The pairing between the two sides is exactly the
// information bucketization removes.
type Bucket struct {
	qids     []int
	saCounts []int // indexed by SA code; len = SA cardinality
	size     int
}

// Size reports the number of records in the bucket (N_b in the paper).
func (b *Bucket) Size() int { return b.size }

// QIDs returns the qid of each record in the bucket, one entry per record.
// The slice must not be modified.
func (b *Bucket) QIDs() []int { return b.qids }

// SACount returns how many records in the bucket carry SA code s.
func (b *Bucket) SACount(s int) int { return b.saCounts[s] }

// DistinctQIDs returns the sorted distinct qids in the bucket — the paper's
// QI(b) = {q_1, ..., q_g}.
func (b *Bucket) DistinctQIDs() []int {
	seen := map[int]bool{}
	var out []int
	for _, q := range b.qids {
		if !seen[q] {
			seen[q] = true
			out = append(out, q)
		}
	}
	sort.Ints(out)
	return out
}

// DistinctSAs returns the sorted distinct SA codes in the bucket — the
// paper's SA(b) = {s_1, ..., s_h}.
func (b *Bucket) DistinctSAs() []int {
	var out []int
	for s, n := range b.saCounts {
		if n > 0 {
			out = append(out, s)
		}
	}
	return out
}

// QIDCount returns how many records in the bucket carry the given qid.
func (b *Bucket) QIDCount(qid int) int {
	n := 0
	for _, q := range b.qids {
		if q == qid {
			n++
		}
	}
	return n
}

// Bucketized is the published data set D′.
type Bucketized struct {
	schema   *dataset.Schema
	universe *dataset.Universe
	buckets  []*Bucket
	total    int

	// qidIndex lazily caches, per qid, the sorted buckets it appears in —
	// knowledge-constraint assembly queries this once per matching qid per
	// rule, which on sweep workloads makes the uncached O(records) scan a
	// measurable share of the whole solve.
	qidIndexOnce sync.Once
	qidIndex     [][]int
}

// FromPartition builds D′ from an explicit partition of table rows into
// buckets. Every row index must appear in exactly one group. The universe
// is built from the table, so qids agree with dataset.NewUniverse(t).
func FromPartition(t *dataset.Table, groups [][]int) (*Bucketized, error) {
	if t.Schema().SAIndex() < 0 {
		return nil, fmt.Errorf("bucket: table has no sensitive attribute")
	}
	u := dataset.NewUniverse(t)
	d := &Bucketized{
		schema:   t.Schema(),
		universe: u,
	}
	seen := make([]bool, t.Len())
	saCard := t.Schema().SA().Cardinality()
	for gi, g := range groups {
		if len(g) == 0 {
			return nil, fmt.Errorf("bucket: group %d is empty", gi)
		}
		b := &Bucket{saCounts: make([]int, saCard)}
		for _, row := range g {
			if row < 0 || row >= t.Len() {
				return nil, fmt.Errorf("bucket: group %d references row %d out of range", gi, row)
			}
			if seen[row] {
				return nil, fmt.Errorf("bucket: row %d appears in more than one bucket", row)
			}
			seen[row] = true
			qid, ok := u.QID(t.QIKey(row))
			if !ok {
				return nil, fmt.Errorf("bucket: row %d QI tuple missing from universe", row)
			}
			b.qids = append(b.qids, qid)
			b.saCounts[t.SACode(row)]++
			b.size++
		}
		d.buckets = append(d.buckets, b)
		d.total += b.size
	}
	for row, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("bucket: row %d not assigned to any bucket", row)
		}
	}
	return d, nil
}

// Schema returns the schema of the underlying data.
func (d *Bucketized) Schema() *dataset.Schema { return d.schema }

// Universe returns the QI universe shared with the original table.
func (d *Bucketized) Universe() *dataset.Universe { return d.universe }

// NumBuckets reports m, the number of buckets.
func (d *Bucketized) NumBuckets() int { return len(d.buckets) }

// N reports the total number of records.
func (d *Bucketized) N() int { return d.total }

// Bucket returns bucket b (0-based; the paper's indices are 1-based).
func (d *Bucketized) Bucket(b int) *Bucket { return d.buckets[b] }

// PB returns P(B = b), the fraction of records in bucket b.
func (d *Bucketized) PB(b int) float64 {
	return float64(d.buckets[b].size) / float64(d.total)
}

// PQB returns the joint probability P(Q = qid, B = b), a constant directly
// countable from D′ (the right-hand side of QI-invariant equations).
func (d *Bucketized) PQB(qid, b int) float64 {
	return float64(d.buckets[b].QIDCount(qid)) / float64(d.total)
}

// PSB returns the joint probability P(S = s, B = b), a constant directly
// countable from D′ (the right-hand side of SA-invariant equations).
func (d *Bucketized) PSB(s, b int) float64 {
	return float64(d.buckets[b].saCounts[s]) / float64(d.total)
}

// SACardinality reports the size of the SA domain.
func (d *Bucketized) SACardinality() int { return d.schema.SA().Cardinality() }

// BucketsWithQID returns the buckets (sorted) in which qid appears. The
// result comes from an index built once per publication and must not be
// modified.
func (d *Bucketized) BucketsWithQID(qid int) []int {
	d.qidIndexOnce.Do(func() {
		idx := make([][]int, d.universe.Len())
		for b, bk := range d.buckets {
			for _, q := range bk.DistinctQIDs() {
				idx[q] = append(idx[q], b)
			}
		}
		d.qidIndex = idx
	})
	if qid < 0 || qid >= len(d.qidIndex) {
		return nil
	}
	return d.qidIndex[qid]
}

// BucketsWithSA returns the buckets (sorted) in which SA code s appears.
func (d *Bucketized) BucketsWithSA(s int) []int {
	var out []int
	for b, bk := range d.buckets {
		if bk.saCounts[s] > 0 {
			out = append(out, b)
		}
	}
	return out
}
