package bucket

import (
	"encoding/json"
	"fmt"
	"io"

	"privacymaxent/internal/dataset"
)

// The JSON wire format of a published data set D′. It carries exactly
// what a bucketized release makes public: the QI schema with each record's
// QI values grouped by bucket, and each bucket's sensitive-value multiset
// with the record linkage removed.
type publishedJSON struct {
	QI      []jsonAttr   `json:"qi"`
	SA      jsonAttr     `json:"sa"`
	Buckets []jsonBucket `json:"buckets"`
}

type jsonAttr struct {
	Name   string   `json:"name"`
	Domain []string `json:"domain"`
}

type jsonBucket struct {
	// QIRows holds one row per record: the record's QI values in schema
	// order.
	QIRows [][]string `json:"qi_rows"`
	// SAValues is the bucket's sensitive multiset, deliberately sorted so
	// no residual ordering can leak the original bindings.
	SAValues []string `json:"sa_values"`
}

// WriteJSON serializes the published view. Only information that the
// bucketization model releases is written; in particular the pairing of
// QI rows with SA values inside a bucket is not represented.
func WriteJSON(w io.Writer, d *Bucketized) error {
	schema := d.Schema()
	doc := publishedJSON{SA: jsonAttr{Name: schema.SA().Name, Domain: schema.SA().Domain}}
	for _, pos := range schema.QIIndices() {
		a := schema.Attr(pos)
		doc.QI = append(doc.QI, jsonAttr{Name: a.Name, Domain: a.Domain})
	}
	u := d.Universe()
	for b := 0; b < d.NumBuckets(); b++ {
		bk := d.Bucket(b)
		jb := jsonBucket{}
		for _, qid := range bk.QIDs() {
			codes := u.Codes(qid)
			row := make([]string, len(codes))
			for i, pos := range schema.QIIndices() {
				row[i] = schema.Attr(pos).Value(codes[i])
			}
			jb.QIRows = append(jb.QIRows, row)
		}
		for s := 0; s < d.SACardinality(); s++ {
			for k := 0; k < bk.SACount(s); k++ {
				jb.SAValues = append(jb.SAValues, schema.SA().Value(s))
			}
		}
		doc.Buckets = append(doc.Buckets, jb)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// validDomain rejects attribute descriptors that could not have been
// produced by WriteJSON (empty or duplicated domains), turning what would
// be constructor panics into load errors.
func validDomain(a jsonAttr) error {
	if len(a.Domain) == 0 {
		return fmt.Errorf("bucket: attribute %q has an empty domain", a.Name)
	}
	seen := make(map[string]bool, len(a.Domain))
	for _, v := range a.Domain {
		if seen[v] {
			return fmt.Errorf("bucket: attribute %q has duplicate domain value %q", a.Name, v)
		}
		seen[v] = true
	}
	return nil
}

// ReadJSON reconstructs a published view from its wire format. Because
// the true bindings are unknown (that is the point of bucketization), the
// internal backing table pairs QI rows with SA values in listed order —
// an arbitrary assignment with exactly the published marginals, which is
// all the constraint machinery ever reads.
func ReadJSON(r io.Reader) (*Bucketized, error) {
	var doc publishedJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("bucket: decoding published JSON: %w", err)
	}
	if len(doc.QI) == 0 {
		return nil, fmt.Errorf("bucket: published data has no QI attributes")
	}
	if len(doc.Buckets) == 0 {
		return nil, fmt.Errorf("bucket: published data has no buckets")
	}
	attrs := make([]*dataset.Attribute, 0, len(doc.QI)+1)
	for _, a := range doc.QI {
		if err := validDomain(a); err != nil {
			return nil, err
		}
		attrs = append(attrs, dataset.NewAttribute(a.Name, dataset.QuasiIdentifier, a.Domain))
	}
	if err := validDomain(doc.SA); err != nil {
		return nil, err
	}
	attrs = append(attrs, dataset.NewAttribute(doc.SA.Name, dataset.Sensitive, doc.SA.Domain))
	schema, err := dataset.NewSchema(attrs...)
	if err != nil {
		return nil, fmt.Errorf("bucket: rebuilding schema: %w", err)
	}

	tbl := dataset.NewTable(schema)
	var groups [][]int
	next := 0
	for bi, jb := range doc.Buckets {
		if len(jb.QIRows) != len(jb.SAValues) {
			return nil, fmt.Errorf("bucket: bucket %d has %d QI rows but %d SA values", bi, len(jb.QIRows), len(jb.SAValues))
		}
		if len(jb.QIRows) == 0 {
			return nil, fmt.Errorf("bucket: bucket %d is empty", bi)
		}
		var group []int
		for ri, qiRow := range jb.QIRows {
			if len(qiRow) != len(doc.QI) {
				return nil, fmt.Errorf("bucket: bucket %d row %d has %d QI values, want %d", bi, ri, len(qiRow), len(doc.QI))
			}
			values := append(append([]string(nil), qiRow...), jb.SAValues[ri])
			if err := tbl.Append(values...); err != nil {
				return nil, fmt.Errorf("bucket: bucket %d row %d: %w", bi, ri, err)
			}
			group = append(group, next)
			next++
		}
		groups = append(groups, group)
	}
	return FromPartition(tbl, groups)
}
