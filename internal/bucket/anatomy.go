package bucket

import (
	"fmt"
	"sort"

	"privacymaxent/internal/dataset"
)

// Options configures the Anatomy-style bucketizer.
type Options struct {
	// L is the diversity parameter; it is also the target bucket size, as
	// in the paper's evaluation (buckets of five records, 5-diversity).
	L int
	// ExemptMostFrequent applies the paper's footnote-3 relaxation: "the
	// most frequent values of SA" are not considered sensitive and are
	// excluded when checking diversity, so they may repeat within a
	// bucket. Concretely, the single most frequent value is always
	// exempt, as is any value too frequent for strict diversity to be
	// satisfiable (count exceeding the bucket count ⌊N/L⌋).
	ExemptMostFrequent bool
}

// ExemptValues returns the SA codes Anatomize exempts from the diversity
// check for this table under Options.ExemptMostFrequent: the most
// frequent value plus any value with more records than buckets.
func ExemptValues(t *dataset.Table, l int) []int {
	counts := make([]int, t.Schema().SA().Cardinality())
	for row := 0; row < t.Len(); row++ {
		counts[t.SACode(row)]++
	}
	numBuckets := t.Len() / l
	best, arg := -1, 0
	for s, n := range counts {
		if n > best {
			best, arg = n, s
		}
	}
	var out []int
	for s, n := range counts {
		if s == arg || n > numBuckets {
			out = append(out, s)
		}
	}
	return out
}

// Anatomize partitions the table into ⌊N/L⌋ buckets of L records (the
// first N mod L buckets absorb one extra) such that no non-exempt
// sensitive value repeats within a bucket.
//
// The construction concatenates the SA groups — non-exempt groups largest
// first, the exempt group last — into one sequence and deals it
// column-major into a grid of B = ⌊N/L⌋ buckets: record i of the sequence
// goes to bucket i mod B. A group occupying consecutive positions of
// length at most B lands on distinct residues, hence at most once per
// bucket; only the exempt group (placed last, allowed to repeat) may
// exceed B. The N mod L tail records are placed individually into buckets
// that do not yet contain their value.
//
// It returns the published view and the row partition that produced it.
// The partition is deterministic for a given table.
func Anatomize(t *dataset.Table, opts Options) (*Bucketized, [][]int, error) {
	if opts.L < 2 {
		return nil, nil, fmt.Errorf("bucket: diversity parameter L must be >= 2, got %d", opts.L)
	}
	if t.Schema().SAIndex() < 0 {
		return nil, nil, fmt.Errorf("bucket: table has no sensitive attribute")
	}
	if t.Len() < opts.L {
		return nil, nil, fmt.Errorf("bucket: table has %d rows, need at least L=%d", t.Len(), opts.L)
	}

	saCard := t.Schema().SA().Cardinality()
	groups := make([][]int, saCard) // SA code -> row indices (FIFO)
	for row := 0; row < t.Len(); row++ {
		s := t.SACode(row)
		groups[s] = append(groups[s], row)
	}

	isExempt := make([]bool, saCard)
	if opts.ExemptMostFrequent {
		for _, s := range ExemptValues(t, opts.L) {
			isExempt[s] = true
		}
	}

	numBuckets := t.Len() / opts.L

	// Feasibility: a non-exempt value appearing in more than one record
	// per bucket cannot be avoided once its count exceeds the bucket
	// count.
	for s, g := range groups {
		if !isExempt[s] && len(g) > numBuckets {
			return nil, nil, fmt.Errorf("bucket: SA value %q appears in %d records but only %d buckets are possible with L=%d; cannot satisfy diversity",
				t.Schema().SA().Value(s), len(g), numBuckets, opts.L)
		}
	}

	// Group order: non-exempt largest-first (ties by code), exempt
	// groups last (they may repeat, and a tail drawn from them can be
	// placed anywhere).
	order := make([]int, 0, saCard)
	for s := range groups {
		if len(groups[s]) > 0 && !isExempt[s] {
			order = append(order, s)
		}
	}
	sort.Slice(order, func(i, j int) bool {
		si, sj := order[i], order[j]
		if len(groups[si]) != len(groups[sj]) {
			return len(groups[si]) > len(groups[sj])
		}
		return si < sj
	})
	for s := range groups {
		if len(groups[s]) > 0 && isExempt[s] {
			order = append(order, s)
		}
	}
	sequence := make([]int, 0, t.Len())
	for _, s := range order {
		sequence = append(sequence, groups[s]...)
	}

	// Column-major deal of the first B·L records.
	partition := make([][]int, numBuckets)
	dealt := numBuckets * opts.L
	for i := 0; i < dealt; i++ {
		b := i % numBuckets
		partition[b] = append(partition[b], sequence[i])
	}
	// Tail records (N mod L of them) come from the end of the sequence —
	// the exempt group when it is non-empty — and are placed one per
	// bucket without repeating a non-exempt value.
	if err := placeLeftovers(t, partition, sequence[dealt:], isExempt); err != nil {
		return nil, nil, err
	}

	d, err := FromPartition(t, partition)
	if err != nil {
		return nil, nil, err
	}
	return d, partition, nil
}

// placeLeftovers appends each leftover row to some existing bucket that
// does not already contain the row's SA value (any bucket, for exempt
// values). Buckets are filled in round-robin order to keep sizes balanced.
func placeLeftovers(t *dataset.Table, partition [][]int, leftovers []int, isExempt []bool) error {
	if len(leftovers) == 0 {
		return nil
	}
	if len(partition) == 0 {
		return fmt.Errorf("bucket: %d leftover records but no buckets to place them in", len(leftovers))
	}
	contains := func(bucket []int, s int) bool {
		for _, row := range bucket {
			if t.SACode(row) == s {
				return true
			}
		}
		return false
	}
	next := 0
	for _, row := range leftovers {
		s := t.SACode(row)
		placed := false
		for probe := 0; probe < len(partition); probe++ {
			b := (next + probe) % len(partition)
			if (isExempt != nil && isExempt[s]) || !contains(partition[b], s) {
				partition[b] = append(partition[b], row)
				next = b + 1
				placed = true
				break
			}
		}
		if !placed {
			return fmt.Errorf("bucket: cannot place leftover record with SA value %q without violating diversity",
				t.Schema().SA().Value(s))
		}
	}
	return nil
}

// CheckDiversity verifies the bucketization's diversity property: within
// every bucket, each non-exempt SA value appears at most once (pass no
// exempt codes to check plain distinct diversity) and the bucket holds at
// least l records. It returns a descriptive error for the first
// violation.
func CheckDiversity(d *Bucketized, l int, exempt ...int) error {
	isExempt := make(map[int]bool, len(exempt))
	for _, s := range exempt {
		isExempt[s] = true
	}
	for b := 0; b < d.NumBuckets(); b++ {
		bk := d.Bucket(b)
		if bk.Size() < l {
			return fmt.Errorf("bucket %d has %d records, want >= %d", b, bk.Size(), l)
		}
		for s := 0; s < d.SACardinality(); s++ {
			if isExempt[s] {
				continue
			}
			if n := bk.SACount(s); n > 1 {
				return fmt.Errorf("bucket %d has SA value %q repeated %d times", b, d.Schema().SA().Value(s), n)
			}
		}
	}
	return nil
}

// MostFrequentSA returns the SA code with the highest count in the table,
// the value the paper's footnote-3 relaxation exempts from diversity.
func MostFrequentSA(t *dataset.Table) int {
	counts := make([]int, t.Schema().SA().Cardinality())
	for row := 0; row < t.Len(); row++ {
		counts[t.SACode(row)]++
	}
	best, arg := -1, 0
	for s, n := range counts {
		if n > best {
			best, arg = n, s
		}
	}
	return arg
}
