package bucket

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"privacymaxent/internal/dataset"
)

func TestJSONRoundTrip(t *testing.T) {
	tbl := dataset.PaperExample()
	orig, err := FromPartition(tbl, dataset.PaperBuckets())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumBuckets() != orig.NumBuckets() || got.N() != orig.N() {
		t.Fatalf("shape = (%d, %d), want (%d, %d)", got.NumBuckets(), got.N(), orig.NumBuckets(), orig.N())
	}
	// All published marginals survive: P(b), P(s,b), and P(q,b) matched
	// through QI keys (qids may be renumbered).
	for b := 0; b < orig.NumBuckets(); b++ {
		if math.Abs(got.PB(b)-orig.PB(b)) > 1e-12 {
			t.Fatalf("P(b%d) = %g, want %g", b+1, got.PB(b), orig.PB(b))
		}
		for s := 0; s < orig.SACardinality(); s++ {
			if math.Abs(got.PSB(s, b)-orig.PSB(s, b)) > 1e-12 {
				t.Fatalf("P(s%d, b%d) mismatch", s+1, b+1)
			}
		}
		for qid := 0; qid < orig.Universe().Len(); qid++ {
			gotQID, ok := got.Universe().QID(orig.Universe().Key(qid))
			if !ok {
				t.Fatalf("QI tuple %s lost", orig.Universe().Display(qid))
			}
			if math.Abs(got.PQB(gotQID, b)-orig.PQB(qid, b)) > 1e-12 {
				t.Fatalf("P(q, b%d) mismatch for %s", b+1, orig.Universe().Display(qid))
			}
		}
	}
	// The SA multiset order is sorted in the wire format: no binding leak.
	if !strings.Contains(buf.String(), `"sa_values"`) {
		t.Fatalf("unexpected wire format: %s", buf.String())
	}
}

func TestReadJSONValidation(t *testing.T) {
	cases := map[string]string{
		"bad json":     `{`,
		"no qi":        `{"qi":[],"sa":{"name":"s","domain":["a"]},"buckets":[{"qi_rows":[["x"]],"sa_values":["a"]}]}`,
		"no buckets":   `{"qi":[{"name":"g","domain":["x"]}],"sa":{"name":"s","domain":["a"]},"buckets":[]}`,
		"arity":        `{"qi":[{"name":"g","domain":["x"]}],"sa":{"name":"s","domain":["a"]},"buckets":[{"qi_rows":[["x"]],"sa_values":["a","a"]}]}`,
		"empty bucket": `{"qi":[{"name":"g","domain":["x"]}],"sa":{"name":"s","domain":["a"]},"buckets":[{"qi_rows":[],"sa_values":[]}]}`,
		"row arity":    `{"qi":[{"name":"g","domain":["x"]}],"sa":{"name":"s","domain":["a"]},"buckets":[{"qi_rows":[["x","y"]],"sa_values":["a"]}]}`,
		"bad value":    `{"qi":[{"name":"g","domain":["x"]}],"sa":{"name":"s","domain":["a"]},"buckets":[{"qi_rows":[["zzz"]],"sa_values":["a"]}]}`,
		"unknown key":  `{"qi":[],"sa":{},"buckets":[],"extra":1}`,
	}
	for name, doc := range cases {
		if _, err := ReadJSON(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestJSONSortedSAHidesBindings(t *testing.T) {
	// The wire format must not reveal which QI row owned which SA value:
	// SA values are emitted grouped by code, independent of record order.
	tbl := dataset.PaperExample()
	d, err := FromPartition(tbl, dataset.PaperBuckets())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, d); err != nil {
		t.Fatal(err)
	}
	// Bucket 1's multiset is {Breast Cancer, Flu, Flu, Pneumonia}: the
	// original record order was Flu, Pneumonia, Breast Cancer, Flu.
	s := buf.String()
	i := strings.Index(s, `"sa_values"`)
	j := strings.Index(s[i:], "]")
	window := s[i : i+j]
	first := strings.Index(window, "Breast Cancer")
	second := strings.Index(window, "Flu")
	if first < 0 || second < 0 || first > second {
		t.Fatalf("SA multiset not in canonical order: %s", window)
	}
}
