// Package telemetry is the observability substrate of the pipeline: a
// zero-dependency span tracer with pluggable sinks and a metrics registry
// of counters, gauges and fixed-bucket histograms.
//
// The package is built around two rules:
//
//  1. Everything is carried by context.Context. A stage calls
//     telemetry.Start(ctx, "maxent.solve") and gets a child span of
//     whatever span the caller had open; telemetry.Metrics(ctx) returns
//     the registry (or nil). Code that was never handed a tracer pays
//     one context lookup and nothing else.
//  2. Every handle is nil-safe. A nil *Span, *Counter, *Gauge,
//     *Histogram or *Registry accepts all its methods as no-ops, so
//     instrumentation sites never branch on "is telemetry on?".
//
// Spans measure the pipeline stages behind the paper's Figure 7 (running
// time vs knowledge / data size); the registry holds the corresponding
// series (solve duration, iteration and evaluation counts, component
// sizes, decomposition hit rate). See DESIGN.md for the mapping.
package telemetry

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string
	Value any
}

// String builds a string attribute.
func String(key, value string) Attr { return Attr{Key: key, Value: value} }

// Int builds an integer attribute.
func Int(key string, value int) Attr { return Attr{Key: key, Value: value} }

// Float builds a float attribute.
func Float(key string, value float64) Attr { return Attr{Key: key, Value: value} }

// Bool builds a boolean attribute.
func Bool(key string, value bool) Attr { return Attr{Key: key, Value: value} }

// Event is the record a sink receives when a span ends.
type Event struct {
	// Name is the span name, e.g. "maxent.solve.component".
	Name string
	// ID is unique per tracer; Parent is the enclosing span's ID (0 for
	// roots).
	ID, Parent uint64
	// Depth is the nesting level (0 for roots).
	Depth int
	// Start and Duration delimit the span.
	Start    time.Time
	Duration time.Duration
	// Attrs are the annotations set on the span, in order.
	Attrs []Attr
}

// Sink consumes span-end events. Emit may be called concurrently.
type Sink interface {
	Emit(Event)
}

// Tracer creates spans and forwards their end events to a sink. A nil
// sink discards everything (useful to measure tracer overhead alone).
type Tracer struct {
	sink Sink
	ids  atomic.Uint64
}

// NewTracer builds a tracer over the given sink.
func NewTracer(sink Sink) *Tracer { return &Tracer{sink: sink} }

// Span is one timed region. The zero of its lifecycle is Start; End
// emits it to the tracer's sink. All methods are safe on a nil receiver.
type Span struct {
	tracer *Tracer
	name   string
	id     uint64
	parent uint64
	depth  int
	start  time.Time

	mu    sync.Mutex
	attrs []Attr
	ended bool
}

type ctxKey int

const (
	tracerKey ctxKey = iota
	spanKey
	metricsKey
)

// WithTracer installs a tracer in the context; Start picks it up.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	return context.WithValue(ctx, tracerKey, t)
}

// TracerFrom returns the context's tracer, or nil.
func TracerFrom(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey).(*Tracer)
	return t
}

// WithMetrics installs a metrics registry in the context.
func WithMetrics(ctx context.Context, r *Registry) context.Context {
	return context.WithValue(ctx, metricsKey, r)
}

// Metrics returns the context's registry, or nil. All registry methods
// accept a nil receiver, so callers use the result unconditionally.
func Metrics(ctx context.Context) *Registry {
	r, _ := ctx.Value(metricsKey).(*Registry)
	return r
}

// Start opens a span named name as a child of the context's current span
// and returns the derived context plus the span. When the context
// carries no tracer it returns (ctx, nil) without allocating — the
// near-zero-overhead default path.
func Start(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	t, _ := ctx.Value(tracerKey).(*Tracer)
	if t == nil {
		return ctx, nil
	}
	var parent uint64
	depth := 0
	if p, _ := ctx.Value(spanKey).(*Span); p != nil {
		parent = p.id
		depth = p.depth + 1
	}
	s := &Span{
		tracer: t,
		name:   name,
		id:     t.ids.Add(1),
		parent: parent,
		depth:  depth,
		start:  time.Now(),
		attrs:  attrs,
	}
	return context.WithValue(ctx, spanKey, s), s
}

// SetAttr appends annotations to the span.
func (s *Span) SetAttr(attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, attrs...)
	s.mu.Unlock()
}

// End closes the span and emits it to the sink. Repeated calls are
// no-ops; End on a nil span is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs := s.attrs
	s.mu.Unlock()
	if s.tracer.sink == nil {
		return
	}
	s.tracer.sink.Emit(Event{
		Name:     s.name,
		ID:       s.id,
		Parent:   s.parent,
		Depth:    s.depth,
		Start:    s.start,
		Duration: time.Since(s.start),
		Attrs:    attrs,
	})
}
