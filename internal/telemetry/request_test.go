package telemetry

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func TestRequestIDRoundTrip(t *testing.T) {
	ctx := context.Background()
	if got := RequestID(ctx); got != "" {
		t.Fatalf("empty context carries request ID %q", got)
	}
	if WithRequestID(ctx, "") != ctx {
		t.Fatal("WithRequestID(\"\") should return the context unchanged")
	}
	ctx = WithRequestID(ctx, "req-1")
	if got := RequestID(ctx); got != "req-1" {
		t.Fatalf("RequestID = %q, want req-1", got)
	}
	// Nested installs shadow, detaching never leaks upward.
	inner := WithRequestID(ctx, "req-2")
	if got := RequestID(inner); got != "req-2" {
		t.Fatalf("inner RequestID = %q", got)
	}
	if got := RequestID(ctx); got != "req-1" {
		t.Fatalf("outer RequestID clobbered: %q", got)
	}
}

// recordingObserver collects everything it is fed.
type recordingObserver struct {
	events     []string
	iterations int
}

func (o *recordingObserver) SolveEvent(name string, attrs ...Attr) {
	o.events = append(o.events, name)
}

func (o *recordingObserver) SolveIteration(component, iteration int, objective, gradNorm float64) {
	o.iterations++
}

func TestSolveObserverRoundTrip(t *testing.T) {
	ctx := context.Background()
	if SolveObserverFrom(ctx) != nil {
		t.Fatal("empty context carries an observer")
	}
	if WithSolveObserver(ctx, nil) != ctx {
		t.Fatal("WithSolveObserver(nil) should return the context unchanged")
	}
	obs := &recordingObserver{}
	ctx = WithSolveObserver(ctx, obs)
	got := SolveObserverFrom(ctx)
	if got == nil {
		t.Fatal("observer not recovered from context")
	}
	got.SolveEvent("solve.start", Int("variables", 3))
	got.SolveIteration(0, 1, -1.5, 0.25)
	if len(obs.events) != 1 || obs.events[0] != "solve.start" || obs.iterations != 1 {
		t.Fatalf("observer did not receive the signals: %+v", obs)
	}
}

func TestRegistryInfo(t *testing.T) {
	var nilReg *Registry
	nilReg.Info("x_info", map[string]string{"a": "b"}) // must not panic

	r := NewRegistry()
	labels := map[string]string{"version": "v1.2.3", "commit": "abc"}
	r.Info("pmaxentd_build_info", labels)
	labels["version"] = "mutated-after-register"

	snap := r.Snapshot()
	info, ok := snap["pmaxentd_build_info"].(map[string]string)
	if !ok {
		t.Fatalf("snapshot info = %T", snap["pmaxentd_build_info"])
	}
	if info["version"] != "v1.2.3" || info["commit"] != "abc" {
		t.Fatalf("info labels wrong (caller mutation leaked?): %v", info)
	}

	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	want := `pmaxentd_build_info{commit="abc",version="v1.2.3"} 1`
	if !strings.Contains(buf.String(), want) {
		t.Fatalf("exposition missing %q:\n%s", want, buf.String())
	}
	if !strings.Contains(buf.String(), "# TYPE pmaxentd_build_info gauge") {
		t.Fatalf("info series has no TYPE line:\n%s", buf.String())
	}

	// Re-registering replaces the label set.
	r.Info("pmaxentd_build_info", map[string]string{"version": "v2"})
	buf.Reset()
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `pmaxentd_build_info{version="v2"} 1`) {
		t.Fatalf("re-register did not replace labels:\n%s", buf.String())
	}
}
