package telemetry

import (
	"bytes"
	"expvar"
	"math"
	"strings"
	"sync"
	"testing"
)

// TestNilRegistryIsNoop: a nil registry hands out nil handles whose
// methods are all safe — the zero-overhead default.
func TestNilRegistryIsNoop(t *testing.T) {
	var r *Registry
	r.Counter("c").Add(5)
	r.Gauge("g").Set(1.5)
	r.Histogram("h", CountBuckets).Observe(3)
	if r.Counter("c").Value() != 0 || r.Gauge("g").Value() != 0 || r.Histogram("h", nil).Count() != 0 {
		t.Fatal("nil registry must read as zero")
	}
	if r.Snapshot() != nil {
		t.Fatal("nil snapshot")
	}
	if err := r.WriteProm(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	r.Counter("solve_total").Add(1)
	r.Counter("solve_total").Add(2)
	if got := r.Counter("solve_total").Value(); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
	r.Gauge("workers").Set(8)
	if got := r.Gauge("workers").Value(); got != 8 {
		t.Fatalf("gauge = %g, want 8", got)
	}
}

// TestHistogramBucketing places observations on, below and above bucket
// boundaries and checks the cumulative counts (le is inclusive, as in
// Prometheus).
func TestHistogramBucketing(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("iters", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 1.5, 10, 99, 100, 101, 1e6} {
		h.Observe(v)
	}
	bounds, cum := h.Buckets()
	if len(bounds) != 3 || len(cum) != 4 {
		t.Fatalf("bounds=%v cum=%v", bounds, cum)
	}
	// le=1: {0.5, 1}; le=10: +{1.5, 10}; le=100: +{99, 100}; +Inf: +{101, 1e6}.
	want := []int64{2, 4, 6, 8}
	for i, w := range want {
		if cum[i] != w {
			t.Fatalf("cum[%d] = %d, want %d (all: %v)", i, cum[i], w, cum)
		}
	}
	if h.Count() != 8 {
		t.Fatalf("count = %d", h.Count())
	}
	if math.Abs(h.Sum()-(0.5+1+1.5+10+99+100+101+1e6)) > 1e-9 {
		t.Fatalf("sum = %g", h.Sum())
	}
	// First registration wins: asking again with other bounds returns the
	// same histogram.
	if h2 := r.Histogram("iters", []float64{5}); h2 != h {
		t.Fatal("histogram identity lost")
	}
}

// TestWriteProm checks the text exposition: family types, cumulative
// buckets, the +Inf bucket, sum/count, and name sanitation.
func TestWriteProm(t *testing.T) {
	r := NewRegistry()
	r.Counter("solve_total").Add(2)
	r.Gauge("workers").Set(4)
	h := r.Histogram("solve.duration-seconds", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(10)

	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE solve_total counter\nsolve_total 2\n",
		"# TYPE workers gauge\nworkers 4\n",
		"# TYPE solve_duration_seconds histogram\n",
		`solve_duration_seconds_bucket{le="0.1"} 1`,
		`solve_duration_seconds_bucket{le="1"} 2`,
		`solve_duration_seconds_bucket{le="+Inf"} 3`,
		"solve_duration_seconds_sum 10.55",
		"solve_duration_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prom output missing %q:\n%s", want, out)
		}
	}
}

// TestWritePromHelp checks HELP lines: emitted directly above the
// family's TYPE line, escaped, and absent for families without help.
func TestWritePromHelp(t *testing.T) {
	r := NewRegistry()
	r.Counter("with_help_total").Add(1)
	r.Counter("without_help_total").Add(1)
	r.SetHelp("with_help_total", "Solves finished.\nSecond \\ line")
	r.SetHelp("absent_family", "help for a family that was never created")

	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	want := "# HELP with_help_total Solves finished.\\nSecond \\\\ line\n# TYPE with_help_total counter\n"
	if !strings.Contains(out, want) {
		t.Fatalf("prom output missing escaped HELP block %q:\n%s", want, out)
	}
	if strings.Contains(out, "# HELP without_help_total") {
		t.Fatalf("family without help grew a HELP line:\n%s", out)
	}
	if strings.Contains(out, "absent_family") {
		t.Fatalf("help for an uncreated family leaked into the exposition:\n%s", out)
	}
	var nilReg *Registry
	nilReg.SetHelp("x", "y") // no panic
}

// TestSnapshotAndExpvar publishes the registry and reads it back through
// the expvar interface; double publication must not panic.
func TestSnapshotAndExpvar(t *testing.T) {
	r := NewRegistry()
	r.Counter("runs").Add(1)
	r.Histogram("d", []float64{1}).Observe(0.5)
	PublishExpvar("telemetry_test_metrics", r)
	PublishExpvar("telemetry_test_metrics", r) // no panic, first wins
	v := expvar.Get("telemetry_test_metrics")
	if v == nil {
		t.Fatal("expvar not published")
	}
	s := v.String()
	if !strings.Contains(s, `"runs"`) || !strings.Contains(s, `"buckets"`) {
		t.Fatalf("expvar snapshot = %s", s)
	}
}

// TestRegistryRace hammers one registry from many goroutines through
// fresh and cached handles; run under -race this is the concurrency
// contract of the parallel component solves.
func TestRegistryRace(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Counter("iters").Add(1)
				r.Gauge("workers").Set(float64(i))
				r.Histogram("sizes", CountBuckets).Observe(float64(i % 50))
				if i%100 == 0 {
					r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("iters").Value(); got != 8*500 {
		t.Fatalf("counter = %d, want %d", got, 8*500)
	}
	if got := r.Histogram("sizes", nil).Count(); got != 8*500 {
		t.Fatalf("histogram count = %d, want %d", got, 8*500)
	}
}
