package telemetry

import "context"

// A SolveObserver receives the live progress of one MaxEnt solve as it
// happens — the push-based counterpart of the span/logger records that
// are only useful after the fact. The maxent package feeds it two kinds
// of signals:
//
//   - Lifecycle events, mirroring the solve-event logger: solve.start,
//     decompose, presolve, component.done, solve.done, solve.failed,
//     with the same attributes the logger records.
//   - Per-iteration optimizer progress, taken from the solver TraceEvent
//     stream: (component, iteration, objective, ∞-gradient).
//
// The pmaxentd live-solve registry implements this interface to power
// GET /debug/solves and the /v1/solves/{id}/events SSE stream. Both
// methods may be called concurrently (decomposed components solve in
// parallel) and must not block: SolveIteration in particular sits on the
// optimizer's hot path and is called once per iteration.
type SolveObserver interface {
	// SolveEvent reports a lifecycle transition.
	SolveEvent(name string, attrs ...Attr)
	// SolveIteration reports one optimizer iteration of the given
	// decomposition component (0 when the solve is not decomposed).
	SolveIteration(component, iteration int, objective, gradNorm float64)
}

const solveObserverKey ctxKey = 102

// WithSolveObserver installs a solve observer in the context; maxent
// solves report their progress through it. A nil observer returns the
// context unchanged.
func WithSolveObserver(ctx context.Context, o SolveObserver) context.Context {
	if o == nil {
		return ctx
	}
	return context.WithValue(ctx, solveObserverKey, o)
}

// SolveObserverFrom returns the context's solve observer, or nil.
func SolveObserverFrom(ctx context.Context) SolveObserver {
	o, _ := ctx.Value(solveObserverKey).(SolveObserver)
	return o
}
