package telemetry

import (
	"expvar"
	"sync"
)

var publishMu sync.Mutex

// PublishExpvar exposes the registry under the given expvar name (and
// thus on /debug/vars when an HTTP server with the default mux is up —
// pmaxent's -pprof flag). Publishing the same name twice is a no-op
// rather than the expvar panic, so commands can call it unconditionally;
// the first registry wins.
func PublishExpvar(name string, r *Registry) {
	if r == nil {
		return
	}
	publishMu.Lock()
	defer publishMu.Unlock()
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
