package telemetry

import (
	"expvar"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

// expvar publication is process-global and permanent, so every run needs
// a fresh name — -cpu=1,4 (and -count>1) re-runs each test in the same
// process, where a fixed name would already be taken by the previous run.
var expvarTestSeq atomic.Int64

func uniqueExpvarName(prefix string) string {
	return fmt.Sprintf("%s_%d", prefix, expvarTestSeq.Add(1))
}

// TestPublishExpvarFirstRegistryWins publishes two different registries
// under the same name: the first must keep serving /debug/vars, the
// second must be silently ignored (expvar itself would panic on a
// duplicate Publish).
func TestPublishExpvarFirstRegistryWins(t *testing.T) {
	first := NewRegistry()
	first.Counter("winner").Add(7)
	second := NewRegistry()
	second.Counter("loser").Add(99)

	name := uniqueExpvarName("telemetry_expvar_first_wins")
	PublishExpvar(name, first)
	PublishExpvar(name, second)

	v := expvar.Get(name)
	if v == nil {
		t.Fatal("expvar not published")
	}
	s := v.String()
	if !strings.Contains(s, "winner") {
		t.Fatalf("first registry not served: %s", s)
	}
	if strings.Contains(s, "loser") {
		t.Fatalf("second registry overwrote the first: %s", s)
	}

	// The published value is live, not a copy: later updates to the first
	// registry show up on the next read.
	first.Counter("late").Add(1)
	if s := expvar.Get(name).String(); !strings.Contains(s, "late") {
		t.Fatalf("published registry is not live: %s", s)
	}
}

// TestPublishExpvarNilRegistry: a nil registry must not be published at
// all — the name stays free for a real registry later.
func TestPublishExpvarNilRegistry(t *testing.T) {
	name := uniqueExpvarName("telemetry_expvar_nil_safe")
	PublishExpvar(name, nil)
	if expvar.Get(name) != nil {
		t.Fatal("nil registry was published")
	}
	r := NewRegistry()
	r.Counter("after_nil").Add(1)
	PublishExpvar(name, r)
	v := expvar.Get(name)
	if v == nil {
		t.Fatal("real registry blocked by earlier nil publish")
	}
	if s := v.String(); !strings.Contains(s, "after_nil") {
		t.Fatalf("wrong registry under %s: %s", name, s)
	}
}
