package telemetry

import (
	"context"
	"log/slog"
)

// The solve-event logger follows the same two rules as the tracer and
// registry: it rides the context, and the no-logger path is a cheap
// no-op. Logger never returns nil — when no logger was installed it
// returns a process-wide logger backed by a handler whose Enabled always
// reports false, so instrumentation sites call Logger(ctx).Info(...)
// unconditionally and pay only the Enabled check.

const loggerKey ctxKey = 100 // distinct from the iota keys in telemetry.go

// discardHandler is a slog.Handler that drops everything. (The standard
// library gained slog.DiscardHandler in a later Go release; this repo's
// language version predates it.)
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }

var discardLogger = slog.New(discardHandler{})

// WithLogger installs a structured solve-event logger in the context;
// maxent solves emit lifecycle events (solve.start, presolve,
// component.done, solve.done, infeasible) through it. A nil logger
// removes nothing and is treated as "no logger".
func WithLogger(ctx context.Context, l *slog.Logger) context.Context {
	if l == nil {
		return ctx
	}
	return context.WithValue(ctx, loggerKey, l)
}

// Logger returns the context's solve-event logger, or a discard logger
// when none was installed. The result is never nil, so call sites need no
// branch.
func Logger(ctx context.Context) *slog.Logger {
	if l, _ := ctx.Value(loggerKey).(*slog.Logger); l != nil {
		return l
	}
	return discardLogger
}
