package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// JSONSink writes one JSON object per span-end event — the structured
// trace format behind pmaxent's -trace-out flag. Lines look like
//
//	{"name":"maxent.solve","id":4,"parent":2,"start":"...","dur_us":1523,"attrs":{"algorithm":"lbfgs"}}
//
// Emit is serialized by an internal mutex, so one sink may serve many
// goroutines (the parallel component solves).
type JSONSink struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewJSONSink builds a JSON-lines sink over w.
func NewJSONSink(w io.Writer) *JSONSink {
	return &JSONSink{enc: json.NewEncoder(w)}
}

// jsonEvent fixes the field order of the serialized trace line.
type jsonEvent struct {
	Name       string         `json:"name"`
	ID         uint64         `json:"id"`
	Parent     uint64         `json:"parent,omitempty"`
	Start      string         `json:"start"`
	DurationUS int64          `json:"dur_us"`
	Attrs      map[string]any `json:"attrs,omitempty"`
}

// Emit writes the event as one JSON line.
func (s *JSONSink) Emit(ev Event) {
	rec := jsonEvent{
		Name:       ev.Name,
		ID:         ev.ID,
		Parent:     ev.Parent,
		Start:      ev.Start.Format(time.RFC3339Nano),
		DurationUS: ev.Duration.Microseconds(),
	}
	if len(ev.Attrs) > 0 {
		rec.Attrs = make(map[string]any, len(ev.Attrs))
		for _, a := range ev.Attrs {
			rec.Attrs[a.Key] = a.Value
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = s.enc.Encode(rec)
}

// TreeSink collects events and renders them as a human-readable span
// tree (pmaxent's -trace flag). Spans end after their children, so by
// the time WriteTree is called every parent is present.
type TreeSink struct {
	mu     sync.Mutex
	events []Event
}

// NewTreeSink builds an empty collecting sink.
func NewTreeSink() *TreeSink { return &TreeSink{} }

// Emit records the event.
func (s *TreeSink) Emit(ev Event) {
	s.mu.Lock()
	s.events = append(s.events, ev)
	s.mu.Unlock()
}

// Events returns a copy of the collected events.
func (s *TreeSink) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.events...)
}

// WriteTree prints the spans as an indented tree ordered by start time,
// with durations and attributes:
//
//	pmaxent.run                       61.2ms
//	  core.bucketize                   1.1ms  records=2000 buckets=400
//	  maxent.solve                    48.9ms  algorithm=lbfgs
//	    maxent.solve.component         7.2ms  component=0 rows=31
func (s *TreeSink) WriteTree(w io.Writer) error {
	events := s.Events()
	children := make(map[uint64][]Event)
	var roots []Event
	for _, ev := range events {
		if ev.Parent == 0 {
			roots = append(roots, ev)
		} else {
			children[ev.Parent] = append(children[ev.Parent], ev)
		}
	}
	byStart := func(evs []Event) {
		sort.Slice(evs, func(i, j int) bool {
			if !evs[i].Start.Equal(evs[j].Start) {
				return evs[i].Start.Before(evs[j].Start)
			}
			return evs[i].ID < evs[j].ID
		})
	}
	byStart(roots)
	for _, evs := range children {
		byStart(evs)
	}
	var write func(ev Event, depth int) error
	write = func(ev Event, depth int) error {
		name := strings.Repeat("  ", depth) + ev.Name
		line := fmt.Sprintf("%-40s %12v", name, ev.Duration.Round(time.Microsecond))
		if len(ev.Attrs) > 0 {
			parts := make([]string, len(ev.Attrs))
			for i, a := range ev.Attrs {
				parts[i] = fmt.Sprintf("%s=%v", a.Key, a.Value)
			}
			line += "  " + strings.Join(parts, " ")
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
		for _, child := range children[ev.ID] {
			if err := write(child, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	for _, root := range roots {
		if err := write(root, 0); err != nil {
			return err
		}
	}
	return nil
}

// multiSink fans one event out to several sinks.
type multiSink []Sink

// MultiSink combines sinks; nil entries are dropped. With zero or one
// surviving sinks it returns nil or that sink directly.
func MultiSink(sinks ...Sink) Sink {
	var out multiSink
	for _, s := range sinks {
		if s != nil {
			out = append(out, s)
		}
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	default:
		return out
	}
}

// Emit forwards the event to every sink.
func (m multiSink) Emit(ev Event) {
	for _, s := range m {
		s.Emit(ev)
	}
}
