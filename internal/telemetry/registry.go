package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds named metrics. Lookup methods get-or-create and are
// safe for concurrent use; the returned handles are lock-free on the hot
// path (atomics only). All methods accept a nil receiver and then return
// nil handles, whose methods are no-ops — instrumentation sites never
// check whether metrics are enabled.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	infos      map[string]map[string]string
	helps      map[string]string
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		infos:      make(map[string]map[string]string),
		helps:      make(map[string]string),
	}
}

// SetHelp attaches Prometheus HELP text to the named family; WriteProm
// emits it on the "# HELP" line before the family's "# TYPE". Setting
// again replaces the text; no-op on a nil receiver.
func (r *Registry) SetHelp(name, help string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.helps[name] = help
	r.mu.Unlock()
}

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Int64 }

// Add increments the counter; no-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value reads the counter (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable float metric (e.g. the chosen worker count).
type Gauge struct{ bits atomic.Uint64 }

// Set stores v; no-op on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value reads the gauge (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram: observations are counted into
// the first bucket whose upper bound is >= the value, with an implicit
// +Inf bucket at the end. Sum and count are tracked exactly.
type Histogram struct {
	bounds []float64      // ascending upper bounds; len(counts) == len(bounds)+1
	counts []atomic.Int64 // per-bucket (non-cumulative) observation counts
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records one value; no-op on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, new) {
			return
		}
	}
}

// Count is the total number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum is the total of all observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Buckets returns the bucket upper bounds and their cumulative counts
// (the last entry is the +Inf bucket and equals Count()).
func (h *Histogram) Buckets() (bounds []float64, cumulative []int64) {
	if h == nil {
		return nil, nil
	}
	bounds = append([]float64(nil), h.bounds...)
	cumulative = make([]int64, len(h.counts))
	var run int64
	for i := range h.counts {
		run += h.counts[i].Load()
		cumulative[i] = run
	}
	return bounds, cumulative
}

// Default bucket layouts for the pipeline's series.
var (
	// DurationBuckets covers sub-millisecond presolves through
	// paper-scale multi-minute sweeps (seconds).
	DurationBuckets = []float64{0.0001, 0.001, 0.01, 0.1, 0.5, 1, 5, 30, 120}
	// CountBuckets is a geometric grid for iteration/evaluation/size
	// counts, matching the paper's log-scaled Figure 7 axes.
	CountBuckets = []float64{1, 3, 10, 30, 100, 300, 1000, 3000, 10000, 30000}
)

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds on first use (later callers' bounds are ignored;
// the first registration wins). Bounds must be ascending; nil falls
// back to DurationBuckets.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		if len(bounds) == 0 {
			bounds = DurationBuckets
		}
		h = &Histogram{
			bounds: append([]float64(nil), bounds...),
			counts: make([]atomic.Int64, len(bounds)+1),
		}
		r.histograms[name] = h
	}
	return h
}

// Info registers a constant labeled metric in the Prometheus
// "something_info" idiom: it is exported as a gauge with fixed value 1
// whose labels carry the information (build version, commit, …). Labels
// are copied; registering the same name again replaces the label set.
func (r *Registry) Info(name string, labels map[string]string) {
	if r == nil {
		return
	}
	cp := make(map[string]string, len(labels))
	for k, v := range labels {
		cp[k] = v
	}
	r.mu.Lock()
	r.infos[name] = cp
	r.mu.Unlock()
}

// Snapshot returns a stable-keyed view of every metric, suitable for
// expvar publication or JSON encoding.
func (r *Registry) Snapshot() map[string]any {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]any)
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	for name, h := range r.histograms {
		bounds, cum := h.Buckets()
		buckets := make(map[string]int64, len(bounds)+1)
		for i, b := range bounds {
			buckets[formatBound(b)] = cum[i]
		}
		buckets["+Inf"] = cum[len(cum)-1]
		out[name] = map[string]any{
			"count":   h.Count(),
			"sum":     h.Sum(),
			"buckets": buckets,
		}
	}
	for name, labels := range r.infos {
		cp := make(map[string]string, len(labels))
		for k, v := range labels {
			cp[k] = v
		}
		out[name] = cp
	}
	return out
}

// WriteProm renders a Prometheus-text-format snapshot of the registry,
// with families sorted by name for deterministic output.
func (r *Registry) WriteProm(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	histograms := make(map[string]*Histogram, len(r.histograms))
	for k, v := range r.histograms {
		histograms[k] = v
	}
	infos := make(map[string]map[string]string, len(r.infos))
	for k, v := range r.infos {
		infos[k] = v
	}
	helps := make(map[string]string, len(r.helps))
	for k, v := range r.helps {
		helps[k] = v
	}
	r.mu.Unlock()

	writeHelp := func(name string) error {
		help, ok := helps[name]
		if !ok || help == "" {
			return nil
		}
		_, err := fmt.Fprintf(w, "# HELP %s %s\n", promName(name), promHelp(help))
		return err
	}
	for _, name := range sortedKeys(infos) {
		labels := infos[name]
		parts := make([]string, 0, len(labels))
		for _, k := range sortedKeys(labels) {
			parts = append(parts, fmt.Sprintf("%s=%q", promName(k), labels[k]))
		}
		if err := writeHelp(name); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s{%s} 1\n",
			promName(name), promName(name), strings.Join(parts, ",")); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(counters) {
		if err := writeHelp(name); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", promName(name), promName(name), counters[name].Value()); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(gauges) {
		if err := writeHelp(name); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", promName(name), promName(name), gauges[name].Value()); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(histograms) {
		h := histograms[name]
		pn := promName(name)
		if err := writeHelp(name); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
			return err
		}
		bounds, cum := h.Buckets()
		for i, b := range bounds {
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", pn, formatBound(b), cum[i]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, cum[len(cum)-1]); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", pn, h.Sum(), pn, h.Count()); err != nil {
			return err
		}
	}
	return nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// promName maps a metric name onto the Prometheus charset.
func promName(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			return r
		default:
			return '_'
		}
	}, name)
}

// promHelp escapes HELP text per the Prometheus exposition format
// (backslash and newline are the only special characters).
func promHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func formatBound(b float64) string {
	if math.IsInf(b, 1) {
		return "+Inf"
	}
	return fmt.Sprintf("%g", b)
}
