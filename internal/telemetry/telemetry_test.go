package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

// TestNoTracerIsNoop: without a tracer in the context, Start returns the
// same context and a nil span whose methods are all safe.
func TestNoTracerIsNoop(t *testing.T) {
	ctx := context.Background()
	ctx2, span := Start(ctx, "maxent.solve", Int("variables", 10))
	if span != nil {
		t.Fatalf("expected nil span without a tracer, got %+v", span)
	}
	if ctx2 != ctx {
		t.Fatal("expected the original context back")
	}
	span.SetAttr(String("k", "v")) // must not panic
	span.End()
	if TracerFrom(ctx) != nil || Metrics(ctx) != nil {
		t.Fatal("empty context should carry no tracer or registry")
	}
}

// TestSpanNesting checks parent/child links and depths across three
// levels, including a sibling that must share the parent.
func TestSpanNesting(t *testing.T) {
	sink := NewTreeSink()
	ctx := WithTracer(context.Background(), NewTracer(sink))

	ctx1, root := Start(ctx, "root")
	ctx2, child := Start(ctx1, "child")
	_, grand := Start(ctx2, "grandchild")
	grand.End()
	child.End()
	_, sibling := Start(ctx1, "sibling")
	sibling.End()
	root.End()

	events := sink.Events()
	if len(events) != 4 {
		t.Fatalf("got %d events, want 4", len(events))
	}
	byName := map[string]Event{}
	for _, ev := range events {
		byName[ev.Name] = ev
	}
	r, c, g, s := byName["root"], byName["child"], byName["grandchild"], byName["sibling"]
	if r.Parent != 0 || r.Depth != 0 {
		t.Fatalf("root parent/depth = %d/%d", r.Parent, r.Depth)
	}
	if c.Parent != r.ID || c.Depth != 1 {
		t.Fatalf("child parent = %d (root is %d), depth %d", c.Parent, r.ID, c.Depth)
	}
	if g.Parent != c.ID || g.Depth != 2 {
		t.Fatalf("grandchild parent = %d (child is %d), depth %d", g.Parent, c.ID, g.Depth)
	}
	if s.Parent != r.ID || s.Depth != 1 {
		t.Fatalf("sibling parent = %d (root is %d), depth %d", s.Parent, r.ID, s.Depth)
	}
	if g.Duration < 0 || r.Duration < g.Duration {
		t.Fatalf("durations: root %v < grandchild %v", r.Duration, g.Duration)
	}
}

// TestDoubleEndEmitsOnce verifies End is idempotent.
func TestDoubleEndEmitsOnce(t *testing.T) {
	sink := NewTreeSink()
	ctx := WithTracer(context.Background(), NewTracer(sink))
	_, span := Start(ctx, "once")
	span.End()
	span.End()
	if n := len(sink.Events()); n != 1 {
		t.Fatalf("got %d events, want 1", n)
	}
}

// TestJSONSinkShape decodes the JSON-lines output and checks the schema:
// name, id, parent, start, dur_us, attrs.
func TestJSONSinkShape(t *testing.T) {
	var buf bytes.Buffer
	ctx := WithTracer(context.Background(), NewTracer(NewJSONSink(&buf)))
	ctx, root := Start(ctx, "pipeline", String("mode", "demo"))
	_, child := Start(ctx, "stage", Int("constraints", 42), Bool("decompose", true), Float("eps", 0.5))
	child.End()
	root.End()

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), buf.String())
	}
	// Children end first, so line 0 is the stage span.
	var stage struct {
		Name   string         `json:"name"`
		ID     uint64         `json:"id"`
		Parent uint64         `json:"parent"`
		Start  string         `json:"start"`
		DurUS  *int64         `json:"dur_us"`
		Attrs  map[string]any `json:"attrs"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &stage); err != nil {
		t.Fatalf("line 0 not JSON: %v\n%s", err, lines[0])
	}
	if stage.Name != "stage" || stage.Parent == 0 || stage.Start == "" || stage.DurUS == nil {
		t.Fatalf("unexpected stage event: %+v", stage)
	}
	if got := stage.Attrs["constraints"]; got != float64(42) {
		t.Fatalf("constraints attr = %v", got)
	}
	if got := stage.Attrs["decompose"]; got != true {
		t.Fatalf("decompose attr = %v", got)
	}
	var root2 struct {
		Name   string `json:"name"`
		Parent *uint64
	}
	if err := json.Unmarshal([]byte(lines[1]), &root2); err != nil {
		t.Fatal(err)
	}
	if root2.Name != "pipeline" {
		t.Fatalf("root name = %q", root2.Name)
	}
	if strings.Contains(lines[1], `"parent"`) {
		t.Fatalf("root event should omit parent: %s", lines[1])
	}
}

// TestTreeSinkWriteTree checks indentation and ordering of the printed
// tree.
func TestTreeSinkWriteTree(t *testing.T) {
	sink := NewTreeSink()
	ctx := WithTracer(context.Background(), NewTracer(sink))
	ctx1, root := Start(ctx, "run")
	_, a := Start(ctx1, "bucketize", Int("buckets", 7))
	a.End()
	_, b := Start(ctx1, "solve")
	b.End()
	root.End()

	var buf bytes.Buffer
	if err := sink.WriteTree(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "run") {
		t.Fatalf("line 0 = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "  bucketize") || !strings.Contains(lines[1], "buckets=7") {
		t.Fatalf("line 1 = %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "  solve") {
		t.Fatalf("line 2 = %q", lines[2])
	}
}

// TestMultiSink checks fan-out and nil collapsing.
func TestMultiSink(t *testing.T) {
	a, b := NewTreeSink(), NewTreeSink()
	if MultiSink() != nil {
		t.Fatal("empty MultiSink should be nil")
	}
	if MultiSink(nil, a) != Sink(a) {
		t.Fatal("single-sink MultiSink should collapse")
	}
	m := MultiSink(a, nil, b)
	ctx := WithTracer(context.Background(), NewTracer(m))
	_, s := Start(ctx, "x")
	s.End()
	if len(a.Events()) != 1 || len(b.Events()) != 1 {
		t.Fatalf("fan-out failed: %d/%d", len(a.Events()), len(b.Events()))
	}
}

// BenchmarkStartNoTracer measures the default no-op path: one context
// lookup per Start, no allocation.
func BenchmarkStartNoTracer(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, span := Start(ctx, "maxent.solve")
		span.End()
	}
}
