package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"testing"
)

// TestLoggerNilSafe: without a logger in the context, Logger returns a
// usable discard logger — never nil — and logging through it is a no-op.
func TestLoggerNilSafe(t *testing.T) {
	ctx := context.Background()
	l := Logger(ctx)
	if l == nil {
		t.Fatal("Logger returned nil")
	}
	l.Info("dropped", "k", "v") // must not panic
	if l.Enabled(ctx, slog.LevelError) {
		t.Fatal("discard logger claims to be enabled")
	}
	if WithLogger(ctx, nil) != ctx {
		t.Fatal("WithLogger(nil) should return the context unchanged")
	}
}

// TestLoggerRoundTrip installs a JSON handler and reads a structured
// event back out.
func TestLoggerRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	ctx := WithLogger(context.Background(), slog.New(slog.NewJSONHandler(&buf, nil)))
	Logger(ctx).Info("solve.start", "variables", 12, "algorithm", "lbfgs")

	var ev map[string]any
	if err := json.Unmarshal(buf.Bytes(), &ev); err != nil {
		t.Fatalf("not JSON: %v (%s)", err, buf.String())
	}
	if ev["msg"] != "solve.start" || ev["algorithm"] != "lbfgs" || ev["variables"] != float64(12) {
		t.Fatalf("event fields wrong: %v", ev)
	}
}
