package telemetry

import "context"

// Request identity rides the context exactly like the tracer, registry
// and logger: WithRequestID installs it, RequestID reads it back (empty
// when none was installed). The pmaxentd server assigns one ID per HTTP
// request — accepted from X-Request-Id / W3C traceparent or generated —
// and threads it through spans, the solve-event logger and audit
// provenance, so every signal a request produced can be joined back to
// its access-log line.

const requestIDKey ctxKey = 101 // distinct from the iota keys in telemetry.go

// WithRequestID installs a request identifier in the context. An empty
// id returns the context unchanged.
func WithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, requestIDKey, id)
}

// RequestID returns the context's request identifier, or "".
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}
