package worstcase

import (
	"math"
	"testing"

	"privacymaxent/internal/bucket"
	"privacymaxent/internal/dataset"
)

func paperData(t *testing.T) *bucket.Bucketized {
	t.Helper()
	d, err := bucket.FromPartition(dataset.PaperExample(), dataset.PaperBuckets())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDisclosureNoKnowledge(t *testing.T) {
	d := paperData(t)
	// Bucket 1 has SA multiset {s1, s2, s2, s3}: the best guess without
	// knowledge is s2 at 2/4 = 0.5, which also dominates buckets 2 and 3
	// (1/3 each).
	got, err := Disclosure(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("Disclosure(0) = %g, want 0.5", got)
	}
}

func TestDisclosureGrowsToOne(t *testing.T) {
	d := paperData(t)
	prev := 0.0
	for k := 0; k <= 4; k++ {
		got, err := Disclosure(d, k)
		if err != nil {
			t.Fatal(err)
		}
		if got < prev {
			t.Fatalf("disclosure decreased at k=%d: %g < %g", k, got, prev)
		}
		prev = got
	}
	// Two eliminations break bucket 1's duplicated s2: 2/(4-2) = 1.
	got, err := Disclosure(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("Disclosure(2) = %g, want 1", got)
	}
}

func TestBreakPoint(t *testing.T) {
	d := paperData(t)
	// Bucket 1: size 4, s2 count 2 -> 2 statements. Buckets 2 and 3: size
	// 3, counts 1 -> 2 statements. Minimum is 2.
	if got := BreakPoint(d); got != 2 {
		t.Fatalf("BreakPoint = %d, want 2", got)
	}
	if p, err := Disclosure(d, BreakPoint(d)); err != nil || p != 1 {
		t.Fatalf("Disclosure(BreakPoint) = %g, %v; want 1", p, err)
	}
	if p, err := Disclosure(d, BreakPoint(d)-1); err != nil || p >= 1 {
		t.Fatalf("Disclosure(BreakPoint-1) = %g, %v; want < 1", p, err)
	}
}

func TestCurve(t *testing.T) {
	d := paperData(t)
	curve, err := Curve(d, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 4 {
		t.Fatalf("curve length = %d, want 4", len(curve))
	}
	for i := 1; i < len(curve); i++ {
		if curve[i] < curve[i-1] {
			t.Fatalf("curve not monotone at %d: %v", i, curve)
		}
	}
	if curve[3] != 1 {
		t.Fatalf("curve[3] = %g, want saturated at 1", curve[3])
	}
}

func TestValidation(t *testing.T) {
	d := paperData(t)
	if _, err := Disclosure(d, -1); err == nil {
		t.Fatal("expected negative-budget error")
	}
	if _, err := Curve(d, -1); err == nil {
		t.Fatal("expected negative-kMax error")
	}
}
