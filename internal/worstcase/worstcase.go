// Package worstcase implements the deterministic-knowledge baseline the
// paper positions itself against (Sec. 2): Martin et al.'s worst-case
// background knowledge [19], in its bucketization form, restricted to
// negative atoms — statements "person p does not have sensitive value s".
// Chen et al.'s privacy skyline [7] generalizes the same idea with a
// (ℓ, k, m) budget; the k axis here corresponds to their second
// coordinate.
//
// Under random-worlds semantics a bucket of N_b records containing value
// s exactly n_s times gives every member probability n_s/N_b of holding
// s. An adversary who spends k statements eliminating *other* members
// from candidacy for s raises the target's posterior to n_s/(N_b − k),
// reaching certainty at k = N_b − n_s. The worst-case disclosure of a
// publication under budget k is the maximum of that quantity over
// buckets and values — a closed form, in contrast to Privacy-MaxEnt's
// probabilistic, optimization-based treatment. Comparing the two shows
// what the paper argues: deterministic worst-case bounds saturate quickly
// and cannot express probabilistic or aggregate knowledge.
package worstcase

import (
	"context"
	"fmt"

	"privacymaxent/internal/bucket"
	"privacymaxent/internal/telemetry"
)

// Disclosure returns the worst-case posterior max_{b,s} n_s/(N_b − k)
// (clipped to 1) an adversary with k negative statements about a single
// target's bucket can reach. k must be non-negative. It is a thin
// wrapper over DisclosureContext with a background context.
func Disclosure(d *bucket.Bucketized, k int) (float64, error) {
	return DisclosureContext(context.Background(), d, k)
}

// DisclosureContext is Disclosure with cancellation (checked between
// buckets) and a "worstcase.disclosure" telemetry span.
func DisclosureContext(ctx context.Context, d *bucket.Bucketized, k int) (float64, error) {
	_, span := telemetry.Start(ctx, "worstcase.disclosure",
		telemetry.Int("buckets", d.NumBuckets()),
		telemetry.Int("k", k))
	defer span.End()
	if k < 0 {
		return 0, fmt.Errorf("worstcase: negative knowledge budget %d", k)
	}
	var worst float64
	for b := 0; b < d.NumBuckets(); b++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		bk := d.Bucket(b)
		nb := bk.Size()
		for _, s := range bk.DistinctSAs() {
			ns := bk.SACount(s)
			// Eliminations beyond the non-s members are wasted; the
			// posterior caps at 1.
			denom := nb - k
			var p float64
			if denom <= ns {
				p = 1
			} else {
				p = float64(ns) / float64(denom)
			}
			if p > worst {
				worst = p
			}
		}
	}
	return worst, nil
}

// Curve evaluates Disclosure for k = 0..kMax, the baseline's analogue of
// an accuracy-vs-knowledge sweep.
func Curve(d *bucket.Bucketized, kMax int) ([]float64, error) {
	if kMax < 0 {
		return nil, fmt.Errorf("worstcase: negative kMax %d", kMax)
	}
	out := make([]float64, kMax+1)
	for k := 0; k <= kMax; k++ {
		p, err := Disclosure(d, k)
		if err != nil {
			return nil, err
		}
		out[k] = p
	}
	return out, nil
}

// BreakPoint returns the smallest budget k at which some individual's
// sensitive value is fully disclosed in the worst case — the number of
// negative statements needed to break the publication. For a bucket of
// N_b records whose rarest present value occurs n_s times, that is
// min over buckets and values of N_b − n_s.
func BreakPoint(d *bucket.Bucketized) int {
	best := -1
	for b := 0; b < d.NumBuckets(); b++ {
		bk := d.Bucket(b)
		for _, s := range bk.DistinctSAs() {
			k := bk.Size() - bk.SACount(s)
			if best < 0 || k < best {
				best = k
			}
		}
	}
	if best < 0 {
		return 0
	}
	return best
}
