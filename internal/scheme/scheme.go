// Package scheme unifies the repo's publication mechanisms — Anatomy
// bucketization, Mondrian generalization, and uniform randomized
// response — behind one PublicationScheme interface, so the same mined
// background knowledge and the same MaxEnt solver quantify every
// mechanism. The paper evaluates one mechanism (Anatomy); Rastogi et
// al.'s privacy–utility boundary and Martin et al.'s worst-case
// background knowledge frame the question a publisher actually faces:
// disclosure versus utility across mechanisms and parameters, compared
// under the same adversary. That comparison is only meaningful when
// every mechanism flows through the identical Prepare→Quantify pipeline,
// which is what this package provides.
//
// The common currency is the bucketized view (bucket.Bucketized): every
// scheme publishes one, every scheme's constraint rows are expressed
// over the term space constraint.NewSpace derives from it. What differs
// is the *invariants* a view certifies:
//
//   - Anatomy and Mondrian views certify exact per-bucket QI and SA
//     marginals (Theorems 1–3) — the classic equality system
//     constraint.DataInvariants builds.
//   - Randomized-response views group records by QI tuple (one bucket
//     per distinct QI value, SA column perturbed); they certify exact
//     QI marginals but only *noisy* SA evidence, entering the solve as
//     sampling-tolerance observation boxes (inequalities) rather than
//     equalities. See randomize.Invariants.
//
// Schemes are pure values: Params() returns the defaulted, canonical
// parameter struct whose JSON encoding (fixed field order) is the
// canonical byte form bound into publication digests, so caches, delta
// chains and history records never conflate two schemes — or two
// parameterizations of one scheme — over the same table.
package scheme

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"

	"privacymaxent/internal/bucket"
	"privacymaxent/internal/constraint"
	"privacymaxent/internal/dataset"
	"privacymaxent/internal/generalize"
	"privacymaxent/internal/maxent"
	"privacymaxent/internal/randomize"
)

// Scheme is a publication mechanism: how a table becomes a published
// view, and what constraint rows that view certifies to an adversary.
// Implementations are immutable values, safe for concurrent use.
type Scheme interface {
	// Name is the wire identifier ("anatomy", "mondrian",
	// "randomized_response").
	Name() string
	// Params returns the defaulted parameter struct. Its JSON encoding
	// is canonical (struct field order is fixed), making it usable as a
	// digest component.
	Params() any
	// Publish produces the published view from the original microdata.
	Publish(t *dataset.Table) (*bucket.Bucketized, error)
	// Invariants builds what the published view pins down: the equality
	// system (data invariants) and any inequality rows (observation
	// boxes) over the view's term space. A non-empty inequality slice
	// routes the solve through the boxed dual, which supports neither
	// decomposition, warm starts, delta reuse, nor audits — see
	// DESIGN.md §13 for the contract.
	Invariants(sp *constraint.Space, opts constraint.InvariantOptions) (*constraint.System, []maxent.Inequality, error)
}

// Anatomy is the paper's mechanism: partition into L-diverse buckets of
// L records, QI and SA columns both published exactly (linked only
// through bucket membership). Its invariants are the full Theorem 1–3
// equality system — this is the identity scheme the rest of the repo
// has always quantified.
type Anatomy struct {
	// L is the diversity parameter and target bucket size. Default 5.
	L int `json:"l"`
	// NoExemption disables the footnote-3 relaxation that exempts the
	// most frequent SA value from the diversity check.
	NoExemption bool `json:"no_exemption,omitempty"`
}

// NewAnatomy returns the Anatomy scheme with defaults applied.
func NewAnatomy(l int) Anatomy {
	a := Anatomy{L: l}
	return a.withDefaults()
}

func (a Anatomy) withDefaults() Anatomy {
	if a.L <= 0 {
		a.L = 5
	}
	return a
}

// Name implements Scheme.
func (a Anatomy) Name() string { return "anatomy" }

// Params implements Scheme.
func (a Anatomy) Params() any { return a.withDefaults() }

// Validate checks the parameters.
func (a Anatomy) Validate() error {
	if a.L < 0 {
		return fmt.Errorf("scheme: anatomy diversity %d negative", a.L)
	}
	return nil
}

// Publish implements Scheme via bucket.Anatomize. The row partition
// (ground truth, never published) is discarded.
func (a Anatomy) Publish(t *dataset.Table) (*bucket.Bucketized, error) {
	a = a.withDefaults()
	d, _, err := bucket.Anatomize(t, bucket.Options{
		L:                  a.L,
		ExemptMostFrequent: !a.NoExemption,
	})
	return d, err
}

// Invariants implements Scheme: the classic equality system. Parameters
// do not enter — L shapes the published view, not what the view
// certifies.
func (a Anatomy) Invariants(sp *constraint.Space, opts constraint.InvariantOptions) (*constraint.System, []maxent.Inequality, error) {
	return constraint.DataInvariants(sp, opts), nil, nil
}

// Mondrian is k-anonymous generalization (median-cut partitioning):
// each equivalence class of at least K records becomes one bucket. The
// published view certifies the same per-bucket marginal structure as
// Anatomy, so its invariants are the identical equality system — the
// mechanisms differ in the views they publish, not in what a given view
// pins down.
type Mondrian struct {
	// K is the anonymity parameter (minimum class size). Default 5.
	K int `json:"k"`
}

// NewMondrian returns the Mondrian scheme with defaults applied.
func NewMondrian(k int) Mondrian {
	m := Mondrian{K: k}
	return m.withDefaults()
}

func (m Mondrian) withDefaults() Mondrian {
	if m.K <= 0 {
		m.K = 5
	}
	return m
}

// Name implements Scheme.
func (m Mondrian) Name() string { return "mondrian" }

// Params implements Scheme.
func (m Mondrian) Params() any { return m.withDefaults() }

// Validate checks the parameters.
func (m Mondrian) Validate() error {
	if m.K < 0 {
		return fmt.Errorf("scheme: mondrian k %d negative", m.K)
	}
	return nil
}

// Publish implements Scheme via generalize.Publish; the equivalence
// classes (recoverable from the view) are discarded.
func (m Mondrian) Publish(t *dataset.Table) (*bucket.Bucketized, error) {
	m = m.withDefaults()
	d, _, err := generalize.Publish(t, m.K)
	return d, err
}

// Invariants implements Scheme: identical to Anatomy's equality system.
func (m Mondrian) Invariants(sp *constraint.Space, opts constraint.InvariantOptions) (*constraint.System, []maxent.Inequality, error) {
	return constraint.DataInvariants(sp, opts), nil, nil
}

// RandomizedResponse is uniform randomized response on the sensitive
// attribute: each record keeps its true SA value with probability Rho,
// otherwise reports a uniform draw from the whole domain; QI columns are
// untouched and Rho is public. The published view groups records by QI
// tuple (one bucket per distinct QI value), so QI marginals are exact
// equalities while the perturbed SA counts enter as sampling-tolerance
// observation boxes — the inequality machinery of Sec. 4.5.
type RandomizedResponse struct {
	// Rho is the retention probability in [0, 1].
	Rho float64 `json:"rho"`
	// Z is the sampling-tolerance width: each observation box has
	// half-width Z·σ̂ + 1/N around the observed share. Default 3.
	Z float64 `json:"z,omitempty"`
	// Seed drives the perturbation draw in Publish; it does not affect
	// Invariants (the adversary sees only the published view and Rho).
	Seed int64 `json:"seed,omitempty"`
}

// NewRandomizedResponse returns the randomized-response scheme with
// defaults applied.
func NewRandomizedResponse(rho float64, seed int64) RandomizedResponse {
	r := RandomizedResponse{Rho: rho, Seed: seed}
	return r.withDefaults()
}

func (r RandomizedResponse) withDefaults() RandomizedResponse {
	if r.Z <= 0 {
		r.Z = 3
	}
	return r
}

// Name implements Scheme.
func (r RandomizedResponse) Name() string { return "randomized_response" }

// Params implements Scheme.
func (r RandomizedResponse) Params() any { return r.withDefaults() }

// Validate checks the parameters.
func (r RandomizedResponse) Validate() error {
	if r.Rho < 0 || r.Rho > 1 {
		return fmt.Errorf("scheme: randomized_response rho %g outside [0,1]", r.Rho)
	}
	if r.Z < 0 {
		return fmt.Errorf("scheme: randomized_response z %g negative", r.Z)
	}
	return nil
}

// Publish implements Scheme: perturb the SA column under Rho/Seed, then
// group the perturbed table by QI tuple into the bucketized view.
func (r RandomizedResponse) Publish(t *dataset.Table) (*bucket.Bucketized, error) {
	r = r.withDefaults()
	perturbed, _, err := randomize.Perturb(t, r.Rho, r.Seed)
	if err != nil {
		return nil, err
	}
	return randomize.GroupByQI(perturbed)
}

// Invariants implements Scheme via randomize.Invariants: exact QI
// marginal equalities plus per-(QI, observed-SA) observation boxes. The
// InvariantOptions are ignored — the system has no SA equality rows to
// drop. SA values never observed for a QI group are excluded
// structurally by the term space (the Eq. 6 zero-invariant convention);
// see DESIGN.md §13 for how this diverges from a full-domain estimator.
func (r RandomizedResponse) Invariants(sp *constraint.Space, _ constraint.InvariantOptions) (*constraint.System, []maxent.Inequality, error) {
	r = r.withDefaults()
	mech := randomize.Mechanism{Rho: r.Rho, M: sp.Data().SACardinality()}
	return randomize.Invariants(sp, mech, r.Z)
}

// Descriptor is the capability-discovery record a daemon advertises for
// one scheme: wire name, parameter schema (parameter → type/doc), and
// whether the scheme solves through the boxed (inequality) dual, which
// forgoes delta chaining, warm starts and audits.
type Descriptor struct {
	Name   string            `json:"name"`
	Params map[string]string `json:"params"`
	Boxed  bool              `json:"boxed,omitempty"`
}

// Describe lists every registered scheme's descriptor, sorted by name.
func Describe() []Descriptor {
	out := []Descriptor{
		{
			Name: "anatomy",
			Params: map[string]string{
				"l":            "int ≥ 1 — diversity parameter and bucket size (default 5)",
				"no_exemption": "bool — disable the most-frequent-SA diversity exemption",
			},
		},
		{
			Name: "mondrian",
			Params: map[string]string{
				"k": "int ≥ 1 — anonymity parameter, minimum equivalence-class size (default 5)",
			},
		},
		{
			Name: "randomized_response",
			Params: map[string]string{
				"rho":  "float in [0,1] — probability the true SA value is retained",
				"z":    "float > 0 — observation-box half-width multiplier z·σ̂ + 1/N (default 3)",
				"seed": "int — perturbation seed (Publish only; ignored by Invariants)",
			},
			Boxed: true,
		},
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Names lists the registered scheme names, sorted.
func Names() []string {
	ds := Describe()
	names := make([]string, len(ds))
	for i := range ds {
		names[i] = ds[i].Name
	}
	return names
}

// Parse resolves a wire scheme spec — name plus raw JSON params — into
// a Scheme, with defaults applied and parameters validated. Unknown
// names, unknown parameter fields, and out-of-range values all error;
// nil/empty params mean the scheme's defaults.
func Parse(name string, params json.RawMessage) (Scheme, error) {
	decode := func(into interface{ Validate() error }) error {
		if len(params) == 0 || string(params) == "null" {
			return nil
		}
		dec := json.NewDecoder(bytes.NewReader(params))
		dec.DisallowUnknownFields()
		if err := dec.Decode(into); err != nil {
			return fmt.Errorf("scheme: %s params: %w", name, err)
		}
		return nil
	}
	switch name {
	case "anatomy":
		var a Anatomy
		if err := decode(&a); err != nil {
			return nil, err
		}
		a = a.withDefaults()
		if err := a.Validate(); err != nil {
			return nil, err
		}
		return a, nil
	case "mondrian":
		var m Mondrian
		if err := decode(&m); err != nil {
			return nil, err
		}
		m = m.withDefaults()
		if err := m.Validate(); err != nil {
			return nil, err
		}
		return m, nil
	case "randomized_response":
		var r RandomizedResponse
		if err := decode(&r); err != nil {
			return nil, err
		}
		r = r.withDefaults()
		if err := r.Validate(); err != nil {
			return nil, err
		}
		return r, nil
	default:
		return nil, fmt.Errorf("scheme: unknown scheme %q", name)
	}
}

// CanonicalParams returns the canonical byte form of a scheme's
// parameters: the JSON encoding of the defaulted Params() struct.
// encoding/json emits struct fields in declaration order, so the bytes
// are deterministic — the form digests and single-flight keys bind.
func CanonicalParams(s Scheme) ([]byte, error) {
	return json.Marshal(s.Params())
}

// Boxed reports whether the scheme emits inequality rows (observation
// boxes), routing solves through the boxed dual.
func Boxed(s Scheme) bool {
	_, ok := s.(RandomizedResponse)
	return ok
}
