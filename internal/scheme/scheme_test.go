package scheme

import (
	"bytes"
	"encoding/json"
	"math"
	"sort"
	"strings"
	"testing"

	"privacymaxent/internal/bucket"
	"privacymaxent/internal/constraint"
	"privacymaxent/internal/dataset"
)

func paperView(t *testing.T) *bucket.Bucketized {
	t.Helper()
	d, err := bucket.FromPartition(dataset.PaperExample(), dataset.PaperBuckets())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestAnatomyInvariantsMatchDataInvariants: the identity scheme must
// produce exactly the classic equality system — row for row — so
// PrepareScheme(d, Anatomy{}) and Prepare(d) are interchangeable.
func TestAnatomyInvariantsMatchDataInvariants(t *testing.T) {
	d := paperView(t)
	sp := constraint.NewSpace(d)
	opts := constraint.InvariantOptions{DropRedundant: true}
	want := constraint.DataInvariants(sp, opts)
	got, ineqs, err := NewAnatomy(0).Invariants(sp, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(ineqs) != 0 {
		t.Fatalf("anatomy emitted %d inequalities", len(ineqs))
	}
	if got.Len() != want.Len() {
		t.Fatalf("rows = %d, want %d", got.Len(), want.Len())
	}
	for i := 0; i < got.Len(); i++ {
		if got.At(i).Label != want.At(i).Label {
			t.Fatalf("row %d label = %q, want %q", i, got.At(i).Label, want.At(i).Label)
		}
	}
}

// TestMondrianInvariantsMatchDataInvariants: same identity property —
// Mondrian differs from Anatomy in the views it publishes, not in what a
// given view certifies.
func TestMondrianInvariantsMatchDataInvariants(t *testing.T) {
	d := paperView(t)
	sp := constraint.NewSpace(d)
	opts := constraint.InvariantOptions{DropRedundant: false}
	want := constraint.DataInvariants(sp, opts)
	got, ineqs, err := NewMondrian(0).Invariants(sp, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(ineqs) != 0 || got.Len() != want.Len() {
		t.Fatalf("rows = %d (+%d ineqs), want %d (+0)", got.Len(), len(ineqs), want.Len())
	}
}

// TestRandomizedResponseInvariants: the boxed scheme publishes one
// bucket per distinct QI tuple, emits exact QI equality rows and one
// observation box per observed (QI, SA') cell, every box containing the
// observed share.
func TestRandomizedResponseInvariants(t *testing.T) {
	sch := NewRandomizedResponse(0.7, 11)
	view, err := sch.Publish(dataset.PaperExample())
	if err != nil {
		t.Fatal(err)
	}
	if view.NumBuckets() != view.Universe().Len() {
		t.Fatalf("buckets = %d, distinct QI = %d", view.NumBuckets(), view.Universe().Len())
	}
	sp := constraint.NewSpace(view)
	sys, ineqs, err := sch.Invariants(sp, constraint.InvariantOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Len() == 0 || len(ineqs) == 0 {
		t.Fatalf("system %d rows, %d boxes — both must be non-empty", sys.Len(), len(ineqs))
	}
	for i := 0; i < sys.Len(); i++ {
		if sys.At(i).Kind != constraint.QIInvariant {
			t.Fatalf("row %d kind = %v, want QIInvariant only", i, sys.At(i).Kind)
		}
	}
	for _, iq := range ineqs {
		if iq.Lo < 0 || iq.Hi <= iq.Lo {
			t.Fatalf("box %q has degenerate bounds [%g, %g]", iq.Label, iq.Lo, iq.Hi)
		}
	}
}

// TestRandomizedResponseBoxesShrinkWithZ: tighter z means tighter boxes.
func TestRandomizedResponseBoxesShrinkWithZ(t *testing.T) {
	tbl := dataset.PaperExample()
	width := func(z float64) float64 {
		sch := RandomizedResponse{Rho: 0.7, Z: z, Seed: 11}
		view, err := sch.Publish(tbl)
		if err != nil {
			t.Fatal(err)
		}
		_, ineqs, err := sch.Invariants(constraint.NewSpace(view), constraint.InvariantOptions{})
		if err != nil {
			t.Fatal(err)
		}
		var total float64
		for _, iq := range ineqs {
			total += iq.Hi - iq.Lo
		}
		return total
	}
	if wide, narrow := width(5), width(1); narrow >= wide {
		t.Fatalf("z=1 width %g not tighter than z=5 width %g", narrow, wide)
	}
}

func TestParse(t *testing.T) {
	for _, tc := range []struct {
		name    string
		params  string
		wantErr string
	}{
		{"anatomy", "", ""},
		{"anatomy", `{"l": 3}`, ""},
		{"anatomy", `null`, ""},
		{"mondrian", `{"k": 7}`, ""},
		{"randomized_response", `{"rho": 0.5, "seed": 4}`, ""},
		{"randomized_response", `{"rho": 1.5}`, "outside [0,1]"},
		{"anatomy", `{"diversity": 3}`, "unknown field"},
		{"anatomy", `{"l": "three"}`, "cannot unmarshal"},
		{"bucketize", "", `unknown scheme "bucketize"`},
		{"", "", `unknown scheme ""`},
	} {
		var raw json.RawMessage
		if tc.params != "" {
			raw = json.RawMessage(tc.params)
		}
		s, err := Parse(tc.name, raw)
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("Parse(%q, %s) error: %v", tc.name, tc.params, err)
			} else if s.Name() != tc.name {
				t.Errorf("Parse(%q).Name() = %q", tc.name, s.Name())
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("Parse(%q, %s) error = %v, want containing %q", tc.name, tc.params, err, tc.wantErr)
		}
	}
}

// TestParseAppliesDefaults: parsed schemes carry defaults, so the
// canonical parameter bytes of {"name": "anatomy"} and {"name":
// "anatomy", "params": {"l": 5}} are identical — they digest alike.
func TestParseAppliesDefaults(t *testing.T) {
	a, err := Parse("anatomy", nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Parse("anatomy", json.RawMessage(`{"l": 5}`))
	if err != nil {
		t.Fatal(err)
	}
	ca, _ := CanonicalParams(a)
	cb, _ := CanonicalParams(b)
	if !bytes.Equal(ca, cb) {
		t.Fatalf("defaulted params diverge: %s vs %s", ca, cb)
	}
	r, err := Parse("randomized_response", json.RawMessage(`{"rho": 0.5}`))
	if err != nil {
		t.Fatal(err)
	}
	if z := r.(RandomizedResponse).Z; z != 3 {
		t.Fatalf("default z = %g, want 3", z)
	}
}

func TestDescribeSortedAndComplete(t *testing.T) {
	ds := Describe()
	if !sort.SliceIsSorted(ds, func(i, j int) bool { return ds[i].Name < ds[j].Name }) {
		t.Fatal("Describe not sorted by name")
	}
	names := Names()
	if len(names) != 3 {
		t.Fatalf("names = %v", names)
	}
	for _, d := range ds {
		if len(d.Params) == 0 {
			t.Errorf("scheme %s has no parameter schema", d.Name)
		}
		if d.Boxed != (d.Name == "randomized_response") {
			t.Errorf("scheme %s boxed = %v", d.Name, d.Boxed)
		}
		if s, err := Parse(d.Name, nil); err != nil {
			t.Errorf("descriptor %s does not Parse: %v", d.Name, err)
		} else if Boxed(s) != d.Boxed {
			t.Errorf("Boxed(%s) = %v, descriptor says %v", d.Name, Boxed(s), d.Boxed)
		}
	}
}

// TestCanonicalParamsDeterministic: the digest component must be stable
// byte-for-byte across calls.
func TestCanonicalParamsDeterministic(t *testing.T) {
	for _, s := range []Scheme{NewAnatomy(2), NewMondrian(9), NewRandomizedResponse(0.3, 7)} {
		a, err := CanonicalParams(s)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := CanonicalParams(s)
		if !bytes.Equal(a, b) {
			t.Fatalf("%s params not deterministic: %s vs %s", s.Name(), a, b)
		}
	}
}

// TestPublishedSchemesSolve: every scheme's (Publish, Invariants) pair
// yields a view whose published marginals the solved posterior must
// reproduce — the end-to-end contract PrepareScheme relies on.
func TestSchemePublishRoundTrip(t *testing.T) {
	tbl := dataset.PaperExample()
	for _, sch := range []Scheme{NewAnatomy(2), NewMondrian(2), NewRandomizedResponse(0.8, 5)} {
		view, err := sch.Publish(tbl)
		if err != nil {
			t.Fatalf("%s publish: %v", sch.Name(), err)
		}
		if view.NumBuckets() == 0 {
			t.Fatalf("%s published no buckets", sch.Name())
		}
		var total float64
		for b := 0; b < view.NumBuckets(); b++ {
			for s := 0; s < view.SACardinality(); s++ {
				total += view.PSB(s, b)
			}
		}
		if math.Abs(total-1) > 1e-9 {
			t.Fatalf("%s view mass = %g", sch.Name(), total)
		}
	}
}
