package history

import (
	"context"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"time"

	"privacymaxent/internal/telemetry"
)

// Store is the daemon-facing assembly: journal + in-memory recent ring +
// aggregator + regression detector, glued by a write-behind writer
// goroutine. Append never blocks the solve path: the in-memory surfaces
// (Recent, Digests, Regressions) update synchronously, while the disk
// write rides a bounded queue — when the queue is full the record's
// durability is dropped (and counted), never the solve's latency.
type Store struct {
	cfg   StoreConfig
	agg   *Aggregator
	reg   *telemetry.Registry
	log   *slog.Logger
	fsync FsyncPolicy

	queue chan queueMsg
	wg    sync.WaitGroup // writer goroutine

	// closeMu fences queue sends against Close: senders hold the read
	// side, Close takes the write side before closing the channel, so a
	// late Append can never send on a closed queue.
	closeMu sync.RWMutex
	closed  bool

	mu     sync.Mutex // recent ring + journal
	j      *journal
	recent []Record // oldest first, capped at cfg.RecentCap
}

// queueMsg is one unit of writer work: a record to append, or a flush
// request (rec unused) acknowledged on done.
type queueMsg struct {
	rec   Record
	flush bool
	done  chan error
}

// FsyncPolicy says when the journal calls fsync: after every record
// (Always), on a fixed interval (Interval > 0), or never (the OS page
// cache decides; records still survive process death, just not power
// loss).
type FsyncPolicy struct {
	Always   bool
	Interval time.Duration
}

// ParseFsync reads a policy from its flag form: "always", "never"/"off",
// or a Go duration like "1s".
func ParseFsync(s string) (FsyncPolicy, error) {
	switch strings.ToLower(s) {
	case "always":
		return FsyncPolicy{Always: true}, nil
	case "never", "off":
		return FsyncPolicy{}, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil || d <= 0 {
		return FsyncPolicy{}, fmt.Errorf("history: fsync policy %q (want \"always\", \"never\" or a positive duration)", s)
	}
	return FsyncPolicy{Interval: d}, nil
}

func (p FsyncPolicy) String() string {
	switch {
	case p.Always:
		return "always"
	case p.Interval > 0:
		return p.Interval.String()
	default:
		return "never"
	}
}

// StoreConfig configures Open. Only Dir is required.
type StoreConfig struct {
	// Dir is the journal directory (created if missing).
	Dir string
	// SegmentRecords caps records per segment file. Default 1024.
	SegmentRecords int
	// RetentionRecords is the minimum records kept on disk; older whole
	// segments are deleted on rotation. Default 65536.
	RetentionRecords int
	// Fsync is the durability policy. The zero value syncs every 1s.
	Fsync FsyncPolicy
	// RecentCap bounds the in-memory ring GET /v1/history serves.
	// Default 4096.
	RecentCap int
	// QueueCap bounds the write-behind queue. Default 256.
	QueueCap int
	// Regression tunes the drift detector.
	Regression RegressionConfig
	// Registry receives the pmaxentd_history_* / pmaxentd_regression_*
	// series (nil disables metrics); Logger the structured regression
	// and journal events (nil discards).
	Registry *telemetry.Registry
	Logger   *slog.Logger
}

func (c StoreConfig) withDefaults() StoreConfig {
	if c.SegmentRecords <= 0 {
		c.SegmentRecords = 1024
	}
	if c.RetentionRecords <= 0 {
		c.RetentionRecords = 65536
	}
	if !c.Fsync.Always && c.Fsync.Interval == 0 {
		c.Fsync.Interval = time.Second
	}
	if c.RecentCap <= 0 {
		c.RecentCap = 4096
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 256
	}
	if c.Logger == nil {
		c.Logger = telemetry.Logger(context.Background())
	}
	return c
}

// Open recovers the journal at cfg.Dir — replaying every intact record
// into the aggregates and the recent ring, skipping (and truncating)
// crash-torn frames — and starts the write-behind writer.
func Open(cfg StoreConfig) (*Store, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, fmt.Errorf("history: StoreConfig.Dir is required")
	}
	s := &Store{
		cfg:   cfg,
		agg:   NewAggregator(cfg.Regression),
		reg:   cfg.Registry,
		log:   cfg.Logger,
		fsync: cfg.Fsync,
		queue: make(chan queueMsg, cfg.QueueCap),
	}
	j, st, err := openJournal(cfg.Dir, cfg.SegmentRecords, cfg.RetentionRecords, func(rec Record) {
		s.agg.Observe(rec)
		s.pushRecent(rec)
	})
	if err != nil {
		return nil, err
	}
	s.j = j
	// Regressions that were active when the last process died must
	// resurface from the replay alone, before any fresh traffic.
	detected, _ := s.agg.CheckAll()
	for _, reg := range detected {
		s.logRegression("detected", reg)
	}
	s.reg.Counter("pmaxentd_history_recovered_total").Add(int64(st.Records))
	s.reg.Counter("pmaxentd_history_torn_frames_total").Add(int64(st.Torn))
	s.publishGauges()
	s.log.Info("history: journal recovered",
		"dir", cfg.Dir, "records", st.Records, "segments", st.Segments,
		"torn_frames", st.Torn, "bytes", st.Bytes, "fsync", cfg.Fsync.String())

	s.wg.Add(1)
	go s.writer()
	return s, nil
}

// Dir exposes the journal directory (for logs and artifacts).
func (s *Store) Dir() string { return s.cfg.Dir }

// Append records one finished solve: the in-memory surfaces update
// synchronously (so /v1/history and /debug/regressions reflect the solve
// immediately), the disk append is queued behind the writer. Never
// blocks: a full queue drops the record's durability and counts it.
func (s *Store) Append(rec Record) {
	if rec.Schema == 0 {
		rec.Schema = RecordSchema
	}
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closed {
		return
	}
	s.pushRecent(rec)
	s.agg.Observe(rec)
	detected, cleared := s.agg.Check(rec.Digest)
	s.noteRegressions(detected, cleared)
	s.reg.Counter("pmaxentd_history_records_total").Add(1)

	select {
	case s.queue <- queueMsg{rec: rec}:
	default:
		s.reg.Counter("pmaxentd_history_dropped_total").Add(1)
		s.log.Warn("history: write-behind queue full, record not journaled",
			"solve_id", rec.SolveID, "digest", rec.Digest)
	}
}

func (s *Store) pushRecent(rec Record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pushRecentLocked(rec)
}

func (s *Store) pushRecentLocked(rec Record) {
	if len(s.recent) >= s.cfg.RecentCap {
		copy(s.recent, s.recent[1:])
		s.recent = s.recent[:len(s.recent)-1]
	}
	s.recent = append(s.recent, rec)
}

// noteRegressions translates detector transitions into metrics and
// structured log events.
func (s *Store) noteRegressions(detected, cleared []Regression) {
	s.reg.Counter("pmaxentd_regression_checks_total").Add(1)
	for _, reg := range detected {
		s.reg.Counter("pmaxentd_regression_detected_total").Add(1)
		s.logRegression("detected", reg)
	}
	for _, reg := range cleared {
		s.logRegression("cleared", reg)
	}
	if len(detected)+len(cleared) > 0 {
		s.reg.Gauge("pmaxentd_regression_active").Set(float64(len(s.agg.Regressions())))
	}
}

func (s *Store) logRegression(what string, reg Regression) {
	s.log.Warn("history: regression "+what,
		"digest", reg.Digest,
		"metric", reg.Metric,
		"baseline_p50", reg.BaselineP50,
		"recent_p50", reg.RecentP50,
		"ratio", reg.Ratio,
		"baseline_count", reg.BaselineCount,
		"recent_count", reg.RecentCount)
}

// writer is the write-behind goroutine: it drains the queue into the
// journal, fsyncing per the policy (after each drained batch for Always,
// on a ticker for Interval).
func (s *Store) writer() {
	defer s.wg.Done()
	var tick <-chan time.Time
	if s.fsync.Interval > 0 {
		t := time.NewTicker(s.fsync.Interval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case msg, ok := <-s.queue:
			if !ok {
				return
			}
			s.handle(msg)
			// Drain whatever queued behind it so an Always policy pays
			// one fsync per batch, not per record.
			if !s.drainPending() {
				return
			}
			if s.fsync.Always {
				s.journalSync()
			}
			s.publishGauges()
		case <-tick:
			s.journalSync()
		}
	}
}

// drainPending handles every already-queued message without blocking,
// reporting false when the queue was closed.
func (s *Store) drainPending() bool {
	for {
		select {
		case msg, ok := <-s.queue:
			if !ok {
				return false
			}
			s.handle(msg)
		default:
			return true
		}
	}
}

func (s *Store) handle(msg queueMsg) {
	s.mu.Lock()
	var err error
	if msg.flush {
		err = s.j.sync()
	} else {
		start := time.Now()
		err = s.j.append(msg.rec)
		s.reg.Histogram("pmaxentd_history_append_duration_seconds", telemetry.DurationBuckets).
			Observe(time.Since(start).Seconds())
	}
	s.mu.Unlock()
	if err != nil {
		s.log.Error("history: journal write failed", "err", err)
	}
	if msg.done != nil {
		msg.done <- err
	}
}

func (s *Store) journalSync() {
	s.mu.Lock()
	err := s.j.sync()
	s.mu.Unlock()
	if err != nil {
		s.log.Error("history: fsync failed", "err", err)
	} else {
		s.reg.Counter("pmaxentd_history_fsyncs_total").Add(1)
	}
}

func (s *Store) publishGauges() {
	s.mu.Lock()
	segs, bytes := len(s.j.segs), s.j.totalBytes()
	s.mu.Unlock()
	s.reg.Gauge("pmaxentd_history_segments").Set(float64(segs))
	s.reg.Gauge("pmaxentd_history_bytes").Set(float64(bytes))
}

// Flush blocks until every record appended so far is written and fsynced
// — the test and shutdown barrier.
func (s *Store) Flush() error {
	s.closeMu.RLock()
	if s.closed {
		s.closeMu.RUnlock()
		return nil
	}
	done := make(chan error, 1)
	s.queue <- queueMsg{flush: true, done: done}
	s.closeMu.RUnlock()
	return <-done
}

// Close flushes the queue, fsyncs and closes the journal. The store
// drops (silently) any Append that races past Close.
func (s *Store) Close() error {
	s.closeMu.Lock()
	if s.closed {
		s.closeMu.Unlock()
		return nil
	}
	s.closed = true
	close(s.queue)
	s.closeMu.Unlock()
	s.wg.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.j.close()
}

// Recent returns up to limit records, newest first, optionally filtered
// by digest. limit <= 0 means everything retained in memory.
func (s *Store) Recent(limit int, digest string) []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	capHint := len(s.recent)
	if limit > 0 && limit < capHint {
		capHint = limit
	}
	out := make([]Record, 0, capHint)
	for i := len(s.recent) - 1; i >= 0; i-- {
		if digest != "" && s.recent[i].Digest != digest {
			continue
		}
		out = append(out, s.recent[i])
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out
}

// Retained reports how many records the in-memory ring holds.
func (s *Store) Retained() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.recent)
}

// Digests lists aggregate stats per publication, newest activity first.
func (s *Store) Digests() []DigestStats { return s.agg.Digests() }

// Digest returns one publication's aggregate stats.
func (s *Store) Digest(digest string) (DigestStats, bool) { return s.agg.Digest(digest) }

// Regressions lists the currently active regressions.
func (s *Store) Regressions() []Regression { return s.agg.Regressions() }

// Checks counts detector refreshes (the /debug/regressions "checks"
// field).
func (s *Store) Checks() int64 { return s.agg.Checks() }
