package history

import (
	"sort"
	"sync"
)

// The aggregate layer answers "is this publication's solve drifting?"
// from the journal's raw records. Per digest it keeps a bounded ring of
// compact per-solve samples; quantiles are read through fixed-bucket
// histograms (geometric grids, interpolated within a bucket), so the
// p50/p95/p99 of a window costs O(buckets) and no sorting. The
// regression detector splits the ring into a baseline window (everything
// but the newest RecentWindow samples) and a recent window (the newest
// RecentWindow), and flags a metric when the recent p50 exceeds the
// baseline p50 by both a configurable ratio and an absolute floor — the
// floor keeps sub-millisecond noise from tripping the ratio on tiny
// solves.

// Metric names the detector and the DigestStats maps use.
const (
	MetricSolveMS      = "solve_ms"      // pipeline solve-stage latency
	MetricTotalMS      = "total_ms"      // whole-solve wall clock
	MetricIterations   = "iterations"    // optimizer iterations
	MetricMaxViolation = "max_violation" // feasibility residual ‖Ax−c‖∞
	MetricDualityGap   = "duality_gap"   // |λᵀ(Ax−c)| when audited
)

// RegressionConfig tunes the drift detector. Zero values take the
// defaults noted on each field.
type RegressionConfig struct {
	// WindowCap bounds the per-digest sample ring (baseline + recent).
	// Default 512.
	WindowCap int
	// RecentWindow is how many newest samples form the "now" window.
	// Default 32.
	RecentWindow int
	// MinBaseline is the fewest baseline samples the detector will judge
	// against. Default 32.
	MinBaseline int
	// LatencyRatio / LatencyMinDeltaMS gate the solve_ms comparison: a
	// regression needs recent p50 > ratio × baseline p50 AND recent p50 −
	// baseline p50 > the floor. Defaults 2.0 and 5ms.
	LatencyRatio      float64
	LatencyMinDeltaMS float64
	// IterationRatio / IterationMinDelta gate the iteration comparison.
	// Defaults 2.0 and 10 iterations.
	IterationRatio    float64
	IterationMinDelta float64
	// ResidualRatio / ResidualMinDelta gate the feasibility-residual
	// comparison. Defaults 10.0 and 1e-9.
	ResidualRatio    float64
	ResidualMinDelta float64
}

func (c RegressionConfig) withDefaults() RegressionConfig {
	if c.WindowCap <= 0 {
		c.WindowCap = 512
	}
	if c.RecentWindow <= 0 {
		c.RecentWindow = 32
	}
	if c.MinBaseline <= 0 {
		c.MinBaseline = 32
	}
	if c.LatencyRatio <= 0 {
		c.LatencyRatio = 2
	}
	if c.LatencyMinDeltaMS <= 0 {
		c.LatencyMinDeltaMS = 5
	}
	if c.IterationRatio <= 0 {
		c.IterationRatio = 2
	}
	if c.IterationMinDelta <= 0 {
		c.IterationMinDelta = 10
	}
	if c.ResidualRatio <= 0 {
		c.ResidualRatio = 10
	}
	if c.ResidualMinDelta <= 0 {
		c.ResidualMinDelta = 1e-9
	}
	if c.WindowCap < c.RecentWindow+c.MinBaseline {
		c.WindowCap = c.RecentWindow + c.MinBaseline
	}
	return c
}

// Regression is one detected drift: a metric of one publication whose
// recent window moved past the baseline window's distribution.
type Regression struct {
	Digest string `json:"digest"`
	// Metric is which distribution drifted (MetricSolveMS,
	// MetricIterations or MetricMaxViolation).
	Metric string `json:"metric"`
	// Baseline*/Recent* are the two windows' histogram quantiles at
	// detection-refresh time; Ratio is RecentP50/BaselineP50.
	BaselineP50   float64 `json:"baseline_p50"`
	RecentP50     float64 `json:"recent_p50"`
	BaselineP95   float64 `json:"baseline_p95"`
	RecentP95     float64 `json:"recent_p95"`
	Ratio         float64 `json:"ratio"`
	BaselineCount int     `json:"baseline_count"`
	RecentCount   int     `json:"recent_count"`
	// SinceUnixNS is the start time of the newest record when the
	// regression was first detected.
	SinceUnixNS int64 `json:"since_unix_ns"`
}

// WindowQuantiles is the baseline-vs-recent distribution of one metric.
type WindowQuantiles struct {
	BaselineCount int     `json:"baseline_count"`
	RecentCount   int     `json:"recent_count"`
	BaselineP50   float64 `json:"baseline_p50"`
	BaselineP95   float64 `json:"baseline_p95"`
	BaselineP99   float64 `json:"baseline_p99"`
	RecentP50     float64 `json:"recent_p50"`
	RecentP95     float64 `json:"recent_p95"`
	RecentP99     float64 `json:"recent_p99"`
}

// DigestStats is the aggregate view of one publication's solve history.
type DigestStats struct {
	Digest string `json:"digest"`
	// Records counts everything observed for this digest (including
	// samples that have aged out of the ring); Errors and Unconverged
	// are lifetime counts of failed and non-converged solves.
	Records     int64 `json:"records"`
	Errors      int64 `json:"errors"`
	Unconverged int64 `json:"unconverged"`
	// LastUnixNS / LastOutcome describe the newest record.
	LastUnixNS  int64  `json:"last_unix_ns"`
	LastOutcome string `json:"last_outcome"`
	// Metrics maps metric name → windowed quantiles. Latency metrics are
	// present for every digest with samples; duality_gap only when
	// audited records exist.
	Metrics map[string]WindowQuantiles `json:"metrics,omitempty"`
}

// sample is the compact per-record form the ring stores. NaN-free:
// absent values are negative (every real metric here is ≥ 0).
type sample struct {
	solveMS      float64
	totalMS      float64
	iterations   float64
	maxViolation float64
	dualityGap   float64 // -1 when the solve was not audited
}

// digestWindow is one digest's ring plus lifetime counters.
type digestWindow struct {
	ring        []sample // capacity cfg.WindowCap, oldest first
	records     int64
	errors      int64
	unconverged int64
	lastUnixNS  int64
	lastOutcome string
}

// Aggregator folds records into per-digest windows and runs the
// regression detector. Safe for concurrent use.
type Aggregator struct {
	cfg RegressionConfig

	mu     sync.Mutex
	digest map[string]*digestWindow
	active map[string]Regression // keyed digest+"\x00"+metric
	checks int64
}

// NewAggregator builds an empty aggregator (see RegressionConfig for
// defaults).
func NewAggregator(cfg RegressionConfig) *Aggregator {
	return &Aggregator{
		cfg:    cfg.withDefaults(),
		digest: make(map[string]*digestWindow),
		active: make(map[string]Regression),
	}
}

// Observe folds one record into its digest's window. Failed solves count
// toward the error totals but contribute no samples — their timings
// describe the failure path, not the solve.
func (a *Aggregator) Observe(rec Record) {
	a.mu.Lock()
	defer a.mu.Unlock()
	dw := a.digest[rec.Digest]
	if dw == nil {
		dw = &digestWindow{}
		a.digest[rec.Digest] = dw
	}
	dw.records++
	dw.lastUnixNS = rec.StartUnixNS
	dw.lastOutcome = rec.Outcome
	if rec.Failed() {
		dw.errors++
		return
	}
	s := sample{totalMS: rec.ElapsedMS, dualityGap: -1}
	if rec.StagesMS != nil {
		s.solveMS = rec.StagesMS["solve"]
	}
	if rec.Solver != nil {
		s.iterations = float64(rec.Solver.Iterations)
		s.maxViolation = rec.Solver.MaxViolation
		if !rec.Solver.Converged {
			dw.unconverged++
		}
	}
	if rec.AuditSummary != nil {
		s.dualityGap = abs(rec.AuditSummary.DualityGap)
	}
	if len(dw.ring) >= a.cfg.WindowCap {
		copy(dw.ring, dw.ring[1:])
		dw.ring = dw.ring[:len(dw.ring)-1]
	}
	dw.ring = append(dw.ring, s)
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// Check refreshes the detector for one digest, returning the regressions
// that newly appeared and those that cleared since the last check.
func (a *Aggregator) Check(digest string) (detected, cleared []Regression) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.checkLocked(digest)
}

// CheckAll refreshes the detector for every digest — used once after a
// journal replay so regressions that were active at crash time resurface
// without waiting for fresh traffic.
func (a *Aggregator) CheckAll() (detected, cleared []Regression) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for digest := range a.digest {
		d, c := a.checkLocked(digest)
		detected = append(detected, d...)
		cleared = append(cleared, c...)
	}
	return detected, cleared
}

// checkLocked evaluates the three drift comparisons for one digest.
func (a *Aggregator) checkLocked(digest string) (detected, cleared []Regression) {
	a.checks++
	dw := a.digest[digest]
	if dw == nil {
		return nil, nil
	}
	recent, baseline := a.split(dw)
	for _, m := range []struct {
		metric   string
		value    func(sample) float64
		buckets  []float64
		ratio    float64
		minDelta float64
	}{
		{MetricSolveMS, func(s sample) float64 { return s.solveMS }, latencyBucketsMS, a.cfg.LatencyRatio, a.cfg.LatencyMinDeltaMS},
		{MetricIterations, func(s sample) float64 { return s.iterations }, countBuckets, a.cfg.IterationRatio, a.cfg.IterationMinDelta},
		{MetricMaxViolation, func(s sample) float64 { return s.maxViolation }, residualBuckets, a.cfg.ResidualRatio, a.cfg.ResidualMinDelta},
	} {
		key := digest + "\x00" + m.metric
		if len(recent) < a.cfg.RecentWindow || len(baseline) < a.cfg.MinBaseline {
			continue // not enough evidence either way; leave state as is
		}
		bh := histOf(baseline, m.value, m.buckets)
		rh := histOf(recent, m.value, m.buckets)
		b50, r50 := bh.quantile(0.50), rh.quantile(0.50)
		regressed := r50 > m.ratio*b50 && r50-b50 > m.minDelta
		_, wasActive := a.active[key]
		switch {
		case regressed && !wasActive:
			reg := Regression{
				Digest:        digest,
				Metric:        m.metric,
				BaselineP50:   b50,
				RecentP50:     r50,
				BaselineP95:   bh.quantile(0.95),
				RecentP95:     rh.quantile(0.95),
				Ratio:         ratio(r50, b50),
				BaselineCount: len(baseline),
				RecentCount:   len(recent),
				SinceUnixNS:   dw.lastUnixNS,
			}
			a.active[key] = reg
			detected = append(detected, reg)
		case regressed && wasActive:
			// Refresh the numbers but keep the original detection time.
			reg := a.active[key]
			reg.BaselineP50, reg.RecentP50 = b50, r50
			reg.BaselineP95, reg.RecentP95 = bh.quantile(0.95), rh.quantile(0.95)
			reg.Ratio = ratio(r50, b50)
			reg.BaselineCount, reg.RecentCount = len(baseline), len(recent)
			a.active[key] = reg
		case !regressed && wasActive:
			cleared = append(cleared, a.active[key])
			delete(a.active, key)
		}
	}
	return detected, cleared
}

func ratio(num, den float64) float64 {
	if den <= 0 {
		return 0
	}
	return num / den
}

// split returns the recent window (newest RecentWindow samples) and the
// baseline (everything older).
func (a *Aggregator) split(dw *digestWindow) (recent, baseline []sample) {
	n := len(dw.ring)
	w := a.cfg.RecentWindow
	if w > n {
		w = n
	}
	return dw.ring[n-w:], dw.ring[:n-w]
}

// Regressions lists the currently active regressions, sorted by digest
// then metric for stable output.
func (a *Aggregator) Regressions() []Regression {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]Regression, 0, len(a.active))
	for _, reg := range a.active {
		out = append(out, reg)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Digest != out[j].Digest {
			return out[i].Digest < out[j].Digest
		}
		return out[i].Metric < out[j].Metric
	})
	return out
}

// Checks counts detector refreshes since construction.
func (a *Aggregator) Checks() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.checks
}

// Digests lists every digest's aggregate stats, most-recently-active
// first.
func (a *Aggregator) Digests() []DigestStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]DigestStats, 0, len(a.digest))
	for digest := range a.digest {
		out = append(out, a.statsLocked(digest))
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].LastUnixNS != out[j].LastUnixNS {
			return out[i].LastUnixNS > out[j].LastUnixNS
		}
		return out[i].Digest < out[j].Digest
	})
	return out
}

// Digest returns one publication's aggregate stats.
func (a *Aggregator) Digest(digest string) (DigestStats, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.digest[digest] == nil {
		return DigestStats{}, false
	}
	return a.statsLocked(digest), true
}

func (a *Aggregator) statsLocked(digest string) DigestStats {
	dw := a.digest[digest]
	st := DigestStats{
		Digest:      digest,
		Records:     dw.records,
		Errors:      dw.errors,
		Unconverged: dw.unconverged,
		LastUnixNS:  dw.lastUnixNS,
		LastOutcome: dw.lastOutcome,
	}
	recent, baseline := a.split(dw)
	if len(recent)+len(baseline) == 0 {
		return st
	}
	st.Metrics = make(map[string]WindowQuantiles, 5)
	add := func(metric string, value func(sample) float64, buckets []float64) {
		bh := histOf(baseline, value, buckets)
		rh := histOf(recent, value, buckets)
		st.Metrics[metric] = WindowQuantiles{
			BaselineCount: bh.total,
			RecentCount:   rh.total,
			BaselineP50:   bh.quantile(0.50),
			BaselineP95:   bh.quantile(0.95),
			BaselineP99:   bh.quantile(0.99),
			RecentP50:     rh.quantile(0.50),
			RecentP95:     rh.quantile(0.95),
			RecentP99:     rh.quantile(0.99),
		}
	}
	add(MetricSolveMS, func(s sample) float64 { return s.solveMS }, latencyBucketsMS)
	add(MetricTotalMS, func(s sample) float64 { return s.totalMS }, latencyBucketsMS)
	add(MetricIterations, func(s sample) float64 { return s.iterations }, countBuckets)
	add(MetricMaxViolation, func(s sample) float64 { return s.maxViolation }, residualBuckets)
	gapValue := func(s sample) float64 { return s.dualityGap }
	if gh := histOf(append(append([]sample(nil), baseline...), recent...), gapValue, residualBuckets); gh.total > 0 {
		add(MetricDualityGap, gapValue, residualBuckets)
	}
	return st
}

// hist is a fixed-bucket histogram: counts[i] covers (bounds[i-1],
// bounds[i]], with an implicit +Inf bucket at the end.
type hist struct {
	bounds []float64
	counts []int
	total  int
}

// histOf builds a histogram of value over the window, skipping negative
// values (the "absent" marker).
func histOf(window []sample, value func(sample) float64, bounds []float64) *hist {
	h := &hist{bounds: bounds, counts: make([]int, len(bounds)+1)}
	for _, s := range window {
		v := value(s)
		if v < 0 {
			continue
		}
		h.counts[sort.SearchFloat64s(bounds, v)]++
		h.total++
	}
	return h
}

// quantile reads the q-quantile from the histogram, interpolating
// linearly within the winning bucket. The +Inf bucket saturates at the
// last finite bound.
func (h *hist) quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	rank := q * float64(h.total)
	cum := 0.0
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if cum < rank {
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		if i >= len(h.bounds) {
			return h.bounds[len(h.bounds)-1] // +Inf bucket: saturate
		}
		frac := (rank - prev) / float64(c)
		if frac < 0 {
			frac = 0
		}
		return lo + frac*(h.bounds[i]-lo)
	}
	return h.bounds[len(h.bounds)-1]
}

// geometric bucket grids shared by all windows of a metric, so the
// baseline and recent histograms are always comparable.
var (
	latencyBucketsMS = geomBuckets(0.05, 600_000, 1.35) // 50µs … 10min
	countBuckets     = geomBuckets(1, 30_000, 1.3)      // iterations
	residualBuckets  = geomBuckets(1e-14, 1, 10)        // residuals/gaps
)

func geomBuckets(lo, hi, factor float64) []float64 {
	var out []float64
	for v := lo; v < hi*factor; v *= factor {
		out = append(out, v)
	}
	return out
}
