package history

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func testRecord(i int, digest string) Record {
	return Record{
		Schema:      RecordSchema,
		SolveID:     fmt.Sprintf("%s-%d", digest, i),
		RequestID:   fmt.Sprintf("req-%d", i),
		Digest:      digest,
		Outcome:     "ok",
		StartUnixNS: int64(1000 + i),
		Knowledge:   3,
		ElapsedMS:   float64(i),
		StagesMS:    map[string]float64{"solve": float64(i)},
		Solver:      &SolverSummary{Iterations: i, Converged: true, MaxViolation: 1e-12},
	}
}

func TestJournalRoundtrip(t *testing.T) {
	dir := t.TempDir()
	j, st, err := openJournal(dir, 1024, 65536, nil)
	if err != nil {
		t.Fatalf("openJournal: %v", err)
	}
	if st.Records != 0 || st.Segments != 0 {
		t.Fatalf("fresh journal scanned %+v, want empty", st)
	}
	for i := 0; i < 10; i++ {
		if err := j.append(testRecord(i, "d1")); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := j.close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	var got []Record
	st2, err := Scan(dir, func(r Record) { got = append(got, r) })
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if st2.Records != 10 || st2.Segments != 1 || st2.Torn != 0 {
		t.Fatalf("Scan stats %+v, want 10 records / 1 segment / 0 torn", st2)
	}
	if len(got) != 10 {
		t.Fatalf("replayed %d records, want 10", len(got))
	}
	for i, r := range got {
		if r.SolveID != fmt.Sprintf("d1-%d", i) {
			t.Fatalf("record %d out of order: %q", i, r.SolveID)
		}
		if r.Solver == nil || r.Solver.Iterations != i {
			t.Fatalf("record %d lost solver summary: %+v", i, r.Solver)
		}
	}
}

func TestJournalTornTailSkippedAndTruncated(t *testing.T) {
	dir := t.TempDir()
	j, _, err := openJournal(dir, 1024, 65536, nil)
	if err != nil {
		t.Fatalf("openJournal: %v", err)
	}
	for i := 0; i < 5; i++ {
		if err := j.append(testRecord(i, "d1")); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := j.close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Simulate a crash mid-write: a frame cut off without its newline.
	path := segPath(dir, 1)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`deadbeef {"schema":1,"solve_id":"torn`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	tornSize, _ := os.Stat(path)

	var replayed int
	j2, st, err := openJournal(dir, 1024, 65536, func(Record) { replayed++ })
	if err != nil {
		t.Fatalf("reopen over torn tail: %v", err)
	}
	if replayed != 5 || st.Records != 5 {
		t.Fatalf("recovered %d records (stats %+v), want 5", replayed, st)
	}
	if st.Torn != 1 {
		t.Fatalf("torn count %d, want 1", st.Torn)
	}
	// The torn bytes must be gone so the next append starts on a clean
	// frame boundary.
	if fi, err := os.Stat(path); err != nil || fi.Size() >= tornSize.Size() {
		t.Fatalf("torn tail not truncated: size %d (was %d)", fi.Size(), tornSize.Size())
	}
	if err := j2.append(testRecord(5, "d1")); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
	if err := j2.close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	st2, err := Scan(dir, nil)
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if st2.Records != 6 || st2.Torn != 0 {
		t.Fatalf("post-recovery scan %+v, want 6 clean records", st2)
	}
}

func TestJournalMidFileCorruptionSkipped(t *testing.T) {
	dir := t.TempDir()
	j, _, err := openJournal(dir, 1024, 65536, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.append(testRecord(i, "d1")); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.close(); err != nil {
		t.Fatal(err)
	}

	// Flip a payload byte of the middle record: its CRC fails but the
	// records around it must still replay.
	path := segPath(dir, 1)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := 0
	for i, b := range data {
		if b == '\n' {
			lines++
			if lines == 1 {
				data[i+frameOverhead+5] ^= 0xff
				break
			}
		}
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	var got []Record
	st, err := Scan(dir, func(r Record) { got = append(got, r) })
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if st.Records != 2 || st.Torn != 1 {
		t.Fatalf("scan stats %+v, want 2 records / 1 torn", st)
	}
	if len(got) != 2 || got[0].SolveID != "d1-0" || got[1].SolveID != "d1-2" {
		t.Fatalf("mid-file corruption hid neighbours: %+v", got)
	}
}

func TestJournalRotationAndRetention(t *testing.T) {
	dir := t.TempDir()
	j, _, err := openJournal(dir, 4, 8, nil) // 4 records/segment, keep >= 8
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := j.append(testRecord(i, "d1")); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.close(); err != nil {
		t.Fatal(err)
	}

	seqs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) < 2 {
		t.Fatalf("expected rotation to leave multiple segments, got %v", seqs)
	}
	if seqs[0] == 1 {
		t.Fatalf("oldest segment never expired: %v", seqs)
	}

	var got []Record
	st, err := Scan(dir, func(r Record) { got = append(got, r) })
	if err != nil {
		t.Fatal(err)
	}
	if st.Records < 8 {
		t.Fatalf("retention kept %d records, want >= 8", st.Records)
	}
	// The survivors must be the newest records, contiguous to the end.
	if got[len(got)-1].SolveID != "d1-19" {
		t.Fatalf("newest record missing, tail is %q", got[len(got)-1].SolveID)
	}
	for i := 1; i < len(got); i++ {
		if got[i].StartUnixNS != got[i-1].StartUnixNS+1 {
			t.Fatalf("retention left a gap around %q", got[i].SolveID)
		}
	}
}

func TestScanMissingDirIsEmpty(t *testing.T) {
	st, err := Scan(filepath.Join(t.TempDir(), "nope"), nil)
	if err != nil {
		t.Fatalf("Scan of missing dir: %v", err)
	}
	if st != (ScanStats{}) {
		t.Fatalf("missing dir scanned %+v, want zero", st)
	}
}

func TestParseFsync(t *testing.T) {
	cases := []struct {
		in   string
		want FsyncPolicy
		ok   bool
	}{
		{"always", FsyncPolicy{Always: true}, true},
		{"never", FsyncPolicy{}, true},
		{"off", FsyncPolicy{}, true},
		{"1s", FsyncPolicy{Interval: time.Second}, true},
		{"250ms", FsyncPolicy{Interval: 250 * time.Millisecond}, true},
		{"bogus", FsyncPolicy{}, false},
		{"-1s", FsyncPolicy{}, false},
		{"0s", FsyncPolicy{}, false},
	}
	for _, c := range cases {
		got, err := ParseFsync(c.in)
		if c.ok != (err == nil) {
			t.Fatalf("ParseFsync(%q) err = %v, want ok=%v", c.in, err, c.ok)
		}
		if c.ok && got != c.want {
			t.Fatalf("ParseFsync(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
	for _, c := range []struct{ p FsyncPolicy }{{FsyncPolicy{Always: true}}, {FsyncPolicy{Interval: time.Second}}, {FsyncPolicy{}}} {
		if back, err := ParseFsync(c.p.String()); err != nil || back != c.p {
			t.Fatalf("String/Parse roundtrip of %+v failed: %+v, %v", c.p, back, err)
		}
	}
}
