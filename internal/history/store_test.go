package history

import (
	"os"
	"testing"

	"privacymaxent/internal/telemetry"
)

func openTestStore(t *testing.T, dir string, reg *telemetry.Registry) *Store {
	t.Helper()
	s, err := Open(StoreConfig{
		Dir:        dir,
		Fsync:      FsyncPolicy{Always: true},
		Regression: tinyCfg(),
		Registry:   reg,
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func TestStoreAppendFlushRecover(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.NewRegistry()
	s := openTestStore(t, dir, reg)

	for i := 0; i < 10; i++ {
		s.Append(testRecord(i, "d1"))
	}
	s.Append(testRecord(10, "d2"))
	if err := s.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if got := s.Retained(); got != 11 {
		t.Fatalf("Retained = %d, want 11", got)
	}
	if got := reg.Counter("pmaxentd_history_records_total").Value(); got != 11 {
		t.Fatalf("records_total = %d, want 11", got)
	}

	// Recent is newest-first and filterable by digest.
	recent := s.Recent(3, "")
	if len(recent) != 3 || recent[0].SolveID != "d2-10" || recent[1].SolveID != "d1-9" {
		t.Fatalf("Recent(3) = %v", ids(recent))
	}
	onlyD2 := s.Recent(0, "d2")
	if len(onlyD2) != 1 || onlyD2[0].Digest != "d2" {
		t.Fatalf("Recent(d2) = %v", ids(onlyD2))
	}
	if ds := s.Digests(); len(ds) != 2 {
		t.Fatalf("Digests = %d entries, want 2", len(ds))
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Close is idempotent; Append/Flush after Close are safe no-ops.
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	s.Append(testRecord(99, "d1"))
	if err := s.Flush(); err != nil {
		t.Fatalf("Flush after Close: %v", err)
	}

	// A new store over the same dir recovers everything — recent ring and
	// aggregates — as if the process had never died.
	reg2 := telemetry.NewRegistry()
	s2 := openTestStore(t, dir, reg2)
	defer s2.Close()
	if got := s2.Retained(); got != 11 {
		t.Fatalf("recovered Retained = %d, want 11", got)
	}
	if got := reg2.Counter("pmaxentd_history_recovered_total").Value(); got != 11 {
		t.Fatalf("recovered_total = %d, want 11", got)
	}
	st, ok := s2.Digest("d1")
	if !ok || st.Records != 10 {
		t.Fatalf("recovered aggregate for d1 = %+v", st)
	}
	if top := s2.Recent(1, ""); len(top) != 1 || top[0].SolveID != "d2-10" {
		t.Fatalf("recovered Recent order wrong: %v", ids(top))
	}
}

func TestStoreRecoverySkipsTornFrame(t *testing.T) {
	dir := t.TempDir()
	s := openTestStore(t, dir, nil)
	for i := 0; i < 5; i++ {
		s.Append(testRecord(i, "d1"))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash debris: half a frame at the end of the active segment.
	f, err := os.OpenFile(segPath(dir, 1), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("0badc0de {\"schema\":1,\"solve"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	reg := telemetry.NewRegistry()
	s2 := openTestStore(t, dir, reg)
	defer s2.Close()
	if got := s2.Retained(); got != 5 {
		t.Fatalf("recovered %d records past torn frame, want 5", got)
	}
	if got := reg.Counter("pmaxentd_history_torn_frames_total").Value(); got != 1 {
		t.Fatalf("torn_frames_total = %d, want 1", got)
	}
	// And appends keep working on the truncated segment.
	s2.Append(testRecord(5, "d1"))
	if err := s2.Flush(); err != nil {
		t.Fatal(err)
	}
	if st, err := Scan(dir, nil); err != nil || st.Records != 6 || st.Torn != 0 {
		t.Fatalf("post-recovery scan %+v (err %v), want 6 clean records", st, err)
	}
}

func TestStoreRegressionSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.NewRegistry()
	s := openTestStore(t, dir, reg)
	for i := 0; i < 12; i++ {
		s.Append(okRecord("d1", 1, 10, 1e-12))
	}
	for i := 0; i < 4; i++ {
		s.Append(okRecord("d1", 300, 10, 1e-12))
	}
	if got := s.Regressions(); len(got) != 1 || got[0].Metric != MetricSolveMS {
		t.Fatalf("live regression not active: %+v", got)
	}
	if reg.Counter("pmaxentd_regression_detected_total").Value() != 1 {
		t.Fatal("regression_detected_total not incremented")
	}
	if reg.Gauge("pmaxentd_regression_active").Value() != 1 {
		t.Fatal("regression_active gauge not set")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// The replay alone — no fresh traffic — must resurface the regression.
	s2 := openTestStore(t, dir, telemetry.NewRegistry())
	defer s2.Close()
	if got := s2.Regressions(); len(got) != 1 || got[0].Metric != MetricSolveMS || got[0].Digest != "d1" {
		t.Fatalf("regression lost across restart: %+v", got)
	}
}

func TestStoreRequiresDir(t *testing.T) {
	if _, err := Open(StoreConfig{}); err == nil {
		t.Fatal("Open without Dir succeeded")
	}
}

func ids(recs []Record) []string {
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = r.SolveID
	}
	return out
}
