package history

import (
	"testing"
)

// tinyCfg keeps the detector windows small enough to drive from a test.
func tinyCfg() RegressionConfig {
	return RegressionConfig{
		WindowCap:    16,
		RecentWindow: 4,
		MinBaseline:  4,
	}
}

func okRecord(digest string, solveMS float64, iters int, viol float64) Record {
	return Record{
		Digest:    digest,
		Outcome:   "ok",
		ElapsedMS: solveMS + 1,
		StagesMS:  map[string]float64{"solve": solveMS},
		Solver:    &SolverSummary{Iterations: iters, Converged: true, MaxViolation: viol},
	}
}

func TestHistQuantiles(t *testing.T) {
	var window []sample
	for i := 1; i <= 100; i++ {
		window = append(window, sample{solveMS: float64(i)})
	}
	h := histOf(window, func(s sample) float64 { return s.solveMS }, latencyBucketsMS)
	if h.total != 100 {
		t.Fatalf("total %d, want 100", h.total)
	}
	p50 := h.quantile(0.50)
	if p50 < 25 || p50 > 90 {
		t.Fatalf("p50 of 1..100 = %v, wildly off", p50)
	}
	p99 := h.quantile(0.99)
	if p99 < p50 {
		t.Fatalf("p99 %v < p50 %v", p99, p50)
	}
	if empty := (&hist{bounds: latencyBucketsMS, counts: make([]int, len(latencyBucketsMS)+1)}); empty.quantile(0.5) != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", empty.quantile(0.5))
	}
}

func TestHistSkipsAbsentValues(t *testing.T) {
	window := []sample{{dualityGap: -1}, {dualityGap: 1e-9}, {dualityGap: -1}}
	h := histOf(window, func(s sample) float64 { return s.dualityGap }, residualBuckets)
	if h.total != 1 {
		t.Fatalf("absent (-1) samples counted: total %d, want 1", h.total)
	}
}

func TestAggregatorDetectsLatencyRegression(t *testing.T) {
	a := NewAggregator(tinyCfg())
	for i := 0; i < 8; i++ {
		a.Observe(okRecord("d1", 1, 10, 1e-12)) // baseline: ~1ms
	}
	if det, _ := a.Check("d1"); len(det) != 0 {
		t.Fatalf("flat history flagged: %+v", det)
	}
	for i := 0; i < 4; i++ {
		a.Observe(okRecord("d1", 200, 10, 1e-12)) // recent: ~200ms
	}
	det, _ := a.Check("d1")
	if len(det) != 1 || det[0].Metric != MetricSolveMS {
		t.Fatalf("latency regression not detected: %+v", det)
	}
	if det[0].Ratio < 2 {
		t.Fatalf("ratio %v, want >= 2", det[0].Ratio)
	}
	if got := a.Regressions(); len(got) != 1 || got[0].Digest != "d1" {
		t.Fatalf("Regressions() = %+v", got)
	}
	// Re-checking an ongoing regression must not re-report it as new.
	if det, _ := a.Check("d1"); len(det) != 0 {
		t.Fatalf("ongoing regression re-detected: %+v", det)
	}
}

func TestAggregatorDetectsIterationAndResidualRegression(t *testing.T) {
	a := NewAggregator(tinyCfg())
	for i := 0; i < 12; i++ {
		a.Observe(okRecord("d1", 1, 5, 1e-12))
	}
	for i := 0; i < 4; i++ {
		a.Observe(okRecord("d1", 1, 400, 1e-4)) // iterations and residual blow up
	}
	det, _ := a.Check("d1")
	metrics := map[string]bool{}
	for _, r := range det {
		metrics[r.Metric] = true
	}
	if !metrics[MetricIterations] || !metrics[MetricMaxViolation] {
		t.Fatalf("detected %v, want iterations and max_violation", metrics)
	}
}

func TestAggregatorClearsRecoveredRegression(t *testing.T) {
	a := NewAggregator(tinyCfg())
	for i := 0; i < 8; i++ {
		a.Observe(okRecord("d1", 1, 10, 1e-12))
	}
	for i := 0; i < 4; i++ {
		a.Observe(okRecord("d1", 200, 10, 1e-12))
	}
	if det, _ := a.Check("d1"); len(det) != 1 {
		t.Fatalf("setup detection failed: %+v", det)
	}
	// Ring slides: once the slow burst ages into the baseline and the
	// recent window is fast again, the regression clears.
	for i := 0; i < 12; i++ {
		a.Observe(okRecord("d1", 1, 10, 1e-12))
	}
	_, cleared := a.Check("d1")
	if len(cleared) != 1 || cleared[0].Metric != MetricSolveMS {
		t.Fatalf("regression did not clear: %+v (active %+v)", cleared, a.Regressions())
	}
	if got := a.Regressions(); len(got) != 0 {
		t.Fatalf("active regressions after clear: %+v", got)
	}
}

func TestAggregatorNeedsEnoughEvidence(t *testing.T) {
	a := NewAggregator(tinyCfg())
	a.Observe(okRecord("d1", 1, 10, 1e-12))
	a.Observe(okRecord("d1", 500, 10, 1e-12))
	if det, _ := a.Check("d1"); len(det) != 0 {
		t.Fatalf("two samples flagged a regression: %+v", det)
	}
	if det, _ := a.Check("unknown"); det != nil {
		t.Fatalf("unknown digest produced detections: %+v", det)
	}
}

func TestAggregatorDigestStats(t *testing.T) {
	a := NewAggregator(tinyCfg())
	for i := 0; i < 6; i++ {
		rec := okRecord("d1", 10, 20, 1e-12)
		rec.StartUnixNS = int64(100 + i)
		rec.AuditSummary = &AuditSummary{DualityGap: -1e-10, Feasible: true}
		a.Observe(rec)
	}
	fail := Record{Digest: "d1", Outcome: "error", ErrorKind: "infeasible", StartUnixNS: 200}
	a.Observe(fail)

	st, ok := a.Digest("d1")
	if !ok {
		t.Fatal("digest missing")
	}
	if st.Records != 7 || st.Errors != 1 {
		t.Fatalf("records/errors = %d/%d, want 7/1", st.Records, st.Errors)
	}
	if st.LastOutcome != "error" || st.LastUnixNS != 200 {
		t.Fatalf("last outcome %q @ %d, want error @ 200", st.LastOutcome, st.LastUnixNS)
	}
	wq, ok := st.Metrics[MetricSolveMS]
	if !ok || wq.BaselineCount+wq.RecentCount != 6 {
		t.Fatalf("solve_ms window %+v, want 6 samples", wq)
	}
	if _, ok := st.Metrics[MetricDualityGap]; !ok {
		t.Fatalf("audited records present but duality_gap metric missing: %v", st.Metrics)
	}

	if _, ok := a.Digest("none"); ok {
		t.Fatal("unknown digest reported present")
	}
	if ds := a.Digests(); len(ds) != 1 || ds[0].Digest != "d1" {
		t.Fatalf("Digests() = %+v", ds)
	}
}

func TestAggregatorUnconvergedCounted(t *testing.T) {
	a := NewAggregator(tinyCfg())
	rec := okRecord("d1", 10, 500, 1e-3)
	rec.Solver.Converged = false
	a.Observe(rec)
	st, _ := a.Digest("d1")
	if st.Unconverged != 1 {
		t.Fatalf("unconverged = %d, want 1", st.Unconverged)
	}
}
