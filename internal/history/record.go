// Package history is pmaxentd's durable solve memory: an append-only,
// segment-rotated, CRC-framed JSONL journal of finished solves, plus a
// rolling-aggregate layer that turns the journal into per-publication
// latency/iteration/feasibility distributions and a regression detector
// that compares a recent window against a baseline window and surfaces
// drift.
//
// Everything else the daemon emits — the live solve registry, the done
// ring, the pmaxentd_* series — dies with the process. The journal is
// the one signal that survives a restart, which is exactly what the
// operational question "has this publication's solve gotten slower or
// less converged over the last thousand requests?" needs: solve history
// across process lifetimes and rule-set revisions, keyed by the same
// publication digest the prepared-system cache uses.
//
// The package is deliberately dependency-light (stdlib + telemetry), so
// offline readers — pmaxentstat -history — can consume a journal without
// linking the solver.
package history

// Record is one journaled solve: the durable form of a live-solve
// registry entry at the moment it finished. Fields mirror the serving
// surfaces they join against — SolveID and RequestID are the join keys
// into access logs, SSE streams and audit provenance; Digest is the
// prepared-cache key the aggregates are grouped by.
//
// The schema is versioned: readers must tolerate unknown fields (records
// written by a newer daemon) and treat Schema values above RecordSchema
// as opaque-but-countable. See DESIGN.md §11 for the full field-by-field
// contract.
type Record struct {
	// Schema is the record-format version, currently RecordSchema.
	Schema int `json:"schema"`
	// SolveID is the live-solve registry ID (digest prefix + daemon
	// sequence); RequestID the leader request's identity.
	SolveID   string `json:"solve_id"`
	RequestID string `json:"request_id,omitempty"`
	// Digest identifies the published view (the cache and aggregation
	// key).
	Digest string `json:"digest"`
	// Outcome is "ok" or "error"; ErrorKind carries the server's error
	// taxonomy kind ("infeasible", "deadline", …) when Outcome is
	// "error".
	Outcome   string `json:"outcome"`
	ErrorKind string `json:"error_kind,omitempty"`
	// StartUnixNS is when the solve was registered (wall clock).
	StartUnixNS int64 `json:"start_unix_ns"`
	// Knowledge, Eps and Audit describe the request that was solved.
	Knowledge int     `json:"knowledge"`
	Eps       float64 `json:"eps,omitempty"`
	Audited   bool    `json:"audited,omitempty"`
	// Cache is the prepared-cache disposition ("hit", "miss", "bypass").
	Cache string `json:"cache,omitempty"`
	// Scheme names the publication scheme the request declared
	// ("anatomy", "mondrian", "randomized_response"); empty for requests
	// without a scheme field (the classic anatomy default). Parameter
	// values are bound into Digest, so two parameterizations of one
	// scheme never aggregate together.
	Scheme string `json:"scheme,omitempty"`
	// QueueWaitMS is admission-queue time; ElapsedMS the whole solve
	// wall clock; StagesMS the pipeline's per-stage breakdown
	// (prepare/formulate/solve/score/audit — stages present depend on
	// the path taken, exactly as in the response's timings_ms).
	QueueWaitMS float64            `json:"queue_wait_ms,omitempty"`
	ElapsedMS   float64            `json:"elapsed_ms"`
	StagesMS    map[string]float64 `json:"stages_ms,omitempty"`
	// Solver summarizes the solve counters; nil for solves that failed
	// before reaching the optimizer.
	Solver *SolverSummary `json:"solver,omitempty"`
	// AuditSummary condenses the solve audit when the request asked for
	// one (?audit=1) — enough to trend numerical health without storing
	// the full per-row residual attribution.
	AuditSummary *AuditSummary `json:"audit_summary,omitempty"`
}

// RecordSchema is the version stamped on records this package writes.
const RecordSchema = 1

// SolverSummary is the durable subset of the solve statistics.
type SolverSummary struct {
	Algorithm    string  `json:"algorithm,omitempty"`
	Iterations   int     `json:"iterations"`
	Evaluations  int     `json:"evaluations"`
	Converged    bool    `json:"converged"`
	MaxViolation float64 `json:"max_violation"`
	Components   int     `json:"components,omitempty"`
	Variables    int     `json:"variables,omitempty"`
	// ReducedDualDim / EliminatedBuckets record the structural
	// presolve's reduction, so a history can show when a rule-set
	// revision changed how much of the publication stays closed-form.
	ReducedDualDim    int `json:"reduced_dual_dim,omitempty"`
	EliminatedBuckets int `json:"eliminated_buckets,omitempty"`
	// ReusedComponents / DirtyComponents record a delta solve's split —
	// components carried over verbatim from the chained baseline versus
	// re-solved. Both zero for cold solves.
	ReusedComponents int `json:"reused_components,omitempty"`
	DirtyComponents  int `json:"dirty_components,omitempty"`
}

// AuditSummary is the durable condensation of a SolveAudit.
type AuditSummary struct {
	MaxViolation float64 `json:"max_violation"`
	DualityGap   float64 `json:"duality_gap"`
	EntropyBits  float64 `json:"entropy_bits"`
	Feasible     bool    `json:"feasible"`
}

// Failed reports whether the record describes a failed solve.
func (r *Record) Failed() bool { return r.Outcome != "ok" }
