package history

import (
	"bufio"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// The journal's on-disk format, chosen so a solve record survives
// anything short of media loss and a partial write never poisons its
// neighbours:
//
//   - One record per line ("JSONL"), each line CRC-framed:
//     "<8-hex crc32(payload)> <payload>\n". The CRC covers exactly the
//     JSON payload; the frame is human-greppable (`cut -d' ' -f2- | jq`)
//     while still detecting truncation and bit rot.
//   - Records append to the newest segment file
//     ("journal-<8-digit-seq>.jsonl"); when a segment reaches
//     SegmentRecords records a new one is opened. Rotation is what makes
//     retention cheap (delete whole files, never rewrite) and recovery
//     incremental.
//   - A torn final frame — the line a crash cut mid-write — is detected
//     by its missing newline or failing CRC, skipped on recovery, and
//     truncated away before the journal appends again, so the torn bytes
//     never corrupt the frame that follows them. Torn or corrupt frames
//     are counted, not fatal: the journal's contract is "every record
//     whose write completed survives", not "the file is pristine".

// journalPrefix/journalSuffix name segment files: journal-00000001.jsonl.
const (
	journalPrefix = "journal-"
	journalSuffix = ".jsonl"
)

// frameOverhead is the framing around each JSON payload: 8 hex CRC
// characters and one space.
const frameOverhead = 9

// ScanStats summarizes one recovery pass over a journal directory.
type ScanStats struct {
	// Segments and Records count what the scan accepted; Bytes is the
	// on-disk size of all segments.
	Segments int
	Records  int
	Bytes    int64
	// Torn counts frames that failed the CRC or ended mid-line — crash
	// debris, skipped.
	Torn int
}

// segment tracks one on-disk segment file.
type segment struct {
	seq     int
	records int
	bytes   int64
}

// journal is the append side of the store: the active segment file, its
// buffered writer, and the bookkeeping retention needs. Not safe for
// concurrent use — the Store serializes access through its writer
// goroutine.
type journal struct {
	dir        string
	segRecords int // records per segment before rotation
	retention  int // min records kept; older whole segments are deleted

	segs   []segment // oldest first; last is active
	f      *os.File
	w      *bufio.Writer
	synced bool // no writes since the last fsync
}

// segPath renders the path of segment seq.
func segPath(dir string, seq int) string {
	return filepath.Join(dir, fmt.Sprintf("%s%08d%s", journalPrefix, seq, journalSuffix))
}

// segSeq parses a segment filename, reporting ok=false for foreign files.
func segSeq(name string) (int, bool) {
	rest, ok := strings.CutPrefix(name, journalPrefix)
	if !ok {
		return 0, false
	}
	rest, ok = strings.CutSuffix(rest, journalSuffix)
	if !ok {
		return 0, false
	}
	seq, err := strconv.Atoi(rest)
	if err != nil || seq < 0 {
		return 0, false
	}
	return seq, true
}

// listSegments returns the directory's segment files, oldest first.
func listSegments(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []int
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if seq, ok := segSeq(e.Name()); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Ints(seqs)
	return seqs, nil
}

// scanSegment reads one segment file, calling fn for every valid record.
// It returns the number of valid records, the byte offset just past the
// last valid frame (the truncation point for a torn tail), and the count
// of torn/corrupt frames.
func scanSegment(path string, fn func(Record)) (records int, goodEnd int64, torn int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, 0, err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	var off int64
	for {
		line, readErr := r.ReadString('\n')
		if readErr != nil && readErr != io.EOF {
			return records, goodEnd, torn, readErr
		}
		complete := strings.HasSuffix(line, "\n")
		if rec, ok := decodeFrame(strings.TrimSuffix(line, "\n")); ok && complete {
			records++
			off += int64(len(line))
			goodEnd = off
			if fn != nil {
				fn(rec)
			}
		} else if len(line) > 0 {
			// Torn or corrupt: skip the line but keep scanning — a
			// mid-file bad frame must not hide the records after it.
			torn++
			off += int64(len(line))
		}
		if readErr == io.EOF {
			return records, goodEnd, torn, nil
		}
	}
}

// decodeFrame validates one CRC-framed line and decodes its record.
func decodeFrame(line string) (Record, bool) {
	if len(line) < frameOverhead+2 || line[8] != ' ' {
		return Record{}, false
	}
	var crcBytes [4]byte
	if _, err := hex.Decode(crcBytes[:], []byte(line[:8])); err != nil {
		return Record{}, false
	}
	want := uint32(crcBytes[0])<<24 | uint32(crcBytes[1])<<16 | uint32(crcBytes[2])<<8 | uint32(crcBytes[3])
	payload := line[frameOverhead:]
	if crc32.ChecksumIEEE([]byte(payload)) != want {
		return Record{}, false
	}
	var rec Record
	if err := json.Unmarshal([]byte(payload), &rec); err != nil {
		return Record{}, false
	}
	return rec, true
}

// Scan replays every valid record of the journal at dir, oldest first,
// without taking ownership of the files — the read-only entry point
// offline tools (pmaxentstat -history) use against a live daemon's
// directory. A missing directory is an empty journal, not an error.
func Scan(dir string, fn func(Record)) (ScanStats, error) {
	var st ScanStats
	seqs, err := listSegments(dir)
	if os.IsNotExist(err) {
		return st, nil
	}
	if err != nil {
		return st, err
	}
	for _, seq := range seqs {
		path := segPath(dir, seq)
		records, _, torn, err := scanSegment(path, fn)
		if err != nil {
			return st, fmt.Errorf("history: scanning %s: %w", path, err)
		}
		st.Segments++
		st.Records += records
		st.Torn += torn
		if fi, err := os.Stat(path); err == nil {
			st.Bytes += fi.Size()
		}
	}
	return st, nil
}

// openJournal opens (or creates) the journal at dir for appending,
// replaying every recovered record through fn and truncating a torn tail
// off the active segment so later appends start on a clean frame
// boundary.
func openJournal(dir string, segRecords, retention int, fn func(Record)) (*journal, ScanStats, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, ScanStats{}, fmt.Errorf("history: creating %s: %w", dir, err)
	}
	j := &journal{dir: dir, segRecords: segRecords, retention: retention}
	var st ScanStats
	seqs, err := listSegments(dir)
	if err != nil {
		return nil, st, fmt.Errorf("history: listing %s: %w", dir, err)
	}
	for i, seq := range seqs {
		path := segPath(dir, seq)
		records, goodEnd, torn, err := scanSegment(path, fn)
		if err != nil {
			return nil, st, fmt.Errorf("history: recovering %s: %w", path, err)
		}
		st.Segments++
		st.Records += records
		st.Torn += torn
		active := i == len(seqs)-1
		size := goodEnd
		if !active {
			if fi, err := os.Stat(path); err == nil {
				size = fi.Size()
			}
		} else if torn > 0 || truncNeeded(path, goodEnd) {
			// The active segment ends in crash debris: cut the file back
			// to the last complete frame before appending to it.
			if err := os.Truncate(path, goodEnd); err != nil {
				return nil, st, fmt.Errorf("history: truncating torn tail of %s: %w", path, err)
			}
		}
		j.segs = append(j.segs, segment{seq: seq, records: records, bytes: size})
		st.Bytes += size
	}
	if len(j.segs) == 0 {
		j.segs = append(j.segs, segment{seq: 1})
	}
	if err := j.openActive(); err != nil {
		return nil, st, err
	}
	return j, st, nil
}

// truncNeeded reports whether the file extends past the last valid
// frame (a torn tail with zero counted frames, e.g. pure garbage).
func truncNeeded(path string, goodEnd int64) bool {
	fi, err := os.Stat(path)
	return err == nil && fi.Size() > goodEnd
}

// openActive opens the newest segment for appending.
func (j *journal) openActive() error {
	path := segPath(j.dir, j.active().seq)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("history: opening %s: %w", path, err)
	}
	j.f = f
	j.w = bufio.NewWriter(f)
	j.synced = true
	return nil
}

func (j *journal) active() *segment { return &j.segs[len(j.segs)-1] }

// totalRecords sums the records across all live segments.
func (j *journal) totalRecords() int {
	n := 0
	for i := range j.segs {
		n += j.segs[i].records
	}
	return n
}

// totalBytes sums the on-disk size across all live segments.
func (j *journal) totalBytes() int64 {
	var n int64
	for i := range j.segs {
		n += j.segs[i].bytes
	}
	return n
}

// append frames and writes one record, rotating and enforcing retention
// afterwards. The write lands in the OS (bufio flushed) before append
// returns; durability against power loss additionally needs sync().
func (j *journal) append(rec Record) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("history: encoding record: %w", err)
	}
	frame := fmt.Sprintf("%08x %s\n", crc32.ChecksumIEEE(payload), payload)
	if _, err := j.w.WriteString(frame); err != nil {
		return fmt.Errorf("history: appending record: %w", err)
	}
	if err := j.w.Flush(); err != nil {
		return fmt.Errorf("history: flushing record: %w", err)
	}
	j.synced = false
	j.active().records++
	j.active().bytes += int64(len(frame))
	if j.active().records >= j.segRecords {
		if err := j.rotate(); err != nil {
			return err
		}
	}
	return nil
}

// rotate fsyncs and closes the active segment, opens the next one, and
// deletes the oldest segments no longer needed to keep `retention`
// records. Whole segments are the retention unit: the journal keeps at
// least `retention` records, rounded up to a segment boundary.
func (j *journal) rotate() error {
	if err := j.sync(); err != nil {
		return err
	}
	if err := j.f.Close(); err != nil {
		return fmt.Errorf("history: closing segment: %w", err)
	}
	j.segs = append(j.segs, segment{seq: j.active().seq + 1})
	if err := j.openActive(); err != nil {
		return err
	}
	total := j.totalRecords()
	for len(j.segs) > 1 && total-j.segs[0].records >= j.retention {
		path := segPath(j.dir, j.segs[0].seq)
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("history: expiring %s: %w", path, err)
		}
		total -= j.segs[0].records
		j.segs = j.segs[1:]
	}
	return nil
}

// sync flushes and fsyncs the active segment (no-op when already synced).
func (j *journal) sync() error {
	if j.synced {
		return nil
	}
	if err := j.w.Flush(); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("history: fsync: %w", err)
	}
	j.synced = true
	return nil
}

// close fsyncs and closes the active segment.
func (j *journal) close() error {
	syncErr := j.sync()
	if err := j.f.Close(); err != nil && syncErr == nil {
		syncErr = err
	}
	return syncErr
}
