// Package pool provides the bounded worker pool shared by every parallel
// region of a solve: component-level decomposition (maxent.solveComponents),
// the intra-solve data-parallel kernels (blocked A·x, Aᵀλ and the fused
// exp/partition pass), and rule mining (assoc.Mine).
//
// Sharing one pool is the point. A decomposed solve fans out over
// components, and each component solve fans out again inside its dual
// kernels; with independent per-layer pools the two levels multiply and
// oversubscribe GOMAXPROCS. Here both levels draw from the same fixed set
// of goroutines: a nested ParallelFor enlists only workers that are idle
// right now (the send is non-blocking) and the caller always participates,
// so the total number of goroutines doing work never exceeds the pool
// size — and nesting can never deadlock, because no region ever waits for
// a worker to become free.
//
// Determinism contract: ParallelFor assigns task indices dynamically, so
// the pool itself guarantees nothing about execution order. Callers that
// need bit-identical results at any worker count must make each task's
// output independent of scheduling — the linalg blocked kernels do this
// with a fixed block partition and an ordered combination of per-block
// results (see linalg.NumBlocks).
package pool

import (
	"context"
	"sync"
	"sync/atomic"
)

// Pool is a fixed set of worker goroutines. The zero-sized (or nil) pool
// is valid and runs everything on the caller's goroutine.
type Pool struct {
	workers int
	jobs    chan func()
	wg      sync.WaitGroup
	closed  sync.Once
}

// New creates a pool that can run up to workers tasks concurrently,
// counting the submitting goroutine: it starts workers−1 goroutines.
// Counts below 1 are treated as 1 (a purely serial pool with no
// goroutines at all).
func New(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{workers: workers}
	if workers > 1 {
		p.jobs = make(chan func())
		for i := 0; i < workers-1; i++ {
			p.wg.Add(1)
			go func() {
				defer p.wg.Done()
				for job := range p.jobs {
					job()
				}
			}()
		}
	}
	return p
}

// Workers reports the pool's concurrency bound (1 for a nil pool).
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// Close shuts the worker goroutines down and waits for them to exit. It
// is idempotent and safe on a nil pool. ParallelFor must not be called
// after Close.
func (p *Pool) Close() {
	if p == nil || p.jobs == nil {
		return
	}
	p.closed.Do(func() {
		close(p.jobs)
		p.wg.Wait()
	})
}

// ParallelFor runs fn(i) for every i in [0, n), returning once all calls
// have completed. The caller's goroutine always participates; up to
// max−1 currently-idle pool workers are enlisted to help (max ≤ 1 forces
// a serial loop, max ≤ 0 means the full pool size). Task indices are
// handed out dynamically, so fn must not rely on execution order.
//
// Cancellation: once ctx is done, no new task is started — every
// participant finishes its current fn call and returns, so ParallelFor
// drains cleanly and never leaks a task into the pool. In-flight fn
// calls are not interrupted; fn should poll ctx itself if tasks are
// long-running. A nil ctx disables the cancellation checks.
func (p *Pool) ParallelFor(ctx context.Context, n, max int, fn func(i int)) {
	if n <= 0 {
		return
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	cancelled := func() bool {
		if done == nil {
			return false
		}
		select {
		case <-done:
			return true
		default:
			return false
		}
	}
	if p == nil || p.jobs == nil || max == 1 || n == 1 {
		for i := 0; i < n; i++ {
			if cancelled() {
				return
			}
			fn(i)
		}
		return
	}
	if max <= 0 || max > p.workers {
		max = p.workers
	}

	var next int64
	work := func() {
		for {
			i := int(atomic.AddInt64(&next, 1)) - 1
			if i >= n || cancelled() {
				return
			}
			fn(i)
		}
	}

	helpers := max - 1
	if helpers > n-1 {
		helpers = n - 1
	}
	var wg sync.WaitGroup
	job := func() {
		defer wg.Done()
		work()
	}
enlist:
	for h := 0; h < helpers; h++ {
		wg.Add(1)
		select {
		case p.jobs <- job:
		default:
			// Every worker is busy (e.g. we are a nested region inside a
			// component solve). Run with whoever was enlisted so far —
			// blocking here could deadlock a fully-nested pool.
			wg.Done()
			break enlist
		}
	}
	work()
	wg.Wait()
}
