package pool

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestParallelForCoversAllIndices: every index runs exactly once, at any
// worker count and task count.
func TestParallelForCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		for _, n := range []int{0, 1, 2, 7, 100, 1000} {
			p := New(workers)
			counts := make([]int32, n)
			p.ParallelFor(context.Background(), n, 0, func(i int) {
				atomic.AddInt32(&counts[i], 1)
			})
			p.Close()
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, c)
				}
			}
		}
	}
}

// TestNilPoolIsSerial: a nil pool is a valid serial executor.
func TestNilPoolIsSerial(t *testing.T) {
	var p *Pool
	if p.Workers() != 1 {
		t.Fatalf("nil pool Workers = %d, want 1", p.Workers())
	}
	var ran int
	p.ParallelFor(context.Background(), 5, 0, func(i int) {
		if i != ran {
			t.Fatalf("serial pool ran out of order: got %d, want %d", i, ran)
		}
		ran++
	})
	if ran != 5 {
		t.Fatalf("ran %d tasks, want 5", ran)
	}
	p.Close() // must not panic
}

// TestSerialOrder: max=1 forces an in-order loop on the caller's
// goroutine even on a parallel pool.
func TestSerialOrder(t *testing.T) {
	p := New(4)
	defer p.Close()
	var got []int
	p.ParallelFor(context.Background(), 6, 1, func(i int) { got = append(got, i) })
	for i, v := range got {
		if v != i {
			t.Fatalf("max=1 ran out of order: %v", got)
		}
	}
	if len(got) != 6 {
		t.Fatalf("ran %d tasks, want 6", len(got))
	}
}

// TestConcurrencyBound: concurrent fn invocations never exceed the pool
// size, including when regions nest (component level + kernel level).
func TestConcurrencyBound(t *testing.T) {
	const workers = 4
	p := New(workers)
	defer p.Close()
	var active, peak int32
	observe := func() {
		a := atomic.AddInt32(&active, 1)
		for {
			old := atomic.LoadInt32(&peak)
			if a <= old || atomic.CompareAndSwapInt32(&peak, old, a) {
				break
			}
		}
		time.Sleep(200 * time.Microsecond)
		atomic.AddInt32(&active, -1)
	}
	p.ParallelFor(context.Background(), 8, 0, func(i int) {
		// Nested region, as the dual kernels inside a component solve do.
		p.ParallelFor(context.Background(), 8, 0, func(j int) {
			observe()
		})
	})
	if got := atomic.LoadInt32(&peak); got > workers {
		t.Fatalf("peak concurrency %d exceeds pool size %d", got, workers)
	}
}

// TestMaxCapsHelpers: a region with max=2 on a big pool runs at most two
// tasks at once.
func TestMaxCapsHelpers(t *testing.T) {
	p := New(8)
	defer p.Close()
	var active, peak int32
	p.ParallelFor(context.Background(), 32, 2, func(i int) {
		a := atomic.AddInt32(&active, 1)
		for {
			old := atomic.LoadInt32(&peak)
			if a <= old || atomic.CompareAndSwapInt32(&peak, old, a) {
				break
			}
		}
		time.Sleep(100 * time.Microsecond)
		atomic.AddInt32(&active, -1)
	})
	if got := atomic.LoadInt32(&peak); got > 2 {
		t.Fatalf("peak concurrency %d exceeds max=2", got)
	}
}

// TestCancelDrains: cancelling mid-run stops the remaining tasks and
// ParallelFor still returns with no goroutine left touching the loop
// state — the pool is immediately reusable. Run with -race this is the
// drain contract behind the solver's mid-kernel cancellation.
func TestCancelDrains(t *testing.T) {
	p := New(4)
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	var started int32
	var mu sync.Mutex
	seen := map[int]bool{}
	p.ParallelFor(ctx, 10000, 0, func(i int) {
		if atomic.AddInt32(&started, 1) == 8 {
			cancel()
		}
		mu.Lock()
		seen[i] = true
		mu.Unlock()
	})
	// After return no task may still be running: mutating the map now
	// would trip the race detector if one were.
	mu.Lock()
	ran := len(seen)
	seen[-1] = true
	mu.Unlock()
	if ran == 10000 {
		t.Fatal("cancellation did not stop the loop early")
	}
	// Pool must be reusable after a cancelled region.
	var again int32
	p.ParallelFor(context.Background(), 64, 0, func(i int) { atomic.AddInt32(&again, 1) })
	if again != 64 {
		t.Fatalf("pool not reusable after cancel: ran %d of 64", again)
	}
}

// TestPreCancelledRunsNothing: an already-cancelled context short-circuits
// before the first task.
func TestPreCancelledRunsNothing(t *testing.T) {
	p := New(2)
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran int32
	p.ParallelFor(ctx, 100, 0, func(i int) { atomic.AddInt32(&ran, 1) })
	if ran != 0 {
		t.Fatalf("pre-cancelled region ran %d tasks", ran)
	}
}

// TestCloseIdempotent: Close twice is fine, as is closing a serial pool.
func TestCloseIdempotent(t *testing.T) {
	p := New(3)
	p.Close()
	p.Close()
	s := New(1)
	s.Close()
	if s.Workers() != 1 || p.Workers() != 3 {
		t.Fatal("Workers changed by Close")
	}
}
