package constraint

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"

	"privacymaxent/internal/dataset"
)

func TestParseKnowledgeJSON(t *testing.T) {
	schema := dataset.PaperExample().Schema()
	doc := `[
	  {"if": {"Gender": "male"}, "then": "Breast Cancer", "p": 0},
	  {"if": {"Gender": "male", "Degree": "high school"}, "then": "Pneumonia", "p": 0.5}
	]`
	ks, err := ParseKnowledgeJSON(strings.NewReader(doc), schema)
	if err != nil {
		t.Fatal(err)
	}
	if len(ks) != 2 {
		t.Fatalf("parsed %d statements, want 2", len(ks))
	}
	if ks[0].P != 0 || ks[0].SA != schema.SA().MustCode("Breast Cancer") {
		t.Fatalf("first statement = %+v", ks[0])
	}
	if len(ks[1].Attrs) != 2 || ks[1].P != 0.5 {
		t.Fatalf("second statement = %+v", ks[1])
	}
	// Conditions resolve in schema order regardless of JSON map order.
	gender := schema.Index("Gender")
	degree := schema.Index("Degree")
	if !reflect.DeepEqual(ks[1].Attrs, []int{gender, degree}) {
		t.Fatalf("attrs = %v, want [%d %d]", ks[1].Attrs, gender, degree)
	}
}

func TestParseKnowledgeJSONErrors(t *testing.T) {
	schema := dataset.PaperExample().Schema()
	cases := map[string]string{
		"bad json":      `[`,
		"unknown field": `[{"if": {"Gender": "male"}, "then": "Flu", "p": 0, "why": "x"}]`,
		"empty if":      `[{"if": {}, "then": "Flu", "p": 0}]`,
		"bad attribute": `[{"if": {"Shoe": "male"}, "then": "Flu", "p": 0}]`,
		"id attribute":  `[{"if": {"Name": "Allen"}, "then": "Flu", "p": 0}]`,
		"bad value":     `[{"if": {"Gender": "robot"}, "then": "Flu", "p": 0}]`,
		"bad sa":        `[{"if": {"Gender": "male"}, "then": "Scurvy", "p": 0}]`,
	}
	for name, doc := range cases {
		if _, err := ParseKnowledgeJSON(strings.NewReader(doc), schema); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestKnowledgeJSONRoundTrip(t *testing.T) {
	schema := dataset.PaperExample().Schema()
	gender := schema.Index("Gender")
	degree := schema.Index("Degree")
	ks := []DistributionKnowledge{
		{Attrs: []int{gender}, Values: []int{schema.Attr(gender).MustCode("female")}, SA: 0, P: 0.25},
		{Attrs: []int{gender, degree}, Values: []int{
			schema.Attr(gender).MustCode("male"), schema.Attr(degree).MustCode("college"),
		}, SA: 1, P: 0.5},
	}
	var buf bytes.Buffer
	if err := WriteKnowledgeJSON(&buf, schema, ks); err != nil {
		t.Fatal(err)
	}
	got, err := ParseKnowledgeJSON(&buf, schema)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ks) {
		t.Fatalf("round trip lost statements: %d vs %d", len(got), len(ks))
	}
	for i := range ks {
		if !reflect.DeepEqual(got[i].Attrs, ks[i].Attrs) ||
			!reflect.DeepEqual(got[i].Values, ks[i].Values) ||
			got[i].SA != ks[i].SA || math.Abs(got[i].P-ks[i].P) > 1e-15 {
			t.Fatalf("statement %d: got %+v, want %+v", i, got[i], ks[i])
		}
	}
}

func TestWriteKnowledgeJSONValidation(t *testing.T) {
	schema := dataset.PaperExample().Schema()
	var buf bytes.Buffer
	bad := []DistributionKnowledge{{Attrs: []int{0}, Values: nil, SA: 0, P: 0}}
	if err := WriteKnowledgeJSON(&buf, schema, bad); err == nil {
		t.Fatal("expected arity error")
	}
	bad = []DistributionKnowledge{{Attrs: []int{99}, Values: []int{0}, SA: 0, P: 0}}
	if err := WriteKnowledgeJSON(&buf, schema, bad); err == nil {
		t.Fatal("expected range error")
	}
	bad = []DistributionKnowledge{{Attrs: []int{1}, Values: []int{0}, SA: 99, P: 0}}
	if err := WriteKnowledgeJSON(&buf, schema, bad); err == nil {
		t.Fatal("expected SA range error")
	}
}

func TestKnowledgeJSONNegated(t *testing.T) {
	schema := dataset.PaperExample().Schema()
	doc := `[{"if": {"Gender": "male"}, "not": true, "then": "Flu", "p": 0.25}]`
	ks, err := ParseKnowledgeJSON(strings.NewReader(doc), schema)
	if err != nil {
		t.Fatal(err)
	}
	if len(ks) != 1 || !ks[0].Negated {
		t.Fatalf("parsed = %+v, want negated", ks)
	}
	var buf bytes.Buffer
	if err := WriteKnowledgeJSON(&buf, schema, ks); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"not": true`) {
		t.Fatalf("serialized form lost negation: %s", buf.String())
	}
	back, err := ParseKnowledgeJSON(&buf, schema)
	if err != nil {
		t.Fatal(err)
	}
	if !back[0].Negated {
		t.Fatal("round trip lost negation")
	}
}
