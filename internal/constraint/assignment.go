package constraint

import (
	"fmt"
	"math/rand"

	"privacymaxent/internal/bucket"
	"privacymaxent/internal/dataset"
)

// Assignment realizes Definitions 5.2 and 5.3: for every bucket, a
// bijection between the bucket's QI instances and its SA instances
// (multiset elements pair one-to-one). The original data D is one such
// assignment; invariants are exactly the probability expressions whose
// value is the same under every assignment.
type Assignment struct {
	d *bucket.Bucketized
	// joint[b] maps (qid, sa) to the number of paired instances in
	// bucket b under this assignment.
	joint []map[[2]int]int
}

// RandomAssignment draws an assignment uniformly at random by shuffling
// each bucket's SA multiset against its QI instance list.
func RandomAssignment(d *bucket.Bucketized, rng *rand.Rand) *Assignment {
	a := &Assignment{d: d, joint: make([]map[[2]int]int, d.NumBuckets())}
	for b := 0; b < d.NumBuckets(); b++ {
		bk := d.Bucket(b)
		// Expand the SA multiset.
		sas := make([]int, 0, bk.Size())
		for s := 0; s < d.SACardinality(); s++ {
			for n := 0; n < bk.SACount(s); n++ {
				sas = append(sas, s)
			}
		}
		rng.Shuffle(len(sas), func(i, j int) { sas[i], sas[j] = sas[j], sas[i] })
		m := make(map[[2]int]int)
		for i, q := range bk.QIDs() {
			m[[2]int{q, sas[i]}]++
		}
		a.joint[b] = m
	}
	return a
}

// AssignmentFromTable reconstructs the true assignment — the original data
// D — given the table and the partition that produced the bucketization.
func AssignmentFromTable(t *dataset.Table, d *bucket.Bucketized, partition [][]int) (*Assignment, error) {
	if len(partition) != d.NumBuckets() {
		return nil, fmt.Errorf("constraint: partition has %d groups, data has %d buckets", len(partition), d.NumBuckets())
	}
	u := d.Universe()
	a := &Assignment{d: d, joint: make([]map[[2]int]int, d.NumBuckets())}
	for b, g := range partition {
		if len(g) != d.Bucket(b).Size() {
			return nil, fmt.Errorf("constraint: group %d has %d rows, bucket has %d", b, len(g), d.Bucket(b).Size())
		}
		m := make(map[[2]int]int)
		for _, row := range g {
			qid, ok := u.QID(t.QIKey(row))
			if !ok {
				return nil, fmt.Errorf("constraint: row %d QI tuple missing from universe", row)
			}
			m[[2]int{qid, t.SACode(row)}]++
		}
		a.joint[b] = m
	}
	return a, nil
}

// Joint returns P_Λ(q, s, b): the fraction of all records that bucket b
// pairs as (qid, sa) under this assignment.
func (a *Assignment) Joint(qid, sa, b int) float64 {
	return float64(a.joint[b][[2]int{qid, sa}]) / float64(a.d.N())
}

// Eval computes a probability expression F(Λ): the constraint's left-hand
// side with every term replaced by its probability under the assignment.
func (a *Assignment) Eval(sp *Space, c *Constraint) float64 {
	var sum float64
	for k, id := range c.Terms {
		t := sp.Term(id)
		sum += c.Coeffs[k] * a.Joint(t.QID, t.SA, t.Bucket)
	}
	return sum
}

// Vector expands the assignment into a full variable vector over the
// space, for feeding MaxViolation and rank analyses.
func (a *Assignment) Vector(sp *Space) []float64 {
	x := make([]float64, sp.Len())
	for i := 0; i < sp.Len(); i++ {
		t := sp.Term(i)
		x[i] = a.Joint(t.QID, t.SA, t.Bucket)
	}
	return x
}
