package constraint

import (
	"fmt"

	"privacymaxent/internal/linalg"
)

// BucketMatrix returns the dense constraint matrix of one bucket's base
// invariants (QI-invariants then SA-invariants, none dropped), with
// columns in the order of Space.TermsInBucket(b) — the paper's Figure 3.
// It also returns the local column order (global term indices).
func BucketMatrix(sp *Space, b int) (rows [][]float64, cols []int) {
	cols = sp.TermsInBucket(b)
	local := make(map[int]int, len(cols))
	for i, id := range cols {
		local[id] = i
	}
	sys := NewSystem(sp)
	appendBucketInvariants(sys, sp, sp.Data(), sp.Data().Bucket(b), b, InvariantOptions{})
	rows = make([][]float64, sys.Len())
	for i := 0; i < sys.Len(); i++ {
		c := sys.At(i)
		row := make([]float64, len(cols))
		for k, id := range c.Terms {
			row[local[id]] += c.Coeffs[k]
		}
		rows[i] = row
	}
	return rows, cols
}

// VerifyConciseness checks Theorem 3 for bucket b: the g+h base
// invariants have rank g+h−1 (exactly one dependency — the sum of
// QI-invariants equals the sum of SA-invariants), and removing any single
// row leaves a linearly independent, hence minimal, set.
func VerifyConciseness(sp *Space, b int) error {
	rows, _ := BucketMatrix(sp, b)
	n := len(rows)
	if n == 0 {
		return fmt.Errorf("constraint: bucket %d has no invariants", b)
	}
	want := n - 1
	if got := linalg.Rank(rows, 0); got != want {
		return fmt.Errorf("constraint: bucket %d invariant rank = %d, want %d", b, got, want)
	}
	for drop := 0; drop < n; drop++ {
		sub := make([][]float64, 0, n-1)
		for i, r := range rows {
			if i != drop {
				sub = append(sub, r)
			}
		}
		if got := linalg.Rank(sub, 0); got != n-1 {
			return fmt.Errorf("constraint: bucket %d minus row %d has rank %d, want %d (not minimal)", b, drop, got, n-1)
		}
	}
	return nil
}

// IsInvariant reports whether a probability expression over bucket b's
// terms is an invariant, using the completeness criterion of Theorem 2:
// F is an invariant iff its coefficient vector lies in the row space of
// the base invariants. coeffs is indexed like Space.TermsInBucket(b).
func IsInvariant(sp *Space, b int, coeffs []float64) (bool, error) {
	rows, cols := BucketMatrix(sp, b)
	if len(coeffs) != len(cols) {
		return false, fmt.Errorf("constraint: expression has %d coefficients, bucket has %d terms", len(coeffs), len(cols))
	}
	return linalg.InRowSpace(rows, coeffs, 0), nil
}
