package constraint

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// This file implements the constraint-system differ behind incremental
// (delta) re-solves: compare a new system against a previously solved
// one over the same Space and classify each connected component — the
// Sec. 5.5 decomposition unit — so the solver can reuse converged work.
//
// Classification rules:
//
//   - Clean: the component covers exactly the same bucket set as an old
//     component and carries an identical multiset of rows, where row
//     identity is content only (kind, terms, coefficient bits, RHS bits)
//     and deliberately excludes the label. Identical subproblem ⇒ the
//     converged posterior slice and Lagrange multipliers of the old
//     component transfer verbatim: label renames and row reordering diff
//     as clean.
//   - Dirty: the component's buckets overlap an old component's, but the
//     rows differ (a coefficient or RHS changed, a row was added or
//     removed, or components split/merged between publications). The old
//     rows are reported so the re-solve can warm-start from their duals.
//   - New: the component touches only buckets no old component covered —
//     nothing to reuse, solved cold.
//
// A nil old system, or one built over a different Space (pointer
// identity — the term indexing is Space-specific), degrades every
// component to New, which is always correct.

// DiffClass classifies one component of a system diff.
type DiffClass int

const (
	// DiffClean marks a component identical to an old one: reuse its
	// converged solution verbatim, zero iterations.
	DiffClean DiffClass = iota
	// DiffDirty marks a changed component: re-solve, warm-started from
	// the old component's duals.
	DiffDirty
	// DiffNew marks a component with no old counterpart: solve cold.
	DiffNew
)

// String names the class.
func (c DiffClass) String() string {
	switch c {
	case DiffClean:
		return "clean"
	case DiffDirty:
		return "dirty"
	case DiffNew:
		return "new"
	default:
		return fmt.Sprintf("DiffClass(%d)", int(c))
	}
}

// ComponentDiff describes one connected component of the new system and
// how it relates to the old one.
type ComponentDiff struct {
	// Class is the reuse classification.
	Class DiffClass
	// Root is the component's union-find root bucket — the same
	// representative the solver's decomposition assigns, so diff
	// components align 1:1 with solve components.
	Root int
	// Buckets lists the component's buckets, ascending.
	Buckets []int
	// Rows lists the component's constraint indices in the new system,
	// in system order.
	Rows []int
	// OldRows depends on Class: for DiffClean it pairs 1:1 with Rows
	// (OldRows[i] is the old row whose content matches Rows[i], the
	// mapping that transfers duals across label renames); for DiffDirty
	// it lists the rows of every overlapping old component (the
	// warm-start source); for DiffNew it is nil.
	OldRows []int
}

// SystemDiff is the full classification of a new system against an old
// one. Components are ordered by ascending Root, matching the solver's
// deterministic component order.
type SystemDiff struct {
	Components []ComponentDiff
	// Clean, Dirty and New count components per class.
	Clean, Dirty, New int
}

// DiffSystems classifies every connected component of new against old.
// old may be nil (or over a different Space): everything diffs as New.
func DiffSystems(old, new *System) *SystemDiff {
	d := &SystemDiff{}
	newComps := systemComponents(new)
	if old == nil || old.space != new.space {
		for _, nc := range newComps {
			d.Components = append(d.Components, ComponentDiff{
				Class: DiffNew, Root: nc.root, Buckets: nc.buckets, Rows: nc.rows,
			})
			d.New++
		}
		return d
	}
	oldComps := systemComponents(old)
	byKey := make(map[string]int, len(oldComps))
	bucketOwner := make(map[int]int)
	for i := range oldComps {
		byKey[bucketKey(oldComps[i].buckets)] = i
		for _, b := range oldComps[i].buckets {
			bucketOwner[b] = i
		}
	}
	for _, nc := range newComps {
		cd := ComponentDiff{Root: nc.root, Buckets: nc.buckets, Rows: nc.rows}
		if oi, ok := byKey[bucketKey(nc.buckets)]; ok {
			oc := oldComps[oi]
			if paired, clean := matchRows(old, new, oc.rows, nc.rows); clean {
				cd.Class = DiffClean
				cd.OldRows = paired
			} else {
				cd.Class = DiffDirty
				cd.OldRows = append([]int(nil), oc.rows...)
			}
		} else {
			seen := make(map[int]bool)
			var oldRows []int
			for _, b := range nc.buckets {
				if oi, ok := bucketOwner[b]; ok && !seen[oi] {
					seen[oi] = true
					oldRows = append(oldRows, oldComps[oi].rows...)
				}
			}
			if len(oldRows) > 0 {
				sort.Ints(oldRows)
				cd.Class = DiffDirty
				cd.OldRows = oldRows
			} else {
				cd.Class = DiffNew
			}
		}
		switch cd.Class {
		case DiffClean:
			d.Clean++
		case DiffDirty:
			d.Dirty++
		default:
			d.New++
		}
		d.Components = append(d.Components, cd)
	}
	return d
}

// sysComponent is one connected component of a system: its union-find
// root, bucket set, and constraint indices.
type sysComponent struct {
	root    int
	buckets []int
	rows    []int
}

// systemComponents partitions the system's constraints into connected
// components exactly like the solver's decomposition: union-find over
// the touched ("relevant") buckets, linked by coupling rows (any kind
// other than the bucket-local QI/SA invariants); coupling rows join the
// component of their first term's bucket, invariant rows of relevant
// buckets join their bucket's component, and empty rows are skipped.
// Components come out ordered by ascending root.
func systemComponents(s *System) []sysComponent {
	sp := s.space
	relevant := TouchedBuckets(s)
	if len(relevant) == 0 {
		return nil
	}
	parent := make(map[int]int, len(relevant))
	for _, b := range relevant {
		parent[b] = b
	}
	var find func(int) int
	find = func(b int) int {
		if parent[b] != b {
			parent[b] = find(parent[b])
		}
		return parent[b]
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	coupling := func(k Kind) bool { return k != QIInvariant && k != SAInvariant }
	for i := range s.cons {
		c := &s.cons[i]
		if !coupling(c.Kind) || len(c.Terms) == 0 {
			continue
		}
		first := sp.Term(c.Terms[0]).Bucket
		for _, t := range c.Terms[1:] {
			union(first, sp.Term(t).Bucket)
		}
	}
	relevantSet := make(map[int]bool, len(relevant))
	for _, b := range relevant {
		relevantSet[b] = true
	}
	rowsByRoot := map[int][]int{}
	for i := range s.cons {
		c := &s.cons[i]
		if len(c.Terms) == 0 {
			continue
		}
		b := sp.Term(c.Terms[0]).Bucket
		if coupling(c.Kind) {
			rowsByRoot[find(b)] = append(rowsByRoot[find(b)], i)
			continue
		}
		if relevantSet[b] {
			rowsByRoot[find(b)] = append(rowsByRoot[find(b)], i)
		}
	}
	bucketsByRoot := map[int][]int{}
	for _, b := range relevant {
		bucketsByRoot[find(b)] = append(bucketsByRoot[find(b)], b)
	}
	roots := make([]int, 0, len(rowsByRoot))
	for r := range rowsByRoot {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	out := make([]sysComponent, 0, len(roots))
	for _, r := range roots {
		bs := bucketsByRoot[r]
		sort.Ints(bs)
		out = append(out, sysComponent{root: r, buckets: bs, rows: rowsByRoot[r]})
	}
	return out
}

// bucketKey renders a sorted bucket list as a map key.
func bucketKey(buckets []int) string {
	var b strings.Builder
	for i, v := range buckets {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", v)
	}
	return b.String()
}

// rowSignature is the content identity of a row: kind, RHS bits, and the
// (term, coefficient-bits) sequence. The label is deliberately excluded
// so renames diff as clean; term order is part of the signature (builders
// emit terms in deterministic order, so a reordering of terms within a
// row indicates a genuinely different construction and diffs dirty,
// which is always safe).
func rowSignature(c *Constraint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d;%016x", int(c.Kind), math.Float64bits(c.RHS))
	for k, t := range c.Terms {
		fmt.Fprintf(&b, ";%d:%016x", t, math.Float64bits(c.Coeffs[k]))
	}
	return b.String()
}

// matchRows compares two components' rows as multisets of content
// signatures. On a match it returns old-row indices paired 1:1 with
// newRows (duplicate signatures pair in system order, which is
// well-defined because identical rows are interchangeable).
func matchRows(old, new *System, oldRows, newRows []int) ([]int, bool) {
	if len(oldRows) != len(newRows) {
		return nil, false
	}
	bySig := make(map[string][]int, len(oldRows))
	for _, i := range oldRows {
		sig := rowSignature(old.At(i))
		bySig[sig] = append(bySig[sig], i)
	}
	paired := make([]int, 0, len(newRows))
	for _, i := range newRows {
		sig := rowSignature(new.At(i))
		q := bySig[sig]
		if len(q) == 0 {
			return nil, false
		}
		paired = append(paired, q[0])
		bySig[sig] = q[1:]
	}
	return paired, true
}
