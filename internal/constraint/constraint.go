package constraint

import (
	"fmt"
	"strings"
	"sync/atomic"

	"privacymaxent/internal/linalg"
)

// Kind classifies a linear constraint by its provenance.
type Kind int

const (
	// QIInvariant rows come from Eq. (4): Σ_s P(q,s,b) = P(q,b).
	QIInvariant Kind = iota
	// SAInvariant rows come from Eq. (5): Σ_q P(q,s,b) = P(s,b).
	SAInvariant
	// Knowledge rows encode background knowledge about the data
	// distribution (Sec. 4.1): the Top-(K+, K−) rules.
	Knowledge
	// ZeroInvariant marks Eq. (6) rows: P(q,s,b) = 0 for (QI, SA) pairs
	// absent from the bucket. The standard pipeline never materializes
	// them — the Space simply omits the variable — so the kind exists for
	// family accounting (audits) and for callers that build explicit
	// zero rows.
	ZeroInvariant
	// IndividualKnowledge rows encode knowledge about specific
	// individuals in the pseudonym-expanded P(i,Q,S,B) model (Sec. 6),
	// as opposed to distribution-level Knowledge rows.
	IndividualKnowledge
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case QIInvariant:
		return "QI-invariant"
	case SAInvariant:
		return "SA-invariant"
	case Knowledge:
		return "knowledge"
	case ZeroInvariant:
		return "zero-invariant"
	case IndividualKnowledge:
		return "individual"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Constraint is one linear equation Σ_k Coeffs[k]·x[Terms[k]] = RHS over
// the dense term indices of a Space. Terms must be distinct within a
// constraint.
type Constraint struct {
	Kind   Kind
	Label  string
	Terms  []int
	Coeffs []float64
	RHS    float64
}

// Eval computes the left-hand side under the full variable vector x.
func (c *Constraint) Eval(x []float64) float64 {
	var s float64
	for k, t := range c.Terms {
		s += c.Coeffs[k] * x[t]
	}
	return s
}

// Residual returns Eval(x) − RHS.
func (c *Constraint) Residual(x []float64) float64 { return c.Eval(x) - c.RHS }

// String renders the constraint in the paper's notation.
func (c *Constraint) String() string {
	var b strings.Builder
	for k, t := range c.Terms {
		if k > 0 {
			b.WriteString(" + ")
		}
		if c.Coeffs[k] != 1 {
			fmt.Fprintf(&b, "%g·", c.Coeffs[k])
		}
		fmt.Fprintf(&b, "x%d", t)
	}
	if len(c.Terms) == 0 {
		b.WriteString("0")
	}
	fmt.Fprintf(&b, " = %g", c.RHS)
	if c.Label != "" {
		return c.Label + ": " + b.String()
	}
	return b.String()
}

// System is a set of constraints over one term space: the ME problem's
// h_1, ..., h_w.
type System struct {
	space *Space
	cons  []Constraint
	// shared marks that cons' backing array may be visible to a clone
	// (or to the system this one was cloned from). The next Add copies
	// the headers to a fresh array before appending, so overlay
	// isolation holds by construction — not merely by the capacity
	// clamp Clone applies — even when base and clones are appended to
	// in any interleaving. Atomic because Clone may be called
	// concurrently on a shared base (core.Prepared is documented safe
	// for concurrent use).
	shared atomic.Bool
}

// NewSystem creates an empty system over the space.
func NewSystem(sp *Space) *System {
	return &System{space: sp}
}

// Space returns the term space.
func (s *System) Space() *Space { return s.space }

// Clone returns an overlay of the system: a new System sharing the base
// constraints (and their term/coefficient storage) with the original.
// Appending to either the clone or the original never mutates the other —
// both sides are marked shared, so the first Add on either copies the
// constraint headers to a fresh backing array before appending
// (copy-on-write). This is the cheap per-grid-point reuse path for
// sweeps that build the data invariants once and append K knowledge rows
// per point, and it stays safe when the base itself is appended to after
// clones were taken.
func (s *System) Clone() *System {
	s.shared.Store(true)
	c := &System{space: s.space, cons: s.cons[:len(s.cons):len(s.cons)]}
	c.shared.Store(true)
	return c
}

// Len reports the number of constraints.
func (s *System) Len() int { return len(s.cons) }

// At returns constraint i.
func (s *System) At(i int) *Constraint { return &s.cons[i] }

// Add appends a constraint after validating its term indices.
func (s *System) Add(c Constraint) error {
	if len(c.Terms) != len(c.Coeffs) {
		return fmt.Errorf("constraint: %d terms but %d coefficients", len(c.Terms), len(c.Coeffs))
	}
	seen := make(map[int]bool, len(c.Terms))
	for _, t := range c.Terms {
		if t < 0 || t >= s.space.Len() {
			return fmt.Errorf("constraint: term index %d out of range [0,%d)", t, s.space.Len())
		}
		if seen[t] {
			return fmt.Errorf("constraint: duplicate term index %d", t)
		}
		seen[t] = true
	}
	if s.shared.Load() {
		// The backing array is (or was) visible to a clone: copy the
		// headers out before appending so the append can never land in
		// storage another overlay reads. Headroom amortizes the sweeps'
		// append-K-rows-per-grid-point pattern to one copy per overlay.
		fresh := make([]Constraint, len(s.cons), len(s.cons)+16)
		copy(fresh, s.cons)
		s.cons = fresh
		s.shared.Store(false)
	}
	s.cons = append(s.cons, c)
	return nil
}

// MustAdd is Add but panics on error; for builders whose inputs are
// already validated.
func (s *System) MustAdd(c Constraint) {
	if err := s.Add(c); err != nil {
		panic(err)
	}
}

// CountKind reports how many constraints have the given kind.
func (s *System) CountKind(k Kind) int {
	n := 0
	for i := range s.cons {
		if s.cons[i].Kind == k {
			n++
		}
	}
	return n
}

// Matrix assembles the system as a CSR matrix A and right-hand side c so
// that the feasible set is {x : A x = c, x ≥ 0}.
func (s *System) Matrix() (*linalg.CSR, []float64) {
	m := linalg.NewCSR(s.space.Len())
	rhs := make([]float64, 0, len(s.cons))
	for i := range s.cons {
		c := &s.cons[i]
		if err := m.AppendRow(c.Terms, c.Coeffs); err != nil {
			// Add validated indices already; this is unreachable.
			panic(err)
		}
		rhs = append(rhs, c.RHS)
	}
	return m, rhs
}

// MaxViolation returns the largest |residual| across constraints for a
// candidate solution, used by tests and the solver's feasibility report.
func (s *System) MaxViolation(x []float64) float64 {
	var worst float64
	for i := range s.cons {
		if r := s.cons[i].Residual(x); r > worst {
			worst = r
		} else if -r > worst {
			worst = -r
		}
	}
	return worst
}
