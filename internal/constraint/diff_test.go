package constraint

import "testing"

// krow builds a unit-coefficient knowledge row over the given terms.
func krow(terms []int, rhs float64, label string) Constraint {
	coeffs := make([]float64, len(terms))
	for i := range coeffs {
		coeffs[i] = 1
	}
	return Constraint{Kind: Knowledge, Terms: terms, Coeffs: coeffs, RHS: rhs, Label: label}
}

// diffFixture returns the invariant base plus term handles into the
// paper example's three buckets.
func diffFixture(t *testing.T) (*System, *Space) {
	t.Helper()
	_, _, sp := paperSpace(t)
	return DataInvariants(sp, InvariantOptions{DropRedundant: true}), sp
}

func classCounts(t *testing.T, d *SystemDiff, clean, dirty, new_ int) {
	t.Helper()
	if d.Clean != clean || d.Dirty != dirty || d.New != new_ {
		t.Fatalf("diff counts clean/dirty/new = %d/%d/%d, want %d/%d/%d",
			d.Clean, d.Dirty, d.New, clean, dirty, new_)
	}
	if len(d.Components) != clean+dirty+new_ {
		t.Fatalf("%d components, want %d", len(d.Components), clean+dirty+new_)
	}
}

// TestDiffSystemsIdentical: an unchanged system diffs entirely clean,
// with every row paired to a content-identical old row.
func TestDiffSystemsIdentical(t *testing.T) {
	base, sp := diffFixture(t)
	build := func() *System {
		s := base.Clone()
		s.MustAdd(krow([]int{sp.TermsInBucket(0)[0]}, 0.2, "k0"))
		s.MustAdd(krow([]int{sp.TermsInBucket(1)[0]}, 0.3, "k1"))
		return s
	}
	old, new := build(), build()
	d := DiffSystems(old, new)
	classCounts(t, d, 2, 0, 0)
	for _, cd := range d.Components {
		if len(cd.OldRows) != len(cd.Rows) {
			t.Fatalf("clean component OldRows/Rows length mismatch: %d/%d", len(cd.OldRows), len(cd.Rows))
		}
		for k, ri := range cd.Rows {
			if got, want := rowSignature(old.At(cd.OldRows[k])), rowSignature(new.At(ri)); got != want {
				t.Fatalf("paired rows differ in content: old %q vs new %q", got, want)
			}
		}
	}
	// Components come out in ascending root order.
	for i := 1; i < len(d.Components); i++ {
		if d.Components[i-1].Root >= d.Components[i].Root {
			t.Fatalf("components not ordered by root: %d then %d", d.Components[i-1].Root, d.Components[i].Root)
		}
	}
}

// TestDiffSystemsRenameAndReorderClean: renaming labels and reordering
// rows inside a component keeps the component clean — row identity is
// content only, compared as a multiset.
func TestDiffSystemsRenameAndReorderClean(t *testing.T) {
	base, sp := diffFixture(t)
	b0 := sp.TermsInBucket(0)
	old := base.Clone()
	old.MustAdd(krow([]int{b0[0]}, 0.2, "first"))
	old.MustAdd(krow([]int{b0[1]}, 0.3, "second"))
	new := base.Clone()
	new.MustAdd(krow([]int{b0[1]}, 0.3, "renamed-b"))
	new.MustAdd(krow([]int{b0[0]}, 0.2, "renamed-a"))
	d := DiffSystems(old, new)
	classCounts(t, d, 1, 0, 0)
	cd := d.Components[0]
	// The pairing crosses the rename: each new row maps to the old row
	// with its content, regardless of label or position.
	for k, ri := range cd.Rows {
		if got, want := rowSignature(old.At(cd.OldRows[k])), rowSignature(new.At(ri)); got != want {
			t.Fatalf("pairing broken across rename/reorder: old %q vs new %q", got, want)
		}
	}
}

// TestDiffSystemsCoefficientChangeDirty: a changed RHS (or coefficient)
// makes the component dirty, and the old component's rows are reported
// as the warm-start source.
func TestDiffSystemsCoefficientChangeDirty(t *testing.T) {
	base, sp := diffFixture(t)
	b0 := sp.TermsInBucket(0)
	old := base.Clone()
	old.MustAdd(krow([]int{b0[0]}, 0.2, "k"))
	new := base.Clone()
	new.MustAdd(krow([]int{b0[0]}, 0.25, "k"))
	d := DiffSystems(old, new)
	classCounts(t, d, 0, 1, 0)
	cd := d.Components[0]
	if len(cd.OldRows) == 0 {
		t.Fatal("dirty component has no old rows to warm-start from")
	}
	// Every old row of the overlapping component is available.
	found := false
	for _, oi := range cd.OldRows {
		if old.At(oi).Label == "k" {
			found = true
		}
	}
	if !found {
		t.Fatal("old knowledge row missing from dirty component's OldRows")
	}
}

// TestDiffSystemsNewComponent: knowledge over a bucket no old component
// touched diffs as new, while an untouched component stays clean.
func TestDiffSystemsNewComponent(t *testing.T) {
	base, sp := diffFixture(t)
	old := base.Clone()
	old.MustAdd(krow([]int{sp.TermsInBucket(0)[0]}, 0.2, "k0"))
	new := base.Clone()
	new.MustAdd(krow([]int{sp.TermsInBucket(0)[0]}, 0.2, "k0"))
	new.MustAdd(krow([]int{sp.TermsInBucket(1)[0]}, 0.3, "k1"))
	d := DiffSystems(old, new)
	classCounts(t, d, 1, 0, 1)
	for _, cd := range d.Components {
		switch cd.Class {
		case DiffClean:
			if cd.Buckets[0] != 0 {
				t.Fatalf("clean component over bucket %d, want 0", cd.Buckets[0])
			}
		case DiffNew:
			if cd.Buckets[0] != 1 {
				t.Fatalf("new component over bucket %d, want 1", cd.Buckets[0])
			}
			if cd.OldRows != nil {
				t.Fatal("new component carries OldRows")
			}
		}
	}
}

// TestDiffSystemsMerge: two old components joined by a spanning row in
// the new system form one dirty component whose OldRows union both old
// components (the widest warm-start seed available).
func TestDiffSystemsMerge(t *testing.T) {
	base, sp := diffFixture(t)
	old := base.Clone()
	old.MustAdd(krow([]int{sp.TermsInBucket(0)[0]}, 0.2, "k0"))
	old.MustAdd(krow([]int{sp.TermsInBucket(1)[0]}, 0.3, "k1"))
	new := base.Clone()
	new.MustAdd(krow([]int{sp.TermsInBucket(0)[0], sp.TermsInBucket(1)[0]}, 0.4, "span"))
	d := DiffSystems(old, new)
	classCounts(t, d, 0, 1, 0)
	cd := d.Components[0]
	if len(cd.Buckets) != 2 || cd.Buckets[0] != 0 || cd.Buckets[1] != 1 {
		t.Fatalf("merged component buckets = %v, want [0 1]", cd.Buckets)
	}
	labels := map[string]bool{}
	for _, oi := range cd.OldRows {
		labels[old.At(oi).Label] = true
	}
	if !labels["k0"] || !labels["k1"] {
		t.Fatalf("merged OldRows missing a source component's knowledge rows (have %v)", labels)
	}
}

// TestDiffSystemsSplit: one old spanning component split into two
// per-bucket components diffs both halves dirty (bucket overlap without
// bucket-set equality).
func TestDiffSystemsSplit(t *testing.T) {
	base, sp := diffFixture(t)
	old := base.Clone()
	old.MustAdd(krow([]int{sp.TermsInBucket(0)[0], sp.TermsInBucket(1)[0]}, 0.4, "span"))
	new := base.Clone()
	new.MustAdd(krow([]int{sp.TermsInBucket(0)[0]}, 0.2, "k0"))
	new.MustAdd(krow([]int{sp.TermsInBucket(1)[0]}, 0.3, "k1"))
	d := DiffSystems(old, new)
	classCounts(t, d, 0, 2, 0)
	for _, cd := range d.Components {
		if len(cd.OldRows) == 0 {
			t.Fatalf("split component over buckets %v has no warm-start rows", cd.Buckets)
		}
	}
}

// TestDiffSystemsNoBaseline: a nil old system — or one over a different
// Space — degrades every component to new.
func TestDiffSystemsNoBaseline(t *testing.T) {
	base, sp := diffFixture(t)
	new := base.Clone()
	new.MustAdd(krow([]int{sp.TermsInBucket(0)[0]}, 0.2, "k0"))
	d := DiffSystems(nil, new)
	classCounts(t, d, 0, 0, 1)

	otherBase, osp := diffFixture(t)
	other := otherBase.Clone()
	other.MustAdd(krow([]int{osp.TermsInBucket(0)[0]}, 0.2, "k0"))
	d = DiffSystems(other, new)
	classCounts(t, d, 0, 0, 1)
}
