package constraint

import (
	"bytes"
	"strings"
	"testing"

	"privacymaxent/internal/dataset"
)

// FuzzParseKnowledgeJSON hardens the knowledge-statement loader: no
// panics on arbitrary input, and accepted statements survive a
// write/parse round trip.
func FuzzParseKnowledgeJSON(f *testing.F) {
	f.Add(`[{"if": {"Gender": "male"}, "then": "Breast Cancer", "p": 0}]`)
	f.Add(`[{"if": {"Gender": "male", "Degree": "college"}, "not": true, "then": "Flu", "p": 0.5}]`)
	f.Add(`[]`)
	f.Add(`[{}]`)
	f.Add(`{"if": {}}`)
	f.Add(`[{"if": {"Gender": "male"}, "then": "Flu", "p": -3}]`)
	f.Fuzz(func(t *testing.T, input string) {
		schema := dataset.PaperExample().Schema()
		ks, err := ParseKnowledgeJSON(strings.NewReader(input), schema)
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteKnowledgeJSON(&buf, schema, ks); err != nil {
			t.Fatalf("accepted statements failed to serialize: %v", err)
		}
		back, err := ParseKnowledgeJSON(&buf, schema)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if len(back) != len(ks) {
			t.Fatalf("round trip changed count: %d vs %d", len(back), len(ks))
		}
	})
}
