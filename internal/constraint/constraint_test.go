package constraint

import (
	"math"
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"privacymaxent/internal/bucket"
	"privacymaxent/internal/dataset"
	"privacymaxent/internal/linalg"
)

// paperSpace builds the running-example space used throughout the paper.
func paperSpace(t *testing.T) (*dataset.Table, *bucket.Bucketized, *Space) {
	t.Helper()
	tbl := dataset.PaperExample()
	d, err := bucket.FromPartition(tbl, dataset.PaperBuckets())
	if err != nil {
		t.Fatal(err)
	}
	return tbl, d, NewSpace(d)
}

func TestSpacePaperExample(t *testing.T) {
	_, d, sp := paperSpace(t)
	// Bucket 1 has 3 distinct QIs and 3 distinct SAs, buckets 2 and 3
	// likewise: 9 terms each.
	if got := sp.Len(); got != 27 {
		t.Fatalf("space size = %d, want 27", got)
	}
	// Zero-invariants cover the rest of the 6*5*3 cross product (Eq. 6).
	if got := sp.NumZeroInvariants(); got != 90-27 {
		t.Fatalf("zero invariants = %d, want 63", got)
	}
	// Paper examples: q1 does not appear in bucket 3, s1 does not appear
	// in bucket 3.
	if !sp.IsZeroInvariant(Term{QID: 0, SA: 1, Bucket: 2}) {
		t.Fatal("P(q1, s2, 3) should be a zero-invariant")
	}
	if !sp.IsZeroInvariant(Term{QID: 1, SA: 0, Bucket: 2}) {
		t.Fatal("P(q2, s1, 3) should be a zero-invariant")
	}
	// In-space terms round-trip through the index.
	for i := 0; i < sp.Len(); i++ {
		id, ok := sp.Index(sp.Term(i))
		if !ok || id != i {
			t.Fatalf("term %d round-trips to (%d, %v)", i, id, ok)
		}
	}
	// Terms per bucket partition the space.
	total := 0
	for b := 0; b < d.NumBuckets(); b++ {
		total += len(sp.TermsInBucket(b))
	}
	if total != sp.Len() {
		t.Fatalf("bucket term lists cover %d terms, want %d", total, sp.Len())
	}
	if got := sp.Label(0); got != "P(q1, s1, 1)" {
		t.Fatalf("Label(0) = %q", got)
	}
}

func TestDataInvariantsPaperExample(t *testing.T) {
	_, d, sp := paperSpace(t)
	sys := DataInvariants(sp, InvariantOptions{})
	// 3 QI + 3 SA invariants per bucket, 3 buckets.
	if got := sys.Len(); got != 18 {
		t.Fatalf("system size = %d, want 18", got)
	}
	if got := sys.CountKind(QIInvariant); got != 9 {
		t.Fatalf("QI invariants = %d, want 9", got)
	}
	if got := sys.CountKind(SAInvariant); got != 9 {
		t.Fatalf("SA invariants = %d, want 9", got)
	}

	// Paper Sec. 5.2: P(q1,s1,1)+P(q1,s2,1)+P(q1,s3,1) = P(q1,1) = 2/10.
	found := false
	for i := 0; i < sys.Len(); i++ {
		c := sys.At(i)
		if c.Kind == QIInvariant && c.Label == "QI q1 b1" {
			found = true
			if len(c.Terms) != 3 {
				t.Fatalf("QI q1 b1 has %d terms, want 3", len(c.Terms))
			}
			if math.Abs(c.RHS-0.2) > 1e-12 {
				t.Fatalf("QI q1 b1 RHS = %g, want 0.2", c.RHS)
			}
		}
		// Paper Sec. 5.2: P(q1,s4,2)+P(q3,s4,2)+P(q4,s4,2) = P(s4,2) = 1/10.
		if c.Kind == SAInvariant && c.Label == "SA s4 b2" {
			if len(c.Terms) != 3 {
				t.Fatalf("SA s4 b2 has %d terms, want 3", len(c.Terms))
			}
			if math.Abs(c.RHS-0.1) > 1e-12 {
				t.Fatalf("SA s4 b2 RHS = %g, want 0.1", c.RHS)
			}
		}
	}
	if !found {
		t.Fatal("QI q1 b1 invariant not found")
	}
	_ = d
}

func TestDropRedundant(t *testing.T) {
	_, _, sp := paperSpace(t)
	full := DataInvariants(sp, InvariantOptions{})
	concise := DataInvariants(sp, InvariantOptions{DropRedundant: true})
	if got, want := concise.Len(), full.Len()-3; got != want {
		t.Fatalf("concise system has %d rows, want %d (one dropped per bucket)", got, want)
	}
	// Dropping must not lose information: ranks agree.
	fm, _ := full.Matrix()
	cm, _ := concise.Matrix()
	if fr, cr := linalg.Rank(fm.Dense(), 0), linalg.Rank(cm.Dense(), 0); fr != cr {
		t.Fatalf("rank changed after drop: %d vs %d", fr, cr)
	}
}

func TestSystemAddValidation(t *testing.T) {
	_, _, sp := paperSpace(t)
	sys := NewSystem(sp)
	if err := sys.Add(Constraint{Terms: []int{0}, Coeffs: []float64{1, 2}}); err == nil {
		t.Fatal("expected arity error")
	}
	if err := sys.Add(Constraint{Terms: []int{999}, Coeffs: []float64{1}}); err == nil {
		t.Fatal("expected range error")
	}
	if err := sys.Add(Constraint{Terms: []int{0, 0}, Coeffs: []float64{1, 1}}); err == nil {
		t.Fatal("expected duplicate error")
	}
	if err := sys.Add(Constraint{Terms: []int{0, 1}, Coeffs: []float64{1, 1}, RHS: 0.5}); err != nil {
		t.Fatal(err)
	}
}

func TestConstraintEvalAndString(t *testing.T) {
	c := Constraint{Terms: []int{0, 2}, Coeffs: []float64{1, 2}, RHS: 0.5, Label: "demo"}
	x := []float64{0.1, 9, 0.2}
	if got := c.Eval(x); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("Eval = %g, want 0.5", got)
	}
	if got := c.Residual(x); math.Abs(got) > 1e-12 {
		t.Fatalf("Residual = %g, want 0", got)
	}
	s := c.String()
	if !strings.Contains(s, "demo") || !strings.Contains(s, "2·x2") {
		t.Fatalf("String = %q", s)
	}
	empty := Constraint{RHS: 1}
	if got := empty.String(); !strings.Contains(got, "0 = 1") {
		t.Fatalf("empty String = %q", got)
	}
}

// TestBackgroundKnowledgeExpansionPaperExample reproduces the worked
// example of Sec. 4.1: P(Flu | male) = 0.3 expands to an ME constraint
// with right-hand side 0.3 · P(male) = 0.18. The in-space terms are
// P(q1,Flu,1), P(q3,Flu,1) and P(q6,Flu,3); the paper's rendering also
// lists P({male,college},Flu,3), which is pinned to zero by a
// Zero-invariant (q1 does not occur in bucket 3) and therefore omitted.
func TestBackgroundKnowledgeExpansionPaperExample(t *testing.T) {
	tbl, d, sp := paperSpace(t)
	gender := tbl.Schema().Index("Gender")
	male := tbl.Schema().Attr(gender).MustCode("male")
	flu := tbl.Schema().SA().MustCode("Flu")
	k := DistributionKnowledge{Attrs: []int{gender}, Values: []int{male}, SA: flu, P: 0.3}
	c, err := k.Constraint(sp)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.RHS-0.18) > 1e-12 {
		t.Fatalf("RHS = %g, want 0.18", c.RHS)
	}
	if len(c.Terms) != 3 {
		t.Fatalf("terms = %d, want 3", len(c.Terms))
	}
	wantTerms := map[Term]bool{
		{QID: 0, SA: flu, Bucket: 0}: true, // q1 = {male, college} in bucket 1
		{QID: 2, SA: flu, Bucket: 0}: true, // q3 = {male, high school} in bucket 1
		{QID: 5, SA: flu, Bucket: 2}: true, // q6 = {male, graduate} in bucket 3
	}
	for _, id := range c.Terms {
		if !wantTerms[sp.Term(id)] {
			t.Fatalf("unexpected term %v", sp.Term(id))
		}
	}
	if got := c.Label; !strings.Contains(got, "Flu") || !strings.Contains(got, "male") {
		t.Fatalf("label = %q", got)
	}
	_ = d
}

// TestKnowledgeSection55Example reproduces the optimization example of
// Sec. 5.5: P(s3 | q3) = 0.5 becomes P(q3,s3,1) + P(q3,s3,2) = 0.1.
func TestKnowledgeSection55Example(t *testing.T) {
	tbl, _, sp := paperSpace(t)
	gender := tbl.Schema().Index("Gender")
	degree := tbl.Schema().Index("Degree")
	// q3 = {male, high school}.
	k := DistributionKnowledge{
		Attrs:  []int{gender, degree},
		Values: []int{tbl.Schema().Attr(gender).MustCode("male"), tbl.Schema().Attr(degree).MustCode("high school")},
		SA:     tbl.Schema().SA().MustCode("Pneumonia"), // s3
		P:      0.5,
	}
	c, err := k.Constraint(sp)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.RHS-0.1) > 1e-12 {
		t.Fatalf("RHS = %g, want 0.1 (= 0.5 * 2/10)", c.RHS)
	}
	if len(c.Terms) != 2 {
		t.Fatalf("terms = %d, want 2", len(c.Terms))
	}
	for _, id := range c.Terms {
		tm := sp.Term(id)
		if tm.QID != 2 || tm.SA != 2 || tm.Bucket > 1 {
			t.Fatalf("unexpected term %v", tm)
		}
	}
}

func TestKnowledgeValidation(t *testing.T) {
	tbl, _, sp := paperSpace(t)
	gender := tbl.Schema().Index("Gender")
	male := tbl.Schema().Attr(gender).MustCode("male")
	cases := []DistributionKnowledge{
		{Attrs: nil, Values: nil, SA: 0, P: 0.5},                                 // no condition
		{Attrs: []int{gender}, Values: []int{male, male}, SA: 0, P: 0.5},         // arity
		{Attrs: []int{99}, Values: []int{0}, SA: 0, P: 0.5},                      // bad attr
		{Attrs: []int{0}, Values: []int{0}, SA: 0, P: 0.5},                       // Name is an ID, not QI
		{Attrs: []int{gender, gender}, Values: []int{male, male}, SA: 0, P: 0.5}, // duplicate attr
		{Attrs: []int{gender}, Values: []int{99}, SA: 0, P: 0.5},                 // bad value
		{Attrs: []int{gender}, Values: []int{male}, SA: 99, P: 0.5},              // bad SA
		{Attrs: []int{gender}, Values: []int{male}, SA: 0, P: 1.5},               // bad prob
	}
	for i, k := range cases {
		if _, err := k.Constraint(sp); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestAddKnowledgeAndRelevantBuckets(t *testing.T) {
	tbl, _, sp := paperSpace(t)
	sys := DataInvariants(sp, InvariantOptions{DropRedundant: true})
	gender := tbl.Schema().Index("Gender")
	degree := tbl.Schema().Index("Degree")
	k := DistributionKnowledge{
		Attrs:  []int{gender, degree},
		Values: []int{tbl.Schema().Attr(gender).MustCode("male"), tbl.Schema().Attr(degree).MustCode("high school")},
		SA:     tbl.Schema().SA().MustCode("Pneumonia"),
		P:      0.5,
	}
	if err := AddKnowledge(sys, k); err != nil {
		t.Fatal(err)
	}
	if got := sys.CountKind(Knowledge); got != 1 {
		t.Fatalf("knowledge constraints = %d, want 1", got)
	}
	// q3 and s3 live in buckets 1 and 2; bucket 3 is irrelevant
	// (Definition 5.6).
	got := RelevantBuckets(sys)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("RelevantBuckets = %v, want [0 1]", got)
	}
}

// TestInvariantSoundness is the property behind Theorem 1: every QI-, SA-
// (and, structurally, Zero-) invariant evaluates to its right-hand side
// under every assignment of SA values to QI values.
func TestInvariantSoundness(t *testing.T) {
	_, d, sp := paperSpace(t)
	sys := DataInvariants(sp, InvariantOptions{})
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		a := RandomAssignment(d, rng)
		for i := 0; i < sys.Len(); i++ {
			c := sys.At(i)
			if got := a.Eval(sp, c); math.Abs(got-c.RHS) > 1e-12 {
				t.Fatalf("trial %d: %s evaluates to %g, want %g", trial, c.Label, got, c.RHS)
			}
		}
		// The full vector also satisfies the assembled system.
		if v := sys.MaxViolation(a.Vector(sp)); v > 1e-12 {
			t.Fatalf("trial %d: max violation %g", trial, v)
		}
	}
}

// TestInvariantSoundnessRandomData extends the soundness property to
// randomly generated bucketizations.
func TestInvariantSoundnessRandomData(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		tbl := randomTestTable(rng, 30+rng.Intn(60), 2, 3, 5)
		d, _, err := bucket.Anatomize(tbl, bucket.Options{L: 3, ExemptMostFrequent: true})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		sp := NewSpace(d)
		sys := DataInvariants(sp, InvariantOptions{})
		for inner := 0; inner < 10; inner++ {
			a := RandomAssignment(d, rng)
			if v := sys.MaxViolation(a.Vector(sp)); v > 1e-12 {
				t.Fatalf("trial %d: violation %g", trial, v)
			}
		}
	}
}

// TestSingleTermNotInvariant checks the paper's Sec. 5.1 example: a lone
// probability term such as P(q1, s1, 1) is not an invariant — different
// assignments give it different values — and the completeness machinery
// agrees.
func TestSingleTermNotInvariant(t *testing.T) {
	_, d, sp := paperSpace(t)
	id, ok := sp.Index(Term{QID: 0, SA: 0, Bucket: 0})
	if !ok {
		t.Fatal("term missing")
	}
	c := Constraint{Terms: []int{id}, Coeffs: []float64{1}}
	rng := rand.New(rand.NewSource(1))
	values := map[float64]bool{}
	for trial := 0; trial < 100; trial++ {
		a := RandomAssignment(d, rng)
		values[a.Eval(sp, &c)] = true
	}
	if len(values) < 2 {
		t.Fatal("P(q1,s1,1) appears invariant across 100 random assignments")
	}
	// Completeness check agrees: the lone-term coefficient vector is not
	// in the row space of the base invariants.
	cols := sp.TermsInBucket(0)
	coeffs := make([]float64, len(cols))
	for i, termID := range cols {
		if termID == id {
			coeffs[i] = 1
		}
	}
	inv, err := IsInvariant(sp, 0, coeffs)
	if err != nil {
		t.Fatal(err)
	}
	if inv {
		t.Fatal("IsInvariant(P(q1,s1,1)) = true, want false")
	}
}

// TestCompletenessLinearCombos is the "if" direction of Theorem 2 plus a
// behavioural check of the "only if" direction: random linear combinations
// of base invariants are reported as invariants and evaluate to a constant
// across random assignments.
func TestCompletenessLinearCombos(t *testing.T) {
	_, d, sp := paperSpace(t)
	rng := rand.New(rand.NewSource(17))
	for b := 0; b < d.NumBuckets(); b++ {
		rows, _ := BucketMatrix(sp, b)
		for trial := 0; trial < 25; trial++ {
			combo := make([]float64, len(rows[0]))
			for _, row := range rows {
				w := float64(rng.Intn(5) - 2)
				linalg.Axpy(w, row, combo)
			}
			inv, err := IsInvariant(sp, b, combo)
			if err != nil {
				t.Fatal(err)
			}
			if !inv {
				t.Fatalf("bucket %d: linear combo not recognized as invariant", b)
			}
			// Behaviourally constant too.
			cols := sp.TermsInBucket(b)
			c := Constraint{Terms: cols, Coeffs: combo}
			first := RandomAssignment(d, rng).Eval(sp, &c)
			for inner := 0; inner < 20; inner++ {
				if got := RandomAssignment(d, rng).Eval(sp, &c); math.Abs(got-first) > 1e-12 {
					t.Fatalf("bucket %d: combo value varies: %g vs %g", b, got, first)
				}
			}
		}
	}
}

// TestConcisenessPaperExample verifies Theorem 3 on every bucket of the
// running example, including the Figure 3 identity
// (C1+C2+C3) − (C4+C5+C6) = 0 for bucket 1.
func TestConcisenessPaperExample(t *testing.T) {
	_, d, sp := paperSpace(t)
	for b := 0; b < d.NumBuckets(); b++ {
		if err := VerifyConciseness(sp, b); err != nil {
			t.Fatal(err)
		}
	}
	rows, _ := BucketMatrix(sp, 0)
	if len(rows) != 6 {
		t.Fatalf("bucket 1 has %d invariants, want 6 (g=3, h=3)", len(rows))
	}
	diff := make([]float64, len(rows[0]))
	for i, row := range rows {
		sign := 1.0
		if i >= 3 { // SA-invariants
			sign = -1
		}
		linalg.Axpy(sign, row, diff)
	}
	if linalg.NormInf(diff) > 1e-12 {
		t.Fatalf("Figure 3 identity violated: %v", diff)
	}
}

func TestConcisenessRandomBuckets(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 15; trial++ {
		tbl := randomTestTable(rng, 24+rng.Intn(40), 2, 3, 6)
		d, _, err := bucket.Anatomize(tbl, bucket.Options{L: 4, ExemptMostFrequent: true})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		sp := NewSpace(d)
		for b := 0; b < d.NumBuckets(); b++ {
			if err := VerifyConciseness(sp, b); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
		}
	}
}

func TestAssignmentFromTable(t *testing.T) {
	tbl, d, sp := paperSpace(t)
	a, err := AssignmentFromTable(tbl, d, dataset.PaperBuckets())
	if err != nil {
		t.Fatal(err)
	}
	// The original data is an assignment, so it satisfies every invariant.
	sys := DataInvariants(sp, InvariantOptions{})
	if v := sys.MaxViolation(a.Vector(sp)); v > 1e-12 {
		t.Fatalf("true data violates invariants by %g", v)
	}
	// Allen is (q1, Flu) in bucket 1; Brian is (q1, Pneumonia).
	flu := tbl.Schema().SA().MustCode("Flu")
	if got := a.Joint(0, flu, 0); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("Joint(q1, Flu, b1) = %g, want 0.1", got)
	}
	// Mismatched partitions are rejected.
	if _, err := AssignmentFromTable(tbl, d, [][]int{{0}}); err == nil {
		t.Fatal("expected partition arity error")
	}
	bad := [][]int{{0, 1, 2, 3}, {4, 5, 6}, {7, 8}}
	if _, err := AssignmentFromTable(tbl, d, bad); err == nil {
		t.Fatal("expected group size error")
	}
}

func TestIsInvariantArityError(t *testing.T) {
	_, _, sp := paperSpace(t)
	if _, err := IsInvariant(sp, 0, []float64{1}); err == nil {
		t.Fatal("expected coefficient arity error")
	}
}

func TestKindString(t *testing.T) {
	if QIInvariant.String() != "QI-invariant" || SAInvariant.String() != "SA-invariant" || Knowledge.String() != "knowledge" {
		t.Fatal("Kind.String mismatch")
	}
	if got := Kind(42).String(); !strings.Contains(got, "42") {
		t.Fatalf("unknown kind = %q", got)
	}
}

// randomTestTable builds a random microdata table for property tests.
func randomTestTable(rng *rand.Rand, rows, nQI, qiCard, saCard int) *dataset.Table {
	attrs := make([]*dataset.Attribute, 0, nQI+1)
	for i := 0; i < nQI; i++ {
		dom := make([]string, qiCard)
		for v := range dom {
			dom[v] = strconv.Itoa(v)
		}
		attrs = append(attrs, dataset.NewAttribute("Q"+strconv.Itoa(i), dataset.QuasiIdentifier, dom))
	}
	saDom := make([]string, saCard)
	for v := range saDom {
		saDom[v] = "s" + strconv.Itoa(v)
	}
	attrs = append(attrs, dataset.NewAttribute("SA", dataset.Sensitive, saDom))
	tbl := dataset.NewTable(dataset.MustSchema(attrs...))
	row := make([]int, nQI+1)
	for r := 0; r < rows; r++ {
		for i := 0; i < nQI; i++ {
			row[i] = rng.Intn(qiCard)
		}
		s := rng.Intn(saCard)
		if rng.Intn(3) == 0 {
			s = 0
		}
		row[nQI] = s
		if err := tbl.AppendCoded(row); err != nil {
			panic(err)
		}
	}
	return tbl
}

// TestNegatedConditionKnowledge covers the Sec. 4.4 rule forms ¬Q ⇒ S and
// ¬Q ⇒ ¬S: the condition matches every full QI tuple that differs from Qv.
func TestNegatedConditionKnowledge(t *testing.T) {
	tbl, d, sp := paperSpace(t)
	gender := tbl.Schema().Index("Gender")
	male := tbl.Schema().Attr(gender).MustCode("male")
	flu := tbl.Schema().SA().MustCode("Flu")

	// P(Flu | ¬male) = P(Flu | female) in a binary domain.
	neg := DistributionKnowledge{Attrs: []int{gender}, Values: []int{male}, Negated: true, SA: flu, P: 0.25}
	female := DistributionKnowledge{Attrs: []int{gender}, Values: []int{tbl.Schema().Attr(gender).MustCode("female")}, SA: flu, P: 0.25}
	cNeg, err := neg.Constraint(sp)
	if err != nil {
		t.Fatal(err)
	}
	cFem, err := female.Constraint(sp)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cNeg.RHS-cFem.RHS) > 1e-15 {
		t.Fatalf("RHS mismatch: ¬male %g vs female %g", cNeg.RHS, cFem.RHS)
	}
	if len(cNeg.Terms) != len(cFem.Terms) {
		t.Fatalf("terms differ: %d vs %d", len(cNeg.Terms), len(cFem.Terms))
	}
	for i := range cNeg.Terms {
		if cNeg.Terms[i] != cFem.Terms[i] {
			t.Fatalf("term %d differs", i)
		}
	}
	if !strings.Contains(cNeg.Label, "¬(") {
		t.Fatalf("label = %q, want negated rendering", cNeg.Label)
	}
	// P(¬male) = 4/10 females, so RHS = 0.25 * 0.4 = 0.1.
	if math.Abs(cNeg.RHS-0.1) > 1e-15 {
		t.Fatalf("RHS = %g, want 0.1", cNeg.RHS)
	}
	_ = d
}

// TestNegatedMultiAttribute: ¬(male ∧ college) matches everyone except q1.
func TestNegatedMultiAttribute(t *testing.T) {
	tbl, d, sp := paperSpace(t)
	gender := tbl.Schema().Index("Gender")
	degree := tbl.Schema().Index("Degree")
	k := DistributionKnowledge{
		Attrs: []int{gender, degree},
		Values: []int{
			tbl.Schema().Attr(gender).MustCode("male"),
			tbl.Schema().Attr(degree).MustCode("college"),
		},
		Negated: true,
		SA:      tbl.Schema().SA().MustCode("Flu"),
		P:       0.5,
	}
	c, err := k.Constraint(sp)
	if err != nil {
		t.Fatal(err)
	}
	// P(¬q1) = 7/10 (q1 = {male, college} has three records).
	if math.Abs(c.RHS-0.35) > 1e-12 {
		t.Fatalf("RHS = %g, want 0.5 * 0.7", c.RHS)
	}
	// No term involves q1.
	for _, id := range c.Terms {
		if sp.Term(id).QID == 0 {
			t.Fatal("negated condition must exclude q1")
		}
	}
	_ = d
}
