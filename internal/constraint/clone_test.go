package constraint

import "testing"

// TestSystemCloneIsolation checks the copy-on-append overlay: clones
// share the base constraints with the original, but appends to any of
// them — base or clone — are invisible to the others. This is what lets
// experiment sweeps build the data invariants once and append only the
// per-grid-point knowledge rows.
func TestSystemCloneIsolation(t *testing.T) {
	_, _, sp := paperSpace(t)
	base := DataInvariants(sp, InvariantOptions{DropRedundant: true})
	baseLen := base.Len()
	if baseLen == 0 {
		t.Fatal("empty base system")
	}

	row := func(term int, label string) Constraint {
		return Constraint{Kind: Knowledge, Terms: []int{term}, Coeffs: []float64{1}, RHS: 0.1, Label: label}
	}

	a, b := base.Clone(), base.Clone()
	if a.Len() != baseLen || b.Len() != baseLen {
		t.Fatalf("clone lengths %d/%d, want %d", a.Len(), b.Len(), baseLen)
	}
	if a.Space() != sp {
		t.Fatal("clone does not share the space")
	}
	if err := a.Add(row(0, "a0")); err != nil {
		t.Fatal(err)
	}
	if err := b.Add(row(1, "b0")); err != nil {
		t.Fatal(err)
	}
	if err := a.Add(row(2, "a1")); err != nil {
		t.Fatal(err)
	}
	// Appends to one clone never leak into the base or the sibling.
	if base.Len() != baseLen {
		t.Fatalf("base grew to %d after clone appends", base.Len())
	}
	if a.Len() != baseLen+2 || b.Len() != baseLen+1 {
		t.Fatalf("clone lengths %d/%d, want %d/%d", a.Len(), b.Len(), baseLen+2, baseLen+1)
	}
	if got := a.At(baseLen).Label; got != "a0" {
		t.Fatalf("a's first append = %q, want a0", got)
	}
	if got := b.At(baseLen).Label; got != "b0" {
		t.Fatalf("b's first append = %q, want b0 (a's append leaked into b)", got)
	}

	// Appending to the base after cloning is equally isolated.
	base.MustAdd(row(3, "base0"))
	if a.Len() != baseLen+2 || b.Len() != baseLen+1 {
		t.Fatal("base append leaked into a clone")
	}

	// The shared prefix is genuinely shared, not copied.
	for i := 0; i < baseLen; i++ {
		if a.At(i) != base.At(i) && &a.At(i).Terms[0] != &base.At(i).Terms[0] {
			t.Fatalf("clone copied constraint %d instead of sharing it", i)
		}
	}
}
