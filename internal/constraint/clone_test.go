package constraint

import "testing"

// TestSystemCloneIsolation checks the copy-on-append overlay: clones
// share the base constraints with the original, but appends to any of
// them — base or clone — are invisible to the others. This is what lets
// experiment sweeps build the data invariants once and append only the
// per-grid-point knowledge rows.
func TestSystemCloneIsolation(t *testing.T) {
	_, _, sp := paperSpace(t)
	base := DataInvariants(sp, InvariantOptions{DropRedundant: true})
	baseLen := base.Len()
	if baseLen == 0 {
		t.Fatal("empty base system")
	}

	row := func(term int, label string) Constraint {
		return Constraint{Kind: Knowledge, Terms: []int{term}, Coeffs: []float64{1}, RHS: 0.1, Label: label}
	}

	a, b := base.Clone(), base.Clone()
	if a.Len() != baseLen || b.Len() != baseLen {
		t.Fatalf("clone lengths %d/%d, want %d", a.Len(), b.Len(), baseLen)
	}
	if a.Space() != sp {
		t.Fatal("clone does not share the space")
	}
	if err := a.Add(row(0, "a0")); err != nil {
		t.Fatal(err)
	}
	if err := b.Add(row(1, "b0")); err != nil {
		t.Fatal(err)
	}
	if err := a.Add(row(2, "a1")); err != nil {
		t.Fatal(err)
	}
	// Appends to one clone never leak into the base or the sibling.
	if base.Len() != baseLen {
		t.Fatalf("base grew to %d after clone appends", base.Len())
	}
	if a.Len() != baseLen+2 || b.Len() != baseLen+1 {
		t.Fatalf("clone lengths %d/%d, want %d/%d", a.Len(), b.Len(), baseLen+2, baseLen+1)
	}
	if got := a.At(baseLen).Label; got != "a0" {
		t.Fatalf("a's first append = %q, want a0", got)
	}
	if got := b.At(baseLen).Label; got != "b0" {
		t.Fatalf("b's first append = %q, want b0 (a's append leaked into b)", got)
	}

	// Appending to the base after cloning is equally isolated.
	base.MustAdd(row(3, "base0"))
	if a.Len() != baseLen+2 || b.Len() != baseLen+1 {
		t.Fatal("base append leaked into a clone")
	}

	// The shared prefix is genuinely shared, not copied.
	for i := 0; i < baseLen; i++ {
		if a.At(i) != base.At(i) && &a.At(i).Terms[0] != &base.At(i).Terms[0] {
			t.Fatalf("clone copied constraint %d instead of sharing it", i)
		}
	}
}

// TestSystemCloneBaseMutationGuard pins the copy-on-write guard: once a
// clone exists, appending to the base — repeatedly, and interleaved with
// clone appends in any order — can never alias into the overlay. The
// original overlay relied on the capacity clamp alone, which kept base
// appends out of the clones' *views* but still wrote them into shared
// backing storage whenever capacity allowed; the guard copies before the
// first post-clone append on either side, making isolation structural.
func TestSystemCloneBaseMutationGuard(t *testing.T) {
	_, _, sp := paperSpace(t)
	base := DataInvariants(sp, InvariantOptions{DropRedundant: true})
	baseLen := base.Len()

	row := func(term int, label string) Constraint {
		return Constraint{Kind: Knowledge, Terms: []int{term}, Coeffs: []float64{1}, RHS: 0.1, Label: label}
	}
	snapshot := func(s *System) []Constraint {
		out := make([]Constraint, s.Len())
		for i := range out {
			out[i] = *s.At(i)
		}
		return out
	}
	same := func(a, b Constraint) bool {
		if a.Kind != b.Kind || a.Label != b.Label || a.RHS != b.RHS || len(a.Terms) != len(b.Terms) {
			return false
		}
		for k := range a.Terms {
			if a.Terms[k] != b.Terms[k] || a.Coeffs[k] != b.Coeffs[k] {
				return false
			}
		}
		return true
	}

	clone := base.Clone()
	clone.MustAdd(row(0, "c0"))
	want := snapshot(clone)

	// Grow the base far past the clone's length; every append must copy
	// out of (or stay out of) the storage the clone reads.
	for i := 0; i < 8; i++ {
		base.MustAdd(row(i%sp.Len(), "base-grow"))
	}
	if clone.Len() != len(want) {
		t.Fatalf("clone length %d after base growth, want %d", clone.Len(), len(want))
	}
	for i := range want {
		if !same(*clone.At(i), want[i]) {
			t.Fatalf("base growth mutated clone row %d: got %v, want %v", i, clone.At(i), &want[i])
		}
	}

	// Interleave: clone append, base append, clone append — both stay
	// isolated, contents included.
	clone.MustAdd(row(1, "c1"))
	base.MustAdd(row(2, "base-late"))
	clone.MustAdd(row(3, "c2"))
	if got := clone.At(clone.Len() - 2).Label; got != "c1" {
		t.Fatalf("clone row overwritten by interleaved base append: got %q, want c1", got)
	}
	if got := base.At(base.Len() - 1).Label; got != "base-late" {
		t.Fatalf("base row overwritten by interleaved clone append: got %q, want base-late", got)
	}
	for i := 0; i < base.Len(); i++ {
		if base.At(i).Label == "c0" || base.At(i).Label == "c1" || base.At(i).Label == "c2" {
			t.Fatalf("clone append %q leaked into base at row %d", base.At(i).Label, i)
		}
	}

	// A fresh clone of the grown base sees the new rows.
	fresh := base.Clone()
	if fresh.Len() != baseLen+9 {
		t.Fatalf("fresh clone length %d, want %d", fresh.Len(), baseLen+9)
	}
	if got := fresh.At(fresh.Len() - 1).Label; got != "base-late" {
		t.Fatalf("fresh clone tail = %q, want base-late", got)
	}
}
