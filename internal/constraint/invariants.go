package constraint

import (
	"fmt"

	"privacymaxent/internal/bucket"
)

// InvariantOptions tunes the data-constraint builder.
type InvariantOptions struct {
	// DropRedundant removes one SA-invariant per bucket. Theorem 3
	// (conciseness) proves that the g+h base invariants of a bucket have
	// exactly one linear dependency — the sum of QI-invariants equals the
	// sum of SA-invariants — so dropping any single one leaves a minimal
	// complete set. Redundant rows are harmless to MaxEnt but cost
	// iterations, as the paper's Sec. 5.4 notes.
	DropRedundant bool
}

// DataInvariants builds the complete set of invariant equations of D′
// (Sec. 5.2): one QI-invariant per distinct QI value per bucket (Eq. 4)
// and one SA-invariant per distinct SA value per bucket (Eq. 5).
// Zero-invariants (Eq. 6) are represented structurally: the Space simply
// has no variable for terms outside a bucket's support.
func DataInvariants(sp *Space, opts InvariantOptions) *System {
	sys := NewSystem(sp)
	d := sp.Data()
	for b := 0; b < d.NumBuckets(); b++ {
		bk := d.Bucket(b)
		appendBucketInvariants(sys, sp, d, bk, b, opts)
	}
	return sys
}

// appendBucketInvariants adds bucket b's QI- and SA-invariants to sys.
func appendBucketInvariants(sys *System, sp *Space, d *bucket.Bucketized, bk *bucket.Bucket, b int, opts InvariantOptions) {
	qids := bk.DistinctQIDs()
	sas := bk.DistinctSAs()

	for _, q := range qids {
		terms := make([]int, 0, len(sas))
		coeffs := make([]float64, 0, len(sas))
		for _, s := range sas {
			id, ok := sp.Index(Term{QID: q, SA: s, Bucket: b})
			if !ok {
				panic("constraint: bucket term missing from space")
			}
			terms = append(terms, id)
			coeffs = append(coeffs, 1)
		}
		sys.MustAdd(Constraint{
			Kind:   QIInvariant,
			Label:  fmt.Sprintf("QI q%d b%d", q+1, b+1),
			Terms:  terms,
			Coeffs: coeffs,
			RHS:    d.PQB(q, b),
		})
	}

	// Per Theorem 3, dropping any one row per bucket keeps completeness;
	// we drop the last SA-invariant.
	limit := len(sas)
	if opts.DropRedundant && len(qids) > 0 {
		limit--
	}
	for k := 0; k < limit; k++ {
		s := sas[k]
		terms := make([]int, 0, len(qids))
		coeffs := make([]float64, 0, len(qids))
		for _, q := range qids {
			id, ok := sp.Index(Term{QID: q, SA: s, Bucket: b})
			if !ok {
				panic("constraint: bucket term missing from space")
			}
			terms = append(terms, id)
			coeffs = append(coeffs, 1)
		}
		sys.MustAdd(Constraint{
			Kind:   SAInvariant,
			Label:  fmt.Sprintf("SA s%d b%d", s+1, b+1),
			Terms:  terms,
			Coeffs: coeffs,
			RHS:    d.PSB(s, b),
		})
	}
}
