package constraint

import (
	"fmt"
	"sort"
	"strings"

	"privacymaxent/internal/bucket"
	"privacymaxent/internal/dataset"
)

// DistributionKnowledge is background knowledge about the data
// distribution (Sec. 4.1): a conditional probability P(S = sa | Qv) = P
// where Qv fixes the values of a subset of the QI attributes. The breast
// cancer example is P(Breast Cancer | Male) = 0; association rules mined
// from the original data give P equal to the rule confidence.
type DistributionKnowledge struct {
	// Attrs holds schema positions of the conditioned QI attributes and
	// Values their required codes; parallel slices, at least one entry.
	Attrs  []int
	Values []int
	// Negated flips the condition to ¬Qv: the statement becomes
	// P(SA | ¬Qv) = P, covering the remaining negative association-rule
	// forms the paper lists in Sec. 4.4 (¬Q ⇒ S and ¬Q ⇒ ¬S). A full QI
	// tuple matches ¬Qv when it differs from Qv on at least one
	// conditioned attribute.
	Negated bool
	// SA is the sensitive code the probability refers to.
	SA int
	// P is the asserted conditional probability P(SA | Qv) ∈ [0, 1]
	// (P(SA | ¬Qv) when Negated).
	P float64
}

// Validate checks the knowledge statement against a schema.
func (k *DistributionKnowledge) Validate(d *bucket.Bucketized) error {
	if len(k.Attrs) == 0 {
		return fmt.Errorf("constraint: knowledge conditions on no QI attribute")
	}
	if len(k.Attrs) != len(k.Values) {
		return fmt.Errorf("constraint: knowledge has %d attributes but %d values", len(k.Attrs), len(k.Values))
	}
	schema := d.Schema()
	seen := map[int]bool{}
	for i, a := range k.Attrs {
		if a < 0 || a >= schema.Len() {
			return fmt.Errorf("constraint: attribute position %d out of range", a)
		}
		if schema.Attr(a).Role != dataset.QuasiIdentifier {
			return fmt.Errorf("constraint: attribute %q is not a quasi-identifier", schema.Attr(a).Name)
		}
		if seen[a] {
			return fmt.Errorf("constraint: attribute %q conditioned twice", schema.Attr(a).Name)
		}
		seen[a] = true
		if v := k.Values[i]; v < 0 || v >= schema.Attr(a).Cardinality() {
			return fmt.Errorf("constraint: value code %d out of range for attribute %q", v, schema.Attr(a).Name)
		}
	}
	if k.SA < 0 || k.SA >= schema.SA().Cardinality() {
		return fmt.Errorf("constraint: SA code %d out of range", k.SA)
	}
	if k.P < 0 || k.P > 1 {
		return fmt.Errorf("constraint: probability %g outside [0,1]", k.P)
	}
	return nil
}

// qiPositions locates each conditioned attribute's position within the
// QI projection, hoisted out of the per-qid matching loop (the scan over
// the universe runs once per knowledge statement, so the lookup must not
// repeat per tuple). A missing attribute yields -1 and never matches.
func (k *DistributionKnowledge) qiPositions(d *bucket.Bucketized) []int {
	qiIdx := d.Schema().QIIndices()
	pos := make([]int, len(k.Attrs))
	for i, a := range k.Attrs {
		pos[i] = -1
		for p, idx := range qiIdx {
			if idx == a {
				pos[i] = p
				break
			}
		}
	}
	return pos
}

// matchesQID reports whether the knowledge's condition (Qv, or ¬Qv when
// Negated) holds for the full QI tuple of qid, given the attribute
// positions from qiPositions.
func (k *DistributionKnowledge) matchesQID(d *bucket.Bucketized, pos []int, qid int) bool {
	codes := d.Universe().Codes(qid)
	all := true
	for i, p := range pos {
		if p < 0 || codes[p] != k.Values[i] {
			all = false
			break
		}
	}
	return all != k.Negated
}

// Constraint converts the knowledge to an ME constraint over the space,
// following Sec. 4.1: sum over buckets B and over the unconditioned QI
// attributes Q⁻ of P(Qv, Q⁻, s, B), with right-hand side P·P(Qv), where
// P(Qv) is the sample probability of the condition in the published data
// (the QI attributes of D′ are undisguised, so this is exact). Terms
// pinned to zero by Zero-invariants are omitted from the sum.
func (k *DistributionKnowledge) Constraint(sp *Space) (Constraint, error) {
	d := sp.Data()
	if err := k.Validate(d); err != nil {
		return Constraint{}, err
	}
	u := d.Universe()
	pos := k.qiPositions(d)
	var pqv float64
	var terms []int
	for qid := 0; qid < u.Len(); qid++ {
		if !k.matchesQID(d, pos, qid) {
			continue
		}
		pqv += u.P(qid)
		for _, b := range d.BucketsWithQID(qid) {
			if id, ok := sp.Index(Term{QID: qid, SA: k.SA, Bucket: b}); ok {
				terms = append(terms, id)
			}
		}
	}
	sort.Ints(terms)
	coeffs := make([]float64, len(terms))
	for i := range coeffs {
		coeffs[i] = 1
	}
	return Constraint{
		Kind:   Knowledge,
		Label:  k.label(d),
		Terms:  terms,
		Coeffs: coeffs,
		RHS:    k.P * pqv,
	}, nil
}

// label renders the statement, e.g. "P(Flu | Gender=male) = 0.3" or
// "P(Flu | ¬(Gender=male)) = 0.3".
func (k *DistributionKnowledge) label(d *bucket.Bucketized) string {
	schema := d.Schema()
	conds := make([]string, len(k.Attrs))
	for i, a := range k.Attrs {
		conds[i] = fmt.Sprintf("%s=%s", schema.Attr(a).Name, schema.Attr(a).Value(k.Values[i]))
	}
	body := strings.Join(conds, ",")
	if k.Negated {
		body = "¬(" + body + ")"
	}
	return fmt.Sprintf("P(%s | %s) = %g", schema.SA().Value(k.SA), body, k.P)
}

// AddKnowledge converts each knowledge statement and appends it to the
// system, reporting the first conversion or validation error.
func AddKnowledge(sys *System, ks ...DistributionKnowledge) error {
	for i := range ks {
		c, err := ks[i].Constraint(sys.Space())
		if err != nil {
			return fmt.Errorf("constraint: knowledge %d: %w", i, err)
		}
		if err := sys.Add(c); err != nil {
			return fmt.Errorf("constraint: knowledge %d: %w", i, err)
		}
	}
	return nil
}

// RelevantBuckets returns the sorted bucket indices mentioned by any
// Knowledge-kind constraint in the system — the complement of the paper's
// irrelevant buckets (Definition 5.6). Buckets outside this set keep their
// closed-form within-bucket MaxEnt distribution (Theorem 5).
func RelevantBuckets(sys *System) []int {
	return bucketsTouchedBy(sys, func(k Kind) bool { return k == Knowledge })
}

// TouchedBuckets generalizes RelevantBuckets to every non-invariant
// constraint kind: a bucket is touched when any row that is not one of
// its own QI/SA data invariants mentions one of its terms with a nonzero
// coefficient — background knowledge (Definition 5.6), individual
// knowledge (Sec. 6), or any future coupling row. Buckets outside the
// returned set interact with nothing beyond their own invariants, so
// their posterior is the closed-form within-bucket MaxEnt distribution
// (Theorem 5) and the structural presolve assigns it without entering
// the numeric solve.
func TouchedBuckets(sys *System) []int {
	return bucketsTouchedBy(sys, func(k Kind) bool {
		return k != QIInvariant && k != SAInvariant
	})
}

// bucketsTouchedBy returns the sorted buckets mentioned (with nonzero
// coefficient) by any constraint whose kind satisfies match.
func bucketsTouchedBy(sys *System, match func(Kind) bool) []int {
	seen := map[int]bool{}
	for i := 0; i < sys.Len(); i++ {
		c := sys.At(i)
		if !match(c.Kind) {
			continue
		}
		for k, t := range c.Terms {
			if c.Coeffs[k] == 0 {
				continue
			}
			seen[sys.Space().Term(t).Bucket] = true
		}
	}
	out := make([]int, 0, len(seen))
	for b := range seen {
		out = append(out, b)
	}
	sort.Ints(out)
	return out
}
