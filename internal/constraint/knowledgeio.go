package constraint

import (
	"encoding/json"
	"fmt"
	"io"

	"privacymaxent/internal/dataset"
)

// knowledgeDoc is the JSON form of one distribution-knowledge statement:
//
//	{"if": {"Gender": "male"}, "then": "Breast Cancer", "p": 0}
//
// reads as P(Breast Cancer | Gender=male) = 0. Setting "not": true
// negates the condition: P(... | ¬(Gender=male)) = p.
type knowledgeDoc struct {
	If   map[string]string `json:"if"`
	Not  bool              `json:"not,omitempty"`
	Then string            `json:"then"`
	P    float64           `json:"p"`
}

// ParseKnowledgeJSON reads a JSON array of knowledge statements and
// resolves attribute and value names against the schema. This is how
// external adversary models (or the data publisher's assumptions) enter
// the CLI without access to the original data.
func ParseKnowledgeJSON(r io.Reader, schema *dataset.Schema) ([]DistributionKnowledge, error) {
	var docs []knowledgeDoc
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&docs); err != nil {
		return nil, fmt.Errorf("constraint: decoding knowledge JSON: %w", err)
	}
	out := make([]DistributionKnowledge, 0, len(docs))
	for i, doc := range docs {
		k, err := resolveKnowledge(doc, schema)
		if err != nil {
			return nil, fmt.Errorf("constraint: knowledge %d: %w", i, err)
		}
		out = append(out, k)
	}
	return out, nil
}

func resolveKnowledge(doc knowledgeDoc, schema *dataset.Schema) (DistributionKnowledge, error) {
	if len(doc.If) == 0 {
		return DistributionKnowledge{}, fmt.Errorf(`empty "if" condition`)
	}
	if schema.SAIndex() < 0 {
		return DistributionKnowledge{}, fmt.Errorf("schema has no sensitive attribute")
	}
	k := DistributionKnowledge{P: doc.P, Negated: doc.Not}
	// Resolve conditions in schema order for determinism.
	for _, pos := range schema.QIIndices() {
		attr := schema.Attr(pos)
		value, ok := doc.If[attr.Name]
		if !ok {
			continue
		}
		code, ok := attr.Code(value)
		if !ok {
			return DistributionKnowledge{}, fmt.Errorf("value %q not in domain of %q", value, attr.Name)
		}
		k.Attrs = append(k.Attrs, pos)
		k.Values = append(k.Values, code)
	}
	if len(k.Attrs) != len(doc.If) {
		for name := range doc.If {
			if a, ok := schema.AttrByName(name); !ok || a.Role != dataset.QuasiIdentifier {
				return DistributionKnowledge{}, fmt.Errorf("%q is not a quasi-identifier attribute", name)
			}
		}
		return DistributionKnowledge{}, fmt.Errorf("condition references a non-QI attribute")
	}
	sa, ok := schema.SA().Code(doc.Then)
	if !ok {
		return DistributionKnowledge{}, fmt.Errorf("value %q not in the sensitive domain", doc.Then)
	}
	k.SA = sa
	return k, nil
}

// WriteKnowledgeJSON serializes knowledge statements in the same format
// ParseKnowledgeJSON reads, so mined Top-(K+, K−) bounds can be exported,
// audited and replayed.
func WriteKnowledgeJSON(w io.Writer, schema *dataset.Schema, ks []DistributionKnowledge) error {
	docs := make([]knowledgeDoc, 0, len(ks))
	for i, k := range ks {
		if len(k.Attrs) != len(k.Values) {
			return fmt.Errorf("constraint: knowledge %d has mismatched attrs/values", i)
		}
		doc := knowledgeDoc{If: make(map[string]string, len(k.Attrs)), Not: k.Negated, P: k.P}
		for j, pos := range k.Attrs {
			if pos < 0 || pos >= schema.Len() {
				return fmt.Errorf("constraint: knowledge %d attribute %d out of range", i, pos)
			}
			attr := schema.Attr(pos)
			doc.If[attr.Name] = attr.Value(k.Values[j])
		}
		if k.SA < 0 || k.SA >= schema.SA().Cardinality() {
			return fmt.Errorf("constraint: knowledge %d SA code out of range", i)
		}
		doc.Then = schema.SA().Value(k.SA)
		docs = append(docs, doc)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(docs)
}
