// Package constraint implements the paper's constraint language: the
// variable space of probability terms P(q, s, b), probability expressions,
// the sound/complete/concise invariant equations derived from the
// published data D′ (Section 5), ME constraints formulated from background
// knowledge about data distributions (Section 4) and about individuals
// (Section 6), plus the assignment semantics (Definitions 5.2–5.5) that
// property tests use to verify soundness and completeness.
package constraint

import (
	"fmt"

	"privacymaxent/internal/bucket"
)

// Term identifies one probability term P(q, s, b): a QI tuple (by qid), an
// SA code, and a 0-based bucket index.
type Term struct {
	QID    int
	SA     int
	Bucket int
}

// Space enumerates the probability terms that can be non-zero for a given
// published data set: exactly those (q, s, b) with q ∈ QI(b) and
// s ∈ SA(b). Every other term is pinned to zero by a Zero-invariant
// (Eq. 6) and never becomes a solver variable. Terms get dense indices so
// the MaxEnt problem can use flat vectors.
type Space struct {
	data  *bucket.Bucketized
	terms []Term
	index map[Term]int

	// byBucket[b] lists the indices of the terms of bucket b, so
	// per-bucket decomposition can carve out sub-problems.
	byBucket [][]int
}

// NewSpace builds the term space of D′. Terms are ordered bucket-major,
// then by qid, then by SA code, deterministically.
func NewSpace(d *bucket.Bucketized) *Space {
	sp := &Space{
		data:     d,
		index:    make(map[Term]int),
		byBucket: make([][]int, d.NumBuckets()),
	}
	for b := 0; b < d.NumBuckets(); b++ {
		bk := d.Bucket(b)
		qids := bk.DistinctQIDs()
		sas := bk.DistinctSAs()
		for _, q := range qids {
			for _, s := range sas {
				t := Term{QID: q, SA: s, Bucket: b}
				id := len(sp.terms)
				sp.index[t] = id
				sp.terms = append(sp.terms, t)
				sp.byBucket[b] = append(sp.byBucket[b], id)
			}
		}
	}
	return sp
}

// Data returns the published data set the space was built from.
func (sp *Space) Data() *bucket.Bucketized { return sp.data }

// Len reports the number of terms (solver variables before presolve).
func (sp *Space) Len() int { return len(sp.terms) }

// Term returns the term with dense index i.
func (sp *Space) Term(i int) Term { return sp.terms[i] }

// Index maps a term to its dense index. ok is false when the term is
// outside the space, i.e. pinned to zero by a Zero-invariant.
func (sp *Space) Index(t Term) (int, bool) {
	i, ok := sp.index[t]
	return i, ok
}

// TermsInBucket returns the dense indices of bucket b's terms. The slice
// must not be modified.
func (sp *Space) TermsInBucket(b int) []int { return sp.byBucket[b] }

// IsZeroInvariant reports whether P(q, s, b) = 0 is forced by Eq. (6),
// i.e. q or s does not appear in bucket b. Callers must pass a bucket
// index within range.
func (sp *Space) IsZeroInvariant(t Term) bool {
	_, inSpace := sp.index[t]
	return !inSpace
}

// NumZeroInvariants counts the Zero-invariant equations over the full
// cross product QI × SA × buckets, as the paper's Eq. (6) enumerates them.
func (sp *Space) NumZeroInvariants() int {
	full := sp.data.Universe().Len() * sp.data.SACardinality() * sp.data.NumBuckets()
	return full - len(sp.terms)
}

// Label renders a term in the paper's notation, e.g. "P(q1, s2, 1)" with
// 1-based bucket indices.
func (sp *Space) Label(i int) string {
	t := sp.terms[i]
	return fmt.Sprintf("P(q%d, s%d, %d)", t.QID+1, t.SA+1, t.Bucket+1)
}
