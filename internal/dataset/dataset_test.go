package dataset

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestAttributeCoding(t *testing.T) {
	a := NewAttribute("Degree", QuasiIdentifier, []string{"junior", "college", "graduate"})
	if got := a.Cardinality(); got != 3 {
		t.Fatalf("Cardinality = %d, want 3", got)
	}
	c, ok := a.Code("college")
	if !ok || c != 1 {
		t.Fatalf("Code(college) = %d, %v; want 1, true", c, ok)
	}
	if _, ok := a.Code("phd"); ok {
		t.Fatal("Code(phd) unexpectedly found")
	}
	if got := a.Value(2); got != "graduate" {
		t.Fatalf("Value(2) = %q, want graduate", got)
	}
}

func TestAttributeDuplicateDomainPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate domain value")
		}
	}()
	NewAttribute("X", Sensitive, []string{"a", "a"})
}

func TestRoleString(t *testing.T) {
	cases := map[Role]string{Identifier: "ID", QuasiIdentifier: "QI", Sensitive: "SA", Role(9): "Role(9)"}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("Role(%d).String() = %q, want %q", int(r), got, want)
		}
	}
}

func TestSchemaRoles(t *testing.T) {
	tbl := PaperExample()
	s := tbl.Schema()
	if got := s.NumQI(); got != 2 {
		t.Fatalf("NumQI = %d, want 2", got)
	}
	if got := s.SA().Name; got != "Disease" {
		t.Fatalf("SA attribute = %q, want Disease", got)
	}
	if got := len(s.IDIndices()); got != 1 {
		t.Fatalf("ID attributes = %d, want 1", got)
	}
	if got := s.Index("Gender"); got != 1 {
		t.Fatalf("Index(Gender) = %d, want 1", got)
	}
	if got := s.Index("nope"); got != -1 {
		t.Fatalf("Index(nope) = %d, want -1", got)
	}
	if _, ok := s.AttrByName("Degree"); !ok {
		t.Fatal("AttrByName(Degree) not found")
	}
}

func TestSchemaRejectsTwoSensitive(t *testing.T) {
	a := NewAttribute("a", Sensitive, []string{"x"})
	b := NewAttribute("b", Sensitive, []string{"y"})
	if _, err := NewSchema(a, b); err == nil {
		t.Fatal("expected error for two sensitive attributes")
	}
}

func TestSchemaRejectsDuplicateNames(t *testing.T) {
	a := NewAttribute("a", QuasiIdentifier, []string{"x"})
	b := NewAttribute("a", Sensitive, []string{"y"})
	if _, err := NewSchema(a, b); err == nil {
		t.Fatal("expected error for duplicate attribute names")
	}
}

func TestTableAppendValidation(t *testing.T) {
	tbl := NewTable(PaperExample().Schema())
	if err := tbl.Append("Allen", "male", "college"); err == nil {
		t.Fatal("expected arity error")
	}
	if err := tbl.Append("Allen", "male", "phd", "Flu"); err == nil {
		t.Fatal("expected domain error")
	}
	if err := tbl.AppendCoded([]int{0, 0, 99, 0}); err == nil {
		t.Fatal("expected out-of-range code error")
	}
	if err := tbl.AppendCoded([]int{0, 0}); err == nil {
		t.Fatal("expected arity error on coded append")
	}
}

func TestPaperExampleAbstractForm(t *testing.T) {
	tbl := PaperExample()
	u := NewUniverse(tbl)
	if u.Len() != 6 {
		t.Fatalf("distinct QI tuples = %d, want 6", u.Len())
	}
	if u.Total() != 10 {
		t.Fatalf("Total = %d, want 10", u.Total())
	}
	// q1 = {male, college} appears three times (paper, Sec. 3.1).
	q1, ok := u.QID(tbl.QIKey(0))
	if !ok {
		t.Fatal("q1 not found")
	}
	if got := u.Count(q1); got != 3 {
		t.Fatalf("Count(q1) = %d, want 3", got)
	}
	if got := u.P(q1); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("P(q1) = %g, want 0.3", got)
	}
	if got := u.Label(q1); got != "q1" {
		t.Fatalf("Label = %q, want q1", got)
	}
	if got := u.Display(q1); got != "{male, college}" {
		t.Fatalf("Display(q1) = %q", got)
	}
	// s-symbols follow the Disease domain order.
	sa := tbl.Schema().SA()
	wantSA := []string{"Breast Cancer", "Flu", "Pneumonia", "HIV", "Lung Cancer"}
	if !reflect.DeepEqual(sa.Domain, wantSA) {
		t.Fatalf("SA domain = %v, want %v", sa.Domain, wantSA)
	}
}

func TestTrueConditionalPaperExample(t *testing.T) {
	tbl := PaperExample()
	u := NewUniverse(tbl)
	truth, err := TrueConditional(tbl, u)
	if err != nil {
		t.Fatal(err)
	}
	// q1 = {male, college}: Allen has Flu, Brian Pneumonia, Ethan HIV.
	q1, _ := u.QID(tbl.QIKey(0))
	flu := tbl.Schema().SA().MustCode("Flu")
	hiv := tbl.Schema().SA().MustCode("HIV")
	bc := tbl.Schema().SA().MustCode("Breast Cancer")
	third := 1.0 / 3.0
	if got := truth.P(q1, flu); math.Abs(got-third) > 1e-12 {
		t.Fatalf("P(Flu|q1) = %g, want 1/3", got)
	}
	if got := truth.P(q1, hiv); math.Abs(got-third) > 1e-12 {
		t.Fatalf("P(HIV|q1) = %g, want 1/3", got)
	}
	if got := truth.P(q1, bc); got != 0 {
		t.Fatalf("P(BreastCancer|q1) = %g, want 0", got)
	}
	// Every row sums to 1.
	for qid := 0; qid < u.Len(); qid++ {
		var sum float64
		for s := 0; s < truth.NumSA(); s++ {
			sum += truth.P(qid, s)
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("row %d sums to %g", qid, sum)
		}
	}
}

func TestConditionalNormalize(t *testing.T) {
	tbl := PaperExample()
	u := NewUniverse(tbl)
	c := NewConditional(u, 3)
	c.Add(0, 0, 2)
	c.Add(0, 1, 2)
	c.Normalize()
	if got := c.P(0, 0); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("P = %g, want 0.5", got)
	}
	// Zero rows stay zero.
	if got := c.P(1, 0); got != 0 {
		t.Fatalf("zero row changed: %g", got)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tbl := PaperExample()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tbl); err != nil {
		t.Fatal(err)
	}
	roles := map[string]Role{
		"Name":    Identifier,
		"Gender":  QuasiIdentifier,
		"Degree":  QuasiIdentifier,
		"Disease": Sensitive,
	}
	got, err := ReadCSV(bytes.NewReader(buf.Bytes()), roles)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tbl.Len() {
		t.Fatalf("rows = %d, want %d", got.Len(), tbl.Len())
	}
	for row := 0; row < tbl.Len(); row++ {
		for col := 0; col < tbl.Schema().Len(); col++ {
			if got.Value(row, col) != tbl.Value(row, col) {
				t.Fatalf("cell (%d,%d) = %q, want %q", row, col, got.Value(row, col), tbl.Value(row, col))
			}
		}
	}
	if got.Schema().SA().Name != "Disease" {
		t.Fatalf("SA role lost in round trip")
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader(""), nil); err == nil {
		t.Fatal("expected error for empty csv")
	}
	ragged := "a,b\n1,2\n3\n"
	if _, err := ReadCSV(strings.NewReader(ragged), nil); err == nil {
		t.Fatal("expected error for ragged csv")
	}
}

func TestReadCSVDefaultsToQI(t *testing.T) {
	in := "color,size\nred,small\nblue,large\n"
	tbl, err := ReadCSV(strings.NewReader(in), nil)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Schema().NumQI() != 2 {
		t.Fatalf("NumQI = %d, want 2", tbl.Schema().NumQI())
	}
	if tbl.Schema().SAIndex() != -1 {
		t.Fatal("unexpected SA attribute")
	}
}

func TestQIKeyDistinguishesTuples(t *testing.T) {
	// Property: two rows share a QIKey iff their QI projections are equal.
	f := func(a, b uint8) bool {
		g := NewAttribute("g", QuasiIdentifier, []string{"0", "1", "2", "3"})
		d := NewAttribute("d", QuasiIdentifier, []string{"0", "1", "2", "3"})
		s := NewAttribute("s", Sensitive, []string{"x"})
		tbl := NewTable(MustSchema(g, d, s))
		av, bv := int(a%4), int(b%4)
		if err := tbl.AppendCoded([]int{av, bv, 0}); err != nil {
			return false
		}
		if err := tbl.AppendCoded([]int{bv, av, 0}); err != nil {
			return false
		}
		equalKeys := tbl.QIKey(0) == tbl.QIKey(1)
		equalTuples := av == bv
		return equalKeys == equalTuples
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestItoa(t *testing.T) {
	cases := map[int]string{0: "0", 7: "7", 42: "42", 1234567: "1234567", -5: "-5"}
	for v, want := range cases {
		if got := itoa(v); got != want {
			t.Errorf("itoa(%d) = %q, want %q", v, got, want)
		}
	}
}

func TestTableClone(t *testing.T) {
	tbl := PaperExample()
	c := tbl.Clone()
	if c.Len() != tbl.Len() {
		t.Fatalf("clone rows = %d, want %d", c.Len(), tbl.Len())
	}
	c.Row(0)[0] = 3
	if tbl.Row(0)[0] == 3 {
		t.Fatal("clone shares row storage with original")
	}
}

func TestQICodes(t *testing.T) {
	tbl := PaperExample()
	got := tbl.QICodes(0) // Allen: male, college
	want := []int{tbl.Schema().Attr(1).MustCode("male"), tbl.Schema().Attr(2).MustCode("college")}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("QICodes = %v, want %v", got, want)
	}
}
