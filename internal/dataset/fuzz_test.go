package dataset

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV feeds arbitrary bytes to the CSV loader: it must never
// panic, and any table it accepts must round-trip through WriteCSV into
// an equal table.
func FuzzReadCSV(f *testing.F) {
	f.Add("a,b\n1,2\n")
	f.Add("Name,Gender,Disease\nAllen,male,Flu\nBrian,male,Flu\n")
	f.Add("x\n")
	f.Add("")
	f.Add("a,b\n1\n")
	f.Add("a,a\n1,2\n")
	f.Fuzz(func(t *testing.T, input string) {
		tbl, err := ReadCSV(strings.NewReader(input), map[string]Role{"Disease": Sensitive})
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, tbl); err != nil {
			t.Fatalf("accepted table failed to serialize: %v", err)
		}
		back, err := ReadCSV(bytes.NewReader(buf.Bytes()), map[string]Role{"Disease": Sensitive})
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if back.Len() != tbl.Len() || back.Schema().Len() != tbl.Schema().Len() {
			t.Fatalf("round trip changed shape: (%d,%d) vs (%d,%d)",
				back.Len(), back.Schema().Len(), tbl.Len(), tbl.Schema().Len())
		}
		for r := 0; r < tbl.Len(); r++ {
			for c := 0; c < tbl.Schema().Len(); c++ {
				if back.Value(r, c) != tbl.Value(r, c) {
					t.Fatalf("cell (%d,%d) changed", r, c)
				}
			}
		}
	})
}
