package dataset

import "fmt"

// Universe indexes the distinct QI tuples of a data set. The paper writes
// them q_1, ..., q_n; we assign each a dense integer id (qid) so that
// distributions over QI values can live in flat slices. A Universe built
// from the original data D is also valid for its bucketization D′, because
// bucketization never alters QI values.
type Universe struct {
	schema  *Schema
	keys    []string
	byKey   map[string]int
	counts  []int
	display []string
	codes   [][]int
	total   int
}

// NewUniverse scans the table and indexes every distinct QI tuple in
// first-appearance order.
func NewUniverse(t *Table) *Universe {
	u := &Universe{
		schema: t.Schema(),
		byKey:  make(map[string]int),
	}
	for row := 0; row < t.Len(); row++ {
		key := t.QIKey(row)
		id, ok := u.byKey[key]
		if !ok {
			id = len(u.keys)
			u.byKey[key] = id
			u.keys = append(u.keys, key)
			u.counts = append(u.counts, 0)
			u.display = append(u.display, t.QIString(row))
			u.codes = append(u.codes, t.QICodes(row))
		}
		u.counts[id]++
		u.total++
	}
	return u
}

// Schema returns the schema the universe was built against.
func (u *Universe) Schema() *Schema { return u.schema }

// Len reports the number of distinct QI tuples.
func (u *Universe) Len() int { return len(u.keys) }

// Total reports the number of records scanned (N in the paper).
func (u *Universe) Total() int { return u.total }

// QID maps a canonical QI key (Table.QIKey) to its dense id.
func (u *Universe) QID(key string) (int, bool) {
	id, ok := u.byKey[key]
	return id, ok
}

// Key returns the canonical key of a qid.
func (u *Universe) Key(qid int) string { return u.keys[qid] }

// Count returns the number of records sharing the qid's QI tuple.
func (u *Universe) Count(qid int) int { return u.counts[qid] }

// P returns the empirical probability P(q) of the qid's QI tuple, the
// sample approximation the paper adopts for the population distribution.
func (u *Universe) P(qid int) float64 {
	if u.total == 0 {
		return 0
	}
	return float64(u.counts[qid]) / float64(u.total)
}

// Display returns a human-readable rendering such as "{male, college}".
func (u *Universe) Display(qid int) string { return u.display[qid] }

// Codes returns the coded QI projection of a qid, in Schema.QIIndices
// order. The slice must not be modified. Knowledge constraints use this to
// match a QI-subset condition Qv against every full QI tuple Q = (Qv, Q⁻).
func (u *Universe) Codes(qid int) []int { return u.codes[qid] }

// Label returns the paper's abstract symbol for a qid: q1, q2, ....
func (u *Universe) Label(qid int) string { return fmt.Sprintf("q%d", qid+1) }
