// Package dataset provides the microdata substrate used throughout the
// Privacy-MaxEnt library: attribute schemas with ID/QI/SA roles, encoded
// tables, CSV input and output, empirical distributions, and the abstract
// q_i/s_j form the paper uses to present bucketized data.
package dataset

import "fmt"

// Role classifies an attribute in a microdata table, following the PPDP
// taxonomy from the paper's introduction: identifiers are removed before
// publishing, quasi-identifiers are published in the clear, and sensitive
// attributes are what adversaries try to link to individuals.
type Role int

const (
	// Identifier attributes (names, SSNs) are stripped before publishing.
	Identifier Role = iota
	// QuasiIdentifier attributes (gender, zip, age, ...) are published
	// unmodified and can be cross-referenced with external sources.
	QuasiIdentifier
	// Sensitive attributes (disease, salary, ...) are what the
	// bucketization protects.
	Sensitive
)

// String returns the conventional short name for the role.
func (r Role) String() string {
	switch r {
	case Identifier:
		return "ID"
	case QuasiIdentifier:
		return "QI"
	case Sensitive:
		return "SA"
	default:
		return fmt.Sprintf("Role(%d)", int(r))
	}
}

// Attribute describes a single categorical column: its name, its role, and
// its domain of admissible values. Values are stored in tables as indices
// into Domain, so the order of Domain is significant and must not change
// once rows have been encoded against it.
type Attribute struct {
	Name   string
	Role   Role
	Domain []string

	index map[string]int
}

// NewAttribute builds an attribute with the given categorical domain.
// Domain values must be distinct; duplicates cause a panic because they
// would make decoding ambiguous.
func NewAttribute(name string, role Role, domain []string) *Attribute {
	a := &Attribute{
		Name:   name,
		Role:   role,
		Domain: append([]string(nil), domain...),
		index:  make(map[string]int, len(domain)),
	}
	for i, v := range a.Domain {
		if _, dup := a.index[v]; dup {
			panic(fmt.Sprintf("dataset: attribute %q has duplicate domain value %q", name, v))
		}
		a.index[v] = i
	}
	return a
}

// Cardinality reports the number of distinct values in the domain.
func (a *Attribute) Cardinality() int { return len(a.Domain) }

// Code returns the integer code for a domain value.
func (a *Attribute) Code(value string) (int, bool) {
	c, ok := a.index[value]
	return c, ok
}

// MustCode is Code but panics on unknown values; intended for literals in
// tests and examples where the value is known to be in the domain.
func (a *Attribute) MustCode(value string) int {
	c, ok := a.index[value]
	if !ok {
		panic(fmt.Sprintf("dataset: value %q not in domain of attribute %q", value, a.Name))
	}
	return c
}

// Value returns the domain string for a code.
func (a *Attribute) Value(code int) string {
	if code < 0 || code >= len(a.Domain) {
		panic(fmt.Sprintf("dataset: code %d out of range for attribute %q (cardinality %d)", code, a.Name, len(a.Domain)))
	}
	return a.Domain[code]
}

// clone returns a deep copy, so schemas can be shared safely.
func (a *Attribute) clone() *Attribute {
	return NewAttribute(a.Name, a.Role, a.Domain)
}
