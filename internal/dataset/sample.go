package dataset

// PaperExample returns the 10-record data set of the paper's Figure 1(a):
// Gender and Degree as quasi-identifiers, Disease as the sensitive
// attribute, and Name as the identifier. The distinct QI tuples and SA
// values map to the paper's abstract symbols as
//
//	q1 = {male, college}    s1 = Breast Cancer
//	q2 = {female, college}  s2 = Flu
//	q3 = {male, high school} s3 = Pneumonia
//	q4 = {female, junior}   s4 = HIV
//	q5 = {female, graduate} s5 = Lung Cancer
//	q6 = {male, graduate}
//
// when indexed by a Universe in row order (see TestPaperExampleAbstractForm).
func PaperExample() *Table {
	name := NewAttribute("Name", Identifier, []string{
		"Allen", "Brian", "Cathy", "David", "Ethan",
		"Frank", "Grace", "Helen", "Iris", "James",
	})
	gender := NewAttribute("Gender", QuasiIdentifier, []string{"male", "female"})
	degree := NewAttribute("Degree", QuasiIdentifier, []string{"junior", "high school", "college", "graduate"})
	disease := NewAttribute("Disease", Sensitive, []string{
		"Breast Cancer", "Flu", "Pneumonia", "HIV", "Lung Cancer",
	})
	t := NewTable(MustSchema(name, gender, degree, disease))
	t.MustAppend("Allen", "male", "college", "Flu")
	t.MustAppend("Brian", "male", "college", "Pneumonia")
	t.MustAppend("Cathy", "female", "college", "Breast Cancer")
	t.MustAppend("David", "male", "high school", "Flu")
	t.MustAppend("Ethan", "male", "college", "HIV")
	t.MustAppend("Frank", "male", "high school", "Pneumonia")
	t.MustAppend("Grace", "female", "junior", "Breast Cancer")
	t.MustAppend("Helen", "female", "college", "HIV")
	t.MustAppend("Iris", "female", "graduate", "Lung Cancer")
	t.MustAppend("James", "male", "graduate", "Flu")
	return t
}

// PaperBuckets returns the paper's Figure 1(b)/(c) bucketization of the
// PaperExample table as row-index groups. In abstract form the buckets are
//
//	bucket 1: {q1, q1, q2, q3} with SA multiset {s1, s2, s2, s3}
//	bucket 2: {q1, q3, q4}     with SA multiset {s1, s3, s4}
//	bucket 3: {q2, q5, q6}     with SA multiset {s2, s4, s5}
//
// matching every worked example in the paper (P(q1,1) = 2/10, P(s4,2) =
// 1/10, q1 and s1 absent from bucket 3, ...).
func PaperBuckets() [][]int {
	return [][]int{
		{0, 1, 2, 3}, // Allen, Brian, Cathy, David
		{4, 5, 6},    // Ethan, Frank, Grace
		{7, 8, 9},    // Helen, Iris, James
	}
}
