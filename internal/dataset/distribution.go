package dataset

import (
	"fmt"

	"privacymaxent/internal/errs"
)

// Conditional holds a conditional distribution P(S | Q): one row per qid
// in a Universe, one column per SA domain value. It is the common currency
// between the MaxEnt estimate P*(S|Q) and the ground truth P(S|Q) computed
// from the original data, which the Estimation Accuracy metric compares.
type Conditional struct {
	universe *Universe
	numSA    int
	rows     [][]float64
}

// NewConditional allocates a zero conditional distribution over the
// universe's QI tuples and an SA attribute with numSA values.
func NewConditional(u *Universe, numSA int) *Conditional {
	rows := make([][]float64, u.Len())
	flat := make([]float64, u.Len()*numSA)
	for i := range rows {
		rows[i], flat = flat[:numSA:numSA], flat[numSA:]
	}
	return &Conditional{universe: u, numSA: numSA, rows: rows}
}

// TrueConditional computes the ground-truth P(S|Q) directly from the
// original table D, the reference the paper compares MaxEnt estimates to.
func TrueConditional(t *Table, u *Universe) (*Conditional, error) {
	if t.Schema().SAIndex() < 0 {
		return nil, fmt.Errorf("dataset: table has no sensitive attribute: %w", errs.ErrNoSensitiveAttribute)
	}
	c := NewConditional(u, t.Schema().SA().Cardinality())
	counts := make([]int, u.Len())
	for row := 0; row < t.Len(); row++ {
		qid, ok := u.QID(t.QIKey(row))
		if !ok {
			return nil, fmt.Errorf("dataset: row %d has QI tuple %s not in universe", row, t.QIString(row))
		}
		c.rows[qid][t.SACode(row)]++
		counts[qid]++
	}
	for qid, n := range counts {
		if n == 0 {
			continue
		}
		inv := 1 / float64(n)
		for s := range c.rows[qid] {
			c.rows[qid][s] *= inv
		}
	}
	return c, nil
}

// Universe returns the QI universe the distribution is indexed by.
func (c *Conditional) Universe() *Universe { return c.universe }

// NumSA reports the SA cardinality (columns).
func (c *Conditional) NumSA() int { return c.numSA }

// P returns P(S = s | Q = qid).
func (c *Conditional) P(qid, s int) float64 { return c.rows[qid][s] }

// Set assigns P(S = s | Q = qid).
func (c *Conditional) Set(qid, s int, p float64) { c.rows[qid][s] = p }

// Add accumulates into P(S = s | Q = qid); used when folding bucket joints
// P(q,s,b) into the posterior P(s|q) = Σ_b P(q,s,b)/P(q).
func (c *Conditional) Add(qid, s int, p float64) { c.rows[qid][s] += p }

// Row returns the distribution over SA values for a qid. The slice must
// not be modified by callers that do not own the Conditional.
func (c *Conditional) Row(qid int) []float64 { return c.rows[qid] }

// Normalize rescales every row to sum to 1 (rows summing to 0 are left
// untouched). Useful after accumulating joints with Add.
func (c *Conditional) Normalize() {
	for _, row := range c.rows {
		var sum float64
		for _, p := range row {
			sum += p
		}
		if sum <= 0 {
			continue
		}
		inv := 1 / sum
		for s := range row {
			row[s] *= inv
		}
	}
}
