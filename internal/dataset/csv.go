package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
)

// ReadCSV reads a table from CSV. The first record must be a header naming
// every column. Roles assigns a role to each column name; columns missing
// from the map default to QuasiIdentifier (the safe choice for privacy
// analysis: treating a column as QI never under-reports risk). Attribute
// domains are inferred from the data, sorted for determinism.
func ReadCSV(r io.Reader, roles map[string]Role) (*Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading csv: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("dataset: csv has no header row")
	}
	header := records[0]
	if len(header) == 0 {
		return nil, fmt.Errorf("dataset: csv header is empty")
	}
	body := records[1:]

	// Infer domains column by column.
	domains := make([][]string, len(header))
	for col := range header {
		seen := map[string]bool{}
		for rowNum, rec := range body {
			if len(rec) != len(header) {
				return nil, fmt.Errorf("dataset: row %d has %d fields, header has %d", rowNum+2, len(rec), len(header))
			}
			seen[rec[col]] = true
		}
		dom := make([]string, 0, len(seen))
		for v := range seen {
			dom = append(dom, v)
		}
		sort.Strings(dom)
		domains[col] = dom
	}

	attrs := make([]*Attribute, len(header))
	for col, name := range header {
		role, ok := roles[name]
		if !ok {
			role = QuasiIdentifier
		}
		attrs[col] = NewAttribute(name, role, domains[col])
	}
	schema, err := NewSchema(attrs...)
	if err != nil {
		return nil, err
	}
	t := NewTable(schema)
	for _, rec := range body {
		if err := t.Append(rec...); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// WriteCSV writes the table as CSV with a header row.
func WriteCSV(w io.Writer, t *Table) error {
	cw := csv.NewWriter(w)
	header := make([]string, t.Schema().Len())
	for i := range header {
		header[i] = t.Schema().Attr(i).Name
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("dataset: writing csv header: %w", err)
	}
	rec := make([]string, len(header))
	for row := 0; row < t.Len(); row++ {
		for col := range header {
			rec[col] = t.Value(row, col)
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("dataset: writing csv row %d: %w", row, err)
		}
	}
	cw.Flush()
	return cw.Error()
}
