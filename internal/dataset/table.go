package dataset

import (
	"fmt"
	"strings"
)

// Table is an encoded microdata table: every cell stores the integer code
// of its value in the corresponding attribute domain. Encoding makes the
// hot paths (grouping by QI tuple, counting SA values) allocation-light.
type Table struct {
	schema *Schema
	rows   [][]int
}

// NewTable creates an empty table over the schema.
func NewTable(schema *Schema) *Table {
	return &Table{schema: schema}
}

// Schema returns the table's schema.
func (t *Table) Schema() *Schema { return t.schema }

// Len reports the number of rows.
func (t *Table) Len() int { return len(t.rows) }

// Row returns the coded row at index i. The slice must not be modified.
func (t *Table) Row(i int) []int { return t.rows[i] }

// AppendCoded appends a row of pre-encoded values. The row length must
// match the schema and every code must be within its attribute's domain.
func (t *Table) AppendCoded(row []int) error {
	if len(row) != t.schema.Len() {
		return fmt.Errorf("dataset: row has %d values, schema has %d attributes", len(row), t.schema.Len())
	}
	for i, c := range row {
		if c < 0 || c >= t.schema.Attr(i).Cardinality() {
			return fmt.Errorf("dataset: code %d out of range for attribute %q", c, t.schema.Attr(i).Name)
		}
	}
	t.rows = append(t.rows, append([]int(nil), row...))
	return nil
}

// Append encodes and appends a row of string values in schema order.
func (t *Table) Append(values ...string) error {
	if len(values) != t.schema.Len() {
		return fmt.Errorf("dataset: row has %d values, schema has %d attributes", len(values), t.schema.Len())
	}
	coded := make([]int, len(values))
	for i, v := range values {
		c, ok := t.schema.Attr(i).Code(v)
		if !ok {
			return fmt.Errorf("dataset: value %q not in domain of attribute %q", v, t.schema.Attr(i).Name)
		}
		coded[i] = c
	}
	t.rows = append(t.rows, coded)
	return nil
}

// MustAppend is Append but panics on error; for literals in tests.
func (t *Table) MustAppend(values ...string) {
	if err := t.Append(values...); err != nil {
		panic(err)
	}
}

// Value decodes the cell at (row, attribute position).
func (t *Table) Value(row, attr int) string {
	return t.schema.Attr(attr).Value(t.rows[row][attr])
}

// SACode returns the coded sensitive value of a row.
func (t *Table) SACode(row int) int {
	return t.rows[row][t.schema.SAIndex()]
}

// QIKey returns a canonical string key for the full QI projection of a
// row. Two rows share a key exactly when they agree on every QI attribute;
// the paper denotes such shared projections q_1, q_2, ....
func (t *Table) QIKey(row int) string {
	return qiKey(t.rows[row], t.schema.QIIndices())
}

// qiKey builds the canonical key for the projection of a coded row onto
// the given attribute positions.
func qiKey(row []int, idx []int) string {
	var b strings.Builder
	for k, i := range idx {
		if k > 0 {
			b.WriteByte('|')
		}
		// Codes are small non-negative ints; render in decimal.
		b.WriteString(itoa(row[i]))
	}
	return b.String()
}

// itoa is a minimal positive-int formatter to keep qiKey off the
// fmt/strconv allocation paths in tight grouping loops.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	neg := v < 0
	if neg {
		v = -v
	}
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// QICodes returns the coded QI projection of a row as a fresh slice, in
// the order of Schema.QIIndices.
func (t *Table) QICodes(row int) []int {
	idx := t.schema.QIIndices()
	out := make([]int, len(idx))
	for k, i := range idx {
		out[k] = t.rows[row][i]
	}
	return out
}

// QIString renders the QI projection of a row for human consumption, e.g.
// "{male, college}".
func (t *Table) QIString(row int) string {
	idx := t.schema.QIIndices()
	parts := make([]string, len(idx))
	for k, i := range idx {
		parts[k] = t.Value(row, i)
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Clone returns a deep copy of the table.
func (t *Table) Clone() *Table {
	c := NewTable(t.schema)
	c.rows = make([][]int, len(t.rows))
	for i, r := range t.rows {
		c.rows[i] = append([]int(nil), r...)
	}
	return c
}
