package dataset

import (
	"fmt"

	"privacymaxent/internal/errs"
)

// Schema is an ordered collection of attributes. The Privacy-MaxEnt model
// requires exactly one sensitive attribute (the paper's SA column); any
// number of QI and ID attributes are allowed.
type Schema struct {
	attrs  []*Attribute
	byName map[string]int

	qiIdx []int // positions of QI attributes, in schema order
	saIdx int   // position of the SA attribute, -1 if none
	idIdx []int // positions of ID attributes
}

// NewSchema builds a schema from the given attributes. It returns an error
// if names collide or if more than one sensitive attribute is declared.
func NewSchema(attrs ...*Attribute) (*Schema, error) {
	s := &Schema{
		attrs:  make([]*Attribute, 0, len(attrs)),
		byName: make(map[string]int, len(attrs)),
		saIdx:  -1,
	}
	for _, a := range attrs {
		if a == nil {
			return nil, fmt.Errorf("dataset: nil attribute in schema: %w", errs.ErrInvalidSchema)
		}
		if _, dup := s.byName[a.Name]; dup {
			return nil, fmt.Errorf("dataset: duplicate attribute name %q: %w", a.Name, errs.ErrInvalidSchema)
		}
		pos := len(s.attrs)
		s.byName[a.Name] = pos
		s.attrs = append(s.attrs, a.clone())
		switch a.Role {
		case QuasiIdentifier:
			s.qiIdx = append(s.qiIdx, pos)
		case Sensitive:
			if s.saIdx >= 0 {
				return nil, fmt.Errorf("dataset: schema has more than one sensitive attribute (%q and %q): %w",
					s.attrs[s.saIdx].Name, a.Name, errs.ErrInvalidSchema)
			}
			s.saIdx = pos
		case Identifier:
			s.idIdx = append(s.idIdx, pos)
		}
	}
	return s, nil
}

// MustSchema is NewSchema but panics on error; for literals in tests.
func MustSchema(attrs ...*Attribute) *Schema {
	s, err := NewSchema(attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

// Len reports the number of attributes.
func (s *Schema) Len() int { return len(s.attrs) }

// Attr returns the attribute at position i.
func (s *Schema) Attr(i int) *Attribute { return s.attrs[i] }

// AttrByName returns the attribute with the given name.
func (s *Schema) AttrByName(name string) (*Attribute, bool) {
	i, ok := s.byName[name]
	if !ok {
		return nil, false
	}
	return s.attrs[i], true
}

// Index returns the position of the named attribute, or -1.
func (s *Schema) Index(name string) int {
	i, ok := s.byName[name]
	if !ok {
		return -1
	}
	return i
}

// QIIndices returns the positions of quasi-identifier attributes in schema
// order. The returned slice must not be modified.
func (s *Schema) QIIndices() []int { return s.qiIdx }

// NumQI reports the number of quasi-identifier attributes (the paper's
// "entire QI attribute set" Q that every ME constraint must range over).
func (s *Schema) NumQI() int { return len(s.qiIdx) }

// SAIndex returns the position of the sensitive attribute, or -1 if the
// schema has none.
func (s *Schema) SAIndex() int { return s.saIdx }

// SA returns the sensitive attribute; it panics if the schema has none,
// since every Privacy-MaxEnt pipeline requires one.
func (s *Schema) SA() *Attribute {
	if s.saIdx < 0 {
		panic("dataset: schema has no sensitive attribute")
	}
	return s.attrs[s.saIdx]
}

// IDIndices returns the positions of identifier attributes.
func (s *Schema) IDIndices() []int { return s.idIdx }
