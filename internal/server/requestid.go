package server

import (
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"strings"
)

// Request identity. Every request gets exactly one ID, in priority order:
// the client's X-Request-Id header (sanitized), the trace-id field of a
// W3C traceparent header, or a freshly generated random ID. The chosen ID
// is echoed back in the X-Request-Id response header and threaded through
// the context into spans, solve-event logs and audit provenance, so all
// the signals one request produced can be joined on a single key.

// maxRequestIDLen bounds accepted client-supplied IDs so a hostile
// header cannot bloat every log line downstream.
const maxRequestIDLen = 128

// requestIdentity resolves the request's ID from its headers, generating
// one when the client supplied none.
func requestIdentity(r *http.Request) string {
	if id := sanitizeRequestID(r.Header.Get("X-Request-Id")); id != "" {
		return id
	}
	if tid, ok := parseTraceparent(r.Header.Get("Traceparent")); ok {
		return tid
	}
	return newRequestID()
}

// sanitizeRequestID keeps the printable-token subset of a client ID and
// rejects anything else: IDs land verbatim in logs and JSON, so control
// characters and separators are dropped wholesale rather than escaped.
func sanitizeRequestID(id string) string {
	if id == "" || len(id) > maxRequestIDLen {
		return ""
	}
	for _, c := range id {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.', c == ':':
		default:
			return ""
		}
	}
	return id
}

// parseTraceparent extracts the trace-id from a W3C traceparent header
// ("00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>"). Only the
// trace-id is consumed — it becomes the request ID so the access log
// joins against the caller's distributed trace.
func parseTraceparent(h string) (traceID string, ok bool) {
	parts := strings.Split(h, "-")
	if len(parts) != 4 {
		return "", false
	}
	if len(parts[0]) != 2 || len(parts[1]) != 32 || len(parts[2]) != 16 || len(parts[3]) != 2 {
		return "", false
	}
	if !isHex(parts[0]) || !isHex(parts[1]) || !isHex(parts[2]) || !isHex(parts[3]) {
		return "", false
	}
	// The all-zero trace-id is explicitly invalid per the spec.
	if parts[1] == strings.Repeat("0", 32) {
		return "", false
	}
	return parts[1], true
}

func isHex(s string) bool {
	for _, c := range s {
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'f':
		default:
			return false
		}
	}
	return true
}

// newRequestID generates a 16-byte random hex ID.
func newRequestID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is unheard of; a fixed fallback keeps the
		// request serviceable (the ID merely stops being unique).
		return "00000000000000000000000000000000"
	}
	return hex.EncodeToString(b[:])
}
