package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

const secondKnowledge = `[
	{"if": {"Gender": "male"}, "then": "Breast Cancer", "p": 0},
	{"if": {"Gender": "female"}, "then": "Pneumonia", "p": 0}]`

func batchBody(pub []byte, delta bool, variants ...string) string {
	var buf bytes.Buffer
	buf.WriteString(`{"published": `)
	buf.Write(pub)
	buf.WriteString(`, "variants": [`)
	for i, v := range variants {
		if i > 0 {
			buf.WriteByte(',')
		}
		if v == "" {
			buf.WriteString(`{}`)
		} else {
			buf.WriteString(`{"knowledge": ` + v + `}`)
		}
	}
	buf.WriteString(`]`)
	if delta {
		buf.WriteString(`, "delta": true`)
	}
	buf.WriteString(`}`)
	return buf.String()
}

func decodeBatch(t *testing.T, raw []byte) *BatchQuantifyResponse {
	t.Helper()
	var br BatchQuantifyResponse
	if err := json.Unmarshal(raw, &br); err != nil {
		t.Fatalf("decoding batch response: %v\n%s", err, raw)
	}
	return &br
}

// variantResponse decodes variant i's embedded quantify response,
// failing the test if the variant errored.
func variantResponse(t *testing.T, br *BatchQuantifyResponse, i int) *QuantifyResponse {
	t.Helper()
	v := br.Variants[i]
	if v.Error != nil {
		t.Fatalf("variant %d failed: %s (%s)", i, v.Error.Error, v.Error.Kind)
	}
	var qr QuantifyResponse
	if err := json.Unmarshal(v.Response, &qr); err != nil {
		t.Fatalf("variant %d response undecodable: %v\n%s", i, err, v.Response)
	}
	return &qr
}

// TestBatchParityWithIndividual: a one-variant batch on a fresh server
// carries, byte for byte (volatile timings aside), the response an
// individual POST /v1/quantify on an equally fresh server produces. The
// batch endpoint routes every variant through the same single-flight
// leader path, so parity is by construction, not by re-implementation.
func TestBatchParityWithIndividual(t *testing.T) {
	_, pubJSON := paperPublished(t)

	tsA := httptest.NewServer(New(Config{}))
	defer tsA.Close()
	resp, raw := postQuantify(t, tsA, "/v1/quantify/batch", batchBody(pubJSON, false, paperKnowledge))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d: %s", resp.StatusCode, raw)
	}
	br := decodeBatch(t, raw)
	if len(br.Variants) != 1 || br.Variants[0].Index != 0 {
		t.Fatalf("batch variants malformed: %s", raw)
	}
	if br.Variants[0].SolveID == "" {
		t.Fatal("batch variant carries no solve_id")
	}

	tsB := httptest.NewServer(New(Config{}))
	defer tsB.Close()
	respI, rawI := postQuantify(t, tsB, "/v1/quantify", quantifyBody(pubJSON, paperKnowledge))
	if respI.StatusCode != http.StatusOK {
		t.Fatalf("individual status = %d: %s", respI.StatusCode, rawI)
	}

	got := stripVolatile(t, br.Variants[0].Response)
	want := stripVolatile(t, rawI)
	if !bytes.Equal(got, want) {
		t.Fatalf("batch variant diverges from individual request:\nbatch:      %s\nindividual: %s", got, want)
	}
	if br.Digest == "" || br.Digest != variantResponse(t, br, 0).Digest {
		t.Fatalf("batch digest %q does not match variant digest", br.Digest)
	}
}

// TestBatchOrderAndScores: a multi-variant batch returns results in
// request order, and each variant's posterior scores match what an
// individual request on a fresh server computes. Warm-start chaining
// across variants may change iteration counts, never the posterior.
func TestBatchOrderAndScores(t *testing.T) {
	_, pubJSON := paperPublished(t)
	variants := []string{"", paperKnowledge, secondKnowledge}

	ts := httptest.NewServer(New(Config{}))
	defer ts.Close()
	resp, raw := postQuantify(t, ts, "/v1/quantify/batch", batchBody(pubJSON, false, variants...))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d: %s", resp.StatusCode, raw)
	}
	br := decodeBatch(t, raw)
	if len(br.Variants) != len(variants) {
		t.Fatalf("got %d variant results, want %d", len(br.Variants), len(variants))
	}
	for i, v := range variants {
		if br.Variants[i].Index != i {
			t.Fatalf("result %d carries index %d — order not preserved", i, br.Variants[i].Index)
		}
		qr := variantResponse(t, br, i)
		if !qr.Solver.Converged {
			t.Fatalf("variant %d did not converge", i)
		}

		fresh := httptest.NewServer(New(Config{}))
		respI, rawI := postQuantify(t, fresh, "/v1/quantify", quantifyBody(pubJSON, v))
		fresh.Close()
		if respI.StatusCode != http.StatusOK {
			t.Fatalf("individual variant %d status = %d: %s", i, respI.StatusCode, rawI)
		}
		var qi QuantifyResponse
		if err := json.Unmarshal(rawI, &qi); err != nil {
			t.Fatal(err)
		}
		if d := qr.MaxDisclosure - qi.MaxDisclosure; d > 1e-9 || d < -1e-9 {
			t.Fatalf("variant %d max_disclosure %g diverges from individual %g", i, qr.MaxDisclosure, qi.MaxDisclosure)
		}
		if d := qr.PosteriorEntropyBits - qi.PosteriorEntropyBits; d > 1e-9 || d < -1e-9 {
			t.Fatalf("variant %d entropy %g diverges from individual %g", i, qr.PosteriorEntropyBits, qi.PosteriorEntropyBits)
		}
	}
}

// TestBatchCoalescesDuplicateVariants: two identical variants in one
// batch share a single solve — same single-flight key, one leader, two
// byte-identical embedded responses. The leader is parked on the solve
// hook until the duplicate has joined, so the assertion cannot race.
func TestBatchCoalescesDuplicateVariants(t *testing.T) {
	_, pubJSON := paperPublished(t)
	srv := New(Config{})
	release := make(chan struct{})
	entered := make(chan struct{}, 4)
	srv.solveHook = func() {
		entered <- struct{}{}
		<-release
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	done := make(chan []byte, 1)
	go func() {
		_, raw := postQuantify(t, ts, "/v1/quantify/batch", batchBody(pubJSON, false, paperKnowledge, paperKnowledge))
		done <- raw
	}()

	<-entered // leader holds the solve slot
	deadline := time.Now().Add(10 * time.Second)
	for srv.Registry().Counter("pmaxentd_coalesced_total").Value() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("duplicate variant never coalesced")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	br := decodeBatch(t, <-done)

	if got := srv.Registry().Counter("pmaxent_quantify_total").Value(); got != 1 {
		t.Fatalf("pipeline ran %d solves for 2 identical variants, want 1", got)
	}
	if br.Variants[0].Error != nil || br.Variants[1].Error != nil {
		t.Fatalf("coalesced variants errored: %+v", br.Variants)
	}
	if !bytes.Equal(br.Variants[0].Response, br.Variants[1].Response) {
		t.Fatal("coalesced variants returned different bytes")
	}
	if br.Variants[0].SolveID != br.Variants[1].SolveID {
		t.Fatalf("coalesced variants carry different solve IDs: %q vs %q",
			br.Variants[0].SolveID, br.Variants[1].SolveID)
	}
	if got := srv.Registry().Counter("pmaxentd_batch_variants_total").Value(); got != 2 {
		t.Fatalf("batch variants counter = %d, want 2", got)
	}
}

// TestBatchStream: ?stream=1 turns the batch into an SSE stream — one
// variant.done frame per variant, then a terminal result frame whose
// body is the full batch response.
func TestBatchStream(t *testing.T) {
	_, pubJSON := paperPublished(t)
	ts := httptest.NewServer(New(Config{}))
	defer ts.Close()

	resp, raw := postQuantify(t, ts, "/v1/quantify/batch?stream=1", batchBody(pubJSON, false, "", paperKnowledge))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	frames := parseSSE(t, raw)
	var doneFrames []sseFrame
	for _, f := range frames {
		if f.event == "variant.done" {
			doneFrames = append(doneFrames, f)
		}
	}
	if len(doneFrames) != 2 {
		t.Fatalf("got %d variant.done frames, want 2: %v", len(doneFrames), frames)
	}
	seen := map[int]bool{}
	for _, f := range doneFrames {
		var d struct {
			Index   int    `json:"index"`
			SolveID string `json:"solve_id"`
			OK      bool   `json:"ok"`
		}
		if err := json.Unmarshal(f.data, &d); err != nil {
			t.Fatalf("variant.done frame undecodable: %v\n%s", err, f.data)
		}
		if !d.OK || d.SolveID == "" {
			t.Fatalf("variant.done frame not ok: %s", f.data)
		}
		seen[d.Index] = true
	}
	if !seen[0] || !seen[1] {
		t.Fatalf("variant.done frames cover %v, want indexes 0 and 1", seen)
	}
	ri := frameIndex(frames, "result")
	if ri != len(frames)-1 {
		t.Fatalf("result frame at %d, want terminal (of %d)", ri, len(frames))
	}
	br := decodeBatch(t, frames[ri].data)
	if len(br.Variants) != 2 {
		t.Fatalf("streamed result carries %d variants, want 2", len(br.Variants))
	}
	for i := range br.Variants {
		if variantResponse(t, br, i).Digest != br.Digest {
			t.Fatalf("variant %d digest mismatch", i)
		}
	}
}

// TestBatchErrors: malformed batches fail whole, before any solve.
func TestBatchErrors(t *testing.T) {
	_, pubJSON := paperPublished(t)
	ts := httptest.NewServer(New(Config{}))
	defer ts.Close()

	cases := []struct {
		name string
		body string
	}{
		{"missing published", `{"variants": [{}]}`},
		{"empty variants", `{"published": ` + string(pubJSON) + `}`},
		{"bad variant knowledge", batchBody(pubJSON, false,
			paperKnowledge, `[{"if": {"Gender": "male"}, "then": "No Such Disease", "p": 0}]`)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, raw := postQuantify(t, ts, "/v1/quantify/batch", tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400: %s", resp.StatusCode, raw)
			}
			var e ErrorResponse
			if err := json.Unmarshal(raw, &e); err != nil || e.Kind != "invalid_request" {
				t.Fatalf("error body = %s (err %v), want kind invalid_request", raw, err)
			}
		})
	}
}

// TestQuantifyDeltaChain: with the delta chain enabled, a second
// "delta": true request on the same publication diffs against the
// first solve's state and re-solves only changed components — the
// response's solver stats expose the reused/dirty split, and the
// posterior matches a cold solve of the same knowledge.
func TestQuantifyDeltaChain(t *testing.T) {
	_, pubJSON := paperPublished(t)
	srv := New(Config{DeltaChain: true})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	deltaBody := func(knowledge string) string {
		b := `{"published": ` + string(pubJSON)
		if knowledge != "" {
			b += `, "knowledge": ` + knowledge
		}
		return b + `, "delta": true}`
	}

	resp1, raw1 := postQuantify(t, ts, "/v1/quantify", deltaBody(paperKnowledge))
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first status = %d: %s", resp1.StatusCode, raw1)
	}
	var r1 QuantifyResponse
	if err := json.Unmarshal(raw1, &r1); err != nil {
		t.Fatal(err)
	}
	if r1.Solver.ReusedComponents != 0 || r1.Solver.DirtyComponents != 0 {
		t.Fatalf("first delta request has no baseline yet, counters = %d/%d, want 0/0",
			r1.Solver.ReusedComponents, r1.Solver.DirtyComponents)
	}

	resp2, raw2 := postQuantify(t, ts, "/v1/quantify", deltaBody(secondKnowledge))
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second status = %d: %s", resp2.StatusCode, raw2)
	}
	var r2 QuantifyResponse
	if err := json.Unmarshal(raw2, &r2); err != nil {
		t.Fatal(err)
	}
	if !r2.Solver.Converged {
		t.Fatal("delta solve did not converge")
	}
	if r2.Solver.DirtyComponents == 0 {
		t.Fatalf("second delta request took no delta path: reused/dirty = %d/%d",
			r2.Solver.ReusedComponents, r2.Solver.DirtyComponents)
	}
	t.Logf("delta split: %d reused, %d dirty", r2.Solver.ReusedComponents, r2.Solver.DirtyComponents)

	// Cold reference on a fresh server: the delta path may change
	// iteration counts, never the posterior.
	fresh := httptest.NewServer(New(Config{}))
	defer fresh.Close()
	respC, rawC := postQuantify(t, fresh, "/v1/quantify", quantifyBody(pubJSON, secondKnowledge))
	if respC.StatusCode != http.StatusOK {
		t.Fatalf("cold status = %d: %s", respC.StatusCode, rawC)
	}
	var rc QuantifyResponse
	if err := json.Unmarshal(rawC, &rc); err != nil {
		t.Fatal(err)
	}
	if d := r2.MaxDisclosure - rc.MaxDisclosure; d > 1e-9 || d < -1e-9 {
		t.Fatalf("delta max_disclosure %g diverges from cold %g", r2.MaxDisclosure, rc.MaxDisclosure)
	}
	if d := r2.PosteriorEntropyBits - rc.PosteriorEntropyBits; d > 1e-9 || d < -1e-9 {
		t.Fatalf("delta entropy %g diverges from cold %g", r2.PosteriorEntropyBits, rc.PosteriorEntropyBits)
	}

	// Without -delta the flag is inert: same request, cold counters.
	off := httptest.NewServer(New(Config{}))
	defer off.Close()
	postQuantify(t, off, "/v1/quantify", deltaBody(paperKnowledge))
	_, rawOff := postQuantify(t, off, "/v1/quantify", deltaBody(secondKnowledge))
	var ro QuantifyResponse
	if err := json.Unmarshal(rawOff, &ro); err != nil {
		t.Fatal(err)
	}
	if ro.Solver.ReusedComponents != 0 || ro.Solver.DirtyComponents != 0 {
		t.Fatalf("delta flag active without DeltaChain: %d/%d", ro.Solver.ReusedComponents, ro.Solver.DirtyComponents)
	}
}

// TestBatchDeltaChain: a "delta": true batch runs variants sequentially,
// chaining each variant's converged state into the next diff.
func TestBatchDeltaChain(t *testing.T) {
	_, pubJSON := paperPublished(t)
	srv := New(Config{DeltaChain: true})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, raw := postQuantify(t, ts, "/v1/quantify/batch", batchBody(pubJSON, true, "", paperKnowledge, secondKnowledge))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, raw)
	}
	br := decodeBatch(t, raw)
	sawDelta := false
	for i := range br.Variants {
		qr := variantResponse(t, br, i)
		if !qr.Solver.Converged {
			t.Fatalf("variant %d did not converge", i)
		}
		if qr.Solver.DirtyComponents > 0 || qr.Solver.ReusedComponents > 0 {
			sawDelta = true
		}
	}
	if v0 := variantResponse(t, br, 0); v0.Solver.DirtyComponents != 0 || v0.Solver.ReusedComponents != 0 {
		t.Fatal("first variant has no baseline, yet reports a delta split")
	}
	if !sawDelta {
		t.Fatal("no batch variant took the delta path")
	}
}
