package server

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestLimiterShedsWhenQueueFull(t *testing.T) {
	l := newLimiter(1, 1)
	ctx := context.Background()
	if err := l.acquire(ctx); err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	// Second caller queues.
	queued := make(chan error, 1)
	go func() {
		queued <- l.acquire(ctx)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for l.queued() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("second caller never queued")
		}
		time.Sleep(time.Millisecond)
	}
	// Third caller is shed immediately.
	if err := l.acquire(ctx); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-capacity acquire = %v, want ErrOverloaded", err)
	}
	// Releasing the slot admits the queued caller.
	l.release()
	if err := <-queued; err != nil {
		t.Fatalf("queued acquire: %v", err)
	}
	if got := l.inflight(); got != 1 {
		t.Fatalf("inflight = %d, want 1", got)
	}
	l.release()
	if l.inflight() != 0 || l.queued() != 0 {
		t.Fatalf("limiter not empty after releases: inflight=%d queued=%d", l.inflight(), l.queued())
	}
}

func TestLimiterContextCancelWhileQueued(t *testing.T) {
	l := newLimiter(1, 1)
	if err := l.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	got := make(chan error, 1)
	go func() { got <- l.acquire(ctx) }()
	deadline := time.Now().Add(5 * time.Second)
	for l.queued() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("caller never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-got; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled acquire = %v, want context.Canceled", err)
	}
	// The canceled waiter must have returned its admission token: a new
	// caller can still queue.
	if l.queued() != 0 {
		t.Fatalf("queue not drained after cancel: %d", l.queued())
	}
	l.release()
	if err := l.acquire(context.Background()); err != nil {
		t.Fatalf("acquire after cancel: %v", err)
	}
}

func TestLimiterClamps(t *testing.T) {
	l := newLimiter(0, -3)
	if cap(l.running) != 1 || cap(l.admitted) != 1 {
		t.Fatalf("clamped caps = %d/%d, want 1/1", cap(l.running), cap(l.admitted))
	}
}
