package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"privacymaxent/internal/audit"
	"privacymaxent/internal/bucket"
	"privacymaxent/internal/constraint"
	"privacymaxent/internal/core"
	"privacymaxent/internal/dataset"
)

// paperPublished returns the paper's Figure 1 published view and its
// wire-format JSON.
func paperPublished(t *testing.T) (*bucket.Bucketized, []byte) {
	t.Helper()
	d, err := bucket.FromPartition(dataset.PaperExample(), dataset.PaperBuckets())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := bucket.WriteJSON(&buf, d); err != nil {
		t.Fatal(err)
	}
	return d, buf.Bytes()
}

const paperKnowledge = `[{"if": {"Gender": "male"}, "then": "Breast Cancer", "p": 0}]`

func postQuantify(t *testing.T, ts *httptest.Server, path string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func quantifyBody(pub []byte, knowledge string) string {
	b := fmt.Sprintf(`{"published": %s`, pub)
	if knowledge != "" {
		b += fmt.Sprintf(`, "knowledge": %s`, knowledge)
	}
	return b + "}"
}

// stripVolatile zeroes the wall-clock fields so deterministic content can
// be byte-compared.
func stripVolatile(t *testing.T, raw []byte) []byte {
	t.Helper()
	var resp QuantifyResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatalf("decoding response: %v\n%s", err, raw)
	}
	resp.TimingsMS = nil
	resp.ElapsedMS = 0
	out, err := json.Marshal(&resp)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestQuantifyParityWithLibrary: the served response must be
// byte-identical (volatile timing fields aside) to what the offline
// library computes on the same D′ and knowledge — the server adds
// caching and scheduling, never different numbers. The server is fresh,
// so the request is a cold cache miss with no warm-start seed, exactly
// matching the offline solve.
func TestQuantifyParityWithLibrary(t *testing.T) {
	d, pubJSON := paperPublished(t)

	// Offline: the library pipeline plus the shared response builder.
	q := core.New(core.Config{})
	knowledge, err := constraint.ParseKnowledgeJSON(strings.NewReader(paperKnowledge), d.Schema())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := q.QuantifyContext(context.Background(), d, knowledge, nil)
	if err != nil {
		t.Fatal(err)
	}
	digest, err := DigestPublished(d)
	if err != nil {
		t.Fatal(err)
	}
	offline := buildResponse(digest, "miss", 0, d.Schema(), rep, q.Config().Solve.Algorithm)
	offlineJSON, err := json.Marshal(offline)
	if err != nil {
		t.Fatal(err)
	}

	// Served.
	ts := httptest.NewServer(New(Config{}))
	defer ts.Close()
	resp, body := postQuantify(t, ts, "/v1/quantify", quantifyBody(pubJSON, paperKnowledge))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	if got, want := stripVolatile(t, body), stripVolatile(t, offlineJSON); !bytes.Equal(got, want) {
		t.Fatalf("served response diverges from library:\nserved:  %s\nlibrary: %s", got, want)
	}
}

// TestQuantifyAuditParity: ?audit=1 attaches the same SolveAudit —
// residuals, duals, trajectory verdicts — the offline audited pipeline
// produces.
func TestQuantifyAuditParity(t *testing.T) {
	d, pubJSON := paperPublished(t)

	q := core.New(core.Config{Audit: &audit.Options{}})
	knowledge, err := constraint.ParseKnowledgeJSON(strings.NewReader(paperKnowledge), d.Schema())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := q.QuantifyContext(context.Background(), d, knowledge, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Audit == nil {
		t.Fatal("offline audited run produced no audit")
	}
	offlineAudit, err := json.Marshal(rep.Audit)
	if err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(New(Config{}))
	defer ts.Close()
	resp, body := postQuantify(t, ts, "/v1/quantify?audit=1", quantifyBody(pubJSON, paperKnowledge))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var served QuantifyResponse
	if err := json.Unmarshal(body, &served); err != nil {
		t.Fatal(err)
	}
	if served.Audit == nil {
		t.Fatal("?audit=1 response carries no audit")
	}
	// The served audit is stamped with the request's ID — provenance, not
	// solve output. It must match the X-Request-Id response header, and
	// clearing it must leave the audit byte-identical to the offline one
	// (whose request_id is empty: no request asked for it).
	if served.Audit.RequestID == "" {
		t.Fatal("served audit carries no request_id")
	}
	if rid := resp.Header.Get("X-Request-Id"); served.Audit.RequestID != rid {
		t.Fatalf("audit request_id = %q, response header X-Request-Id = %q", served.Audit.RequestID, rid)
	}
	served.Audit.RequestID = ""
	servedAudit, err := json.Marshal(served.Audit)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(servedAudit, offlineAudit) {
		t.Fatalf("served audit diverges:\nserved:  %s\nlibrary: %s", servedAudit, offlineAudit)
	}
}

// TestQuantifyCacheHit: a repeat request on the same D′ reuses the
// prepared invariant system — the response says "hit", the "prepare"
// stage is absent from its timings, and the hit counter moves.
func TestQuantifyCacheHit(t *testing.T) {
	_, pubJSON := paperPublished(t)
	srv := New(Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	body := quantifyBody(pubJSON, paperKnowledge)
	resp1, raw1 := postQuantify(t, ts, "/v1/quantify", body)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first status = %d: %s", resp1.StatusCode, raw1)
	}
	var r1 QuantifyResponse
	if err := json.Unmarshal(raw1, &r1); err != nil {
		t.Fatal(err)
	}
	if r1.Cache != "miss" {
		t.Fatalf("first request cache = %q, want miss", r1.Cache)
	}
	if _, ok := r1.TimingsMS[core.StagePrepare]; !ok {
		t.Fatalf("cache miss carries no %q stage: %v", core.StagePrepare, r1.TimingsMS)
	}

	resp2, raw2 := postQuantify(t, ts, "/v1/quantify", body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second status = %d: %s", resp2.StatusCode, raw2)
	}
	var r2 QuantifyResponse
	if err := json.Unmarshal(raw2, &r2); err != nil {
		t.Fatal(err)
	}
	if r2.Cache != "hit" {
		t.Fatalf("second request cache = %q, want hit", r2.Cache)
	}
	if _, ok := r2.TimingsMS[core.StagePrepare]; ok {
		t.Fatalf("cache hit still carries the %q stage: %v", core.StagePrepare, r2.TimingsMS)
	}
	if got := srv.Registry().Counter("pmaxentd_cache_hits_total").Value(); got != 1 {
		t.Fatalf("cache hit counter = %d, want 1", got)
	}
	if r1.Digest != r2.Digest {
		t.Fatalf("digest changed across requests: %q vs %q", r1.Digest, r2.Digest)
	}
	// Hit-or-miss must not change the numbers: posterior and scores agree.
	if r1.MaxDisclosure != r2.MaxDisclosure || r1.PosteriorEntropyBits != r2.PosteriorEntropyBits {
		t.Fatalf("scores diverge across cache states: (%g, %g) vs (%g, %g)",
			r1.MaxDisclosure, r1.PosteriorEntropyBits, r2.MaxDisclosure, r2.PosteriorEntropyBits)
	}
}

// TestQuantifyCoalescing: N concurrent identical requests share one
// solve. The leader is parked on the solve hook until the coalesced
// counter shows every follower joined, so the assertion cannot race.
func TestQuantifyCoalescing(t *testing.T) {
	_, pubJSON := paperPublished(t)
	srv := New(Config{})
	release := make(chan struct{})
	entered := make(chan struct{}, 16)
	srv.solveHook = func() {
		entered <- struct{}{}
		<-release
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	const n = 8
	body := quantifyBody(pubJSON, paperKnowledge)
	var wg sync.WaitGroup
	statuses := make([]int, n)
	bodies := make([][]byte, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, raw := postQuantify(t, ts, "/v1/quantify", body)
			statuses[i] = resp.StatusCode
			bodies[i] = raw
		}(i)
	}

	<-entered // leader holds the solve slot
	deadline := time.Now().Add(10 * time.Second)
	for srv.Registry().Counter("pmaxentd_coalesced_total").Value() < n-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d followers coalesced", srv.Registry().Counter("pmaxentd_coalesced_total").Value(), n-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	for i := 0; i < n; i++ {
		if statuses[i] != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, statuses[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("request %d got different bytes than request 0", i)
		}
	}
	if got := srv.Registry().Counter("pmaxent_quantify_total").Value(); got != 1 {
		t.Fatalf("pipeline ran %d solves for %d coalesced requests, want 1", got, n)
	}
}

// TestLoadShed: with one slot and no queue, a second distinct request is
// shed immediately with 429 and a Retry-After hint, and the first still
// completes cleanly.
func TestLoadShed(t *testing.T) {
	_, pubJSON := paperPublished(t)
	srv := New(Config{MaxInFlight: 1, MaxQueue: -1}) // negative = no queue
	release := make(chan struct{})
	entered := make(chan struct{}, 1)
	srv.solveHook = func() {
		entered <- struct{}{}
		<-release
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	type result struct {
		status int
		body   []byte
	}
	first := make(chan result, 1)
	go func() {
		resp, raw := postQuantify(t, ts, "/v1/quantify", quantifyBody(pubJSON, ""))
		first <- result{resp.StatusCode, raw}
	}()
	<-entered // the slot and the admission token are both held

	resp, raw := postQuantify(t, ts, "/v1/quantify", quantifyBody(pubJSON, paperKnowledge))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity status = %d, want 429: %s", resp.StatusCode, raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	var e ErrorResponse
	if err := json.Unmarshal(raw, &e); err != nil || e.Kind != "overloaded" {
		t.Fatalf("shed body = %s (err %v), want kind overloaded", raw, err)
	}
	if got := srv.Registry().Counter("pmaxentd_shed_total").Value(); got != 1 {
		t.Fatalf("shed counter = %d, want 1", got)
	}

	close(release)
	r := <-first
	if r.status != http.StatusOK {
		t.Fatalf("held request finished with %d: %s", r.status, r.body)
	}
}

// TestDrain: draining refuses new work with 503, flips readiness, lets
// the in-flight solve finish (converged, no interruption), and returns.
func TestDrain(t *testing.T) {
	_, pubJSON := paperPublished(t)
	srv := New(Config{})
	release := make(chan struct{})
	entered := make(chan struct{}, 1)
	srv.solveHook = func() {
		entered <- struct{}{}
		<-release
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	type result struct {
		status int
		body   []byte
	}
	first := make(chan result, 1)
	go func() {
		resp, raw := postQuantify(t, ts, "/v1/quantify", quantifyBody(pubJSON, paperKnowledge))
		first <- result{resp.StatusCode, raw}
	}()
	<-entered

	drained := make(chan error, 1)
	go func() { drained <- srv.Drain(context.Background()) }()
	// Drain flips the flag synchronously before waiting, but give the
	// goroutine a moment to be scheduled at all.
	deadline := time.Now().Add(5 * time.Second)
	for !srv.isDraining() {
		if time.Now().After(deadline) {
			t.Fatal("server never started draining")
		}
		time.Sleep(time.Millisecond)
	}

	resp, raw := postQuantify(t, ts, "/v1/quantify", quantifyBody(pubJSON, ""))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("request during drain: status = %d, want 503: %s", resp.StatusCode, raw)
	}
	ready, rawReady := postGet(t, ts, "/readyz")
	if ready.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain = %d, want 503: %s", ready.StatusCode, rawReady)
	}
	health, _ := postGet(t, ts, "/healthz")
	if health.StatusCode != http.StatusOK {
		t.Fatalf("healthz during drain = %d, want 200", health.StatusCode)
	}

	close(release)
	r := <-first
	if r.status != http.StatusOK {
		t.Fatalf("in-flight request during drain finished with %d: %s", r.status, r.body)
	}
	var qr QuantifyResponse
	if err := json.Unmarshal(r.body, &qr); err != nil {
		t.Fatal(err)
	}
	if !qr.Solver.Converged {
		t.Fatal("drained solve did not converge — drain interrupted it")
	}
	if err := <-drained; err != nil {
		t.Fatalf("Drain returned %v", err)
	}
}

func postGet(t *testing.T, ts *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// TestErrorMapping covers the HTTP side of the error taxonomy.
func TestErrorMapping(t *testing.T) {
	_, pubJSON := paperPublished(t)
	ts := httptest.NewServer(New(Config{}))
	defer ts.Close()

	cases := []struct {
		name   string
		path   string
		body   string
		status int
		kind   string
	}{
		{"malformed json", "/v1/quantify", `{"published": `, http.StatusBadRequest, "invalid_request"},
		{"unknown field", "/v1/quantify", `{"publishedd": {}}`, http.StatusBadRequest, "invalid_request"},
		{"missing published", "/v1/quantify", `{}`, http.StatusBadRequest, "invalid_request"},
		{"bad published", "/v1/quantify", `{"published": {"qi": 7}}`, http.StatusBadRequest, "invalid_request"},
		{"bad knowledge", "/v1/quantify",
			quantifyBody(pubJSON, `[{"if": {"Gender": "male"}, "then": "No Such Disease", "p": 0}]`),
			http.StatusBadRequest, "invalid_request"},
		{"audited vague", "/v1/quantify?audit=1",
			`{"published": ` + string(pubJSON) + `, "eps": 0.05}`,
			http.StatusBadRequest, "invalid_request"},
		// Pinning every disease to probability zero for males zeroes all
		// male terms, yet males exist in the published data — the bucket
		// invariants reduce to 0 = positive and presolve reports the
		// contradiction.
		{"infeasible", "/v1/quantify",
			quantifyBody(pubJSON, `[
				{"if": {"Gender": "male"}, "then": "Breast Cancer", "p": 0},
				{"if": {"Gender": "male"}, "then": "Flu", "p": 0},
				{"if": {"Gender": "male"}, "then": "Pneumonia", "p": 0},
				{"if": {"Gender": "male"}, "then": "HIV", "p": 0},
				{"if": {"Gender": "male"}, "then": "Lung Cancer", "p": 0}]`),
			http.StatusUnprocessableEntity, "infeasible"},
		{"mine missing csv", "/v1/rules/mine", `{"sa": "Disease"}`, http.StatusBadRequest, "invalid_request"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, raw := postQuantify(t, ts, tc.path, tc.body)
			if resp.StatusCode != tc.status {
				t.Fatalf("status = %d, want %d: %s", resp.StatusCode, tc.status, raw)
			}
			var e ErrorResponse
			if err := json.Unmarshal(raw, &e); err != nil {
				t.Fatalf("error body is not ErrorResponse: %v\n%s", err, raw)
			}
			if e.Kind != tc.kind {
				t.Fatalf("kind = %q, want %q (error: %s)", e.Kind, tc.kind, e.Error)
			}
		})
	}
}

// TestDeadline: a client timeout smaller than the work yields 504 while
// the detached solve finishes on its own.
func TestDeadline(t *testing.T) {
	_, pubJSON := paperPublished(t)
	srv := New(Config{})
	srv.solveHook = func() { time.Sleep(300 * time.Millisecond) }
	ts := httptest.NewServer(srv)
	defer ts.Close()

	body := `{"published": ` + string(pubJSON) + `, "timeout_ms": 50}`
	resp, raw := postQuantify(t, ts, "/v1/quantify", body)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504: %s", resp.StatusCode, raw)
	}
	var e ErrorResponse
	if err := json.Unmarshal(raw, &e); err != nil || e.Kind != "deadline" {
		t.Fatalf("deadline body = %s (err %v)", raw, err)
	}
}

// TestVagueQuantify: eps > 0 runs the inequality variant and bypasses
// the prepared cache.
func TestVagueQuantify(t *testing.T) {
	_, pubJSON := paperPublished(t)
	srv := New(Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	body := `{"published": ` + string(pubJSON) + `, "knowledge": ` + paperKnowledge + `, "eps": 0.05}`
	resp, raw := postQuantify(t, ts, "/v1/quantify", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, raw)
	}
	var r QuantifyResponse
	if err := json.Unmarshal(raw, &r); err != nil {
		t.Fatal(err)
	}
	if r.Cache != "bypass" {
		t.Fatalf("vague solve cache = %q, want bypass", r.Cache)
	}
	if r.Eps != 0.05 {
		t.Fatalf("eps echoed as %g", r.Eps)
	}
}

// TestMineEndpoint: mining over inline CSV returns named rules matching
// the paper's example (Gender=male ⇒ ¬Breast Cancer among them).
func TestMineEndpoint(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	tbl := dataset.PaperExample()
	var csv strings.Builder
	csv.WriteString("Name,Gender,Degree,Disease\n")
	for i := 0; i < tbl.Len(); i++ {
		sc := tbl.Schema()
		for j := 0; j < sc.Len(); j++ {
			if j > 0 {
				csv.WriteByte(',')
			}
			csv.WriteString(tbl.Value(i, j))
		}
		csv.WriteByte('\n')
	}
	reqBody, err := json.Marshal(&MineRequest{
		CSV: csv.String(), SA: "Disease", ID: []string{"Name"}, MinSupport: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, raw := postQuantify(t, ts, "/v1/rules/mine", string(reqBody))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, raw)
	}
	var r MineResponse
	if err := json.Unmarshal(raw, &r); err != nil {
		t.Fatal(err)
	}
	if r.Mined == 0 || r.Returned != len(r.Rules) {
		t.Fatalf("mine response inconsistent: %+v", r)
	}
	found := false
	for _, ru := range r.Rules {
		if !ru.Positive && ru.If["Gender"] == "male" && ru.Then == "Breast Cancer" {
			found = true
			if ru.P != 0 {
				t.Fatalf("male ⇒ ¬Breast Cancer pins P = %g, want 0", ru.P)
			}
		}
	}
	if !found {
		t.Fatalf("paper's Gender=male ⇒ ¬Breast Cancer rule not mined: %s", raw)
	}
}
