package server

import (
	"context"
	"sync"
	"time"

	"privacymaxent/internal/core"
)

// flightGroup coalesces identical in-flight requests: the first caller
// of a key becomes the leader and runs fn once in its own goroutine; any
// caller arriving with the same key while that run is in flight becomes
// a follower and receives the leader's bytes. Quantification is a pure
// function of (published view, knowledge, options), so identical
// requests under load — the hot pattern for a risk service sitting
// behind a dashboard — cost one solve instead of N.
//
// Unlike the classic singleflight, the leader's fn runs detached from
// any single request's context: a follower (or even the leader's own
// requester) timing out or disconnecting does not cancel the solve for
// the rest, and a completed solve still warms the prepared cache. fn
// receives no context here — it builds its own from the server's base
// context and solve budget.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	val  []byte
	err  error

	// solveID names the leader's live-solve registry entry; set at join
	// time under the group mutex, so followers reading it immediately
	// after join (to subscribe to the leader's event stream, or to stamp
	// their access-log line) observe it without racing the leader.
	solveID string

	// meta is the leader's request-level accounting — cache disposition,
	// queue wait, solve duration — written by the leader before done is
	// closed and read by followers only after <-done.
	meta callMeta
}

// callMeta is the per-flight accounting shared with followers for their
// access-log lines, plus the pipeline report the history record is built
// from (leader-only; written before done closes).
type callMeta struct {
	cache     string
	queueWait time.Duration
	solve     time.Duration
	report    *core.Report
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*flightCall)}
}

// join registers the caller on key's flight, starting fn in a detached
// goroutine when no flight is up. The boolean reports whether the caller
// joined an existing flight (false for the leader) — known immediately,
// so the server can count coalesced requests while they are still
// waiting, not after the fact. solveID labels the flight when this
// caller becomes the leader; fn receives the call so it can fill in the
// shared meta.
func (g *flightGroup) join(key, solveID string, fn func(c *flightCall) ([]byte, error)) (*flightCall, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.calls[key]; ok {
		return c, true
	}
	c := &flightCall{done: make(chan struct{}), solveID: solveID}
	g.calls[key] = c
	go func() {
		defer func() {
			g.mu.Lock()
			delete(g.calls, key)
			g.mu.Unlock()
			close(c.done)
		}()
		c.val, c.err = fn(c)
	}()
	return c, false
}

// wait blocks until the flight completes or ctx expires. The wait — not
// the work — is bounded by ctx: when ctx expires first, the caller gets
// ctx.Err() while the flight continues for everyone else.
func (c *flightCall) wait(ctx context.Context) ([]byte, error) {
	select {
	case <-c.done:
		return c.val, c.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}
