package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestSanitizeRequestID(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"empty", "", ""},
		{"token", "req-1.A_b:c", "req-1.A_b:c"},
		{"max length kept", strings.Repeat("a", maxRequestIDLen), strings.Repeat("a", maxRequestIDLen)},
		{"oversized dropped", strings.Repeat("a", maxRequestIDLen+1), ""},
		{"space rejected", "id with space", ""},
		{"control char rejected", "id\nnewline", ""},
		{"log-breaking quote rejected", `id"quote`, ""},
		{"non-ascii rejected", "idé", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := sanitizeRequestID(tc.in); got != tc.want {
				t.Errorf("sanitizeRequestID(%q) = %q, want %q", tc.in, got, tc.want)
			}
		})
	}
}

func TestParseTraceparent(t *testing.T) {
	const traceID = "4bf92f3577b34da6a3ce929d0e0e4736"
	cases := []struct {
		name, in string
		want     string
		ok       bool
	}{
		{"valid", "00-" + traceID + "-00f067aa0ba902b7-01", traceID, true},
		{"future version accepted", "cc-" + traceID + "-00f067aa0ba902b7-01", traceID, true},
		{"empty", "", "", false},
		{"too few parts", "00-" + traceID + "-01", "", false},
		{"too many parts", "00-" + traceID + "-00f067aa0ba902b7-01-extra", "", false},
		{"short trace-id", "00-abc123-00f067aa0ba902b7-01", "", false},
		{"long trace-id", "00-" + traceID + "ff-00f067aa0ba902b7-01", "", false},
		{"non-hex trace-id", "00-" + strings.Repeat("g", 32) + "-00f067aa0ba902b7-01", "", false},
		{"uppercase hex rejected", "00-" + strings.ToUpper(traceID) + "-00f067aa0ba902b7-01", "", false},
		{"non-hex version", "zz-" + traceID + "-00f067aa0ba902b7-01", "", false},
		{"short parent-id", "00-" + traceID + "-00f067aa-01", "", false},
		{"non-hex flags", "00-" + traceID + "-00f067aa0ba902b7-xx", "", false},
		{"all-zero trace-id invalid", "00-" + strings.Repeat("0", 32) + "-00f067aa0ba902b7-01", "", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, ok := parseTraceparent(tc.in)
			if got != tc.want || ok != tc.ok {
				t.Errorf("parseTraceparent(%q) = (%q, %v), want (%q, %v)", tc.in, got, ok, tc.want, tc.ok)
			}
		})
	}
}

// TestRequestIdentityFallback: a malformed client identity never leaks
// into the response — a fresh random ID is generated and echoed instead,
// and the traceparent fallback only applies when X-Request-Id is absent
// or rejected.
func TestRequestIdentityFallback(t *testing.T) {
	const traceID = "4bf92f3577b34da6a3ce929d0e0e4736"
	cases := []struct {
		name    string
		headers map[string]string
		want    string // "" means "a generated 32-hex ID"
	}{
		{"oversized X-Request-Id replaced", map[string]string{
			"X-Request-Id": strings.Repeat("x", maxRequestIDLen+1),
		}, ""},
		{"hostile X-Request-Id replaced", map[string]string{
			// A tab survives Go's client-side header validation but would
			// break log lines, so the server must regenerate.
			"X-Request-Id": "evil\theader",
		}, ""},
		{"bad version length falls through to generated", map[string]string{
			"Traceparent": "000-" + traceID + "-00f067aa0ba902b7-01",
		}, ""},
		{"non-hex trace-id falls through to generated", map[string]string{
			"Traceparent": "00-" + strings.Repeat("z", 32) + "-00f067aa0ba902b7-01",
		}, ""},
		{"valid traceparent used", map[string]string{
			"Traceparent": "00-" + traceID + "-00f067aa0ba902b7-01",
		}, traceID},
		{"rejected X-Request-Id still lets traceparent through", map[string]string{
			"X-Request-Id": "has spaces",
			"Traceparent":  "00-" + traceID + "-00f067aa0ba902b7-01",
		}, traceID},
	}
	ts := httptest.NewServer(New(Config{}))
	defer ts.Close()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
			if err != nil {
				t.Fatal(err)
			}
			for k, v := range tc.headers {
				req.Header.Set(k, v)
			}
			resp, err := ts.Client().Do(req)
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			got := resp.Header.Get("X-Request-Id")
			if tc.want != "" {
				if got != tc.want {
					t.Fatalf("X-Request-Id = %q, want %q", got, tc.want)
				}
				return
			}
			// Generated fallback: 32 lowercase hex chars, never the
			// client's bytes.
			if len(got) != 32 || !isHex(got) {
				t.Fatalf("X-Request-Id = %q, want a generated 32-hex ID", got)
			}
			for _, v := range tc.headers {
				if got == v {
					t.Fatalf("malformed client identity %q echoed back", v)
				}
			}
		})
	}
}
