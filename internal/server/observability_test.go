package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a bytes.Buffer safe for the detached solve goroutines
// that keep logging after the request returns.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// parseSSE splits a complete text/event-stream body into frames.
func parseSSE(t *testing.T, body []byte) []sseFrame {
	t.Helper()
	var frames []sseFrame
	var cur sseFrame
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.event != "" {
				frames = append(frames, cur)
				cur = sseFrame{}
			}
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = []byte(strings.TrimPrefix(line, "data: "))
		default:
			t.Fatalf("unexpected SSE line %q", line)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return frames
}

func frameIndex(frames []sseFrame, event string) int {
	for i, f := range frames {
		if f.event == event {
			return i
		}
	}
	return -1
}

// TestStreamQuantifyOrderedEvents: POST /v1/quantify?stream=1 answers
// with the solve's SSE stream in lifecycle order — solve.start, then at
// least one component.done, then solve.done, terminated by a "result"
// frame whose payload is byte-identical (volatile fields aside) to what
// a non-streamed request on a fresh server returns.
func TestStreamQuantifyOrderedEvents(t *testing.T) {
	_, pubJSON := paperPublished(t)
	body := quantifyBody(pubJSON, paperKnowledge)

	ts := httptest.NewServer(New(Config{}))
	defer ts.Close()
	resp, raw := postQuantify(t, ts, "/v1/quantify?stream=1", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}

	frames := parseSSE(t, raw)
	if len(frames) == 0 {
		t.Fatal("no SSE frames")
	}
	start := frameIndex(frames, "solve.start")
	comp := frameIndex(frames, "component.done")
	done := frameIndex(frames, "solve.done")
	result := frameIndex(frames, "result")
	if start < 0 || comp < 0 || done < 0 || result < 0 {
		t.Fatalf("missing lifecycle frames (start %d, component.done %d, done %d, result %d):\n%s",
			start, comp, done, result, raw)
	}
	if !(start < comp && comp < done && done < result) {
		t.Fatalf("frames out of order: start %d, component.done %d, done %d, result %d", start, comp, done, result)
	}
	if result != len(frames)-1 {
		t.Fatalf("result frame is not last (%d of %d)", result, len(frames))
	}

	// Every lifecycle frame names the same solve.
	var ev struct {
		SolveID string `json:"solve_id"`
	}
	if err := json.Unmarshal(frames[start].data, &ev); err != nil || ev.SolveID == "" {
		t.Fatalf("solve.start payload: %v (%s)", err, frames[start].data)
	}
	solveID := ev.SolveID
	for _, i := range []int{comp, done} {
		if err := json.Unmarshal(frames[i].data, &ev); err != nil || ev.SolveID != solveID {
			t.Fatalf("frame %q names solve %q, want %q", frames[i].event, ev.SolveID, solveID)
		}
	}

	// The result frame carries the exact non-streamed response. A second
	// fresh server makes the comparison a cold miss on both sides.
	ts2 := httptest.NewServer(New(Config{}))
	defer ts2.Close()
	resp2, plain := postQuantify(t, ts2, "/v1/quantify", body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("plain status = %d: %s", resp2.StatusCode, plain)
	}
	if got, want := stripVolatile(t, frames[result].data), stripVolatile(t, plain); !bytes.Equal(got, want) {
		t.Fatalf("result frame diverges from plain response:\nstream: %s\nplain:  %s", got, want)
	}
}

// TestSolveEventsReplay: a finished solve stays in the retention ring —
// /debug/solves reports it done with a live iteration count, and
// GET /v1/solves/{id}/events replays its full stream ending in the
// result frame. An unknown ID is a 404 with kind "not_found".
func TestSolveEventsReplay(t *testing.T) {
	_, pubJSON := paperPublished(t)
	ts := httptest.NewServer(New(Config{}))
	defer ts.Close()
	resp, raw := postQuantify(t, ts, "/v1/quantify", quantifyBody(pubJSON, paperKnowledge))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, raw)
	}

	dresp, draw := postGet(t, ts, "/debug/solves")
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/solves = %d: %s", dresp.StatusCode, draw)
	}
	var debug DebugSolvesResponse
	if err := json.Unmarshal(draw, &debug); err != nil {
		t.Fatal(err)
	}
	if len(debug.Solves) != 1 {
		t.Fatalf("got %d solves, want 1: %s", len(debug.Solves), draw)
	}
	st := debug.Solves[0]
	if st.State != "done" {
		t.Fatalf("state = %q, want done", st.State)
	}
	if st.Iterations == 0 {
		t.Fatal("finished solve reports zero iterations — the solver trace never reached the registry")
	}
	if st.Variables == 0 || st.ComponentsTotal == 0 || st.ComponentsDone != st.ComponentsTotal {
		t.Fatalf("progress fields not filled: %+v", st)
	}
	if st.RequestID != resp.Header.Get("X-Request-Id") {
		t.Fatalf("solve request_id = %q, response header = %q", st.RequestID, resp.Header.Get("X-Request-Id"))
	}

	eresp, eraw := postGet(t, ts, "/v1/solves/"+st.ID+"/events")
	if eresp.StatusCode != http.StatusOK {
		t.Fatalf("events status = %d: %s", eresp.StatusCode, eraw)
	}
	frames := parseSSE(t, eraw)
	if len(frames) == 0 || frames[len(frames)-1].event != "result" {
		t.Fatalf("replay does not end in result: %s", eraw)
	}
	if frameIndex(frames, "solve.start") != 0 {
		t.Fatalf("replay does not start with solve.start: %s", eraw)
	}

	nresp, nraw := postGet(t, ts, "/v1/solves/no-such-solve/events")
	if nresp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown solve status = %d, want 404: %s", nresp.StatusCode, nraw)
	}
	var e ErrorResponse
	if err := json.Unmarshal(nraw, &e); err != nil || e.Kind != "not_found" {
		t.Fatalf("unknown-solve body = %s (err %v), want kind not_found", nraw, err)
	}
}

// TestDebugSolvesLiveView: while a solve holds its slot, /debug/solves
// reports it running with its request ID — the operator's live table.
func TestDebugSolvesLiveView(t *testing.T) {
	_, pubJSON := paperPublished(t)
	srv := New(Config{})
	release := make(chan struct{})
	entered := make(chan struct{}, 1)
	srv.solveHook = func() {
		entered <- struct{}{}
		<-release
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/quantify",
			strings.NewReader(quantifyBody(pubJSON, paperKnowledge)))
		if err != nil {
			t.Error(err)
			return
		}
		req.Header.Set("X-Request-Id", "live-view-req")
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Error(err)
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	<-entered

	_, draw := postGet(t, ts, "/debug/solves")
	var debug DebugSolvesResponse
	if err := json.Unmarshal(draw, &debug); err != nil {
		t.Fatal(err)
	}
	if len(debug.Solves) != 1 {
		t.Fatalf("got %d solves, want 1: %s", len(debug.Solves), draw)
	}
	st := debug.Solves[0]
	if st.State != "running" {
		t.Fatalf("state = %q, want running", st.State)
	}
	if st.RequestID != "live-view-req" {
		t.Fatalf("request_id = %q, want live-view-req", st.RequestID)
	}
	if st.ID == "" || st.Digest == "" || st.Knowledge != 1 {
		t.Fatalf("live row incomplete: %+v", st)
	}

	close(release)
	<-done
}

// TestRequestIDPropagation: the same ID appears in the response header,
// the access-log line and the audit record; traceparent supplies it when
// X-Request-Id is absent; garbage client IDs are replaced.
func TestRequestIDPropagation(t *testing.T) {
	_, pubJSON := paperPublished(t)
	var logBuf syncBuffer
	srv := New(Config{Logger: slog.New(slog.NewJSONHandler(&logBuf, nil))})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/quantify?audit=1",
		strings.NewReader(quantifyBody(pubJSON, paperKnowledge)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", "client-chosen-id.1")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, raw)
	}
	if got := resp.Header.Get("X-Request-Id"); got != "client-chosen-id.1" {
		t.Fatalf("response X-Request-Id = %q, want the client's", got)
	}
	var qr QuantifyResponse
	if err := json.Unmarshal(raw, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Audit == nil || qr.Audit.RequestID != "client-chosen-id.1" {
		t.Fatalf("audit provenance lost the request ID: %+v", qr.Audit)
	}

	// The access-log line is written after the response; poll for it.
	deadline := time.Now().Add(5 * time.Second)
	var access map[string]any
	for access == nil {
		for _, line := range strings.Split(logBuf.String(), "\n") {
			if !strings.Contains(line, "pmaxentd: access") {
				continue
			}
			var ev map[string]any
			if err := json.Unmarshal([]byte(line), &ev); err == nil {
				access = ev
			}
		}
		if access == nil {
			if time.Now().After(deadline) {
				t.Fatalf("no access-log line:\n%s", logBuf.String())
			}
			time.Sleep(time.Millisecond)
		}
	}
	if access["request_id"] != "client-chosen-id.1" {
		t.Fatalf("access log request_id = %v", access["request_id"])
	}
	// The solve-event stream joins on the same IDs.
	var solveDone map[string]any
	for _, line := range strings.Split(logBuf.String(), "\n") {
		if strings.Contains(line, `"msg":"solve.done"`) {
			if err := json.Unmarshal([]byte(line), &solveDone); err != nil {
				t.Fatalf("corrupt solve.done line: %v\n%s", err, line)
			}
		}
	}
	if solveDone == nil {
		t.Fatalf("no solve.done event logged:\n%s", logBuf.String())
	}
	if solveDone["request_id"] != "client-chosen-id.1" || solveDone["solve_id"] != access["solve_id"] {
		t.Fatalf("solve.done not joined to the request: %v vs access %v", solveDone, access)
	}
	if access["solve_id"] == "" || access["cache"] != "miss" {
		t.Fatalf("access log incomplete: %v", access)
	}
	if access["status"] != float64(http.StatusOK) {
		t.Fatalf("access log status = %v", access["status"])
	}
	// The outcome field joins the access log to the history record (both
	// carry the request ID, the outcome confirms which way the solve went).
	if access["outcome"] != "ok" {
		t.Fatalf("access log outcome = %v, want ok", access["outcome"])
	}
}

func TestRequestIdentityHeaders(t *testing.T) {
	ts := httptest.NewServer(New(Config{}))
	defer ts.Close()

	get := func(hdr map[string]string) string {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
		if err != nil {
			t.Fatal(err)
		}
		for k, v := range hdr {
			req.Header.Set(k, v)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.Header.Get("X-Request-Id")
	}

	if got := get(map[string]string{"X-Request-Id": "abc-123"}); got != "abc-123" {
		t.Errorf("client ID not echoed: %q", got)
	}
	const traceID = "4bf92f3577b34da6a3ce929d0e0e4736"
	if got := get(map[string]string{"Traceparent": "00-" + traceID + "-00f067aa0ba902b7-01"}); got != traceID {
		t.Errorf("traceparent trace-id not adopted: %q", got)
	}
	// Hostile-but-transportable header: rejected wholesale, a fresh ID is
	// generated. (Raw control characters never reach the server — the
	// client refuses to send them.)
	if got := get(map[string]string{"X-Request-Id": "evil id{}"}); got == "evil id{}" || len(got) != 32 {
		t.Errorf("unsanitized or missing generated ID: %q", got)
	}
	if got := get(map[string]string{"X-Request-Id": strings.Repeat("x", maxRequestIDLen+1)}); len(got) != 32 {
		t.Errorf("oversized ID not replaced: %q", got)
	}
	// All-zero trace-id is invalid per the W3C spec.
	if got := get(map[string]string{"Traceparent": "00-" + strings.Repeat("0", 32) + "-00f067aa0ba902b7-01"}); len(got) != 32 || got == strings.Repeat("0", 32) {
		t.Errorf("all-zero trace-id should be replaced: %q", got)
	}
}

// TestRetryHint: the adaptive Retry-After follows the observed queue
// waits — the floor with no load, the rounded-up p50 under load.
func TestRetryHint(t *testing.T) {
	var h retryHint
	if got := h.seconds(time.Second); got != "1" {
		t.Errorf("empty hint = %s, want floor 1", got)
	}
	if got := h.seconds(0); got != "1" {
		t.Errorf("empty hint with zero floor = %s, want 1", got)
	}
	for i := 0; i < 10; i++ {
		h.observe(3200 * time.Millisecond)
	}
	if got := h.seconds(time.Second); got != "4" {
		t.Errorf("loaded hint = %s, want ceil(3.2) = 4", got)
	}
	// The ring forgets: 64 fast waits push the slow ones out.
	for i := 0; i < 64; i++ {
		h.observe(10 * time.Millisecond)
	}
	if got := h.seconds(time.Second); got != "1" {
		t.Errorf("recovered hint = %s, want floor 1", got)
	}
	h.observe(-time.Second) // clock weirdness must not poison the ring
	if got := h.p50(); got < 0 {
		t.Errorf("negative wait recorded: %v", got)
	}
}

// TestRetryAfterGrowsUnderLoad: once requests are observed waiting in
// the queue, a shed response's Retry-After exceeds the configured floor.
func TestRetryAfterGrowsUnderLoad(t *testing.T) {
	_, pubJSON := paperPublished(t)
	srv := New(Config{MaxInFlight: 1, MaxQueue: -1, RetryAfter: time.Second})
	release := make(chan struct{})
	entered := make(chan struct{}, 1)
	srv.solveHook = func() {
		entered <- struct{}{}
		<-release
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	first := make(chan struct{})
	go func() {
		defer close(first)
		postQuantify(t, ts, "/v1/quantify", quantifyBody(pubJSON, ""))
	}()
	<-entered

	// Unloaded: the shed hint is the floor.
	resp, raw := postQuantify(t, ts, "/v1/quantify", quantifyBody(pubJSON, paperKnowledge))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429: %s", resp.StatusCode, raw)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Fatalf("unloaded Retry-After = %s, want the 1s floor", got)
	}

	// Simulate a backed-up queue: recent admissions waited ~5s. (Driving
	// real multi-second waits would make the test as slow as the queue.)
	for i := 0; i < 16; i++ {
		srv.retry.observe(5 * time.Second)
	}
	resp, raw = postQuantify(t, ts, "/v1/quantify", quantifyBody(pubJSON, paperKnowledge))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429: %s", resp.StatusCode, raw)
	}
	got, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || got < 5 {
		t.Fatalf("loaded Retry-After = %q, want ≥ 5", resp.Header.Get("Retry-After"))
	}

	close(release)
	<-first
}

// TestMetricsExposition: the scrape is Prometheus text format carrying
// build info and every family in the checked-in metricslint allowlist —
// the same contract CI enforces against a live daemon.
func TestMetricsExposition(t *testing.T) {
	ts := httptest.NewServer(New(Config{}))
	defer ts.Close()

	resp, raw := postGet(t, ts, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
	scrape := string(raw)

	if !regexp.MustCompile(`(?m)^pmaxentd_build_info\{[^}]*version="[^"]+"[^}]*\} 1$`).MatchString(scrape) {
		t.Errorf("no pmaxentd_build_info series:\n%s", scrape)
	}

	allow, err := os.ReadFile(filepath.Join("..", "..", "scripts", "metricslint", "allowlist.txt"))
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(allow), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// Allowlist lines are "name" or "name count" (see metricslint);
		// only the name appears in the scrape.
		name, _, _ := strings.Cut(line, " ")
		if !regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + `(\{|_bucket\{| )`).MatchString(scrape) {
			t.Errorf("allowlisted family %q absent from a fresh server's scrape", name)
		}
	}
}

// TestHealthzBuildInfo: liveness carries build provenance.
func TestHealthzBuildInfo(t *testing.T) {
	ts := httptest.NewServer(New(Config{}))
	defer ts.Close()
	resp, raw := postGet(t, ts, "/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var h HealthzResponse
	if err := json.Unmarshal(raw, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Version == "" || h.GoVersion == "" {
		t.Fatalf("healthz incomplete: %s", raw)
	}
}

// TestCacheEviction: inserting past capacity fires the eviction callback
// exactly once per displaced entry; failed-build drops do not.
func TestCacheEviction(t *testing.T) {
	evicted := 0
	c := newPreparedCache(2, func() { evicted++ })
	c.get("a")
	c.get("b")
	if evicted != 0 {
		t.Fatalf("evictions before capacity: %d", evicted)
	}
	c.get("c") // displaces a
	if evicted != 1 {
		t.Fatalf("evictions = %d, want 1", evicted)
	}
	if _, hit := c.get("a"); hit {
		t.Fatal("evicted entry still resident")
	}
	evicted = 0
	c.drop("b")
	if evicted != 0 {
		t.Fatal("drop counted as an eviction")
	}
	if age := c.oldestAge(time.Now().Add(time.Minute)); age < time.Minute {
		t.Fatalf("oldestAge = %v, want ≥ 1m", age)
	}
	if newPreparedCache(3, nil).oldestAge(time.Now()) != 0 {
		t.Fatal("empty cache reports nonzero age")
	}
}
