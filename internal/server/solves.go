package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"privacymaxent/internal/history"
	"privacymaxent/internal/telemetry"
)

// The live solve registry is the server's in-flight introspection table:
// one liveSolve per single-flight leader, fed by the maxent lifecycle
// events (solve.start, decompose, presolve, component.done, solve.done,
// solve.failed) and the per-iteration solver trace via the
// telemetry.SolveObserver the leader installs in its context. The
// registry powers three surfaces:
//
//   - GET /debug/solves — a JSON snapshot of every live (and recently
//     finished) solve with iteration counts, current ∞-grad and
//     component progress;
//   - GET /v1/solves/{id}/events — an SSE stream of one solve's
//     lifecycle frames plus sampled iteration frames;
//   - POST /v1/quantify?stream=1 — the same stream, entered at request
//     time, terminated by a frame carrying the final response bytes.
//
// Iteration sampling: counters (iterations, grad, objective) update on
// every optimizer iteration, but an SSE "iteration" frame is emitted only
// for a component's first iteration and then at most once per
// iterationFrameInterval — a client watching a 10⁵-iteration solve sees
// a steady trickle, not a firehose, while /debug/solves always reads the
// exact live counters.

// iterationFrameInterval is the minimum spacing between emitted
// iteration SSE frames (per solve, across components).
const iterationFrameInterval = 100 * time.Millisecond

// defaultDoneRetention bounds the ring of finished solves kept for
// subscribe-after-done replay (a streamed request that lost the
// single-flight race, or a client connecting just as the solve ends).
// Overridable per server via Config.DoneRing (the -done-ring flag).
const defaultDoneRetention = 32

// sseFrame is one server-sent event: an event name and a single-line
// JSON payload.
type sseFrame struct {
	event string
	data  []byte
}

// terminalFrame reports whether the frame ends its stream.
func (f sseFrame) terminal() bool { return f.event == "result" || f.event == "error" }

// liveSolve tracks one single-flight solve. Hot-path progress lives in
// atomics (SolveIteration runs once per optimizer iteration, possibly
// from several component goroutines at once); lifecycle state, the frame
// replay log and the subscriber set live under mu.
type liveSolve struct {
	id        string
	requestID string
	digest    string
	// scheme names the publication scheme the request declared; empty
	// for the classic anatomy default (absent scheme field).
	scheme    string
	knowledge int
	eps       float64
	audit     bool
	started   time.Time
	// recovered marks an entry reconstructed from the history journal
	// after a restart rather than observed live; such entries carry no
	// event replay beyond a synthesized "recovered" frame, and their
	// elapsed time is the journaled one, frozen.
	recovered bool

	iterations     atomic.Int64
	gradBits       atomic.Uint64 // float64 bits of the last ∞-grad
	objBits        atomic.Uint64 // float64 bits of the last objective
	componentsDone atomic.Int64
	componentsTot  atomic.Int64
	variables      atomic.Int64
	reducedDim     atomic.Int64 // numeric dual dimension (structural presolve)
	eliminated     atomic.Int64 // buckets closed-formed by the presolve
	reusedComps    atomic.Int64 // components copied from a delta baseline
	dirtyComps     atomic.Int64 // components a delta solve re-solved
	lastFrameNS    atomic.Int64 // unix-nano of the last iteration frame

	mu        sync.Mutex
	state     string // "queued" → "running" → "done" | "failed"
	queueWait time.Duration
	frames    []sseFrame             // replay log, terminal frame last
	subs      map[chan sseFrame]bool // live subscribers
	closed    bool                   // terminal frame delivered
	// doneElapsed freezes the solve's wall clock at finish, so a finished
	// (or recovered) entry in /debug/solves stops aging.
	doneElapsed time.Duration
}

// SolveEvent implements telemetry.SolveObserver: lifecycle events become
// SSE frames and update the component counters the JSON snapshot reads.
func (ls *liveSolve) SolveEvent(name string, attrs ...telemetry.Attr) {
	switch name {
	case "solve.start":
		for _, a := range attrs {
			switch a.Key {
			case "variables":
				if v, ok := a.Value.(int); ok {
					ls.variables.Store(int64(v))
				}
			case "eliminated_buckets":
				if v, ok := a.Value.(int); ok {
					ls.eliminated.Store(int64(v))
				}
			}
		}
	case "solve.done":
		for _, a := range attrs {
			switch a.Key {
			case "reduced_dual_dim":
				if v, ok := a.Value.(int); ok {
					ls.reducedDim.Store(int64(v))
				}
			case "eliminated_buckets":
				if v, ok := a.Value.(int); ok {
					ls.eliminated.Store(int64(v))
				}
			case "reused_components":
				if v, ok := a.Value.(int); ok {
					ls.reusedComps.Store(int64(v))
				}
			case "dirty_components":
				if v, ok := a.Value.(int); ok {
					ls.dirtyComps.Store(int64(v))
				}
			}
		}
	case "decompose":
		for _, a := range attrs {
			if a.Key == "components" {
				if v, ok := a.Value.(int); ok {
					ls.componentsTot.Store(int64(v))
				}
			}
		}
	case "component.done":
		ls.componentsDone.Add(1)
	}
	ls.emit(sseFrame{event: name, data: ls.eventJSON(name, attrs)})
}

// SolveIteration implements telemetry.SolveObserver: every iteration
// updates the live counters; a frame is emitted only at the sampling
// cadence (see iterationFrameInterval).
func (ls *liveSolve) SolveIteration(component, iteration int, objective, gradNorm float64) {
	if iteration > 0 {
		ls.iterations.Add(1)
	}
	ls.gradBits.Store(math.Float64bits(gradNorm))
	ls.objBits.Store(math.Float64bits(objective))

	now := time.Now().UnixNano()
	last := ls.lastFrameNS.Load()
	if iteration != 1 && now-last < int64(iterationFrameInterval) {
		return
	}
	if !ls.lastFrameNS.CompareAndSwap(last, now) {
		return // another component just emitted; skip this sample
	}
	data, _ := json.Marshal(map[string]any{
		"solve_id":   ls.id,
		"component":  component,
		"iteration":  iteration,
		"objective":  objective,
		"grad_norm":  gradNorm,
		"elapsed_ms": ls.elapsedMS(),
	})
	ls.emit(sseFrame{event: "iteration", data: data})
}

// eventJSON renders a lifecycle event's payload: the solve ID and
// elapsed time plus the event's own attributes.
func (ls *liveSolve) eventJSON(name string, attrs []telemetry.Attr) []byte {
	m := make(map[string]any, len(attrs)+3)
	for _, a := range attrs {
		m[a.Key] = a.Value
	}
	m["event"] = name
	m["solve_id"] = ls.id
	m["elapsed_ms"] = ls.elapsedMS()
	data, _ := json.Marshal(m)
	return data
}

// elapsedMS is the solve's wall clock: live solves age, finished (and
// recovered) solves report the frozen at-completion value.
func (ls *liveSolve) elapsedMS() float64 {
	ls.mu.Lock()
	frozen := ls.doneElapsed
	ls.mu.Unlock()
	if frozen > 0 {
		return float64(frozen.Nanoseconds()) / 1e6
	}
	return float64(time.Since(ls.started).Nanoseconds()) / 1e6
}

// emit appends a frame to the replay log and fans it out to the live
// subscribers. Subscriber channels are buffered and dropped-from when
// full — a slow SSE client loses iteration samples, never blocks the
// solve. Terminal frames close the stream: subsequent subscribers get
// the full replay and an already-closed channel.
func (ls *liveSolve) emit(f sseFrame) {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if ls.closed {
		return
	}
	ls.frames = append(ls.frames, f)
	for ch := range ls.subs {
		select {
		case ch <- f:
		default: // slow client: drop the frame rather than stall the solve
		}
	}
	if f.terminal() {
		ls.closed = true
		for ch := range ls.subs {
			close(ch)
		}
		ls.subs = nil
	}
}

// subscribe returns the frames emitted so far and a channel for the
// rest. When the solve already finished, the channel is nil and the
// replay ends with the terminal frame.
func (ls *liveSolve) subscribe() (replay []sseFrame, ch chan sseFrame) {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	replay = append([]sseFrame(nil), ls.frames...)
	if ls.closed {
		return replay, nil
	}
	ch = make(chan sseFrame, 256)
	if ls.subs == nil {
		ls.subs = make(map[chan sseFrame]bool)
	}
	ls.subs[ch] = true
	return replay, ch
}

// unsubscribe detaches a subscriber channel (no-op after terminal close).
func (ls *liveSolve) unsubscribe(ch chan sseFrame) {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if ls.subs != nil && ls.subs[ch] {
		delete(ls.subs, ch)
		close(ch)
	}
}

// status snapshots the solve for the /debug/solves table.
func (ls *liveSolve) status() SolveStatus {
	ls.mu.Lock()
	state := ls.state
	queueWait := ls.queueWait
	ls.mu.Unlock()
	return SolveStatus{
		ID:               ls.id,
		RequestID:        ls.requestID,
		State:            state,
		Recovered:        ls.recovered,
		Digest:           ls.digest,
		Scheme:           ls.scheme,
		Knowledge:        ls.knowledge,
		Eps:              ls.eps,
		Audit:            ls.audit,
		Variables:        ls.variables.Load(),
		Iterations:       ls.iterations.Load(),
		GradNorm:         math.Float64frombits(ls.gradBits.Load()),
		Objective:        math.Float64frombits(ls.objBits.Load()),
		ComponentsDone:   ls.componentsDone.Load(),
		ComponentsTotal:  ls.componentsTot.Load(),
		ReducedDualDim:   ls.reducedDim.Load(),
		EliminatedBucket: ls.eliminated.Load(),
		ReusedComponents: ls.reusedComps.Load(),
		DirtyComponents:  ls.dirtyComps.Load(),
		QueueWaitMS:      float64(queueWait.Nanoseconds()) / 1e6,
		ElapsedMS:        ls.elapsedMS(),
	}
}

// solveRegistry owns the live table and the finished ring.
type solveRegistry struct {
	reg       *telemetry.Registry // solves_live gauge
	retention int                 // finished-ring capacity

	mu   sync.Mutex
	seq  int64
	live map[string]*liveSolve
	done []*liveSolve // most recent last, capped at retention
}

func newSolveRegistry(reg *telemetry.Registry, retention int) *solveRegistry {
	if retention <= 0 {
		retention = defaultDoneRetention
	}
	return &solveRegistry{reg: reg, retention: retention, live: make(map[string]*liveSolve)}
}

// begin registers a new solve in state "queued" and returns its handle.
// The ID is the digest prefix plus a monotonic sequence number — stable,
// unique for the daemon's lifetime, and greppable back to the cache key.
func (r *solveRegistry) begin(digest, requestID, schemeName string, knowledge int, eps float64, wantAudit bool) *liveSolve {
	r.mu.Lock()
	r.seq++
	short := digest
	if len(short) > 12 {
		short = short[:12]
	}
	ls := &liveSolve{
		id:        fmt.Sprintf("%s-%d", short, r.seq),
		requestID: requestID,
		digest:    digest,
		scheme:    schemeName,
		knowledge: knowledge,
		eps:       eps,
		audit:     wantAudit,
		started:   time.Now(),
		state:     "queued",
	}
	r.live[ls.id] = ls
	n := len(r.live)
	r.mu.Unlock()
	r.reg.Gauge("pmaxentd_solves_live").Set(float64(n))
	return ls
}

// abort removes a solve that never ran — the caller lost the
// single-flight race and is a follower of someone else's solve.
func (r *solveRegistry) abort(ls *liveSolve) {
	r.mu.Lock()
	delete(r.live, ls.id)
	n := len(r.live)
	r.mu.Unlock()
	r.reg.Gauge("pmaxentd_solves_live").Set(float64(n))
}

// markRunning transitions queued → running once the admission slot is
// held, recording how long the solve waited in line.
func (r *solveRegistry) markRunning(ls *liveSolve, queueWait time.Duration) {
	ls.mu.Lock()
	ls.state = "running"
	ls.queueWait = queueWait
	ls.mu.Unlock()
}

// finish records the terminal outcome and emits the stream's last frame:
// "result" carrying the exact response bytes on success, "error" with
// the failure otherwise. The solve moves from the live table to the
// finished ring so late subscribers still get a full replay.
func (r *solveRegistry) finish(ls *liveSolve, body []byte, err error) {
	ls.mu.Lock()
	if err != nil {
		ls.state = "failed"
	} else {
		ls.state = "done"
	}
	ls.doneElapsed = time.Since(ls.started)
	ls.mu.Unlock()

	if err != nil {
		data, _ := json.Marshal(map[string]any{
			"solve_id": ls.id,
			"error":    err.Error(),
		})
		ls.emit(sseFrame{event: "error", data: data})
	} else {
		ls.emit(sseFrame{event: "result", data: bytes.TrimRight(body, "\n")})
	}

	r.mu.Lock()
	delete(r.live, ls.id)
	r.done = append(r.done, ls)
	if len(r.done) > r.retention {
		r.done = r.done[len(r.done)-r.retention:]
	}
	n := len(r.live)
	r.mu.Unlock()
	r.reg.Gauge("pmaxentd_solves_live").Set(float64(n))
}

// adopt seeds the finished ring with a solve recovered from the history
// journal: /debug/solves and GET /v1/solves/{id}/events keep answering
// for pre-restart solves. The entry is already terminal — its replay is
// a single synthesized "recovered" frame (the original event stream died
// with the old process) and its elapsed time is the journaled one,
// frozen. Call in journal order (oldest first) before serving traffic.
func (r *solveRegistry) adopt(rec history.Record) {
	state := "done"
	if rec.Failed() {
		state = "failed"
	}
	ls := &liveSolve{
		id:          rec.SolveID,
		requestID:   rec.RequestID,
		digest:      rec.Digest,
		scheme:      rec.Scheme,
		knowledge:   rec.Knowledge,
		eps:         rec.Eps,
		audit:       rec.Audited,
		started:     time.Unix(0, rec.StartUnixNS),
		recovered:   true,
		state:       state,
		queueWait:   time.Duration(rec.QueueWaitMS * 1e6),
		doneElapsed: time.Duration(rec.ElapsedMS * 1e6),
	}
	if ls.doneElapsed <= 0 {
		ls.doneElapsed = time.Nanosecond // freeze even zero-length records
	}
	if s := rec.Solver; s != nil {
		ls.iterations.Store(int64(s.Iterations))
		ls.variables.Store(int64(s.Variables))
		ls.componentsTot.Store(int64(s.Components))
		ls.componentsDone.Store(int64(s.Components))
		ls.reducedDim.Store(int64(s.ReducedDualDim))
		ls.eliminated.Store(int64(s.EliminatedBuckets))
		ls.reusedComps.Store(int64(s.ReusedComponents))
		ls.dirtyComps.Store(int64(s.DirtyComponents))
	}
	data, _ := json.Marshal(map[string]any{
		"event":      "recovered",
		"solve_id":   ls.id,
		"outcome":    rec.Outcome,
		"elapsed_ms": rec.ElapsedMS,
	})
	ls.frames = []sseFrame{{event: "recovered", data: data}}
	ls.closed = true

	r.mu.Lock()
	r.done = append(r.done, ls)
	if len(r.done) > r.retention {
		r.done = r.done[len(r.done)-r.retention:]
	}
	r.mu.Unlock()
}

// find returns the solve with the given ID, live or recently finished.
func (r *solveRegistry) find(id string) *liveSolve {
	r.mu.Lock()
	defer r.mu.Unlock()
	if ls, ok := r.live[id]; ok {
		return ls
	}
	for i := len(r.done) - 1; i >= 0; i-- {
		if r.done[i].id == id {
			return r.done[i]
		}
	}
	return nil
}

// snapshot lists every live solve plus the finished ring, live first,
// each group oldest first — the /debug/solves body.
func (r *solveRegistry) snapshot() []SolveStatus {
	r.mu.Lock()
	live := make([]*liveSolve, 0, len(r.live))
	for _, ls := range r.live {
		live = append(live, ls)
	}
	done := append([]*liveSolve(nil), r.done...)
	r.mu.Unlock()

	// Map order is random; sort live solves oldest first by ID sequence
	// (IDs embed the monotonic counter, but started-time is simpler).
	for i := 1; i < len(live); i++ {
		for j := i; j > 0 && live[j].started.Before(live[j-1].started); j-- {
			live[j], live[j-1] = live[j-1], live[j]
		}
	}
	out := make([]SolveStatus, 0, len(live)+len(done))
	for _, ls := range live {
		out = append(out, ls.status())
	}
	for _, ls := range done {
		out = append(out, ls.status())
	}
	return out
}
