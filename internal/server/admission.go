package server

import (
	"context"
	"errors"
)

// ErrOverloaded reports that the admission queue was full when a request
// arrived. The HTTP layer maps it to 429 Too Many Requests with a
// Retry-After header.
var ErrOverloaded = errors.New("server: admission queue full")

// limiter is the server's admission controller: at most `slots` solves
// run concurrently, and at most `queue` further requests wait for a
// slot. A request that finds the queue full is shed immediately — the
// bounded queue is what turns overload into fast 429s instead of a pile
// of goroutines all missing their deadlines.
//
// The implementation is two semaphores: admitted (capacity slots+queue)
// bounds how many requests are inside the limiter at all, and running
// (capacity slots) bounds how many of those hold a solve slot. The gap
// between the two channel lengths is the queue depth.
type limiter struct {
	running  chan struct{}
	admitted chan struct{}
}

// newLimiter builds a limiter for `slots` concurrent solves and `queue`
// waiters. Values below 1 (slots) and 0 (queue) are clamped.
func newLimiter(slots, queue int) *limiter {
	if slots < 1 {
		slots = 1
	}
	if queue < 0 {
		queue = 0
	}
	return &limiter{
		running:  make(chan struct{}, slots),
		admitted: make(chan struct{}, slots+queue),
	}
}

// acquire admits the caller and blocks until a solve slot is free. It
// returns ErrOverloaded without blocking when the queue is full, and the
// context's error when ctx expires while queued. On nil error the caller
// must release().
func (l *limiter) acquire(ctx context.Context) error {
	select {
	case l.admitted <- struct{}{}:
	default:
		return ErrOverloaded
	}
	select {
	case l.running <- struct{}{}:
		return nil
	case <-ctx.Done():
		<-l.admitted
		return ctx.Err()
	}
}

// release frees the slot taken by a successful acquire.
func (l *limiter) release() {
	<-l.running
	<-l.admitted
}

// queued reports how many admitted requests are waiting for a slot.
func (l *limiter) queued() int {
	q := len(l.admitted) - len(l.running)
	if q < 0 {
		q = 0
	}
	return q
}

// inflight reports how many requests currently hold a solve slot.
func (l *limiter) inflight() int { return len(l.running) }
