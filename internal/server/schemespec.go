package server

// Publication-scheme resolution for the v1 API. A request may declare
// the scheme its published view was produced under ({"scheme": {"name":
// ..., "params": {...}}}); the server resolves the declaration into a
// scheme.Scheme, threads it through Prepare (the scheme decides what
// constraint rows the view certifies), and binds it into the
// publication digest so the prepared-system LRU, delta chains and
// history records never conflate two schemes — or two parameterizations
// of one scheme — over the same table. An absent field is the classic
// anatomy default and resolves to nil, keeping those requests
// byte-identical to the pre-scheme API.

import (
	"encoding/json"
	"errors"
	"fmt"

	"privacymaxent/internal/scheme"
)

// SchemeSpec is the wire form of a publication-scheme declaration, used
// on requests (client's declaration, params optional) and echoed on
// responses (canonical: defaults applied, fixed field order).
type SchemeSpec struct {
	// Name is the scheme identifier; GET /healthz lists the supported
	// names and their parameter schemas.
	Name string `json:"name"`
	// Params is the scheme's parameter object. Unknown fields and
	// out-of-range values are rejected with 400; absent params mean the
	// scheme's defaults.
	Params json.RawMessage `json:"params,omitempty"`
}

// errScheme marks scheme-spec failures (unknown name, malformed or
// invalid params) so writeError can attach the supported-scheme list to
// the structured 400 body.
var errScheme = errors.New("server: bad scheme")

// resolvedScheme is a parsed, validated scheme declaration: the scheme
// value plus its canonical parameter bytes (defaults applied, fixed
// field order) — the form digests, single-flight keys and response
// echoes bind. A nil *resolvedScheme is the absent-field default and
// every method tolerates it.
type resolvedScheme struct {
	sch    scheme.Scheme
	name   string
	params json.RawMessage
}

// resolveScheme parses a request's scheme declaration. A nil spec
// (absent field) resolves to nil: the classic anatomy default.
func resolveScheme(spec *SchemeSpec) (*resolvedScheme, error) {
	if spec == nil {
		return nil, nil
	}
	if spec.Name == "" {
		return nil, fmt.Errorf("%w: missing \"name\"", errScheme)
	}
	sch, err := scheme.Parse(spec.Name, spec.Params)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errScheme, err)
	}
	canon, err := scheme.CanonicalParams(sch)
	if err != nil {
		return nil, fmt.Errorf("server: canonical scheme params: %w", err)
	}
	return &resolvedScheme{sch: sch, name: sch.Name(), params: canon}, nil
}

// echo is the response's scheme field: canonical spec when the request
// declared a scheme, nil (omitted) otherwise — absent-field requests
// stay byte-identical to the pre-scheme API.
func (rs *resolvedScheme) echo() *SchemeSpec {
	if rs == nil {
		return nil
	}
	return &SchemeSpec{Name: rs.name, Params: rs.params}
}

// schemeOf returns the scheme value to prepare under; nil for the
// default.
func (rs *resolvedScheme) schemeOf() scheme.Scheme {
	if rs == nil {
		return nil
	}
	return rs.sch
}

// schemeName labels live solves and history records; empty for the
// default.
func (rs *resolvedScheme) schemeName() string {
	if rs == nil {
		return ""
	}
	return rs.name
}

// boxed reports whether solves route through the boxed (inequality)
// dual, which supports neither audits, vague (eps>0) knowledge, nor
// delta chaining.
func (rs *resolvedScheme) boxed() bool {
	return rs != nil && scheme.Boxed(rs.sch)
}

// key returns the bytes folded into the single-flight request key. An
// explicit declaration keys differently from the absent default even
// for anatomy: the response echoes the declaration, so the bytes
// differ.
func (rs *resolvedScheme) key() []byte {
	if rs == nil {
		return nil
	}
	k := make([]byte, 0, len(rs.name)+1+len(rs.params))
	k = append(k, rs.name...)
	k = append(k, 0)
	return append(k, rs.params...)
}
