// Package server implements pmaxentd, the Privacy-MaxEnt quantification
// service: an HTTP/JSON v1 API over the core pipeline that turns the
// offline batch tool into something a release process can call per
// candidate publication.
//
// The server's job beyond plumbing is to make repeated quantification of
// the same published view cheap and overload survivable:
//
//   - An LRU cache of prepared invariant systems keyed by a digest of the
//     published table D′. Background-knowledge rows are appended onto a
//     copy-on-append overlay (constraint.System.Clone) per request, so the
//     Theorem 1–3 invariant build is paid once per publication, not once
//     per request. Warm-start duals from converged solves on the same D′
//     seed later solves.
//   - Single-flight coalescing: identical in-flight requests share one
//     solve. The solve runs detached from any single request's context —
//     a caller giving up does not cancel the work for the rest.
//   - Admission control: a bounded concurrency limit plus a bounded
//     queue; beyond that, requests are shed immediately with 429 and a
//     Retry-After hint. Per-request deadlines flow into the pipeline as
//     context cancellation.
//   - Graceful drain: Drain stops admitting work, lets in-flight solves
//     finish, and only force-cancels them when its own deadline expires,
//     so SIGTERM never leaks ErrInterrupted into successful responses.
//
// Endpoints: POST /v1/quantify, POST /v1/rules/mine, GET /healthz,
// GET /readyz. Error bodies are ErrorResponse; the Kind field mirrors the
// facade error taxonomy (see the privacymaxent package's error docs).
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"privacymaxent/internal/assoc"
	"privacymaxent/internal/audit"
	"privacymaxent/internal/bucket"
	"privacymaxent/internal/constraint"
	"privacymaxent/internal/core"
	"privacymaxent/internal/dataset"
	"privacymaxent/internal/errs"
	"privacymaxent/internal/solver"
	"privacymaxent/internal/telemetry"
)

// errBadRequest marks client-side request errors (malformed JSON, bad
// published view, unparseable knowledge) for the 400 mapping.
var errBadRequest = errors.New("server: bad request")

// errDraining reports that the server has stopped admitting work.
var errDraining = errors.New("server: draining")

// maxBodyBytes bounds request bodies; published views are compact
// (values are interned strings), so this is generous.
const maxBodyBytes = 64 << 20

// Config tunes the server. The zero value serves with sensible defaults;
// Pipeline configures the underlying quantifier exactly as in the
// library and CLI.
type Config struct {
	// Pipeline is the core pipeline configuration. Pipeline.Audit is
	// ignored: auditing is selected per request with ?audit=1.
	Pipeline core.Config
	// CacheSize bounds the prepared-publication LRU. Default 16.
	CacheSize int
	// MaxInFlight bounds concurrent solves. Default GOMAXPROCS.
	MaxInFlight int
	// MaxQueue bounds requests waiting for a solve slot; beyond it
	// requests are shed with 429. Default 4×MaxInFlight; negative means
	// no queue at all (shed whenever every slot is busy).
	MaxQueue int
	// SolveTimeout is the server-side budget for one solve (and the cap
	// on any client-requested timeout_ms). Default 60s.
	SolveTimeout time.Duration
	// RetryAfter is the hint attached to 429/503 responses. Default 1s.
	RetryAfter time.Duration
	// AuditTop / AuditTolerance configure ?audit=1 audits; zero values
	// take the audit package defaults (5 rows, 1e-6).
	AuditTop       int
	AuditTolerance float64
	// Registry receives the server and pipeline metrics. A private
	// registry is created when nil so metrics code never branches.
	Registry *telemetry.Registry
	// Tracer, when non-nil, receives spans for every pipeline stage.
	Tracer *telemetry.Tracer
	// Logger receives structured request/drain logs; discard when nil.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	c.Pipeline.Audit = nil
	if c.CacheSize <= 0 {
		c.CacheSize = 16
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 4 * c.MaxInFlight
	} else if c.MaxQueue < 0 {
		c.MaxQueue = 0
	}
	if c.SolveTimeout <= 0 {
		c.SolveTimeout = 60 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.Registry == nil {
		c.Registry = telemetry.NewRegistry()
	}
	return c
}

// Server is the pmaxentd HTTP service. Create with New; it implements
// http.Handler.
type Server struct {
	cfg    Config
	q      *core.Quantifier
	cache  *preparedCache
	flight *flightGroup
	lim    *limiter
	reg    *telemetry.Registry
	log    *slog.Logger
	mux    *http.ServeMux

	// base is the detached context solves run under: it carries the
	// telemetry wiring and is canceled only by Close or a drain
	// deadline, never by an individual request.
	base       context.Context
	cancelBase context.CancelFunc

	// drainMu serializes admission against Drain: beginWork registers
	// in solves under a read lock so Drain's flag flip + Wait cannot
	// miss a just-admitted solve.
	drainMu  sync.RWMutex
	draining bool
	solves   sync.WaitGroup

	// solveHook, when set, runs on the leader goroutine after a solve
	// slot is acquired and before the solve starts — a test seam for
	// holding a slot at a known point.
	solveHook func()
}

// New builds a Server from cfg (see Config for defaults).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	base := telemetry.WithMetrics(context.Background(), cfg.Registry)
	if cfg.Tracer != nil {
		base = telemetry.WithTracer(base, cfg.Tracer)
	}
	if cfg.Logger != nil {
		base = telemetry.WithLogger(base, cfg.Logger)
	}
	base, cancel := context.WithCancel(base)
	s := &Server{
		cfg:        cfg,
		q:          core.New(cfg.Pipeline),
		cache:      newPreparedCache(cfg.CacheSize),
		flight:     newFlightGroup(),
		lim:        newLimiter(cfg.MaxInFlight, cfg.MaxQueue),
		reg:        cfg.Registry,
		log:        telemetry.Logger(base),
		base:       base,
		cancelBase: cancel,
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/quantify", s.handleQuantify)
	mux.HandleFunc("POST /v1/rules/mine", s.handleMine)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux = mux
	return s
}

// ServeHTTP dispatches to the v1 routes.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Registry exposes the server's metrics registry (for expvar/Prometheus
// export by the daemon).
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// isDraining reports whether the server has stopped admitting work.
func (s *Server) isDraining() bool {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	return s.draining
}

// beginWork registers a unit of solve work, refusing when draining. Every
// true return must be paired with endWork.
func (s *Server) beginWork() bool {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	if s.draining {
		return false
	}
	s.solves.Add(1)
	return true
}

func (s *Server) endWork() { s.solves.Done() }

// Drain stops admitting requests and waits for in-flight solves to
// finish. When ctx expires first, the remaining solves are force-canceled
// (they fail with ErrInterrupted) and ctx's error is returned. After
// Drain, /readyz reports 503 and new requests are refused with 503.
func (s *Server) Drain(ctx context.Context) error {
	s.drainMu.Lock()
	already := s.draining
	s.draining = true
	s.drainMu.Unlock()
	if !already {
		s.log.Info("pmaxentd: draining", "inflight", s.lim.inflight(), "queued", s.lim.queued())
	}
	done := make(chan struct{})
	go func() {
		s.solves.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.cancelBase()
		<-done
		return ctx.Err()
	}
}

// Close force-cancels all in-flight work immediately. Prefer Drain.
func (s *Server) Close() error {
	s.drainMu.Lock()
	s.draining = true
	s.drainMu.Unlock()
	s.cancelBase()
	s.solves.Wait()
	return nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":        "ready",
		"cache_entries": s.cache.len(),
		"inflight":      s.lim.inflight(),
		"queued":        s.lim.queued(),
	})
}

// waitBudget derives the time a caller is willing to wait: the client's
// timeout_ms capped by the server's solve budget (the solve cannot take
// longer anyway, so waiting longer only delays the error).
func (s *Server) waitBudget(timeoutMS int64) time.Duration {
	d := s.cfg.SolveTimeout
	if timeoutMS > 0 {
		if c := time.Duration(timeoutMS) * time.Millisecond; c < d {
			d = c
		}
	}
	return d
}

func (s *Server) handleQuantify(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.reg.Counter("pmaxentd_requests_total").Add(1)
	if s.isDraining() {
		s.writeError(w, errDraining)
		return
	}

	var req QuantifyRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	if len(req.Published) == 0 {
		s.writeError(w, fmt.Errorf("%w: missing \"published\"", errBadRequest))
		return
	}
	pub, err := bucket.ReadJSON(bytes.NewReader(req.Published))
	if err != nil {
		s.writeError(w, fmt.Errorf("%w: published view: %v", errBadRequest, err))
		return
	}
	var knowledge []constraint.DistributionKnowledge
	if len(req.Knowledge) > 0 {
		knowledge, err = constraint.ParseKnowledgeJSON(bytes.NewReader(req.Knowledge), pub.Schema())
		if err != nil {
			s.writeError(w, fmt.Errorf("%w: knowledge: %v", errBadRequest, err))
			return
		}
	}
	wantAudit := boolQuery(r, "audit")
	if wantAudit && req.Eps > 0 {
		s.writeError(w, fmt.Errorf("%w: vague (eps>0) solves are not audited", errBadRequest))
		return
	}
	digest, err := DigestPublished(pub)
	if err != nil {
		s.writeError(w, err)
		return
	}

	// The wait — not the solve — is bounded by the request context. The
	// leader runs detached under the server's base context so followers
	// (and the leader's own requester) can give up independently.
	waitCtx, cancel := context.WithTimeout(r.Context(), s.waitBudget(req.TimeoutMS))
	defer cancel()
	key := requestKey(digest, req.Knowledge, req.Eps, wantAudit)
	call, joined := s.flight.join(key, func() ([]byte, error) {
		return s.runQuantify(pub, knowledge, digest, req.Eps, wantAudit)
	})
	if joined {
		s.reg.Counter("pmaxentd_coalesced_total").Add(1)
	}
	body, err := call.wait(waitCtx)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.reg.Histogram("pmaxentd_request_duration_seconds", telemetry.DurationBuckets).
		Observe(time.Since(start).Seconds())
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

// runQuantify is the single-flight leader: admission, prepared-cache
// lookup/build, solve, and response encoding. It runs detached from any
// request context.
func (s *Server) runQuantify(pub *bucket.Bucketized, knowledge []constraint.DistributionKnowledge, digest string, eps float64, wantAudit bool) ([]byte, error) {
	start := time.Now()
	if !s.beginWork() {
		return nil, errDraining
	}
	defer s.endWork()

	ctx, cancel := context.WithTimeout(s.base, s.cfg.SolveTimeout)
	defer cancel()
	ctx, span := telemetry.Start(ctx, "server.quantify",
		telemetry.String("digest", digest[:12]),
		telemetry.Int("knowledge", len(knowledge)),
		telemetry.Float("eps", eps),
		telemetry.Bool("audit", wantAudit))
	defer span.End()

	if err := s.lim.acquire(ctx); err != nil {
		if errors.Is(err, ErrOverloaded) {
			s.reg.Counter("pmaxentd_shed_total").Add(1)
		}
		return nil, err
	}
	defer func() {
		s.lim.release()
		s.observeLoad()
	}()
	s.observeLoad()
	if s.solveHook != nil {
		s.solveHook()
	}

	var auditOpts *audit.Options
	if wantAudit {
		auditOpts = &audit.Options{Top: s.cfg.AuditTop, Tolerance: s.cfg.AuditTolerance}
	}

	var rep *core.Report
	cacheState := "bypass"
	if eps > 0 {
		// Vague solves build a fresh inequality system; the equality
		// base is not reusable, so the prepared cache is bypassed.
		var err error
		rep, err = s.q.QuantifyVagueContext(ctx, pub, knowledge, eps, nil)
		if err != nil {
			return nil, s.solveErr(ctx, err)
		}
	} else {
		entry, hit := s.cache.get(digest)
		if hit {
			cacheState = "hit"
			s.reg.Counter("pmaxentd_cache_hits_total").Add(1)
		} else {
			cacheState = "miss"
			s.reg.Counter("pmaxentd_cache_misses_total").Add(1)
		}
		prepared, prepTime, err := entry.build(ctx, s.q, pub)
		if err != nil {
			s.cache.drop(digest)
			return nil, s.solveErr(ctx, err)
		}
		rep, err = prepared.QuantifyWithOptions(ctx, core.QuantifyOptions{
			Knowledge: knowledge,
			Warm:      entry.takeWarm(),
			Audit:     auditOpts,
		})
		if err != nil {
			return nil, s.solveErr(ctx, err)
		}
		if rep.Solution.Stats.Converged {
			entry.storeWarm(rep.Solution.Duals)
		}
		if cacheState == "miss" {
			// The builder reports the invariant-build cost; cache hits
			// never carry a "prepare" stage — the observable signal that
			// the build was skipped.
			tm := core.Timings{{Stage: core.StagePrepare, Duration: prepTime}}
			tm.Merge(rep.Timings)
			rep.Timings = tm
		}
	}
	s.reg.Gauge("pmaxentd_cache_entries").Set(float64(s.cache.len()))

	resp := buildResponse(digest, cacheState, eps, pub.Schema(), rep, s.q.Config().Solve.Algorithm)
	resp.ElapsedMS = float64(time.Since(start).Nanoseconds()) / 1e6
	body, err := json.Marshal(resp)
	if err != nil {
		return nil, fmt.Errorf("server: encoding response: %w", err)
	}
	return append(body, '\n'), nil
}

// solveErr refines a solve failure: when the server-side budget expired,
// the interrupted-solve error is reported as a deadline (504), not a
// cancellation (499).
func (s *Server) solveErr(ctx context.Context, err error) error {
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		return fmt.Errorf("server: solve budget (%v) exhausted: %w", s.cfg.SolveTimeout, context.DeadlineExceeded)
	}
	return err
}

func (s *Server) handleMine(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.reg.Counter("pmaxentd_requests_total").Add(1)
	if s.isDraining() {
		s.writeError(w, errDraining)
		return
	}
	var req MineRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	if req.CSV == "" || req.SA == "" {
		s.writeError(w, fmt.Errorf("%w: \"csv\" and \"sa\" are required", errBadRequest))
		return
	}
	roles := map[string]dataset.Role{req.SA: dataset.Sensitive}
	for _, id := range req.ID {
		roles[id] = dataset.Identifier
	}
	t, err := dataset.ReadCSV(strings.NewReader(req.CSV), roles)
	if err != nil {
		s.writeError(w, fmt.Errorf("%w: csv: %v", errBadRequest, err))
		return
	}
	if t.Schema().SAIndex() < 0 {
		s.writeError(w, fmt.Errorf("%w: column %q not present", errs.ErrNoSensitiveAttribute, req.SA))
		return
	}

	if !s.beginWork() {
		s.writeError(w, errDraining)
		return
	}
	defer s.endWork()
	// Mining is not coalesced (requests carry whole tables and rarely
	// repeat), so it runs under the request context: a disconnected
	// client cancels its own mine.
	ctx, cancel := context.WithTimeout(r.Context(), s.waitBudget(req.TimeoutMS))
	defer cancel()
	ctx = telemetry.WithMetrics(ctx, s.reg)
	if s.cfg.Tracer != nil {
		ctx = telemetry.WithTracer(ctx, s.cfg.Tracer)
	}
	if err := s.lim.acquire(ctx); err != nil {
		if errors.Is(err, ErrOverloaded) {
			s.reg.Counter("pmaxentd_shed_total").Add(1)
		}
		s.writeError(w, err)
		return
	}
	defer func() {
		s.lim.release()
		s.observeLoad()
	}()
	s.observeLoad()

	rules, err := assoc.MineContext(ctx, t, assoc.Options{
		MinSupport: req.MinSupport,
		Sizes:      req.Sizes,
	})
	if err != nil {
		s.writeError(w, err)
		return
	}
	selected := rules
	if req.KPos > 0 || req.KNeg > 0 {
		selected = assoc.TopK(rules, req.KPos, req.KNeg)
	}
	schema := t.Schema()
	sa := schema.SA()
	wireRules := make([]MineRule, len(selected))
	for i := range selected {
		ru := &selected[i]
		cond := make(map[string]string, len(ru.Attrs))
		for j, pos := range ru.Attrs {
			cond[schema.Attr(pos).Name] = schema.Attr(pos).Value(ru.Values[j])
		}
		wireRules[i] = MineRule{
			If:         cond,
			Then:       sa.Value(ru.SA),
			Positive:   ru.Positive,
			Confidence: ru.Confidence,
			P:          ru.PSA(),
			Support:    ru.Support,
		}
	}
	s.reg.Counter("pmaxentd_mine_total").Add(1)
	writeJSON(w, http.StatusOK, &MineResponse{
		Mined:     len(rules),
		Returned:  len(wireRules),
		Rules:     wireRules,
		ElapsedMS: float64(time.Since(start).Nanoseconds()) / 1e6,
	})
}

// observeLoad publishes the admission gauges.
func (s *Server) observeLoad() {
	s.reg.Gauge("pmaxentd_inflight").Set(float64(s.lim.inflight()))
	s.reg.Gauge("pmaxentd_queue_depth").Set(float64(s.lim.queued()))
}

// statusClientClosedRequest is nginx's conventional code for "the client
// went away before the response": the request was canceled, not failed.
const statusClientClosedRequest = 499

// writeError maps an error onto the HTTP taxonomy and writes the
// ErrorResponse body. The mapping mirrors the facade's errors.Is
// documentation: infeasible → 422, interrupted/canceled → 499, deadline
// → 504, invalid input → 400, overload → 429, draining → 503.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	var status int
	var kind string
	switch {
	case errors.Is(err, ErrOverloaded):
		status, kind = http.StatusTooManyRequests, "overloaded"
		w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
	case errors.Is(err, errDraining):
		status, kind = http.StatusServiceUnavailable, "draining"
		w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
	case errors.Is(err, errs.ErrInfeasible):
		status, kind = http.StatusUnprocessableEntity, "infeasible"
	case errors.Is(err, context.DeadlineExceeded):
		status, kind = http.StatusGatewayTimeout, "deadline"
	case errors.Is(err, solver.ErrInterrupted), errors.Is(err, context.Canceled):
		status, kind = statusClientClosedRequest, "interrupted"
	case errors.Is(err, errBadRequest),
		errors.Is(err, errs.ErrInvalidSchema),
		errors.Is(err, errs.ErrNoSensitiveAttribute):
		status, kind = http.StatusBadRequest, "invalid_request"
	default:
		status, kind = http.StatusInternalServerError, "internal"
	}
	s.reg.Counter("pmaxentd_errors_total").Add(1)
	s.log.Warn("pmaxentd: request failed", "status", status, "kind", kind, "err", err)
	writeJSON(w, status, &ErrorResponse{Error: err.Error(), Kind: kind})
}

func retryAfterSeconds(d time.Duration) string {
	secs := int(d / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// decodeBody reads a JSON request body, rejecting unknown fields so a
// misspelled option fails loudly instead of silently running defaults.
func decodeBody(w http.ResponseWriter, r *http.Request, dst any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("%w: decoding body: %v", errBadRequest, err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func boolQuery(r *http.Request, name string) bool {
	switch r.URL.Query().Get(name) {
	case "1", "true", "yes":
		return true
	}
	return false
}
