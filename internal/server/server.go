// Package server implements pmaxentd, the Privacy-MaxEnt quantification
// service: an HTTP/JSON v1 API over the core pipeline that turns the
// offline batch tool into something a release process can call per
// candidate publication.
//
// The server's job beyond plumbing is to make repeated quantification of
// the same published view cheap and overload survivable:
//
//   - An LRU cache of prepared invariant systems keyed by a digest of the
//     published table D′. Background-knowledge rows are appended onto a
//     copy-on-append overlay (constraint.System.Clone) per request, so the
//     Theorem 1–3 invariant build is paid once per publication, not once
//     per request. Warm-start duals from converged solves on the same D′
//     seed later solves.
//   - Single-flight coalescing: identical in-flight requests share one
//     solve. The solve runs detached from any single request's context —
//     a caller giving up does not cancel the work for the rest.
//   - Admission control: a bounded concurrency limit plus a bounded
//     queue; beyond that, requests are shed immediately with 429 and a
//     Retry-After hint. Per-request deadlines flow into the pipeline as
//     context cancellation.
//   - Graceful drain: Drain stops admitting work, lets in-flight solves
//     finish, and only force-cancels them when its own deadline expires,
//     so SIGTERM never leaks ErrInterrupted into successful responses.
//
// Every request carries an identity: an X-Request-Id (accepted from the
// client, derived from a W3C traceparent, or generated) that is echoed
// in the response, threaded through spans, solve-event logs and audit
// provenance, and stamped on the one structured access-log line the
// server emits per request. In-flight solves are introspectable live:
// GET /debug/solves snapshots the solve table (iteration counts, current
// ∞-grad, component progress), GET /v1/solves/{id}/events streams one
// solve's lifecycle and sampled iteration events over SSE, and
// POST /v1/quantify?stream=1 enters that stream directly, terminated by
// a frame carrying the final response bytes.
//
// With Config.History set, every finished solve is also journaled
// durably (internal/history): GET /v1/history lists records across
// restarts, GET /v1/history/{digest} adds per-publication windowed
// aggregates, and GET /debug/regressions reports convergence/latency
// drifts the rolling detector has flagged. On startup the newest
// journaled records are adopted into the finished-solve ring, so
// /debug/solves and the SSE replay keep answering for pre-restart solve
// IDs (marked recovered, with frozen counters).
//
// Endpoints: POST /v1/quantify (+?stream=1), POST /v1/rules/mine,
// GET /v1/solves/{id}/events, GET /v1/history[/{digest}],
// GET /debug/solves, GET /debug/regressions, GET /metrics,
// GET /healthz, GET /readyz. Error bodies are ErrorResponse; the Kind
// field mirrors the facade error taxonomy (see the privacymaxent
// package's error docs).
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"privacymaxent/internal/assoc"
	"privacymaxent/internal/audit"
	"privacymaxent/internal/bucket"
	"privacymaxent/internal/buildinfo"
	"privacymaxent/internal/constraint"
	"privacymaxent/internal/core"
	"privacymaxent/internal/dataset"
	"privacymaxent/internal/errs"
	"privacymaxent/internal/history"
	"privacymaxent/internal/scheme"
	"privacymaxent/internal/solver"
	"privacymaxent/internal/telemetry"
)

// errBadRequest marks client-side request errors (malformed JSON, bad
// published view, unparseable knowledge) for the 400 mapping.
var errBadRequest = errors.New("server: bad request")

// errDraining reports that the server has stopped admitting work.
var errDraining = errors.New("server: draining")

// errNotFound marks lookups of unknown resources (an unknown solve ID)
// for the 404 mapping.
var errNotFound = errors.New("server: not found")

// maxBodyBytes bounds request bodies; published views are compact
// (values are interned strings), so this is generous.
const maxBodyBytes = 64 << 20

// Config tunes the server. The zero value serves with sensible defaults;
// Pipeline configures the underlying quantifier exactly as in the
// library and CLI.
type Config struct {
	// Pipeline is the core pipeline configuration. Pipeline.Audit is
	// ignored: auditing is selected per request with ?audit=1.
	Pipeline core.Config
	// CacheSize bounds the prepared-publication LRU. Default 16.
	CacheSize int
	// MaxInFlight bounds concurrent solves. Default GOMAXPROCS.
	MaxInFlight int
	// MaxQueue bounds requests waiting for a solve slot; beyond it
	// requests are shed with 429. Default 4×MaxInFlight; negative means
	// no queue at all (shed whenever every slot is busy).
	MaxQueue int
	// SolveTimeout is the server-side budget for one solve (and the cap
	// on any client-requested timeout_ms). Default 60s.
	SolveTimeout time.Duration
	// RetryAfter is the hint attached to 429/503 responses. Default 1s.
	RetryAfter time.Duration
	// AuditTop / AuditTolerance configure ?audit=1 audits; zero values
	// take the audit package defaults (5 rows, 1e-6).
	AuditTop       int
	AuditTolerance float64
	// DeltaChain enables incremental solving (the -delta flag): each
	// publication's cache entry chains the most recent converged solve's
	// system and solution, and requests carrying "delta": true diff
	// against that baseline and re-solve only changed decomposition
	// components. Off by default; vague (eps>0) and audited solves never
	// use the chain. Reuse changes solver counters (iterations,
	// reused/dirty components), never the posterior.
	DeltaChain bool
	// History, when non-nil, receives a durable record for every finished
	// solve and backs GET /v1/history and /debug/regressions; its most
	// recent records also seed the done ring on startup, so /debug/solves
	// and the SSE replay survive a restart. Nil disables the endpoints
	// (they return 404).
	History *history.Store
	// DoneRing caps the ring of finished solves kept for /debug/solves
	// and subscribe-after-done SSE replay. Default 32. With History set,
	// up to DoneRing recovered records are adopted into the ring at
	// startup.
	DoneRing int
	// SSEKeepAlive is the idle interval after which event streams emit a
	// comment heartbeat (":" frame) so proxies don't sever long solves.
	// Default 15s; negative disables.
	SSEKeepAlive time.Duration
	// Registry receives the server and pipeline metrics. A private
	// registry is created when nil so metrics code never branches.
	Registry *telemetry.Registry
	// Tracer, when non-nil, receives spans for every pipeline stage.
	Tracer *telemetry.Tracer
	// Logger receives structured request/drain logs; discard when nil.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	c.Pipeline.Audit = nil
	if c.CacheSize <= 0 {
		c.CacheSize = 16
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 4 * c.MaxInFlight
	} else if c.MaxQueue < 0 {
		c.MaxQueue = 0
	}
	if c.SolveTimeout <= 0 {
		c.SolveTimeout = 60 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.DoneRing <= 0 {
		c.DoneRing = defaultDoneRetention
	}
	if c.SSEKeepAlive == 0 {
		c.SSEKeepAlive = 15 * time.Second
	}
	if c.Registry == nil {
		c.Registry = telemetry.NewRegistry()
	}
	return c
}

// Server is the pmaxentd HTTP service. Create with New; it implements
// http.Handler.
type Server struct {
	cfg    Config
	q      *core.Quantifier
	cache  *preparedCache
	flight *flightGroup
	lim    *limiter
	live   *solveRegistry
	retry  *retryHint
	reg    *telemetry.Registry
	log    *slog.Logger
	mux    *http.ServeMux

	// base is the detached context solves run under: it carries the
	// telemetry wiring and is canceled only by Close or a drain
	// deadline, never by an individual request.
	base       context.Context
	cancelBase context.CancelFunc

	// drainMu serializes admission against Drain: beginWork registers
	// in solves under a read lock so Drain's flag flip + Wait cannot
	// miss a just-admitted solve.
	drainMu  sync.RWMutex
	draining bool
	solves   sync.WaitGroup

	// sseClients counts attached event-stream subscribers (the
	// pmaxentd_sse_clients gauge).
	sseClients atomic.Int64

	// solveHook, when set, runs on the leader goroutine after a solve
	// slot is acquired and before the solve starts — a test seam for
	// holding a slot at a known point.
	solveHook func()
}

// New builds a Server from cfg (see Config for defaults).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	base := telemetry.WithMetrics(context.Background(), cfg.Registry)
	if cfg.Tracer != nil {
		base = telemetry.WithTracer(base, cfg.Tracer)
	}
	if cfg.Logger != nil {
		base = telemetry.WithLogger(base, cfg.Logger)
	}
	base, cancel := context.WithCancel(base)
	s := &Server{
		cfg:        cfg,
		q:          core.New(cfg.Pipeline),
		flight:     newFlightGroup(),
		lim:        newLimiter(cfg.MaxInFlight, cfg.MaxQueue),
		live:       newSolveRegistry(cfg.Registry, cfg.DoneRing),
		retry:      &retryHint{},
		reg:        cfg.Registry,
		log:        telemetry.Logger(base),
		base:       base,
		cancelBase: cancel,
	}
	s.cache = newPreparedCache(cfg.CacheSize, func() {
		s.reg.Counter("pmaxentd_cache_evictions_total").Add(1)
	})
	s.declareMetrics()
	if cfg.History != nil {
		// Seed the done ring with the newest recovered records so
		// pre-restart solves stay addressable; journal order (oldest of
		// the adopted slice first) keeps the ring newest-last.
		recs := cfg.History.Recent(cfg.DoneRing, "")
		for i := len(recs) - 1; i >= 0; i-- {
			s.live.adopt(recs[i])
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/quantify", s.handleQuantify)
	mux.HandleFunc("POST /v1/quantify/batch", s.handleQuantifyBatch)
	mux.HandleFunc("GET /v1/solves/{id}/events", s.handleSolveEvents)
	mux.HandleFunc("POST /v1/rules/mine", s.handleMine)
	mux.HandleFunc("GET /v1/history", s.handleHistory)
	mux.HandleFunc("GET /v1/history/{digest}", s.handleHistoryDigest)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/solves", s.handleDebugSolves)
	mux.HandleFunc("GET /debug/regressions", s.handleRegressions)
	s.mux = mux
	return s
}

// declareMetrics pre-registers every pmaxentd_* series so a scrape (and
// the CI allowlist check) sees the full surface from the first request —
// lazily created metrics would otherwise pop in and out of existence
// depending on which code paths have run. Each family carries HELP text;
// metricslint enforces both its presence and the unit-suffix convention.
func (s *Server) declareMetrics() {
	for name, help := range map[string]string{
		"pmaxentd_requests_total":            "HTTP requests accepted by the v1 API.",
		"pmaxentd_coalesced_total":           "Requests that joined another caller's in-flight solve.",
		"pmaxentd_shed_total":                "Requests shed with 429 because the admission queue was full.",
		"pmaxentd_errors_total":              "Requests that ended in an error response.",
		"pmaxentd_mine_total":                "Completed rule-mining requests.",
		"pmaxentd_batch_requests_total":      "Batch quantify requests accepted.",
		"pmaxentd_batch_variants_total":      "Knowledge variants solved across all batch requests.",
		"pmaxentd_cache_hits_total":          "Prepared-system cache hits.",
		"pmaxentd_cache_misses_total":        "Prepared-system cache misses.",
		"pmaxentd_cache_evictions_total":     "Prepared systems evicted from the LRU cache.",
		"pmaxentd_history_records_total":     "Solve records appended to the history store.",
		"pmaxentd_history_recovered_total":   "Solve records recovered from the journal at startup.",
		"pmaxentd_history_dropped_total":     "Records dropped because the write-behind queue was full.",
		"pmaxentd_history_torn_frames_total": "Torn or corrupt journal frames skipped during recovery.",
		"pmaxentd_history_fsyncs_total":      "Journal fsync calls.",
		"pmaxentd_regression_checks_total":   "Regression-detector refreshes.",
		"pmaxentd_regression_detected_total": "Regressions newly detected.",
		"pmaxentd_scheme_requests_total":     "Quantify requests that declared an explicit publication scheme.",
		"pmaxentd_scheme_unknown_total":      "Requests rejected for an unknown or malformed scheme declaration.",
		"pmaxentd_scheme_boxed_solves_total": "Solves routed through the boxed (inequality) dual for a boxed scheme.",
	} {
		s.reg.Counter(name)
		s.reg.SetHelp(name, help)
	}
	for name, help := range map[string]string{
		"pmaxentd_cache_entries":                  "Prepared systems currently cached.",
		"pmaxentd_cache_oldest_entry_age_seconds": "Age of the oldest cached prepared system.",
		"pmaxentd_inflight":                       "Solves currently holding an admission slot.",
		"pmaxentd_queue_depth":                    "Requests waiting for an admission slot.",
		"pmaxentd_solves_live":                    "Entries in the live solve table.",
		"pmaxentd_sse_clients":                    "Attached solve-event stream subscribers.",
		"pmaxentd_history_segments":               "Journal segment files on disk.",
		"pmaxentd_history_bytes":                  "Journal bytes on disk across all segments.",
		"pmaxentd_regression_active":              "Currently active convergence/latency regressions.",
	} {
		s.reg.Gauge(name)
		s.reg.SetHelp(name, help)
	}
	for name, help := range map[string]string{
		"pmaxentd_request_duration_seconds":        "End-to-end quantify request latency.",
		"pmaxentd_queue_wait_seconds":              "Time requests spent waiting for an admission slot.",
		"pmaxentd_prepare_duration_seconds":        "Invariant-system build time (cache misses only).",
		"pmaxentd_solve_duration_seconds":          "Optimizer solve-stage latency.",
		"pmaxentd_audit_duration_seconds":          "Solve-audit stage latency (?audit=1 only).",
		"pmaxentd_history_append_duration_seconds": "Journal append latency (write-behind path).",
	} {
		s.reg.Histogram(name, telemetry.DurationBuckets)
		s.reg.SetHelp(name, help)
	}
	// The pipeline-level pmaxent_* families are recorded by internal/core
	// and internal/maxent against the same registry; several only fire on
	// particular code paths (decomposed solves, non-convergence, the
	// structural presolve), so declare them all here for the same
	// scrape-stability reason.
	for name, help := range map[string]string{
		"pmaxent_bucketize_total":                     "Bucketize pipeline runs.",
		"pmaxent_mine_total":                          "Rule-mining pipeline runs.",
		"pmaxent_quantify_total":                      "Quantification pipeline runs.",
		"pmaxent_solve_total":                         "Maximum-entropy solves.",
		"pmaxent_solve_unconverged_total":             "Solves that hit the iteration cap before converging.",
		"pmaxent_solve_eliminated_buckets_total":      "Buckets the structural presolve solved in closed form.",
		"pmaxent_solve_reused_components_total":       "Components delta solves carried over verbatim from their baseline.",
		"pmaxent_solve_dirty_components_total":        "Components delta solves re-solved as changed or new.",
		"pmaxent_dual_iterations_total":               "Dual-optimizer iterations across all solves.",
		"pmaxent_decompose_buckets_total":             "Buckets routed through component decomposition.",
		"pmaxent_decompose_buckets_closed_form_total": "Decomposed singleton buckets answered in closed form.",
	} {
		s.reg.Counter(name)
		s.reg.SetHelp(name, help)
	}
	for name, help := range map[string]string{
		"pmaxent_solve_workers":        "Component workers used by the latest solve.",
		"pmaxent_solve_kernel_workers": "Kernel workers used by the latest solve.",
		"pmaxent_dual_last_grad_norm":  "Final infinity-norm dual gradient of the latest solve.",
	} {
		s.reg.Gauge(name)
		s.reg.SetHelp(name, help)
	}
	for name, help := range map[string]string{
		"pmaxent_bucketize_duration_seconds": "Bucketize stage latency.",
		"pmaxent_mine_duration_seconds":      "Rule-mining stage latency.",
		"pmaxent_quantify_duration_seconds":  "Whole quantification pipeline latency.",
		"pmaxent_solve_duration_seconds":     "Maximum-entropy solve latency.",
	} {
		s.reg.Histogram(name, telemetry.DurationBuckets)
		s.reg.SetHelp(name, help)
	}
	for name, help := range map[string]string{
		"pmaxent_bucketize_buckets":          "Buckets produced per bucketize run.",
		"pmaxent_mine_rules":                 "Rules mined per run.",
		"pmaxent_formulate_constraints":      "Constraints per formulated system.",
		"pmaxent_solve_iterations":           "Optimizer iterations per solve.",
		"pmaxent_solve_evaluations":          "Objective evaluations per solve.",
		"pmaxent_solve_active_variables":     "Active variables per solve.",
		"pmaxent_component_active_variables": "Active variables per decomposed component.",
		"pmaxent_solve_reduced_dual_dim":     "Numeric dual dimension after the structural presolve.",
	} {
		s.reg.Histogram(name, telemetry.CountBuckets)
		s.reg.SetHelp(name, help)
	}
	// The admission limits are configuration, but exporting them beside
	// the depth gauges lets a dashboard show utilization without knowing
	// the flags.
	s.reg.Gauge("pmaxentd_inflight_limit").Set(float64(s.cfg.MaxInFlight))
	s.reg.SetHelp("pmaxentd_inflight_limit", "Configured concurrent-solve limit.")
	s.reg.Gauge("pmaxentd_queue_limit").Set(float64(s.cfg.MaxQueue))
	s.reg.SetHelp("pmaxentd_queue_limit", "Configured admission-queue limit.")
	s.reg.SetHelp("pmaxentd_build_info", "Build provenance of the serving binary.")
	bi := buildinfo.Get()
	s.reg.Info("pmaxentd_build_info", map[string]string{
		"version":   bi.Version,
		"commit":    bi.Commit,
		"goversion": bi.GoVersion,
	})
}

// accessInfo accumulates the request-scoped fields of the access-log
// line that only the handler knows (which solve served it, cache
// disposition, queue wait). The middleware installs a pointer in the
// request context; handlers fill it in; the middleware logs it after the
// handler returns — handlers run synchronously inside ServeHTTP, so no
// locking is needed.
type accessInfo struct {
	solveID   string
	cache     string
	coalesced bool
	queueWait time.Duration
	solve     time.Duration
	// outcome is "ok" for successful solves and the error-taxonomy kind
	// otherwise — the field that joins an access-log line with the
	// history record written under the same request ID.
	outcome string
}

type accessInfoKey struct{}

// accessFrom returns the request's accessInfo; a throwaway struct when
// the middleware did not run (direct handler tests), so handlers never
// nil-check.
func accessFrom(ctx context.Context) *accessInfo {
	if ai, ok := ctx.Value(accessInfoKey{}).(*accessInfo); ok {
		return ai
	}
	return &accessInfo{}
}

// statusRecorder captures the status code and body size for the access
// log while passing Flush through — the SSE endpoints stream through
// this same wrapper.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (sr *statusRecorder) WriteHeader(code int) {
	if sr.status == 0 {
		sr.status = code
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	n, err := sr.ResponseWriter.Write(b)
	sr.bytes += int64(n)
	return n, err
}

func (sr *statusRecorder) Flush() {
	if f, ok := sr.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// ServeHTTP resolves the request's identity, dispatches to the v1
// routes, and emits one structured access-log line per request.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	rid := requestIdentity(r)
	w.Header().Set("X-Request-Id", rid)
	ai := &accessInfo{}
	ctx := telemetry.WithRequestID(r.Context(), rid)
	ctx = context.WithValue(ctx, accessInfoKey{}, ai)
	rec := &statusRecorder{ResponseWriter: w}
	s.mux.ServeHTTP(rec, r.WithContext(ctx))
	status := rec.status
	if status == 0 {
		status = http.StatusOK
	}
	s.log.Info("pmaxentd: access",
		"method", r.Method,
		"path", r.URL.Path,
		"status", status,
		"duration_ms", float64(time.Since(start).Nanoseconds())/1e6,
		"request_id", rid,
		"solve_id", ai.solveID,
		"cache", ai.cache,
		"outcome", ai.outcome,
		"coalesced", ai.coalesced,
		"queue_wait_ms", float64(ai.queueWait.Nanoseconds())/1e6,
		"solve_ms", float64(ai.solve.Nanoseconds())/1e6,
		"bytes", rec.bytes)
}

// Registry exposes the server's metrics registry (for expvar/Prometheus
// export by the daemon).
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// isDraining reports whether the server has stopped admitting work.
func (s *Server) isDraining() bool {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	return s.draining
}

// beginWork registers a unit of solve work, refusing when draining. Every
// true return must be paired with endWork.
func (s *Server) beginWork() bool {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	if s.draining {
		return false
	}
	s.solves.Add(1)
	return true
}

func (s *Server) endWork() { s.solves.Done() }

// Drain stops admitting requests and waits for in-flight solves to
// finish. When ctx expires first, the remaining solves are force-canceled
// (they fail with ErrInterrupted) and ctx's error is returned. After
// Drain, /readyz reports 503 and new requests are refused with 503.
func (s *Server) Drain(ctx context.Context) error {
	s.drainMu.Lock()
	already := s.draining
	s.draining = true
	s.drainMu.Unlock()
	if !already {
		s.log.Info("pmaxentd: draining", "inflight", s.lim.inflight(), "queued", s.lim.queued())
	}
	done := make(chan struct{})
	go func() {
		s.solves.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.cancelBase()
		<-done
		return ctx.Err()
	}
}

// Close force-cancels all in-flight work immediately. Prefer Drain.
func (s *Server) Close() error {
	s.drainMu.Lock()
	s.draining = true
	s.drainMu.Unlock()
	s.cancelBase()
	s.solves.Wait()
	return nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	bi := buildinfo.Get()
	writeJSON(w, http.StatusOK, &HealthzResponse{
		Status:    "ok",
		Version:   bi.Version,
		Commit:    bi.Commit,
		Modified:  bi.Modified,
		GoVersion: bi.GoVersion,
		Schemes:   scheme.Describe(),
	})
}

// handleMetrics serves the Prometheus text exposition of the registry,
// refreshing the point-in-time gauges first so a scrape never shows
// stale load or cache-age numbers.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.observeLoad()
	s.reg.Gauge("pmaxentd_cache_entries").Set(float64(s.cache.len()))
	s.reg.Gauge("pmaxentd_cache_oldest_entry_age_seconds").
		Set(s.cache.oldestAge(time.Now()).Seconds())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WriteProm(w)
}

// handleDebugSolves snapshots the live solve table (plus the retained
// ring of finished solves, distinguished by their state field).
func (s *Server) handleDebugSolves(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, &DebugSolvesResponse{Solves: s.live.snapshot()})
}

// handleSolveEvents streams one solve's event frames over SSE: the full
// replay of what already happened, then live frames until the terminal
// "result"/"error" frame. Works for finished solves still in the
// retention ring (pure replay) and for solves started by someone else —
// this is how an operator attaches to a long-running solve they saw in
// /debug/solves.
func (s *Server) handleSolveEvents(w http.ResponseWriter, r *http.Request) {
	ls := s.live.find(r.PathValue("id"))
	if ls == nil {
		s.writeError(w, r.Context(), fmt.Errorf("%w: unknown solve %q", errNotFound, r.PathValue("id")))
		return
	}
	s.streamFrames(w, r.Context(), ls)
}

// streamFrames writes a solve's SSE stream: replay, then live frames
// until terminal, ctx cancellation (client disconnect) or server drain.
func (s *Server) streamFrames(w http.ResponseWriter, ctx context.Context, ls *liveSolve) {
	fl, ok := w.(http.Flusher)
	if !ok {
		s.writeError(w, ctx, fmt.Errorf("server: response writer cannot stream"))
		return
	}
	replay, ch := ls.subscribe()
	if ch != nil {
		defer ls.unsubscribe(ch)
	}
	s.reg.Gauge("pmaxentd_sse_clients").Set(float64(s.sseClients.Add(1)))
	defer func() {
		s.reg.Gauge("pmaxentd_sse_clients").Set(float64(s.sseClients.Add(-1)))
	}()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-store")
	h.Set("X-Accel-Buffering", "no") // proxies must not buffer the stream
	w.WriteHeader(http.StatusOK)
	for _, f := range replay {
		writeSSE(w, f)
		if f.terminal() {
			fl.Flush()
			return
		}
	}
	fl.Flush()
	if ch == nil {
		return
	}
	// Idle streams heartbeat with an SSE comment frame so proxies and
	// load balancers don't sever a long solve between iteration samples.
	var keepAlive <-chan time.Time
	if s.cfg.SSEKeepAlive > 0 {
		t := time.NewTicker(s.cfg.SSEKeepAlive)
		defer t.Stop()
		keepAlive = t.C
	}
	for {
		select {
		case f, ok := <-ch:
			if !ok {
				return // terminal frame was delivered (or dropped); stream over
			}
			writeSSE(w, f)
			fl.Flush()
			if f.terminal() {
				return
			}
		case <-keepAlive:
			fmt.Fprint(w, ": keep-alive\n\n")
			fl.Flush()
		case <-ctx.Done():
			return
		}
	}
}

// writeSSE renders one frame in text/event-stream framing. Payloads are
// single-line JSON, so no data-line splitting is needed.
func writeSSE(w http.ResponseWriter, f sseFrame) {
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", f.event, f.data)
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":        "ready",
		"cache_entries": s.cache.len(),
		"inflight":      s.lim.inflight(),
		"queued":        s.lim.queued(),
		"schemes":       scheme.Names(),
	})
}

// waitBudget derives the time a caller is willing to wait: the client's
// timeout_ms capped by the server's solve budget (the solve cannot take
// longer anyway, so waiting longer only delays the error).
func (s *Server) waitBudget(timeoutMS int64) time.Duration {
	d := s.cfg.SolveTimeout
	if timeoutMS > 0 {
		if c := time.Duration(timeoutMS) * time.Millisecond; c < d {
			d = c
		}
	}
	return d
}

func (s *Server) handleQuantify(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.reg.Counter("pmaxentd_requests_total").Add(1)
	if s.isDraining() {
		s.writeError(w, r.Context(), errDraining)
		return
	}

	var req QuantifyRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.writeError(w, r.Context(), err)
		return
	}
	if len(req.Published) == 0 {
		s.writeError(w, r.Context(), fmt.Errorf("%w: missing \"published\"", errBadRequest))
		return
	}
	pub, err := bucket.ReadJSON(bytes.NewReader(req.Published))
	if err != nil {
		s.writeError(w, r.Context(), fmt.Errorf("%w: published view: %v", errBadRequest, err))
		return
	}
	var knowledge []constraint.DistributionKnowledge
	if len(req.Knowledge) > 0 {
		knowledge, err = constraint.ParseKnowledgeJSON(bytes.NewReader(req.Knowledge), pub.Schema())
		if err != nil {
			s.writeError(w, r.Context(), fmt.Errorf("%w: knowledge: %v", errBadRequest, err))
			return
		}
	}
	rs, err := resolveScheme(req.Scheme)
	if err != nil {
		s.writeError(w, r.Context(), err)
		return
	}
	if rs != nil {
		s.reg.Counter("pmaxentd_scheme_requests_total").Add(1)
	}
	wantAudit := boolQuery(r, "audit")
	if wantAudit && req.Eps > 0 {
		s.writeError(w, r.Context(), fmt.Errorf("%w: vague (eps>0) solves are not audited", errBadRequest))
		return
	}
	// Boxed schemes solve through the inequality dual, which carries no
	// audit trajectories and no vague-knowledge layering.
	if rs.boxed() && wantAudit {
		s.writeError(w, r.Context(), fmt.Errorf("%w: scheme %q solves are not audited", errBadRequest, rs.schemeName()))
		return
	}
	if rs.boxed() && req.Eps > 0 {
		s.writeError(w, r.Context(), fmt.Errorf("%w: scheme %q does not support vague (eps>0) knowledge", errBadRequest, rs.schemeName()))
		return
	}
	// Delta reuse needs the server-side chain and an equality solve whose
	// posterior the reuse cannot perturb: audited solves capture
	// per-component trajectories a reused component does not have, vague
	// solves bypass the prepared cache entirely, and boxed-scheme solves
	// have no decomposed equality components to diff.
	delta := req.Delta && s.cfg.DeltaChain && req.Eps == 0 && !wantAudit && !rs.boxed()
	digest, err := DigestScheme(pub, rs.schemeOf())
	if err != nil {
		s.writeError(w, r.Context(), err)
		return
	}

	// Every request pre-registers a live-solve entry; losing the
	// single-flight race below aborts it and adopts the leader's.
	ai := accessFrom(r.Context())
	ls := s.live.begin(digest, telemetry.RequestID(r.Context()), rs.schemeName(), len(knowledge), req.Eps, wantAudit)

	// The wait — not the solve — is bounded by the request context. The
	// leader runs detached under the server's base context so followers
	// (and the leader's own requester) can give up independently.
	waitCtx, cancel := context.WithTimeout(r.Context(), s.waitBudget(req.TimeoutMS))
	defer cancel()
	key := requestKey(digest, req.Knowledge, req.Eps, wantAudit, delta, rs.key())
	call, joined := s.flight.join(key, ls.id, func(c *flightCall) ([]byte, error) {
		body, err := s.runQuantify(pub, knowledge, digest, req.Eps, wantAudit, delta, rs, ls, &c.meta)
		s.live.finish(ls, body, err)
		s.recordHistory(ls, &c.meta, err)
		return body, err
	})
	if joined {
		s.live.abort(ls)
		s.reg.Counter("pmaxentd_coalesced_total").Add(1)
	}
	ai.solveID = call.solveID
	ai.coalesced = joined

	if boolQuery(r, "stream") {
		s.streamQuantify(w, waitCtx, call, ai)
		return
	}

	body, err := call.wait(waitCtx)
	fillMeta(ai, call)
	if err != nil {
		s.writeError(w, r.Context(), err)
		return
	}
	s.reg.Histogram("pmaxentd_request_duration_seconds", telemetry.DurationBuckets).
		Observe(time.Since(start).Seconds())
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

// fillMeta copies the flight's accounting into the access-log info —
// only once the flight finished; a caller that gave up while the solve
// was still running has nothing to report.
func fillMeta(ai *accessInfo, call *flightCall) {
	select {
	case <-call.done:
		ai.cache = call.meta.cache
		ai.queueWait = call.meta.queueWait
		ai.solve = call.meta.solve
		if call.err == nil {
			ai.outcome = "ok"
		} else if _, kind := classify(call.err); ai.outcome == "" {
			ai.outcome = kind
		}
	default:
	}
}

// recordHistory journals one finished solve. Runs on the single-flight
// leader goroutine right after the live registry's finish, so the record
// matches what /debug/solves and the SSE terminal frame reported.
func (s *Server) recordHistory(ls *liveSolve, meta *callMeta, solveErr error) {
	if s.cfg.History == nil {
		return
	}
	rec := history.Record{
		SolveID:     ls.id,
		RequestID:   ls.requestID,
		Digest:      ls.digest,
		Scheme:      ls.scheme,
		Outcome:     "ok",
		StartUnixNS: ls.started.UnixNano(),
		Knowledge:   ls.knowledge,
		Eps:         ls.eps,
		Audited:     ls.audit,
		Cache:       meta.cache,
		QueueWaitMS: float64(meta.queueWait.Nanoseconds()) / 1e6,
		ElapsedMS:   ls.elapsedMS(),
	}
	if solveErr != nil {
		rec.Outcome = "error"
		_, rec.ErrorKind = classify(solveErr)
	}
	if rep := meta.report; rep != nil {
		if len(rep.Timings) > 0 {
			rec.StagesMS = make(map[string]float64, len(rep.Timings))
			for _, st := range rep.Timings {
				rec.StagesMS[st.Stage] = float64(st.Duration.Nanoseconds()) / 1e6
			}
		}
		st := rep.Solution.Stats
		rec.Solver = &history.SolverSummary{
			Algorithm:         s.q.Config().Solve.Algorithm.String(),
			Iterations:        st.Iterations,
			Evaluations:       st.Evaluations,
			Converged:         st.Converged,
			MaxViolation:      st.MaxViolation,
			Components:        st.Components,
			Variables:         int(ls.variables.Load()),
			ReducedDualDim:    st.ReducedDualDim,
			EliminatedBuckets: st.EliminatedBuckets,
			ReusedComponents:  st.ReusedComponents,
			DirtyComponents:   st.DirtyComponents,
		}
		if a := rep.Audit; a != nil {
			rec.AuditSummary = &history.AuditSummary{
				MaxViolation: a.MaxViolation,
				DualityGap:   a.DualityGap,
				EntropyBits:  a.EntropyBits,
				Feasible:     a.Feasible,
			}
		}
	}
	s.cfg.History.Append(rec)
}

// streamQuantify serves POST /v1/quantify?stream=1: instead of blocking
// for the final bytes, the response becomes the solve's SSE stream —
// replayed from the start for followers who joined late — ending with a
// "result" frame that carries the exact bytes a non-streamed request
// would have received (or an "error" frame).
func (s *Server) streamQuantify(w http.ResponseWriter, ctx context.Context, call *flightCall, ai *accessInfo) {
	ls := s.live.find(call.solveID)
	if ls == nil {
		// The flight finished so long ago its registry entry aged out of
		// the retention ring; degrade to the non-streamed response.
		body, err := call.wait(ctx)
		fillMeta(ai, call)
		if err != nil {
			s.writeError(w, ctx, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(body)
		return
	}
	s.streamFrames(w, ctx, ls)
	fillMeta(ai, call)
}

// handleQuantifyBatch serves POST /v1/quantify/batch: many knowledge
// variants over one published view. Every variant runs through the same
// single-flight group and leader path as an individual POST /v1/quantify
// — same key, same response bytes — so the invariant system is prepared
// once, identical variants coalesce (with each other and with concurrent
// individual requests), and the admission limiter is the worker pool
// bounding batch parallelism exactly as it bounds independent requests.
//
// With "delta": true (and the server's -delta chain enabled), variants
// run sequentially instead: each diffs against the nearest previously
// converged variant chained on the publication's cache entry and
// re-solves only changed components.
//
// ?stream=1 turns the response into an SSE stream: one "variant.done"
// frame per completed variant (completion order), then a terminal
// "result" frame carrying the full batch response bytes.
func (s *Server) handleQuantifyBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.reg.Counter("pmaxentd_requests_total").Add(1)
	if s.isDraining() {
		s.writeError(w, r.Context(), errDraining)
		return
	}
	var req BatchQuantifyRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.writeError(w, r.Context(), err)
		return
	}
	if len(req.Published) == 0 {
		s.writeError(w, r.Context(), fmt.Errorf("%w: missing \"published\"", errBadRequest))
		return
	}
	if len(req.Variants) == 0 {
		s.writeError(w, r.Context(), fmt.Errorf("%w: missing \"variants\"", errBadRequest))
		return
	}
	pub, err := bucket.ReadJSON(bytes.NewReader(req.Published))
	if err != nil {
		s.writeError(w, r.Context(), fmt.Errorf("%w: published view: %v", errBadRequest, err))
		return
	}
	// Parse every variant up front: a malformed variant fails the whole
	// batch before any solve starts, not halfway through.
	parsed := make([][]constraint.DistributionKnowledge, len(req.Variants))
	for i, v := range req.Variants {
		if len(v.Knowledge) == 0 {
			continue
		}
		parsed[i], err = constraint.ParseKnowledgeJSON(bytes.NewReader(v.Knowledge), pub.Schema())
		if err != nil {
			s.writeError(w, r.Context(), fmt.Errorf("%w: variant %d knowledge: %v", errBadRequest, i, err))
			return
		}
	}
	rs, err := resolveScheme(req.Scheme)
	if err != nil {
		s.writeError(w, r.Context(), err)
		return
	}
	if rs != nil {
		s.reg.Counter("pmaxentd_scheme_requests_total").Add(1)
	}
	digest, err := DigestScheme(pub, rs.schemeOf())
	if err != nil {
		s.writeError(w, r.Context(), err)
		return
	}
	delta := req.Delta && s.cfg.DeltaChain && !rs.boxed()
	s.reg.Counter("pmaxentd_batch_requests_total").Add(1)
	s.reg.Counter("pmaxentd_batch_variants_total").Add(int64(len(req.Variants)))

	waitCtx, cancel := context.WithTimeout(r.Context(), s.waitBudget(req.TimeoutMS))
	defer cancel()
	rid := telemetry.RequestID(r.Context())

	runVariant := func(i int) BatchVariantResult {
		kraw := req.Variants[i].Knowledge
		ls := s.live.begin(digest, rid, rs.schemeName(), len(parsed[i]), 0, false)
		key := requestKey(digest, kraw, 0, false, delta, rs.key())
		call, joined := s.flight.join(key, ls.id, func(c *flightCall) ([]byte, error) {
			body, err := s.runQuantify(pub, parsed[i], digest, 0, false, delta, rs, ls, &c.meta)
			s.live.finish(ls, body, err)
			s.recordHistory(ls, &c.meta, err)
			return body, err
		})
		if joined {
			s.live.abort(ls)
			s.reg.Counter("pmaxentd_coalesced_total").Add(1)
		}
		out := BatchVariantResult{Index: i, SolveID: call.solveID}
		body, err := call.wait(waitCtx)
		if err != nil {
			_, kind := classify(err)
			out.Error = &ErrorResponse{Error: err.Error(), Kind: kind}
			return out
		}
		out.Response = json.RawMessage(bytes.TrimRight(body, "\n"))
		return out
	}

	results := make([]BatchVariantResult, len(req.Variants))
	completed := make(chan BatchVariantResult, len(req.Variants))
	go func() {
		if delta {
			// Sequential: variant i+1's diff sees variant i's converged
			// state — the chain is the point of the delta batch.
			for i := range req.Variants {
				completed <- runVariant(i)
			}
		} else {
			var wg sync.WaitGroup
			for i := range req.Variants {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					completed <- runVariant(i)
				}(i)
			}
			wg.Wait()
		}
		close(completed)
	}()

	stream := boolQuery(r, "stream")
	var fl http.Flusher
	if stream {
		if f, ok := w.(http.Flusher); ok {
			fl = f
			h := w.Header()
			h.Set("Content-Type", "text/event-stream")
			h.Set("Cache-Control", "no-store")
			h.Set("X-Accel-Buffering", "no")
			w.WriteHeader(http.StatusOK)
		} else {
			stream = false
		}
	}
	failed := 0
	for res := range completed {
		results[res.Index] = res
		if res.Error != nil {
			failed++
		}
		if stream {
			data, _ := json.Marshal(map[string]any{
				"index":      res.Index,
				"solve_id":   res.SolveID,
				"ok":         res.Error == nil,
				"elapsed_ms": float64(time.Since(start).Nanoseconds()) / 1e6,
			})
			writeSSE(w, sseFrame{event: "variant.done", data: data})
			fl.Flush()
		}
	}
	resp := &BatchQuantifyResponse{
		Digest:    digest,
		Scheme:    rs.echo(),
		Variants:  results,
		ElapsedMS: float64(time.Since(start).Nanoseconds()) / 1e6,
	}
	ai := accessFrom(r.Context())
	if failed == 0 {
		ai.outcome = "ok"
	} else if ai.outcome == "" {
		ai.outcome = "partial"
	}
	s.reg.Histogram("pmaxentd_request_duration_seconds", telemetry.DurationBuckets).
		Observe(time.Since(start).Seconds())
	if stream {
		data, _ := json.Marshal(resp)
		writeSSE(w, sseFrame{event: "result", data: data})
		fl.Flush()
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// runQuantify is the single-flight leader: admission, prepared-cache
// lookup/build, solve, and response encoding. It runs detached from any
// request context; ls receives its live progress and meta the
// accounting shared with coalesced followers. delta routes the solve
// through the publication's delta chain (see Config.DeltaChain); rs is
// the request's resolved publication scheme (nil = classic anatomy).
func (s *Server) runQuantify(pub *bucket.Bucketized, knowledge []constraint.DistributionKnowledge, digest string, eps float64, wantAudit, delta bool, rs *resolvedScheme, ls *liveSolve, meta *callMeta) ([]byte, error) {
	start := time.Now()
	if !s.beginWork() {
		return nil, errDraining
	}
	defer s.endWork()

	ctx, cancel := context.WithTimeout(s.base, s.cfg.SolveTimeout)
	defer cancel()
	// The detached context re-carries the leader request's identity (the
	// base context cannot: it is shared) plus the live-solve observer the
	// maxent lifecycle and iteration events feed. The solve-event logger
	// is re-tagged too, so every solve.start/…/solve.done JSONL line joins
	// the access log and audit on the same request and solve IDs.
	ctx = telemetry.WithRequestID(ctx, ls.requestID)
	ctx = telemetry.WithLogger(ctx,
		telemetry.Logger(ctx).With("request_id", ls.requestID, "solve_id", ls.id))
	ctx = telemetry.WithSolveObserver(ctx, ls)
	ctx, span := telemetry.Start(ctx, "server.quantify",
		telemetry.String("digest", digest[:12]),
		telemetry.String("request_id", ls.requestID),
		telemetry.String("solve_id", ls.id),
		telemetry.Int("knowledge", len(knowledge)),
		telemetry.Float("eps", eps),
		telemetry.Bool("audit", wantAudit))
	defer span.End()

	queueStart := time.Now()
	if err := s.lim.acquire(ctx); err != nil {
		if errors.Is(err, ErrOverloaded) {
			s.reg.Counter("pmaxentd_shed_total").Add(1)
		} else {
			// The request waited in line and gave up (or timed out):
			// that wait is real evidence for the Retry-After hint.
			s.noteQueueWait(time.Since(queueStart))
		}
		return nil, err
	}
	queueWait := time.Since(queueStart)
	s.noteQueueWait(queueWait)
	meta.queueWait = queueWait
	s.live.markRunning(ls, queueWait)
	defer func() {
		s.lim.release()
		s.observeLoad()
	}()
	s.observeLoad()
	if s.solveHook != nil {
		s.solveHook()
	}

	var auditOpts *audit.Options
	if wantAudit {
		auditOpts = &audit.Options{Top: s.cfg.AuditTop, Tolerance: s.cfg.AuditTolerance}
	}

	var rep *core.Report
	cacheState := "bypass"
	if eps > 0 {
		// Vague solves build a fresh inequality system; the equality
		// base is not reusable, so the prepared cache is bypassed.
		var err error
		rep, err = s.q.QuantifyVagueContext(ctx, pub, knowledge, eps, nil)
		if err != nil {
			return nil, s.solveErr(ctx, err)
		}
	} else {
		entry, hit := s.cache.get(digest)
		if hit {
			cacheState = "hit"
			s.reg.Counter("pmaxentd_cache_hits_total").Add(1)
		} else {
			cacheState = "miss"
			s.reg.Counter("pmaxentd_cache_misses_total").Add(1)
		}
		prepared, prepTime, err := entry.build(ctx, s.q, pub, rs.schemeOf())
		if err != nil {
			s.cache.drop(digest)
			return nil, s.solveErr(ctx, err)
		}
		if prepared.Boxed() {
			s.reg.Counter("pmaxentd_scheme_boxed_solves_total").Add(1)
		}
		qopts := core.QuantifyOptions{
			Knowledge: knowledge,
			Warm:      entry.takeWarm(),
			Audit:     auditOpts,
		}
		if delta {
			var next *core.DeltaState
			rep, next, err = prepared.QuantifyDelta(ctx, qopts, entry.takeState())
			if err != nil {
				return nil, s.solveErr(ctx, err)
			}
			entry.storeState(next)
		} else {
			rep, err = prepared.QuantifyWithOptions(ctx, qopts)
			if err != nil {
				return nil, s.solveErr(ctx, err)
			}
		}
		if rep.Solution.Stats.Converged {
			entry.storeWarm(rep.Solution.Duals)
		}
		if cacheState == "miss" {
			// The builder reports the invariant-build cost; cache hits
			// never carry a "prepare" stage — the observable signal that
			// the build was skipped.
			tm := core.Timings{{Stage: core.StagePrepare, Duration: prepTime}}
			tm.Merge(rep.Timings)
			rep.Timings = tm
		}
	}
	s.reg.Gauge("pmaxentd_cache_entries").Set(float64(s.cache.len()))
	meta.cache = cacheState
	meta.report = rep

	// Per-stage latency histograms from the pipeline's own timing
	// breakdown: prepare appears only on cache misses, audit only when
	// requested — absence of observations is itself the signal.
	for _, st := range rep.Timings {
		switch st.Stage {
		case core.StagePrepare:
			s.reg.Histogram("pmaxentd_prepare_duration_seconds", telemetry.DurationBuckets).
				Observe(st.Duration.Seconds())
		case core.StageSolve:
			meta.solve = st.Duration
			s.reg.Histogram("pmaxentd_solve_duration_seconds", telemetry.DurationBuckets).
				Observe(st.Duration.Seconds())
		case core.StageAudit:
			s.reg.Histogram("pmaxentd_audit_duration_seconds", telemetry.DurationBuckets).
				Observe(st.Duration.Seconds())
		}
	}

	resp := buildResponse(digest, cacheState, eps, pub.Schema(), rep, s.q.Config().Solve.Algorithm)
	resp.Scheme = rs.echo()
	resp.ElapsedMS = float64(time.Since(start).Nanoseconds()) / 1e6
	body, err := json.Marshal(resp)
	if err != nil {
		return nil, fmt.Errorf("server: encoding response: %w", err)
	}
	return append(body, '\n'), nil
}

// noteQueueWait feeds one observed admission wait into the queue-wait
// histogram and the adaptive Retry-After hint.
func (s *Server) noteQueueWait(d time.Duration) {
	s.retry.observe(d)
	s.reg.Histogram("pmaxentd_queue_wait_seconds", telemetry.DurationBuckets).
		Observe(d.Seconds())
}

// solveErr refines a solve failure: when the server-side budget expired,
// the interrupted-solve error is reported as a deadline (504), not a
// cancellation (499).
func (s *Server) solveErr(ctx context.Context, err error) error {
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		return fmt.Errorf("server: solve budget (%v) exhausted: %w", s.cfg.SolveTimeout, context.DeadlineExceeded)
	}
	return err
}

func (s *Server) handleMine(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.reg.Counter("pmaxentd_requests_total").Add(1)
	if s.isDraining() {
		s.writeError(w, r.Context(), errDraining)
		return
	}
	var req MineRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.writeError(w, r.Context(), err)
		return
	}
	if req.CSV == "" || req.SA == "" {
		s.writeError(w, r.Context(), fmt.Errorf("%w: \"csv\" and \"sa\" are required", errBadRequest))
		return
	}
	roles := map[string]dataset.Role{req.SA: dataset.Sensitive}
	for _, id := range req.ID {
		roles[id] = dataset.Identifier
	}
	t, err := dataset.ReadCSV(strings.NewReader(req.CSV), roles)
	if err != nil {
		s.writeError(w, r.Context(), fmt.Errorf("%w: csv: %v", errBadRequest, err))
		return
	}
	if t.Schema().SAIndex() < 0 {
		s.writeError(w, r.Context(), fmt.Errorf("%w: column %q not present", errs.ErrNoSensitiveAttribute, req.SA))
		return
	}

	if !s.beginWork() {
		s.writeError(w, r.Context(), errDraining)
		return
	}
	defer s.endWork()
	// Mining is not coalesced (requests carry whole tables and rarely
	// repeat), so it runs under the request context: a disconnected
	// client cancels its own mine.
	ctx, cancel := context.WithTimeout(r.Context(), s.waitBudget(req.TimeoutMS))
	defer cancel()
	ctx = telemetry.WithMetrics(ctx, s.reg)
	if s.cfg.Tracer != nil {
		ctx = telemetry.WithTracer(ctx, s.cfg.Tracer)
	}
	queueStart := time.Now()
	if err := s.lim.acquire(ctx); err != nil {
		if errors.Is(err, ErrOverloaded) {
			s.reg.Counter("pmaxentd_shed_total").Add(1)
		} else {
			s.noteQueueWait(time.Since(queueStart))
		}
		s.writeError(w, r.Context(), err)
		return
	}
	s.noteQueueWait(time.Since(queueStart))
	defer func() {
		s.lim.release()
		s.observeLoad()
	}()
	s.observeLoad()

	rules, err := assoc.MineContext(ctx, t, assoc.Options{
		MinSupport: req.MinSupport,
		Sizes:      req.Sizes,
	})
	if err != nil {
		s.writeError(w, r.Context(), err)
		return
	}
	selected := rules
	if req.KPos > 0 || req.KNeg > 0 {
		selected = assoc.TopK(rules, req.KPos, req.KNeg)
	}
	schema := t.Schema()
	sa := schema.SA()
	wireRules := make([]MineRule, len(selected))
	for i := range selected {
		ru := &selected[i]
		cond := make(map[string]string, len(ru.Attrs))
		for j, pos := range ru.Attrs {
			cond[schema.Attr(pos).Name] = schema.Attr(pos).Value(ru.Values[j])
		}
		wireRules[i] = MineRule{
			If:         cond,
			Then:       sa.Value(ru.SA),
			Positive:   ru.Positive,
			Confidence: ru.Confidence,
			P:          ru.PSA(),
			Support:    ru.Support,
		}
	}
	s.reg.Counter("pmaxentd_mine_total").Add(1)
	writeJSON(w, http.StatusOK, &MineResponse{
		Mined:     len(rules),
		Returned:  len(wireRules),
		Rules:     wireRules,
		ElapsedMS: float64(time.Since(start).Nanoseconds()) / 1e6,
	})
}

// observeLoad publishes the admission gauges.
func (s *Server) observeLoad() {
	s.reg.Gauge("pmaxentd_inflight").Set(float64(s.lim.inflight()))
	s.reg.Gauge("pmaxentd_queue_depth").Set(float64(s.lim.queued()))
}

// statusClientClosedRequest is nginx's conventional code for "the client
// went away before the response": the request was canceled, not failed.
const statusClientClosedRequest = 499

// classify maps an error onto the HTTP taxonomy. The mapping mirrors the
// facade's errors.Is documentation: infeasible → 422, interrupted/
// canceled → 499, deadline → 504, invalid input → 400, overload → 429,
// draining → 503. The kind also labels history records and the
// access-log outcome field, so every surface agrees on what a failure
// was.
func classify(err error) (status int, kind string) {
	switch {
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests, "overloaded"
	case errors.Is(err, errDraining):
		return http.StatusServiceUnavailable, "draining"
	case errors.Is(err, errNotFound):
		return http.StatusNotFound, "not_found"
	case errors.Is(err, errs.ErrInfeasible):
		return http.StatusUnprocessableEntity, "infeasible"
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, "deadline"
	case errors.Is(err, solver.ErrInterrupted), errors.Is(err, context.Canceled):
		return statusClientClosedRequest, "interrupted"
	case errors.Is(err, errBadRequest),
		errors.Is(err, errScheme),
		errors.Is(err, errs.ErrInvalidSchema),
		errors.Is(err, errs.ErrNoSensitiveAttribute):
		return http.StatusBadRequest, "invalid_request"
	default:
		return http.StatusInternalServerError, "internal"
	}
}

// writeError classifies err, stamps the access-log outcome, and writes
// the ErrorResponse body.
func (s *Server) writeError(w http.ResponseWriter, ctx context.Context, err error) {
	status, kind := classify(err)
	accessFrom(ctx).outcome = kind
	switch status {
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		w.Header().Set("Retry-After", s.retry.seconds(s.cfg.RetryAfter))
	}
	s.reg.Counter("pmaxentd_errors_total").Add(1)
	s.log.Warn("pmaxentd: request failed", "status", status, "kind", kind, "err", err)
	resp := &ErrorResponse{Error: err.Error(), Kind: kind}
	if errors.Is(err, errScheme) {
		// Scheme failures carry the supported-name list so a client can
		// self-correct without a second round trip to /healthz.
		resp.Supported = scheme.Names()
		s.reg.Counter("pmaxentd_scheme_unknown_total").Add(1)
	}
	writeJSON(w, status, resp)
}

// decodeBody reads a JSON request body, rejecting unknown fields so a
// misspelled option fails loudly instead of silently running defaults.
func decodeBody(w http.ResponseWriter, r *http.Request, dst any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("%w: decoding body: %v", errBadRequest, err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func boolQuery(r *http.Request, name string) bool {
	switch r.URL.Query().Get(name) {
	case "1", "true", "yes":
		return true
	}
	return false
}
