package server

// This file defines the wire schema of the pmaxentd v1 API. Requests and
// responses are plain JSON; the published view and knowledge statements
// reuse the exact formats the offline tools read and write
// (bucket.WriteJSON / constraint.WriteKnowledgeJSON), so a release
// produced by `pmaxent -publish` is a valid request payload as-is.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"

	"privacymaxent/internal/audit"
	"privacymaxent/internal/core"
	"privacymaxent/internal/dataset"
	"privacymaxent/internal/maxent"
	"privacymaxent/internal/scheme"
)

// QuantifyRequest is the body of POST /v1/quantify.
type QuantifyRequest struct {
	// Published is the published view D′ in the WritePublishedJSON wire
	// format ({"qi": [...], "sa": {...}, "buckets": [...]}).
	Published json.RawMessage `json:"published"`
	// Knowledge lists background-knowledge statements in the
	// ParseKnowledgeJSON format ([{"if": {...}, "then": "...", "p": p}]),
	// resolved against the published schema. Optional.
	Knowledge json.RawMessage `json:"knowledge,omitempty"`
	// Scheme declares the publication scheme the view was produced
	// under; GET /healthz lists the supported names and parameter
	// schemas. Absent means anatomy (the classic default) and leaves the
	// response byte-identical to the pre-scheme API. Boxed schemes
	// (randomized_response) solve through the inequality dual and reject
	// ?audit=1, eps > 0 and delta reuse.
	Scheme *SchemeSpec `json:"scheme,omitempty"`
	// Eps > 0 runs the Sec. 4.5 vague-knowledge variant: every statement
	// becomes a ±eps box instead of an equality. Vague solves bypass the
	// prepared-system cache (inequalities do not overlay the equality
	// base) and are never audited.
	Eps float64 `json:"eps,omitempty"`
	// Delta opts this request into incremental solving: the server diffs
	// the assembled system against the last converged solve chained on
	// this publication's cache entry and re-solves only the changed
	// decomposition components. Requires the server's delta chain
	// (pmaxentd -delta) and is ignored for vague (eps>0) and audited
	// solves. Posterior and scores are unchanged; only solver counters
	// (reused/dirty components, iterations) reflect the reuse.
	Delta bool `json:"delta,omitempty"`
	// TimeoutMS caps how long this request waits for its result,
	// queueing included. Zero or values above the server's solve budget
	// fall back to the server default. The solve itself is detached:
	// a request giving up does not cancel a solve other callers share.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// PosteriorRow is one QI tuple's estimated sensitive-value distribution.
type PosteriorRow struct {
	// QI maps attribute name to value for this tuple.
	QI map[string]string `json:"qi"`
	// P maps sensitive value to the adversary's posterior P*(s|q).
	P map[string]float64 `json:"p"`
}

// SolverStats is the wire form of the solve counters.
type SolverStats struct {
	Algorithm    string  `json:"algorithm"`
	Iterations   int     `json:"iterations"`
	Evaluations  int     `json:"evaluations"`
	Converged    bool    `json:"converged"`
	MaxViolation float64 `json:"max_violation"`
	Components   int     `json:"components,omitempty"`
	// ReducedDualDim is the dual dimension the numeric core actually
	// solved; EliminatedBuckets counts buckets the structural presolve
	// (Options.Reduce) assigned the closed-form posterior.
	ReducedDualDim    int `json:"reduced_dual_dim,omitempty"`
	EliminatedBuckets int `json:"eliminated_buckets,omitempty"`
	// ReusedComponents / DirtyComponents report a delta solve's split:
	// components copied verbatim from the chained baseline versus
	// components re-solved. Both zero for cold solves.
	ReusedComponents int `json:"reused_components,omitempty"`
	DirtyComponents  int `json:"dirty_components,omitempty"`
}

// QuantifyResponse is the body of a successful POST /v1/quantify. Every
// field except Timings and ElapsedMS is a deterministic function of the
// request (and therefore byte-identical across servers, restarts and the
// offline CLI); the two timing fields are wall-clock measurements.
type QuantifyResponse struct {
	// Digest identifies the published view (the prepared-cache key).
	Digest string `json:"digest"`
	// Cache is "hit" when the invariant system was already prepared for
	// this D′ and "miss" when this request built it. On a miss the
	// Timings carry a "prepare" stage; on a hit that stage is absent.
	Cache string `json:"cache"`
	// Scheme echoes the request's publication-scheme declaration in
	// canonical form (defaults applied); absent when the request carried
	// none.
	Scheme *SchemeSpec `json:"scheme,omitempty"`
	// KnowledgeApplied counts the ME knowledge constraints applied.
	KnowledgeApplied int     `json:"knowledge_applied"`
	Eps              float64 `json:"eps,omitempty"`
	// MaxDisclosure and PosteriorEntropyBits are the privacy scores.
	MaxDisclosure        float64 `json:"max_disclosure"`
	PosteriorEntropyBits float64 `json:"posterior_entropy_bits"`
	// Posterior is the full P*(S|Q), one row per QI tuple in universe
	// order.
	Posterior []PosteriorRow `json:"posterior"`
	Solver    SolverStats    `json:"solver"`
	// Audit is the solve's numerical-health record, present when the
	// request asked for it with ?audit=1 (equality solves only).
	Audit *audit.SolveAudit `json:"audit,omitempty"`
	// TimingsMS is the per-stage wall-clock breakdown in milliseconds;
	// ElapsedMS the whole request. Wall-clock, not comparable across
	// runs.
	TimingsMS map[string]float64 `json:"timings_ms,omitempty"`
	ElapsedMS float64            `json:"elapsed_ms"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
	// Kind classifies the failure: "invalid_request", "infeasible",
	// "interrupted", "deadline", "overloaded", "draining", "not_found"
	// or "internal".
	Kind string `json:"kind"`
	// Supported lists the valid scheme names when the failure was an
	// unknown or malformed publication-scheme declaration.
	Supported []string `json:"supported,omitempty"`
}

// SolveStatus is one row of GET /debug/solves: the live progress of a
// single-flight solve. Counter fields (iterations, grad_norm,
// components_done) are read from the solve's hot-path atomics, so a
// snapshot taken mid-solve shows genuinely current numbers.
type SolveStatus struct {
	// ID names the solve (digest prefix + daemon-lifetime sequence); it
	// is the {id} of GET /v1/solves/{id}/events.
	ID string `json:"id"`
	// RequestID is the leader request's ID — the join key against access
	// logs, spans and audit records.
	RequestID string `json:"request_id"`
	// State is "queued", "running", "done" or "failed". Recovered marks
	// entries reconstructed from the history journal after a restart: the
	// solve finished under a previous process, so its counters are the
	// journaled summary and its elapsed time is frozen.
	State     string `json:"state"`
	Recovered bool   `json:"recovered,omitempty"`
	// Digest, Scheme, Knowledge, Eps, Audit describe the request being
	// solved; Scheme is empty for the classic anatomy default.
	Digest    string  `json:"digest"`
	Scheme    string  `json:"scheme,omitempty"`
	Knowledge int     `json:"knowledge"`
	Eps       float64 `json:"eps,omitempty"`
	Audit     bool    `json:"audit,omitempty"`
	// Variables is the solve's variable count (0 until solve.start).
	Variables int64 `json:"variables"`
	// Iterations counts optimizer iterations across all components;
	// GradNorm and Objective are the most recent iteration's values.
	Iterations int64   `json:"iterations"`
	GradNorm   float64 `json:"grad_norm"`
	Objective  float64 `json:"objective"`
	// ComponentsDone / ComponentsTotal track decomposition progress
	// (both 0 for non-decomposed solves until events arrive).
	ComponentsDone  int64 `json:"components_done"`
	ComponentsTotal int64 `json:"components_total"`
	// ReducedDualDim / EliminatedBucket mirror the structural presolve's
	// reduction: eliminated buckets arrive with solve.start, the numeric
	// dual dimension with solve.done.
	ReducedDualDim   int64 `json:"reduced_dual_dim,omitempty"`
	EliminatedBucket int64 `json:"eliminated_buckets,omitempty"`
	// ReusedComponents / DirtyComponents arrive with a delta solve's
	// solve.done event; both 0 for cold solves.
	ReusedComponents int64 `json:"reused_components,omitempty"`
	DirtyComponents  int64 `json:"dirty_components,omitempty"`
	// QueueWaitMS is time spent waiting for an admission slot; ElapsedMS
	// the solve's total wall-clock so far (or at completion).
	QueueWaitMS float64 `json:"queue_wait_ms"`
	ElapsedMS   float64 `json:"elapsed_ms"`
}

// DebugSolvesResponse is the body of GET /debug/solves: live solves
// first (oldest first), then the retained ring of finished ones.
type DebugSolvesResponse struct {
	Solves []SolveStatus `json:"solves"`
}

// HealthzResponse is the body of GET /healthz: liveness plus build
// provenance, so one curl identifies exactly which binary is serving.
type HealthzResponse struct {
	Status    string `json:"status"`
	Version   string `json:"version"`
	Commit    string `json:"commit,omitempty"`
	Modified  bool   `json:"modified,omitempty"`
	GoVersion string `json:"go_version,omitempty"`
	// Schemes lists the supported publication schemes with their
	// parameter schemas — the capability-discovery surface a client
	// checks before declaring a scheme on /v1/quantify.
	Schemes []scheme.Descriptor `json:"schemes"`
}

// BatchVariant is one knowledge variant of a batch quantification.
type BatchVariant struct {
	// Knowledge is this variant's statement list in the same format as
	// QuantifyRequest.Knowledge; empty solves the bare invariant system.
	Knowledge json.RawMessage `json:"knowledge,omitempty"`
}

// BatchQuantifyRequest is the body of POST /v1/quantify/batch: one
// published view, many knowledge variants. The invariant system is
// prepared once and shared; each variant runs through the same
// single-flight machinery as an individual POST /v1/quantify, so a
// variant's response bytes are exactly what the individual call would
// have returned (and concurrent individual calls coalesce with it).
type BatchQuantifyRequest struct {
	// Published is the published view D′, as in QuantifyRequest.
	Published json.RawMessage `json:"published"`
	// Scheme declares the publication scheme of the shared view, as in
	// QuantifyRequest.Scheme; it applies to every variant.
	Scheme *SchemeSpec `json:"scheme,omitempty"`
	// Variants lists the knowledge sets to quantify, all against the
	// same publication.
	Variants []BatchVariant `json:"variants"`
	// Delta opts the batch into incremental solving: variants chain
	// delta state through the publication's cache entry, so each variant
	// diffs against the nearest previously converged variant and
	// re-solves only changed components. Requires the server's delta
	// chain (pmaxentd -delta).
	Delta bool `json:"delta,omitempty"`
	// TimeoutMS bounds the whole batch, as QuantifyRequest.TimeoutMS
	// bounds one request.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// BatchVariantResult is one variant's outcome inside a batch response.
type BatchVariantResult struct {
	// Index is the variant's position in the request.
	Index int `json:"index"`
	// SolveID names the solve that served this variant (possibly another
	// caller's, when the variant coalesced).
	SolveID string `json:"solve_id,omitempty"`
	// Response carries the exact QuantifyResponse bytes an individual
	// POST /v1/quantify with this variant's knowledge would have
	// returned. Nil when the variant failed.
	Response json.RawMessage `json:"response,omitempty"`
	// Error carries the variant's failure when Response is nil.
	Error *ErrorResponse `json:"error,omitempty"`
}

// BatchQuantifyResponse is the body of a successful POST
// /v1/quantify/batch. Variants appear in request order regardless of
// completion order.
type BatchQuantifyResponse struct {
	Digest string `json:"digest"`
	// Scheme echoes the batch's publication-scheme declaration in
	// canonical form; absent when the request carried none.
	Scheme    *SchemeSpec          `json:"scheme,omitempty"`
	Variants  []BatchVariantResult `json:"variants"`
	ElapsedMS float64              `json:"elapsed_ms"`
}

// MineRequest is the body of POST /v1/rules/mine: mine association rules
// from original microdata supplied as inline CSV (first row the header),
// the server-side counterpart of `pmaxent -input`.
type MineRequest struct {
	// CSV is the original table; SA names its sensitive column and ID
	// any identifier columns to strip.
	CSV string   `json:"csv"`
	SA  string   `json:"sa"`
	ID  []string `json:"id,omitempty"`
	// MinSupport and Sizes configure mining (defaults 3 / all sizes).
	MinSupport int   `json:"min_support,omitempty"`
	Sizes      []int `json:"sizes,omitempty"`
	// KPos/KNeg select the Top-(K+, K−) strongest rules; both zero
	// returns every mined rule.
	KPos int `json:"k_pos,omitempty"`
	KNeg int `json:"k_neg,omitempty"`
	// TimeoutMS as in QuantifyRequest.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// MineRule is one association rule on the wire.
type MineRule struct {
	If         map[string]string `json:"if"`
	Then       string            `json:"then"`
	Positive   bool              `json:"positive"`
	Confidence float64           `json:"confidence"`
	// P is P(SA|Qv) — the value a knowledge statement would pin.
	P       float64 `json:"p"`
	Support int     `json:"support"`
}

// MineResponse is the body of a successful POST /v1/rules/mine.
type MineResponse struct {
	Mined     int        `json:"mined"`
	Returned  int        `json:"returned"`
	Rules     []MineRule `json:"rules"`
	ElapsedMS float64    `json:"elapsed_ms"`
}

// buildPosterior renders P(S|Q) in wire form, rows in universe order.
func buildPosterior(post *dataset.Conditional, schema *dataset.Schema) []PosteriorRow {
	u := post.Universe()
	qiPos := schema.QIIndices()
	sa := schema.SA()
	rows := make([]PosteriorRow, u.Len())
	for qid := 0; qid < u.Len(); qid++ {
		codes := u.Codes(qid)
		qi := make(map[string]string, len(qiPos))
		for i, pos := range qiPos {
			qi[schema.Attr(pos).Name] = schema.Attr(pos).Value(codes[i])
		}
		p := make(map[string]float64, post.NumSA())
		for s := 0; s < post.NumSA(); s++ {
			p[sa.Value(s)] = post.P(qid, s)
		}
		rows[qid] = PosteriorRow{QI: qi, P: p}
	}
	return rows
}

// buildResponse converts a pipeline report into the wire response. The
// same function serves the HTTP handler and the parity tests, so "what
// the server says" and "what the library computes" cannot drift apart.
func buildResponse(digest, cacheState string, eps float64, schema *dataset.Schema, rep *core.Report, alg maxent.Algorithm) *QuantifyResponse {
	st := rep.Solution.Stats
	resp := &QuantifyResponse{
		Digest:               digest,
		Cache:                cacheState,
		KnowledgeApplied:     len(rep.Knowledge),
		Eps:                  eps,
		MaxDisclosure:        rep.MaxDisclosure,
		PosteriorEntropyBits: rep.PosteriorEntropy,
		Posterior:            buildPosterior(rep.Posterior, schema),
		Solver: SolverStats{
			Algorithm:         alg.String(),
			Iterations:        st.Iterations,
			Evaluations:       st.Evaluations,
			Converged:         st.Converged,
			MaxViolation:      st.MaxViolation,
			Components:        st.Components,
			ReducedDualDim:    st.ReducedDualDim,
			EliminatedBuckets: st.EliminatedBuckets,
			ReusedComponents:  st.ReusedComponents,
			DirtyComponents:   st.DirtyComponents,
		},
		Audit: rep.Audit,
	}
	if len(rep.Timings) > 0 {
		resp.TimingsMS = make(map[string]float64, len(rep.Timings))
		for _, st := range rep.Timings {
			resp.TimingsMS[st.Stage] = float64(st.Duration.Nanoseconds()) / 1e6
		}
	}
	return resp
}

// requestKey is the single-flight key: the published digest plus a hash
// of everything else that shapes the response bytes. Two requests
// coalesce exactly when their responses would be identical. TimeoutMS is
// deliberately excluded — it bounds the wait, not the work. The delta
// flag is included: a delta solve reports different solver counters
// (reused/dirty components) than a cold solve of the same knowledge.
// schemeKey is the canonical scheme-declaration bytes (nil for the
// absent default): an explicit anatomy declaration shares the default's
// digest and cache entry but echoes a scheme field in its response, so
// the two must not coalesce.
func requestKey(digest string, knowledge json.RawMessage, eps float64, wantAudit, delta bool, schemeKey []byte) string {
	h := sha256.New()
	h.Write([]byte(digest))
	h.Write(knowledge)
	_ = json.NewEncoder(h).Encode([]any{eps, wantAudit, delta})
	h.Write(schemeKey)
	return hex.EncodeToString(h.Sum(nil))
}
