package server

// The history endpoints expose the durable solve journal (see
// internal/history): GET /v1/history lists recent solve records across
// restarts, GET /v1/history/{digest} narrows to one publication and adds
// its windowed aggregates, and GET /debug/regressions reports the drift
// detector's view. All three return 404 when the daemon runs without
// -history-dir — absence of durability is an explicit condition, not an
// empty list.

import (
	"fmt"
	"net/http"
	"strconv"

	"privacymaxent/internal/history"
)

// defaultHistoryLimit caps GET /v1/history responses when the client
// does not pass ?limit=.
const defaultHistoryLimit = 100

// HistoryResponse is the body of GET /v1/history.
type HistoryResponse struct {
	// Retained counts records currently held in memory (the journal on
	// disk may retain more; see -history-retention).
	Retained int `json:"retained"`
	// Records is newest first, capped at the request's limit.
	Records []history.Record `json:"records"`
}

// HistoryDigestResponse is the body of GET /v1/history/{digest}: one
// publication's aggregate stats plus its newest records.
type HistoryDigestResponse struct {
	Stats   history.DigestStats `json:"stats"`
	Records []history.Record    `json:"records"`
}

// RegressionsResponse is the body of GET /debug/regressions.
type RegressionsResponse struct {
	// Checks counts detector refreshes since the store opened (replay
	// included).
	Checks int64 `json:"checks"`
	// Regressions lists the currently active drifts, sorted by digest
	// then metric.
	Regressions []history.Regression `json:"regressions"`
	// Digests summarizes every publication's windows, newest activity
	// first — the data behind the regression verdicts.
	Digests []history.DigestStats `json:"digests"`
}

// historyStore returns the configured store or a not-found error when
// the daemon runs without history.
func (s *Server) historyStore() (*history.Store, error) {
	if s.cfg.History == nil {
		return nil, fmt.Errorf("%w: history is not enabled (start pmaxentd with -history-dir)", errNotFound)
	}
	return s.cfg.History, nil
}

// limitQuery parses ?limit=, falling back to def; limit=0 means "no
// cap".
func limitQuery(r *http.Request, def int) (int, error) {
	raw := r.URL.Query().Get("limit")
	if raw == "" {
		return def, nil
	}
	n, err := strconv.Atoi(raw)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("%w: limit %q", errBadRequest, raw)
	}
	return n, nil
}

func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	st, err := s.historyStore()
	if err != nil {
		s.writeError(w, r.Context(), err)
		return
	}
	limit, err := limitQuery(r, defaultHistoryLimit)
	if err != nil {
		s.writeError(w, r.Context(), err)
		return
	}
	writeJSON(w, http.StatusOK, &HistoryResponse{
		Retained: st.Retained(),
		Records:  st.Recent(limit, r.URL.Query().Get("digest")),
	})
}

func (s *Server) handleHistoryDigest(w http.ResponseWriter, r *http.Request) {
	st, err := s.historyStore()
	if err != nil {
		s.writeError(w, r.Context(), err)
		return
	}
	digest := r.PathValue("digest")
	stats, ok := st.Digest(digest)
	if !ok {
		s.writeError(w, r.Context(), fmt.Errorf("%w: no history for digest %q", errNotFound, digest))
		return
	}
	limit, err := limitQuery(r, defaultHistoryLimit)
	if err != nil {
		s.writeError(w, r.Context(), err)
		return
	}
	writeJSON(w, http.StatusOK, &HistoryDigestResponse{
		Stats:   stats,
		Records: st.Recent(limit, digest),
	})
}

func (s *Server) handleRegressions(w http.ResponseWriter, r *http.Request) {
	st, err := s.historyStore()
	if err != nil {
		s.writeError(w, r.Context(), err)
		return
	}
	regs := st.Regressions()
	if regs == nil {
		regs = []history.Regression{} // "[]", not "null": the empty state is healthy
	}
	writeJSON(w, http.StatusOK, &RegressionsResponse{
		Checks:      st.Checks(),
		Regressions: regs,
		Digests:     st.Digests(),
	})
}
