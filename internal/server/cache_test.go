package server

import (
	"context"
	"sync"
	"testing"

	"privacymaxent/internal/bucket"
	"privacymaxent/internal/core"
	"privacymaxent/internal/dataset"
	"privacymaxent/internal/maxent"
)

func TestDigestStableAcrossFormatting(t *testing.T) {
	d, err := bucket.FromPartition(dataset.PaperExample(), dataset.PaperBuckets())
	if err != nil {
		t.Fatal(err)
	}
	d1, err := DigestPublished(d)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := DigestPublished(d)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatalf("digest unstable: %s vs %s", d1, d2)
	}
	if len(d1) != 64 {
		t.Fatalf("digest %q is not hex SHA-256", d1)
	}
}

func TestPreparedCacheLRU(t *testing.T) {
	c := newPreparedCache(2, nil)
	if _, hit := c.get("a"); hit {
		t.Fatal("empty cache reported a hit")
	}
	c.get("b")
	c.get("a") // a is now most recently used
	c.get("c") // evicts b
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
	if _, hit := c.get("b"); hit {
		t.Fatal("b survived eviction")
	}
	// Getting b above evicted a (LRU after b's miss-insert pushed it out? no:
	// order after c.get("c") is [c, a]; get("b") inserts b, evicting a).
	if _, hit := c.get("c"); !hit {
		t.Fatal("c was evicted out of LRU order")
	}
}

func TestPreparedCacheDrop(t *testing.T) {
	c := newPreparedCache(4, nil)
	e1, _ := c.get("x")
	c.drop("x")
	e2, hit := c.get("x")
	if hit {
		t.Fatal("dropped entry still hits")
	}
	if e1 == e2 {
		t.Fatal("drop did not discard the entry")
	}
	c.drop("never-inserted") // must not panic
}

// TestCacheEntryBuildOnce: concurrent builders share one Prepare call
// and get the identical Prepared.
func TestCacheEntryBuildOnce(t *testing.T) {
	d, err := bucket.FromPartition(dataset.PaperExample(), dataset.PaperBuckets())
	if err != nil {
		t.Fatal(err)
	}
	q := core.New(core.Config{})
	e := &cacheEntry{digest: "d"}
	const n = 8
	results := make([]*core.Prepared, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, _, err := e.build(context.Background(), q, d, nil)
			if err != nil {
				t.Error(err)
			}
			results[i] = p
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if results[i] != results[0] {
			t.Fatal("concurrent builds produced distinct Prepared instances")
		}
	}
}

func TestWarmStoreTake(t *testing.T) {
	e := &cacheEntry{}
	if w := e.takeWarm(); w != nil {
		t.Fatal("fresh entry has a warm seed")
	}
	e.storeWarm(nil) // empty seeds are ignored
	if w := e.takeWarm(); w != nil {
		t.Fatal("empty store replaced the seed")
	}
	duals := []maxent.ConstraintDual{{Label: "k", Lambda: 1.5}}
	e.storeWarm(duals)
	got := e.takeWarm()
	if len(got) != 1 || got[0].Label != "k" {
		t.Fatalf("takeWarm = %+v", got)
	}
}
