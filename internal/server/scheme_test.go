package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"privacymaxent/internal/bucket"
	"privacymaxent/internal/constraint"
	"privacymaxent/internal/core"
	"privacymaxent/internal/dataset"
	"privacymaxent/internal/scheme"
)

// quantifyBodyScheme is quantifyBody plus a scheme declaration.
func quantifyBodyScheme(pub []byte, knowledge, schemeJSON string) string {
	b := fmt.Sprintf(`{"published": %s`, pub)
	if knowledge != "" {
		b += fmt.Sprintf(`, "knowledge": %s`, knowledge)
	}
	if schemeJSON != "" {
		b += fmt.Sprintf(`, "scheme": %s`, schemeJSON)
	}
	return b + "}"
}

// TestQuantifyMondrianSchemeParity: a mondrian-declared request must be
// byte-identical (volatile fields aside) to the offline
// PrepareScheme→Quantify pipeline on the same view — the scheme rides
// the same parity contract the classic path has.
func TestQuantifyMondrianSchemeParity(t *testing.T) {
	d, pubJSON := paperPublished(t)

	sch, err := scheme.Parse("mondrian", json.RawMessage(`{"k": 2}`))
	if err != nil {
		t.Fatal(err)
	}
	q := core.New(core.Config{})
	knowledge, err := constraint.ParseKnowledgeJSON(strings.NewReader(paperKnowledge), d.Schema())
	if err != nil {
		t.Fatal(err)
	}
	p, err := q.PrepareScheme(context.Background(), d, sch)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := p.QuantifyContext(context.Background(), knowledge, nil)
	if err != nil {
		t.Fatal(err)
	}
	digest, err := DigestScheme(d, sch)
	if err != nil {
		t.Fatal(err)
	}
	offline := buildResponse(digest, "miss", 0, d.Schema(), rep, q.Config().Solve.Algorithm)
	canon, err := scheme.CanonicalParams(sch)
	if err != nil {
		t.Fatal(err)
	}
	offline.Scheme = &SchemeSpec{Name: sch.Name(), Params: canon}
	offlineJSON, err := json.Marshal(offline)
	if err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(New(Config{}))
	defer ts.Close()
	resp, body := postQuantify(t, ts, "/v1/quantify",
		quantifyBodyScheme(pubJSON, paperKnowledge, `{"name": "mondrian", "params": {"k": 2}}`))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	if got, want := stripVolatile(t, body), stripVolatile(t, offlineJSON); !bytes.Equal(got, want) {
		t.Fatalf("served response diverges from library:\nserved:  %s\nlibrary: %s", got, want)
	}
}

// TestQuantifyRandomizedResponseParity: same contract for the boxed
// scheme — the served inequality-dual solve must match the offline one.
// The posted view is an actual randomized-response release (RR requires
// a QI-grouped view, one distinct QI tuple per bucket). No knowledge:
// exact statements mined elsewhere can contradict a perturbed view's
// structural support (see DESIGN §13).
func TestQuantifyRandomizedResponseParity(t *testing.T) {
	sch, err := scheme.Parse("randomized_response", json.RawMessage(`{"rho": 0.8, "seed": 7}`))
	if err != nil {
		t.Fatal(err)
	}
	d, err := sch.Publish(dataset.PaperExample())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := bucket.WriteJSON(&buf, d); err != nil {
		t.Fatal(err)
	}
	pubJSON := buf.Bytes()

	q := core.New(core.Config{})
	p, err := q.PrepareScheme(context.Background(), d, sch)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Boxed() {
		t.Fatal("randomized_response prepared without observation boxes")
	}
	rep, err := p.QuantifyContext(context.Background(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	digest, err := DigestScheme(d, sch)
	if err != nil {
		t.Fatal(err)
	}
	offline := buildResponse(digest, "miss", 0, d.Schema(), rep, q.Config().Solve.Algorithm)
	canon, err := scheme.CanonicalParams(sch)
	if err != nil {
		t.Fatal(err)
	}
	offline.Scheme = &SchemeSpec{Name: sch.Name(), Params: canon}
	offlineJSON, err := json.Marshal(offline)
	if err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(New(Config{}))
	defer ts.Close()
	resp, body := postQuantify(t, ts, "/v1/quantify",
		quantifyBodyScheme(pubJSON, "", `{"name": "randomized_response", "params": {"rho": 0.8, "seed": 7}}`))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	if got, want := stripVolatile(t, body), stripVolatile(t, offlineJSON); !bytes.Equal(got, want) {
		t.Fatalf("served response diverges from library:\nserved:  %s\nlibrary: %s", got, want)
	}
}

// TestSchemeDigestSeparation: the digest binds the scheme. An explicit
// anatomy declaration shares the absent default's digest and prepared
// cache entry (the invariant system is identical), while mondrian over
// the same bytes digests — and caches — separately.
func TestSchemeDigestSeparation(t *testing.T) {
	_, pubJSON := paperPublished(t)
	ts := httptest.NewServer(New(Config{}))
	defer ts.Close()

	decode := func(body []byte) QuantifyResponse {
		var r QuantifyResponse
		if err := json.Unmarshal(body, &r); err != nil {
			t.Fatalf("decoding: %v\n%s", err, body)
		}
		return r
	}
	resp, body := postQuantify(t, ts, "/v1/quantify", quantifyBody(pubJSON, paperKnowledge))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("absent: status = %d, body %s", resp.StatusCode, body)
	}
	absent := decode(body)
	if absent.Cache != "miss" {
		t.Fatalf("absent cache = %q, want miss", absent.Cache)
	}
	if absent.Scheme != nil {
		t.Fatalf("absent request echoed scheme %+v", absent.Scheme)
	}
	if bytes.Contains(body, []byte(`"scheme"`)) {
		t.Fatalf("absent-scheme response body carries a scheme key:\n%s", body)
	}

	resp, body = postQuantify(t, ts, "/v1/quantify",
		quantifyBodyScheme(pubJSON, paperKnowledge, `{"name": "anatomy"}`))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("anatomy: status = %d, body %s", resp.StatusCode, body)
	}
	anatomy := decode(body)
	if anatomy.Digest != absent.Digest {
		t.Fatalf("explicit anatomy digest %s != absent digest %s", anatomy.Digest, absent.Digest)
	}
	if anatomy.Cache != "hit" {
		t.Fatalf("explicit anatomy cache = %q, want hit (shares the default's prepared entry)", anatomy.Cache)
	}
	if anatomy.Scheme == nil || anatomy.Scheme.Name != "anatomy" {
		t.Fatalf("explicit anatomy echo = %+v", anatomy.Scheme)
	}

	resp, body = postQuantify(t, ts, "/v1/quantify",
		quantifyBodyScheme(pubJSON, paperKnowledge, `{"name": "mondrian", "params": {"k": 3}}`))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mondrian: status = %d, body %s", resp.StatusCode, body)
	}
	mondrian := decode(body)
	if mondrian.Digest == absent.Digest {
		t.Fatalf("mondrian digest %s conflates with anatomy", mondrian.Digest)
	}
	if mondrian.Cache != "miss" {
		t.Fatalf("mondrian cache = %q, want miss (own prepared entry)", mondrian.Cache)
	}

	// Parameters separate too: a different k is a different digest.
	resp, body = postQuantify(t, ts, "/v1/quantify",
		quantifyBodyScheme(pubJSON, paperKnowledge, `{"name": "mondrian", "params": {"k": 4}}`))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mondrian k=4: status = %d, body %s", resp.StatusCode, body)
	}
	if d := decode(body).Digest; d == mondrian.Digest {
		t.Fatalf("mondrian k=3 and k=4 share digest %s", d)
	}
}

// TestSchemeBadRequest: unknown names and malformed parameters are 400s
// with kind "invalid_request" and the supported-scheme list attached.
func TestSchemeBadRequest(t *testing.T) {
	_, pubJSON := paperPublished(t)
	ts := httptest.NewServer(New(Config{}))
	defer ts.Close()

	for _, tc := range []struct {
		name   string
		scheme string
		want   string
	}{
		{"unknown name", `{"name": "bucketize"}`, `unknown scheme "bucketize"`},
		{"missing name", `{"params": {"l": 2}}`, `missing "name"`},
		{"unknown param", `{"name": "anatomy", "params": {"diversity": 3}}`, "unknown field"},
		{"wrong param type", `{"name": "mondrian", "params": {"k": "five"}}`, "cannot unmarshal"},
		{"rho out of range", `{"name": "randomized_response", "params": {"rho": 2}}`, "outside [0,1]"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postQuantify(t, ts, "/v1/quantify", quantifyBodyScheme(pubJSON, "", tc.scheme))
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, body %s", resp.StatusCode, body)
			}
			var e ErrorResponse
			if err := json.Unmarshal(body, &e); err != nil {
				t.Fatalf("decoding error body: %v\n%s", err, body)
			}
			if e.Kind != "invalid_request" {
				t.Errorf("kind = %q, want invalid_request", e.Kind)
			}
			if !strings.Contains(e.Error, tc.want) {
				t.Errorf("error = %q, want containing %q", e.Error, tc.want)
			}
			if want := scheme.Names(); !equalStrings(e.Supported, want) {
				t.Errorf("supported = %v, want %v", e.Supported, want)
			}
		})
	}
}

// TestSchemeBoxedGates: the boxed scheme rejects the request shapes its
// inequality dual cannot honor — audits and vague knowledge — up front,
// before any solve is admitted.
func TestSchemeBoxedGates(t *testing.T) {
	_, pubJSON := paperPublished(t)
	ts := httptest.NewServer(New(Config{}))
	defer ts.Close()

	rr := `{"name": "randomized_response", "params": {"rho": 0.8}}`
	resp, body := postQuantify(t, ts, "/v1/quantify?audit=1", quantifyBodyScheme(pubJSON, "", rr))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("audit: status = %d, body %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "not audited") {
		t.Fatalf("audit: body %s", body)
	}

	withEps := quantifyBodyScheme(pubJSON, paperKnowledge, rr)
	withEps = strings.TrimSuffix(withEps, "}") + `, "eps": 0.05}`
	resp, body = postQuantify(t, ts, "/v1/quantify", withEps)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("eps: status = %d, body %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "vague") {
		t.Fatalf("eps: body %s", body)
	}
}

// TestHealthzListsSchemes: discovery — /healthz carries the full scheme
// descriptors, /readyz the name list.
func TestHealthzListsSchemes(t *testing.T) {
	ts := httptest.NewServer(New(Config{}))
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health HealthzResponse
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if len(health.Schemes) != len(scheme.Names()) {
		t.Fatalf("healthz schemes = %+v", health.Schemes)
	}
	for _, d := range health.Schemes {
		if d.Name == "" || len(d.Params) == 0 {
			t.Fatalf("healthz descriptor incomplete: %+v", d)
		}
	}

	resp, err = ts.Client().Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ready struct {
		Schemes []string `json:"schemes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ready); err != nil {
		t.Fatal(err)
	}
	if !equalStrings(ready.Schemes, scheme.Names()) {
		t.Fatalf("readyz schemes = %v, want %v", ready.Schemes, scheme.Names())
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
