package server

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	"privacymaxent/internal/bucket"
	"privacymaxent/internal/core"
	"privacymaxent/internal/maxent"
	"privacymaxent/internal/scheme"
)

// DigestPublished computes the cache key of a published view D′: the
// SHA-256 of its canonical wire form (bucket.WriteJSON re-serializes the
// parsed view, so formatting differences in the request body never split
// the cache). Everything the invariant system depends on — schema,
// bucket membership, SA multisets — is in that wire form, and nothing
// else is, so equal digests mean equal Theorem 1–3 systems.
func DigestPublished(d *bucket.Bucketized) (string, error) {
	return DigestScheme(d, nil)
}

// DigestScheme is DigestPublished with the publication scheme bound in:
// any scheme other than the default appends its name and canonical
// parameter bytes to the hashed material, so two schemes — or two
// parameterizations of one scheme — over the same view never share a
// cache entry, delta chain or history aggregate. Anatomy (nil or
// explicit) keeps the bare publication digest: it is the identity
// scheme whose invariants every view certifies by default, and its
// parameters shape publishing, not what a given view pins down.
func DigestScheme(d *bucket.Bucketized, sch scheme.Scheme) (string, error) {
	h := sha256.New()
	if err := bucket.WriteJSON(h, d); err != nil {
		return "", fmt.Errorf("server: digesting published view: %w", err)
	}
	if sch != nil && sch.Name() != "anatomy" {
		canon, err := scheme.CanonicalParams(sch)
		if err != nil {
			return "", fmt.Errorf("server: digesting scheme params: %w", err)
		}
		h.Write([]byte{0})
		h.Write([]byte(sch.Name()))
		h.Write([]byte{0})
		h.Write(canon)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// cacheEntry is one prepared publication: the immutable invariant base
// (core.Prepared) plus the warm-start duals of the most recent converged
// solve on this D′. Concurrent requests for the same digest share one
// build via the once; the warm seed is label-matched by the solver, so a
// seed taken from a different knowledge set on the same D′ still
// accelerates the shared invariant rows and silently skips the rest.
type cacheEntry struct {
	digest string
	// createdAt is when the entry was inserted; the cache's oldest-entry
	// age gauge reads it to show how stale the LRU tail is.
	createdAt time.Time

	once     sync.Once
	prepared *core.Prepared
	prepTime time.Duration
	err      error

	warmMu sync.Mutex
	warm   []maxent.ConstraintDual
	// state chains delta baselines across requests on this publication:
	// the most recent converged solve's assembled system and solution
	// (core.DeltaState). A delta request diffs against it — its nearest
	// cached ancestor — and re-solves only changed components; the chain
	// advances whenever a converged solve stores its successor state.
	state *core.DeltaState
}

// build constructs the prepared base exactly once per entry; every
// caller gets the same result. prepTime records the invariant-build cost
// so the first request on a publication can report it as the "prepare"
// stage of its timings. sch selects the scheme whose invariant rows the
// base carries (nil = the classic default); the entry's digest already
// binds the scheme, so every caller of one entry passes an equivalent
// scheme and the once-guarded build cannot race two schemes.
func (e *cacheEntry) build(ctx context.Context, q *core.Quantifier, d *bucket.Bucketized, sch scheme.Scheme) (*core.Prepared, time.Duration, error) {
	e.once.Do(func() {
		start := time.Now()
		e.prepared, e.err = q.PrepareScheme(ctx, d, sch)
		e.prepTime = time.Since(start)
	})
	return e.prepared, e.prepTime, e.err
}

// takeWarm snapshots the entry's warm-start seed.
func (e *cacheEntry) takeWarm() []maxent.ConstraintDual {
	e.warmMu.Lock()
	defer e.warmMu.Unlock()
	return e.warm
}

// storeWarm replaces the warm-start seed. Callers only store duals from
// converged solves: an iteration-capped endpoint is start-dependent, so
// seeding from it could make later responses depend on request history
// in a way that changes results, not just iteration counts.
func (e *cacheEntry) storeWarm(duals []maxent.ConstraintDual) {
	if len(duals) == 0 {
		return
	}
	e.warmMu.Lock()
	e.warm = duals
	e.warmMu.Unlock()
}

// takeState snapshots the delta-chain baseline (nil when no converged
// solve has stored one yet). DeltaState is immutable, so concurrent
// holders share it safely.
func (e *cacheEntry) takeState() *core.DeltaState {
	e.warmMu.Lock()
	defer e.warmMu.Unlock()
	return e.state
}

// storeState advances the delta chain. QuantifyDelta returns a state
// only for converged solves, so the same history-independence argument
// as storeWarm applies: reuse changes iteration counts, never the
// posterior a request reports.
func (e *cacheEntry) storeState(st *core.DeltaState) {
	if st == nil {
		return
	}
	e.warmMu.Lock()
	e.state = st
	e.warmMu.Unlock()
}

// preparedCache is a fixed-capacity LRU of cacheEntry keyed by published
// digest. Hits move to front; inserting beyond capacity evicts the least
// recently used entry (in-flight holders of an evicted entry keep using
// it — Prepared is immutable, eviction only drops the cache's
// reference).
type preparedCache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // *cacheEntry; front = most recently used
	entries map[string]*list.Element
	// onEvict, when set, runs (outside the lock is unnecessary — it only
	// bumps a counter) once per capacity eviction; failed-build drops are
	// not evictions.
	onEvict func()
}

func newPreparedCache(capacity int, onEvict func()) *preparedCache {
	if capacity < 1 {
		capacity = 1
	}
	return &preparedCache{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[string]*list.Element),
		onEvict: onEvict,
	}
}

// get returns the entry for digest, creating it when absent. The boolean
// reports a hit (the entry already existed — i.e. the invariant system
// for this D′ is already built or being built by another request).
func (c *preparedCache) get(digest string) (*cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[digest]; ok {
		c.order.MoveToFront(el)
		return el.Value.(*cacheEntry), true
	}
	e := &cacheEntry{digest: digest, createdAt: time.Now()}
	c.entries[digest] = c.order.PushFront(e)
	if c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).digest)
		if c.onEvict != nil {
			c.onEvict()
		}
	}
	return e, false
}

// drop removes the entry for digest if present — used when a build
// fails, so a transient error is not cached forever.
func (c *preparedCache) drop(digest string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[digest]; ok {
		c.order.Remove(el)
		delete(c.entries, digest)
	}
}

// len reports the current number of cached publications.
func (c *preparedCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// oldestAge reports the age of the oldest cached entry (0 when empty) —
// the pmaxentd_cache_oldest_entry_age_seconds gauge.
func (c *preparedCache) oldestAge(now time.Time) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	var oldest time.Time
	for el := c.order.Front(); el != nil; el = el.Next() {
		t := el.Value.(*cacheEntry).createdAt
		if oldest.IsZero() || t.Before(oldest) {
			oldest = t
		}
	}
	if oldest.IsZero() {
		return 0
	}
	return now.Sub(oldest)
}
