package server

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"privacymaxent/internal/history"
	"privacymaxent/internal/telemetry"
)

// openHistory opens a history store in dir with durable writes and a
// small, fast-firing regression detector so server tests need only a
// dozen solves to cross the evidence thresholds.
func openHistory(t *testing.T, dir string, reg *telemetry.Registry) *history.Store {
	t.Helper()
	st, err := history.Open(history.StoreConfig{
		Dir:      dir,
		Fsync:    history.FsyncPolicy{Always: true},
		Registry: reg,
		Regression: history.RegressionConfig{
			WindowCap:    16,
			RecentWindow: 4,
			MinBaseline:  4,
			// Sensitive thresholds: the loose→tight tolerance flip below
			// multiplies iterations severalfold, but on the paper's tiny
			// example the absolute counts are small.
			IterationRatio:    1.5,
			IterationMinDelta: 3,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// knowledgeP is the paper rule with a parameterized probability — each
// distinct p is a distinct flight key and a distinct solve, defeating
// both response caching and single-flight coalescing across requests.
func knowledgeP(p float64) string {
	return fmt.Sprintf(`[{"if": {"Gender": "male"}, "then": "Breast Cancer", "p": %g}]`, p)
}

// TestHistoryEndpoints: every finished solve lands in GET /v1/history
// with the joinable identifiers (request ID, solve ID, digest) and the
// solver summary; /v1/history/{digest} narrows and adds aggregates; the
// endpoints 404 on unknown digests, reject bad limits, and 404 entirely
// when the server runs without a store.
func TestHistoryEndpoints(t *testing.T) {
	_, pubJSON := paperPublished(t)
	st := openHistory(t, t.TempDir(), nil)
	defer st.Close()
	ts := httptest.NewServer(New(Config{History: st}))
	defer ts.Close()

	var reqIDs []string
	for i := 0; i < 3; i++ {
		resp, raw := postQuantify(t, ts, "/v1/quantify", quantifyBody(pubJSON, knowledgeP(float64(i)/100)))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("solve %d: status %d: %s", i, resp.StatusCode, raw)
		}
		reqIDs = append(reqIDs, resp.Header.Get("X-Request-Id"))
	}

	resp, raw := postGet(t, ts, "/v1/history")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/history = %d: %s", resp.StatusCode, raw)
	}
	var hist HistoryResponse
	if err := json.Unmarshal(raw, &hist); err != nil {
		t.Fatal(err)
	}
	if hist.Retained != 3 || len(hist.Records) != 3 {
		t.Fatalf("retained %d, %d records, want 3/3: %s", hist.Retained, len(hist.Records), raw)
	}
	// Newest first; every record joinable back to its request.
	for i, rec := range hist.Records {
		wantReq := reqIDs[len(reqIDs)-1-i]
		if rec.RequestID != wantReq {
			t.Fatalf("record %d request_id = %q, want %q (newest first)", i, rec.RequestID, wantReq)
		}
		if rec.Outcome != "ok" || rec.SolveID == "" || rec.Digest == "" || rec.Cache == "" {
			t.Fatalf("record %d incomplete: %+v", i, rec)
		}
		if rec.Solver == nil || rec.Solver.Iterations == 0 {
			t.Fatalf("record %d has no solver summary: %+v", i, rec.Solver)
		}
		if rec.StagesMS["solve"] < 0 || len(rec.StagesMS) == 0 {
			t.Fatalf("record %d has no stage timings: %+v", i, rec.StagesMS)
		}
	}

	digest := hist.Records[0].Digest
	resp, raw = postGet(t, ts, "/v1/history/"+digest)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/history/{digest} = %d: %s", resp.StatusCode, raw)
	}
	var dig HistoryDigestResponse
	if err := json.Unmarshal(raw, &dig); err != nil {
		t.Fatal(err)
	}
	if dig.Stats.Digest != digest || dig.Stats.Records != 3 || len(dig.Records) != 3 {
		t.Fatalf("digest view wrong: %s", raw)
	}

	resp, _ = postGet(t, ts, "/v1/history/no-such-digest")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown digest = %d, want 404", resp.StatusCode)
	}
	resp, _ = postGet(t, ts, "/v1/history?limit=bogus")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad limit = %d, want 400", resp.StatusCode)
	}
	resp, raw = postGet(t, ts, "/v1/history?limit=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatal("limit=1 rejected")
	}
	if err := json.Unmarshal(raw, &hist); err != nil || len(hist.Records) != 1 {
		t.Fatalf("limit=1 returned %d records: %s", len(hist.Records), raw)
	}

	// Without a store the whole surface is 404 — explicitly disabled, not
	// empty.
	plain := httptest.NewServer(New(Config{}))
	defer plain.Close()
	for _, path := range []string{"/v1/history", "/v1/history/" + digest, "/debug/regressions"} {
		resp, raw := postGet(t, plain, path)
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s without history = %d, want 404: %s", path, resp.StatusCode, raw)
		}
	}
}

// TestHistoryCrashRecovery: solves journaled before a crash — including
// a torn final frame from the crash itself — are served after a restart
// by GET /v1/history, and the done ring adopts them so /debug/solves and
// the SSE replay still answer for pre-crash solve IDs.
func TestHistoryCrashRecovery(t *testing.T) {
	_, pubJSON := paperPublished(t)
	dir := t.TempDir()

	st1 := openHistory(t, dir, nil)
	ts1 := httptest.NewServer(New(Config{History: st1}))
	var solveIDs []string
	for i := 0; i < 2; i++ {
		resp, raw := postQuantify(t, ts1, "/v1/quantify", quantifyBody(pubJSON, knowledgeP(float64(i)/100)))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("solve %d: status %d: %s", i, resp.StatusCode, raw)
		}
	}
	r1, raw1 := postGet(t, ts1, "/v1/history")
	if r1.StatusCode != http.StatusOK {
		t.Fatalf("pre-crash /v1/history = %d", r1.StatusCode)
	}
	var before HistoryResponse
	if err := json.Unmarshal(raw1, &before); err != nil {
		t.Fatal(err)
	}
	for _, rec := range before.Records {
		solveIDs = append(solveIDs, rec.SolveID)
	}
	ts1.Close()
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate the crash's torn write: a frame with no trailing newline
	// appended to the newest segment.
	segs, err := filepath.Glob(filepath.Join(dir, "journal-*.jsonl"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no journal segments in %s (%v)", dir, err)
	}
	sort.Strings(segs)
	f, err := os.OpenFile(segs[len(segs)-1], os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`00000000 {"schema":1,"solve_id":"torn`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	reg := telemetry.NewRegistry()
	st2 := openHistory(t, dir, reg)
	defer st2.Close()
	srv2 := New(Config{History: st2, Registry: reg})
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()

	// The journal survived: both completed records, torn frame skipped.
	resp, raw := postGet(t, ts2, "/v1/history")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-restart /v1/history = %d: %s", resp.StatusCode, raw)
	}
	var after HistoryResponse
	if err := json.Unmarshal(raw, &after); err != nil {
		t.Fatal(err)
	}
	if len(after.Records) != 2 {
		t.Fatalf("recovered %d records, want 2: %s", len(after.Records), raw)
	}
	for i, rec := range after.Records {
		if rec.SolveID != before.Records[i].SolveID || rec.RequestID != before.Records[i].RequestID {
			t.Fatalf("record %d diverged across restart: %+v vs %+v", i, rec, before.Records[i])
		}
	}

	// The done ring adopted them: /debug/solves answers for pre-crash IDs,
	// flagged as recovered with frozen elapsed time.
	resp, raw = postGet(t, ts2, "/debug/solves")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/solves = %d", resp.StatusCode)
	}
	var debug DebugSolvesResponse
	if err := json.Unmarshal(raw, &debug); err != nil {
		t.Fatal(err)
	}
	adopted := map[string]SolveStatus{}
	for _, st := range debug.Solves {
		adopted[st.ID] = st
	}
	for _, id := range solveIDs {
		st, ok := adopted[id]
		if !ok {
			t.Fatalf("pre-crash solve %q missing from /debug/solves: %s", id, raw)
		}
		if !st.Recovered || st.State != "done" || st.Iterations == 0 || st.ElapsedMS <= 0 {
			t.Fatalf("adopted solve %q not a frozen recovered entry: %+v", id, st)
		}
	}

	// SSE replay for an adopted solve is the synthesized recovered frame.
	resp, raw = postGet(t, ts2, "/v1/solves/"+solveIDs[0]+"/events")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recovered events = %d: %s", resp.StatusCode, raw)
	}
	if !strings.Contains(string(raw), "event: recovered") {
		t.Fatalf("recovered solve replay missing recovered frame:\n%s", raw)
	}

	// The recovery metrics agree: 2 replayed records, 1 torn frame.
	resp, raw = postGet(t, ts2, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics = %d", resp.StatusCode)
	}
	scrape := string(raw)
	for _, want := range []string{
		"pmaxentd_history_recovered_total 2",
		"pmaxentd_history_torn_frames_total 1",
	} {
		if !strings.Contains(scrape, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
}

// TestRegressionObservatory: tightening the solver tolerance between two
// daemon generations (the classic convergence regression: same workload,
// a config or code change that multiplies iterations) is caught by the
// detector and surfaced via /debug/regressions and the
// pmaxentd_regression_* metric families — with the baseline evidence
// coming entirely from the journal written by the previous generation.
func TestRegressionObservatory(t *testing.T) {
	_, pubJSON := paperPublished(t)
	dir := t.TempDir()

	// Generation 1: loose tolerance, 8 solves — the baseline window.
	st1 := openHistory(t, dir, nil)
	cfg1 := Config{History: st1}
	cfg1.Pipeline.Solve.Solver.GradTol = 1e-2
	ts1 := httptest.NewServer(New(cfg1))
	var digest string
	for i := 0; i < 8; i++ {
		resp, raw := postQuantify(t, ts1, "/v1/quantify", quantifyBody(pubJSON, knowledgeP(float64(i)/100)))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("baseline solve %d: %d: %s", i, resp.StatusCode, raw)
		}
	}
	if recs := st1.Recent(1, ""); len(recs) == 1 {
		digest = recs[0].Digest
	}
	ts1.Close()
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	// Generation 2: tight tolerance, fresh process recovering the same
	// journal. Four solves fill the recent window with the slow regime.
	reg := telemetry.NewRegistry()
	st2 := openHistory(t, dir, reg)
	defer st2.Close()
	cfg2 := Config{History: st2, Registry: reg}
	cfg2.Pipeline.Solve.Solver.GradTol = 1e-12
	ts2 := httptest.NewServer(New(cfg2))
	defer ts2.Close()
	for i := 0; i < 4; i++ {
		resp, raw := postQuantify(t, ts2, "/v1/quantify", quantifyBody(pubJSON, knowledgeP(0.2+float64(i)/100)))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("regressed solve %d: %d: %s", i, resp.StatusCode, raw)
		}
	}

	resp, raw := postGet(t, ts2, "/debug/regressions")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/regressions = %d: %s", resp.StatusCode, raw)
	}
	var regs RegressionsResponse
	if err := json.Unmarshal(raw, &regs); err != nil {
		t.Fatal(err)
	}
	if regs.Checks == 0 {
		t.Fatal("detector never ran")
	}
	var iterReg *history.Regression
	for i := range regs.Regressions {
		if regs.Regressions[i].Metric == history.MetricIterations {
			iterReg = &regs.Regressions[i]
		}
	}
	if iterReg == nil {
		t.Fatalf("no iteration regression despite the tolerance flip: %s", raw)
	}
	if iterReg.Digest != digest || iterReg.RecentP50 <= iterReg.BaselineP50 {
		t.Fatalf("implausible regression: %+v (digest %q)", iterReg, digest)
	}

	resp, raw = postGet(t, ts2, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics = %d", resp.StatusCode)
	}
	scrape := string(raw)
	if !strings.Contains(scrape, "pmaxentd_regression_detected_total") {
		t.Error("scrape missing pmaxentd_regression_detected_total")
	}
	for _, line := range strings.Split(scrape, "\n") {
		if strings.HasPrefix(line, "pmaxentd_regression_detected_total ") && strings.TrimSpace(line[len("pmaxentd_regression_detected_total "):]) == "0" {
			t.Errorf("detected counter still zero: %s", line)
		}
		if strings.HasPrefix(line, "pmaxentd_regression_active ") && strings.TrimSpace(line[len("pmaxentd_regression_active "):]) == "0" {
			t.Errorf("active gauge still zero: %s", line)
		}
	}
}

// TestSSEKeepAlive: an idle event stream emits comment heartbeats
// between real frames so intermediaries don't sever a long solve, and
// the heartbeats stop mattering once the terminal frame arrives.
func TestSSEKeepAlive(t *testing.T) {
	srv := New(Config{SSEKeepAlive: 20 * time.Millisecond})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	ls := srv.live.begin("keepalivedigest", "req-keepalive", "", 1, 0, false)
	srv.live.markRunning(ls, 0)

	resp, err := ts.Client().Get(ts.URL + "/v1/solves/" + ls.id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}

	// Let the stream idle across several keep-alive periods, then finish
	// the solve so the stream terminates and the body can be read whole.
	time.Sleep(120 * time.Millisecond)
	srv.live.finish(ls, []byte(`{"done":true}`), nil)
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	beats := strings.Count(body, ": keep-alive\n\n")
	if beats < 2 {
		t.Fatalf("want ≥2 heartbeats on a ~120ms idle stream at 20ms interval, got %d:\n%s", beats, body)
	}
	result := strings.Index(body, "event: result")
	if result < 0 {
		t.Fatalf("stream missing terminal result frame:\n%s", body)
	}
	if firstBeat := strings.Index(body, ": keep-alive"); firstBeat > result {
		t.Fatalf("heartbeats only after the terminal frame:\n%s", body)
	}
}

// TestAccessLogOutcomeOnError: failed requests stamp their error kind
// into the access log's outcome field, joining the log line to the
// history record's error_kind.
func TestAccessLogOutcomeOnError(t *testing.T) {
	var logBuf syncBuffer
	ts := httptest.NewServer(New(Config{Logger: slog.New(slog.NewJSONHandler(&logBuf, nil))}))
	defer ts.Close()

	resp, _ := postQuantify(t, ts, "/v1/quantify", `{"published": null}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		for _, line := range strings.Split(logBuf.String(), "\n") {
			if !strings.Contains(line, "pmaxentd: access") {
				continue
			}
			var ev map[string]any
			if err := json.Unmarshal([]byte(line), &ev); err != nil {
				t.Fatalf("corrupt access line: %v\n%s", err, line)
			}
			if ev["outcome"] != "invalid_request" {
				t.Fatalf("outcome = %v, want invalid_request", ev["outcome"])
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("no access-log line:\n%s", logBuf.String())
		}
		time.Sleep(time.Millisecond)
	}
}
