package server

import (
	"math"
	"sort"
	"strconv"
	"sync"
	"time"
)

// retryHint turns observed queue waits into an adaptive Retry-After
// value. The static -retry-after flag only knows how long the operator
// guessed a retry should back off; the queue itself knows how long
// requests are actually waiting for a slot right now. The hint is the
// p50 of the most recent queue waits (successful acquisitions and
// timed-out waits alike — a wait that expired is still evidence of how
// long the line is), rounded up to whole seconds, floored by the
// configured value. Under no load the hint equals the flag; under
// sustained load it grows with the queue, telling clients to come back
// when a slot is plausibly free instead of hammering a saturated server.
type retryHint struct {
	mu   sync.Mutex
	ring [64]time.Duration
	n    int // total observations (ring index = n % len)
}

// observe records one queue wait.
func (h *retryHint) observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.mu.Lock()
	h.ring[h.n%len(h.ring)] = d
	h.n++
	h.mu.Unlock()
}

// p50 returns the median of the recorded waits (0 with no samples).
func (h *retryHint) p50() time.Duration {
	h.mu.Lock()
	n := h.n
	if n > len(h.ring) {
		n = len(h.ring)
	}
	samples := make([]time.Duration, n)
	copy(samples, h.ring[:n])
	h.mu.Unlock()
	if n == 0 {
		return 0
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	return samples[n/2]
}

// seconds renders the Retry-After header value: the observed p50 rounded
// up to whole seconds, never below the configured floor (and never
// below 1s — Retry-After is an integer header).
func (h *retryHint) seconds(floor time.Duration) string {
	hint := floor
	if p := h.p50(); p > hint {
		hint = p
	}
	secs := int(math.Ceil(hint.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}
