// Package individuals implements the paper's Section 6: integrating
// background knowledge about specific people. Because a QI value may be
// shared by several records, the published table is expanded with
// pseudonyms (Figure 4): every occurrence of a QI value q is associated
// with the same set of pseudonyms {i_1, ..., i_k}, one per record with
// that QI value, reflecting that the adversary knows a target is *one of*
// those occurrences without knowing which.
//
// The model's variables are the probability terms P(i, Q, S, B). Base
// invariants (the pseudonym analogues of Sec. 5's, whose derivation the
// paper sketches and omits):
//
//   - person-invariant: Σ_{s,b} P(i, q_i, s, b) = 1/N for every pseudonym
//     i (each person has exactly one record);
//   - QI-slot invariant: Σ_{i,s} P(i, q, s, b) = P(q, b) for every QI
//     value q and bucket b containing it;
//   - SA-invariant: Σ_{i,q} P(i, q, s, b) = P(s, b) for every SA value s
//     and bucket b containing it;
//   - zero-invariants, structural as before: terms exist only when q and
//     s both occur in b.
//
// Summing the solution over pseudonyms recovers the base model's
// P(Q, S, B), so the two models agree when no individual knowledge is
// present.
package individuals

import (
	"fmt"

	"privacymaxent/internal/bucket"
	"privacymaxent/internal/constraint"
	"privacymaxent/internal/maxent"
)

// Term is a pseudonymized probability term P(i, q, s, b). Person is a
// dense global pseudonym id (see Space.Person for the (qid, index) view).
type Term struct {
	Person int
	QID    int
	SA     int
	Bucket int
}

// Person identifies a pseudonym as the Index-th occurrence of the QI
// value QID (Index ranges over [0, count(q))). In Figure 4's example,
// {i1, i2, i3} are (q1, 0), (q1, 1), (q1, 2).
type Person struct {
	QID   int
	Index int
}

// Space enumerates the pseudonym-expanded probability terms of a
// published data set and assigns dense indices.
type Space struct {
	data *bucket.Bucketized

	persons  []Person // person id -> (qid, index)
	byQID    [][]int  // qid -> person ids
	terms    []Term
	index    map[Term]int
	byPerson [][]int // person id -> term ids
}

// NewSpace expands the published data with pseudonyms. One pseudonym is
// created per record; a pseudonym with QI value q may occupy any
// occurrence of q in any bucket.
func NewSpace(d *bucket.Bucketized) *Space {
	u := d.Universe()
	sp := &Space{
		data:  d,
		byQID: make([][]int, u.Len()),
		index: make(map[Term]int),
	}
	for qid := 0; qid < u.Len(); qid++ {
		for k := 0; k < u.Count(qid); k++ {
			id := len(sp.persons)
			sp.persons = append(sp.persons, Person{QID: qid, Index: k})
			sp.byQID[qid] = append(sp.byQID[qid], id)
		}
	}
	sp.byPerson = make([][]int, len(sp.persons))
	for b := 0; b < d.NumBuckets(); b++ {
		bk := d.Bucket(b)
		for _, qid := range bk.DistinctQIDs() {
			for _, person := range sp.byQID[qid] {
				for _, s := range bk.DistinctSAs() {
					t := Term{Person: person, QID: qid, SA: s, Bucket: b}
					id := len(sp.terms)
					sp.index[t] = id
					sp.terms = append(sp.terms, t)
					sp.byPerson[person] = append(sp.byPerson[person], id)
				}
			}
		}
	}
	return sp
}

// Data returns the published data set.
func (sp *Space) Data() *bucket.Bucketized { return sp.data }

// Len reports the number of probability terms.
func (sp *Space) Len() int { return len(sp.terms) }

// NumPersons reports the number of pseudonyms (= records, N).
func (sp *Space) NumPersons() int { return len(sp.persons) }

// Person returns the (qid, index) identity of a person id.
func (sp *Space) Person(id int) Person { return sp.persons[id] }

// PersonID resolves a (qid, index) pseudonym to its dense id.
func (sp *Space) PersonID(p Person) (int, error) {
	if p.QID < 0 || p.QID >= len(sp.byQID) {
		return 0, fmt.Errorf("individuals: qid %d out of range", p.QID)
	}
	ids := sp.byQID[p.QID]
	if p.Index < 0 || p.Index >= len(ids) {
		return 0, fmt.Errorf("individuals: pseudonym index %d out of range for q%d (%d occurrences)", p.Index, p.QID+1, len(ids))
	}
	return ids[p.Index], nil
}

// PersonsWithQID returns the pseudonym ids attached to a QI value.
func (sp *Space) PersonsWithQID(qid int) []int { return sp.byQID[qid] }

// Term returns the term with dense index i.
func (sp *Space) Term(i int) Term { return sp.terms[i] }

// Index maps a term to its dense index; ok is false for structural zeros.
func (sp *Space) Index(t Term) (int, bool) {
	i, ok := sp.index[t]
	return i, ok
}

// TermsOfPerson returns the dense indices of a person's terms.
func (sp *Space) TermsOfPerson(person int) []int { return sp.byPerson[person] }

// Invariants builds the base invariant equations of the pseudonym model.
func (sp *Space) Invariants() []constraint.Constraint {
	d := sp.data
	n := float64(d.N())
	var cons []constraint.Constraint

	// Person-invariants: each person's terms sum to 1/N. They play the
	// QI-invariant role structurally (each variable appears in exactly
	// one), which also lets GIS recover total mass.
	for person := range sp.persons {
		terms := sp.byPerson[person]
		cons = append(cons, constraint.Constraint{
			Kind:   constraint.QIInvariant,
			Label:  fmt.Sprintf("person i%d", person+1),
			Terms:  append([]int(nil), terms...),
			Coeffs: ones(len(terms)),
			RHS:    1 / n,
		})
	}

	for b := 0; b < d.NumBuckets(); b++ {
		bk := d.Bucket(b)
		qids := bk.DistinctQIDs()
		sas := bk.DistinctSAs()
		// QI-slot invariants: the q-records of bucket b carry mass
		// P(q,b), distributed among q's pseudonyms and b's SA values.
		for _, qid := range qids {
			var terms []int
			for _, person := range sp.byQID[qid] {
				for _, s := range sas {
					id, ok := sp.index[Term{Person: person, QID: qid, SA: s, Bucket: b}]
					if !ok {
						panic("individuals: bucket term missing from space")
					}
					terms = append(terms, id)
				}
			}
			cons = append(cons, constraint.Constraint{
				Kind:   constraint.SAInvariant, // secondary invariant family
				Label:  fmt.Sprintf("slot q%d b%d", qid+1, b+1),
				Terms:  terms,
				Coeffs: ones(len(terms)),
				RHS:    d.PQB(qid, b),
			})
		}
		// SA-invariants.
		for _, s := range sas {
			var terms []int
			for _, qid := range qids {
				for _, person := range sp.byQID[qid] {
					id, ok := sp.index[Term{Person: person, QID: qid, SA: s, Bucket: b}]
					if !ok {
						panic("individuals: bucket term missing from space")
					}
					terms = append(terms, id)
				}
			}
			cons = append(cons, constraint.Constraint{
				Kind:   constraint.SAInvariant,
				Label:  fmt.Sprintf("SA s%d b%d", s+1, b+1),
				Terms:  terms,
				Coeffs: ones(len(terms)),
				RHS:    d.PSB(s, b),
			})
		}
	}
	return cons
}

// UniformInit returns the symmetric starting point: the base model's
// closed-form P(q,s,b) split equally among q's pseudonyms. Variables
// never touched by constraints would keep this value, and it is the exact
// MaxEnt solution when no individual knowledge is present.
func (sp *Space) UniformInit() []float64 {
	d := sp.data
	x := make([]float64, len(sp.terms))
	for i, t := range sp.terms {
		pb := d.PB(t.Bucket)
		if pb == 0 {
			continue
		}
		share := float64(len(sp.byQID[t.QID]))
		x[i] = d.PQB(t.QID, t.Bucket) * d.PSB(t.SA, t.Bucket) / pb / share
	}
	return x
}

func ones(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return w
}

// Solution is a maximum-entropy assignment of pseudonym terms.
type Solution struct {
	space *Space
	// X holds P(i, Q, S, B) for every term.
	X []float64
	// Stats reports the underlying solve.
	Stats maxent.Stats
}

// Space returns the term space.
func (s *Solution) Space() *Space { return s.space }

// PersonPosterior returns P(S = s | person) for every SA code: the
// person's sensitive-value distribution under the model, obtained as
// N · Σ_b P(i, q_i, s, b).
func (s *Solution) PersonPosterior(person int) []float64 {
	d := s.space.Data()
	out := make([]float64, d.SACardinality())
	for _, id := range s.space.TermsOfPerson(person) {
		out[s.space.Term(id).SA] += s.X[id]
	}
	n := float64(d.N())
	for i := range out {
		out[i] *= n
	}
	return out
}

// Aggregate folds pseudonyms away, returning the base-model joint
// P(q, s, b) for a term of the standard space.
func (s *Solution) Aggregate(qid, sa, b int) float64 {
	var sum float64
	for _, person := range s.space.PersonsWithQID(qid) {
		if id, ok := s.space.Index(Term{Person: person, QID: qid, SA: sa, Bucket: b}); ok {
			sum += s.X[id]
		}
	}
	return sum
}

// Solve computes the pseudonym-model MaxEnt distribution under the given
// individual-knowledge statements.
func Solve(sp *Space, knowledge []Knowledge, opts maxent.Options) (*Solution, error) {
	cons := sp.Invariants()
	for i, k := range knowledge {
		c, err := k.Constraint(sp)
		if err != nil {
			return nil, fmt.Errorf("individuals: knowledge %d: %w", i, err)
		}
		cons = append(cons, c)
	}
	x, stats, err := maxent.SolveConstraints(sp.Len(), cons, sp.UniformInit(), opts)
	if err != nil {
		return nil, err
	}
	return &Solution{space: sp, X: x, Stats: stats}, nil
}
