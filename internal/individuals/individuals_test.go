package individuals

import (
	"math"
	"testing"

	"privacymaxent/internal/bucket"
	"privacymaxent/internal/constraint"
	"privacymaxent/internal/dataset"
	"privacymaxent/internal/maxent"
	"privacymaxent/internal/solver"
)

// paperPSpace builds the pseudonym space of the running example
// (Figure 4: q1 carries pseudonyms {i1,i2,i3}, q4 carries {i8}, ...).
func paperPSpace(t *testing.T) (*dataset.Table, *bucket.Bucketized, *Space) {
	t.Helper()
	tbl := dataset.PaperExample()
	d, err := bucket.FromPartition(tbl, dataset.PaperBuckets())
	if err != nil {
		t.Fatal(err)
	}
	return tbl, d, NewSpace(d)
}

func TestSpaceShape(t *testing.T) {
	_, d, sp := paperPSpace(t)
	if got := sp.NumPersons(); got != 10 {
		t.Fatalf("persons = %d, want 10", got)
	}
	// Per bucket: (Σ pseudonyms of bucket's QI values) × (distinct SAs).
	// Bucket 1: (3+2+2)*3 = 21; bucket 2: (3+2+1)*3 = 18;
	// bucket 3: (2+1+1)*3 = 12.
	if got := sp.Len(); got != 51 {
		t.Fatalf("terms = %d, want 51", got)
	}
	// q1 has three pseudonyms.
	if got := len(sp.PersonsWithQID(0)); got != 3 {
		t.Fatalf("pseudonyms of q1 = %d, want 3", got)
	}
	// Unique QI values have a single pseudonym (q4 = Grace).
	if got := len(sp.PersonsWithQID(3)); got != 1 {
		t.Fatalf("pseudonyms of q4 = %d, want 1", got)
	}
	// PersonID round-trips.
	id, err := sp.PersonID(Person{QID: 0, Index: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sp.Person(id) != (Person{QID: 0, Index: 2}) {
		t.Fatalf("PersonID round trip failed")
	}
	if _, err := sp.PersonID(Person{QID: 0, Index: 5}); err == nil {
		t.Fatal("expected out-of-range pseudonym error")
	}
	if _, err := sp.PersonID(Person{QID: 99}); err == nil {
		t.Fatal("expected out-of-range qid error")
	}
	_ = d
}

func TestUniformInitSatisfiesInvariants(t *testing.T) {
	_, _, sp := paperPSpace(t)
	x := sp.UniformInit()
	for _, c := range sp.Invariants() {
		if r := math.Abs(c.Residual(x)); r > 1e-12 {
			t.Fatalf("%s violated by %g at uniform init", c.Label, r)
		}
	}
}

func TestSolveNoKnowledgeMatchesBaseModel(t *testing.T) {
	_, d, sp := paperPSpace(t)
	sol, err := Solve(sp, nil, maxent.Options{Solver: solver.Options{GradTol: 1e-11}})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Stats.MaxViolation > 1e-7 {
		t.Fatalf("violation %g", sol.Stats.MaxViolation)
	}
	// Aggregating pseudonyms recovers the base model's closed form.
	base := maxent.Uniform(constraint.NewSpace(d))
	baseSp := constraint.NewSpace(d)
	for i := 0; i < baseSp.Len(); i++ {
		tm := baseSp.Term(i)
		if got := sol.Aggregate(tm.QID, tm.SA, tm.Bucket); math.Abs(got-base[i]) > 1e-6 {
			t.Fatalf("aggregate P(q%d,s%d,%d) = %g, want %g", tm.QID+1, tm.SA+1, tm.Bucket+1, got, base[i])
		}
	}
	// Pseudonyms of the same QI value are exchangeable: identical
	// posteriors.
	p0 := sol.PersonPosterior(sp.PersonsWithQID(0)[0])
	p1 := sol.PersonPosterior(sp.PersonsWithQID(0)[1])
	for s := range p0 {
		if math.Abs(p0[s]-p1[s]) > 1e-7 {
			t.Fatalf("pseudonym posteriors differ at s%d: %g vs %g", s+1, p0[s], p1[s])
		}
	}
	// Posteriors are distributions.
	for person := 0; person < sp.NumPersons(); person++ {
		var sum float64
		for _, p := range sol.PersonPosterior(person) {
			sum += p
		}
		if math.Abs(sum-1) > 1e-7 {
			t.Fatalf("person %d posterior sums to %g", person, sum)
		}
	}
}

// TestForm1PaperExample replays Sec. 6 form (1): "the probability that
// Alice (q1) has Breast Cancer (s1) is 0.2" becomes
// P(i1,q1,s1,1) + P(i1,q1,s1,2) = 0.2/N.
func TestForm1PaperExample(t *testing.T) {
	tbl, _, sp := paperPSpace(t)
	s1 := tbl.Schema().SA().MustCode("Breast Cancer")
	k := ValueProbability{Person: Person{QID: 0, Index: 0}, SAs: []int{s1}, P: 0.2}
	c, err := k.Constraint(sp)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Terms) != 2 {
		t.Fatalf("terms = %d, want 2 (buckets 1 and 2)", len(c.Terms))
	}
	if math.Abs(c.RHS-0.02) > 1e-15 {
		t.Fatalf("RHS = %g, want 0.2/10", c.RHS)
	}
	sol, err := Solve(sp, []Knowledge{k}, maxent.Options{})
	if err != nil {
		t.Fatal(err)
	}
	alice, _ := sp.PersonID(k.Person)
	post := sol.PersonPosterior(alice)
	if math.Abs(post[s1]-0.2) > 1e-6 {
		t.Fatalf("P(s1 | Alice) = %g, want 0.2", post[s1])
	}
}

// TestForm2PaperExample replays form (2): "Alice (q1) has either Breast
// Cancer (s1) or HIV (s4)", i.e. P(i1,q1,s1,1)+P(i1,q1,s1,2)+P(i1,q1,s4,2)
// = 1/N.
func TestForm2PaperExample(t *testing.T) {
	tbl, _, sp := paperPSpace(t)
	s1 := tbl.Schema().SA().MustCode("Breast Cancer")
	s4 := tbl.Schema().SA().MustCode("HIV")
	k := ValueProbability{Person: Person{QID: 0, Index: 0}, SAs: []int{s1, s4}, P: 1}
	c, err := k.Constraint(sp)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Terms) != 3 {
		t.Fatalf("terms = %d, want 3", len(c.Terms))
	}
	if math.Abs(c.RHS-0.1) > 1e-15 {
		t.Fatalf("RHS = %g, want 1/10", c.RHS)
	}
	sol, err := Solve(sp, []Knowledge{k}, maxent.Options{})
	if err != nil {
		t.Fatal(err)
	}
	alice, _ := sp.PersonID(k.Person)
	post := sol.PersonPosterior(alice)
	if math.Abs(post[s1]+post[s4]-1) > 1e-6 {
		t.Fatalf("P(s1)+P(s4) = %g, want 1", post[s1]+post[s4])
	}
	flu := tbl.Schema().SA().MustCode("Flu")
	if post[flu] > 1e-6 {
		t.Fatalf("P(Flu | Alice) = %g, want 0", post[flu])
	}
}

// TestForm3PaperExample replays form (3): "two people among Alice (q1),
// Bob (q2) and Charlie (q5) have HIV (s4)" becomes
// P(i1,q1,s4,2) + P(i4,q2,s4,3) + P(i9,q5,s4,3) = 2/N.
func TestForm3PaperExample(t *testing.T) {
	tbl, _, sp := paperPSpace(t)
	s4 := tbl.Schema().SA().MustCode("HIV")
	group := []Person{{QID: 0, Index: 0}, {QID: 1, Index: 0}, {QID: 4, Index: 0}}
	k := GroupCount{Persons: group, SA: s4, Count: 2}
	c, err := k.Constraint(sp)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Terms) != 3 {
		t.Fatalf("terms = %d, want 3 (paper's exact constraint)", len(c.Terms))
	}
	if math.Abs(c.RHS-0.2) > 1e-15 {
		t.Fatalf("RHS = %g, want 2/10", c.RHS)
	}
	sol, err := Solve(sp, []Knowledge{k}, maxent.Options{Solver: solver.Options{MaxIterations: 2000}})
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, p := range group {
		id, _ := sp.PersonID(p)
		total += sol.PersonPosterior(id)[s4]
	}
	if math.Abs(total-2) > 1e-5 {
		t.Fatalf("expected HIV count = %g, want 2", total)
	}
}

// TestNegativeIndividualKnowledge: "Helen (q2, second occurrence) does
// not have HIV" zeroes her HIV posterior and pushes the bucket-3 HIV mass
// to the other bucket-3 residents.
func TestNegativeIndividualKnowledge(t *testing.T) {
	tbl, _, sp := paperPSpace(t)
	s4 := tbl.Schema().SA().MustCode("HIV")
	helen := Person{QID: 1, Index: 1}
	k := ValueProbability{Person: helen, SAs: []int{s4}, P: 0}
	sol, err := Solve(sp, []Knowledge{k}, maxent.Options{})
	if err != nil {
		t.Fatal(err)
	}
	id, _ := sp.PersonID(helen)
	if got := sol.PersonPosterior(id)[s4]; got > 1e-9 {
		t.Fatalf("P(HIV | Helen) = %g, want 0", got)
	}
	// Mass conservation: aggregate SA invariants still hold.
	d := sp.Data()
	for b := 0; b < d.NumBuckets(); b++ {
		for _, s := range d.Bucket(b).DistinctSAs() {
			var sum float64
			for _, q := range d.Bucket(b).DistinctQIDs() {
				sum += sol.Aggregate(q, s, b)
			}
			if math.Abs(sum-d.PSB(s, b)) > 1e-6 {
				t.Fatalf("SA mass (s%d, b%d) = %g, want %g", s+1, b+1, sum, d.PSB(s, b))
			}
		}
	}
}

func TestKnowledgeValidationErrors(t *testing.T) {
	_, _, sp := paperPSpace(t)
	cases := []Knowledge{
		ValueProbability{Person: Person{QID: 0}, SAs: nil, P: 0.5},
		ValueProbability{Person: Person{QID: 0}, SAs: []int{0}, P: 1.5},
		ValueProbability{Person: Person{QID: 99}, SAs: []int{0}, P: 0.5},
		ValueProbability{Person: Person{QID: 0}, SAs: []int{99}, P: 0.5},
		ValueProbability{Person: Person{QID: 0}, SAs: []int{0, 0}, P: 0.5},
		GroupCount{Persons: nil, SA: 0, Count: 1},
		GroupCount{Persons: []Person{{QID: 0}}, SA: 99, Count: 1},
		GroupCount{Persons: []Person{{QID: 0}}, SA: 0, Count: 2},
		GroupCount{Persons: []Person{{QID: 0}, {QID: 0}}, SA: 0, Count: 1},
	}
	for i, k := range cases {
		if _, err := k.Constraint(sp); err == nil {
			t.Errorf("case %d: expected error", i)
		}
		if _, err := Solve(sp, []Knowledge{k}, maxent.Options{}); err == nil {
			t.Errorf("case %d: Solve should propagate the error", i)
		}
	}
}

// TestIrisLungCancerCertainty: Iris (q5) is the only bucket-3 resident
// who can have Lung Cancer once we know James (q6) and Helen (q2) do not.
func TestIrisLungCancerCertainty(t *testing.T) {
	tbl, _, sp := paperPSpace(t)
	s5 := tbl.Schema().SA().MustCode("Lung Cancer")
	ks := []Knowledge{
		ValueProbability{Person: Person{QID: 5, Index: 0}, SAs: []int{s5}, P: 0}, // James
		ValueProbability{Person: Person{QID: 1, Index: 0}, SAs: []int{s5}, P: 0}, // first q2 pseudonym
		ValueProbability{Person: Person{QID: 1, Index: 1}, SAs: []int{s5}, P: 0}, // second q2 pseudonym
	}
	sol, err := Solve(sp, ks, maxent.Options{})
	if err != nil {
		t.Fatal(err)
	}
	iris, _ := sp.PersonID(Person{QID: 4, Index: 0})
	if got := sol.PersonPosterior(iris)[s5]; math.Abs(got-1) > 1e-6 {
		t.Fatalf("P(LungCancer | Iris) = %g, want 1", got)
	}
}
