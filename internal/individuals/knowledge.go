package individuals

import (
	"fmt"
	"sort"

	"privacymaxent/internal/constraint"
)

// Knowledge is a background-knowledge statement about specific people
// that can be expressed as one linear ME constraint over pseudonym terms
// (the paper's Sec. 6 catalogue).
type Knowledge interface {
	// Constraint renders the statement over the space.
	Constraint(sp *Space) (constraint.Constraint, error)
}

// ValueProbability is forms (1) and (2) of the paper's list: the
// probability that a person's sensitive value lies in SAs equals P.
//
//   - Form 1, "the probability that Alice has Breast Cancer is 0.2":
//     SAs = {BreastCancer}, P = 0.2.
//   - Form 2, "Alice has either Breast Cancer or HIV":
//     SAs = {BreastCancer, HIV}, P = 1.
//   - "Bob does not have HIV": SAs = {HIV}, P = 0.
type ValueProbability struct {
	Person Person
	SAs    []int
	P      float64
}

// Constraint builds Σ_{s∈SAs} Σ_b P(i, q_i, s, b) = P/N.
func (k ValueProbability) Constraint(sp *Space) (constraint.Constraint, error) {
	if len(k.SAs) == 0 {
		return constraint.Constraint{}, fmt.Errorf("individuals: no sensitive values given")
	}
	if k.P < 0 || k.P > 1 {
		return constraint.Constraint{}, fmt.Errorf("individuals: probability %g outside [0,1]", k.P)
	}
	person, err := sp.PersonID(k.Person)
	if err != nil {
		return constraint.Constraint{}, err
	}
	saCard := sp.Data().SACardinality()
	want := make(map[int]bool, len(k.SAs))
	for _, s := range k.SAs {
		if s < 0 || s >= saCard {
			return constraint.Constraint{}, fmt.Errorf("individuals: SA code %d out of range", s)
		}
		if want[s] {
			return constraint.Constraint{}, fmt.Errorf("individuals: SA code %d repeated", s)
		}
		want[s] = true
	}
	var terms []int
	for _, id := range sp.TermsOfPerson(person) {
		if want[sp.Term(id).SA] {
			terms = append(terms, id)
		}
	}
	sort.Ints(terms)
	return constraint.Constraint{
		Kind:   constraint.IndividualKnowledge,
		Label:  fmt.Sprintf("P(SA∈%v | i%d) = %g", k.SAs, person+1, k.P),
		Terms:  terms,
		Coeffs: ones(len(terms)),
		RHS:    k.P / float64(sp.Data().N()),
	}, nil
}

// GroupCount is form (3): exactly Count people among Persons carry the
// sensitive value SA ("two people among Alice, Bob and Charlie have
// HIV"). Count may be fractional to express an expected count.
type GroupCount struct {
	Persons []Person
	SA      int
	Count   float64
}

// Constraint builds Σ_{i∈Persons} Σ_b P(i, q_i, SA, b) = Count/N.
func (k GroupCount) Constraint(sp *Space) (constraint.Constraint, error) {
	if len(k.Persons) == 0 {
		return constraint.Constraint{}, fmt.Errorf("individuals: empty person group")
	}
	if k.SA < 0 || k.SA >= sp.Data().SACardinality() {
		return constraint.Constraint{}, fmt.Errorf("individuals: SA code %d out of range", k.SA)
	}
	if k.Count < 0 || k.Count > float64(len(k.Persons)) {
		return constraint.Constraint{}, fmt.Errorf("individuals: count %g outside [0, %d]", k.Count, len(k.Persons))
	}
	var terms []int
	seen := map[int]bool{}
	for _, p := range k.Persons {
		person, err := sp.PersonID(p)
		if err != nil {
			return constraint.Constraint{}, err
		}
		if seen[person] {
			return constraint.Constraint{}, fmt.Errorf("individuals: person (q%d,%d) listed twice", p.QID+1, p.Index)
		}
		seen[person] = true
		for _, id := range sp.TermsOfPerson(person) {
			if sp.Term(id).SA == k.SA {
				terms = append(terms, id)
			}
		}
	}
	sort.Ints(terms)
	return constraint.Constraint{
		Kind:   constraint.IndividualKnowledge,
		Label:  fmt.Sprintf("count(s%d among %d people) = %g", k.SA+1, len(k.Persons), k.Count),
		Terms:  terms,
		Coeffs: ones(len(terms)),
		RHS:    k.Count / float64(sp.Data().N()),
	}, nil
}
