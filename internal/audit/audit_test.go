package audit

import (
	"math"
	"path/filepath"
	"strings"
	"testing"

	"privacymaxent/internal/bucket"
	"privacymaxent/internal/constraint"
	"privacymaxent/internal/dataset"
	"privacymaxent/internal/maxent"
	"privacymaxent/internal/solver"
)

// paperSolve builds the paper's running example with the Sec. 5.5
// knowledge P(s3 | q3) = 0.5 and solves it.
func paperSolve(t *testing.T, opts maxent.Options) (*constraint.System, *maxent.Solution) {
	t.Helper()
	tbl := dataset.PaperExample()
	d, err := bucket.FromPartition(tbl, dataset.PaperBuckets())
	if err != nil {
		t.Fatal(err)
	}
	sp := constraint.NewSpace(d)
	sys := constraint.DataInvariants(sp, constraint.InvariantOptions{DropRedundant: true})
	s3 := tbl.Schema().SA().MustCode("Pneumonia")
	k := constraint.DistributionKnowledge{
		Attrs:  append([]int(nil), tbl.Schema().QIIndices()...),
		Values: append([]int(nil), d.Universe().Codes(2)...),
		SA:     s3,
		P:      0.5,
	}
	if err := constraint.AddKnowledge(sys, k); err != nil {
		t.Fatal(err)
	}
	sol, err := maxent.Solve(sys, opts)
	if err != nil {
		t.Fatal(err)
	}
	return sys, sol
}

func TestAuditHealthySolve(t *testing.T) {
	sys, sol := paperSolve(t, maxent.Options{CaptureTrace: true,
		Solver: solver.Options{GradTol: 1e-8}})
	a := New(sys, sol, Options{})

	if !a.Converged || !a.Feasible {
		t.Fatalf("healthy solve audited as unhealthy: %+v", a)
	}
	if a.Infeasibility != nil {
		t.Fatalf("unexpected infeasibility diagnosis: %+v", a.Infeasibility)
	}

	// Family breakdown covers the full Theorem 1–3 accounting.
	byFam := map[string]FamilySummary{}
	for _, f := range a.Families {
		byFam[f.Family] = f
	}
	for _, fam := range []string{"QI-invariant", "SA-invariant", "knowledge"} {
		f, ok := byFam[fam]
		if !ok {
			t.Fatalf("family %q missing: %+v", fam, a.Families)
		}
		if f.Rows == 0 {
			t.Fatalf("family %q has no rows", fam)
		}
		if f.Violations != 0 || f.MaxAbsResidual > 1e-6 {
			t.Fatalf("family %q not satisfied: %+v", fam, f)
		}
	}
	if f, ok := byFam["zero-invariant"]; ok && f.MaxAbsResidual != 0 {
		t.Fatalf("zero-invariants are structural, residual must be 0: %+v", f)
	}

	// The knowledge rule binds: it moves the posterior away from the
	// invariant-only solution, so its multiplier is far from zero and it
	// tops the knowledge ranking.
	if !a.HasDuals || len(a.BindingKnowledge) == 0 {
		t.Fatalf("no binding knowledge identified: %+v", a)
	}
	top := a.BindingKnowledge[0]
	if top.Family != "knowledge" || top.Lambda == 0 {
		t.Fatalf("binding knowledge row malformed: %+v", top)
	}
	if !strings.Contains(top.Label, "Pneumonia") {
		t.Fatalf("binding rule label %q does not name the knowledge", top.Label)
	}

	// Joint primal–dual optimality: the duality gap is tiny (it scales
	// with residual × multiplier, so a 1e-8 gradient tolerance puts it
	// well below 1e-6).
	if math.Abs(a.DualityGap) > 1e-6 {
		t.Fatalf("duality gap %g too large for a converged solve", a.DualityGap)
	}

	// Trajectory is globally indexed and ends at Stats.Iterations.
	if len(a.Trajectory) == 0 {
		t.Fatal("no trajectory despite CaptureTrace")
	}
	last := a.Trajectory[len(a.Trajectory)-1]
	if last.Index != sol.Stats.Iterations {
		t.Fatalf("final trajectory index %d != iterations %d", last.Index, sol.Stats.Iterations)
	}

	if a.Entropy <= 0 || math.Abs(a.EntropyBits-a.Entropy/math.Ln2) > 1e-12 {
		t.Fatalf("entropy bookkeeping wrong: %g nats, %g bits", a.Entropy, a.EntropyBits)
	}
	if len(a.TopViolations) == 0 {
		t.Fatal("top violations should list rows even when tiny")
	}
}

func TestAuditUnconvergedSolve(t *testing.T) {
	sys, sol := paperSolve(t, maxent.Options{
		CaptureTrace: true,
		Solver:       solver.Options{MaxIterations: 2},
	})
	if sol.Stats.Converged {
		t.Skip("2 iterations unexpectedly converged")
	}
	a := New(sys, sol, Options{})
	if a.Converged {
		t.Fatal("audit lost the unconverged flag")
	}
	if a.Infeasibility == nil {
		t.Fatal("unconverged solve must carry an infeasibility diagnosis")
	}
	if !strings.Contains(a.Infeasibility.Reason, "converge") {
		t.Fatalf("reason %q does not mention convergence", a.Infeasibility.Reason)
	}
	if !a.Feasible && len(a.Infeasibility.MostViolated) == 0 {
		t.Fatal("violating solve must list most-violated rows")
	}
	for _, r := range a.Infeasibility.MostViolated {
		if r.Label == "" || math.Abs(r.Residual) <= a.Tolerance {
			t.Fatalf("most-violated row malformed: %+v", r)
		}
	}
	// The trajectory still ends at the iteration budget.
	if len(a.Trajectory) != sol.Stats.Iterations {
		t.Fatalf("trajectory length %d != iterations %d", len(a.Trajectory), sol.Stats.Iterations)
	}
}

func TestAuditRoundTrip(t *testing.T) {
	sys, sol := paperSolve(t, maxent.Options{CaptureTrace: true})
	a := New(sys, sol, Options{Top: 3})
	path := filepath.Join(t.TempDir(), "audit.json")
	if err := a.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	b, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if b.Iterations != a.Iterations || b.Entropy != a.Entropy || len(b.Families) != len(a.Families) ||
		len(b.Trajectory) != len(a.Trajectory) || len(b.BindingKnowledge) != len(a.BindingKnowledge) {
		t.Fatalf("round trip changed the audit:\n%+v\n%+v", a, b)
	}
	if len(a.TopViolations) > 3 || len(a.TopDuals) > 3 {
		t.Fatalf("Top option not honoured: %d violations, %d duals", len(a.TopViolations), len(a.TopDuals))
	}
}

func TestAuditScalingAlgorithmNoDuals(t *testing.T) {
	sys, sol := paperSolve(t, maxent.Options{Algorithm: maxent.GIS, CaptureTrace: true,
		Solver: solver.Options{MaxIterations: 20000, GradTol: 1e-10}})
	a := New(sys, sol, Options{})
	if a.HasDuals || len(a.TopDuals) != 0 || a.DualityGap != 0 {
		t.Fatalf("GIS exposes no duals, audit claims some: %+v", a)
	}
	if len(a.Trajectory) == 0 || len(a.Trajectory) != a.Iterations {
		t.Fatalf("GIS trajectory wrong: %d points, %d iterations", len(a.Trajectory), a.Iterations)
	}
}
