// Package audit turns a MaxEnt solve into an explainable numerical-health
// artifact. Where Stats compresses a solve into scalar counters, a
// SolveAudit keeps the structure the paper's guarantees live in: which
// family of constraints (QI-invariant / SA-invariant / zero-invariant /
// knowledge / individual — the rows of Theorems 1–3 plus the Top-(K+, K−)
// knowledge model) holds or is violated at the returned solution, which
// background-knowledge rule binds (large |λ|) versus is implied by the
// invariants (λ ≈ 0), how the optimizer got there (the per-iteration
// trajectory), and — when the solve failed — which labeled rows conflict.
//
// The package is read-only over its inputs: building an audit never
// mutates the system or the solution, and costs one residual pass over
// the constraints plus sorting, so it is safe to run after every solve
// that asked for one. It deliberately lives outside internal/maxent so
// the solve hot path carries no audit dependency.
package audit

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"

	"privacymaxent/internal/buildinfo"
	"privacymaxent/internal/constraint"
	"privacymaxent/internal/maxent"
)

// Options tunes audit construction.
type Options struct {
	// Top bounds the per-listing row counts (top violated rows, top
	// duals, binding knowledge rules). Default 5.
	Top int
	// Tolerance is the feasibility threshold a residual must exceed to
	// count as a violation. Default 1e-6 (matching the solver's practical
	// accuracy on the paper's workloads, well above its 1e-9 gradient
	// tolerance).
	Tolerance float64
}

func (o Options) withDefaults() Options {
	if o.Top <= 0 {
		o.Top = 5
	}
	if o.Tolerance <= 0 {
		o.Tolerance = 1e-6
	}
	return o
}

// RowResidual is one labeled constraint row with its residual
// (LHS − RHS) at the solution.
type RowResidual struct {
	Label    string  `json:"label"`
	Family   string  `json:"family"`
	Residual float64 `json:"residual"`
}

// DualRow is one labeled constraint row with its Lagrange multiplier —
// its shadow price. For knowledge rows, |Lambda| ranks how strongly the
// rule shifts the posterior away from the invariant-only MaxEnt solution:
// near zero means the rule was already implied, large means it carries
// real adversary power.
type DualRow struct {
	Label  string  `json:"label"`
	Family string  `json:"family"`
	Lambda float64 `json:"lambda"`
}

// FamilySummary aggregates the residuals of one constraint family.
type FamilySummary struct {
	// Family is the constraint.Kind name, e.g. "QI-invariant".
	Family string `json:"family"`
	// Rows counts the family's constraints. Zero-invariants are
	// structural — the variable does not exist in the space — so their
	// row count comes from the space and their residuals are exactly 0.
	Rows int `json:"rows"`
	// MaxAbsResidual and MeanAbsResidual summarize |LHS − RHS|.
	MaxAbsResidual  float64 `json:"max_abs_residual"`
	MeanAbsResidual float64 `json:"mean_abs_residual"`
	// Violations counts rows whose |residual| exceeds the tolerance.
	Violations int `json:"violations"`
}

// TrajectoryPoint is one audit-trajectory entry: the maxent TracePoint
// plus a global 1-based index, whose final value equals
// Stats.Iterations (iterations sum across decomposition components).
type TrajectoryPoint struct {
	Index int `json:"index"`
	maxent.TracePoint
}

// Infeasibility explains a failed or infeasible-looking solve by
// pointing at the most-violated labeled rows.
type Infeasibility struct {
	Reason       string        `json:"reason"`
	MostViolated []RowResidual `json:"most_violated"`
}

// SolveAudit is the full numerical-health record of one solve.
type SolveAudit struct {
	// Converged, Iterations, Evaluations, MaxViolation mirror Stats.
	Converged    bool    `json:"converged"`
	Iterations   int     `json:"iterations"`
	Evaluations  int     `json:"evaluations"`
	MaxViolation float64 `json:"max_violation"`
	// Workers and KernelWorkers record the parallelism the solve used
	// (component fan-out and intra-solve kernel width). They are
	// informational provenance, deliberately NOT compared by
	// scripts/auditdiff: the kernels are bit-deterministic, so a serial
	// and a parallel audit of the same problem must agree on every
	// numerical field above while legitimately differing here — that
	// zero-drift comparison is exactly how kernel parity is certified.
	Workers       int `json:"workers,omitempty"`
	KernelWorkers int `json:"kernel_workers,omitempty"`
	// ReducedDualDim and EliminatedBuckets record the structural
	// presolve's reduction (maxent.Options.Reduce): the dual dimension
	// the numeric core actually solved and the buckets assigned the
	// closed-form posterior. Informational provenance like Workers: a
	// reduced and a full solve of the same problem must agree on every
	// numerical field while legitimately differing here — that zero-drift
	// comparison is exactly how the reduction's parity is certified.
	ReducedDualDim    int `json:"reduced_dual_dim,omitempty"`
	EliminatedBuckets int `json:"eliminated_buckets,omitempty"`
	// Build stamps the binary's build provenance (version+commit, see
	// internal/buildinfo) and RequestID the serving request that asked
	// for the audit (empty for offline runs). Like Workers above, both
	// are informational provenance excluded from auditdiff comparison:
	// the same problem audited by two builds or two requests must agree
	// numerically while legitimately differing here.
	Build     string `json:"build,omitempty"`
	RequestID string `json:"request_id,omitempty"`
	// Scheme names the publication scheme the quantified view was
	// declared under ("mondrian", "randomized_response", …); empty for
	// the classic default. Informational provenance like Build: the same
	// constraint system audited under two scheme declarations must agree
	// numerically, so auditdiff excludes it from comparison.
	Scheme string `json:"scheme,omitempty"`
	// Tolerance is the feasibility threshold the audit judged against.
	Tolerance float64 `json:"tolerance"`
	// Feasible reports MaxViolation <= Tolerance.
	Feasible bool `json:"feasible"`
	// Entropy is H(x) = −Σ x ln x at the solution, in nats; EntropyBits
	// the same in bits — the paper's privacy currency.
	Entropy     float64 `json:"entropy_nats"`
	EntropyBits float64 `json:"entropy_bits"`
	// DualityGap estimates g(λ) − H(x) = λᵀ(Ax − c) = Σ_i λ_i·r_i from
	// the returned duals and the original-system residuals: near zero
	// certifies joint primal–dual optimality. Only meaningful when
	// HasDuals (the scaling algorithms expose no multipliers).
	DualityGap float64 `json:"duality_gap"`
	HasDuals   bool    `json:"has_duals"`
	// Families summarizes residuals per constraint family.
	Families []FamilySummary `json:"families"`
	// TopViolations lists the worst |residual| rows by label.
	TopViolations []RowResidual `json:"top_violations"`
	// TopDuals ranks all surviving rows by |λ|; BindingKnowledge is the
	// same ranking restricted to background-knowledge rows (distribution
	// and individual kinds).
	TopDuals         []DualRow `json:"top_duals,omitempty"`
	BindingKnowledge []DualRow `json:"binding_knowledge,omitempty"`
	// Trajectory is the convergence record (present when the solve ran
	// with CaptureTrace).
	Trajectory []TrajectoryPoint `json:"trajectory,omitempty"`
	// Infeasibility is non-nil when the solve did not converge or the
	// solution violates the tolerance.
	Infeasibility *Infeasibility `json:"infeasibility,omitempty"`
}

// New builds the audit of sol against the system it solved. The system
// must be the same one handed to maxent.Solve — residuals are evaluated
// over the original (pre-presolve, pre-decomposition) rows, so every
// label a user wrote appears under its own name.
func New(sys *constraint.System, sol *maxent.Solution, opts Options) *SolveAudit {
	opts = opts.withDefaults()
	sp := sys.Space()
	a := &SolveAudit{
		Converged:         sol.Stats.Converged,
		Iterations:        sol.Stats.Iterations,
		Evaluations:       sol.Stats.Evaluations,
		MaxViolation:      sol.Stats.MaxViolation,
		Workers:           sol.Stats.Workers,
		KernelWorkers:     sol.Stats.KernelWorkers,
		ReducedDualDim:    sol.Stats.ReducedDualDim,
		EliminatedBuckets: sol.Stats.EliminatedBuckets,
		Build:             buildinfo.Get().String(),
		Tolerance:         opts.Tolerance,
	}

	// Residual pass over every original row, grouped by family.
	type famAgg struct {
		rows       int
		sumAbs     float64
		maxAbs     float64
		violations int
	}
	fams := map[constraint.Kind]*famAgg{}
	residuals := make([]RowResidual, 0, sys.Len())
	residualByLabel := make(map[string]float64, sys.Len())
	for i := 0; i < sys.Len(); i++ {
		c := sys.At(i)
		r := c.Residual(sol.X)
		abs := math.Abs(r)
		f := fams[c.Kind]
		if f == nil {
			f = &famAgg{}
			fams[c.Kind] = f
		}
		f.rows++
		f.sumAbs += abs
		if abs > f.maxAbs {
			f.maxAbs = abs
		}
		if abs > opts.Tolerance {
			f.violations++
		}
		residuals = append(residuals, RowResidual{Label: c.Label, Family: c.Kind.String(), Residual: r})
		residualByLabel[c.Label] = r
	}
	// Zero-invariants are structural: the space has no variable for them,
	// so they hold exactly. Report the family anyway — completeness of
	// the Theorem 1–3 accounting is the point of the breakdown.
	if nz := sp.NumZeroInvariants(); nz > 0 && fams[constraint.ZeroInvariant] == nil {
		fams[constraint.ZeroInvariant] = &famAgg{rows: nz}
	}
	kinds := make([]constraint.Kind, 0, len(fams))
	for k := range fams {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		f := fams[k]
		mean := 0.0
		if f.rows > 0 && f.sumAbs > 0 {
			mean = f.sumAbs / float64(f.rows)
		}
		a.Families = append(a.Families, FamilySummary{
			Family:          k.String(),
			Rows:            f.rows,
			MaxAbsResidual:  f.maxAbs,
			MeanAbsResidual: mean,
			Violations:      f.violations,
		})
	}

	// Top violated rows by |residual|.
	sort.SliceStable(residuals, func(i, j int) bool {
		return math.Abs(residuals[i].Residual) > math.Abs(residuals[j].Residual)
	})
	for _, r := range residuals {
		if len(a.TopViolations) == opts.Top {
			break
		}
		a.TopViolations = append(a.TopViolations, r)
	}

	// Entropy at the solution.
	var h float64
	for _, v := range sol.X {
		if v > 0 {
			h -= v * math.Log(v)
		}
	}
	a.Entropy = h
	a.EntropyBits = h / math.Ln2

	// Dual attribution and the duality-gap estimate. With
	// x_j(λ) = exp(η_j − 1), −x_j ln x_j = x_j − x_j η_j, so
	// g(λ) − H(x) = λᵀ(Ax − c): the gap is computable from the duals and
	// the original residuals matched by label, no reduced system needed.
	// Rows eliminated by presolve carry λ = 0 and drop out.
	if len(sol.Duals) > 0 {
		a.HasDuals = true
		duals := make([]DualRow, 0, len(sol.Duals))
		var gap float64
		for _, d := range sol.Duals {
			duals = append(duals, DualRow{Label: d.Label, Family: d.Kind.String(), Lambda: d.Lambda})
			if r, ok := residualByLabel[d.Label]; ok {
				gap += d.Lambda * r
			}
		}
		a.DualityGap = gap
		sort.SliceStable(duals, func(i, j int) bool {
			return math.Abs(duals[i].Lambda) > math.Abs(duals[j].Lambda)
		})
		for _, d := range duals {
			if len(a.TopDuals) < opts.Top {
				a.TopDuals = append(a.TopDuals, d)
			}
			if (d.Family == constraint.Knowledge.String() || d.Family == constraint.IndividualKnowledge.String()) &&
				len(a.BindingKnowledge) < opts.Top {
				a.BindingKnowledge = append(a.BindingKnowledge, d)
			}
		}
	}

	// Trajectory with a global index whose final value equals
	// Stats.Iterations.
	for i, p := range sol.Trajectory {
		a.Trajectory = append(a.Trajectory, TrajectoryPoint{Index: i + 1, TracePoint: p})
	}

	a.Feasible = a.MaxViolation <= opts.Tolerance
	if !a.Converged || !a.Feasible {
		reason := fmt.Sprintf("max violation %.3e exceeds tolerance %.1e", a.MaxViolation, opts.Tolerance)
		if !a.Converged {
			reason = "solver did not converge"
			if !a.Feasible {
				reason += "; " + fmt.Sprintf("max violation %.3e exceeds tolerance %.1e", a.MaxViolation, opts.Tolerance)
			}
		}
		inf := &Infeasibility{Reason: reason}
		for _, r := range residuals {
			if len(inf.MostViolated) == opts.Top || math.Abs(r.Residual) <= opts.Tolerance {
				break
			}
			inf.MostViolated = append(inf.MostViolated, r)
		}
		a.Infeasibility = inf
	}
	return a
}

// WriteFile writes the audit as indented JSON.
func (a *SolveAudit) WriteFile(path string) error {
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile loads an audit snapshot written by WriteFile; scripts/auditdiff
// compares two of them.
func ReadFile(path string) (*SolveAudit, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	a := &SolveAudit{}
	if err := json.Unmarshal(data, a); err != nil {
		return nil, fmt.Errorf("audit: parsing %s: %w", path, err)
	}
	return a, nil
}
