package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"privacymaxent/internal/bucket"
	"privacymaxent/internal/dataset"
)

func paperData(t *testing.T) (*dataset.Table, *bucket.Bucketized, *dataset.Universe) {
	t.Helper()
	tbl := dataset.PaperExample()
	d, err := bucket.FromPartition(tbl, dataset.PaperBuckets())
	if err != nil {
		t.Fatal(err)
	}
	return tbl, d, d.Universe()
}

func TestEstimationAccuracyZeroForPerfectEstimate(t *testing.T) {
	tbl, _, u := paperData(t)
	truth, err := dataset.TrueConditional(tbl, u)
	if err != nil {
		t.Fatal(err)
	}
	got, err := EstimationAccuracy(truth, truth)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got) > 1e-12 {
		t.Fatalf("KL(truth, truth) = %g, want 0", got)
	}
}

func TestEstimationAccuracyPositiveAndFinite(t *testing.T) {
	tbl, d, u := paperData(t)
	truth, err := dataset.TrueConditional(tbl, u)
	if err != nil {
		t.Fatal(err)
	}
	// A deliberately bad estimate: uniform over SA values.
	est := dataset.NewConditional(u, d.SACardinality())
	for qid := 0; qid < u.Len(); qid++ {
		for s := 0; s < d.SACardinality(); s++ {
			est.Set(qid, s, 1.0/float64(d.SACardinality()))
		}
	}
	got, err := EstimationAccuracy(truth, est)
	if err != nil {
		t.Fatal(err)
	}
	if got <= 0 || math.IsInf(got, 0) || math.IsNaN(got) {
		t.Fatalf("accuracy = %g, want positive finite", got)
	}
	// Against all-zero estimates, the epsilon floor keeps it finite.
	zero := dataset.NewConditional(u, d.SACardinality())
	got, err = EstimationAccuracy(truth, zero)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(got, 0) || math.IsNaN(got) {
		t.Fatalf("accuracy vs zero estimate = %g, want finite", got)
	}
}

func TestEstimationAccuracyMismatchErrors(t *testing.T) {
	tbl, d, u := paperData(t)
	truth, err := dataset.TrueConditional(tbl, u)
	if err != nil {
		t.Fatal(err)
	}
	otherU := dataset.NewUniverse(tbl)
	if _, err := EstimationAccuracy(truth, dataset.NewConditional(otherU, d.SACardinality())); err == nil {
		t.Fatal("expected universe mismatch error")
	}
	if _, err := EstimationAccuracy(truth, dataset.NewConditional(u, 2)); err == nil {
		t.Fatal("expected SA cardinality mismatch error")
	}
}

// Property: KL(p, q) >= 0 for random distributions (Gibbs' inequality).
func TestKLNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(6)
		p := randomDist(r, n)
		q := randomDist(r, n)
		return klRow(p, q) >= -1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func randomDist(r *rand.Rand, n int) []float64 {
	p := make([]float64, n)
	var sum float64
	for i := range p {
		p[i] = r.Float64() + 1e-3
		sum += p[i]
	}
	for i := range p {
		p[i] /= sum
	}
	return p
}

func TestMaxDisclosure(t *testing.T) {
	_, d, u := paperData(t)
	est := dataset.NewConditional(u, d.SACardinality())
	est.Set(0, 1, 0.4)
	est.Set(3, 0, 0.9)
	if got := MaxDisclosure(est); math.Abs(got-0.9) > 1e-12 {
		t.Fatalf("MaxDisclosure = %g, want 0.9", got)
	}
}

func TestPosteriorEntropy(t *testing.T) {
	_, d, u := paperData(t)
	est := dataset.NewConditional(u, d.SACardinality())
	for qid := 0; qid < u.Len(); qid++ {
		est.Set(qid, 0, 0.5)
		est.Set(qid, 1, 0.5)
	}
	// Every row is a fair coin: 1 bit everywhere, weights sum to 1.
	if got := PosteriorEntropy(est); math.Abs(got-1) > 1e-12 {
		t.Fatalf("PosteriorEntropy = %g, want 1", got)
	}
	// Deterministic posterior: zero bits.
	det := dataset.NewConditional(u, d.SACardinality())
	for qid := 0; qid < u.Len(); qid++ {
		det.Set(qid, 2, 1)
	}
	if got := PosteriorEntropy(det); got != 0 {
		t.Fatalf("deterministic entropy = %g, want 0", got)
	}
}

func TestDiversityScores(t *testing.T) {
	_, d, _ := paperData(t)
	// Buckets have 3, 3, 3 distinct SA values.
	if got := DistinctDiversity(d); got != 3 {
		t.Fatalf("DistinctDiversity = %d, want 3", got)
	}
	// Bucket 1 has SA multiset {s1, s2, s2, s3}: H = 1.5 bits, 2^1.5 ≈ 2.83;
	// buckets 2 and 3 are uniform over 3 values: 2^log2(3) = 3.
	want := math.Exp2(1.5)
	if got := EntropyDiversity(d); math.Abs(got-want) > 1e-9 {
		t.Fatalf("EntropyDiversity = %g, want %g", got, want)
	}
}

func TestTCloseness(t *testing.T) {
	_, d, _ := paperData(t)
	got := TCloseness(d)
	if got <= 0 || got > 1 {
		t.Fatalf("TCloseness = %g, want in (0, 1]", got)
	}
	// A single-bucket publication mirrors the overall distribution
	// exactly: t-closeness 0.
	tbl := dataset.PaperExample()
	rows := make([]int, tbl.Len())
	for i := range rows {
		rows[i] = i
	}
	whole, err := bucket.FromPartition(tbl, [][]int{rows})
	if err != nil {
		t.Fatal(err)
	}
	if got := TCloseness(whole); got != 0 {
		t.Fatalf("single-bucket TCloseness = %g, want 0", got)
	}
}

func TestAlphaK(t *testing.T) {
	_, d, _ := paperData(t)
	// Bucket 1 has s2 at 2/4 = 0.5; all buckets hold >= 3 records.
	if err := AlphaK(d, 0.5, 3); err != nil {
		t.Fatalf("expected (0.5, 3)-anonymity to hold: %v", err)
	}
	if err := AlphaK(d, 0.4, 3); err == nil {
		t.Fatal("expected alpha violation at 0.4")
	}
	if err := AlphaK(d, 0.5, 4); err == nil {
		t.Fatal("expected k violation at 4")
	}
	if err := AlphaK(d, 0, 1); err == nil {
		t.Fatal("expected alpha validation error")
	}
	if err := AlphaK(d, 0.5, 0); err == nil {
		t.Fatal("expected k validation error")
	}
}
