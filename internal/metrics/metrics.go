// Package metrics implements the privacy and accuracy measures of the
// paper's evaluation (Sec. 7): the Estimation Accuracy (a weighted
// Kullback–Leibler distance between the true conditional P(S|Q) and the
// MaxEnt estimate P*(S|Q)), plus the classic bucket-level privacy scores —
// distinct/entropy L-diversity and maximum posterior disclosure — that the
// estimated posterior feeds.
package metrics

import (
	"fmt"
	"math"

	"privacymaxent/internal/bucket"
	"privacymaxent/internal/dataset"
)

// EstimationEps floors the estimated probability inside the KL logarithm
// so that a (near-)zero estimate against non-zero truth yields a large
// but bounded penalty (≈ 30 bits per unit of true mass) instead of +Inf,
// keeping the weighted sum stable when the solver parks probabilities at
// the numerical boundary.
const EstimationEps = 1e-9

// EstimationAccuracy computes the paper's Sec. 7.1 measure
//
//	Σ_{q} P(q) · Σ_{s} P(s|q) · log( P(s|q) / P*(s|q) )
//
// — the KL distance between truth and estimate per QI tuple, weighted by
// the tuple's sample probability. Lower is better (0 means the adversary's
// MaxEnt estimate equals the true conditional; the paper reads larger
// values as more privacy). Logarithms are base 2.
//
// Both conditionals must be indexed by the same universe.
func EstimationAccuracy(truth, estimate *dataset.Conditional) (float64, error) {
	if truth.Universe() != estimate.Universe() {
		return 0, fmt.Errorf("metrics: truth and estimate use different universes")
	}
	if truth.NumSA() != estimate.NumSA() {
		return 0, fmt.Errorf("metrics: SA cardinality mismatch: %d vs %d", truth.NumSA(), estimate.NumSA())
	}
	u := truth.Universe()
	var total float64
	for qid := 0; qid < u.Len(); qid++ {
		total += u.P(qid) * klRow(truth.Row(qid), estimate.Row(qid))
	}
	return total, nil
}

// klRow is Σ_s p_s log2(p_s/q_s) with the zero conventions: p=0 terms
// vanish; q is floored at EstimationEps.
func klRow(p, q []float64) float64 {
	var kl float64
	for s, ps := range p {
		if ps <= 0 {
			continue
		}
		qs := q[s]
		if qs < EstimationEps {
			qs = EstimationEps
		}
		kl += ps * math.Log2(ps/qs)
	}
	return kl
}

// MaxDisclosure returns max_{q,s} P*(s|q): the adversary's best single
// guess confidence anywhere in the table. 1 means some individual's
// sensitive value is fully disclosed.
func MaxDisclosure(estimate *dataset.Conditional) float64 {
	var worst float64
	u := estimate.Universe()
	for qid := 0; qid < u.Len(); qid++ {
		for _, p := range estimate.Row(qid) {
			if p > worst {
				worst = p
			}
		}
	}
	return worst
}

// PosteriorEntropy returns Σ_q P(q) H(S|Q=q) in bits under the estimate:
// the adversary's average residual uncertainty about a sensitive value.
func PosteriorEntropy(estimate *dataset.Conditional) float64 {
	u := estimate.Universe()
	var h float64
	for qid := 0; qid < u.Len(); qid++ {
		var hq float64
		for _, p := range estimate.Row(qid) {
			if p > 0 {
				hq -= p * math.Log2(p)
			}
		}
		h += u.P(qid) * hq
	}
	return h
}

// DistinctDiversity returns the smallest number of distinct SA values in
// any bucket — the distinct-L-diversity level of the published data.
func DistinctDiversity(d *bucket.Bucketized) int {
	best := math.MaxInt
	for b := 0; b < d.NumBuckets(); b++ {
		if n := len(d.Bucket(b).DistinctSAs()); n < best {
			best = n
		}
	}
	if best == math.MaxInt {
		return 0
	}
	return best
}

// EntropyDiversity returns min_b 2^{H(S in bucket b)}: the entropy
// L-diversity level (Machanavajjhala et al.), using the SA multiset's
// empirical distribution per bucket.
func EntropyDiversity(d *bucket.Bucketized) float64 {
	best := math.Inf(1)
	for b := 0; b < d.NumBuckets(); b++ {
		bk := d.Bucket(b)
		var h float64
		for s := 0; s < d.SACardinality(); s++ {
			n := bk.SACount(s)
			if n == 0 {
				continue
			}
			p := float64(n) / float64(bk.Size())
			h -= p * math.Log2(p)
		}
		if l := math.Exp2(h); l < best {
			best = l
		}
	}
	if math.IsInf(best, 1) {
		return 0
	}
	return best
}

// TCloseness returns the t-closeness level of the publication (Li et
// al.): the largest earth-mover distance between a bucket's SA
// distribution and the table-wide SA distribution. For categorical SA
// with the equal-distance ground metric, EMD reduces to total variation,
// ½ Σ_s |P_b(s) − P(s)|. Smaller is better; 0 means every bucket mirrors
// the global distribution exactly.
func TCloseness(d *bucket.Bucketized) float64 {
	m := d.SACardinality()
	overall := make([]float64, m)
	for b := 0; b < d.NumBuckets(); b++ {
		bk := d.Bucket(b)
		for s := 0; s < m; s++ {
			overall[s] += float64(bk.SACount(s))
		}
	}
	n := float64(d.N())
	for s := range overall {
		overall[s] /= n
	}
	var worst float64
	for b := 0; b < d.NumBuckets(); b++ {
		bk := d.Bucket(b)
		size := float64(bk.Size())
		var tv float64
		for s := 0; s < m; s++ {
			tv += math.Abs(float64(bk.SACount(s))/size - overall[s])
		}
		tv /= 2
		if tv > worst {
			worst = tv
		}
	}
	return worst
}

// AlphaK checks (α, k)-anonymity (Wong et al., cited by the paper's
// related work): every bucket must hold at least k records and no single
// SA value may exceed an α fraction of any bucket. It returns the first
// violation, or nil when the publication satisfies the model.
func AlphaK(d *bucket.Bucketized, alpha float64, k int) error {
	if alpha <= 0 || alpha > 1 {
		return fmt.Errorf("metrics: alpha %g outside (0, 1]", alpha)
	}
	if k < 1 {
		return fmt.Errorf("metrics: k %d below 1", k)
	}
	for b := 0; b < d.NumBuckets(); b++ {
		bk := d.Bucket(b)
		if bk.Size() < k {
			return fmt.Errorf("metrics: bucket %d has %d records, want >= %d", b, bk.Size(), k)
		}
		for s := 0; s < d.SACardinality(); s++ {
			frac := float64(bk.SACount(s)) / float64(bk.Size())
			if frac > alpha+1e-12 {
				return fmt.Errorf("metrics: bucket %d has SA value %q at fraction %.3f > alpha %.3f",
					b, d.Schema().SA().Value(s), frac, alpha)
			}
		}
	}
	return nil
}
