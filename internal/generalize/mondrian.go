// Package generalize implements the generalization disguising method the
// paper's future work (Sec. 8) targets: Mondrian-style multidimensional
// k-anonymity (LeFevre et al., cited as [14]). Records are recursively
// partitioned into equivalence classes of at least k records; within a
// class every QI tuple is coarsened to the class signature, so — exactly
// as in bucketization — the adversary cannot tell which class member owns
// which sensitive value.
//
// That observation is the bridge into Privacy-MaxEnt: a partition-based
// generalization of categorical microdata induces the same ambiguity
// structure as a bucketization whose buckets are the equivalence classes.
// Publish therefore returns a bucket.Bucketized view of the classes, and
// the entire constraint/MaxEnt machinery — invariants, background
// knowledge, Top-(K+, K−) bounds — applies unchanged.
package generalize

import (
	"fmt"
	"sort"
	"strings"

	"privacymaxent/internal/bucket"
	"privacymaxent/internal/dataset"
)

// Class describes one equivalence class of the generalization: the rows
// it contains and, per QI attribute, the set of original codes it covers
// (the published, coarsened signature).
type Class struct {
	Rows   []int
	Covers [][]int // indexed by position in Schema.QIIndices
}

// Signature renders the class's generalized QI tuple, e.g.
// "Sex∈{male,female}, Age∈{35-49}".
func (c *Class) Signature(schema *dataset.Schema) string {
	qi := schema.QIIndices()
	parts := make([]string, len(qi))
	for i, attrPos := range qi {
		attr := schema.Attr(attrPos)
		vals := make([]string, len(c.Covers[i]))
		for j, code := range c.Covers[i] {
			vals[j] = attr.Value(code)
		}
		parts[i] = fmt.Sprintf("%s∈{%s}", attr.Name, strings.Join(vals, ","))
	}
	return strings.Join(parts, ", ")
}

// Mondrian partitions the table's records into equivalence classes of at
// least k records using greedy multidimensional recursion: each class is
// split on the QI attribute with the most distinct values in it, at the
// value-frequency median, as long as both halves keep k records. The
// partition is deterministic.
func Mondrian(t *dataset.Table, k int) ([]Class, error) {
	if k < 1 {
		return nil, fmt.Errorf("generalize: k must be >= 1, got %d", k)
	}
	if t.Len() < k {
		return nil, fmt.Errorf("generalize: table has %d rows, need at least k=%d", t.Len(), k)
	}
	qi := t.Schema().QIIndices()
	if len(qi) == 0 {
		return nil, fmt.Errorf("generalize: table has no quasi-identifier attributes")
	}

	all := make([]int, t.Len())
	for i := range all {
		all[i] = i
	}
	var classes []Class
	var recurse func(rows []int)
	recurse = func(rows []int) {
		if left, right, ok := bestSplit(t, qi, rows, k); ok {
			recurse(left)
			recurse(right)
			return
		}
		classes = append(classes, makeClass(t, qi, rows))
	}
	recurse(all)
	return classes, nil
}

// bestSplit tries to cut rows on the QI attribute with the widest spread
// of values; ok is false when no attribute admits a cut leaving >= k rows
// on both sides.
func bestSplit(t *dataset.Table, qi []int, rows []int, k int) (left, right []int, ok bool) {
	if len(rows) < 2*k {
		return nil, nil, false
	}
	// Try attributes in order of preference (widest spread first) until
	// one yields a valid cut.
	type cand struct{ attr, distinct int }
	var cands []cand
	for _, attrPos := range qi {
		seen := map[int]bool{}
		for _, r := range rows {
			seen[t.Row(r)[attrPos]] = true
		}
		if len(seen) > 1 {
			cands = append(cands, cand{attr: attrPos, distinct: len(seen)})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].distinct != cands[j].distinct {
			return cands[i].distinct > cands[j].distinct
		}
		return cands[i].attr < cands[j].attr
	})
	for _, c := range cands {
		if l, r, valid := medianCut(t, c.attr, rows, k); valid {
			return l, r, true
		}
	}
	return nil, nil, false
}

// medianCut orders the class's rows by their code on attr and cuts at the
// frequency median, keeping equal codes on one side (categorical Mondrian
// with deterministic code order).
func medianCut(t *dataset.Table, attr int, rows []int, k int) (left, right []int, ok bool) {
	sorted := append([]int(nil), rows...)
	sort.Slice(sorted, func(i, j int) bool {
		ci, cj := t.Row(sorted[i])[attr], t.Row(sorted[j])[attr]
		if ci != cj {
			return ci < cj
		}
		return sorted[i] < sorted[j]
	})
	// Candidate cut positions are the boundaries between distinct codes;
	// choose the one closest to the middle that leaves k on both sides.
	bestPos, bestDist := -1, len(sorted)+1
	for pos := 1; pos < len(sorted); pos++ {
		if t.Row(sorted[pos-1])[attr] == t.Row(sorted[pos])[attr] {
			continue
		}
		if pos < k || len(sorted)-pos < k {
			continue
		}
		dist := pos - len(sorted)/2
		if dist < 0 {
			dist = -dist
		}
		if dist < bestDist {
			bestDist = dist
			bestPos = pos
		}
	}
	if bestPos < 0 {
		return nil, nil, false
	}
	return sorted[:bestPos], sorted[bestPos:], true
}

// makeClass summarizes the rows' QI coverage.
func makeClass(t *dataset.Table, qi []int, rows []int) Class {
	covers := make([][]int, len(qi))
	for i, attrPos := range qi {
		seen := map[int]bool{}
		for _, r := range rows {
			seen[t.Row(r)[attrPos]] = true
		}
		codes := make([]int, 0, len(seen))
		for c := range seen {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		covers[i] = codes
	}
	return Class{Rows: append([]int(nil), rows...), Covers: covers}
}

// CheckKAnonymity verifies every class holds at least k records.
func CheckKAnonymity(classes []Class, k int) error {
	for i, c := range classes {
		if len(c.Rows) < k {
			return fmt.Errorf("generalize: class %d has %d records, want >= %d", i, len(c.Rows), k)
		}
	}
	return nil
}

// Publish generalizes the table to k-anonymity with Mondrian and returns
// the equivalence classes together with their bucketized view, ready for
// the Privacy-MaxEnt pipeline. The induced buckets are the classes.
func Publish(t *dataset.Table, k int) (*bucket.Bucketized, []Class, error) {
	classes, err := Mondrian(t, k)
	if err != nil {
		return nil, nil, err
	}
	groups := make([][]int, len(classes))
	for i := range classes {
		groups[i] = classes[i].Rows
	}
	d, err := bucket.FromPartition(t, groups)
	if err != nil {
		return nil, nil, err
	}
	return d, classes, nil
}

// Precision is the LeFevre-style utility measure of a generalization: the
// average, over records and QI attributes, of 1 − (covered−1)/(domain−1)
// — 1 when nothing is generalized, 0 when every attribute is fully
// suppressed. Single-valued domains count as precision 1.
func Precision(t *dataset.Table, classes []Class) float64 {
	qi := t.Schema().QIIndices()
	if len(qi) == 0 || t.Len() == 0 {
		return 1
	}
	var total float64
	var count int
	for _, c := range classes {
		for i, attrPos := range qi {
			card := t.Schema().Attr(attrPos).Cardinality()
			var p float64 = 1
			if card > 1 {
				p = 1 - float64(len(c.Covers[i])-1)/float64(card-1)
			}
			total += p * float64(len(c.Rows))
			count += len(c.Rows)
		}
	}
	return total / float64(count)
}
