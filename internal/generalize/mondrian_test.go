package generalize

import (
	"math/rand"
	"strings"
	"testing"

	"privacymaxent/internal/dataset"
)

func testTable(rng *rand.Rand, rows int) *dataset.Table {
	sex := dataset.NewAttribute("Sex", dataset.QuasiIdentifier, []string{"m", "f"})
	age := dataset.NewAttribute("Age", dataset.QuasiIdentifier, []string{"20", "30", "40", "50", "60"})
	zip := dataset.NewAttribute("Zip", dataset.QuasiIdentifier, []string{"a", "b", "c"})
	diag := dataset.NewAttribute("D", dataset.Sensitive, []string{"d0", "d1", "d2", "d3"})
	t := dataset.NewTable(dataset.MustSchema(sex, age, zip, diag))
	for i := 0; i < rows; i++ {
		if err := t.AppendCoded([]int{rng.Intn(2), rng.Intn(5), rng.Intn(3), rng.Intn(4)}); err != nil {
			panic(err)
		}
	}
	return t
}

func TestMondrianKAnonymity(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		tbl := testTable(rng, 20+rng.Intn(200))
		k := 2 + rng.Intn(5)
		classes, err := Mondrian(tbl, k)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := CheckKAnonymity(classes, k); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Classes partition the rows.
		seen := make([]bool, tbl.Len())
		for _, c := range classes {
			for _, r := range c.Rows {
				if seen[r] {
					t.Fatalf("trial %d: row %d in two classes", trial, r)
				}
				seen[r] = true
			}
		}
		for r, ok := range seen {
			if !ok {
				t.Fatalf("trial %d: row %d unassigned", trial, r)
			}
		}
		// Covers really cover: every row's codes are inside its class's
		// cover sets.
		qi := tbl.Schema().QIIndices()
		for _, c := range classes {
			for _, r := range c.Rows {
				for i, attrPos := range qi {
					code := tbl.Row(r)[attrPos]
					found := false
					for _, covered := range c.Covers[i] {
						if covered == code {
							found = true
							break
						}
					}
					if !found {
						t.Fatalf("trial %d: row %d code %d not covered", trial, r, code)
					}
				}
			}
		}
	}
}

func TestMondrianSplitsWhenPossible(t *testing.T) {
	// 20 rows over 2 distinct QI tuples, k = 5: Mondrian must split into
	// at least 2 classes rather than lumping everything together.
	sex := dataset.NewAttribute("Sex", dataset.QuasiIdentifier, []string{"m", "f"})
	diag := dataset.NewAttribute("D", dataset.Sensitive, []string{"d0", "d1"})
	tbl := dataset.NewTable(dataset.MustSchema(sex, diag))
	for i := 0; i < 20; i++ {
		tbl.MustAppend([]string{"m", "f"}[i%2], []string{"d0", "d1"}[i%2])
	}
	classes, err := Mondrian(tbl, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(classes) < 2 {
		t.Fatalf("classes = %d, want >= 2", len(classes))
	}
	// Each class should be pure in Sex (the split separates m from f).
	for _, c := range classes {
		if len(c.Covers[0]) != 1 {
			t.Fatalf("class covers %d sexes, want 1", len(c.Covers[0]))
		}
	}
}

func TestMondrianValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tbl := testTable(rng, 10)
	if _, err := Mondrian(tbl, 0); err == nil {
		t.Fatal("expected k >= 1 error")
	}
	if _, err := Mondrian(tbl, 11); err == nil {
		t.Fatal("expected too-few-rows error")
	}
	noQI := dataset.NewTable(dataset.MustSchema(
		dataset.NewAttribute("D", dataset.Sensitive, []string{"x"}),
	))
	noQI.MustAppend("x")
	if _, err := Mondrian(noQI, 1); err == nil {
		t.Fatal("expected no-QI error")
	}
}

func TestClassSignature(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tbl := testTable(rng, 30)
	classes, err := Mondrian(tbl, 3)
	if err != nil {
		t.Fatal(err)
	}
	sig := classes[0].Signature(tbl.Schema())
	for _, want := range []string{"Sex∈{", "Age∈{", "Zip∈{"} {
		if !strings.Contains(sig, want) {
			t.Fatalf("signature %q missing %q", sig, want)
		}
	}
}

func TestPrecision(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tbl := testTable(rng, 100)
	// One class per row-group of identical tuples would have precision 1;
	// a single class covering everything has low precision. Compare k=2
	// (fine) vs k=50 (coarse).
	fine, err := Mondrian(tbl, 2)
	if err != nil {
		t.Fatal(err)
	}
	coarse, err := Mondrian(tbl, 50)
	if err != nil {
		t.Fatal(err)
	}
	pf, pc := Precision(tbl, fine), Precision(tbl, coarse)
	if pf <= pc {
		t.Fatalf("precision fine=%g should exceed coarse=%g", pf, pc)
	}
	if pf <= 0 || pf > 1 || pc < 0 {
		t.Fatalf("precision out of range: %g, %g", pf, pc)
	}
	// Single class covering the whole table.
	whole := []Class{makeClass(tbl, tbl.Schema().QIIndices(), allRows(tbl.Len()))}
	if p := Precision(tbl, whole); p > 0.1 {
		t.Fatalf("whole-table class precision = %g, want near 0", p)
	}
}

func allRows(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// TestGeneralizationVsBucketizationUtility documents the Anatomy paper's
// point quantitatively: at the same privacy parameter, bucketization
// preserves exact QI values (precision 1 by definition) while Mondrian
// coarsens them. We just verify Mondrian's precision is strictly below 1
// once classes must merge distinct tuples.
func TestGeneralizationVsBucketizationUtility(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	tbl := testTable(rng, 60)
	classes, err := Mondrian(tbl, 6)
	if err != nil {
		t.Fatal(err)
	}
	if p := Precision(tbl, classes); p >= 1 {
		t.Fatalf("precision = %g, expected information loss", p)
	}
}
