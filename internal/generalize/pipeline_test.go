// External test package: these tests drive a Mondrian publication
// through internal/core, which (via internal/scheme) imports this
// package — an internal test file would be an import cycle.
package generalize_test

import (
	"math/rand"
	"testing"

	"privacymaxent/internal/constraint"
	"privacymaxent/internal/core"
	"privacymaxent/internal/dataset"
	"privacymaxent/internal/generalize"
	"privacymaxent/internal/maxent"
)

func pipelineTable(rng *rand.Rand, rows int) *dataset.Table {
	sex := dataset.NewAttribute("Sex", dataset.QuasiIdentifier, []string{"m", "f"})
	age := dataset.NewAttribute("Age", dataset.QuasiIdentifier, []string{"20", "30", "40", "50", "60"})
	zip := dataset.NewAttribute("Zip", dataset.QuasiIdentifier, []string{"a", "b", "c"})
	diag := dataset.NewAttribute("D", dataset.Sensitive, []string{"d0", "d1", "d2", "d3"})
	t := dataset.NewTable(dataset.MustSchema(sex, age, zip, diag))
	for i := 0; i < rows; i++ {
		if err := t.AppendCoded([]int{rng.Intn(2), rng.Intn(5), rng.Intn(3), rng.Intn(4)}); err != nil {
			panic(err)
		}
	}
	return t
}

func TestPublishFeedsMaxEnt(t *testing.T) {
	// The headline property: a Mondrian generalization drops straight
	// into the Privacy-MaxEnt pipeline via its class-induced buckets.
	rng := rand.New(rand.NewSource(77))
	tbl := pipelineTable(rng, 120)
	d, classes, err := generalize.Publish(tbl, 4)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumBuckets() != len(classes) {
		t.Fatalf("buckets = %d, classes = %d", d.NumBuckets(), len(classes))
	}
	sp := constraint.NewSpace(d)
	sys := constraint.DataInvariants(sp, constraint.InvariantOptions{DropRedundant: true})
	sol, err := maxent.Solve(sys, maxent.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Stats.MaxViolation > 1e-7 {
		t.Fatalf("violation %g", sol.Stats.MaxViolation)
	}
	// And through the full Quantifier with mined knowledge.
	q := core.New(core.Config{MinSupport: 2})
	rules, err := q.MineRules(tbl)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := dataset.TrueConditional(tbl, d.Universe())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := q.QuantifyWithRules(d, rules, core.Bound{KPos: 5, KNeg: 5}, truth)
	if err != nil {
		t.Fatal(err)
	}
	if rep.EstimationAccuracy < 0 {
		t.Fatalf("accuracy = %g", rep.EstimationAccuracy)
	}
}
