package core

import (
	"context"
	"math"
	"testing"

	"privacymaxent/internal/adult"
	"privacymaxent/internal/assoc"
	"privacymaxent/internal/constraint"
	"privacymaxent/internal/dataset"
)

// TestQuantifyDeltaChain checks the incremental quantification path end
// to end: a cold QuantifyDelta seeds a DeltaState, adding one rule to
// the knowledge set re-solves only the components that rule touches,
// and the delta posterior matches an independent cold solve of the new
// knowledge set.
func TestQuantifyDeltaChain(t *testing.T) {
	tbl := adult.Generate(adult.Config{Records: 400, Seed: 9})
	q := New(Config{RuleSizes: []int{1}, MinSupport: 1})
	d, _, err := q.Bucketize(tbl)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := dataset.TrueConditional(tbl, d.Universe())
	if err != nil {
		t.Fatal(err)
	}
	rules, err := q.MineRules(tbl)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	p, err := q.Prepare(ctx, d)
	if err != nil {
		t.Fatal(err)
	}
	know := func(kpos, kneg int) []constraint.DistributionKnowledge {
		sel := assoc.TopK(rules, kpos, kneg)
		out := make([]constraint.DistributionKnowledge, len(sel))
		for i := range sel {
			out[i] = sel[i].Knowledge()
		}
		return out
	}
	k1 := know(3, 3)
	k2 := know(4, 3) // one extra positive rule on top of k1

	rep1, st1, err := p.QuantifyDelta(ctx, QuantifyOptions{Knowledge: k1, Truth: truth}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Solution.Stats.ReusedComponents != 0 || rep1.Solution.Stats.DirtyComponents != 0 {
		t.Fatalf("cold delta counted reuse: %d/%d",
			rep1.Solution.Stats.ReusedComponents, rep1.Solution.Stats.DirtyComponents)
	}
	if st1 == nil {
		t.Fatal("converged cold solve returned no delta state")
	}

	rep2, st2, err := p.QuantifyDelta(ctx, QuantifyOptions{Knowledge: k2, Truth: truth}, st1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Solution.Stats.Converged {
		t.Fatal("delta solve did not converge")
	}
	if st2 == nil {
		t.Fatal("converged delta solve returned no next state")
	}
	if rep2.Solution.Stats.ReusedComponents == 0 {
		t.Fatal("adding one rule reused no components")
	}

	cold, err := p.QuantifyContext(ctx, k2, truth)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cold.Solution.X {
		if diff := math.Abs(rep2.Solution.X[i] - cold.Solution.X[i]); diff > 1e-6 {
			t.Fatalf("delta posterior deviates from cold at %d by %g", i, diff)
		}
	}
	if diff := math.Abs(rep2.EstimationAccuracy - cold.EstimationAccuracy); diff > 1e-6 {
		t.Fatalf("delta accuracy deviates from cold by %g", diff)
	}

	// Chaining a third variant off the second state stays consistent too.
	k3 := know(4, 4)
	rep3, _, err := p.QuantifyDelta(ctx, QuantifyOptions{Knowledge: k3, Truth: truth}, st2)
	if err != nil {
		t.Fatal(err)
	}
	cold3, err := p.QuantifyContext(ctx, k3, truth)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cold3.Solution.X {
		if diff := math.Abs(rep3.Solution.X[i] - cold3.Solution.X[i]); diff > 1e-6 {
			t.Fatalf("chained delta posterior deviates at %d by %g", i, diff)
		}
	}
}
