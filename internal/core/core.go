// Package core assembles the Privacy-MaxEnt pipeline — the paper's
// contribution — from its substrates: bucketize the microdata (Anatomy,
// L-diversity), mine the Top-(K+, K−) strongest association rules as the
// bound on adversary background knowledge, formulate the published data's
// invariants and the knowledge as linear ME constraints, solve for the
// maximum-entropy joint P(Q,S,B), and report the adversary posterior
// P(S|Q) together with privacy scores.
//
// The outcome of privacy quantification is deliberately a pair (bound,
// scores), per Sec. 4.3: users judge whether the assumed knowledge bound
// is acceptable and read the scores under that assumption.
package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"privacymaxent/internal/assoc"
	"privacymaxent/internal/audit"
	"privacymaxent/internal/bucket"
	"privacymaxent/internal/constraint"
	"privacymaxent/internal/dataset"
	"privacymaxent/internal/errs"
	"privacymaxent/internal/individuals"
	"privacymaxent/internal/maxent"
	"privacymaxent/internal/metrics"
	"privacymaxent/internal/scheme"
	"privacymaxent/internal/telemetry"
)

// Config tunes the pipeline. The zero value reproduces the paper's
// evaluation setup (5-diversity buckets of five with the most frequent SA
// value exempted, minimum rule support 3, LBFGS with decomposition).
type Config struct {
	// Diversity is the L parameter and bucket size. Default 5.
	Diversity int
	// NoExemption disables the footnote-3 relaxation (by default the most
	// frequent SA value is exempt from the diversity check).
	NoExemption bool
	// MinSupport is the association-rule support threshold. Default 3.
	MinSupport int
	// RuleSizes restricts mined rules to given QI-subset sizes T
	// (Figure 6). Empty mines every size.
	RuleSizes []int
	// Solve configures the MaxEnt solver. Decomposition (Sec. 5.5) is on
	// unless NoDecompose is set.
	Solve maxent.Options
	// NoDecompose turns off the irrelevant-bucket optimization.
	NoDecompose bool
	// KeepRedundant keeps the one redundant invariant per bucket that
	// Theorem 3 identifies (useful for ablations; default drops it).
	KeepRedundant bool
	// Audit, when non-nil, builds a numerical-health audit of every
	// equality solve into Report.Audit and turns on convergence-trajectory
	// capture (maxent.Options.CaptureTrace). Inequality solves
	// (QuantifyVague) are not audited: their residuals are judged against
	// the augmented two-sided system, not the user's labeled rows.
	Audit *audit.Options
}

func (c Config) withDefaults() Config {
	if c.Diversity <= 0 {
		c.Diversity = 5
	}
	if c.MinSupport <= 0 {
		c.MinSupport = 3
	}
	return c
}

// Bound records the background-knowledge assumption a report was computed
// under: the Top-(K+, K−) association-rule budget (Sec. 4.4).
type Bound struct {
	KPos, KNeg int
}

// Report is the outcome of a quantification run: the knowledge bound, the
// adversary's MaxEnt posterior, and the privacy scores derived from it.
type Report struct {
	// Bound is the knowledge assumption used.
	Bound Bound
	// Knowledge lists the ME knowledge statements that were applied.
	Knowledge []constraint.DistributionKnowledge
	// Posterior is the estimated P*(S|Q).
	Posterior *dataset.Conditional
	// Solution carries the joint P(Q,S,B) and solver statistics.
	Solution *maxent.Solution
	// MaxDisclosure is max P*(s|q) — worst-case linking confidence.
	MaxDisclosure float64
	// PosteriorEntropy is the adversary's average residual uncertainty
	// (bits).
	PosteriorEntropy float64
	// EstimationAccuracy is the paper's weighted KL distance between the
	// true P(S|Q) and the posterior; it is negative-one when no ground
	// truth was supplied.
	EstimationAccuracy float64
	// Timings is the per-stage wall-clock breakdown of the run that
	// produced this report (stages present depend on the entry point:
	// Run covers bucketize/mine/truth, Quantify starts at formulate).
	Timings Timings
	// Audit is the numerical-health record of the solve; nil unless
	// Config.Audit was set (and always nil for inequality solves).
	Audit *audit.SolveAudit
}

// Quantifier runs Privacy-MaxEnt quantifications under one configuration.
type Quantifier struct {
	cfg Config
}

// New creates a Quantifier; see Config for defaults.
func New(cfg Config) *Quantifier {
	return &Quantifier{cfg: cfg.withDefaults()}
}

// Config reports the effective (defaulted) configuration.
func (q *Quantifier) Config() Config { return q.cfg }

// Bucketize publishes the table with the configured Anatomy bucketizer
// and returns the published view plus the row partition (the partition is
// the ground-truth assignment and must not be published).
func (q *Quantifier) Bucketize(t *dataset.Table) (*bucket.Bucketized, [][]int, error) {
	return q.BucketizeContext(context.Background(), t)
}

// BucketizeContext is Bucketize with telemetry: a "core.bucketize" span
// and bucketization metrics from the context.
func (q *Quantifier) BucketizeContext(ctx context.Context, t *dataset.Table) (*bucket.Bucketized, [][]int, error) {
	_, span := telemetry.Start(ctx, "core.bucketize",
		telemetry.Int("records", t.Len()),
		telemetry.Int("diversity", q.cfg.Diversity))
	defer span.End()
	start := time.Now()
	d, part, err := bucket.Anatomize(t, bucket.Options{
		L:                  q.cfg.Diversity,
		ExemptMostFrequent: !q.cfg.NoExemption,
	})
	if err != nil {
		return nil, nil, err
	}
	span.SetAttr(telemetry.Int("buckets", d.NumBuckets()))
	if reg := telemetry.Metrics(ctx); reg != nil {
		reg.Counter("pmaxent_bucketize_total").Add(1)
		reg.Histogram("pmaxent_bucketize_duration_seconds", telemetry.DurationBuckets).
			Observe(time.Since(start).Seconds())
		reg.Histogram("pmaxent_bucketize_buckets", telemetry.CountBuckets).
			Observe(float64(d.NumBuckets()))
	}
	return d, part, nil
}

// MineRules mines all association rules from the original data, sorted
// strongest-first, ready for Top-(K+, K−) selection.
func (q *Quantifier) MineRules(t *dataset.Table) ([]assoc.Rule, error) {
	return q.MineRulesContext(context.Background(), t)
}

// MineRulesContext is MineRules with telemetry: a "core.mine_rules" span
// and mining metrics from the context.
func (q *Quantifier) MineRulesContext(ctx context.Context, t *dataset.Table) ([]assoc.Rule, error) {
	_, span := telemetry.Start(ctx, "core.mine_rules",
		telemetry.Int("records", t.Len()),
		telemetry.Int("min_support", q.cfg.MinSupport))
	defer span.End()
	start := time.Now()
	rules, err := assoc.Mine(t, assoc.Options{MinSupport: q.cfg.MinSupport, Sizes: q.cfg.RuleSizes})
	if err != nil {
		return nil, err
	}
	span.SetAttr(telemetry.Int("rules", len(rules)))
	if reg := telemetry.Metrics(ctx); reg != nil {
		reg.Counter("pmaxent_mine_total").Add(1)
		reg.Histogram("pmaxent_mine_duration_seconds", telemetry.DurationBuckets).
			Observe(time.Since(start).Seconds())
		reg.Histogram("pmaxent_mine_rules", telemetry.CountBuckets).
			Observe(float64(len(rules)))
	}
	return rules, nil
}

// formulate builds the constraint system (data invariants + knowledge)
// under a "core.formulate" span, recording the stage timing into tm.
func (q *Quantifier) formulate(ctx context.Context, d *bucket.Bucketized, knowledge []constraint.DistributionKnowledge, tm *Timings) (*constraint.System, error) {
	_, span := telemetry.Start(ctx, "core.formulate",
		telemetry.Int("knowledge", len(knowledge)))
	defer span.End()
	start := time.Now()
	sp := constraint.NewSpace(d)
	sys := constraint.DataInvariants(sp, constraint.InvariantOptions{DropRedundant: !q.cfg.KeepRedundant})
	if err := constraint.AddKnowledge(sys, knowledge...); err != nil {
		return nil, fmt.Errorf("core: adding knowledge: %w", err)
	}
	span.SetAttr(telemetry.Int("variables", sp.Len()))
	span.SetAttr(telemetry.Int("constraints", sys.Len()))
	tm.Add(StageFormulate, time.Since(start))
	if reg := telemetry.Metrics(ctx); reg != nil {
		reg.Histogram("pmaxent_formulate_constraints", telemetry.CountBuckets).
			Observe(float64(sys.Len()))
	}
	return sys, nil
}

// score derives the posterior and privacy scores from a solution under a
// "core.score" span, recording the stage timing into tm.
func (q *Quantifier) score(ctx context.Context, sol *maxent.Solution, knowledge []constraint.DistributionKnowledge, truth *dataset.Conditional, tm *Timings) (*Report, error) {
	_, span := telemetry.Start(ctx, "core.score")
	defer span.End()
	start := time.Now()
	post := sol.Posterior()
	rep := &Report{
		Knowledge:          knowledge,
		Posterior:          post,
		Solution:           sol,
		MaxDisclosure:      metrics.MaxDisclosure(post),
		PosteriorEntropy:   metrics.PosteriorEntropy(post),
		EstimationAccuracy: -1,
	}
	if truth != nil {
		acc, err := metrics.EstimationAccuracy(truth, post)
		if err != nil {
			return nil, fmt.Errorf("core: estimation accuracy: %w", err)
		}
		rep.EstimationAccuracy = acc
	}
	span.SetAttr(telemetry.Float("max_disclosure", rep.MaxDisclosure))
	tm.Add(StageScore, time.Since(start))
	return rep, nil
}

// Quantify estimates the adversary posterior for published data under the
// given knowledge statements and scores it. truth may be nil; when
// supplied (computed from the original data) the report includes the
// paper's Estimation Accuracy.
func (q *Quantifier) Quantify(d *bucket.Bucketized, knowledge []constraint.DistributionKnowledge, truth *dataset.Conditional) (*Report, error) {
	return q.QuantifyContext(context.Background(), d, knowledge, truth)
}

// QuantifyContext is Quantify with telemetry: a "core.quantify" span
// wrapping formulate/solve/score child spans, pipeline metrics, and a
// per-stage timing breakdown in Report.Timings.
func (q *Quantifier) QuantifyContext(ctx context.Context, d *bucket.Bucketized, knowledge []constraint.DistributionKnowledge, truth *dataset.Conditional) (*Report, error) {
	ctx, span := telemetry.Start(ctx, "core.quantify",
		telemetry.Int("knowledge", len(knowledge)))
	defer span.End()
	var tm Timings
	sys, err := q.formulate(ctx, d, knowledge, &tm)
	if err != nil {
		return nil, err
	}
	opts := q.cfg.Solve
	opts.Decompose = !q.cfg.NoDecompose
	return q.solveAndScore(ctx, sys, knowledge, truth, opts, q.cfg.Audit, &tm)
}

// solveAndScore runs the MaxEnt solve on an assembled system, scores the
// posterior, and emits the pipeline metrics — the tail shared by
// QuantifyContext and Prepared. auditOpts selects whether (and how) the
// solve is audited; callers on the classic path pass q.cfg.Audit.
func (q *Quantifier) solveAndScore(ctx context.Context, sys *constraint.System, knowledge []constraint.DistributionKnowledge, truth *dataset.Conditional, opts maxent.Options, auditOpts *audit.Options, tm *Timings) (*Report, error) {
	return q.solveAndScoreDelta(ctx, sys, knowledge, truth, opts, auditOpts, nil, tm)
}

// solveAndScoreDelta is solveAndScore with an optional incremental
// baseline: non-nil routes the solve through maxent.SolveDeltaContext so
// unchanged decomposition components are reused verbatim (and an
// unusable baseline degrades to a cold solve inside the maxent layer).
func (q *Quantifier) solveAndScoreDelta(ctx context.Context, sys *constraint.System, knowledge []constraint.DistributionKnowledge, truth *dataset.Conditional, opts maxent.Options, auditOpts *audit.Options, base *maxent.Baseline, tm *Timings) (*Report, error) {
	if auditOpts != nil {
		opts.CaptureTrace = true
	}
	solveStart := time.Now()
	var sol *maxent.Solution
	var err error
	if base != nil {
		sol, err = maxent.SolveDeltaContext(ctx, sys, base, opts)
	} else {
		sol, err = maxent.SolveContext(ctx, sys, opts)
	}
	if err != nil {
		return nil, fmt.Errorf("core: maxent solve: %w", err)
	}
	tm.Add(StageSolve, time.Since(solveStart))
	rep, err := q.score(ctx, sol, knowledge, truth, tm)
	if err != nil {
		return nil, err
	}
	if auditOpts != nil {
		auditStart := time.Now()
		_, aspan := telemetry.Start(ctx, "core.audit")
		rep.Audit = audit.New(sys, sol, *auditOpts)
		rep.Audit.RequestID = telemetry.RequestID(ctx)
		aspan.End()
		tm.Add(StageAudit, time.Since(auditStart))
	}
	rep.Timings = *tm
	if reg := telemetry.Metrics(ctx); reg != nil {
		reg.Counter("pmaxent_quantify_total").Add(1)
		reg.Histogram("pmaxent_quantify_duration_seconds", telemetry.DurationBuckets).
			Observe(tm.Total().Seconds())
	}
	return rep, nil
}

// Prepared caches the data-dependent, knowledge-independent half of a
// quantification: the term space and the data-invariant base system.
// Sweeps that evaluate many knowledge sets over the same published data
// (Figures 5–7) pay the space/invariant construction once and append
// only the per-grid-point knowledge rows onto a copy-on-append overlay
// of the base system (constraint.System.Clone). A Prepared instance is
// safe for concurrent use: the base system is never mutated after
// Prepare returns.
type Prepared struct {
	q    *Quantifier
	d    *bucket.Bucketized
	sp   *constraint.Space
	base *constraint.System
	// sch is the publication scheme the base system was built under; nil
	// means the classic default (Anatomy-style equality invariants).
	sch scheme.Scheme
	// ineqs holds the scheme's inequality rows (observation boxes).
	// Non-empty routes every solve through the boxed dual, which
	// supports neither decomposition, warm starts, delta reuse, nor
	// audits.
	ineqs []maxent.Inequality
}

// Prepare builds the reusable base for quantifications of d: term space
// plus data invariants under the Quantifier's configuration, instrumented
// as a "core.prepare" span. It is the context-first front door of the
// prepared pipeline — library users and the pmaxentd server build the
// invariant system once per publication, then append only the per-request
// knowledge rows via Prepared.QuantifyContext and friends. It is
// PrepareScheme under the default scheme: the classic Theorem 1–3
// equality invariants every Anatomy/Mondrian view certifies.
func (q *Quantifier) Prepare(ctx context.Context, d *bucket.Bucketized) (*Prepared, error) {
	return q.PrepareScheme(ctx, d, nil)
}

// PrepareScheme is Prepare with an explicit publication scheme: the
// constraint rows come from sch.Invariants instead of the fixed
// equality-invariant builder, so a randomized-response view's
// observation boxes (or any future scheme's rows) flow through the same
// prepared pipeline — shared space, shared knowledge overlay, shared
// caching. A nil scheme means the classic default and is exactly
// Prepare.
func (q *Quantifier) PrepareScheme(ctx context.Context, d *bucket.Bucketized, sch scheme.Scheme) (*Prepared, error) {
	if d == nil {
		return nil, fmt.Errorf("core: prepare: nil published view: %w", errs.ErrInvalidSchema)
	}
	if d.Schema().SAIndex() < 0 {
		return nil, fmt.Errorf("core: prepare: published view has no sensitive attribute: %w", errs.ErrNoSensitiveAttribute)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	_, span := telemetry.Start(ctx, "core.prepare")
	defer span.End()
	sp := constraint.NewSpace(d)
	iopts := constraint.InvariantOptions{DropRedundant: !q.cfg.KeepRedundant}
	var (
		base  *constraint.System
		ineqs []maxent.Inequality
	)
	if sch == nil {
		base = constraint.DataInvariants(sp, iopts)
	} else {
		var err error
		base, ineqs, err = sch.Invariants(sp, iopts)
		if err != nil {
			return nil, fmt.Errorf("core: %s invariants: %w", sch.Name(), err)
		}
		span.SetAttr(telemetry.String("scheme", sch.Name()))
	}
	span.SetAttr(
		telemetry.Int("variables", sp.Len()),
		telemetry.Int("invariants", base.Len()),
		telemetry.Int("inequalities", len(ineqs)))
	return &Prepared{q: q, d: d, sp: sp, base: base, sch: sch, ineqs: ineqs}, nil
}

// Space returns the cached term space.
func (p *Prepared) Space() *constraint.Space { return p.sp }

// Data returns the published data the base system was built for.
func (p *Prepared) Data() *bucket.Bucketized { return p.d }

// Scheme returns the publication scheme the base system was built
// under; nil means the classic default (equality invariants).
func (p *Prepared) Scheme() scheme.Scheme { return p.sch }

// Boxed reports whether solves route through the boxed (inequality)
// dual — true when the scheme emitted observation boxes. Boxed solves
// support neither decomposition, warm starts, delta reuse, nor audits.
func (p *Prepared) Boxed() bool { return len(p.ineqs) > 0 }

// CloneSystem returns a copy-on-append overlay of the data-invariant
// base system: appending knowledge rows to the clone never mutates the
// base, so every grid point of a sweep starts from the same shared
// invariants.
func (p *Prepared) CloneSystem() *constraint.System { return p.base.Clone() }

// Quantify solves the given knowledge over the cached base system; see
// Quantifier.Quantify.
func (p *Prepared) Quantify(knowledge []constraint.DistributionKnowledge, truth *dataset.Conditional) (*Report, error) {
	return p.QuantifyContext(context.Background(), knowledge, truth)
}

// QuantifyContext is Quantify with telemetry threaded through ctx.
func (p *Prepared) QuantifyContext(ctx context.Context, knowledge []constraint.DistributionKnowledge, truth *dataset.Conditional) (*Report, error) {
	return p.QuantifyWarmContext(ctx, knowledge, truth, nil)
}

// QuantifyWarmContext is QuantifyContext with a warm-start seed: the
// duals of a previously solved, similar system (typically the previous
// grid point of a sweep, available as Report.Solution.Duals). The seed
// is a pure performance hint — the solve converges to the same posterior
// from any start — matched by constraint label, so rows added or removed
// between grid points are handled gracefully (see maxent.Options.WarmStart).
func (p *Prepared) QuantifyWarmContext(ctx context.Context, knowledge []constraint.DistributionKnowledge, truth *dataset.Conditional, warm []maxent.ConstraintDual) (*Report, error) {
	return p.QuantifyWithOptions(ctx, QuantifyOptions{
		Knowledge: knowledge,
		Truth:     truth,
		Warm:      warm,
		Audit:     p.q.cfg.Audit,
	})
}

// QuantifyOptions collects the per-request inputs of a prepared
// quantification. The zero value solves the bare invariant system cold,
// unaudited.
type QuantifyOptions struct {
	// Knowledge holds the background-knowledge rows appended to the
	// invariant base for this solve.
	Knowledge []constraint.DistributionKnowledge
	// Truth, when non-nil, enables accuracy scoring against the true
	// conditional distribution.
	Truth *dataset.Conditional
	// Warm seeds the dual solve; see QuantifyWarmContext.
	Warm []maxent.ConstraintDual
	// Audit, when non-nil, attaches a SolveAudit to the report —
	// per-call, independent of the Quantifier's Config.Audit, so a
	// server can audit individual requests against one shared Prepared.
	Audit *audit.Options
}

// QuantifyWithOptions is the fully general prepared solve: knowledge
// overlay, optional warm start, and per-call audit selection. The other
// Quantify* methods on Prepared are thin wrappers over it. On a boxed
// Prepared (scheme with observation boxes) the solve routes through the
// inequality dual: knowledge still enters as equality rows over the
// same overlay, but decomposition, warm starts and audits do not apply
// (the audit request is ignored, matching QuantifyVague's contract).
func (p *Prepared) QuantifyWithOptions(ctx context.Context, o QuantifyOptions) (*Report, error) {
	ctx, span := telemetry.Start(ctx, "core.quantify",
		telemetry.Int("knowledge", len(o.Knowledge)),
		telemetry.Bool("warm", len(o.Warm) > 0))
	defer span.End()
	var tm Timings
	fstart := time.Now()
	sys := p.base.Clone()
	if err := constraint.AddKnowledge(sys, o.Knowledge...); err != nil {
		return nil, fmt.Errorf("core: adding knowledge: %w", err)
	}
	tm.Add(StageFormulate, time.Since(fstart))
	if p.Boxed() {
		return p.quantifyBoxed(ctx, sys, o, &tm)
	}
	opts := p.q.cfg.Solve
	opts.Decompose = !p.q.cfg.NoDecompose
	opts.WarmStart = o.Warm
	rep, err := p.q.solveAndScore(ctx, sys, o.Knowledge, o.Truth, opts, o.Audit, &tm)
	if err != nil {
		return nil, err
	}
	if rep.Audit != nil && p.sch != nil {
		rep.Audit.Scheme = p.sch.Name()
	}
	return rep, nil
}

// quantifyBoxed is the boxed-dual tail of a prepared solve: the
// knowledge-augmented equality system plus the scheme's observation
// boxes, solved with maxent.SolveWithInequalitiesContext. Mirrors
// QuantifyVagueContext's solve/score/metrics tail.
func (p *Prepared) quantifyBoxed(ctx context.Context, sys *constraint.System, o QuantifyOptions, tm *Timings) (*Report, error) {
	solveStart := time.Now()
	sol, err := maxent.SolveWithInequalitiesContext(ctx, sys, p.ineqs, p.q.cfg.Solve)
	if err != nil {
		return nil, fmt.Errorf("core: inequality solve: %w", err)
	}
	tm.Add(StageSolve, time.Since(solveStart))
	rep, err := p.q.score(ctx, sol, o.Knowledge, o.Truth, tm)
	if err != nil {
		return nil, err
	}
	rep.Timings = *tm
	if reg := telemetry.Metrics(ctx); reg != nil {
		reg.Counter("pmaxent_quantify_total").Add(1)
	}
	return rep, nil
}

// DeltaState is the opaque baseline a delta quantification reuses: the
// previously assembled constraint system and its converged solution.
// QuantifyDelta consumes one (nil means cold) and returns the next; the
// state chains naturally across a sequence of knowledge variants —
// digest N's state seeds digest N+1's solve. A DeltaState is immutable
// after creation and safe to share across goroutines.
type DeltaState struct {
	sys *constraint.System
	sol *maxent.Solution
}

// QuantifyDelta is QuantifyWithOptions with incremental reuse: the new
// knowledge overlay is diffed against prev's system, decomposition
// components whose constraint rows are unchanged carry their converged
// posterior and duals over verbatim (zero solver iterations), and only
// changed or new components re-solve, warm-started from prev's duals.
// prev == nil (or an unusable/unconverged baseline) degrades to a cold
// solve. The returned DeltaState seeds the next call; it is nil when
// this solve did not converge, so a failed solve never becomes a
// baseline. Decomposition is forced on for the delta path — components
// are the unit of reuse.
func (p *Prepared) QuantifyDelta(ctx context.Context, o QuantifyOptions, prev *DeltaState) (*Report, *DeltaState, error) {
	if p.Boxed() {
		// The boxed dual has no decomposition components to reuse, so a
		// delta request degrades to a plain boxed solve with no
		// chainable state.
		rep, err := p.QuantifyWithOptions(ctx, o)
		return rep, nil, err
	}
	ctx, span := telemetry.Start(ctx, "core.quantify",
		telemetry.Int("knowledge", len(o.Knowledge)),
		telemetry.Bool("delta", prev != nil))
	defer span.End()
	var tm Timings
	fstart := time.Now()
	sys := p.base.Clone()
	if err := constraint.AddKnowledge(sys, o.Knowledge...); err != nil {
		return nil, nil, fmt.Errorf("core: adding knowledge: %w", err)
	}
	tm.Add(StageFormulate, time.Since(fstart))
	opts := p.q.cfg.Solve
	opts.Decompose = true
	opts.WarmStart = o.Warm
	var base *maxent.Baseline
	if prev != nil {
		base = &maxent.Baseline{Sys: prev.sys, Sol: prev.sol}
	}
	rep, err := p.q.solveAndScoreDelta(ctx, sys, o.Knowledge, o.Truth, opts, o.Audit, base, &tm)
	if err != nil {
		return nil, nil, err
	}
	if rep.Audit != nil && p.sch != nil {
		rep.Audit.Scheme = p.sch.Name()
	}
	var next *DeltaState
	if rep.Solution.Stats.Converged {
		next = &DeltaState{sys: sys, sol: rep.Solution}
	}
	return rep, next, nil
}

// QuantifyWithRules applies the Top-(KPos, KNeg) strongest rules from a
// pre-mined, sorted rule list over the cached base system; warm may seed
// the duals as in QuantifyWarmContext.
func (p *Prepared) QuantifyWithRules(ctx context.Context, rules []assoc.Rule, bound Bound, truth *dataset.Conditional, warm []maxent.ConstraintDual) (*Report, error) {
	selected := assoc.TopK(rules, bound.KPos, bound.KNeg)
	knowledge := make([]constraint.DistributionKnowledge, len(selected))
	for i := range selected {
		knowledge[i] = selected[i].Knowledge()
	}
	rep, err := p.QuantifyWarmContext(ctx, knowledge, truth, warm)
	if err != nil {
		return nil, err
	}
	rep.Bound = bound
	return rep, nil
}

// QuantifyVague is the Sec. 4.5 variant of Quantify: every knowledge
// statement carries a vagueness ε, entering the solve as the two-sided
// box (P−ε)·P(Qv) ≤ Σ P(Qv,Q⁻,s,B) ≤ (P+ε)·P(Qv) instead of an equality.
// eps applies to all statements; pass 0 to recover exact knowledge.
// Decomposition does not apply to inequality solves.
func (q *Quantifier) QuantifyVague(d *bucket.Bucketized, knowledge []constraint.DistributionKnowledge, eps float64, truth *dataset.Conditional) (*Report, error) {
	return q.QuantifyVagueContext(context.Background(), d, knowledge, eps, truth)
}

// QuantifyVagueContext is QuantifyVague with telemetry and a per-stage
// timing breakdown in Report.Timings.
func (q *Quantifier) QuantifyVagueContext(ctx context.Context, d *bucket.Bucketized, knowledge []constraint.DistributionKnowledge, eps float64, truth *dataset.Conditional) (*Report, error) {
	ctx, span := telemetry.Start(ctx, "core.quantify_vague",
		telemetry.Int("knowledge", len(knowledge)),
		telemetry.Float("epsilon", eps))
	defer span.End()
	var tm Timings
	fstart := time.Now()
	_, fspan := telemetry.Start(ctx, "core.formulate",
		telemetry.Int("knowledge", len(knowledge)))
	sp := constraint.NewSpace(d)
	sys := constraint.DataInvariants(sp, constraint.InvariantOptions{DropRedundant: !q.cfg.KeepRedundant})
	ineqs := make([]maxent.Inequality, 0, len(knowledge))
	for i := range knowledge {
		iq, err := maxent.VagueKnowledge(sp, knowledge[i], eps)
		if err != nil {
			fspan.End()
			return nil, fmt.Errorf("core: vague knowledge %d: %w", i, err)
		}
		ineqs = append(ineqs, iq)
	}
	fspan.SetAttr(telemetry.Int("variables", sp.Len()))
	fspan.SetAttr(telemetry.Int("equalities", sys.Len()))
	fspan.SetAttr(telemetry.Int("inequalities", len(ineqs)))
	fspan.End()
	tm.Add(StageFormulate, time.Since(fstart))
	solveStart := time.Now()
	sol, err := maxent.SolveWithInequalitiesContext(ctx, sys, ineqs, q.cfg.Solve)
	if err != nil {
		return nil, fmt.Errorf("core: inequality solve: %w", err)
	}
	tm.Add(StageSolve, time.Since(solveStart))
	rep, err := q.score(ctx, sol, knowledge, truth, &tm)
	if err != nil {
		return nil, err
	}
	rep.Timings = tm
	if reg := telemetry.Metrics(ctx); reg != nil {
		reg.Counter("pmaxent_quantify_total").Add(1)
	}
	return rep, nil
}

// QuantifyWithRules applies the Top-(KPos, KNeg) strongest rules from the
// pre-mined, sorted rule list as the knowledge bound and quantifies.
func (q *Quantifier) QuantifyWithRules(d *bucket.Bucketized, rules []assoc.Rule, bound Bound, truth *dataset.Conditional) (*Report, error) {
	return q.QuantifyWithRulesContext(context.Background(), d, rules, bound, truth)
}

// QuantifyWithRulesContext is QuantifyWithRules with telemetry; rule
// selection is timed as the "select" stage.
func (q *Quantifier) QuantifyWithRulesContext(ctx context.Context, d *bucket.Bucketized, rules []assoc.Rule, bound Bound, truth *dataset.Conditional) (*Report, error) {
	selStart := time.Now()
	_, selSpan := telemetry.Start(ctx, "core.select_rules",
		telemetry.Int("mined", len(rules)),
		telemetry.Int("k_pos", bound.KPos),
		telemetry.Int("k_neg", bound.KNeg))
	selected := assoc.TopK(rules, bound.KPos, bound.KNeg)
	knowledge := make([]constraint.DistributionKnowledge, len(selected))
	for i := range selected {
		knowledge[i] = selected[i].Knowledge()
	}
	selSpan.SetAttr(telemetry.Int("selected", len(selected)))
	selSpan.End()
	selDur := time.Since(selStart)
	rep, err := q.QuantifyContext(ctx, d, knowledge, truth)
	if err != nil {
		return nil, err
	}
	rep.Bound = bound
	tm := Timings{{Stage: StageSelect, Duration: selDur}}
	tm.Merge(rep.Timings)
	rep.Timings = tm
	return rep, nil
}

// Run is the end-to-end convenience: bucketize the original data, mine
// rules, apply the Top-(KPos, KNeg) bound, and score against the true
// conditional computed from the original table.
func (q *Quantifier) Run(t *dataset.Table, bound Bound) (*Report, error) {
	return q.RunContext(context.Background(), t, bound)
}

// RunContext is Run with telemetry: a root "core.run" span over the
// bucketize/mine/truth/select/formulate/solve/score stages, with the full
// per-stage breakdown in Report.Timings.
func (q *Quantifier) RunContext(ctx context.Context, t *dataset.Table, bound Bound) (*Report, error) {
	ctx, span := telemetry.Start(ctx, "core.run",
		telemetry.Int("records", t.Len()),
		telemetry.Int("k_pos", bound.KPos),
		telemetry.Int("k_neg", bound.KNeg))
	defer span.End()
	var tm Timings
	start := time.Now()
	d, _, err := q.BucketizeContext(ctx, t)
	if err != nil {
		return nil, fmt.Errorf("core: bucketize: %w", err)
	}
	tm.Add(StageBucketize, time.Since(start))
	start = time.Now()
	rules, err := q.MineRulesContext(ctx, t)
	if err != nil {
		return nil, fmt.Errorf("core: mining rules: %w", err)
	}
	tm.Add(StageMine, time.Since(start))
	start = time.Now()
	_, truthSpan := telemetry.Start(ctx, "core.true_conditional")
	truth, err := dataset.TrueConditional(t, d.Universe())
	truthSpan.End()
	if err != nil {
		return nil, fmt.Errorf("core: true conditional: %w", err)
	}
	tm.Add(StageTruth, time.Since(start))
	rep, err := q.QuantifyWithRulesContext(ctx, d, rules, bound, truth)
	if err != nil {
		return nil, err
	}
	tm.Merge(rep.Timings)
	rep.Timings = tm
	return rep, nil
}

// IndividualReport is the Sec. 6 counterpart of Report: per-person
// posteriors under knowledge about individuals, over the
// pseudonym-expanded model.
type IndividualReport struct {
	// Space is the pseudonym term space (persons, their QI groups).
	Space *individuals.Space
	// Solution holds the joint P(i, Q, S, B) and solver statistics.
	Solution *individuals.Solution
	// MaxDisclosure is the largest single-person, single-value posterior.
	MaxDisclosure float64
	// AverageEntropy is the mean per-person posterior entropy in bits.
	AverageEntropy float64
}

// QuantifyIndividuals runs the pseudonym-expanded MaxEnt model (Sec. 6)
// under the given individual-knowledge statements.
func (q *Quantifier) QuantifyIndividuals(d *bucket.Bucketized, knowledge []individuals.Knowledge) (*IndividualReport, error) {
	sp := individuals.NewSpace(d)
	opts := q.cfg.Solve
	sol, err := individuals.Solve(sp, knowledge, opts)
	if err != nil {
		return nil, fmt.Errorf("core: individuals solve: %w", err)
	}
	rep := &IndividualReport{Space: sp, Solution: sol}
	var totalH float64
	for person := 0; person < sp.NumPersons(); person++ {
		post := sol.PersonPosterior(person)
		var h float64
		for _, p := range post {
			if p > rep.MaxDisclosure {
				rep.MaxDisclosure = p
			}
			if p > 0 {
				h -= p * math.Log2(p)
			}
		}
		totalH += h
	}
	if sp.NumPersons() > 0 {
		rep.AverageEntropy = totalH / float64(sp.NumPersons())
	}
	return rep, nil
}

// BreakingBound searches for the smallest mixed knowledge budget K (split
// K/2 positive, K−K/2 negative) at which the adversary's maximum
// disclosure reaches the threshold tau, probing a geometric grid up to
// maxK and then binary-searching the bracketing interval. It returns the
// bound and its report, or (nil report, maxK+1) when even maxK keeps
// disclosure below tau — the publisher-facing "how much knowledge can
// this release withstand?" question of Sec. 4.3.
//
// Disclosure is not perfectly monotone in K (each extra rule reshapes the
// whole MaxEnt distribution), so the result is the first grid/bisection
// point that crosses tau, not a certified minimum.
func (q *Quantifier) BreakingBound(d *bucket.Bucketized, rules []assoc.Rule, tau float64, maxK int) (int, *Report, error) {
	if tau <= 0 || tau > 1 {
		return 0, nil, fmt.Errorf("core: threshold %g outside (0, 1]", tau)
	}
	if maxK < 1 {
		return 0, nil, fmt.Errorf("core: maxK %d below 1", maxK)
	}
	at := func(k int) (*Report, error) {
		return q.QuantifyWithRules(d, rules, Bound{KPos: k / 2, KNeg: k - k/2}, nil)
	}
	// Geometric probe for a bracket [lo, hi] with disclosure(hi) >= tau.
	lo := 0
	hi := -1
	var hiRep *Report
	for k := 1; ; k *= 2 {
		if k > maxK {
			k = maxK
		}
		rep, err := at(k)
		if err != nil {
			return 0, nil, err
		}
		if rep.MaxDisclosure >= tau {
			hi, hiRep = k, rep
			break
		}
		lo = k
		if k == maxK {
			return maxK + 1, nil, nil
		}
	}
	// Bisect (lo, hi].
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		rep, err := at(mid)
		if err != nil {
			return 0, nil, err
		}
		if rep.MaxDisclosure >= tau {
			hi, hiRep = mid, rep
		} else {
			lo = mid
		}
	}
	return hi, hiRep, nil
}
