package core

import (
	"context"
	"math"
	"testing"

	"privacymaxent/internal/adult"
	"privacymaxent/internal/bucket"
	"privacymaxent/internal/dataset"
)

// TestPreparedMatchesQuantify checks that the sweep-oriented Prepared
// path — formulate the base system once, clone and append knowledge per
// call — produces exactly the reports of the one-shot Quantify path,
// cold or warm-started.
func TestPreparedMatchesQuantify(t *testing.T) {
	tbl := adult.Generate(adult.Config{Records: 400, Seed: 9})
	q := New(Config{RuleSizes: []int{1}, MinSupport: 1})
	d, _, err := q.Bucketize(tbl)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := dataset.TrueConditional(tbl, d.Universe())
	if err != nil {
		t.Fatal(err)
	}
	rules, err := q.MineRules(tbl)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	p, err := q.Prepare(ctx, d)
	if err != nil {
		t.Fatal(err)
	}
	if p.Data() != d {
		t.Fatal("Prepared does not expose its publication")
	}
	if p.Space() == nil {
		t.Fatal("Prepared has no space")
	}

	for _, bound := range []Bound{{}, {KPos: 3, KNeg: 3}} {
		oneShot, err := q.QuantifyWithRules(d, rules, bound, truth)
		if err != nil {
			t.Fatal(err)
		}
		prep, err := p.QuantifyWithRules(ctx, rules, bound, truth, nil)
		if err != nil {
			t.Fatal(err)
		}
		if prep.Bound != bound {
			t.Fatalf("prepared bound = %+v, want %+v", prep.Bound, bound)
		}
		if d := math.Abs(prep.EstimationAccuracy - oneShot.EstimationAccuracy); d > 1e-9 {
			t.Fatalf("bound %+v: prepared accuracy deviates by %g", bound, d)
		}
		for i := range oneShot.Solution.X {
			if d := math.Abs(prep.Solution.X[i] - oneShot.Solution.X[i]); d > 1e-9 {
				t.Fatalf("bound %+v: prepared joint deviates at %d by %g", bound, i, d)
			}
		}
		if prep.Solution.Stats.Converged != oneShot.Solution.Stats.Converged {
			t.Fatalf("bound %+v: convergence differs", bound)
		}

		// Warm-starting from the cold solve's duals must not move the
		// posterior, only reduce work.
		warm, err := p.QuantifyWithRules(ctx, rules, bound, truth, prep.Solution.Duals)
		if err != nil {
			t.Fatal(err)
		}
		if d := math.Abs(warm.EstimationAccuracy - prep.EstimationAccuracy); d > 1e-9 {
			t.Fatalf("bound %+v: warm accuracy deviates by %g", bound, d)
		}
		if warm.Solution.Stats.Iterations > prep.Solution.Stats.Iterations {
			t.Fatalf("bound %+v: warm solve took more iterations (%d > %d)",
				bound, warm.Solution.Stats.Iterations, prep.Solution.Stats.Iterations)
		}
	}
}

// TestPreparedCloneSystemIsolated checks that each CloneSystem call
// yields an independently appendable overlay of the cached base system.
func TestPreparedCloneSystemIsolated(t *testing.T) {
	tbl := dataset.PaperExample()
	q := New(Config{})
	d, err := bucket.FromPartition(tbl, dataset.PaperBuckets())
	if err != nil {
		t.Fatal(err)
	}
	p, err := q.Prepare(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	a, b := p.CloneSystem(), p.CloneSystem()
	if a == b {
		t.Fatal("CloneSystem returned the same overlay twice")
	}
	baseLen := a.Len()
	if baseLen == 0 || baseLen != b.Len() {
		t.Fatalf("clone lengths %d/%d", baseLen, b.Len())
	}
	ca := *a.At(0)
	ca.Label = "probe"
	if err := a.Add(ca); err != nil {
		t.Fatal(err)
	}
	if b.Len() != baseLen || p.CloneSystem().Len() != baseLen {
		t.Fatal("append to one clone leaked into the shared base")
	}
}
