package core

import (
	"testing"

	"privacymaxent/internal/adult"
	"privacymaxent/internal/audit"
)

// TestRunWithAudit: setting Config.Audit makes every quantification carry
// a full SolveAudit — trajectory included — while the default config
// leaves Report.Audit nil.
func TestRunWithAudit(t *testing.T) {
	tbl := adult.Generate(adult.Config{Records: 400, Seed: 7})

	plain := New(Config{RuleSizes: []int{1}})
	rep, err := plain.Run(tbl, Bound{KPos: 5, KNeg: 5})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Audit != nil {
		t.Fatal("audit built without Config.Audit")
	}

	audited := New(Config{RuleSizes: []int{1}, Audit: &audit.Options{Top: 3}})
	rep, err = audited.Run(tbl, Bound{KPos: 5, KNeg: 5})
	if err != nil {
		t.Fatal(err)
	}
	a := rep.Audit
	if a == nil {
		t.Fatal("no audit despite Config.Audit")
	}
	if len(a.Families) == 0 || len(a.TopViolations) == 0 {
		t.Fatalf("audit missing residual breakdown: %+v", a)
	}
	if len(a.Trajectory) == 0 {
		t.Fatal("audit missing trajectory (CaptureTrace not propagated)")
	}
	if last := a.Trajectory[len(a.Trajectory)-1]; last.Index != rep.Solution.Stats.Iterations {
		t.Fatalf("final trajectory index %d != iterations %d", last.Index, rep.Solution.Stats.Iterations)
	}
	if !a.HasDuals || len(a.BindingKnowledge) == 0 {
		t.Fatalf("audit missing dual attribution: %+v", a)
	}
	if len(a.BindingKnowledge) > 3 || len(a.TopViolations) > 3 {
		t.Fatal("audit.Options.Top not honoured through core")
	}
}
