package core

import (
	"fmt"
	"strings"
	"time"
)

// Stage names the pipeline stages a Report's timing breakdown covers, in
// pipeline order.
const (
	StageBucketize = "bucketize"
	StageMine      = "mine"
	StageTruth     = "truth"
	StageSelect    = "select"
	// StagePrepare is the invariant-system build of the prepared
	// pipeline (Quantifier.Prepare). It appears in a request's timings
	// only when the base system was actually built — the pmaxentd server
	// reports it on prepared-cache misses and omits it on hits, which is
	// how a client (or test) can tell the invariant build was skipped.
	StagePrepare   = "prepare"
	StageFormulate = "formulate"
	StageSolve     = "solve"
	StageScore     = "score"
	// StageAudit is the post-solve audit build; present only when an
	// audit was requested, so the per-stage server histograms can tell
	// how much of a request's latency auditing added.
	StageAudit = "audit"
)

// StageTiming is one (stage, wall-clock duration) entry.
type StageTiming struct {
	Stage    string
	Duration time.Duration
}

// Timings is a per-stage wall-clock breakdown of a quantification run,
// in execution order — the data behind the paper's Figure 7 running-time
// panels, available without re-timing the pipeline externally.
type Timings []StageTiming

// Add accumulates d into the named stage, appending it if new.
func (t *Timings) Add(stage string, d time.Duration) {
	for i := range *t {
		if (*t)[i].Stage == stage {
			(*t)[i].Duration += d
			return
		}
	}
	*t = append(*t, StageTiming{Stage: stage, Duration: d})
}

// Get returns the named stage's duration (0 when absent).
func (t Timings) Get(stage string) time.Duration {
	for _, st := range t {
		if st.Stage == stage {
			return st.Duration
		}
	}
	return 0
}

// Total sums every stage.
func (t Timings) Total() time.Duration {
	var sum time.Duration
	for _, st := range t {
		sum += st.Duration
	}
	return sum
}

// Merge folds another breakdown into t, stage by stage.
func (t *Timings) Merge(o Timings) {
	for _, st := range o {
		t.Add(st.Stage, st.Duration)
	}
}

// String renders the breakdown compactly, e.g.
//
//	bucketize=1.2ms mine=8.4ms formulate=0.9ms solve=43ms score=1.1ms
func (t Timings) String() string {
	parts := make([]string, len(t))
	for i, st := range t {
		parts[i] = fmt.Sprintf("%s=%v", st.Stage, st.Duration.Round(time.Microsecond))
	}
	return strings.Join(parts, " ")
}
