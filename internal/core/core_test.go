package core

import (
	"math"
	"testing"

	"privacymaxent/internal/adult"
	"privacymaxent/internal/bucket"
	"privacymaxent/internal/constraint"
	"privacymaxent/internal/dataset"
	"privacymaxent/internal/individuals"
)

func TestConfigDefaults(t *testing.T) {
	q := New(Config{})
	cfg := q.Config()
	if cfg.Diversity != 5 || cfg.MinSupport != 3 {
		t.Fatalf("defaults = %+v", cfg)
	}
	custom := New(Config{Diversity: 3, MinSupport: 1}).Config()
	if custom.Diversity != 3 || custom.MinSupport != 1 {
		t.Fatalf("custom config overridden: %+v", custom)
	}
}

func TestQuantifyPaperExampleNoKnowledge(t *testing.T) {
	tbl := dataset.PaperExample()
	d, err := bucket.FromPartition(tbl, dataset.PaperBuckets())
	if err != nil {
		t.Fatal(err)
	}
	truth, err := dataset.TrueConditional(tbl, d.Universe())
	if err != nil {
		t.Fatal(err)
	}
	q := New(Config{})
	rep, err := q.Quantify(d, nil, truth)
	if err != nil {
		t.Fatal(err)
	}
	if rep.EstimationAccuracy < 0 {
		t.Fatalf("accuracy = %g, want >= 0", rep.EstimationAccuracy)
	}
	if rep.MaxDisclosure <= 0 || rep.MaxDisclosure > 1+1e-9 {
		t.Fatalf("max disclosure = %g", rep.MaxDisclosure)
	}
	if rep.PosteriorEntropy <= 0 {
		t.Fatalf("posterior entropy = %g", rep.PosteriorEntropy)
	}
	// Without truth, accuracy is flagged -1.
	rep2, err := q.Quantify(d, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.EstimationAccuracy != -1 {
		t.Fatalf("no-truth accuracy = %g, want -1", rep2.EstimationAccuracy)
	}
}

// TestKnowledgeImprovesEstimation verifies the paper's central
// qualitative result: more background knowledge brings the adversary's
// estimate closer to the truth (Estimation Accuracy decreases) and raises
// disclosure risk.
func TestKnowledgeImprovesEstimation(t *testing.T) {
	tbl := dataset.PaperExample()
	d, err := bucket.FromPartition(tbl, dataset.PaperBuckets())
	if err != nil {
		t.Fatal(err)
	}
	truth, err := dataset.TrueConditional(tbl, d.Universe())
	if err != nil {
		t.Fatal(err)
	}
	q := New(Config{MinSupport: 1})
	rules, err := q.MineRules(tbl)
	if err != nil {
		t.Fatal(err)
	}
	base, err := q.QuantifyWithRules(d, rules, Bound{}, truth)
	if err != nil {
		t.Fatal(err)
	}
	more, err := q.QuantifyWithRules(d, rules, Bound{KPos: 5, KNeg: 5}, truth)
	if err != nil {
		t.Fatal(err)
	}
	if more.EstimationAccuracy >= base.EstimationAccuracy {
		t.Fatalf("accuracy with knowledge %g >= without %g", more.EstimationAccuracy, base.EstimationAccuracy)
	}
	if more.Bound != (Bound{KPos: 5, KNeg: 5}) {
		t.Fatalf("bound = %+v", more.Bound)
	}
	if more.PosteriorEntropy > base.PosteriorEntropy {
		t.Fatalf("entropy rose with knowledge: %g > %g", more.PosteriorEntropy, base.PosteriorEntropy)
	}
}

func TestRunEndToEndAdult(t *testing.T) {
	tbl := adult.Generate(adult.Config{Records: 600, Seed: 21})
	q := New(Config{RuleSizes: []int{1}})
	rep, err := q.Run(tbl, Bound{KPos: 10, KNeg: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Knowledge) != 20 {
		t.Fatalf("applied knowledge = %d, want 20", len(rep.Knowledge))
	}
	if rep.Solution.Stats.MaxViolation > 1e-5 {
		t.Fatalf("violation = %g", rep.Solution.Stats.MaxViolation)
	}
	if rep.EstimationAccuracy < 0 || math.IsInf(rep.EstimationAccuracy, 0) {
		t.Fatalf("accuracy = %g", rep.EstimationAccuracy)
	}
	// Posterior rows are distributions.
	u := rep.Posterior.Universe()
	for qid := 0; qid < u.Len(); qid++ {
		var sum float64
		for s := 0; s < rep.Posterior.NumSA(); s++ {
			p := rep.Posterior.P(qid, s)
			if p < -1e-9 {
				t.Fatalf("negative posterior P(s%d|q%d) = %g", s, qid, p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Fatalf("posterior row %d sums to %g", qid, sum)
		}
	}
}

// TestDecompositionAblation checks the Sec. 5.5 claim on real pipeline
// runs: with sparse knowledge, decomposition solves a much smaller
// problem yet produces the same posterior.
func TestDecompositionAblation(t *testing.T) {
	tbl := adult.Generate(adult.Config{Records: 400, Seed: 33})
	qDec := New(Config{RuleSizes: []int{1}})
	qFull := New(Config{RuleSizes: []int{1}, NoDecompose: true})

	d, _, err := qDec.Bucketize(tbl)
	if err != nil {
		t.Fatal(err)
	}
	rules, err := qDec.MineRules(tbl)
	if err != nil {
		t.Fatal(err)
	}
	bound := Bound{KNeg: 3}
	repDec, err := qDec.QuantifyWithRules(d, rules, bound, nil)
	if err != nil {
		t.Fatal(err)
	}
	repFull, err := qFull.QuantifyWithRules(d, rules, bound, nil)
	if err != nil {
		t.Fatal(err)
	}
	if repDec.Solution.Stats.IrrelevantBuckets == 0 {
		t.Fatal("expected some irrelevant buckets with only 3 rules")
	}
	if repDec.Solution.Stats.ActiveVariables >= repFull.Solution.Stats.ActiveVariables &&
		repFull.Solution.Stats.ActiveVariables > 0 {
		t.Fatalf("decomposition did not shrink: %d vs %d",
			repDec.Solution.Stats.ActiveVariables, repFull.Solution.Stats.ActiveVariables)
	}
	u := d.Universe()
	for qid := 0; qid < u.Len(); qid++ {
		for s := 0; s < repDec.Posterior.NumSA(); s++ {
			if math.Abs(repDec.Posterior.P(qid, s)-repFull.Posterior.P(qid, s)) > 1e-5 {
				t.Fatalf("posteriors diverge at (q%d, s%d): %g vs %g",
					qid, s, repDec.Posterior.P(qid, s), repFull.Posterior.P(qid, s))
			}
		}
	}
}

func TestQuantifyRejectsBadKnowledge(t *testing.T) {
	tbl := dataset.PaperExample()
	d, err := bucket.FromPartition(tbl, dataset.PaperBuckets())
	if err != nil {
		t.Fatal(err)
	}
	q := New(Config{})
	bad := []constraint.DistributionKnowledge{{Attrs: []int{99}, Values: []int{0}, SA: 0, P: 0.5}}
	if _, err := q.Quantify(d, bad, nil); err == nil {
		t.Fatal("expected knowledge validation error")
	}
}

// TestQuantifyVague checks the Sec. 4.5 pipeline variant: with a large
// vagueness the boxes barely constrain (posterior near the no-knowledge
// one), and the vague report never assigns the adversary more certainty
// than the exact-knowledge report.
func TestQuantifyVague(t *testing.T) {
	tbl := dataset.PaperExample()
	d, err := bucket.FromPartition(tbl, dataset.PaperBuckets())
	if err != nil {
		t.Fatal(err)
	}
	truth, err := dataset.TrueConditional(tbl, d.Universe())
	if err != nil {
		t.Fatal(err)
	}
	q := New(Config{MinSupport: 1})
	rules, err := q.MineRules(tbl)
	if err != nil {
		t.Fatal(err)
	}
	var ks []constraint.DistributionKnowledge
	for _, r := range rules[:4] {
		ks = append(ks, r.Knowledge())
	}

	exact, err := q.Quantify(d, ks, truth)
	if err != nil {
		t.Fatal(err)
	}
	vague, err := q.QuantifyVague(d, ks, 0.2, truth)
	if err != nil {
		t.Fatal(err)
	}
	loose, err := q.QuantifyVague(d, ks, 1, truth)
	if err != nil {
		t.Fatal(err)
	}
	none, err := q.Quantify(d, nil, truth)
	if err != nil {
		t.Fatal(err)
	}
	// Fully vague knowledge is no knowledge.
	if math.Abs(loose.EstimationAccuracy-none.EstimationAccuracy) > 1e-3 {
		t.Fatalf("eps=1 accuracy %g, no-knowledge %g", loose.EstimationAccuracy, none.EstimationAccuracy)
	}
	// Vagueness weakens the adversary relative to exact knowledge.
	if vague.EstimationAccuracy < exact.EstimationAccuracy-1e-6 {
		t.Fatalf("vague accuracy %g below exact %g", vague.EstimationAccuracy, exact.EstimationAccuracy)
	}
	if vague.Solution.Stats.MaxViolation > 1e-4 {
		t.Fatalf("violation %g", vague.Solution.Stats.MaxViolation)
	}
}

func TestQuantifyIndividuals(t *testing.T) {
	tbl := dataset.PaperExample()
	d, err := bucket.FromPartition(tbl, dataset.PaperBuckets())
	if err != nil {
		t.Fatal(err)
	}
	q := New(Config{})
	// No knowledge: exchangeable pseudonyms, moderate entropy.
	base, err := q.QuantifyIndividuals(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if base.Space.NumPersons() != 10 {
		t.Fatalf("persons = %d, want 10", base.Space.NumPersons())
	}
	if base.MaxDisclosure <= 0 || base.MaxDisclosure > 1+1e-9 {
		t.Fatalf("disclosure = %g", base.MaxDisclosure)
	}
	// "James has Lung Cancer is impossible" plus "Helen (either q2
	// pseudonym) doesn't either" pins Iris.
	s5 := tbl.Schema().SA().MustCode("Lung Cancer")
	know := []individuals.Knowledge{
		individuals.ValueProbability{Person: individuals.Person{QID: 5}, SAs: []int{s5}, P: 0},
		individuals.ValueProbability{Person: individuals.Person{QID: 1, Index: 0}, SAs: []int{s5}, P: 0},
		individuals.ValueProbability{Person: individuals.Person{QID: 1, Index: 1}, SAs: []int{s5}, P: 0},
	}
	rep, err := q.QuantifyIndividuals(d, know)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxDisclosure < 1-1e-6 {
		t.Fatalf("disclosure = %g, want 1 (Iris pinned)", rep.MaxDisclosure)
	}
	if rep.AverageEntropy >= base.AverageEntropy {
		t.Fatalf("entropy did not drop: %g vs %g", rep.AverageEntropy, base.AverageEntropy)
	}
}

func TestBreakingBound(t *testing.T) {
	tbl := dataset.PaperExample()
	d, err := bucket.FromPartition(tbl, dataset.PaperBuckets())
	if err != nil {
		t.Fatal(err)
	}
	q := New(Config{MinSupport: 1})
	rules, err := q.MineRules(tbl)
	if err != nil {
		t.Fatal(err)
	}
	// Some modest threshold is crossed within the rule pool.
	k, rep, err := q.BreakingBound(d, rules, 0.75, 40)
	if err != nil {
		t.Fatal(err)
	}
	if k > 40 || rep == nil {
		t.Fatalf("expected a breaking bound within 40 rules, got k=%d", k)
	}
	if rep.MaxDisclosure < 0.75 {
		t.Fatalf("report disclosure %g below threshold", rep.MaxDisclosure)
	}
	// One rule fewer stays below (first-crossing property on the
	// bisection lattice).
	if k > 1 {
		prev, err := q.QuantifyWithRules(d, rules, Bound{KPos: (k - 1) / 2, KNeg: (k - 1) - (k-1)/2}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if prev.MaxDisclosure >= 0.75 {
			t.Fatalf("k-1 already crosses: %g", prev.MaxDisclosure)
		}
	}
	// Unreachable threshold: with no rules to draw from, disclosure stays
	// at the no-knowledge baseline regardless of K.
	k, rep, err = q.BreakingBound(d, nil, 0.999999, 4)
	if err != nil {
		t.Fatal(err)
	}
	if k != 5 || rep != nil {
		t.Fatalf("unreachable threshold: k=%d rep=%v", k, rep)
	}
	// Validation.
	if _, _, err := q.BreakingBound(d, rules, 0, 10); err == nil {
		t.Fatal("expected tau validation error")
	}
	if _, _, err := q.BreakingBound(d, rules, 0.5, 0); err == nil {
		t.Fatal("expected maxK validation error")
	}
}
