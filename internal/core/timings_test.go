package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"privacymaxent/internal/adult"
	"privacymaxent/internal/telemetry"
)

func TestTimingsAddGetTotalMerge(t *testing.T) {
	var tm Timings
	tm.Add(StageBucketize, 2*time.Millisecond)
	tm.Add(StageSolve, 5*time.Millisecond)
	tm.Add(StageSolve, 3*time.Millisecond) // accumulates
	if got := tm.Get(StageSolve); got != 8*time.Millisecond {
		t.Fatalf("Get(solve) = %v, want 8ms", got)
	}
	if got := tm.Get("nope"); got != 0 {
		t.Fatalf("Get(absent) = %v, want 0", got)
	}
	if got := tm.Total(); got != 10*time.Millisecond {
		t.Fatalf("Total = %v, want 10ms", got)
	}
	other := Timings{{Stage: StageScore, Duration: time.Millisecond}, {Stage: StageSolve, Duration: time.Millisecond}}
	tm.Merge(other)
	if got := tm.Get(StageSolve); got != 9*time.Millisecond {
		t.Fatalf("merged Get(solve) = %v, want 9ms", got)
	}
	s := tm.String()
	for _, want := range []string{"bucketize=2ms", "solve=9ms", "score=1ms"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q, missing %q", s, want)
		}
	}
}

// TestRunContextTelemetry runs the end-to-end pipeline under a tracer and
// registry, then checks the report's timing breakdown covers every stage
// and the emitted spans cover every pipeline step.
func TestRunContextTelemetry(t *testing.T) {
	tbl := adult.Generate(adult.Config{Records: 400, Seed: 7})
	sink := telemetry.NewTreeSink()
	reg := telemetry.NewRegistry()
	ctx := telemetry.WithTracer(context.Background(), telemetry.NewTracer(sink))
	ctx = telemetry.WithMetrics(ctx, reg)

	q := New(Config{})
	rep, err := q.RunContext(ctx, tbl, Bound{KPos: 5, KNeg: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, stage := range []string{StageBucketize, StageMine, StageTruth, StageSelect, StageFormulate, StageSolve, StageScore} {
		if rep.Timings.Get(stage) <= 0 {
			t.Errorf("stage %q missing from Timings %v", stage, rep.Timings)
		}
	}
	if rep.Timings.Total() <= 0 {
		t.Fatal("Total() not positive")
	}

	byName := map[string]int{}
	for _, ev := range sink.Events() {
		byName[ev.Name]++
	}
	for _, name := range []string{
		"core.run", "core.bucketize", "core.mine_rules", "core.true_conditional",
		"core.select_rules", "core.quantify", "core.formulate", "core.score",
		"maxent.solve",
	} {
		if byName[name] == 0 {
			t.Errorf("no %q spans (got %v)", name, byName)
		}
	}

	if reg.Counter("pmaxent_quantify_total").Value() != 1 {
		t.Fatal("pmaxent_quantify_total != 1")
	}
	if reg.Counter("pmaxent_bucketize_total").Value() != 1 {
		t.Fatal("pmaxent_bucketize_total != 1")
	}
	if reg.Counter("pmaxent_solve_total").Value() == 0 {
		t.Fatal("pmaxent_solve_total empty")
	}
}

// TestQuantifyWithoutTelemetry: the plain entry points still populate the
// timing breakdown with no tracer or registry in scope.
func TestRunTimingsWithoutTelemetry(t *testing.T) {
	tbl := adult.Generate(adult.Config{Records: 300, Seed: 3})
	q := New(Config{})
	rep, err := q.Run(tbl, Bound{KPos: 2, KNeg: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Timings.Get(StageSolve) <= 0 || rep.Timings.Get(StageBucketize) <= 0 {
		t.Fatalf("Timings not populated without telemetry: %v", rep.Timings)
	}
}
