package maxent

import "sync"

// dualScratch holds the work buffers of one dual solve: the primal
// x(λ) vector, the per-block partition partial sums of the fused
// exp/partition kernel, plus the Hessian's column adjacency (which rows
// touch each variable, with what coefficient). Sweeps solve the
// same-shaped dual dozens of times, so the buffers are pooled across
// solves instead of reallocated; a solve takes a scratch from the pool
// in newDualObjective and returns it via release. Buffers are never
// zeroed on reuse — every consumer fully overwrites them.
type dualScratch struct {
	x         []float64
	blockSums []float64
	touch     [][]int
	coeff     [][]float64
}

var dualScratchPool = sync.Pool{New: func() any { return new(dualScratch) }}

// newDualScratch takes a scratch from the pool and sizes the primal
// buffer for n active variables. The block-sum buffer is sized by Eval
// (it depends on the block partition) and the Hessian adjacency lazily
// by hessAdjacency, since only Newton needs it.
func newDualScratch(n int) *dualScratch {
	s := dualScratchPool.Get().(*dualScratch)
	s.x = growFloats(s.x, n)
	return s
}

// release returns the scratch to the pool. The caller must not touch the
// buffers afterwards.
func (s *dualScratch) release() { dualScratchPool.Put(s) }

// growFloats resizes buf to length n, reusing its capacity when possible.
func growFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// growIntRows resizes buf to n empty rows, keeping each row's capacity.
func growIntRows(buf [][]int, n int) [][]int {
	if cap(buf) < n {
		grown := make([][]int, n)
		copy(grown, buf)
		buf = grown
	} else {
		buf = buf[:n]
	}
	for i := range buf {
		buf[i] = buf[i][:0]
	}
	return buf
}

// growFloatRows resizes buf to n empty rows, keeping each row's capacity.
func growFloatRows(buf [][]float64, n int) [][]float64 {
	if cap(buf) < n {
		grown := make([][]float64, n)
		copy(grown, buf)
		buf = grown
	} else {
		buf = buf[:n]
	}
	for i := range buf {
		buf[i] = buf[i][:0]
	}
	return buf
}
