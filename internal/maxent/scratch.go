package maxent

import "sync"

// dualScratch holds the work buffers of one dual solve: the objective's
// η = Aᵀλ, primal x(λ) and A·x vectors, plus the Hessian's column
// adjacency (which rows touch each variable, with what coefficient).
// Sweeps solve the same-shaped dual dozens of times, so the buffers are
// pooled across solves instead of reallocated; a solve takes a scratch
// from the pool in newDualObjective and returns it via release. Buffers
// are never zeroed on reuse — every consumer fully overwrites them.
type dualScratch struct {
	eta, x, ax []float64
	touch      [][]int
	coeff      [][]float64
}

var dualScratchPool = sync.Pool{New: func() any { return new(dualScratch) }}

// newDualScratch takes a scratch from the pool and sizes its objective
// buffers for an m×n (rows × active variables) system. The Hessian
// adjacency is sized lazily by hessAdjacency, since only Newton needs it.
func newDualScratch(m, n int) *dualScratch {
	s := dualScratchPool.Get().(*dualScratch)
	s.eta = growFloats(s.eta, n)
	s.x = growFloats(s.x, n)
	s.ax = growFloats(s.ax, m)
	return s
}

// release returns the scratch to the pool. The caller must not touch the
// buffers afterwards.
func (s *dualScratch) release() { dualScratchPool.Put(s) }

// growFloats resizes buf to length n, reusing its capacity when possible.
func growFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// growIntRows resizes buf to n empty rows, keeping each row's capacity.
func growIntRows(buf [][]int, n int) [][]int {
	if cap(buf) < n {
		grown := make([][]int, n)
		copy(grown, buf)
		buf = grown
	} else {
		buf = buf[:n]
	}
	for i := range buf {
		buf[i] = buf[i][:0]
	}
	return buf
}

// growFloatRows resizes buf to n empty rows, keeping each row's capacity.
func growFloatRows(buf [][]float64, n int) [][]float64 {
	if cap(buf) < n {
		grown := make([][]float64, n)
		copy(grown, buf)
		buf = grown
	} else {
		buf = buf[:n]
	}
	for i := range buf {
		buf[i] = buf[i][:0]
	}
	return buf
}
