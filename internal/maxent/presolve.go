package maxent

import (
	"fmt"
	"math"

	"privacymaxent/internal/constraint"
	"privacymaxent/internal/errs"
)

// presolveTol treats |value| below it as zero during propagation.
const presolveTol = 1e-12

// ErrInfeasible wraps a contradiction detected between constraints — for
// example, background knowledge inconsistent with the published data.
type ErrInfeasible struct{ Reason string }

func (e *ErrInfeasible) Error() string { return "maxent: infeasible constraints: " + e.Reason }

// Is makes every ErrInfeasible match the errs.ErrInfeasible sentinel, so
// callers classify infeasibility with errors.Is against the facade's
// exported taxonomy instead of type-asserting an internal type.
func (e *ErrInfeasible) Is(target error) bool { return target == errs.ErrInfeasible }

// rowData is a constraint in plain form: terms index the original
// variable space. The terms and coeffs slices may alias the source
// constraint.System's storage (see systemRows) and must be treated as
// immutable; any rewrite goes through copy-on-write in presolve.
type rowData struct {
	terms  []int
	coeffs []float64
	rhs    float64
	label  string
	kind   constraint.Kind
}

// systemRows extracts the system's constraints as rowData, keeping only
// rows accepted by the filter (nil keeps everything). Term and coefficient
// slices are shared with the system, not copied: presolve is copy-on-write
// (it allocates fresh slices only for the rows it actually rewrites), so
// the shared slices are treated as immutable throughout the solve.
func systemRows(sys *constraint.System, keep func(*constraint.Constraint) bool) []rowData {
	rows := make([]rowData, 0, sys.Len())
	for i := 0; i < sys.Len(); i++ {
		c := sys.At(i)
		if keep != nil && !keep(c) {
			continue
		}
		rows = append(rows, rowData{
			terms:  c.Terms,
			coeffs: c.Coeffs,
			rhs:    c.RHS,
			label:  c.Label,
			kind:   c.Kind,
		})
	}
	return rows
}

// reduced is the output of presolve: some variables pinned to constants,
// the rest active, and the surviving constraints rewritten over the
// active set.
type reduced struct {
	n      int       // original variable count
	fixed  []bool    // fixed[j] reports whether variable j is pinned
	value  []float64 // pinned value (0 for most), valid when fixed[j]
	rows   []rowData
	active []int // original indices of the active variables
	newIdx []int // original index -> active position, -1 if fixed or unmentioned
}

// presolve propagates the constraints that determine variables outright:
//
//   - a zero-RHS row with positive coefficients pins all its variables to
//     zero (how negative association rules such as P(Breast Cancer|male)=0
//     collapse terms, enabling the Sec. 3.1 style exact inferences);
//   - a row reduced to a single variable pins it to rhs/coeff;
//
// repeating until a fixed point. Rows whose variables are all pinned must
// be satisfied, otherwise the system is infeasible. Negative pinned
// values also signal infeasibility (probabilities cannot be negative).
func presolve(n int, input []rowData) (*reduced, error) {
	r := &reduced{
		n:     n,
		fixed: make([]bool, n),
		value: make([]float64, n),
	}

	type workRow struct {
		rowData
		done bool
	}
	rows := make([]workRow, len(input))
	for i := range input {
		rows[i] = workRow{rowData: input[i]}
	}

	fix := func(j int, v float64, label string) error {
		if v < -presolveTol {
			return &ErrInfeasible{Reason: fmt.Sprintf("%s forces P-term to %g < 0", label, v)}
		}
		if v < 0 {
			v = 0
		}
		if r.fixed[j] {
			if math.Abs(r.value[j]-v) > 1e-9 {
				return &ErrInfeasible{Reason: fmt.Sprintf("%s re-pins term to %g, already %g", label, v, r.value[j])}
			}
			return nil
		}
		r.fixed[j] = true
		r.value[j] = v
		return nil
	}

	for changed := true; changed; {
		changed = false
		for i := range rows {
			row := &rows[i]
			if row.done {
				continue
			}
			// Substitute pinned variables, copy-on-write: input rows share
			// their term/coeff slices with the caller's constraint system,
			// so a row is rewritten onto fresh slices only when it actually
			// mentions a pinned variable. Untouched rows keep aliasing the
			// caller's (immutable) storage.
			needSub := false
			for _, j := range row.terms {
				if r.fixed[j] {
					needSub = true
					break
				}
			}
			if needSub {
				outT := make([]int, 0, len(row.terms))
				outC := make([]float64, 0, len(row.coeffs))
				for k, j := range row.terms {
					if r.fixed[j] {
						row.rhs -= row.coeffs[k] * r.value[j]
						continue
					}
					outT = append(outT, j)
					outC = append(outC, row.coeffs[k])
				}
				row.terms, row.coeffs = outT, outC
			}

			switch {
			case len(row.terms) == 0:
				if math.Abs(row.rhs) > 1e-9 {
					return nil, &ErrInfeasible{Reason: fmt.Sprintf("%s reduces to 0 = %g", row.label, row.rhs)}
				}
				row.done = true
				changed = true
			case len(row.terms) == 1:
				if err := fix(row.terms[0], row.rhs/row.coeffs[0], row.label); err != nil {
					return nil, err
				}
				row.done = true
				changed = true
			case math.Abs(row.rhs) <= presolveTol && allPositive(row.coeffs):
				for _, j := range row.terms {
					if err := fix(j, 0, row.label); err != nil {
						return nil, err
					}
				}
				row.done = true
				changed = true
			}
		}
	}

	// Active variables are those mentioned by a surviving row; variables
	// mentioned by no row at all (possible when solving a filtered
	// sub-system) are neither fixed nor active and keep whatever value
	// the caller initialized them with.
	mentioned := make([]bool, n)
	for i := range rows {
		if rows[i].done {
			continue
		}
		for _, j := range rows[i].terms {
			mentioned[j] = true
		}
		r.rows = append(r.rows, rows[i].rowData)
	}
	r.newIdx = make([]int, n)
	for j := 0; j < n; j++ {
		if r.fixed[j] || !mentioned[j] {
			r.newIdx[j] = -1
			continue
		}
		r.newIdx[j] = len(r.active)
		r.active = append(r.active, j)
	}
	return r, nil
}

func allPositive(coeffs []float64) bool {
	for _, c := range coeffs {
		if c <= 0 {
			return false
		}
	}
	return true
}

// numFixed counts pinned variables.
func (r *reduced) numFixed() int {
	n := 0
	for _, f := range r.fixed {
		if f {
			n++
		}
	}
	return n
}
