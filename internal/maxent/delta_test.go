package maxent

import (
	"math"
	"testing"

	"privacymaxent/internal/bucket"
	"privacymaxent/internal/constraint"
	"privacymaxent/internal/dataset"
	"privacymaxent/internal/solver"
)

func deltaOpts() Options {
	return Options{Algorithm: LBFGS, Decompose: true, Solver: solver.Options{MaxIterations: 5000, GradTol: 1e-10}}
}

// bucketAndSAOfQID finds the bucket a QI tuple lives in plus an SA code
// that co-occurs with it there (so knowledge about the pair is feasible).
func bucketAndSAOfQID(t *testing.T, sp *constraint.Space, qid int) (int, int) {
	t.Helper()
	for i := 0; i < sp.Len(); i++ {
		if tm := sp.Term(i); tm.QID == qid {
			return tm.Bucket, tm.SA
		}
	}
	t.Fatalf("qid %d not in space", qid)
	return -1, -1
}

// bucketsOfQID returns the set of buckets a QI tuple's terms touch.
// Conditioning knowledge about a qid couples all of them into one
// decomposition component, so tests that need two independent
// components must pick qids with disjoint bucket sets.
func bucketsOfQID(sp *constraint.Space, qid int) map[int]bool {
	out := map[int]bool{}
	for i := 0; i < sp.Len(); i++ {
		if tm := sp.Term(i); tm.QID == qid {
			out[tm.Bucket] = true
		}
	}
	return out
}

// distinctSAsOfQID lists the SA codes co-occurring with a qid, in term
// order without duplicates.
func distinctSAsOfQID(sp *constraint.Space, qid int) []int {
	seen := map[int]bool{}
	var out []int
	for i := 0; i < sp.Len(); i++ {
		if tm := sp.Term(i); tm.QID == qid && !seen[tm.SA] {
			seen[tm.SA] = true
			out = append(out, tm.SA)
		}
	}
	return out
}

// convergesAt reports whether the single knowledge statement solves to
// convergence under opts on a clone of base. Delta tests use it to pick
// (qid, SA, P) triples the LBFGS actually closes at the test tolerance:
// decomposed components solve independently, so a combination converges
// iff each part does.
func convergesAt(t *testing.T, base *constraint.System, tbl *dataset.Table, d *bucket.Bucketized, qid, sa int, p float64, opts Options) bool {
	t.Helper()
	sys := base.Clone()
	if err := constraint.AddKnowledge(sys, knowledgeFor(tbl, d, qid, sa, p)); err != nil {
		return false
	}
	sol, err := Solve(sys, opts)
	return err == nil && sol.Stats.Converged
}

// TestSolveDeltaCleanAndDirty solves a two-component system, changes one
// component's knowledge, and delta-solves: the untouched component must
// be reused bit-for-bit (zero extra iterations), the changed one
// re-solved, and the posterior must match a cold solve of the new
// system.
func TestSolveDeltaCleanAndDirty(t *testing.T) {
	tbl, d, sp, base := paperSystem(t)
	opts := deltaOpts()

	// Pick two qids whose bucket sets are disjoint (so their knowledge
	// rows land in separate decomposition components) and SA codes whose
	// single-statement solves all converge at the test tolerance. The
	// LBFGS line search stalls just above GradTol on some (qid, SA, P)
	// triples of this tiny fixture, so the test searches instead of
	// hardcoding a triple that could go stale.
	qidA, saA, qidB, saB := -1, -1, -1, -1
search:
	for qa := 0; qa < 6 && qidA < 0; qa++ {
		bucketsA := bucketsOfQID(sp, qa)
		if len(bucketsA) == 0 {
			continue
		}
		for _, sa := range distinctSAsOfQID(sp, qa) {
			if !convergesAt(t, base, tbl, d, qa, sa, 0.5, opts) {
				continue
			}
			for qb := 0; qb < 6; qb++ {
				disjoint := true
				for b := range bucketsOfQID(sp, qb) {
					if bucketsA[b] {
						disjoint = false
						break
					}
				}
				if qb == qa || !disjoint {
					continue
				}
				for _, sb := range distinctSAsOfQID(sp, qb) {
					if convergesAt(t, base, tbl, d, qb, sb, 0.4, opts) &&
						convergesAt(t, base, tbl, d, qb, sb, 0.45, opts) {
						qidA, saA, qidB, saB = qa, sa, qb, sb
						break search
					}
				}
			}
		}
	}
	if qidA < 0 {
		t.Fatal("no convergent disjoint (qid, SA) pair in fixture")
	}
	kA := knowledgeFor(tbl, d, qidA, saA, 0.5)
	kB := knowledgeFor(tbl, d, qidB, saB, 0.4)

	oldSys := base.Clone()
	if err := constraint.AddKnowledge(oldSys, kA, kB); err != nil {
		t.Fatal(err)
	}
	oldSol, err := Solve(oldSys, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !oldSol.Stats.Converged {
		t.Fatal("baseline did not converge")
	}

	kB2 := kB
	kB2.P = 0.45
	newSys := base.Clone()
	if err := constraint.AddKnowledge(newSys, kA, kB2); err != nil {
		t.Fatal(err)
	}
	cold, err := Solve(newSys, opts)
	if err != nil {
		t.Fatal(err)
	}
	delta, err := SolveDelta(newSys, &Baseline{Sys: oldSys, Sol: oldSol}, opts)
	if err != nil {
		t.Fatal(err)
	}

	if delta.Stats.ReusedComponents != 1 || delta.Stats.DirtyComponents != 1 {
		t.Fatalf("reused/dirty = %d/%d, want 1/1", delta.Stats.ReusedComponents, delta.Stats.DirtyComponents)
	}
	if !delta.Stats.Converged {
		t.Fatal("delta solve did not converge")
	}
	// The clean component transfers bit-for-bit from the baseline — and
	// hence matches the cold solve bit-for-bit too, since both solved the
	// identical deterministic subproblem.
	for b := range bucketsOfQID(sp, qidA) {
		for _, ti := range sp.TermsInBucket(b) {
			if delta.X[ti] != oldSol.X[ti] {
				t.Fatalf("clean component term %d: delta %v != baseline %v (not a verbatim copy)", ti, delta.X[ti], oldSol.X[ti])
			}
			if delta.X[ti] != cold.X[ti] {
				t.Fatalf("clean component term %d: delta %v != cold %v", ti, delta.X[ti], cold.X[ti])
			}
		}
	}
	// The dirty component re-solves to the cold posterior within solver
	// tolerance (warm starts change the path, not the optimum).
	for b := range bucketsOfQID(sp, qidB) {
		for _, ti := range sp.TermsInBucket(b) {
			if math.Abs(delta.X[ti]-cold.X[ti]) > 1e-6 {
				t.Fatalf("dirty component term %d: delta %v vs cold %v", ti, delta.X[ti], cold.X[ti])
			}
		}
	}
	for i := range cold.X {
		if math.Abs(delta.X[i]-cold.X[i]) > 1e-6 {
			t.Fatalf("posterior term %d: delta %v vs cold %v", i, delta.X[i], cold.X[i])
		}
	}
}

// TestSolveDeltaRenamedRowReusesDuals: a label rename with identical
// content is clean — zero iterations, the whole posterior a verbatim
// copy, and the baseline dual re-emitted under the new label.
func TestSolveDeltaRenamedRowReusesDuals(t *testing.T) {
	_, _, sp, base := paperSystem(t)
	// Two terms so presolve keeps the row active (a single-term row is
	// fixed outright and carries no dual on either path).
	row := func(label string) constraint.Constraint {
		return constraint.Constraint{
			Kind:   constraint.Knowledge,
			Label:  label,
			Terms:  []int{sp.TermsInBucket(0)[0], sp.TermsInBucket(0)[1]},
			Coeffs: []float64{1, 1},
			RHS:    0.1,
		}
	}
	opts := deltaOpts()
	// The raw two-term row's line search stalls just above 1e-10 on this
	// fixture; 1e-8 closes reliably, and the reuse assertions below are
	// about determinism, not tolerance.
	opts.Solver.GradTol = 1e-8
	oldSys := base.Clone()
	oldSys.MustAdd(row("old-name"))
	oldSol, err := Solve(oldSys, opts)
	if err != nil {
		t.Fatal(err)
	}
	newSys := base.Clone()
	newSys.MustAdd(row("new-name"))
	delta, err := SolveDelta(newSys, &Baseline{Sys: oldSys, Sol: oldSol}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if delta.Stats.ReusedComponents != 1 || delta.Stats.DirtyComponents != 0 {
		t.Fatalf("reused/dirty = %d/%d, want 1/0", delta.Stats.ReusedComponents, delta.Stats.DirtyComponents)
	}
	if delta.Stats.Iterations != 0 {
		t.Fatalf("clean-only delta spent %d iterations, want 0", delta.Stats.Iterations)
	}
	for i := range oldSol.X {
		if delta.X[i] != oldSol.X[i] {
			t.Fatalf("term %d not copied verbatim: %v vs %v", i, delta.X[i], oldSol.X[i])
		}
	}
	var oldLam, newLam float64
	oldFound, newFound := false, false
	for _, du := range oldSol.Duals {
		if du.Label == "old-name" {
			oldLam, oldFound = du.Lambda, true
		}
	}
	for _, du := range delta.Duals {
		if du.Label == "new-name" {
			newLam, newFound = du.Lambda, true
		}
	}
	if !oldFound || !newFound {
		t.Fatalf("dual missing: baseline found=%v, delta found=%v", oldFound, newFound)
	}
	if newLam != oldLam {
		t.Fatalf("renamed dual = %v, want baseline's %v", newLam, oldLam)
	}
}

// TestSolveDeltaFallsBackWithoutBaseline: a nil or unusable baseline
// degrades to a plain cold solve — same posterior, no reuse counters.
func TestSolveDeltaFallsBackWithoutBaseline(t *testing.T) {
	tbl, d, sp, base := paperSystem(t)
	_, sa := bucketAndSAOfQID(t, sp, 0)
	sys := base.Clone()
	if err := constraint.AddKnowledge(sys, knowledgeFor(tbl, d, 0, sa, 0.5)); err != nil {
		t.Fatal(err)
	}
	opts := deltaOpts()
	cold, err := Solve(sys, opts)
	if err != nil {
		t.Fatal(err)
	}
	delta, err := SolveDelta(sys, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if delta.Stats.ReusedComponents != 0 || delta.Stats.DirtyComponents != 0 {
		t.Fatalf("fallback counted reuse: %d/%d", delta.Stats.ReusedComponents, delta.Stats.DirtyComponents)
	}
	for i := range cold.X {
		if math.Abs(delta.X[i]-cold.X[i]) > 1e-9 {
			t.Fatalf("fallback posterior differs at %d", i)
		}
	}

	// An unconverged baseline must not seed reuse either.
	stale := &Baseline{Sys: sys, Sol: &Solution{space: cold.Space(), X: cold.X}}
	stale.Sol.Stats.Converged = false
	delta2, err := SolveDelta(sys, stale, opts)
	if err != nil {
		t.Fatal(err)
	}
	if delta2.Stats.ReusedComponents != 0 {
		t.Fatal("unconverged baseline was reused")
	}
}

// TestSolveDeltaWithReduce composes delta reuse with the structural
// presolve: the reused component stays a verbatim copy and the dirty
// component's reduced solve still lands on the cold posterior.
func TestSolveDeltaWithReduce(t *testing.T) {
	tbl, d, sp, base := paperSystem(t)
	_, sa := bucketAndSAOfQID(t, sp, 0)
	kA := knowledgeFor(tbl, d, 0, sa, 0.5)
	opts := deltaOpts()
	opts.Reduce = true

	oldSys := base.Clone()
	if err := constraint.AddKnowledge(oldSys, kA); err != nil {
		t.Fatal(err)
	}
	oldSol, err := Solve(oldSys, opts)
	if err != nil {
		t.Fatal(err)
	}
	kA2 := kA
	kA2.P = 0.55
	newSys := base.Clone()
	if err := constraint.AddKnowledge(newSys, kA2); err != nil {
		t.Fatal(err)
	}
	cold, err := Solve(newSys, opts)
	if err != nil {
		t.Fatal(err)
	}
	delta, err := SolveDelta(newSys, &Baseline{Sys: oldSys, Sol: oldSol}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if delta.Stats.DirtyComponents != 1 {
		t.Fatalf("dirty = %d, want 1", delta.Stats.DirtyComponents)
	}
	for i := range cold.X {
		if math.Abs(delta.X[i]-cold.X[i]) > 1e-6 {
			t.Fatalf("posterior term %d: delta %v vs cold %v", i, delta.X[i], cold.X[i])
		}
	}
	_ = sp
}
