package maxent

import (
	"context"
	"fmt"
	"math"
	"time"

	"privacymaxent/internal/constraint"
	"privacymaxent/internal/linalg"
	"privacymaxent/internal/telemetry"
)

// Inequality is a two-sided linear constraint Lo ≤ Σ Coeffs·x[Terms] ≤ Hi
// over the term space — the paper's Sec. 4.5 extension for vague
// background knowledge ("P(s1|q1) is about 0.3" becomes the ε-box
// [0.3−ε, 0.3+ε] after multiplying by P(q1)). Use math.Inf for one-sided
// constraints.
type Inequality struct {
	Label  string
	Terms  []int
	Coeffs []float64
	Lo, Hi float64
}

// VagueKnowledge renders a distribution-knowledge statement with
// vagueness ε as an Inequality: (P−ε)·P(Qv) ≤ Σ P(Qv,Q⁻,s,B) ≤ (P+ε)·P(Qv)
// (clamped to [0, 1] on the probability scale).
func VagueKnowledge(sp *constraint.Space, k constraint.DistributionKnowledge, eps float64) (Inequality, error) {
	if eps < 0 {
		return Inequality{}, fmt.Errorf("maxent: negative vagueness %g", eps)
	}
	c, err := k.Constraint(sp)
	if err != nil {
		return Inequality{}, err
	}
	if k.P == 0 && eps == 0 {
		// Degenerate but valid: an exact zero.
		return Inequality{Label: c.Label, Terms: c.Terms, Coeffs: c.Coeffs, Lo: 0, Hi: 0}, nil
	}
	scale := 0.0
	if k.P > 0 {
		scale = c.RHS / k.P // = P(Qv)
	} else {
		// Recover P(Qv) by rebuilding with P = 1.
		probe := k
		probe.P = 1
		pc, err := probe.Constraint(sp)
		if err != nil {
			return Inequality{}, err
		}
		scale = pc.RHS
	}
	lo := math.Max(0, k.P-eps) * scale
	hi := math.Min(1, k.P+eps) * scale
	return Inequality{Label: c.Label + fmt.Sprintf(" ± %g", eps), Terms: c.Terms, Coeffs: c.Coeffs, Lo: lo, Hi: hi}, nil
}

// SolveWithInequalities extends Solve with inequality constraints, using
// the Kazama–Tsujii treatment: each side of a box gets a non-negative
// Lagrange multiplier, giving a bound-constrained convex dual
//
//	g(λ, α, β) = Σ_j exp(η_j − 1) − λᵀc + αᵀhi − βᵀlo,
//	η = Aᵀλ + Bᵀ(β − α),   α, β ≥ 0,
//
// minimized by projected Barzilai–Borwein gradient descent with Armijo
// backtracking. Equality constraints are presolved as usual; inequality
// rows are rewritten over the surviving variables.
func SolveWithInequalities(sys *constraint.System, ineqs []Inequality, opts Options) (*Solution, error) {
	return SolveWithInequalitiesContext(context.Background(), sys, ineqs, opts)
}

// SolveWithInequalitiesContext is SolveWithInequalities with telemetry
// threaded through the context (a "maxent.solve_inequalities" span plus
// solve metrics).
func SolveWithInequalitiesContext(ctx context.Context, sys *constraint.System, ineqs []Inequality, opts Options) (*Solution, error) {
	x, stats, err := SolveConstraintsWithInequalitiesContext(
		ctx, sys.Space().Len(), constraintsOf(sys), ineqs, Uniform(sys.Space()), opts)
	if err != nil {
		return nil, err
	}
	return &Solution{space: sys.Space(), X: x, Stats: stats}, nil
}

// constraintsOf copies a system's constraints into a plain slice.
func constraintsOf(sys *constraint.System) []constraint.Constraint {
	out := make([]constraint.Constraint, sys.Len())
	for i := 0; i < sys.Len(); i++ {
		out[i] = *sys.At(i)
	}
	return out
}

// SolveConstraintsWithInequalities is the space-agnostic entry point for
// box-constrained MaxEnt over n variables: equality constraints cons,
// two-sided inequalities ineqs, and an init vector whose values survive
// for variables no constraint mentions. The randomization substrate uses
// it with sampling-tolerance boxes around observed perturbed counts.
func SolveConstraintsWithInequalities(n int, cons []constraint.Constraint, ineqs []Inequality, init []float64, opts Options) ([]float64, Stats, error) {
	return SolveConstraintsWithInequalitiesContext(context.Background(), n, cons, ineqs, init, opts)
}

// SolveConstraintsWithInequalitiesContext adds telemetry to the
// box-constrained solve: a "maxent.solve_inequalities" span with a
// presolve child, and the shared solve metrics in the context registry.
func SolveConstraintsWithInequalitiesContext(ctx context.Context, n int, cons []constraint.Constraint, ineqs []Inequality, init []float64, opts Options) ([]float64, Stats, error) {
	if len(init) != n {
		return nil, Stats{}, fmt.Errorf("maxent: init has %d values, want %d", len(init), n)
	}
	start := time.Now()
	ctx, span := telemetry.Start(ctx, "maxent.solve_inequalities",
		telemetry.Int("variables", n),
		telemetry.Int("equalities", len(cons)),
		telemetry.Int("inequalities", len(ineqs)))
	defer span.End()
	logger := telemetry.Logger(ctx)
	obs := telemetry.SolveObserverFrom(ctx)
	logger.Info("solve.start",
		"algorithm", "boxed-bb",
		"variables", n,
		"equalities", len(cons),
		"inequalities", len(ineqs))
	observe(obs, "solve.start",
		telemetry.String("algorithm", "boxed-bb"),
		telemetry.Int("variables", n),
		telemetry.Int("equalities", len(cons)),
		telemetry.Int("inequalities", len(ineqs)))
	// The boxed dual has no solver trace hook, so vague solves stream
	// lifecycle events only — no per-iteration frames (see DESIGN.md).
	fail := func(err error) {
		logger.Error("solve.failed", "error", err.Error())
		observe(obs, "solve.failed", telemetry.String("error", err.Error()))
	}
	done := func(stats Stats) {
		logger.Info("solve.done",
			"iterations", stats.Iterations,
			"evaluations", stats.Evaluations,
			"converged", stats.Converged,
			"max_violation", stats.MaxViolation,
			"duration", stats.Duration.String())
		observe(obs, "solve.done",
			telemetry.Int("iterations", stats.Iterations),
			telemetry.Int("evaluations", stats.Evaluations),
			telemetry.Bool("converged", stats.Converged),
			telemetry.Float("max_violation", stats.MaxViolation),
			telemetry.String("duration", stats.Duration.String()))
	}
	sol := &Solution{X: append([]float64(nil), init...)}
	sol.Stats.Workers = 1

	// Slices are shared, not copied: presolve is copy-on-write.
	rows := make([]rowData, 0, len(cons))
	for i := range cons {
		c := &cons[i]
		rows = append(rows, rowData{
			terms:  c.Terms,
			coeffs: c.Coeffs,
			rhs:    c.RHS,
			label:  c.Label,
			kind:   c.Kind,
		})
	}
	red, err := runPresolve(ctx, n, rows)
	if err != nil {
		fail(err)
		return nil, Stats{}, err
	}
	for j := 0; j < red.n; j++ {
		if red.fixed[j] {
			sol.X[j] = red.value[j]
		}
	}
	sol.Stats.FixedVariables = red.numFixed()
	sol.Stats.ActiveVariables = len(red.active)

	// Rewrite inequalities over active variables, folding in fixed ones.
	type box struct {
		cols   []int
		coeffs []float64
		lo, hi float64
		label  string
	}
	var boxes []box
	for _, q := range ineqs {
		if len(q.Terms) != len(q.Coeffs) {
			return nil, Stats{}, fmt.Errorf("maxent: inequality %q has %d terms but %d coefficients", q.Label, len(q.Terms), len(q.Coeffs))
		}
		if q.Lo > q.Hi {
			return nil, Stats{}, fmt.Errorf("maxent: inequality %q has empty box [%g, %g]", q.Label, q.Lo, q.Hi)
		}
		b := box{lo: q.Lo, hi: q.Hi, label: q.Label}
		for k, j := range q.Terms {
			if j < 0 || j >= red.n {
				return nil, Stats{}, fmt.Errorf("maxent: inequality %q references term %d out of range", q.Label, j)
			}
			if red.fixed[j] {
				b.lo -= q.Coeffs[k] * red.value[j]
				b.hi -= q.Coeffs[k] * red.value[j]
				continue
			}
			pos := red.newIdx[j]
			if pos < 0 {
				// Mentioned by no equality: promote it to active.
				pos = len(red.active)
				red.newIdx[j] = pos
				red.active = append(red.active, j)
			}
			b.cols = append(b.cols, pos)
			b.coeffs = append(b.coeffs, q.Coeffs[k])
		}
		if len(b.cols) == 0 {
			if b.lo > presolveTol || b.hi < -presolveTol {
				err := &ErrInfeasible{Reason: fmt.Sprintf("inequality %q reduces to %g <= 0 <= %g", q.label(), b.lo, b.hi)}
				fail(err)
				return nil, Stats{}, err
			}
			continue
		}
		boxes = append(boxes, b)
	}
	sol.Stats.ActiveVariables = len(red.active)

	if len(red.active) == 0 {
		sol.Stats.Converged = true
		sol.Stats.MaxViolation = maxViolationOf(cons, sol.X)
		sol.Stats.Duration = time.Since(start)
		sol.Stats.record(telemetry.Metrics(ctx), 0)
		done(sol.Stats)
		return sol.X, sol.Stats, nil
	}

	// Assemble A (equalities) and B (inequality bodies).
	a := linalg.NewCSR(len(red.active))
	var ceq []float64
	for _, row := range red.rows {
		cols := make([]int, len(row.terms))
		for k, j := range row.terms {
			cols[k] = red.newIdx[j]
		}
		if err := a.AppendRow(cols, row.coeffs); err != nil {
			return nil, Stats{}, fmt.Errorf("maxent: assembling equalities: %w", err)
		}
		ceq = append(ceq, row.rhs)
	}
	bm := linalg.NewCSR(len(red.active))
	lo := make([]float64, 0, len(boxes))
	hi := make([]float64, 0, len(boxes))
	for _, b := range boxes {
		if err := bm.AppendRow(b.cols, b.coeffs); err != nil {
			return nil, Stats{}, fmt.Errorf("maxent: assembling inequalities: %w", err)
		}
		lo = append(lo, b.lo)
		hi = append(hi, b.hi)
	}

	xActive, iters, evals, converged := solveBoxedDual(a, ceq, bm, lo, hi, opts)
	sol.Stats.Iterations = iters
	sol.Stats.Evaluations = evals
	sol.Stats.Converged = converged
	for pos, j := range red.active {
		sol.X[j] = xActive[pos]
	}

	// Report the worst violation across equalities and box sides.
	worst := maxViolationOf(cons, sol.X)
	bx := make([]float64, bm.Rows())
	bm.MulVec(xActive, bx)
	for i := range bx {
		if v := lo[i] - bx[i]; v > worst {
			worst = v
		}
		if v := bx[i] - hi[i]; v > worst {
			worst = v
		}
	}
	sol.Stats.MaxViolation = worst
	sol.Stats.Duration = time.Since(start)
	span.SetAttr(
		telemetry.Int("iterations", sol.Stats.Iterations),
		telemetry.Bool("converged", sol.Stats.Converged))
	sol.Stats.record(telemetry.Metrics(ctx), 0)
	done(sol.Stats)
	return sol.X, sol.Stats, nil
}

// maxViolationOf computes the worst |residual| of a constraint list at x.
func maxViolationOf(cons []constraint.Constraint, x []float64) float64 {
	var worst float64
	for i := range cons {
		if r := cons[i].Residual(x); r > worst {
			worst = r
		} else if -r > worst {
			worst = -r
		}
	}
	return worst
}

func (b *Inequality) label() string {
	if b.Label != "" {
		return b.Label
	}
	return "inequality"
}

// solveBoxedDual minimizes g over μ = (λ free, α ≥ 0, β ≥ 0) by projected
// gradient descent with Barzilai–Borwein step lengths and Armijo
// backtracking, returning the primal x(μ).
func solveBoxedDual(a *linalg.CSR, c []float64, bm *linalg.CSR, lo, hi []float64, opts Options) (x []float64, iterations, evaluations int, converged bool) {
	nEq := a.Rows()
	nIq := bm.Rows()
	nVar := a.Cols()
	dim := nEq + 2*nIq

	maxIter := opts.Solver.MaxIterations
	if maxIter <= 0 {
		maxIter = 2000
	}
	tol := opts.Solver.GradTol
	if tol <= 0 {
		tol = 1e-8
	}

	mu := make([]float64, dim)
	grad := make([]float64, dim)
	muPrev := make([]float64, dim)
	gradPrev := make([]float64, dim)
	trial := make([]float64, dim)

	eta := make([]float64, nVar)
	x = make([]float64, nVar)
	ax := make([]float64, nEq)
	bx := make([]float64, nIq)

	// eval computes g(μ) and the gradient; returns +Inf on overflow.
	eval := func(mu, grad []float64) float64 {
		evaluations++
		a.MulTVec(mu[:nEq], eta)
		if nIq > 0 {
			tmp := make([]float64, nVar)
			diff := make([]float64, nIq)
			for i := 0; i < nIq; i++ {
				diff[i] = mu[nEq+nIq+i] - mu[nEq+i] // β − α
			}
			bm.MulTVec(diff, tmp)
			linalg.Axpy(1, tmp, eta)
		}
		var g float64
		for j, e := range eta {
			v := math.Exp(e - 1)
			x[j] = v
			g += v
		}
		g -= linalg.Dot(mu[:nEq], c)
		for i := 0; i < nIq; i++ {
			g += mu[nEq+i]*hi[i] - mu[nEq+nIq+i]*lo[i]
		}
		if grad != nil {
			a.MulVec(x, ax)
			for i := 0; i < nEq; i++ {
				grad[i] = ax[i] - c[i]
			}
			bm.MulVec(x, bx)
			for i := 0; i < nIq; i++ {
				grad[nEq+i] = hi[i] - bx[i]     // ∂/∂α
				grad[nEq+nIq+i] = bx[i] - lo[i] // ∂/∂β
			}
		}
		return g
	}

	project := func(v []float64) {
		for i := nEq; i < dim; i++ {
			if v[i] < 0 {
				v[i] = 0
			}
		}
	}

	g := eval(mu, grad)
	step := 1.0
	for iter := 0; iter < maxIter; iter++ {
		iterations = iter
		// Projected-gradient optimality measure.
		var pg float64
		for i := range grad {
			gi := grad[i]
			if i >= nEq && mu[i] == 0 && gi > 0 {
				gi = 0 // pushing further against the bound
			}
			if v := math.Abs(gi); v > pg {
				pg = v
			}
		}
		if pg <= tol {
			converged = true
			break
		}

		// Barzilai–Borwein step from the previous pair.
		if iter > 0 {
			var sy, ss float64
			for i := range mu {
				s := mu[i] - muPrev[i]
				y := grad[i] - gradPrev[i]
				sy += s * y
				ss += s * s
			}
			if sy > 1e-18 {
				step = ss / sy
			}
		}
		if step <= 0 || math.IsInf(step, 0) || math.IsNaN(step) {
			step = 1
		}

		copy(muPrev, mu)
		copy(gradPrev, grad)

		// Armijo backtracking on the projected step.
		accepted := false
		for ls := 0; ls < 60; ls++ {
			copy(trial, muPrev)
			linalg.Axpy(-step, gradPrev, trial)
			project(trial)
			gTrial := eval(trial, nil)
			// Sufficient decrease relative to the projected move.
			var dec float64
			for i := range trial {
				d := trial[i] - muPrev[i]
				dec += gradPrev[i] * d
			}
			if !math.IsInf(gTrial, 0) && !math.IsNaN(gTrial) && gTrial <= g+1e-4*dec {
				copy(mu, trial)
				g = eval(mu, grad)
				accepted = true
				break
			}
			step /= 2
		}
		if !accepted {
			break
		}
	}
	// Final primal from the last accepted μ.
	eval(mu, nil)
	return append([]float64(nil), x...), iterations, evaluations, converged
}
