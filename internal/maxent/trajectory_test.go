package maxent

import (
	"math"
	"testing"

	"privacymaxent/internal/constraint"
	"privacymaxent/internal/solver"
)

// TestTrajectoryParityAcrossAlgorithms: every algorithm — dual (LBFGS,
// SteepestDescent, Newton) and scaling (GIS, IIS) — fills
// Solution.Trajectory with the same event shape: iterations numbered
// contiguously from 1 per component, finite objective and gradient, and
// a final entry count equal to Stats.Iterations, so audits are
// solver-agnostic.
func TestTrajectoryParityAcrossAlgorithms(t *testing.T) {
	for _, alg := range []Algorithm{LBFGS, SteepestDescent, GIS, Newton, IIS} {
		tbl, d, _, sys := paperSystem(t)
		s3 := tbl.Schema().SA().MustCode("Pneumonia")
		if err := constraint.AddKnowledge(sys, knowledgeFor(tbl, d, 2, s3, 0.5)); err != nil {
			t.Fatal(err)
		}
		sol, err := Solve(sys, Options{
			Algorithm:    alg,
			CaptureTrace: true,
			Solver:       solver.Options{MaxIterations: 20000, GradTol: 1e-10},
		})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if len(sol.Trajectory) == 0 {
			t.Fatalf("%v: empty trajectory", alg)
		}
		if len(sol.Trajectory) != sol.Stats.Iterations {
			t.Fatalf("%v: trajectory has %d points, Stats.Iterations = %d",
				alg, len(sol.Trajectory), sol.Stats.Iterations)
		}
		for i, p := range sol.Trajectory {
			if p.Component != 0 {
				t.Fatalf("%v: undecomposed solve reported component %d", alg, p.Component)
			}
			if p.Iteration != i+1 {
				t.Fatalf("%v: iteration %d at position %d (want contiguous from 1)", alg, p.Iteration, i)
			}
			if math.IsNaN(p.Objective) || math.IsInf(p.Objective, 0) {
				t.Fatalf("%v: non-finite objective at iteration %d", alg, p.Iteration)
			}
			if math.IsNaN(p.GradNorm) || p.GradNorm < 0 {
				t.Fatalf("%v: bad grad norm %g at iteration %d", alg, p.GradNorm, p.Iteration)
			}
			if p.Step < 0 || p.LineSearchEvals < 0 {
				t.Fatalf("%v: negative line-search fields at iteration %d: %+v", alg, p.Iteration, p)
			}
		}
		// The final point reflects the converged state.
		last := sol.Trajectory[len(sol.Trajectory)-1]
		if sol.Stats.Converged && last.GradNorm > 1e-9 {
			t.Fatalf("%v: converged but final traced grad norm %g", alg, last.GradNorm)
		}
	}
}

// TestTrajectoryOffByDefault: without CaptureTrace the solve keeps its
// trace-free hot path and records nothing.
func TestTrajectoryOffByDefault(t *testing.T) {
	tbl, d, _, sys := paperSystem(t)
	s3 := tbl.Schema().SA().MustCode("Pneumonia")
	if err := constraint.AddKnowledge(sys, knowledgeFor(tbl, d, 2, s3, 0.5)); err != nil {
		t.Fatal(err)
	}
	sol, err := Solve(sys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Trajectory != nil {
		t.Fatalf("trajectory recorded without CaptureTrace: %d points", len(sol.Trajectory))
	}
}

// TestTrajectoryDecomposedComponents: a decomposed parallel solve merges
// per-component trajectories deterministically — grouped by ascending
// component, contiguous iterations within each, total length equal to the
// summed Stats.Iterations.
func TestTrajectoryDecomposedComponents(t *testing.T) {
	d, selected := solveWorkload(t)
	sys := workloadSystem(t, d, selected)
	sol, err := Solve(sys, Options{Decompose: true, CaptureTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Stats.Components < 2 {
		t.Skipf("workload produced %d components; need ≥2", sol.Stats.Components)
	}
	if len(sol.Trajectory) != sol.Stats.Iterations {
		t.Fatalf("trajectory has %d points, Stats.Iterations = %d",
			len(sol.Trajectory), sol.Stats.Iterations)
	}
	prevComp, iterInComp := 0, 0
	seen := map[int]bool{}
	for _, p := range sol.Trajectory {
		if p.Component != prevComp {
			if p.Component < prevComp || seen[p.Component] {
				t.Fatalf("components not grouped in ascending order: %d after %d", p.Component, prevComp)
			}
			seen[prevComp] = true
			prevComp, iterInComp = p.Component, 0
		}
		iterInComp++
		if p.Iteration != iterInComp {
			t.Fatalf("component %d: iteration %d at in-component position %d", p.Component, p.Iteration, iterInComp)
		}
	}
}
