package maxent

import (
	"fmt"
	"time"

	"privacymaxent/internal/telemetry"
)

// Stats reports how a solve went — the quantities behind the paper's
// Figure 7 (running time and iteration counts).
type Stats struct {
	// Iterations is the number of optimizer iterations (GIS: scaling
	// rounds).
	Iterations int
	// Evaluations counts objective/gradient evaluations.
	Evaluations int
	// Duration is wall-clock solve time including presolve.
	Duration time.Duration
	// Converged reports whether the optimizer met its tolerance.
	Converged bool
	// MaxViolation is the worst |A x − c| entry over the *original*
	// system at the returned solution.
	MaxViolation float64
	// ActiveVariables is the number of variables given to the optimizer
	// after presolve (0 means presolve solved everything).
	ActiveVariables int
	// FixedVariables is the number of variables pinned by presolve.
	FixedVariables int
	// IrrelevantBuckets counts buckets excluded by decomposition.
	IrrelevantBuckets int
	// Components counts the independent sub-problems decomposition
	// produced (0 when decomposition is off or nothing needed solving).
	Components int
	// Workers is the number of concurrent component solvers the run
	// actually used (1 for sequential paths; see Options.Workers). For
	// non-decomposed solves — which have no component fan-out — it
	// reports the kernel width instead, the solve's actual parallelism.
	Workers int
	// KernelWorkers is the data-parallel width of the dual kernels — the
	// fused Aᵀλ → exp → partition pass and the blocked gradient pass —
	// inside a single (component) solve. 1 when the kernels ran serially
	// or the algorithm has none (GIS/IIS); see Options.KernelWorkers.
	KernelWorkers int
	// ReducedDualDim is the dimension of the dual problem the numeric
	// optimizer actually ran on, summed over components. Without
	// Options.Reduce it equals the presolved row count; with it, only the
	// coupling rows (knowledge + individual) remain after the
	// Schur-style elimination of bucket-local invariants.
	ReducedDualDim int
	// EliminatedBuckets counts buckets the structural presolve
	// (Options.Reduce) assigned their closed-form within-bucket posterior
	// without entering the numeric solve — the paper's irrelevant buckets
	// (Definition 5.6, Theorem 5), detected on the assembled system.
	EliminatedBuckets int
	// ReusedComponents counts decomposition components a delta solve
	// (SolveDelta) carried over verbatim from its baseline — identical
	// rows, so the converged posterior slice and duals transfer with
	// zero iterations. Always 0 for cold solves.
	ReusedComponents int
	// DirtyComponents counts components a delta solve had to re-solve
	// numerically (changed or new relative to the baseline), warm-started
	// from the baseline duals where available. Always 0 for cold solves.
	DirtyComponents int
}

// String renders the solver counters in one line, e.g.
//
//	142 iterations, 218 evaluations, 3.1ms (converged=true, max violation 2.1e-10)
//
// so commands share one format instead of hand-assembling the counts.
// The worst residual always appears — it is the feasibility signal audits
// are built on — and the worker count is added when a parallel
// decomposed solve actually used more than one.
func (s Stats) String() string {
	out := fmt.Sprintf("%d iterations, %d evaluations, %v (converged=%v, max violation %.2e)",
		s.Iterations, s.Evaluations, s.Duration.Round(time.Microsecond), s.Converged, s.MaxViolation)
	if s.Workers > 1 {
		out += fmt.Sprintf(", %d workers", s.Workers)
	}
	if s.KernelWorkers > 1 && s.KernelWorkers != s.Workers {
		out += fmt.Sprintf(", %d kernel workers", s.KernelWorkers)
	}
	if s.EliminatedBuckets > 0 || s.ReducedDualDim > 0 {
		out += fmt.Sprintf(", reduced dual dim %d", s.ReducedDualDim)
	}
	if s.EliminatedBuckets > 0 {
		out += fmt.Sprintf(", %d buckets closed-form", s.EliminatedBuckets)
	}
	if s.ReusedComponents > 0 || s.DirtyComponents > 0 {
		out += fmt.Sprintf(", delta %d reused/%d dirty", s.ReusedComponents, s.DirtyComponents)
	}
	return out
}

// Merge folds the statistics of another (sub-)solve into s, the helper
// behind multi-component solves: counts add, convergence ANDs,
// MaxViolation and Workers take the maximum, and Duration takes the
// maximum too because component solves overlap in time — the caller
// owning the wall clock overwrites Duration afterwards if it measured
// the whole run.
func (s *Stats) Merge(o Stats) {
	s.Iterations += o.Iterations
	s.Evaluations += o.Evaluations
	s.FixedVariables += o.FixedVariables
	s.ActiveVariables += o.ActiveVariables
	s.IrrelevantBuckets += o.IrrelevantBuckets
	s.Components += o.Components
	s.ReducedDualDim += o.ReducedDualDim
	s.EliminatedBuckets += o.EliminatedBuckets
	s.ReusedComponents += o.ReusedComponents
	s.DirtyComponents += o.DirtyComponents
	s.Converged = s.Converged && o.Converged
	if o.MaxViolation > s.MaxViolation {
		s.MaxViolation = o.MaxViolation
	}
	if o.Duration > s.Duration {
		s.Duration = o.Duration
	}
	if o.Workers > s.Workers {
		s.Workers = o.Workers
	}
	if o.KernelWorkers > s.KernelWorkers {
		s.KernelWorkers = o.KernelWorkers
	}
}

// record publishes the solve statistics to the registry (nil-safe): one
// observation per series the paper's Figure 7 tracks, plus the
// decomposition hit-rate counters (closed-form buckets / total buckets).
func (s Stats) record(reg *telemetry.Registry, totalBuckets int) {
	if reg == nil {
		return
	}
	reg.Counter("pmaxent_solve_total").Add(1)
	reg.Histogram("pmaxent_solve_duration_seconds", telemetry.DurationBuckets).Observe(s.Duration.Seconds())
	reg.Histogram("pmaxent_solve_iterations", telemetry.CountBuckets).Observe(float64(s.Iterations))
	reg.Histogram("pmaxent_solve_evaluations", telemetry.CountBuckets).Observe(float64(s.Evaluations))
	reg.Histogram("pmaxent_solve_active_variables", telemetry.CountBuckets).Observe(float64(s.ActiveVariables))
	reg.Gauge("pmaxent_solve_workers").Set(float64(s.Workers))
	reg.Gauge("pmaxent_solve_kernel_workers").Set(float64(s.KernelWorkers))
	reg.Histogram("pmaxent_solve_reduced_dual_dim", telemetry.CountBuckets).Observe(float64(s.ReducedDualDim))
	if s.EliminatedBuckets > 0 {
		reg.Counter("pmaxent_solve_eliminated_buckets_total").Add(int64(s.EliminatedBuckets))
	}
	if s.ReusedComponents > 0 {
		reg.Counter("pmaxent_solve_reused_components_total").Add(int64(s.ReusedComponents))
	}
	if s.DirtyComponents > 0 {
		reg.Counter("pmaxent_solve_dirty_components_total").Add(int64(s.DirtyComponents))
	}
	if !s.Converged {
		reg.Counter("pmaxent_solve_unconverged_total").Add(1)
	}
	if totalBuckets > 0 {
		reg.Counter("pmaxent_decompose_buckets_total").Add(int64(totalBuckets))
		reg.Counter("pmaxent_decompose_buckets_closed_form_total").Add(int64(s.IrrelevantBuckets))
	}
}
