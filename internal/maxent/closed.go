package maxent

import "privacymaxent/internal/constraint"

// Uniform returns the closed-form maximum-entropy solution when no
// background knowledge is present (Theorem 5 / Eq. 9 / Appendix B): within
// every bucket the QI and SA sides are independent,
//
//	P(q, s, b) = P(q, b) · P(s, b) / P(b),
//
// which is exactly the "portion of S in bucket B" rule existing work uses.
// It satisfies every QI- and SA-invariant by construction.
func Uniform(sp *constraint.Space) []float64 {
	d := sp.Data()
	x := make([]float64, sp.Len())
	for i := 0; i < sp.Len(); i++ {
		t := sp.Term(i)
		pb := d.PB(t.Bucket)
		if pb == 0 {
			continue
		}
		x[i] = d.PQB(t.QID, t.Bucket) * d.PSB(t.SA, t.Bucket) / pb
	}
	return x
}
