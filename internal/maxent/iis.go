package maxent

import (
	"fmt"
	"math"

	"privacymaxent/internal/constraint"
	"privacymaxent/internal/linalg"
	"privacymaxent/internal/solver"
)

// runIIS solves the reduced MaxEnt system with improved iterative scaling
// (Della Pietra, Della Pietra & Lafferty [20]), the second maxent-specific
// method the paper cites. Where GIS divides every update by the global
// feature-sum bound C, IIS solves, per constraint i, the one-dimensional
// equation
//
//	Σ_j p_j(λ) · f_i(j) · exp(δ_i · f#(j)) = c'_i,   f#(j) = Σ_i f_i(j),
//
// for the step δ_i (here by a guarded 1-D Newton iteration), which makes
// much longer steps than GIS when feature sums vary across variables.
// Like GIS it requires non-negative coefficients and recovers the total
// mass from the surviving QI-invariant rows.
func runIIS(a *linalg.CSR, c []float64, red *reduced, opts Options) (gisResult, error) {
	n := a.Cols()
	m := a.Rows()

	var mass float64
	haveQI := false
	for i, row := range red.rows {
		for _, v := range row.coeffs {
			if v < 0 {
				return gisResult{}, fmt.Errorf("maxent: IIS requires non-negative coefficients; constraint %q has %g (use LBFGS)", row.label, v)
			}
		}
		if row.kind == constraint.QIInvariant {
			mass += c[i]
			haveQI = true
		}
	}
	if !haveQI || mass <= 0 {
		return gisResult{}, fmt.Errorf("maxent: IIS could not determine total mass (no surviving QI-invariants)")
	}

	// Feature sums f#(j).
	fsum := make([]float64, n)
	for r := 0; r < m; r++ {
		cols, vals := a.Row(r)
		for k, col := range cols {
			fsum[col] += vals[k]
		}
	}

	target := make([]float64, m)
	for i := range c {
		target[i] = c[i] / mass
		if target[i] < -presolveTol {
			return gisResult{}, &ErrInfeasible{Reason: fmt.Sprintf("constraint %q has negative target %g", red.rows[i].label, c[i])}
		}
	}

	lambda := make([]float64, m)
	logp := make([]float64, n)
	p := make([]float64, n)
	expect := make([]float64, m)

	maxIter := opts.Solver.MaxIterations
	if maxIter <= 0 {
		maxIter = 2000
	}
	tol := opts.Solver.GradTol
	if tol <= 0 {
		tol = 1e-9
	}

	res := gisResult{x: make([]float64, n)}
	for iter := 0; iter < maxIter; iter++ {
		if opts.Solver.Interrupt != nil && opts.Solver.Interrupt() {
			return gisResult{}, solver.ErrInterrupted
		}
		// Model p_j ∝ exp(Σ_i λ_i A_ij), normalized by log-sum-exp.
		linalg.Fill(logp, 0)
		for r := 0; r < m; r++ {
			if lambda[r] == 0 {
				continue
			}
			cols, vals := a.Row(r)
			for k, col := range cols {
				logp[col] += lambda[r] * vals[k]
			}
		}
		maxLog := math.Inf(-1)
		for _, v := range logp {
			if v > maxLog {
				maxLog = v
			}
		}
		var z float64
		for j, v := range logp {
			p[j] = math.Exp(v - maxLog)
			z += p[j]
		}
		inv := 1 / z
		for j := range p {
			p[j] *= inv
		}

		a.MulVec(p, expect)
		var worst float64
		for i := range expect {
			if dev := math.Abs(expect[i]-target[i]) * mass; dev > worst {
				worst = dev
			}
		}
		res.iterations = iter + 1
		if tr := opts.Solver.Trace; tr != nil {
			// Mirror GIS: 1-based rounds, entropy objective, worst
			// deviation as the gradient stand-in.
			tr(solver.TraceEvent{Iteration: iter + 1, F: scaledEntropy(p, mass), GradNorm: worst})
		}
		if worst <= tol {
			res.converged = true
			break
		}

		// Per-constraint Newton solve for δ_i.
		for i := 0; i < m; i++ {
			if target[i] <= presolveTol {
				lambda[i] -= 50
				continue
			}
			if expect[i] <= 0 {
				return gisResult{}, &ErrInfeasible{Reason: fmt.Sprintf("constraint %q wants mass %g but model can place none", red.rows[i].label, c[i])}
			}
			cols, vals := a.Row(i)
			delta := 0.0
			for newton := 0; newton < 25; newton++ {
				var g, dg float64
				for k, col := range cols {
					e := math.Exp(delta * fsum[col])
					t := p[col] * vals[k] * e
					g += t
					dg += t * fsum[col]
				}
				g -= target[i]
				if math.Abs(g) <= 1e-14 || dg <= 0 {
					break
				}
				step := g / dg
				// Damp huge steps to stay in exp's sane range.
				if step > 30 {
					step = 30
				} else if step < -30 {
					step = -30
				}
				delta -= step
			}
			lambda[i] += delta
		}
	}

	for j := range p {
		res.x[j] = mass * p[j]
	}
	return res, nil
}
