package maxent

import (
	"context"
	"time"

	"privacymaxent/internal/constraint"
	"privacymaxent/internal/telemetry"
)

// Baseline is the reusable outcome of a previous solve: the system it
// solved and its converged solution. SolveDelta diffs a new system
// against it and re-solves only what changed.
type Baseline struct {
	Sys *constraint.System
	Sol *Solution
}

// usable reports whether the baseline can seed a delta solve of sys: it
// must exist, cover the same term space, and be converged — reusing an
// unconverged posterior would launder a failed solve into a "clean"
// component.
func (b *Baseline) usable(sys *constraint.System) bool {
	return b != nil && b.Sys != nil && b.Sol != nil &&
		b.Sys.Space() == sys.Space() &&
		b.Sol.Stats.Converged &&
		len(b.Sol.X) == sys.Space().Len()
}

// SolveDelta is SolveDeltaContext with a background context.
func SolveDelta(sys *constraint.System, base *Baseline, opts Options) (*Solution, error) {
	return SolveDeltaContext(context.Background(), sys, base, opts)
}

// SolveDeltaContext solves sys incrementally against a baseline: the
// constraint differ (constraint.DiffSystems) classifies every connected
// component, clean components copy the baseline's converged posterior
// slice and duals verbatim (zero iterations, bit-identical by
// construction — the subproblem is the same deterministic program), and
// dirty or new components are re-solved warm-started from the baseline
// duals. Stats.ReusedComponents / Stats.DirtyComponents record the
// split. Decomposition is forced on — it is the unit of reuse — and an
// unusable baseline (nil, different space, or unconverged) falls back to
// a full SolveContext, so the delta entry point is always safe to call.
func SolveDeltaContext(ctx context.Context, sys *constraint.System, base *Baseline, opts Options) (*Solution, error) {
	if !base.usable(sys) {
		return SolveContext(ctx, sys, opts)
	}
	start := time.Now()
	sp := sys.Space()
	opts.Decompose = true
	ctx, span := telemetry.Start(ctx, "maxent.solve.delta",
		telemetry.String("algorithm", opts.Algorithm.String()),
		telemetry.Int("variables", sp.Len()),
		telemetry.Int("constraints", sys.Len()))
	defer span.End()
	reg := telemetry.Metrics(ctx)
	logger := telemetry.Logger(ctx)
	obs := telemetry.SolveObserverFrom(ctx)

	eliminated := 0
	if opts.Reduce {
		eliminated = sp.Data().NumBuckets() - len(constraint.TouchedBuckets(sys))
	}
	logger.Info("solve.start",
		"algorithm", opts.Algorithm.String(),
		"decompose", true,
		"delta", true,
		"variables", sp.Len(),
		"constraints", sys.Len())
	startAttrs := []telemetry.Attr{
		telemetry.String("algorithm", opts.Algorithm.String()),
		telemetry.Bool("decompose", true),
		telemetry.Bool("delta", true),
		telemetry.Int("variables", sp.Len()),
		telemetry.Int("constraints", sys.Len()),
	}
	if opts.Reduce {
		startAttrs = append(startAttrs, telemetry.Int("eliminated_buckets", eliminated))
	}
	observe(obs, "solve.start", startAttrs...)

	sol := &Solution{space: sp, X: Uniform(sp)}
	sol.Stats.Workers = 1
	sol.Stats.KernelWorkers = 1
	sol.Stats.EliminatedBuckets = eliminated

	finish := func() {
		sol.Stats.MaxViolation = sys.MaxViolation(sol.X)
		sol.Stats.Duration = time.Since(start)
		span.SetAttr(
			telemetry.Int("iterations", sol.Stats.Iterations),
			telemetry.Int("components", sol.Stats.Components),
			telemetry.Int("reused_components", sol.Stats.ReusedComponents),
			telemetry.Int("dirty_components", sol.Stats.DirtyComponents),
			telemetry.Bool("converged", sol.Stats.Converged))
		sol.Stats.record(reg, sp.Data().NumBuckets())
		logger.Info("solve.done",
			"iterations", sol.Stats.Iterations,
			"evaluations", sol.Stats.Evaluations,
			"components", sol.Stats.Components,
			"reused_components", sol.Stats.ReusedComponents,
			"dirty_components", sol.Stats.DirtyComponents,
			"reduced_dual_dim", sol.Stats.ReducedDualDim,
			"eliminated_buckets", sol.Stats.EliminatedBuckets,
			"converged", sol.Stats.Converged,
			"max_violation", sol.Stats.MaxViolation,
			"duration", sol.Stats.Duration.String())
		observe(obs, "solve.done",
			telemetry.Int("iterations", sol.Stats.Iterations),
			telemetry.Int("evaluations", sol.Stats.Evaluations),
			telemetry.Int("components", sol.Stats.Components),
			telemetry.Int("reused_components", sol.Stats.ReusedComponents),
			telemetry.Int("dirty_components", sol.Stats.DirtyComponents),
			telemetry.Int("reduced_dual_dim", sol.Stats.ReducedDualDim),
			telemetry.Int("eliminated_buckets", sol.Stats.EliminatedBuckets),
			telemetry.Bool("converged", sol.Stats.Converged),
			telemetry.Float("max_violation", sol.Stats.MaxViolation),
			telemetry.String("duration", sol.Stats.Duration.String()))
	}

	_, dspan := telemetry.Start(ctx, "maxent.solve.diff")
	relevant := constraint.TouchedBuckets(sys)
	sol.Stats.IrrelevantBuckets = sp.Data().NumBuckets() - len(relevant)
	if len(relevant) == 0 {
		dspan.SetAttr(telemetry.Int("relevant_buckets", 0))
		dspan.End()
		observe(obs, "decompose",
			telemetry.Int("relevant_buckets", 0),
			telemetry.Int("irrelevant_buckets", sol.Stats.IrrelevantBuckets),
			telemetry.Int("components", 0))
		// No knowledge at all: the closed form is exact (Theorem 4).
		sol.Stats.Converged = true
		finish()
		return sol, nil
	}

	diff := constraint.DiffSystems(base.Sys, sys)
	dspan.SetAttr(
		telemetry.Int("components", len(diff.Components)),
		telemetry.Int("clean", diff.Clean),
		telemetry.Int("dirty", diff.Dirty),
		telemetry.Int("new", diff.New))
	dspan.End()
	observe(obs, "decompose",
		telemetry.Int("relevant_buckets", len(relevant)),
		telemetry.Int("irrelevant_buckets", sol.Stats.IrrelevantBuckets),
		telemetry.Int("components", len(diff.Components)))

	baseDual := make(map[string]float64, len(base.Sol.Duals))
	for _, d := range base.Sol.Duals {
		baseDual[d.Label] = d.Lambda
	}
	comps := make([]solveComponent, 0, len(diff.Components))
	for _, cd := range diff.Components {
		if cd.Class == constraint.DiffClean {
			// Relabel the baseline duals onto the new rows via the differ's
			// content pairing; old rows presolve dropped carry no dual and
			// are skipped — exactly as a cold solve of this component would
			// skip them.
			var duals []ConstraintDual
			for k, ri := range cd.Rows {
				if lam, ok := baseDual[base.Sys.At(cd.OldRows[k]).Label]; ok {
					c := sys.At(ri)
					duals = append(duals, ConstraintDual{Label: c.Label, Kind: c.Kind, Lambda: lam})
				}
			}
			comps = append(comps, solveComponent{
				reuse: &componentReuse{buckets: cd.Buckets, src: base.Sol.X, duals: duals},
			})
			continue
		}
		rows := make([]rowData, 0, len(cd.Rows))
		for _, ri := range cd.Rows {
			c := sys.At(ri)
			rows = append(rows, rowData{
				terms:  c.Terms,
				coeffs: c.Coeffs,
				rhs:    c.RHS,
				label:  c.Label,
				kind:   c.Kind,
			})
		}
		comps = append(comps, solveComponent{rows: rows, dirty: true})
	}
	// Warm-start the dirty/new components from the baseline duals; a
	// caller-supplied seed is appended after so it wins on label clashes
	// (warmMap keeps the last entry per label).
	if len(base.Sol.Duals) > 0 {
		merged := make([]ConstraintDual, 0, len(base.Sol.Duals)+len(opts.WarmStart))
		merged = append(merged, base.Sol.Duals...)
		merged = append(merged, opts.WarmStart...)
		opts.WarmStart = merged
	}

	sol.Stats.Components = len(comps)
	sol.Stats.Converged = true
	if err := solveComponents(ctx, sol, comps, opts); err != nil {
		logger.Error("solve.failed", "error", err.Error())
		observe(obs, "solve.failed", telemetry.String("error", err.Error()))
		return nil, err
	}
	finish()
	return sol, nil
}
