package maxent

import (
	"math"

	"privacymaxent/internal/dataset"
)

// Posterior folds the joint solution P(Q,S,B) into the adversary's
// posterior P(S | Q) = Σ_B P(Q,S,B) / P(Q), the quantity privacy metrics
// consume (Sec. 3.1). P(Q) comes straight from the published data because
// QI attributes are not disguised.
func (s *Solution) Posterior() *dataset.Conditional {
	d := s.space.Data()
	u := d.Universe()
	cond := dataset.NewConditional(u, d.SACardinality())
	for i := 0; i < s.space.Len(); i++ {
		t := s.space.Term(i)
		cond.Add(t.QID, t.SA, s.X[i])
	}
	for qid := 0; qid < u.Len(); qid++ {
		pq := u.P(qid)
		if pq <= 0 {
			continue
		}
		row := cond.Row(qid)
		for sa := range row {
			row[sa] /= pq
		}
	}
	// Project out residual solver drift: each row is a conditional
	// distribution and must sum to exactly one.
	cond.Normalize()
	return cond
}

// JointEntropy returns H(Q,S,B) = −Σ P(Q,S,B) log₂ P(Q,S,B), the
// objective of Eq. (3). Zero terms contribute zero by the usual
// convention.
func (s *Solution) JointEntropy() float64 {
	var h float64
	for _, v := range s.X {
		if v > 0 {
			h -= v * math.Log2(v)
		}
	}
	return h
}

// ConditionalEntropy returns H(S | Q,B) from Eq. (2), which differs from
// the joint entropy by the constant H(Q,B) of the published data.
func (s *Solution) ConditionalEntropy() float64 {
	d := s.space.Data()
	var h float64
	for i := 0; i < s.space.Len(); i++ {
		v := s.X[i]
		if v <= 0 {
			continue
		}
		t := s.space.Term(i)
		pqb := d.PQB(t.QID, t.Bucket)
		if pqb <= 0 {
			continue
		}
		// P(Q,B)·P(S|Q,B)·log P(S|Q,B) with P(S|Q,B) = v / P(Q,B).
		h -= v * math.Log2(v/pqb)
	}
	return h
}

// ConditionalInBucket returns P(S | Q = qid, B = b) over all SA codes —
// the per-bucket posterior of Eq. (1)'s generalization. The slice is
// freshly allocated; rows for (q, b) pairs with no mass return zeros.
func (s *Solution) ConditionalInBucket(qid, b int) []float64 {
	d := s.space.Data()
	out := make([]float64, d.SACardinality())
	pqb := d.PQB(qid, b)
	if pqb <= 0 {
		return out
	}
	for _, id := range s.space.TermsInBucket(b) {
		t := s.space.Term(id)
		if t.QID == qid {
			out[t.SA] = s.X[id] / pqb
		}
	}
	return out
}
