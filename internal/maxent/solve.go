package maxent

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"privacymaxent/internal/constraint"
	"privacymaxent/internal/linalg"
	"privacymaxent/internal/solver"
)

// Algorithm selects the numerical method for the dual minimization.
type Algorithm int

const (
	// LBFGS is the paper's choice (Nocedal's limited-memory BFGS) and
	// the default.
	LBFGS Algorithm = iota
	// SteepestDescent is the slow first-order baseline.
	SteepestDescent
	// GIS is Darroch & Ratcliff's generalized iterative scaling, one of
	// the maxent-specific methods the paper cites (Sec. 3.3).
	GIS
	// Newton is the damped Newton method (dense Hessian + Cholesky);
	// suited to duals with few constraints.
	Newton
	// IIS is Della Pietra et al.'s improved iterative scaling, the other
	// maxent-specific method the paper cites (Sec. 3.3).
	IIS
)

// String names the algorithm.
func (a Algorithm) String() string {
	switch a {
	case LBFGS:
		return "lbfgs"
	case SteepestDescent:
		return "steepest"
	case GIS:
		return "gis"
	case Newton:
		return "newton"
	case IIS:
		return "iis"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Options configures Solve.
type Options struct {
	// Algorithm picks the dual solver; default LBFGS.
	Algorithm Algorithm
	// Solver tunes the underlying optimizer.
	Solver solver.Options
	// Decompose enables the Sec. 5.5 optimization: buckets irrelevant to
	// the background knowledge (Definition 5.6) take their closed-form
	// within-bucket MaxEnt distribution (Theorem 5 / Proposition 1), and
	// the relevant buckets split into connected components — groups of
	// buckets linked through shared knowledge constraints, the converse
	// of Lemma 2's independence — each solved as an independent
	// sub-problem.
	Decompose bool
	// Workers bounds how many components are solved concurrently when
	// Decompose is on; values below 2 solve sequentially. Components
	// touch disjoint variables, so parallel solves need no locking of
	// the solution vector.
	Workers int
}

// Stats reports how a solve went — the quantities behind the paper's
// Figure 7 (running time and iteration counts).
type Stats struct {
	// Iterations is the number of optimizer iterations (GIS: scaling
	// rounds).
	Iterations int
	// Evaluations counts objective/gradient evaluations.
	Evaluations int
	// Duration is wall-clock solve time including presolve.
	Duration time.Duration
	// Converged reports whether the optimizer met its tolerance.
	Converged bool
	// MaxViolation is the worst |A x − c| entry over the *original*
	// system at the returned solution.
	MaxViolation float64
	// ActiveVariables is the number of variables given to the optimizer
	// after presolve (0 means presolve solved everything).
	ActiveVariables int
	// FixedVariables is the number of variables pinned by presolve.
	FixedVariables int
	// IrrelevantBuckets counts buckets excluded by decomposition.
	IrrelevantBuckets int
	// Components counts the independent sub-problems decomposition
	// produced (0 when decomposition is off or nothing needed solving).
	Components int
}

// ConstraintDual pairs a constraint with its Lagrange multiplier at the
// solution — its shadow price. Large-magnitude multipliers mark the
// constraints that most strongly shape the MaxEnt distribution; for
// knowledge rows this is a direct influence measure of each background
// fact (only available from the dual algorithms, i.e. not GIS/IIS
// scaling paths, and only for rows that survive presolve).
type ConstraintDual struct {
	Label  string
	Kind   constraint.Kind
	Lambda float64
}

// Solution is a maximum-entropy assignment of every probability term.
type Solution struct {
	space *constraint.Space
	// X holds P(Q,S,B) for every term in the space.
	X []float64
	// Stats describes the solve.
	Stats Stats
	// Duals holds the Lagrange multipliers of the surviving constraints
	// (empty for scaling algorithms, which do not expose a meaningful
	// per-row multiplier in the same normalization).
	Duals []ConstraintDual
}

// Space returns the term space the solution is indexed by.
func (s *Solution) Space() *constraint.Space { return s.space }

// Joint returns P(q, s, b), zero for terms outside the space.
func (s *Solution) Joint(t constraint.Term) float64 {
	id, ok := s.space.Index(t)
	if !ok {
		return 0
	}
	return s.X[id]
}

// SolveConstraints is the low-level entry point: it maximizes entropy
// over n variables subject to the given constraints, starting the
// bookkeeping from init (variables never mentioned by any constraint keep
// their init value; everything else is determined by presolve or the
// dual). It powers both the standard P(Q,S,B) model and the
// pseudonym-expanded P(i,Q,S,B) model of Sec. 6.
func SolveConstraints(n int, cons []constraint.Constraint, init []float64, opts Options) ([]float64, Stats, error) {
	if len(init) != n {
		return nil, Stats{}, fmt.Errorf("maxent: init has %d values, want %d", len(init), n)
	}
	start := time.Now()
	x := make([]float64, n)
	copy(x, init)

	rows := make([]rowData, 0, len(cons))
	for i := range cons {
		c := &cons[i]
		rows = append(rows, rowData{
			terms:  append([]int(nil), c.Terms...),
			coeffs: append([]float64(nil), c.Coeffs...),
			rhs:    c.RHS,
			label:  c.Label,
			kind:   c.Kind,
		})
	}
	red, err := presolve(n, rows)
	if err != nil {
		return nil, Stats{}, err
	}
	var stats Stats
	for j := 0; j < red.n; j++ {
		if red.fixed[j] {
			x[j] = red.value[j]
		}
	}
	stats.FixedVariables = red.numFixed()
	stats.ActiveVariables = len(red.active)

	if len(red.active) > 0 {
		sol := &Solution{X: x}
		if err := solveReduced(sol, red, opts); err != nil {
			return nil, Stats{}, err
		}
		stats.Iterations = sol.Stats.Iterations
		stats.Evaluations = sol.Stats.Evaluations
		stats.Converged = sol.Stats.Converged
	} else {
		stats.Converged = true
	}

	var worst float64
	for i := range cons {
		if r := cons[i].Residual(x); r > worst {
			worst = r
		} else if -r > worst {
			worst = -r
		}
	}
	stats.MaxViolation = worst
	stats.Duration = time.Since(start)
	return x, stats, nil
}

// Solve computes the maximum-entropy distribution subject to the system's
// constraints. The system must contain the data invariants (and any
// knowledge constraints); zero-invariants are implicit in the space.
func Solve(sys *constraint.System, opts Options) (*Solution, error) {
	start := time.Now()
	sp := sys.Space()
	sol := &Solution{space: sp, X: Uniform(sp)}

	if opts.Decompose {
		relevant := constraint.RelevantBuckets(sys)
		sol.Stats.IrrelevantBuckets = sp.Data().NumBuckets() - len(relevant)
		if len(relevant) == 0 {
			// No knowledge at all: the closed form is exact (Theorem 4).
			sol.Stats.Converged = true
			sol.Stats.MaxViolation = sys.MaxViolation(sol.X)
			sol.Stats.Duration = time.Since(start)
			return sol, nil
		}
		components := componentRows(sys, relevant)
		sol.Stats.Components = len(components)
		sol.Stats.Converged = true
		if err := solveComponents(sol, components, opts); err != nil {
			return nil, err
		}
		sol.Stats.MaxViolation = sys.MaxViolation(sol.X)
		sol.Stats.Duration = time.Since(start)
		return sol, nil
	}

	red, err := presolve(sp.Len(), systemRows(sys, nil))
	if err != nil {
		return nil, err
	}
	for j := 0; j < red.n; j++ {
		if red.fixed[j] {
			sol.X[j] = red.value[j]
		}
	}
	sol.Stats.FixedVariables = red.numFixed()
	sol.Stats.ActiveVariables = len(red.active)

	if len(red.active) > 0 {
		if err := solveReduced(sol, red, opts); err != nil {
			return nil, err
		}
	} else {
		sol.Stats.Converged = true
	}

	sol.Stats.MaxViolation = sys.MaxViolation(sol.X)
	sol.Stats.Duration = time.Since(start)
	return sol, nil
}

// componentRows groups the relevant buckets into connected components:
// every knowledge constraint links all the buckets it touches (union by
// rank would be overkill at these sizes; plain union-find with path
// compression). Each component receives its buckets' data invariants and
// its knowledge rows.
func componentRows(sys *constraint.System, relevant []int) [][]rowData {
	sp := sys.Space()
	parent := make(map[int]int, len(relevant))
	for _, b := range relevant {
		parent[b] = b
	}
	var find func(int) int
	find = func(b int) int {
		if parent[b] != b {
			parent[b] = find(parent[b])
		}
		return parent[b]
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	for i := 0; i < sys.Len(); i++ {
		c := sys.At(i)
		if c.Kind != constraint.Knowledge || len(c.Terms) == 0 {
			continue
		}
		first := sp.Term(c.Terms[0]).Bucket
		for _, t := range c.Terms[1:] {
			union(first, sp.Term(t).Bucket)
		}
	}

	// Partition constraints among component roots.
	rowsByRoot := map[int][]rowData{}
	addRow := func(root int, c *constraint.Constraint) {
		rowsByRoot[root] = append(rowsByRoot[root], rowData{
			terms:  append([]int(nil), c.Terms...),
			coeffs: append([]float64(nil), c.Coeffs...),
			rhs:    c.RHS,
			label:  c.Label,
			kind:   c.Kind,
		})
	}
	relevantSet := make(map[int]bool, len(relevant))
	for _, b := range relevant {
		relevantSet[b] = true
	}
	for i := 0; i < sys.Len(); i++ {
		c := sys.At(i)
		if len(c.Terms) == 0 {
			continue
		}
		b := sp.Term(c.Terms[0]).Bucket
		if c.Kind == constraint.Knowledge {
			addRow(find(b), c)
			continue
		}
		if relevantSet[b] {
			addRow(find(b), c)
		}
	}
	out := make([][]rowData, 0, len(rowsByRoot))
	// Deterministic order: ascending root bucket.
	roots := make([]int, 0, len(rowsByRoot))
	for r := range rowsByRoot {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	for _, r := range roots {
		out = append(out, rowsByRoot[r])
	}
	return out
}

// solveComponents presolves and solves each component, sequentially or
// with up to opts.Workers goroutines. Components write disjoint slices of
// sol.X; the stats are merged under a mutex.
func solveComponents(sol *Solution, components [][]rowData, opts Options) error {
	n := sol.space.Len()
	var mu sync.Mutex
	var firstErr error
	run := func(rows []rowData) {
		red, err := presolve(n, rows)
		if err == nil && len(red.active) > 0 {
			// solveReduced mutates only this component's entries of
			// sol.X (disjoint across components) and local stats.
			local := &Solution{X: sol.X}
			err = solveReduced(local, red, opts)
			mu.Lock()
			sol.Stats.Iterations += local.Stats.Iterations
			sol.Stats.Evaluations += local.Stats.Evaluations
			if !local.Stats.Converged {
				sol.Stats.Converged = false
			}
			mu.Unlock()
		}
		mu.Lock()
		if err != nil && firstErr == nil {
			firstErr = err
		}
		if err == nil {
			for j := 0; j < red.n; j++ {
				if red.fixed[j] {
					sol.X[j] = red.value[j]
				}
			}
			sol.Stats.FixedVariables += red.numFixed()
			sol.Stats.ActiveVariables += len(red.active)
		}
		mu.Unlock()
	}

	if opts.Workers < 2 || len(components) < 2 {
		for _, rows := range components {
			run(rows)
			if firstErr != nil {
				return firstErr
			}
		}
		return firstErr
	}

	sem := make(chan struct{}, opts.Workers)
	var wg sync.WaitGroup
	for _, rows := range components {
		wg.Add(1)
		sem <- struct{}{}
		go func(rows []rowData) {
			defer wg.Done()
			defer func() { <-sem }()
			run(rows)
		}(rows)
	}
	wg.Wait()
	return firstErr
}

// solveReduced runs the selected algorithm on the presolved system and
// writes the active variables' values into sol.X.
func solveReduced(sol *Solution, red *reduced, opts Options) error {
	// Assemble A over active columns.
	a := linalg.NewCSR(len(red.active))
	rhs := make([]float64, 0, len(red.rows))
	for _, row := range red.rows {
		cols := make([]int, len(row.terms))
		for k, j := range row.terms {
			cols[k] = red.newIdx[j]
			if cols[k] < 0 {
				return fmt.Errorf("maxent: internal error: surviving row %q references non-active variable", row.label)
			}
		}
		if err := a.AppendRow(cols, row.coeffs); err != nil {
			return fmt.Errorf("maxent: assembling reduced system: %w", err)
		}
		rhs = append(rhs, row.rhs)
	}

	xActive := make([]float64, len(red.active))
	switch opts.Algorithm {
	case GIS, IIS:
		run := runGIS
		if opts.Algorithm == IIS {
			run = runIIS
		}
		res, err := run(a, rhs, red, opts)
		if err != nil {
			return err
		}
		copy(xActive, res.x)
		sol.Stats.Iterations = res.iterations
		sol.Stats.Evaluations = res.iterations
		sol.Stats.Converged = res.converged
	case LBFGS, SteepestDescent, Newton:
		obj := newDualObjective(a, rhs)
		lambda0 := make([]float64, a.Rows())
		var res solver.Result
		var err error
		switch opts.Algorithm {
		case LBFGS:
			res, err = solver.LBFGS(obj, lambda0, opts.Solver)
		case Newton:
			res, err = solver.Newton(obj, lambda0, opts.Solver)
		default:
			res, err = solver.SteepestDescent(obj, lambda0, opts.Solver)
		}
		if err != nil {
			return fmt.Errorf("maxent: dual optimization: %w", err)
		}
		obj.Primal(res.X, xActive)
		sol.Stats.Iterations = res.Iterations
		sol.Stats.Evaluations = res.Evaluations
		sol.Stats.Converged = res.Converged
		for i, row := range red.rows {
			sol.Duals = append(sol.Duals, ConstraintDual{Label: row.label, Kind: row.kind, Lambda: res.X[i]})
		}
	default:
		return fmt.Errorf("maxent: unknown algorithm %v", opts.Algorithm)
	}

	for pos, j := range red.active {
		sol.X[j] = xActive[pos]
	}
	return nil
}
