package maxent

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"privacymaxent/internal/constraint"
	"privacymaxent/internal/linalg"
	"privacymaxent/internal/pool"
	"privacymaxent/internal/solver"
	"privacymaxent/internal/telemetry"
)

// Algorithm selects the numerical method for the dual minimization.
type Algorithm int

const (
	// LBFGS is the paper's choice (Nocedal's limited-memory BFGS) and
	// the default.
	LBFGS Algorithm = iota
	// SteepestDescent is the slow first-order baseline.
	SteepestDescent
	// GIS is Darroch & Ratcliff's generalized iterative scaling, one of
	// the maxent-specific methods the paper cites (Sec. 3.3).
	GIS
	// Newton is the damped Newton method (dense Hessian + Cholesky);
	// suited to duals with few constraints.
	Newton
	// IIS is Della Pietra et al.'s improved iterative scaling, the other
	// maxent-specific method the paper cites (Sec. 3.3).
	IIS
)

// String names the algorithm.
func (a Algorithm) String() string {
	switch a {
	case LBFGS:
		return "lbfgs"
	case SteepestDescent:
		return "steepest"
	case GIS:
		return "gis"
	case Newton:
		return "newton"
	case IIS:
		return "iis"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Options configures Solve.
type Options struct {
	// Algorithm picks the dual solver; default LBFGS.
	Algorithm Algorithm
	// Solver tunes the underlying optimizer.
	Solver solver.Options
	// Decompose enables the Sec. 5.5 optimization: buckets irrelevant to
	// the background knowledge (Definition 5.6) take their closed-form
	// within-bucket MaxEnt distribution (Theorem 5 / Proposition 1), and
	// the relevant buckets split into connected components — groups of
	// buckets linked through shared knowledge constraints, the converse
	// of Lemma 2's independence — each solved as an independent
	// sub-problem.
	Decompose bool
	// Workers bounds how many components are solved concurrently when
	// Decompose is on. The zero value means runtime.GOMAXPROCS(0);
	// negative values (or 1) solve sequentially. Components touch
	// disjoint variables, so parallel solves need no locking of the
	// solution vector. The count actually used is recorded in
	// Stats.Workers.
	Workers int
	// KernelWorkers bounds the data-parallel fan-out inside a single
	// dual solve: the fused Aᵀλ → exp → partition kernel and the blocked
	// A·x(λ) gradient kernel shard a fixed block partition over this
	// many goroutines, drawn from the same worker pool the component
	// solves use, so the two levels of parallelism never oversubscribe
	// GOMAXPROCS. This is what keeps the solve parallel in the regime
	// where decomposition goes idle — heavy background knowledge
	// coupling every bucket into one giant component. The zero value
	// inherits the resolved Workers count; negative values force serial
	// kernels. Kernel results are bit-identical at every worker count
	// (the partition and the reduction order are functions of the
	// problem shape, never of the worker count), so the knob trades
	// wall-clock only, never numerics. The width actually used is
	// recorded in Stats.KernelWorkers. Only the dual algorithms (LBFGS,
	// SteepestDescent, Newton) have data-parallel kernels; GIS and IIS
	// run serially regardless.
	KernelWorkers int
	// CaptureTrace records the full convergence trajectory — one
	// TracePoint per optimizer iteration — into Solution.Trajectory, the
	// raw material for solve audits. Off by default: capture allocates
	// per iteration, so the hot path (benchmarks, sweeps without
	// auditing) keeps its zero-overhead trace-less behaviour.
	CaptureTrace bool
	// WarmStart seeds the dual multipliers λ from a previous solution's
	// Duals, matched by constraint label. It is purely a performance
	// hint: the dual is strictly convex, so the minimizer — and hence the
	// posterior — is identical from any start; a seed taken from a nearby
	// problem (e.g. the previous grid point of a sweep) just reaches it
	// in fewer iterations. Rows absent from the seed start at zero, and
	// seed entries whose labels no longer survive presolve are silently
	// ignored, so a stale or partial seed is always safe. Only the dual
	// algorithms (LBFGS, SteepestDescent, Newton) consume the seed; the
	// scaling algorithms (GIS, IIS) ignore it.
	WarmStart []ConstraintDual
	// Reduce enables the structural presolve (block-structure
	// elimination). Stage 1: buckets untouched by any knowledge or
	// individual row keep their closed-form within-bucket posterior
	// (Theorem 5) and their invariant rows never enter the numeric solve
	// — this works for every algorithm and also without Decompose.
	// Stage 2: for the touched buckets, the gradient algorithms (LBFGS,
	// SteepestDescent) eliminate the bucket-local unit-coefficient
	// invariant rows analytically, Schur-complement-style, so the numeric
	// dual's dimension scales with the coupling rows (≈ K knowledge rows
	// + individual rows) instead of the publication size; see schur.go.
	// Newton needs the exact Hessian of the reduced dual (per-bucket
	// Schur complements that can be singular under KeepRedundant) and
	// GIS/IIS scale original rows, so those algorithms get stage 1 only
	// and solve the surviving rows with the full dual. Eliminated rows
	// still report Lagrange multipliers under their original labels
	// (μ = log of the recovered scaling), so audits, binding-rule
	// rankings and warm-start reuse are unaffected. Off by default: the
	// reduced path converges to the same posterior within solver
	// tolerance but is not bit-identical to the full dual.
	Reduce bool
	// FastMath switches the blocked dual kernels to four-wide independent
	// accumulators (linalg.ExpDotsFast / MulVecRangeFast). Reassociated
	// sums differ from the exact kernels at rounding level, so the knob
	// is off by default and its output is gated by the accsnap tolerance
	// cross-check rather than the bit-parity property tests.
	FastMath bool
}

// warmMap indexes the warm-start seed by constraint label; nil when no
// seed was provided.
func (o Options) warmMap() map[string]float64 {
	if len(o.WarmStart) == 0 {
		return nil
	}
	m := make(map[string]float64, len(o.WarmStart))
	for _, d := range o.WarmStart {
		m[d.Label] = d.Lambda
	}
	return m
}

// workerCount resolves Options.Workers: the zero value means
// runtime.GOMAXPROCS(0); negative values solve sequentially.
func (o Options) workerCount() int {
	w := o.Workers
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		w = 1
	}
	return w
}

// kernelWorkerCount resolves Options.KernelWorkers: zero inherits the
// resolved component worker count, negative values mean serial kernels.
func (o Options) kernelWorkerCount() int {
	kw := o.KernelWorkers
	if kw == 0 {
		return o.workerCount()
	}
	if kw < 1 {
		return 1
	}
	return kw
}

// chainInterrupt folds the context's cancellation into the solver's
// Interrupt hook (in front of any caller-supplied hook), so a cancelled
// context stops a dual solve at its next interrupt poll — the guarantee
// the mid-kernel cancellation path relies on: a cancelled kernel region
// drains without finishing its blocks, and the optimizer then observes
// the interrupt before consuming the stale buffers.
func chainInterrupt(ctx context.Context, opts Options) Options {
	done := ctx.Done()
	if done == nil {
		return opts
	}
	prev := opts.Solver.Interrupt
	opts.Solver.Interrupt = func() bool {
		select {
		case <-done:
			return true
		default:
		}
		return prev != nil && prev()
	}
	return opts
}

// observe forwards a lifecycle event to a solve observer; nil observers
// are a no-op, so emission sites never branch. The events mirror the
// solve-event logger (solve.start, decompose, presolve, component.done,
// solve.done, solve.failed) with the same attributes — the live
// introspection layer (pmaxentd's /debug/solves and SSE streams) is fed
// from this stream plus the per-iteration SolveIteration signal wired
// into the solver trace chain in solveReduced.
func observe(obs telemetry.SolveObserver, name string, attrs ...telemetry.Attr) {
	if obs != nil {
		obs.SolveEvent(name, attrs...)
	}
}

// minParallelBlocks is the smallest block count worth fanning out: below
// it the enlist/wait synchronization of a ParallelFor costs more than the
// one or two blocks of arithmetic it distributes. Small decomposed
// components therefore run their kernels serially — which changes nothing
// numerically, since the serial path sums the identical blocks in the
// identical order.
const minParallelBlocks = 4

// kernelRunner adapts the shared worker pool into the block executor the
// dual kernels fan out on, capped at kw concurrent participants. It
// returns nil — serial kernels — when the width is 1.
func kernelRunner(ctx context.Context, p *pool.Pool, kw int) linalg.Runner {
	if p.Workers() < 2 || kw < 2 {
		return nil
	}
	return func(n int, fn func(i int)) {
		if n < minParallelBlocks {
			for i := 0; i < n; i++ {
				fn(i)
			}
			return
		}
		p.ParallelFor(ctx, n, kw, fn)
	}
}

// ConstraintDual pairs a constraint with its Lagrange multiplier at the
// solution — its shadow price. Large-magnitude multipliers mark the
// constraints that most strongly shape the MaxEnt distribution; for
// knowledge rows this is a direct influence measure of each background
// fact (only available from the dual algorithms, i.e. not GIS/IIS
// scaling paths, and only for rows that survive presolve).
type ConstraintDual struct {
	Label  string
	Kind   constraint.Kind
	Lambda float64
}

// TracePoint is one recorded iteration of the convergence trajectory
// (Options.CaptureTrace). For the dual algorithms, Objective is the dual
// value g(λ) and GradNorm the dual gradient's infinity norm; for the
// scaling algorithms (GIS/IIS), Objective is the entropy of the current
// model and GradNorm the worst constraint deviation — the quantity their
// convergence test uses. Step and LineSearchEvals describe the line
// search that produced the iterate (always zero for scaling algorithms,
// which have no line search).
type TracePoint struct {
	// Component is the decomposition component the iteration belongs to
	// (0 when the solve was not decomposed).
	Component int `json:"component"`
	// Iteration numbers the point 1..k within its component.
	Iteration int `json:"iteration"`
	// Objective is the dual value (or entropy for scaling algorithms).
	Objective float64 `json:"objective"`
	// GradNorm is the gradient infinity norm (or worst deviation).
	GradNorm float64 `json:"grad_norm"`
	// Step is the accepted line-search step length.
	Step float64 `json:"step"`
	// LineSearchEvals counts objective evaluations the line search spent.
	LineSearchEvals int `json:"line_search_evals"`
}

// Solution is a maximum-entropy assignment of every probability term.
type Solution struct {
	space *constraint.Space
	// X holds P(Q,S,B) for every term in the space.
	X []float64
	// Stats describes the solve.
	Stats Stats
	// Duals holds the Lagrange multipliers of the surviving constraints
	// (empty for scaling algorithms, which do not expose a meaningful
	// per-row multiplier in the same normalization).
	Duals []ConstraintDual
	// Trajectory holds the per-iteration convergence record when
	// Options.CaptureTrace was set, ordered by component then iteration.
	// Its length equals Stats.Iterations.
	Trajectory []TracePoint
}

// Space returns the term space the solution is indexed by.
func (s *Solution) Space() *constraint.Space { return s.space }

// Joint returns P(q, s, b), zero for terms outside the space.
func (s *Solution) Joint(t constraint.Term) float64 {
	id, ok := s.space.Index(t)
	if !ok {
		return 0
	}
	return s.X[id]
}

// SolveConstraints is the low-level entry point: it maximizes entropy
// over n variables subject to the given constraints, starting the
// bookkeeping from init (variables never mentioned by any constraint keep
// their init value; everything else is determined by presolve or the
// dual). It powers both the standard P(Q,S,B) model and the
// pseudonym-expanded P(i,Q,S,B) model of Sec. 6.
func SolveConstraints(n int, cons []constraint.Constraint, init []float64, opts Options) ([]float64, Stats, error) {
	return SolveConstraintsContext(context.Background(), n, cons, init, opts)
}

// SolveConstraintsContext is SolveConstraints with telemetry: the
// context's tracer receives a "maxent.solve_constraints" span and the
// context's registry the solve metrics.
func SolveConstraintsContext(ctx context.Context, n int, cons []constraint.Constraint, init []float64, opts Options) ([]float64, Stats, error) {
	if len(init) != n {
		return nil, Stats{}, fmt.Errorf("maxent: init has %d values, want %d", len(init), n)
	}
	start := time.Now()
	ctx, span := telemetry.Start(ctx, "maxent.solve_constraints",
		telemetry.Int("variables", n),
		telemetry.Int("constraints", len(cons)),
		telemetry.String("algorithm", opts.Algorithm.String()))
	defer span.End()
	logger := telemetry.Logger(ctx)
	obs := telemetry.SolveObserverFrom(ctx)
	logger.Info("solve.start",
		"algorithm", opts.Algorithm.String(),
		"variables", n,
		"constraints", len(cons))
	observe(obs, "solve.start",
		telemetry.String("algorithm", opts.Algorithm.String()),
		telemetry.Int("variables", n),
		telemetry.Int("constraints", len(cons)))
	x := make([]float64, n)
	copy(x, init)

	// Term/coeff slices are shared with the caller's constraints, not
	// copied: presolve is copy-on-write (see systemRows).
	rows := make([]rowData, 0, len(cons))
	for i := range cons {
		c := &cons[i]
		rows = append(rows, rowData{
			terms:  c.Terms,
			coeffs: c.Coeffs,
			rhs:    c.RHS,
			label:  c.Label,
			kind:   c.Kind,
		})
	}
	red, err := runPresolve(ctx, n, rows)
	if err != nil {
		logger.Error("solve.failed", "error", err.Error())
		observe(obs, "solve.failed", telemetry.String("error", err.Error()))
		return nil, Stats{}, err
	}
	var stats Stats
	stats.Workers = 1
	stats.KernelWorkers = 1
	for j := 0; j < red.n; j++ {
		if red.fixed[j] {
			x[j] = red.value[j]
		}
	}
	stats.FixedVariables = red.numFixed()
	stats.ActiveVariables = len(red.active)

	if len(red.active) > 0 {
		kw := opts.kernelWorkerCount()
		kp := pool.New(kw)
		defer kp.Close()
		opts = chainInterrupt(ctx, opts)
		sol := &Solution{X: x}
		if err := solveReduced(ctx, sol, red, opts.warmMap(), opts, kernelRunner(ctx, kp, kw), 0); err != nil {
			logger.Error("solve.failed", "error", err.Error())
			observe(obs, "solve.failed", telemetry.String("error", err.Error()))
			return nil, Stats{}, err
		}
		stats.Iterations = sol.Stats.Iterations
		stats.Evaluations = sol.Stats.Evaluations
		stats.Converged = sol.Stats.Converged
		stats.KernelWorkers = sol.Stats.KernelWorkers
		stats.ReducedDualDim = sol.Stats.ReducedDualDim
		// With no component fan-out, the kernels' width is the solve's
		// actual parallelism.
		stats.Workers = stats.KernelWorkers
	} else {
		stats.Converged = true
	}

	var worst float64
	for i := range cons {
		if r := cons[i].Residual(x); r > worst {
			worst = r
		} else if -r > worst {
			worst = -r
		}
	}
	stats.MaxViolation = worst
	stats.Duration = time.Since(start)
	span.SetAttr(
		telemetry.Int("iterations", stats.Iterations),
		telemetry.Int("workers", stats.Workers),
		telemetry.Int("kernel_workers", stats.KernelWorkers),
		telemetry.Bool("converged", stats.Converged))
	stats.record(telemetry.Metrics(ctx), 0)
	logger.Info("solve.done",
		"iterations", stats.Iterations,
		"evaluations", stats.Evaluations,
		"converged", stats.Converged,
		"max_violation", stats.MaxViolation,
		"duration", stats.Duration.String())
	observe(obs, "solve.done",
		telemetry.Int("iterations", stats.Iterations),
		telemetry.Int("evaluations", stats.Evaluations),
		telemetry.Bool("converged", stats.Converged),
		telemetry.Float("max_violation", stats.MaxViolation),
		telemetry.String("duration", stats.Duration.String()))
	return x, stats, nil
}

// Solve computes the maximum-entropy distribution subject to the system's
// constraints. The system must contain the data invariants (and any
// knowledge constraints); zero-invariants are implicit in the space.
func Solve(sys *constraint.System, opts Options) (*Solution, error) {
	return SolveContext(context.Background(), sys, opts)
}

// SolveContext is Solve with telemetry threaded through the context: a
// "maxent.solve" span (with presolve, decomposition and per-component
// child spans) and solve metrics in the context's registry.
func SolveContext(ctx context.Context, sys *constraint.System, opts Options) (*Solution, error) {
	start := time.Now()
	sp := sys.Space()
	ctx, span := telemetry.Start(ctx, "maxent.solve",
		telemetry.String("algorithm", opts.Algorithm.String()),
		telemetry.Bool("decompose", opts.Decompose),
		telemetry.Int("variables", sp.Len()),
		telemetry.Int("constraints", sys.Len()))
	defer span.End()
	reg := telemetry.Metrics(ctx)
	logger := telemetry.Logger(ctx)
	obs := telemetry.SolveObserverFrom(ctx)
	// Structural presolve stage 1 (Options.Reduce): find the buckets
	// touched by any coupling row. It runs before the solve.start emission
	// so the live introspection layer sees the eliminated-bucket count
	// while the numeric solve is still in flight.
	var touched []int
	eliminated := 0
	if opts.Reduce {
		touched = constraint.TouchedBuckets(sys)
		eliminated = sp.Data().NumBuckets() - len(touched)
	}
	logger.Info("solve.start",
		"algorithm", opts.Algorithm.String(),
		"decompose", opts.Decompose,
		"variables", sp.Len(),
		"constraints", sys.Len())
	startAttrs := []telemetry.Attr{
		telemetry.String("algorithm", opts.Algorithm.String()),
		telemetry.Bool("decompose", opts.Decompose),
		telemetry.Int("variables", sp.Len()),
		telemetry.Int("constraints", sys.Len()),
	}
	if opts.Reduce {
		startAttrs = append(startAttrs, telemetry.Int("eliminated_buckets", eliminated))
	}
	observe(obs, "solve.start", startAttrs...)
	sol := &Solution{space: sp, X: Uniform(sp)}
	sol.Stats.Workers = 1
	sol.Stats.KernelWorkers = 1
	sol.Stats.EliminatedBuckets = eliminated

	finish := func() {
		sol.Stats.MaxViolation = sys.MaxViolation(sol.X)
		sol.Stats.Duration = time.Since(start)
		span.SetAttr(
			telemetry.Int("iterations", sol.Stats.Iterations),
			telemetry.Int("components", sol.Stats.Components),
			telemetry.Int("workers", sol.Stats.Workers),
			telemetry.Int("kernel_workers", sol.Stats.KernelWorkers),
			telemetry.Bool("converged", sol.Stats.Converged))
		sol.Stats.record(reg, sp.Data().NumBuckets())
		logger.Info("solve.done",
			"iterations", sol.Stats.Iterations,
			"evaluations", sol.Stats.Evaluations,
			"components", sol.Stats.Components,
			"workers", sol.Stats.Workers,
			"kernel_workers", sol.Stats.KernelWorkers,
			"reduced_dual_dim", sol.Stats.ReducedDualDim,
			"eliminated_buckets", sol.Stats.EliminatedBuckets,
			"converged", sol.Stats.Converged,
			"max_violation", sol.Stats.MaxViolation,
			"duration", sol.Stats.Duration.String())
		observe(obs, "solve.done",
			telemetry.Int("iterations", sol.Stats.Iterations),
			telemetry.Int("evaluations", sol.Stats.Evaluations),
			telemetry.Int("components", sol.Stats.Components),
			telemetry.Int("reduced_dual_dim", sol.Stats.ReducedDualDim),
			telemetry.Int("eliminated_buckets", sol.Stats.EliminatedBuckets),
			telemetry.Bool("converged", sol.Stats.Converged),
			telemetry.Float("max_violation", sol.Stats.MaxViolation),
			telemetry.String("duration", sol.Stats.Duration.String()))
	}

	if opts.Decompose {
		_, dspan := telemetry.Start(ctx, "maxent.decompose")
		// TouchedBuckets generalizes Definition 5.6's relevant set to every
		// coupling kind (knowledge and individual rows); for the
		// knowledge-only systems Solve historically saw, the two sets are
		// identical.
		relevant := constraint.TouchedBuckets(sys)
		sol.Stats.IrrelevantBuckets = sp.Data().NumBuckets() - len(relevant)
		if len(relevant) == 0 {
			dspan.SetAttr(telemetry.Int("relevant_buckets", 0))
			dspan.End()
			observe(obs, "decompose",
				telemetry.Int("relevant_buckets", 0),
				telemetry.Int("irrelevant_buckets", sol.Stats.IrrelevantBuckets),
				telemetry.Int("components", 0))
			// No knowledge at all: the closed form is exact (Theorem 4).
			sol.Stats.Converged = true
			finish()
			return sol, nil
		}
		components := componentRows(sys, relevant)
		dspan.SetAttr(
			telemetry.Int("relevant_buckets", len(relevant)),
			telemetry.Int("irrelevant_buckets", sol.Stats.IrrelevantBuckets),
			telemetry.Int("components", len(components)))
		dspan.End()
		observe(obs, "decompose",
			telemetry.Int("relevant_buckets", len(relevant)),
			telemetry.Int("irrelevant_buckets", sol.Stats.IrrelevantBuckets),
			telemetry.Int("components", len(components)))
		sol.Stats.Components = len(components)
		sol.Stats.Converged = true
		comps := make([]solveComponent, len(components))
		for i, rows := range components {
			comps[i] = solveComponent{rows: rows}
		}
		if err := solveComponents(ctx, sol, comps, opts); err != nil {
			logger.Error("solve.failed", "error", err.Error())
			observe(obs, "solve.failed", telemetry.String("error", err.Error()))
			return nil, err
		}
		finish()
		return sol, nil
	}

	// Without decomposition, stage 1 still applies: the invariant rows of
	// untouched buckets drop out of the numeric system and those buckets
	// keep the closed-form posterior sol.X was initialized with (Theorem
	// 5). Coupling rows always survive, so the reduced system remains
	// exactly the system the paper's dual solves over the touched buckets.
	var keep func(*constraint.Constraint) bool
	if opts.Reduce && eliminated > 0 {
		touchedSet := make(map[int]bool, len(touched))
		for _, b := range touched {
			touchedSet[b] = true
		}
		keep = func(c *constraint.Constraint) bool {
			if c.Kind != constraint.QIInvariant && c.Kind != constraint.SAInvariant {
				return true
			}
			if len(c.Terms) == 0 {
				return true
			}
			// Invariant rows are bucket-local, so the first term names the
			// bucket.
			return touchedSet[sp.Term(c.Terms[0]).Bucket]
		}
	}
	red, err := runPresolve(ctx, sp.Len(), systemRows(sys, keep))
	if err != nil {
		logger.Error("solve.failed", "error", err.Error())
		observe(obs, "solve.failed", telemetry.String("error", err.Error()))
		return nil, err
	}
	for j := 0; j < red.n; j++ {
		if red.fixed[j] {
			sol.X[j] = red.value[j]
		}
	}
	sol.Stats.FixedVariables = red.numFixed()
	sol.Stats.ActiveVariables = len(red.active)

	if len(red.active) > 0 {
		kw := opts.kernelWorkerCount()
		kp := pool.New(kw)
		defer kp.Close()
		opts = chainInterrupt(ctx, opts)
		if err := solveReduced(ctx, sol, red, opts.warmMap(), opts, kernelRunner(ctx, kp, kw), 0); err != nil {
			logger.Error("solve.failed", "error", err.Error())
			observe(obs, "solve.failed", telemetry.String("error", err.Error()))
			return nil, err
		}
		// A non-decomposed solve has no component fan-out, so its actual
		// parallelism is the kernels' width — this used to hard-code 1
		// even when the kernels ran in parallel.
		sol.Stats.Workers = sol.Stats.KernelWorkers
	} else {
		sol.Stats.Converged = true
	}

	finish()
	return sol, nil
}

// runPresolve wraps presolve in a "maxent.presolve" span.
func runPresolve(ctx context.Context, n int, rows []rowData) (*reduced, error) {
	_, span := telemetry.Start(ctx, "maxent.presolve", telemetry.Int("rows", len(rows)))
	red, err := presolve(n, rows)
	obs := telemetry.SolveObserverFrom(ctx)
	if err == nil {
		span.SetAttr(
			telemetry.Int("fixed", red.numFixed()),
			telemetry.Int("active", len(red.active)))
		telemetry.Logger(ctx).Info("presolve",
			"rows", len(rows), "fixed", red.numFixed(), "active", len(red.active))
		observe(obs, "presolve",
			telemetry.Int("rows", len(rows)),
			telemetry.Int("fixed", red.numFixed()),
			telemetry.Int("active", len(red.active)))
	} else {
		telemetry.Logger(ctx).Error("presolve.infeasible", "error", err.Error())
		observe(obs, "presolve.infeasible", telemetry.String("error", err.Error()))
	}
	span.End()
	return red, err
}

// componentRows groups the relevant buckets into connected components:
// every coupling constraint — any row that is not a bucket-local QI/SA
// invariant — links all the buckets it touches (union by rank would be
// overkill at these sizes; plain union-find with path compression). Each
// component receives its buckets' data invariants and its coupling rows.
func componentRows(sys *constraint.System, relevant []int) [][]rowData {
	sp := sys.Space()
	parent := make(map[int]int, len(relevant))
	for _, b := range relevant {
		parent[b] = b
	}
	var find func(int) int
	find = func(b int) int {
		if parent[b] != b {
			parent[b] = find(parent[b])
		}
		return parent[b]
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	coupling := func(k constraint.Kind) bool {
		return k != constraint.QIInvariant && k != constraint.SAInvariant
	}
	for i := 0; i < sys.Len(); i++ {
		c := sys.At(i)
		if !coupling(c.Kind) || len(c.Terms) == 0 {
			continue
		}
		first := sp.Term(c.Terms[0]).Bucket
		for _, t := range c.Terms[1:] {
			union(first, sp.Term(t).Bucket)
		}
	}

	// Partition constraints among component roots. Rows share the
	// system's term/coeff slices — presolve is copy-on-write, so the
	// shared storage stays untouched even when components are solved
	// concurrently.
	rowsByRoot := map[int][]rowData{}
	addRow := func(root int, c *constraint.Constraint) {
		rowsByRoot[root] = append(rowsByRoot[root], rowData{
			terms:  c.Terms,
			coeffs: c.Coeffs,
			rhs:    c.RHS,
			label:  c.Label,
			kind:   c.Kind,
		})
	}
	relevantSet := make(map[int]bool, len(relevant))
	for _, b := range relevant {
		relevantSet[b] = true
	}
	for i := 0; i < sys.Len(); i++ {
		c := sys.At(i)
		if len(c.Terms) == 0 {
			continue
		}
		b := sp.Term(c.Terms[0]).Bucket
		if coupling(c.Kind) {
			addRow(find(b), c)
			continue
		}
		if relevantSet[b] {
			addRow(find(b), c)
		}
	}
	out := make([][]rowData, 0, len(rowsByRoot))
	// Deterministic order: ascending root bucket.
	roots := make([]int, 0, len(rowsByRoot))
	for r := range rowsByRoot {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	for _, r := range roots {
		out = append(out, rowsByRoot[r])
	}
	return out
}

// solveComponent is one unit of the component fan-out: either a set of
// rows to presolve and solve numerically, or — on the delta path — a
// reuse record that copies a baseline's converged posterior slice and
// duals verbatim instead of solving. dirty marks numerically solved
// components that a delta classification flagged as changed, so the
// ReusedComponents/DirtyComponents counters stay zero on cold solves.
type solveComponent struct {
	rows  []rowData
	dirty bool
	reuse *componentReuse
}

// componentReuse transfers one clean component from a baseline solution:
// src's values for every term of the listed buckets are copied into the
// new solution bit-for-bit, and duals carries the baseline multipliers
// already relabeled for the new system's rows.
type componentReuse struct {
	buckets []int
	src     []float64
	duals   []ConstraintDual
}

// solveComponents presolves and solves each component, sequentially or
// with up to Options.workerCount() goroutines (Workers zero means
// GOMAXPROCS). Components write disjoint slices of sol.X; the stats are
// merged under a mutex. Each component gets its own
// "maxent.solve.component" span, so traces show the parallel loop.
// Components carrying a reuse record skip the numeric solve entirely and
// copy their baseline slice instead (delta solves, zero iterations).
//
// The first component to fail cancels the run: in-flight siblings are
// stopped via the solver's Interrupt hook (chained with any
// caller-supplied hook), and not-yet-started components are skipped. The
// error reported is the original failure, never a sibling's
// solver.ErrInterrupted — the failing component records its error before
// cancelling, so interrupted siblings always find firstErr already set.
func solveComponents(ctx context.Context, sol *Solution, components []solveComponent, opts Options) error {
	n := sol.space.Len()
	workers := opts.workerCount()
	if len(components) < workers {
		workers = len(components)
	}
	if workers < 1 {
		workers = 1
	}
	sol.Stats.Workers = workers
	kw := opts.kernelWorkerCount()
	reg := telemetry.Metrics(ctx)
	warm := opts.warmMap()

	cancelCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	opts = chainInterrupt(cancelCtx, opts)

	// One pool serves both parallelism levels: the component fan-out
	// below and the blocked dual kernels inside each component solve.
	// Its size bounds the total number of active goroutines — a kernel
	// region only enlists workers that are idle right now — so component-
	// times-kernel parallelism can never oversubscribe the budget. Few
	// large components leave workers idle at the component level for the
	// kernels to pick up; many small components keep the pool busy at the
	// component level and the kernels run serially.
	size := workers
	if kw > size {
		size = kw
	}
	p := pool.New(size)
	defer p.Close()

	// Duals and trajectories are collected per component and flattened in
	// component order after the parallel loop, keeping the output
	// deterministic.
	dualsByComp := make([][]ConstraintDual, len(components))
	trajByComp := make([][]TracePoint, len(components))
	var mu sync.Mutex
	var firstErr error
	run := func(ci int, comp solveComponent) {
		if cancelCtx.Err() != nil {
			return // a sibling already failed; skip un-started work
		}
		if re := comp.reuse; re != nil {
			// Clean component: the baseline solved an identical subproblem,
			// so its slice of X transfers bit-for-bit — including the
			// presolve-fixed terms, since a component's buckets cover every
			// term its rows and fixings mention. Zero iterations.
			_, span := telemetry.Start(cancelCtx, "maxent.solve.component",
				telemetry.Int("component", ci),
				telemetry.Bool("reused", true))
			terms := 0
			for _, b := range re.buckets {
				for _, t := range sol.space.TermsInBucket(b) {
					sol.X[t] = re.src[t]
					terms++
				}
			}
			span.SetAttr(telemetry.Int("terms", terms))
			span.End()
			telemetry.Logger(ctx).Info("component.done",
				"component", ci,
				"active", 0,
				"iterations", 0,
				"converged", true,
				"reused", true)
			observe(telemetry.SolveObserverFrom(ctx), "component.done",
				telemetry.Int("component", ci),
				telemetry.Int("active", 0),
				telemetry.Int("iterations", 0),
				telemetry.Bool("converged", true),
				telemetry.Bool("reused", true))
			mu.Lock()
			sol.Stats.ReusedComponents++
			dualsByComp[ci] = re.duals
			mu.Unlock()
			return
		}
		rows := comp.rows
		cctx, span := telemetry.Start(cancelCtx, "maxent.solve.component",
			telemetry.Int("component", ci),
			telemetry.Int("rows", len(rows)))
		red, err := runPresolve(cctx, n, rows)
		var local Stats
		var duals []ConstraintDual
		var traj []TracePoint
		if err == nil {
			local.FixedVariables = red.numFixed()
			local.ActiveVariables = len(red.active)
			local.Converged = true
			reg.Histogram("pmaxent_component_active_variables", telemetry.CountBuckets).
				Observe(float64(len(red.active)))
			if len(red.active) > 0 {
				// solveReduced mutates only this component's entries of
				// sol.X (disjoint across components) and local stats.
				ls := &Solution{X: sol.X}
				err = solveReduced(cctx, ls, red, warm, opts, kernelRunner(cctx, p, kw), ci)
				if err == nil && comp.dirty && !ls.Stats.Converged && len(warm) > 0 && cancelCtx.Err() == nil {
					// A stale baseline dual can steer the line search into a
					// stall the cold path avoids. The warm start is a pure
					// performance hint, so retry this component once from
					// scratch and keep the retry's result, charging both
					// attempts' work to the component.
					retry := &Solution{X: sol.X}
					if err = solveReduced(cctx, retry, red, nil, opts, kernelRunner(cctx, p, kw), ci); err == nil {
						retry.Stats.Iterations += ls.Stats.Iterations
						retry.Stats.Evaluations += ls.Stats.Evaluations
						ls = retry
					}
				}
				local.Iterations = ls.Stats.Iterations
				local.Evaluations = ls.Stats.Evaluations
				local.Converged = ls.Stats.Converged
				local.KernelWorkers = ls.Stats.KernelWorkers
				local.ReducedDualDim = ls.Stats.ReducedDualDim
				duals = ls.Duals
				for k := range ls.Trajectory {
					ls.Trajectory[k].Component = ci
				}
				traj = ls.Trajectory
			}
			if err == nil {
				for j := 0; j < red.n; j++ {
					if red.fixed[j] {
						sol.X[j] = red.value[j]
					}
				}
			}
		}
		span.SetAttr(
			telemetry.Int("active", local.ActiveVariables),
			telemetry.Int("iterations", local.Iterations),
			telemetry.Bool("converged", local.Converged))
		span.End()
		if err == nil {
			telemetry.Logger(ctx).Info("component.done",
				"component", ci,
				"active", local.ActiveVariables,
				"iterations", local.Iterations,
				"converged", local.Converged)
			observe(telemetry.SolveObserverFrom(ctx), "component.done",
				telemetry.Int("component", ci),
				telemetry.Int("active", local.ActiveVariables),
				telemetry.Int("iterations", local.Iterations),
				telemetry.Bool("converged", local.Converged))
		}
		if comp.dirty {
			local.DirtyComponents = 1
		}
		mu.Lock()
		if err != nil && firstErr == nil {
			firstErr = err
		}
		if err == nil {
			sol.Stats.Merge(local)
			dualsByComp[ci] = duals
			trajByComp[ci] = traj
		}
		mu.Unlock()
		if err != nil {
			// Cancel after recording the error so that siblings returning
			// ErrInterrupted never mask the root cause.
			cancel()
		}
	}

	// The component fan-out is capped at the resolved component worker
	// count even when the pool is larger (sized for the kernels); the
	// failure path cancels cancelCtx, which both stops ParallelFor from
	// starting further components and interrupts in-flight sibling
	// solves.
	p.ParallelFor(cancelCtx, len(components), workers, func(ci int) {
		run(ci, components[ci])
	})
	if firstErr != nil {
		return firstErr
	}
	// External cancellation with no component failure: components that
	// never started were silently skipped above, so a nil return here
	// would hand back a partially solved X as if it were complete.
	if ctx.Err() != nil {
		return fmt.Errorf("maxent: solve canceled: %w", solver.ErrInterrupted)
	}
	for _, ds := range dualsByComp {
		sol.Duals = append(sol.Duals, ds...)
	}
	for _, ts := range trajByComp {
		sol.Trajectory = append(sol.Trajectory, ts...)
	}
	return nil
}

// solveReduced runs the selected algorithm on the presolved system and
// writes the active variables' values into sol.X. warm, when non-nil,
// maps constraint labels to dual multipliers used to seed λ (see
// Options.WarmStart). run, when non-nil, is the block executor the dual
// kernels shard their work onto; the scaling algorithms (GIS, IIS)
// ignore it. comp names the decomposition component the reduced system
// belongs to (0 when not decomposed) and labels the live-progress
// signal. The context's registry receives an iteration counter — and
// the context's solve observer the per-iteration progress feed — via
// telemetry-backed recorders chained in front of any user-supplied
// solver trace callback.
func solveReduced(ctx context.Context, sol *Solution, red *reduced, warm map[string]float64, opts Options, run linalg.Runner, comp int) error {
	if obs := telemetry.SolveObserverFrom(ctx); obs != nil {
		prev := opts.Solver.Trace
		opts.Solver.Trace = func(ev solver.TraceEvent) {
			obs.SolveIteration(comp, ev.Iteration, ev.F, ev.GradNorm)
			if prev != nil {
				prev(ev)
			}
		}
	}
	if reg := telemetry.Metrics(ctx); reg != nil {
		iters := reg.Counter("pmaxent_dual_iterations_total")
		grad := reg.Gauge("pmaxent_dual_last_grad_norm")
		prev := opts.Solver.Trace
		opts.Solver.Trace = func(ev solver.TraceEvent) {
			iters.Add(1)
			grad.Set(ev.GradNorm)
			if prev != nil {
				prev(ev)
			}
		}
	}
	if opts.CaptureTrace {
		// Record every iteration into the trajectory. The dual solvers
		// fire an extra event at iteration 0 (the starting point, before
		// any step); dropping it keeps len(Trajectory) == Stats.Iterations
		// across all algorithms — the scaling methods number their rounds
		// from 1.
		prev := opts.Solver.Trace
		opts.Solver.Trace = func(ev solver.TraceEvent) {
			if ev.Iteration > 0 {
				sol.Trajectory = append(sol.Trajectory, TracePoint{
					Iteration:       ev.Iteration,
					Objective:       ev.F,
					GradNorm:        ev.GradNorm,
					Step:            ev.Step,
					LineSearchEvals: ev.LineSearchEvals,
				})
			}
			if prev != nil {
				prev(ev)
			}
		}
	}

	// Assemble A over active columns. One column-index scratch serves all
	// rows: AppendRow copies it into the matrix's own storage.
	a := linalg.NewCSR(len(red.active))
	rhs := make([]float64, 0, len(red.rows))
	var cols []int
	for _, row := range red.rows {
		if cap(cols) < len(row.terms) {
			cols = make([]int, len(row.terms))
		}
		cols = cols[:len(row.terms)]
		for k, j := range row.terms {
			cols[k] = red.newIdx[j]
			if cols[k] < 0 {
				return fmt.Errorf("maxent: internal error: surviving row %q references non-active variable", row.label)
			}
		}
		if err := a.AppendRow(cols, row.coeffs); err != nil {
			return fmt.Errorf("maxent: assembling reduced system: %w", err)
		}
		rhs = append(rhs, row.rhs)
	}

	xActive := make([]float64, len(red.active))
	switch opts.Algorithm {
	case GIS, IIS:
		scale := runGIS
		if opts.Algorithm == IIS {
			scale = runIIS
		}
		res, err := scale(a, rhs, red, opts)
		if err != nil {
			return err
		}
		copy(xActive, res.x)
		sol.Stats.Iterations = res.iterations
		sol.Stats.Evaluations = res.iterations
		sol.Stats.Converged = res.converged
		sol.Stats.KernelWorkers = 1 // scaling loops have no parallel kernels
		sol.Stats.ReducedDualDim = a.Rows()
		// No explicit iteration-counter add here: the scaling loops fire
		// the (telemetry-wrapped) trace callback once per round, so the
		// pmaxent_dual_iterations_total series is already fed.
	case LBFGS, SteepestDescent, Newton:
		sol.Stats.KernelWorkers = 1
		if run != nil {
			sol.Stats.KernelWorkers = opts.kernelWorkerCount()
		}
		// Structural presolve stage 2: for the gradient algorithms,
		// eliminate the bucket-local invariant rows analytically and run
		// the optimizer on the coupling rows alone. Newton keeps the full
		// dual (its exact Hessian does not survive the elimination), and
		// a system with nothing eliminable falls through too. A reduced
		// solve that stops short of its tolerance — boundary-pathological
		// systems (P = 0/1 knowledge pushes duals toward infinity) degrade
		// the inner scaling sweeps — is not returned as-is: the full dual
		// polishes it, warm-started from the recovered multipliers, so
		// Reduce never delivers worse feasibility than the full path.
		if opts.Reduce && opts.Algorithm != Newton {
			if schur := newSchurObjective(a, rhs, red.rows); schur != nil {
				if err := solveSchur(sol, schur, red, warm, opts, run, xActive); err != nil {
					return err
				}
				if sol.Stats.Converged {
					for pos, j := range red.active {
						sol.X[j] = xActive[pos]
					}
					return nil
				}
				// warm may be shared across concurrent component solves;
				// rebind, never mutate.
				warm = make(map[string]float64, len(sol.Duals))
				for _, du := range sol.Duals {
					warm[du.Label] = du.Lambda
				}
				sol.Duals = sol.Duals[:0]
			}
		}
		obj := newDualObjective(a, rhs)
		obj.setRunner(run)
		obj.setFastMath(opts.FastMath)
		defer obj.release()
		sol.Stats.ReducedDualDim = a.Rows()
		lambda0 := make([]float64, a.Rows())
		if warm != nil {
			for i, row := range red.rows {
				if v, ok := warm[row.label]; ok {
					lambda0[i] = v
				}
			}
		}
		var res solver.Result
		var err error
		switch opts.Algorithm {
		case LBFGS:
			res, err = solver.LBFGS(obj, lambda0, opts.Solver)
		case Newton:
			res, err = solver.Newton(obj, lambda0, opts.Solver)
		default:
			res, err = solver.SteepestDescent(obj, lambda0, opts.Solver)
		}
		if err != nil {
			return fmt.Errorf("maxent: dual optimization: %w", err)
		}
		obj.Primal(res.X, xActive)
		// += not =: a polished reduced solve accumulates its Schur
		// iterations (zero otherwise), keeping len(Trajectory) ==
		// Stats.Iterations under CaptureTrace.
		sol.Stats.Iterations += res.Iterations
		sol.Stats.Evaluations += res.Evaluations
		sol.Stats.Converged = res.Converged
		for i, row := range red.rows {
			sol.Duals = append(sol.Duals, ConstraintDual{Label: row.label, Kind: row.kind, Lambda: res.X[i]})
		}
	default:
		return fmt.Errorf("maxent: unknown algorithm %v", opts.Algorithm)
	}

	for pos, j := range red.active {
		sol.X[j] = xActive[pos]
	}
	return nil
}
