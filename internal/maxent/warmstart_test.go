package maxent

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"privacymaxent/internal/bucket"
	"privacymaxent/internal/constraint"
	"privacymaxent/internal/dataset"
	"privacymaxent/internal/solver"
	"privacymaxent/internal/telemetry"
)

// workload is a random bucketized publication plus feasible knowledge
// statements touching every third QI tuple — the recipe of
// TestParallelComponentsMatchSequential, factored out for the
// warm-start, cancellation and scratch-pool tests.
type workload struct {
	tbl   *dataset.Table
	d     *bucket.Bucketized
	truth *dataset.Conditional
	ks    []constraint.DistributionKnowledge
}

func newWorkload(t *testing.T, seed int64) *workload {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tbl := randomTestTable(rng, 120, 3, 5, 6)
	d, _, err := bucket.Anatomize(tbl, bucket.Options{L: 3, ExemptMostFrequent: true})
	if err != nil {
		t.Fatal(err)
	}
	truth, err := dataset.TrueConditional(tbl, d.Universe())
	if err != nil {
		t.Fatal(err)
	}
	w := &workload{tbl: tbl, d: d, truth: truth}
	u := d.Universe()
	for qid := 0; qid < u.Len(); qid += 3 {
		for s := 0; s < d.SACardinality(); s++ {
			if truth.P(qid, s) > 0 {
				w.ks = append(w.ks, knowledgeFor(tbl, d, qid, s, truth.P(qid, s)))
				break
			}
		}
	}
	return w
}

// system builds invariants plus the given knowledge over the workload's
// publication.
func (w *workload) system(t *testing.T, ks []constraint.DistributionKnowledge) *constraint.System {
	t.Helper()
	sp := constraint.NewSpace(w.d)
	sys := constraint.DataInvariants(sp, constraint.InvariantOptions{DropRedundant: true})
	if err := constraint.AddKnowledge(sys, ks...); err != nil {
		t.Fatal(err)
	}
	return sys
}

func maxAbsDiff(a, b []float64) float64 {
	var worst float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst
}

// TestWarmStartSameProblemSkipsWork re-solves an identical system seeded
// with its own converged duals: the dual gradient is already below
// GradTol, so the warm solve must converge in strictly fewer iterations
// (here: immediately) with the same posterior.
func TestWarmStartSameProblemSkipsWork(t *testing.T) {
	w := newWorkload(t, 7)
	opts := Options{Solver: solver.Options{GradTol: 1e-8}}
	cold, err := Solve(w.system(t, w.ks), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !cold.Stats.Converged || cold.Stats.Iterations == 0 {
		t.Fatalf("cold solve not meaningful: %+v", cold.Stats)
	}
	if len(cold.Duals) == 0 {
		t.Fatal("cold solve exposed no duals")
	}
	warmOpts := opts
	warmOpts.WarmStart = cold.Duals
	warm, err := Solve(w.system(t, w.ks), warmOpts)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Stats.Converged {
		t.Fatalf("warm solve did not converge: %+v", warm.Stats)
	}
	if warm.Stats.Iterations >= cold.Stats.Iterations {
		t.Fatalf("warm iterations = %d, want < cold %d", warm.Stats.Iterations, cold.Stats.Iterations)
	}
	if d := maxAbsDiff(cold.X, warm.X); d > 1e-9 {
		t.Fatalf("warm posterior deviates by %g", d)
	}
}

// TestWarmStartNeighborFewerIterations is the sweep scenario: solve with
// K−1 knowledge rows, then solve the K-row neighbor seeded with the
// previous duals. The shared surviving-row prefix starts at its converged
// multipliers, so only the new row's influence must be optimized — the
// posterior is identical (convex dual, start-independent optimum) but the
// iteration count drops strictly. Runs decomposed, which also exercises
// dual collection from component solves.
func TestWarmStartNeighborFewerIterations(t *testing.T) {
	w := newWorkload(t, 7)
	if len(w.ks) < 3 {
		t.Fatalf("workload has only %d knowledge statements", len(w.ks))
	}
	opts := Options{Decompose: true, Solver: solver.Options{GradTol: 1e-8}}
	prev, err := Solve(w.system(t, w.ks[:len(w.ks)-1]), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(prev.Duals) == 0 {
		t.Fatal("decomposed solve exposed no duals")
	}

	cold, err := Solve(w.system(t, w.ks), opts)
	if err != nil {
		t.Fatal(err)
	}
	warmOpts := opts
	warmOpts.WarmStart = prev.Duals
	warm, err := Solve(w.system(t, w.ks), warmOpts)
	if err != nil {
		t.Fatal(err)
	}
	if !cold.Stats.Converged || !warm.Stats.Converged {
		t.Fatalf("convergence: cold=%v warm=%v", cold.Stats.Converged, warm.Stats.Converged)
	}
	if warm.Stats.Iterations >= cold.Stats.Iterations {
		t.Fatalf("warm iterations = %d, want < cold %d", warm.Stats.Iterations, cold.Stats.Iterations)
	}
	if d := maxAbsDiff(cold.X, warm.X); d > 1e-6 {
		t.Fatalf("warm posterior deviates by %g", d)
	}
}

// TestWarmStartStaleSeedSafe verifies a bad seed cannot change the
// answer: unknown labels are ignored and perturbed multipliers only cost
// iterations, never correctness.
func TestWarmStartStaleSeedSafe(t *testing.T) {
	w := newWorkload(t, 13)
	opts := Options{Solver: solver.Options{GradTol: 1e-8}}
	cold, err := Solve(w.system(t, w.ks), opts)
	if err != nil {
		t.Fatal(err)
	}
	seed := []ConstraintDual{{Label: "no such constraint", Lambda: 17}}
	for _, d := range cold.Duals {
		seed = append(seed, ConstraintDual{Label: d.Label, Kind: d.Kind, Lambda: d.Lambda + 2})
	}
	warmOpts := opts
	warmOpts.WarmStart = seed
	warm, err := Solve(w.system(t, w.ks), warmOpts)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Stats.Converged {
		t.Fatalf("warm solve did not converge: %+v", warm.Stats)
	}
	if d := maxAbsDiff(cold.X, warm.X); d > 1e-6 {
		t.Fatalf("posterior deviates by %g under stale seed", d)
	}
}

// TestWarmStartIgnoredByScaling verifies the scaling algorithms simply
// ignore the seed (they expose no duals in the same normalization).
func TestWarmStartIgnoredByScaling(t *testing.T) {
	_, _, _, sys := paperSystem(t)
	plain, err := Solve(sys, Options{Algorithm: GIS})
	if err != nil {
		t.Fatal(err)
	}
	seeded, err := Solve(sys, Options{Algorithm: GIS, WarmStart: []ConstraintDual{{Label: "junk", Lambda: 99}}})
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(plain.X, seeded.X); d > 1e-12 {
		t.Fatalf("GIS result changed by %g under a warm-start seed", d)
	}
}

// TestDecomposedDualsDeterministic checks that component solves report
// their duals in deterministic component order, independent of worker
// interleaving.
func TestDecomposedDualsDeterministic(t *testing.T) {
	w := newWorkload(t, 21)
	opts := Options{Decompose: true, Workers: 4, Solver: solver.Options{GradTol: 1e-9}}
	first, err := Solve(w.system(t, w.ks), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Duals) == 0 {
		t.Fatal("no duals from decomposed solve")
	}
	second, err := Solve(w.system(t, w.ks), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Duals) != len(second.Duals) {
		t.Fatalf("dual counts differ: %d vs %d", len(first.Duals), len(second.Duals))
	}
	for i := range first.Duals {
		if first.Duals[i].Label != second.Duals[i].Label {
			t.Fatalf("dual order differs at %d: %q vs %q", i, first.Duals[i].Label, second.Duals[i].Label)
		}
	}
}

// pairedQIWorkload builds a table with one QI attribute and a manual
// partition putting each pair of QI values {2b, 2b+1} in bucket b. With
// two QI tuples per bucket the SA-count invariants no longer pin every
// variable, so each component reaches the iterative solver; knowledge on
// a single qid touches only its bucket, so every bucket is its own
// component.
func pairedQIWorkload(t *testing.T, buckets, perQID, saCard int) (*dataset.Table, *bucket.Bucketized) {
	t.Helper()
	qids := 2 * buckets
	qiDom := make([]string, qids)
	for v := range qiDom {
		qiDom[v] = fmt.Sprintf("q%d", v)
	}
	saDom := make([]string, saCard)
	for v := range saDom {
		saDom[v] = fmt.Sprintf("s%d", v)
	}
	tbl := dataset.NewTable(dataset.MustSchema(
		dataset.NewAttribute("Q", dataset.QuasiIdentifier, qiDom),
		dataset.NewAttribute("SA", dataset.Sensitive, saDom),
	))
	part := make([][]int, buckets)
	row := 0
	for q := 0; q < qids; q++ {
		for r := 0; r < perQID; r++ {
			if err := tbl.AppendCoded([]int{q, (q + r) % saCard}); err != nil {
				t.Fatal(err)
			}
			part[q/2] = append(part[q/2], row)
			row++
		}
	}
	d, err := bucket.FromPartition(tbl, part)
	if err != nil {
		t.Fatal(err)
	}
	return tbl, d
}

// TestComponentFailureCancelsSiblings runs a ten-component parallel
// solve in which one component fails instantly (contradictory zero
// knowledge makes its presolve infeasible) while every other component
// is held in-flight by a caller-supplied Interrupt hook that sleeps on
// its first poll. The failure must (a) surface as the infeasibility
// error, never a sibling's ErrInterrupted, and (b) cancel the run before
// the held siblings release their worker slots, so every not-yet-started
// component is skipped — observed as at most Workers
// "maxent.solve.component" spans.
//
// The timing argument makes this deterministic rather than merely
// likely: with Workers=2 only two components can be in flight, a slot
// frees only when one of them finishes, the held sibling cannot finish
// before its 100ms sleep elapses, and the failing component finishes (by
// failing) in microseconds — so the first freed slot always comes after
// the cancellation.
func TestComponentFailureCancelsSiblings(t *testing.T) {
	const buckets = 10
	tbl, d := pairedQIWorkload(t, buckets, 6, 4)
	truth, err := dataset.TrueConditional(tbl, d.Universe())
	if err != nil {
		t.Fatal(err)
	}
	sp := constraint.NewSpace(d)
	sys := constraint.DataInvariants(sp, constraint.InvariantOptions{DropRedundant: true})
	// Feasible knowledge on one qid per bucket keeps all ten buckets
	// relevant as separate single-bucket components.
	for b := 0; b < buckets; b++ {
		qid := 2 * b
		for s := 0; s < d.SACardinality(); s++ {
			if p := truth.P(qid, s); p > 0 && p < 1 {
				if err := constraint.AddKnowledge(sys, knowledgeFor(tbl, d, qid, s, p)); err != nil {
					t.Fatal(err)
				}
				break
			}
		}
	}
	// Bucket 0's component is made infeasible: pinning every SA value of
	// qid 0 to zero contradicts its QI invariant, which presolve detects
	// before the solver ever runs (and before the Interrupt hook can
	// stall that component).
	for s := 0; s < d.SACardinality(); s++ {
		if err := constraint.AddKnowledge(sys, knowledgeFor(tbl, d, 0, s, 0)); err != nil {
			t.Fatal(err)
		}
	}

	sink := telemetry.NewTreeSink()
	ctx := telemetry.WithTracer(context.Background(), telemetry.NewTracer(sink))
	opts := Options{Decompose: true, Workers: 2, Solver: solver.Options{
		GradTol: 1e-12,
		// Holds feasible components in-flight long enough for the failing
		// one to cancel the run. Only pre-cancellation polls reach this
		// hook: once cancelled, the chained interrupt short-circuits.
		Interrupt: func() bool { time.Sleep(100 * time.Millisecond); return false },
	}}
	_, err = SolveContext(ctx, sys, opts)
	var inf *ErrInfeasible
	if !errors.As(err, &inf) {
		t.Fatalf("err = %v, want ErrInfeasible (sibling interruption must not mask the root cause)", err)
	}
	if errors.Is(err, solver.ErrInterrupted) {
		t.Fatalf("root-cause error was masked by ErrInterrupted: %v", err)
	}
	started := 0
	for _, ev := range sink.Events() {
		if ev.Name == "maxent.solve.component" {
			started++
		}
	}
	if started == 0 {
		t.Fatal("no component spans recorded; tracing broken")
	}
	if started > 2 {
		t.Fatalf("%d of %d components started despite early failure; cancellation did not skip pending components", started, buckets)
	}
}

// TestPooledScratchRace hammers the shared dualScratch pool from
// concurrent solves (each itself running parallel component workers).
// Under -race this fails loudly if pooled buffers are ever shared between
// two in-flight solves; the posterior cross-check catches silent reuse.
func TestPooledScratchRace(t *testing.T) {
	w := newWorkload(t, 5)
	opts := Options{Decompose: true, Workers: 2, Solver: solver.Options{GradTol: 1e-9}}
	ref, err := Solve(w.system(t, w.ks), opts)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 4
	const repeats = 3
	systems := make([][]*constraint.System, goroutines)
	for g := range systems {
		for r := 0; r < repeats; r++ {
			systems[g] = append(systems[g], w.system(t, w.ks))
		}
	}
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for _, sys := range systems[g] {
				sol, err := Solve(sys, opts)
				if err != nil {
					errs[g] = err
					return
				}
				if !sol.Stats.Converged {
					errs[g] = fmt.Errorf("solve did not converge: %+v", sol.Stats)
					return
				}
				if d := maxAbsDiff(ref.X, sol.X); d > 1e-7 {
					errs[g] = fmt.Errorf("posterior deviates by %g under concurrency", d)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
}
