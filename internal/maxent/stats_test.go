package maxent

import (
	"context"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"privacymaxent/internal/adult"
	"privacymaxent/internal/assoc"
	"privacymaxent/internal/bucket"
	"privacymaxent/internal/constraint"
	"privacymaxent/internal/solver"
	"privacymaxent/internal/telemetry"
)

func TestStatsString(t *testing.T) {
	s := Stats{Iterations: 42, Evaluations: 85, Duration: 1234 * time.Microsecond, Converged: true,
		MaxViolation: 2.1e-10}
	got := s.String()
	for _, want := range []string{"42 iterations", "85 evaluations", "1.234ms", "converged=true", "max violation 2.10e-10"} {
		if !strings.Contains(got, want) {
			t.Fatalf("Stats.String() = %q, missing %q", got, want)
		}
	}
	if strings.Contains(got, "workers") {
		t.Fatalf("Stats.String() = %q, workers should be omitted for sequential solves", got)
	}
	par := Stats{Iterations: 1, Workers: 4}
	if got := par.String(); !strings.Contains(got, "4 workers") {
		t.Fatalf("Stats.String() = %q, missing worker count", got)
	}
}

func TestStatsMerge(t *testing.T) {
	a := Stats{Iterations: 10, Evaluations: 20, Duration: 5 * time.Millisecond, Converged: true,
		MaxViolation: 1e-9, ActiveVariables: 30, FixedVariables: 5, Components: 1, Workers: 2}
	b := Stats{Iterations: 7, Evaluations: 9, Duration: 8 * time.Millisecond, Converged: false,
		MaxViolation: 1e-6, ActiveVariables: 12, FixedVariables: 3, Components: 1, Workers: 4}
	a.Merge(b)
	if a.Iterations != 17 || a.Evaluations != 29 || a.ActiveVariables != 42 || a.FixedVariables != 8 || a.Components != 2 {
		t.Fatalf("additive fields wrong after merge: %+v", a)
	}
	if a.Converged {
		t.Fatal("convergence must AND")
	}
	if a.Duration != 8*time.Millisecond {
		t.Fatalf("duration should take the max (overlapping components), got %v", a.Duration)
	}
	if a.MaxViolation != 1e-6 || a.Workers != 4 {
		t.Fatalf("max fields wrong: %+v", a)
	}
}

// TestWorkersDefault: the zero value of Options.Workers means
// runtime.GOMAXPROCS(0); negative values solve sequentially.
func TestWorkersDefault(t *testing.T) {
	if got, want := (Options{}).workerCount(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("zero Workers resolved to %d, want GOMAXPROCS = %d", got, want)
	}
	if got := (Options{Workers: -3}).workerCount(); got != 1 {
		t.Fatalf("negative Workers resolved to %d, want 1", got)
	}
	if got := (Options{Workers: 6}).workerCount(); got != 6 {
		t.Fatalf("explicit Workers resolved to %d, want 6", got)
	}
}

// solveWorkload builds a real Adult-style decomposable problem: data
// invariants plus Top-K mined knowledge.
func solveWorkload(t testing.TB) (*bucket.Bucketized, []assoc.Rule) {
	t.Helper()
	tbl := adult.Generate(adult.Config{Records: 600, Seed: 1})
	d, _, err := bucket.Anatomize(tbl, bucket.Options{L: 5, ExemptMostFrequent: true})
	if err != nil {
		t.Fatal(err)
	}
	rules, err := assoc.Mine(tbl, assoc.Options{MinSupport: 3, Sizes: []int{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	return d, assoc.TopK(rules, 20, 20)
}

func workloadSystem(t testing.TB, d *bucket.Bucketized, selected []assoc.Rule) *constraint.System {
	t.Helper()
	sp := constraint.NewSpace(d)
	sys := constraint.DataInvariants(sp, constraint.InvariantOptions{DropRedundant: true})
	for i := range selected {
		kn := selected[i].Knowledge()
		c, err := kn.Constraint(sp)
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Add(c); err != nil {
			t.Fatal(err)
		}
	}
	return sys
}

// TestSolveRecordsWorkers: a decomposed parallel solve records the chosen
// worker count and component count in Stats.
func TestSolveRecordsWorkers(t *testing.T) {
	d, selected := solveWorkload(t)
	sys := workloadSystem(t, d, selected)
	sol, err := Solve(sys, Options{Decompose: true}) // Workers zero → GOMAXPROCS
	if err != nil {
		t.Fatal(err)
	}
	if sol.Stats.Components < 1 {
		t.Fatalf("expected components, got %+v", sol.Stats)
	}
	if sol.Stats.Workers < 1 {
		t.Fatalf("Workers not recorded: %+v", sol.Stats)
	}
	want := runtime.GOMAXPROCS(0)
	if want > sol.Stats.Components {
		want = sol.Stats.Components
	}
	if sol.Stats.Workers != want {
		t.Fatalf("Workers = %d, want %d (GOMAXPROCS capped by %d components)",
			sol.Stats.Workers, want, sol.Stats.Components)
	}
	// Sequential path records 1.
	seq, err := Solve(sys, Options{Decompose: true, Workers: -1})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Stats.Workers != 1 {
		t.Fatalf("sequential Workers = %d, want 1", seq.Stats.Workers)
	}
}

// TestParallelSolveTelemetryRace hammers one shared registry and tracer
// from several concurrent decomposed solves, each of which fans out to
// parallel component workers — run under -race this is the telemetry
// concurrency contract. It then checks the emitted spans cover every
// pipeline stage of the solve and the metrics add up.
func TestParallelSolveTelemetryRace(t *testing.T) {
	d, selected := solveWorkload(t)
	reg := telemetry.NewRegistry()
	sink := telemetry.NewTreeSink()
	ctx := telemetry.WithMetrics(context.Background(), reg)
	ctx = telemetry.WithTracer(ctx, telemetry.NewTracer(sink))

	const solves = 4
	var wg sync.WaitGroup
	errs := make([]error, solves)
	for i := 0; i < solves; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sys := workloadSystem(t, d, selected)
			opts := Options{Decompose: true, Workers: 4}
			opts.Solver.MaxIterations = 3000
			opts.Solver.GradTol = 1e-6
			sol, err := SolveContext(ctx, sys, opts)
			if err == nil && !sol.Stats.Converged {
				t.Errorf("solve %d did not converge", i)
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	if got := reg.Counter("pmaxent_solve_total").Value(); got != solves {
		t.Fatalf("pmaxent_solve_total = %d, want %d", got, solves)
	}
	if reg.Counter("pmaxent_dual_iterations_total").Value() == 0 {
		t.Fatal("iteration recorder did not fire")
	}
	if reg.Histogram("pmaxent_component_active_variables", nil).Count() == 0 {
		t.Fatal("no per-component size observations")
	}
	if reg.Counter("pmaxent_decompose_buckets_total").Value() == 0 ||
		reg.Counter("pmaxent_decompose_buckets_closed_form_total").Value() == 0 {
		t.Fatal("decomposition hit-rate counters empty")
	}

	byName := map[string]int{}
	var solveID uint64
	for _, ev := range sink.Events() {
		byName[ev.Name]++
		if ev.Name == "maxent.solve" {
			solveID = ev.ID
		}
	}
	if byName["maxent.solve"] != solves {
		t.Fatalf("maxent.solve spans = %d, want %d", byName["maxent.solve"], solves)
	}
	for _, name := range []string{"maxent.decompose", "maxent.solve.component", "maxent.presolve"} {
		if byName[name] == 0 {
			t.Fatalf("no %q spans (got %v)", name, byName)
		}
	}
	if solveID == 0 {
		t.Fatal("no solve span ID")
	}
}

// TestSolverTraceStillFires: the telemetry recorder chains in front of a
// user-supplied solver trace callback instead of replacing it.
func TestSolverTraceStillFires(t *testing.T) {
	d, selected := solveWorkload(t)
	sys := workloadSystem(t, d, selected)
	reg := telemetry.NewRegistry()
	ctx := telemetry.WithMetrics(context.Background(), reg)
	var calls int
	opts := Options{Decompose: true, Workers: -1}
	opts.Solver.Trace = func(solver.TraceEvent) { calls++ }
	if _, err := SolveContext(ctx, sys, opts); err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("user trace callback was not invoked")
	}
	if got := reg.Counter("pmaxent_dual_iterations_total").Value(); got == 0 {
		t.Fatal("telemetry iteration counter empty")
	}
}
