package maxent

import (
	"fmt"
	"math"
	"testing"

	"privacymaxent/internal/assoc"
	"privacymaxent/internal/constraint"
)

// The structural presolve's contract (Options.Reduce) has two halves:
// untouched buckets keep the closed-form posterior bit for bit — across
// every algorithm and every kernel worker count — and touched buckets
// converge to the same posterior the full dual finds, within solver
// tolerance. These tests pin both on the real Adult workload.
//
// The rule subsets below keep to fractional confidences (0 < P < 1).
// Certain rules (P ∈ {0, 1}) are legitimate workload — P = 0 rows
// presolve to pinned zeros, P = 1 rows push duals toward the boundary —
// but they make convergence a property of the workload rather than of
// the reduction, so the parity tests stay on the interior.

// reduceGrid is the algorithm grid the closed-form guarantee must hold
// on: a gradient method that takes the Schur path, Newton (stage 1 only,
// full dual on the surviving rows) and a scaling method (GIS, also stage
// 1 only).
var reduceGrid = []Algorithm{LBFGS, Newton, GIS}

// fractionalRules returns the mined rules whose knowledge probability is
// strictly interior, skipping the certain (P ∈ {0, 1}) ones.
func fractionalRules(t *testing.T, selected []assoc.Rule) []assoc.Rule {
	t.Helper()
	var frac []assoc.Rule
	for i := range selected {
		if p := selected[i].Knowledge().P; p > 0.05 && p < 0.95 {
			frac = append(frac, selected[i])
		}
	}
	if len(frac) < 4 {
		t.Fatalf("workload mined only %d fractional-confidence rules", len(frac))
	}
	return frac
}

// TestReduceUntouchedBucketsClosedForm: with Reduce on, every term of an
// untouched bucket equals the closed-form posterior exactly, for every
// algorithm × kernel worker combination, and the whole posterior is
// bit-identical across worker counts within one algorithm.
func TestReduceUntouchedBucketsClosedForm(t *testing.T) {
	d, selected := solveWorkload(t)
	// A handful of rules keeps the touched set small (plenty of untouched
	// buckets to check) and Newton's dense Hessian cheap.
	sys := workloadSystem(t, d, fractionalRules(t, selected)[:4])
	sp := sys.Space()
	uniform := Uniform(sp)

	touched := map[int]bool{}
	for _, b := range constraint.TouchedBuckets(sys) {
		touched[b] = true
	}
	if len(touched) == 0 || len(touched) == d.NumBuckets() {
		t.Fatalf("degenerate workload: %d/%d buckets touched", len(touched), d.NumBuckets())
	}

	for _, alg := range reduceGrid {
		var ref []float64
		for _, kw := range kernelWorkerGrid {
			name := fmt.Sprintf("%v/kw=%d", alg, kw)
			sol, err := Solve(sys, Options{Algorithm: alg, Reduce: true, KernelWorkers: kw})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if !sol.Stats.Converged {
				t.Fatalf("%s: did not converge: %s", name, sol.Stats)
			}
			if got, want := sol.Stats.EliminatedBuckets, d.NumBuckets()-len(touched); got != want {
				t.Fatalf("%s: EliminatedBuckets = %d, want %d", name, got, want)
			}
			for id := 0; id < sp.Len(); id++ {
				if touched[sp.Term(id).Bucket] {
					continue
				}
				if sol.X[id] != uniform[id] {
					t.Fatalf("%s: untouched term %d = %v, closed form %v", name, id, sol.X[id], uniform[id])
				}
			}
			if ref == nil {
				ref = sol.X
				continue
			}
			for id := range ref {
				if sol.X[id] != ref[id] {
					t.Fatalf("%s: term %d = %v, differs from kw=%d value %v",
						name, id, sol.X[id], kernelWorkerGrid[0], ref[id])
				}
			}
		}
	}
}

// TestReduceAllBucketsUntouched: the K = 0 edge case — no knowledge at
// all. Stage 1 eliminates every bucket, no numeric solve runs, and the
// posterior is the closed form bit for bit on every algorithm × worker
// combination.
func TestReduceAllBucketsUntouched(t *testing.T) {
	d, _ := solveWorkload(t)
	sys := workloadSystem(t, d, nil)
	uniform := Uniform(sys.Space())

	for _, alg := range reduceGrid {
		for _, kw := range kernelWorkerGrid {
			name := fmt.Sprintf("%v/kw=%d", alg, kw)
			sol, err := Solve(sys, Options{Algorithm: alg, Reduce: true, KernelWorkers: kw})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if !sol.Stats.Converged {
				t.Fatalf("%s: did not converge", name)
			}
			if sol.Stats.EliminatedBuckets != d.NumBuckets() {
				t.Fatalf("%s: EliminatedBuckets = %d, want all %d",
					name, sol.Stats.EliminatedBuckets, d.NumBuckets())
			}
			if sol.Stats.ReducedDualDim != 0 || sol.Stats.Iterations != 0 {
				t.Fatalf("%s: numeric solve ran (dim %d, %d iterations) on a knowledge-free system",
					name, sol.Stats.ReducedDualDim, sol.Stats.Iterations)
			}
			for id, want := range uniform {
				if sol.X[id] != want {
					t.Fatalf("%s: term %d = %v, closed form %v", name, id, sol.X[id], want)
				}
			}
		}
	}
}

// TestSchurMatchesFullDual: the Schur-reduced solve must land on the
// same posterior as the full dual within solver tolerance, with a
// sharply smaller numeric dual, full feasibility, and a complete dual
// vector (one multiplier per surviving row, eliminated rows included —
// that is what audits and warm starts consume).
func TestSchurMatchesFullDual(t *testing.T) {
	d, selected := solveWorkload(t)
	sys := workloadSystem(t, d, fractionalRules(t, selected))

	full, err := Solve(sys, Options{Algorithm: LBFGS})
	if err != nil {
		t.Fatal(err)
	}
	// The full LBFGS dual may stall in its line search a hair above the
	// optimizer tolerance; feasibility is what anchors the comparison.
	if v := sys.MaxViolation(full.X); v > 1e-6 {
		t.Fatalf("full solve infeasible by %g", v)
	}
	red, err := Solve(sys, Options{Algorithm: LBFGS, Reduce: true})
	if err != nil {
		t.Fatal(err)
	}
	if !red.Stats.Converged {
		t.Fatalf("reduced solve did not converge: %s", red.Stats)
	}
	if red.Stats.ReducedDualDim >= full.Stats.ReducedDualDim {
		t.Fatalf("reduced dual dim %d not smaller than full %d",
			red.Stats.ReducedDualDim, full.Stats.ReducedDualDim)
	}
	if v := sys.MaxViolation(red.X); v > 1e-6 {
		t.Fatalf("reduced solution violates the original system by %g", v)
	}
	var worst float64
	for id := range full.X {
		if diff := math.Abs(red.X[id] - full.X[id]); diff > worst {
			worst = diff
		}
	}
	if worst > 1e-6 {
		t.Fatalf("reduced posterior differs from full dual by %g", worst)
	}

	fullLabels := map[string]bool{}
	for _, du := range full.Duals {
		fullLabels[du.Label] = true
	}
	redLabels := map[string]bool{}
	for _, du := range red.Duals {
		if !fullLabels[du.Label] {
			t.Fatalf("reduced solve reports dual for unknown row %q", du.Label)
		}
		redLabels[du.Label] = true
		if math.IsNaN(du.Lambda) || math.IsInf(du.Lambda, 0) {
			t.Fatalf("non-finite dual for %q: %v", du.Label, du.Lambda)
		}
	}
	// The reduced run's dual vector covers exactly its surviving rows:
	// the numeric (coupling) dimension plus the analytically eliminated
	// rows. Untouched buckets' invariant rows legitimately drop out.
	if len(redLabels) <= red.Stats.ReducedDualDim {
		t.Fatalf("reduced solve reported %d duals for a %d-dimensional numeric core — eliminated rows missing",
			len(redLabels), red.Stats.ReducedDualDim)
	}
}

// TestReduceComposesWithDecompose: Reduce inside a decomposed solve —
// each component takes the Schur path — still matches the plain
// decomposed solve within tolerance and reports the coupling-row
// dimension.
func TestReduceComposesWithDecompose(t *testing.T) {
	d, selected := solveWorkload(t)
	sys := workloadSystem(t, d, fractionalRules(t, selected))

	plain, err := Solve(sys, Options{Algorithm: LBFGS, Decompose: true})
	if err != nil {
		t.Fatal(err)
	}
	if v := sys.MaxViolation(plain.X); v > 1e-6 {
		t.Fatalf("plain decomposed solve infeasible by %g", v)
	}
	red, err := Solve(sys, Options{Algorithm: LBFGS, Decompose: true, Reduce: true, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !red.Stats.Converged {
		t.Fatalf("reduced decomposed solve did not converge: %s", red.Stats)
	}
	if red.Stats.ReducedDualDim >= plain.Stats.ReducedDualDim {
		t.Fatalf("reduced dual dim %d not smaller than plain decomposed %d",
			red.Stats.ReducedDualDim, plain.Stats.ReducedDualDim)
	}
	var worst float64
	for id := range plain.X {
		if diff := math.Abs(red.X[id] - plain.X[id]); diff > worst {
			worst = diff
		}
	}
	if worst > 1e-6 {
		t.Fatalf("reduced decomposed posterior differs by %g", worst)
	}
}

// TestSchurWarmStart: the reduced path consumes warm starts — coupling
// rows seed ν, eliminated rows seed their scalings — and a re-solve from
// its own duals must not take more iterations than the cold solve.
func TestSchurWarmStart(t *testing.T) {
	d, selected := solveWorkload(t)
	sys := workloadSystem(t, d, fractionalRules(t, selected))

	cold, err := Solve(sys, Options{Algorithm: LBFGS, Reduce: true})
	if err != nil {
		t.Fatal(err)
	}
	if !cold.Stats.Converged {
		t.Fatalf("cold reduced solve did not converge: %s", cold.Stats)
	}
	warm, err := Solve(sys, Options{Algorithm: LBFGS, Reduce: true, WarmStart: cold.Duals})
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Stats.Converged {
		t.Fatal("warm-started reduced solve did not converge")
	}
	if warm.Stats.Iterations > cold.Stats.Iterations {
		t.Fatalf("warm start took %d iterations, cold took %d",
			warm.Stats.Iterations, cold.Stats.Iterations)
	}
	var worst float64
	for id := range cold.X {
		if diff := math.Abs(warm.X[id] - cold.X[id]); diff > worst {
			worst = diff
		}
	}
	if worst > 1e-8 {
		t.Fatalf("warm-started posterior differs from cold by %g", worst)
	}
}

// TestFastMathTolerance: FastMath composes with Reduce and with the
// plain dual; both stay within a loose tolerance of their exact-kernel
// counterparts (the knob reassociates sums, so bit parity is not
// expected).
func TestFastMathTolerance(t *testing.T) {
	d, selected := solveWorkload(t)
	sys := workloadSystem(t, d, fractionalRules(t, selected))

	for _, reduce := range []bool{false, true} {
		exact, err := Solve(sys, Options{Algorithm: LBFGS, Reduce: reduce})
		if err != nil {
			t.Fatal(err)
		}
		fast, err := Solve(sys, Options{Algorithm: LBFGS, Reduce: reduce, FastMath: true})
		if err != nil {
			t.Fatal(err)
		}
		if v := sys.MaxViolation(fast.X); v > 1e-6 {
			t.Fatalf("reduce=%v: FastMath solve infeasible by %g", reduce, v)
		}
		var worst float64
		for id := range exact.X {
			if diff := math.Abs(fast.X[id] - exact.X[id]); diff > worst {
				worst = diff
			}
		}
		if worst > 1e-6 {
			t.Fatalf("reduce=%v: FastMath posterior differs by %g", reduce, worst)
		}
	}
}
