package maxent

import (
	"math"
	"sort"

	"privacymaxent/internal/constraint"
	"privacymaxent/internal/linalg"
	"privacymaxent/internal/solver"
)

// This file implements the structural presolve's second stage
// (Options.Reduce): analytic elimination of bucket-local invariant rows
// from the dual, Schur-complement-style.
//
// The invariant matrix is block-diagonal by bucket — only knowledge and
// individual rows couple buckets — so split the multipliers λ = (μ, ν)
// with μ on the bucket-local QI/SA invariant rows and ν on the coupling
// rows K. For the unit-coefficient invariant rows the inner minimization
// of g(μ, ν) over μ decomposes per bucket into biproportional fitting:
// with w_j(ν) = exp((Kᵀν)_j − 1), the primal factors as
//
//	x_j = α_{q(j)} · β_{s(j)} · w_j,   α_q = e^{μ_q}, β_s = e^{μ_s},
//
// and the inner stationarity conditions are exactly the row-sum
// equations Sinkhorn/IPF iterations solve: α_q ← rhs_q / Σ_j β_{s(j)} w_j
// over the QI row's terms and symmetrically for β. Terms whose SA row
// was dropped by InvariantOptions.DropRedundant (Theorem 3's gauge
// fixing) simply carry an implicit β = 1. The scalings persist across
// evaluations, so near the optimum each outer iteration's inner solve is
// one or two sweeps.
//
// The reduced dual over the coupling rows alone is the partial minimum
//
//	g̃(ν) = min_μ g(μ, ν) = Σ_j x_j(ν) − Σ_i μ*_i(ν)·c_i − νᵀk,
//
// and by the envelope theorem its gradient needs no ∂μ*/∂ν term:
//
//	∇g̃(ν) = K x(ν) − k.
//
// The numeric dual's dimension therefore scales with the coupling rows
// (≈ K knowledge rows + individual rows), not with the publication size.
// μ is recovered as log α / log β, so every surviving constraint still
// reports a Lagrange multiplier under its original label — audit
// residual attribution, binding-rule rankings and warm-start seeds keep
// working unchanged.
//
// Determinism: group and column-block partitions are functions of the
// problem shape only; each inner group owns disjoint scaling state and
// sweeps its rows in a fixed order; block partial sums combine in
// ascending order. The reduced solve is bit-identical at every worker
// count (the same guarantee the full dual kernels give).

// schurInnerTol is the relative-change tolerance of the inner scaling
// sweeps — far inside the outer GradTol so the envelope gradient stays
// consistent with the returned value.
const schurInnerTol = 1e-13

// schurMaxSweeps bounds one inner solve; with persistent scalings the
// steady-state cost is one or two sweeps, with the cold start taking a
// few hundred.
const schurMaxSweeps = 500

// schurStallTol separates "close enough" from "stalled" when the sweep
// budget runs out. IPF's geometric rate degrades toward 1 when the outer
// duals are being pushed to the boundary (certainty knowledge,
// P ∈ {0, 1}); a group still above this tolerance after the full budget
// is on that path, and the evaluation reports +Inf so the outer solver
// fails fast into the full-dual fallback instead of grinding sweeps on a
// system the reduction cannot converge anyway. Between the two
// tolerances the sweep state is accepted: the envelope gradient is
// inexact by O(1e-9), well inside the outer optimizer's line-search
// slack.
const schurStallTol = 1e-9

// schurObjective implements solver.Objective for g̃(ν) over the coupling
// rows of a presolved system whose eligible bucket-local invariant rows
// have been eliminated analytically.
type schurObjective struct {
	k     *linalg.CSR    // coupling rows × active columns
	kcols linalg.ColView // CSC view for the fused w kernel
	krhs  []float64      // coupling right-hand sides
	nCols int
	fast  bool
	run   linalg.Runner

	coupIdx  []int // coupling row index → index into the presolved rows
	localIdx []int // local scaling index → index into the presolved rows

	// One entry per eliminated local row ("scaling").
	localRHS  []float64
	localCols [][]int // active columns of each local row (aliases CSR storage)
	isBeta    []bool  // SA-invariant side (alpha otherwise)
	scale     []float64

	// Per active column: owning alpha/beta scaling, -1 when none (a
	// column may lack a beta under DropRedundant, or both in an
	// ineligible bucket whose rows stayed in the coupling set).
	alphaOf, betaOf []int32

	// groups are the connected components of local rows under shared
	// columns — the buckets, recovered structurally so the reduction also
	// serves the low-level SolveConstraints path, which has no Space.
	groups [][]int32

	w, x      []float64 // w_j(ν) and x_j = scale·w_j
	blockSums []float64
	groupLogs []float64 // per group: Σ rhs_i·log(scale_i), NaN on failure
	stalled   []bool    // per group: sweep budget exhausted above tolerance
}

// newSchurObjective partitions the presolved rows (already assembled as
// a with right-hand sides rhs) into eliminable bucket-local invariant
// rows and coupling rows. It returns nil when nothing is eliminable — the
// caller falls back to the full dual.
func newSchurObjective(a *linalg.CSR, rhs []float64, rows []rowData) *schurObjective {
	nCols := a.Cols()
	// The α/β owner maps share one backing allocation. They are all the
	// per-column state the decline paths below ever touch, so a
	// certainty-heavy workload that boundaryCoupling rejects pays one
	// int32 allocation and the partition loop — never the per-row column
	// views, group structures or IPF scaling state.
	owners := make([]int32, 2*nCols)
	for i := range owners {
		owners[i] = -1
	}
	o := &schurObjective{
		nCols:   nCols,
		alphaOf: owners[:nCols:nCols],
		betaOf:  owners[nCols:],
	}

	// A row is eliminable when it is a unit-coefficient QI/SA invariant
	// with positive mass and its columns are not already claimed on the
	// same side — each term may carry at most one α and one β factor.
	// Anything else (knowledge, individual rows, presolve-mangled
	// invariants) stays in the coupling set, which is always correct,
	// just less reduced.
	eligible := func(i int, cols []int, vals []float64) bool {
		kind := rows[i].kind
		if kind != constraint.QIInvariant && kind != constraint.SAInvariant {
			return false
		}
		if rhs[i] <= presolveTol || len(cols) == 0 {
			return false
		}
		for _, v := range vals {
			if v != 1 {
				return false
			}
		}
		owner := o.alphaOf
		if kind == constraint.SAInvariant {
			owner = o.betaOf
		}
		for _, c := range cols {
			if owner[c] != -1 {
				return false
			}
		}
		// Reject duplicate columns within the row: the closed-form
		// scaling update is exact only for unit coefficients, and a
		// repeated column is an effective coefficient of 2.
		for k := 1; k < len(cols); k++ {
			for l := 0; l < k; l++ {
				if cols[k] == cols[l] {
					return false
				}
			}
		}
		return true
	}

	for i := range rows {
		cols, vals := a.Row(i)
		if !eligible(i, cols, vals) {
			o.coupIdx = append(o.coupIdx, i)
			continue
		}
		li := int32(len(o.localIdx))
		owner := o.alphaOf
		if rows[i].kind == constraint.SAInvariant {
			owner = o.betaOf
		}
		for _, c := range cols {
			owner[c] = li
		}
		o.localIdx = append(o.localIdx, i)
		o.localRHS = append(o.localRHS, rhs[i])
	}
	if len(o.localIdx) == 0 {
		return nil
	}
	if o.boundaryCoupling(a, rhs) {
		// A certainty row (P ∈ {0, 1} knowledge) pins part of an
		// eliminated row's mass exactly, forcing the complement terms to
		// zero — the dual optimum is at infinity and neither the reduced
		// nor the full solve converges, but the reduced attempt would pay
		// its whole stall-and-fallback cost first. Skip it outright —
		// before the per-row column views and the IPF scaling state below
		// are ever built, so a declined system costs only the owner maps.
		return nil
	}
	// The elimination goes ahead: materialize the per-row structures the
	// group partition and the scaling sweeps need (deferred until here so
	// the decline paths above never allocate them).
	o.localCols = make([][]int, len(o.localIdx))
	o.isBeta = make([]bool, len(o.localIdx))
	for li, ri := range o.localIdx {
		cols, _ := a.Row(ri)
		o.localCols[li] = cols
		o.isBeta[li] = rows[ri].kind == constraint.SAInvariant
	}
	o.buildGroups()
	o.demoteIncompleteGroups()
	if len(o.localIdx) == 0 {
		return nil
	}

	o.k = linalg.NewCSR(nCols)
	for _, i := range o.coupIdx {
		cols, vals := a.Row(i)
		if err := o.k.AppendRow(cols, vals); err != nil {
			return nil // defensive: fall back to the full dual
		}
		o.krhs = append(o.krhs, rhs[i])
	}
	o.kcols = o.k.Columns()

	o.scale = make([]float64, len(o.localIdx))
	for i := range o.scale {
		o.scale[i] = 1
	}
	o.w = make([]float64, nCols)
	o.x = make([]float64, nCols)
	o.blockSums = make([]float64, linalg.NumBlocks(nCols))
	o.groupLogs = make([]float64, len(o.groups))
	o.stalled = make([]bool, len(o.groups))
	return o
}

// boundaryCoupling reports whether any unit-coefficient coupling row
// pins exactly the full mass of the eliminated rows it intersects: when
// every column of the row is owned by α (or β) scalings and the row's
// right-hand side equals the sum of those scalings' right-hand sides,
// the terms those scalings own outside the row are forced to zero. That
// is the P = 1 certainty-knowledge signature — the dual optimum sits at
// infinity, IPF's contraction degrades to a stall, and the cheapest
// correct move is to not attempt the reduction at all.
func (o *schurObjective) boundaryCoupling(a *linalg.CSR, rhs []float64) bool {
	var seen []int32
	side := func(i int, cols []int, owner []int32) bool {
		var sum float64
		seen = seen[:0]
		for _, c := range cols {
			li := owner[c]
			if li < 0 {
				return false // unowned column: mass argument does not close
			}
			dup := false
			for _, s := range seen {
				if s == li {
					dup = true
					break
				}
			}
			if !dup {
				seen = append(seen, li)
				sum += o.localRHS[li]
			}
		}
		return sum-rhs[i] <= presolveTol
	}
	for _, i := range o.coupIdx {
		cols, vals := a.Row(i)
		if len(cols) == 0 {
			continue
		}
		unit := true
		for _, v := range vals {
			if v != 1 {
				unit = false
				break
			}
		}
		if !unit {
			continue
		}
		if side(i, cols, o.alphaOf) || side(i, cols, o.betaOf) {
			return true
		}
	}
	return false
}

// buildGroups unions local rows that share a column — exactly the bucket
// structure, recovered without a Space. Groups are ordered by smallest
// member and each group's rows ascend, so the sweep order is a function
// of the problem shape only.
func (o *schurObjective) buildGroups() {
	n := len(o.localIdx)
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(int32) int32
	find = func(i int32) int32 {
		if parent[i] != i {
			parent[i] = find(parent[i])
		}
		return parent[i]
	}
	colOwner := make([]int32, o.nCols)
	for c := range colOwner {
		colOwner[c] = -1
	}
	for li := int32(0); li < int32(n); li++ {
		for _, c := range o.localCols[li] {
			if colOwner[c] == -1 {
				colOwner[c] = li
			} else {
				parent[find(li)] = find(colOwner[c])
			}
		}
	}
	byRoot := make(map[int32][]int32)
	var roots []int32
	for li := int32(0); li < int32(n); li++ {
		r := find(li)
		if _, ok := byRoot[r]; !ok {
			roots = append(roots, r)
		}
		byRoot[r] = append(byRoot[r], li)
	}
	// Ascending row order within a group is append order; groups ordered
	// by their smallest member, which is the first root encountered.
	o.groups = make([][]int32, 0, len(roots))
	for _, r := range roots {
		o.groups = append(o.groups, byRoot[r])
	}
}

// groupComplete reports whether the group's active support is a full
// grid: every β-row column carries an α factor and every α row touches
// each of the group's β classes — the implicit dropped class included —
// exactly once. Over such a grid the inner problem is matrix scaling of
// a strictly positive matrix, for which Sinkhorn's theorem guarantees
// positive scalings and geometric sweep convergence. Incomplete supports
// — cells pinned to zero by P = 0 knowledge — can push the scaling
// optimum to the boundary, where the sweeps degrade to sublinear
// convergence and the capped inner solve would return a low-accuracy
// point; those groups are demoted to the coupling set, which the outer
// optimizer handles at full accuracy.
func (o *schurObjective) groupComplete(members []int32) bool {
	var sig, cur []int32
	first := true
	for _, li := range members {
		cols := o.localCols[li]
		if o.isBeta[li] {
			for _, c := range cols {
				if o.alphaOf[c] < 0 {
					return false
				}
			}
			continue
		}
		cur = cur[:0]
		for _, c := range cols {
			cur = append(cur, o.betaOf[c])
		}
		sort.Slice(cur, func(a, b int) bool { return cur[a] < cur[b] })
		for k := 1; k < len(cur); k++ {
			if cur[k] == cur[k-1] {
				return false
			}
		}
		if first {
			sig = append(sig[:0], cur...)
			first = false
			continue
		}
		if len(cur) != len(sig) {
			return false
		}
		for k := range cur {
			if cur[k] != sig[k] {
				return false
			}
		}
	}
	return true
}

// demoteIncompleteGroups moves every group that fails groupComplete back
// into the coupling set and compacts the local structures, remapping the
// surviving groups' indices. Demotion never cascades: surviving groups
// share no columns with demoted rows (shared columns would have merged
// the groups), so one validation pass suffices.
func (o *schurObjective) demoteIncompleteGroups() {
	keep := make([]bool, len(o.groups))
	anyDrop := false
	for g, members := range o.groups {
		keep[g] = o.groupComplete(members)
		if !keep[g] {
			anyDrop = true
		}
	}
	if !anyDrop {
		return
	}
	dropLocal := make([]bool, len(o.localIdx))
	for g, members := range o.groups {
		if keep[g] {
			continue
		}
		for _, li := range members {
			dropLocal[li] = true
		}
	}
	for c := range o.alphaOf {
		o.alphaOf[c] = -1
		o.betaOf[c] = -1
	}
	remap := make([]int32, len(o.localIdx))
	var localIdx []int
	var localRHS []float64
	var localCols [][]int
	var isBeta []bool
	for li := range o.localIdx {
		if dropLocal[li] {
			remap[li] = -1
			o.coupIdx = append(o.coupIdx, o.localIdx[li])
			continue
		}
		nli := int32(len(localIdx))
		remap[li] = nli
		owner := o.alphaOf
		if o.isBeta[li] {
			owner = o.betaOf
		}
		for _, c := range o.localCols[li] {
			owner[c] = nli
		}
		localIdx = append(localIdx, o.localIdx[li])
		localRHS = append(localRHS, o.localRHS[li])
		localCols = append(localCols, o.localCols[li])
		isBeta = append(isBeta, o.isBeta[li])
	}
	// Demoted rows rejoin the coupling set in presolved-row order, so the
	// coupling system's assembly stays deterministic.
	sort.Ints(o.coupIdx)
	o.localIdx, o.localRHS, o.localCols, o.isBeta = localIdx, localRHS, localCols, isBeta
	groups := o.groups[:0]
	for g, members := range o.groups {
		if !keep[g] {
			continue
		}
		ms := make([]int32, 0, len(members))
		for _, li := range members {
			ms = append(ms, remap[li])
		}
		groups = append(groups, ms)
	}
	o.groups = groups
}

// setRunner installs the block executor (shared with the component pool).
func (o *schurObjective) setRunner(run linalg.Runner) { o.run = run }

// setFastMath switches the w kernel and the gradient kernel to the
// multi-accumulator flavours.
func (o *schurObjective) setFastMath(fast bool) { o.fast = fast }

// seedScale warm-starts one local row's scaling from a previous dual
// (scale = e^{μ}).
func (o *schurObjective) seedScale(li int, mu float64) {
	if s := math.Exp(mu); s > 0 && !math.IsInf(s, 0) {
		o.scale[li] = s
	}
}

func (o *schurObjective) forBlocks(nb int, fn func(b int)) {
	if o.run == nil {
		for b := 0; b < nb; b++ {
			fn(b)
		}
		return
	}
	o.run(nb, fn)
}

// Dim is the reduced dual dimension: coupling rows only.
func (o *schurObjective) Dim() int { return o.k.Rows() }

// computeW evaluates w_j = exp((Kᵀν)_j − 1) with the fused blocked
// kernel. Columns no coupling row touches get w = e^{−1} (exponent 0).
func (o *schurObjective) computeW(nu []float64) {
	o.forBlocks(linalg.NumBlocks(o.nCols), func(b int) {
		lo, hi := linalg.BlockBounds(b, o.nCols)
		if o.fast {
			o.kcols.ExpDotsFast(nu, o.w, lo, hi)
		} else {
			o.kcols.ExpDots(nu, o.w, lo, hi)
		}
	})
}

// innerSolve runs the per-group scaling sweeps to the inner tolerance,
// starting from the persisted scalings. A group whose sweep encounters a
// non-finite scaling (overflowed w during an aggressive line-search
// probe) records NaN — the caller turns that into +Inf — and resets its
// scalings so the next evaluation restarts cleanly.
func (o *schurObjective) innerSolve() {
	o.forBlocks(len(o.groups), func(g int) {
		rows := o.groups[g]
		ok := true
		lastRel := math.Inf(1)
	sweeps:
		for sweep := 0; sweep < schurMaxSweeps; sweep++ {
			var maxRel float64
			for _, li := range rows {
				cols := o.localCols[li]
				partner := o.betaOf
				if o.isBeta[li] {
					partner = o.alphaOf
				}
				var denom float64
				for _, c := range cols {
					s := o.w[c]
					if p := partner[c]; p >= 0 {
						s *= o.scale[p]
					}
					denom += s
				}
				ns := o.localRHS[li] / denom
				if math.IsNaN(ns) || math.IsInf(ns, 0) || ns <= 0 {
					ok = false
					break sweeps
				}
				rel := math.Abs(ns-o.scale[li]) / ns
				o.scale[li] = ns
				if rel > maxRel {
					maxRel = rel
				}
			}
			lastRel = maxRel
			if maxRel <= schurInnerTol {
				break
			}
		}
		o.stalled[g] = lastRel > schurStallTol
		if !ok {
			o.stalled[g] = false // non-finite, not slow: handled via NaN
			for _, li := range rows {
				o.scale[li] = 1
			}
			o.groupLogs[g] = math.NaN()
			return
		}
		var logs float64
		for _, li := range rows {
			logs += o.localRHS[li] * math.Log(o.scale[li])
		}
		o.groupLogs[g] = logs
	})
}

// computeX materializes x_j = α·β·w_j and returns Σ_j x_j combined in
// ascending block order.
func (o *schurObjective) computeX() float64 {
	o.forBlocks(linalg.NumBlocks(o.nCols), func(b int) {
		lo, hi := linalg.BlockBounds(b, o.nCols)
		var sum float64
		for c := lo; c < hi; c++ {
			v := o.w[c]
			if a := o.alphaOf[c]; a >= 0 {
				v *= o.scale[a]
			}
			if bt := o.betaOf[c]; bt >= 0 {
				v *= o.scale[bt]
			}
			o.x[c] = v
			sum += v
		}
		o.blockSums[b] = sum
	})
	var sum float64
	for _, v := range o.blockSums {
		sum += v
	}
	return sum
}

// Eval computes g̃(ν) and ∇g̃(ν) = K x(ν) − k.
func (o *schurObjective) Eval(nu, grad []float64) float64 {
	o.computeW(nu)
	o.innerSolve()
	f := o.computeX()
	for _, gl := range o.groupLogs {
		f -= gl
	}
	f -= linalg.Dot(nu, o.krhs)

	m := o.k.Rows()
	o.forBlocks(linalg.NumBlocks(m), func(b int) {
		lo, hi := linalg.BlockBounds(b, m)
		if o.fast {
			o.k.MulVecRangeFast(o.x, grad, lo, hi)
		} else {
			o.k.MulVecRange(o.x, grad, lo, hi)
		}
		for i := lo; i < hi; i++ {
			grad[i] -= o.krhs[i]
		}
	})
	if math.IsNaN(f) {
		// A failed inner solve (or Inf−Inf) — report an infinite value so
		// the line search backs off, exactly like an overflowed full dual.
		return math.Inf(1)
	}
	for _, st := range o.stalled {
		if st {
			// The inner scaling slowed past its budget — the outer duals are
			// heading for the boundary. +Inf makes the line search fail fast
			// so the caller's full-dual fallback takes over while the failed
			// attempt is still cheap.
			return math.Inf(1)
		}
	}
	return f
}

// Primal recovers x(ν) into dst (length = active variables). The inner
// state is already converged at the optimizer's final ν; the extra solve
// is a no-op sweep.
func (o *schurObjective) Primal(nu, dst []float64) {
	o.computeW(nu)
	o.innerSolve()
	o.computeX()
	copy(dst, o.x)
}

// localDual reports the recovered multiplier μ = log(scale) of an
// eliminated row, valid after Primal.
func (o *schurObjective) localDual(li int) float64 { return math.Log(o.scale[li]) }

// solveSchur runs the outer optimizer on the Schur-reduced dual and maps
// the result back onto the presolved system: the active primal values
// into xActive and one Lagrange multiplier per surviving row — ν for
// coupling rows, log of the recovered scaling for eliminated rows — into
// sol.Duals in presolved-row order, exactly like the full dual path.
func solveSchur(sol *Solution, obj *schurObjective, red *reduced, warm map[string]float64, opts Options, run linalg.Runner, xActive []float64) error {
	obj.setRunner(run)
	obj.setFastMath(opts.FastMath)
	sol.Stats.ReducedDualDim = obj.Dim()

	nu := make([]float64, obj.Dim())
	if warm != nil {
		for ci, ri := range obj.coupIdx {
			if v, ok := warm[red.rows[ri].label]; ok {
				nu[ci] = v
			}
		}
		for li, ri := range obj.localIdx {
			if v, ok := warm[red.rows[ri].label]; ok {
				obj.seedScale(li, v)
			}
		}
	}

	if obj.Dim() == 0 {
		// Every surviving row was eliminated analytically (e.g. presolve
		// removed all coupling rows): one inner scaling solve is the
		// whole numeric solve.
		obj.Primal(nu, xActive)
		sol.Stats.Converged = true
	} else {
		var res solver.Result
		var err error
		if opts.Algorithm == LBFGS {
			res, err = solver.LBFGS(obj, nu, opts.Solver)
		} else {
			res, err = solver.SteepestDescent(obj, nu, opts.Solver)
		}
		if err != nil {
			// A failed reduced attempt — +Inf at the start (stalled inner
			// scaling on a boundary-bound system) or a collapsed line search
			// — is not fatal: report non-convergence so the caller falls back
			// to the full dual. The duals mapped below still carry the warm
			// seed plus whatever the inner solve recovered.
			sol.Stats.Converged = false
		} else {
			obj.Primal(res.X, xActive)
			sol.Stats.Iterations = res.Iterations
			sol.Stats.Evaluations = res.Evaluations
			sol.Stats.Converged = res.Converged
			nu = res.X
		}
	}

	duals := make([]float64, len(red.rows))
	for ci, ri := range obj.coupIdx {
		duals[ri] = nu[ci]
	}
	for li, ri := range obj.localIdx {
		duals[ri] = obj.localDual(li)
	}
	for i, row := range red.rows {
		sol.Duals = append(sol.Duals, ConstraintDual{Label: row.label, Kind: row.kind, Lambda: duals[i]})
	}
	return nil
}
