package maxent

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"privacymaxent/internal/constraint"
	"privacymaxent/internal/solver"
)

// randomFeasibleConstraints builds m random sparse equality rows over n
// variables whose right-hand sides come from evaluating the rows at a
// random strictly-positive interior point, so the system is feasible by
// construction and the dual has a finite minimizer.
func randomFeasibleConstraints(rng *rand.Rand, n, m int) []constraint.Constraint {
	x0 := make([]float64, n)
	for i := range x0 {
		x0[i] = 0.05 + 0.4*rng.Float64()
	}
	cons := make([]constraint.Constraint, 0, m)
	for i := 0; i < m; i++ {
		nnz := 2 + rng.Intn(6)
		terms := make([]int, 0, nnz)
		seen := map[int]bool{}
		for len(terms) < nnz {
			t := rng.Intn(n)
			if !seen[t] {
				seen[t] = true
				terms = append(terms, t)
			}
		}
		coeffs := make([]float64, nnz)
		rhs := 0.0
		for k, t := range terms {
			coeffs[k] = 0.2 + rng.Float64()
			rhs += coeffs[k] * x0[t]
		}
		cons = append(cons, constraint.Constraint{
			Kind: constraint.Knowledge, Label: fmt.Sprintf("r%d", i),
			Terms: terms, Coeffs: coeffs, RHS: rhs,
		})
	}
	return cons
}

// kernelWorkerGrid is the property-test grid: serial kernels, a width
// below GOMAXPROCS-style counts, and a width far above the container's
// CPU count (oversubscription must not change results either).
var kernelWorkerGrid = []int{-1, 2, 8}

// TestKernelWorkersBitIdentical is the central determinism property of
// the blocked kernels: for every dual algorithm, the solution vector and
// the iteration/evaluation counts are bit-for-bit identical at every
// kernel worker count, across random feasible systems whose active
// variable counts span the block-partition boundary.
func TestKernelWorkersBitIdentical(t *testing.T) {
	algs := []Algorithm{LBFGS, Newton, SteepestDescent}
	sizes := [][2]int{{40, 6}, {700, 10}, {1300, 12}}
	for trial, sz := range sizes {
		rng := rand.New(rand.NewSource(int64(300 + trial)))
		n, m := sz[0], sz[1]
		cons := randomFeasibleConstraints(rng, n, m)
		init := make([]float64, n)
		for i := range init {
			init[i] = 1.0 / float64(n)
		}
		for _, alg := range algs {
			opts := Options{Algorithm: alg, KernelWorkers: -1}
			opts.Solver.MaxIterations = 400
			opts.Solver.GradTol = 1e-10
			want, wantStats, err := SolveConstraints(n, cons, init, opts)
			if err != nil {
				t.Fatalf("n=%d %v serial: %v", n, alg, err)
			}
			if wantStats.KernelWorkers != 1 || wantStats.Workers != 1 {
				t.Fatalf("n=%d %v serial recorded workers=%d kernel=%d, want 1/1",
					n, alg, wantStats.Workers, wantStats.KernelWorkers)
			}
			for _, kw := range kernelWorkerGrid[1:] {
				opts.KernelWorkers = kw
				got, gotStats, err := SolveConstraints(n, cons, init, opts)
				if err != nil {
					t.Fatalf("n=%d %v kw=%d: %v", n, alg, kw, err)
				}
				for j := range want {
					if got[j] != want[j] {
						t.Fatalf("n=%d %v kw=%d: x[%d] = %x, serial %x", n, alg, kw, j, got[j], want[j])
					}
				}
				if gotStats.Iterations != wantStats.Iterations || gotStats.Evaluations != wantStats.Evaluations {
					t.Fatalf("n=%d %v kw=%d: %d iters/%d evals, serial %d/%d — trajectory diverged",
						n, alg, kw, gotStats.Iterations, gotStats.Evaluations, wantStats.Iterations, wantStats.Evaluations)
				}
				if gotStats.KernelWorkers != kw {
					t.Fatalf("n=%d %v kw=%d: Stats.KernelWorkers = %d", n, alg, kw, gotStats.KernelWorkers)
				}
			}
		}
	}
}

// TestKernelWorkersSolveParity runs the full Solve path — presolve,
// optional decomposition, warm collection of duals and trajectories — on
// a real Adult-style workload and asserts posteriors, trajectories and
// duals are bit-identical at every kernel worker count, with and without
// decomposition. This is the serial-vs-parallel parity that auditdiff
// certifies on audit snapshots: identical X means identical residuals,
// identical trajectories mean identical iteration records.
func TestKernelWorkersSolveParity(t *testing.T) {
	d, selected := solveWorkload(t)
	for _, decompose := range []bool{false, true} {
		var want *Solution
		for _, kw := range kernelWorkerGrid {
			opts := Options{Decompose: decompose, Workers: -1, KernelWorkers: kw, CaptureTrace: true}
			opts.Solver.MaxIterations = 3000
			opts.Solver.GradTol = 1e-7
			sol, err := Solve(workloadSystem(t, d, selected), opts)
			if err != nil {
				t.Fatalf("decompose=%v kw=%d: %v", decompose, kw, err)
			}
			if !sol.Stats.Converged {
				t.Fatalf("decompose=%v kw=%d did not converge", decompose, kw)
			}
			if want == nil {
				want = sol
				continue
			}
			for j := range want.X {
				if sol.X[j] != want.X[j] {
					t.Fatalf("decompose=%v kw=%d: X[%d] = %x, serial %x", decompose, kw, j, sol.X[j], want.X[j])
				}
			}
			if !reflect.DeepEqual(sol.Trajectory, want.Trajectory) {
				t.Fatalf("decompose=%v kw=%d: trajectory diverged (%d vs %d points)",
					decompose, kw, len(sol.Trajectory), len(want.Trajectory))
			}
			if !reflect.DeepEqual(sol.Duals, want.Duals) {
				t.Fatalf("decompose=%v kw=%d: duals diverged", decompose, kw)
			}
		}
	}
}

// TestNonDecomposedWorkersReported: the non-decomposed path reports the
// kernel width as the solve's parallelism instead of hard-coding 1 (the
// old bug), and a serial request still reports 1.
func TestNonDecomposedWorkersReported(t *testing.T) {
	d, selected := solveWorkload(t)
	opts := Options{KernelWorkers: 3}
	opts.Solver.MaxIterations = 3000
	opts.Solver.GradTol = 1e-6
	sol, err := Solve(workloadSystem(t, d, selected), opts)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Stats.KernelWorkers != 3 || sol.Stats.Workers != 3 {
		t.Fatalf("non-decomposed solve recorded workers=%d kernel=%d, want 3/3",
			sol.Stats.Workers, sol.Stats.KernelWorkers)
	}
	opts.KernelWorkers = -1
	sol, err = Solve(workloadSystem(t, d, selected), opts)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Stats.KernelWorkers != 1 || sol.Stats.Workers != 1 {
		t.Fatalf("serial-kernel solve recorded workers=%d kernel=%d, want 1/1",
			sol.Stats.Workers, sol.Stats.KernelWorkers)
	}
}

// TestKernelWorkerCountResolution pins the option semantics: zero
// inherits the resolved component worker count, negatives force 1.
func TestKernelWorkerCountResolution(t *testing.T) {
	if got, want := (Options{}).kernelWorkerCount(), (Options{}).workerCount(); got != want {
		t.Fatalf("zero KernelWorkers resolved to %d, want inherited %d", got, want)
	}
	if got := (Options{Workers: 6}).kernelWorkerCount(); got != 6 {
		t.Fatalf("inherit from Workers=6 resolved to %d", got)
	}
	if got := (Options{Workers: 6, KernelWorkers: -2}).kernelWorkerCount(); got != 1 {
		t.Fatalf("negative KernelWorkers resolved to %d, want 1", got)
	}
	if got := (Options{KernelWorkers: 5}).kernelWorkerCount(); got != 5 {
		t.Fatalf("explicit KernelWorkers resolved to %d, want 5", got)
	}
}

// TestCancelMidKernelDrains cancels the context from inside the solve —
// after the first optimizer iteration, while the parallel kernels are
// hot — and checks the solver surfaces ErrInterrupted and the shared
// pool drains cleanly (run with -race, nothing may still be touching the
// kernel buffers when Solve returns; the deferred pool Close would hang
// if a region leaked).
func TestCancelMidKernelDrains(t *testing.T) {
	d, selected := solveWorkload(t)
	for _, decompose := range []bool{false, true} {
		ctx, cancel := context.WithCancel(context.Background())
		opts := Options{Decompose: decompose, KernelWorkers: 4}
		opts.Solver.MaxIterations = 3000
		opts.Solver.GradTol = 1e-12 // keep it running until cancelled
		opts.Solver.Trace = func(ev solver.TraceEvent) {
			if ev.Iteration >= 1 {
				cancel()
			}
		}
		_, err := SolveContext(ctx, workloadSystem(t, d, selected), opts)
		cancel()
		if !errors.Is(err, solver.ErrInterrupted) {
			t.Fatalf("decompose=%v: got %v, want ErrInterrupted", decompose, err)
		}
	}
}
