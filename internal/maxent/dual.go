// Package maxent solves the paper's Maximum Entropy modeling problem
// (Definition 3.1): maximize H(x) = −Σ x log x over the probability terms
// x = P(Q,S,B), subject to the linear constraint system A x = c assembled
// from the published data's invariants and from background knowledge.
//
// The Lagrangian dual is used, exactly as the paper's evaluation does
// ("we apply the method of Lagrange multipliers to convert this
// constrained optimization problem to an unconstrained optimization
// problem, which is then solved using LBFGS"). Stationarity of
//
//	L(x, λ) = −Σ_j x_j log x_j + Σ_i λ_i ((A x)_i − c_i)
//
// gives x_j(λ) = exp((Aᵀλ)_j − 1), and the convex dual to minimize is
//
//	g(λ) = Σ_j exp((Aᵀλ)_j − 1) − λᵀc,   ∇g(λ) = A x(λ) − c.
//
// No explicit normalization is needed: the QI-invariant right-hand sides
// sum to 1, so feasibility of A x = c already pins the total mass.
package maxent

import (
	"math"

	"privacymaxent/internal/linalg"
)

// dualObjective implements solver.Objective for g(λ) over a reduced
// (presolved) constraint system. Its work buffers come from a shared
// pool (dualScratch); callers must release() the objective when the
// solve — including any Primal recovery — is finished.
type dualObjective struct {
	a       *linalg.CSR // m rows (constraints) × n cols (active variables)
	c       []float64   // right-hand sides, length m
	scratch *dualScratch
	hessOK  bool // scratch.touch/coeff hold this matrix's adjacency
}

func newDualObjective(a *linalg.CSR, c []float64) *dualObjective {
	return &dualObjective{
		a:       a,
		c:       c,
		scratch: newDualScratch(a.Rows(), a.Cols()),
	}
}

// release returns the objective's scratch buffers to the pool. The
// objective must not be used afterwards.
func (d *dualObjective) release() {
	if d.scratch != nil {
		d.scratch.release()
		d.scratch = nil
	}
}

// Dim is the number of Lagrange multipliers (one per constraint).
func (d *dualObjective) Dim() int { return d.a.Rows() }

// Eval computes g(λ) and its gradient. Exponents are evaluated directly;
// if λ wanders into overflow territory the +Inf propagates and the
// strong-Wolfe line search backs off.
func (d *dualObjective) Eval(lambda, grad []float64) float64 {
	s := d.scratch
	d.a.MulTVec(lambda, s.eta)
	var sumExp float64
	for j, e := range s.eta {
		v := math.Exp(e - 1)
		s.x[j] = v
		sumExp += v
	}
	f := sumExp - linalg.Dot(lambda, d.c)
	d.a.MulVec(s.x, s.ax)
	for i := range grad {
		grad[i] = s.ax[i] - d.c[i]
	}
	return f
}

// Primal recovers x(λ) into dst (length = number of active variables).
func (d *dualObjective) Primal(lambda, dst []float64) {
	d.a.MulTVec(lambda, d.scratch.eta)
	for j, e := range d.scratch.eta {
		dst[j] = math.Exp(e - 1)
	}
}

// hessAdjacency returns, for each variable, the rows touching it and
// their coefficients. The adjacency depends only on the constraint
// matrix, so it is built once per objective (on pooled buffers) and
// reused across Newton iterations instead of rebuilt per Hessian call.
func (d *dualObjective) hessAdjacency() ([][]int, [][]float64) {
	s := d.scratch
	if !d.hessOK {
		s.touch = growIntRows(s.touch, d.a.Cols())
		s.coeff = growFloatRows(s.coeff, d.a.Cols())
		for r := 0; r < d.a.Rows(); r++ {
			cols, vals := d.a.Row(r)
			for k, cIdx := range cols {
				s.touch[cIdx] = append(s.touch[cIdx], r)
				s.coeff[cIdx] = append(s.coeff[cIdx], vals[k])
			}
		}
		d.hessOK = true
	}
	return s.touch, s.coeff
}

// Hessian writes ∇²g(λ) = A·diag(x(λ))·Aᵀ into h, enabling Newton's
// method on duals with few constraints.
func (d *dualObjective) Hessian(lambda []float64, h [][]float64) {
	s := d.scratch
	d.a.MulTVec(lambda, s.eta)
	for j, e := range s.eta {
		s.x[j] = math.Exp(e - 1)
	}
	m := d.a.Rows()
	for i := 0; i < m; i++ {
		row := h[i]
		for k := range row {
			row[k] = 0
		}
	}
	// Accumulate Σ_j x_j a_j a_jᵀ column by column: for every variable j,
	// the rows touching it contribute pairwise products.
	touch, coeff := d.hessAdjacency()
	for j := range touch {
		xj := s.x[j]
		rows := touch[j]
		cs := coeff[j]
		for a := range rows {
			for b := range rows {
				h[rows[a]][rows[b]] += xj * cs[a] * cs[b]
			}
		}
	}
}
