// Package maxent solves the paper's Maximum Entropy modeling problem
// (Definition 3.1): maximize H(x) = −Σ x log x over the probability terms
// x = P(Q,S,B), subject to the linear constraint system A x = c assembled
// from the published data's invariants and from background knowledge.
//
// The Lagrangian dual is used, exactly as the paper's evaluation does
// ("we apply the method of Lagrange multipliers to convert this
// constrained optimization problem to an unconstrained optimization
// problem, which is then solved using LBFGS"). Stationarity of
//
//	L(x, λ) = −Σ_j x_j log x_j + Σ_i λ_i ((A x)_i − c_i)
//
// gives x_j(λ) = exp((Aᵀλ)_j − 1), and the convex dual to minimize is
//
//	g(λ) = Σ_j exp((Aᵀλ)_j − 1) − λᵀc,   ∇g(λ) = A x(λ) − c.
//
// No explicit normalization is needed: the QI-invariant right-hand sides
// sum to 1, so feasibility of A x = c already pins the total mass.
package maxent

import (
	"privacymaxent/internal/linalg"
)

// dualObjective implements solver.Objective for g(λ) over a reduced
// (presolved) constraint system. Its work buffers come from a shared
// pool (dualScratch); callers must release() the objective when the
// solve — including any Primal recovery — is finished.
//
// Both hot kernels are blocked over the fixed linalg partition so an
// optional Runner can execute blocks concurrently: (1) a fused
// Aᵀλ → exp → partial-partition pass, one column-gather, exponential and
// block-local sum per term, with the block sums combined in ascending
// block order afterwards; (2) the gradient pass A·x(λ) − c over row
// blocks. The partition and combination order are functions of the
// problem shape only, so the objective value, gradient, primal recovery
// — and therefore the whole optimizer trajectory — are bit-identical at
// every worker count, including the serial Runner-less path.
type dualObjective struct {
	a       *linalg.CSR    // m rows (constraints) × n cols (active variables)
	cols    linalg.ColView // CSC view the fused kernel gathers from
	c       []float64      // right-hand sides, length m
	scratch *dualScratch
	hessOK  bool          // scratch.touch/coeff hold this matrix's adjacency
	run     linalg.Runner // block executor; nil runs blocks serially
	fast    bool          // multi-accumulator kernels (Options.FastMath)
}

func newDualObjective(a *linalg.CSR, c []float64) *dualObjective {
	return &dualObjective{
		a:       a,
		cols:    a.Columns(),
		c:       c,
		scratch: newDualScratch(a.Cols()),
	}
}

// setRunner installs the executor the blocked kernels fan out on; nil
// (the default) keeps every kernel on the calling goroutine.
func (d *dualObjective) setRunner(run linalg.Runner) { d.run = run }

// setFastMath switches the blocked kernels to their multi-accumulator
// flavours (linalg.ExpDotsFast / MulVecRangeFast). Reassociated sums are
// not bit-identical to the exact kernels; see Options.FastMath.
func (d *dualObjective) setFastMath(fast bool) { d.fast = fast }

// forBlocks executes fn for every block index in [0, nb), on the runner
// when one is installed.
func (d *dualObjective) forBlocks(nb int, fn func(b int)) {
	if d.run == nil {
		for b := 0; b < nb; b++ {
			fn(b)
		}
		return
	}
	d.run(nb, fn)
}

// release returns the objective's scratch buffers to the pool. The
// objective must not be used afterwards.
func (d *dualObjective) release() {
	if d.scratch != nil {
		d.scratch.release()
		d.scratch = nil
	}
}

// Dim is the number of Lagrange multipliers (one per constraint).
func (d *dualObjective) Dim() int { return d.a.Rows() }

// Eval computes g(λ) and its gradient. Exponents are evaluated directly;
// if λ wanders into overflow territory the +Inf propagates and the
// strong-Wolfe line search backs off.
//
// The η = Aᵀλ intermediate of the textbook formulation is fused away:
// each term's exponent is gathered, exponentiated and accumulated into
// its block's partition-sum share in one pass, saving a full read+write
// sweep over the term space per evaluation.
func (d *dualObjective) Eval(lambda, grad []float64) float64 {
	s := d.scratch
	n := d.a.Cols()
	nbCols := linalg.NumBlocks(n)
	s.blockSums = growFloats(s.blockSums, nbCols)
	d.forBlocks(nbCols, func(b int) {
		lo, hi := linalg.BlockBounds(b, n)
		if d.fast {
			s.blockSums[b] = d.cols.ExpDotsFast(lambda, s.x, lo, hi)
		} else {
			s.blockSums[b] = d.cols.ExpDots(lambda, s.x, lo, hi)
		}
	})
	var sumExp float64
	for _, v := range s.blockSums {
		sumExp += v
	}
	f := sumExp - linalg.Dot(lambda, d.c)

	m := d.a.Rows()
	d.forBlocks(linalg.NumBlocks(m), func(b int) {
		lo, hi := linalg.BlockBounds(b, m)
		if d.fast {
			d.a.MulVecRangeFast(s.x, grad, lo, hi)
		} else {
			d.a.MulVecRange(s.x, grad, lo, hi)
		}
		for i := lo; i < hi; i++ {
			grad[i] -= d.c[i]
		}
	})
	return f
}

// Primal recovers x(λ) into dst (length = number of active variables).
// Always the exact kernel: the final posterior write-back stays
// bit-stable even under FastMath line searches.
func (d *dualObjective) Primal(lambda, dst []float64) {
	n := d.a.Cols()
	d.forBlocks(linalg.NumBlocks(n), func(b int) {
		lo, hi := linalg.BlockBounds(b, n)
		d.cols.ExpDots(lambda, dst, lo, hi)
	})
}

// hessAdjacency returns, for each variable, the rows touching it and
// their coefficients. The adjacency depends only on the constraint
// matrix, so it is built once per objective (on pooled buffers) and
// reused across Newton iterations instead of rebuilt per Hessian call.
func (d *dualObjective) hessAdjacency() ([][]int, [][]float64) {
	s := d.scratch
	if !d.hessOK {
		s.touch = growIntRows(s.touch, d.a.Cols())
		s.coeff = growFloatRows(s.coeff, d.a.Cols())
		for r := 0; r < d.a.Rows(); r++ {
			cols, vals := d.a.Row(r)
			for k, cIdx := range cols {
				s.touch[cIdx] = append(s.touch[cIdx], r)
				s.coeff[cIdx] = append(s.coeff[cIdx], vals[k])
			}
		}
		d.hessOK = true
	}
	return s.touch, s.coeff
}

// Hessian writes ∇²g(λ) = A·diag(x(λ))·Aᵀ into h, enabling Newton's
// method on duals with few constraints.
func (d *dualObjective) Hessian(lambda []float64, h [][]float64) {
	s := d.scratch
	d.Primal(lambda, s.x)
	m := d.a.Rows()
	for i := 0; i < m; i++ {
		row := h[i]
		for k := range row {
			row[k] = 0
		}
	}
	// Accumulate Σ_j x_j a_j a_jᵀ column by column: for every variable j,
	// the rows touching it contribute pairwise products.
	touch, coeff := d.hessAdjacency()
	for j := range touch {
		xj := s.x[j]
		rows := touch[j]
		cs := coeff[j]
		for a := range rows {
			for b := range rows {
				h[rows[a]][rows[b]] += xj * cs[a] * cs[b]
			}
		}
	}
}
