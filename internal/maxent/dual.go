// Package maxent solves the paper's Maximum Entropy modeling problem
// (Definition 3.1): maximize H(x) = −Σ x log x over the probability terms
// x = P(Q,S,B), subject to the linear constraint system A x = c assembled
// from the published data's invariants and from background knowledge.
//
// The Lagrangian dual is used, exactly as the paper's evaluation does
// ("we apply the method of Lagrange multipliers to convert this
// constrained optimization problem to an unconstrained optimization
// problem, which is then solved using LBFGS"). Stationarity of
//
//	L(x, λ) = −Σ_j x_j log x_j + Σ_i λ_i ((A x)_i − c_i)
//
// gives x_j(λ) = exp((Aᵀλ)_j − 1), and the convex dual to minimize is
//
//	g(λ) = Σ_j exp((Aᵀλ)_j − 1) − λᵀc,   ∇g(λ) = A x(λ) − c.
//
// No explicit normalization is needed: the QI-invariant right-hand sides
// sum to 1, so feasibility of A x = c already pins the total mass.
package maxent

import (
	"math"

	"privacymaxent/internal/linalg"
)

// dualObjective implements solver.Objective for g(λ) over a reduced
// (presolved) constraint system.
type dualObjective struct {
	a   *linalg.CSR // m rows (constraints) × n cols (active variables)
	c   []float64   // right-hand sides, length m
	eta []float64   // scratch: (Aᵀλ), length n
	x   []float64   // scratch: primal x(λ), length n
	ax  []float64   // scratch: A x, length m
}

func newDualObjective(a *linalg.CSR, c []float64) *dualObjective {
	return &dualObjective{
		a:   a,
		c:   c,
		eta: make([]float64, a.Cols()),
		x:   make([]float64, a.Cols()),
		ax:  make([]float64, a.Rows()),
	}
}

// Dim is the number of Lagrange multipliers (one per constraint).
func (d *dualObjective) Dim() int { return d.a.Rows() }

// Eval computes g(λ) and its gradient. Exponents are evaluated directly;
// if λ wanders into overflow territory the +Inf propagates and the
// strong-Wolfe line search backs off.
func (d *dualObjective) Eval(lambda, grad []float64) float64 {
	d.a.MulTVec(lambda, d.eta)
	var sumExp float64
	for j, e := range d.eta {
		v := math.Exp(e - 1)
		d.x[j] = v
		sumExp += v
	}
	f := sumExp - linalg.Dot(lambda, d.c)
	d.a.MulVec(d.x, d.ax)
	for i := range grad {
		grad[i] = d.ax[i] - d.c[i]
	}
	return f
}

// Primal recovers x(λ) into dst (length = number of active variables).
func (d *dualObjective) Primal(lambda, dst []float64) {
	d.a.MulTVec(lambda, d.eta)
	for j, e := range d.eta {
		dst[j] = math.Exp(e - 1)
	}
}

// Hessian writes ∇²g(λ) = A·diag(x(λ))·Aᵀ into h, enabling Newton's
// method on duals with few constraints.
func (d *dualObjective) Hessian(lambda []float64, h [][]float64) {
	d.a.MulTVec(lambda, d.eta)
	for j, e := range d.eta {
		d.x[j] = math.Exp(e - 1)
	}
	m := d.a.Rows()
	for i := 0; i < m; i++ {
		row := h[i]
		for k := range row {
			row[k] = 0
		}
	}
	// Accumulate Σ_j x_j a_j a_jᵀ column by column: for every variable j,
	// the rows touching it contribute pairwise products.
	touch := make([][]int, d.a.Cols())
	coeff := make([][]float64, d.a.Cols())
	for r := 0; r < m; r++ {
		cols, vals := d.a.Row(r)
		for k, cIdx := range cols {
			touch[cIdx] = append(touch[cIdx], r)
			coeff[cIdx] = append(coeff[cIdx], vals[k])
		}
	}
	for j := range touch {
		xj := d.x[j]
		rows := touch[j]
		cs := coeff[j]
		for a := range rows {
			for b := range rows {
				h[rows[a]][rows[b]] += xj * cs[a] * cs[b]
			}
		}
	}
}
