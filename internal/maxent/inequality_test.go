package maxent

import (
	"math"
	"testing"

	"privacymaxent/internal/constraint"
	"privacymaxent/internal/solver"
)

// ineqKnowledgeTerm builds the terms/coeffs of P(q3, s3) = P(q3,s3,1) +
// P(q3,s3,2) over the paper space.
func ineqKnowledgeTerm(t *testing.T, sp *constraint.Space) []int {
	t.Helper()
	var terms []int
	for b := 0; b < 2; b++ {
		id, ok := sp.Index(constraint.Term{QID: 2, SA: 2, Bucket: b})
		if !ok {
			t.Fatal("term missing")
		}
		terms = append(terms, id)
	}
	return terms
}

func TestInequalityInactiveBoxMatchesUnconstrained(t *testing.T) {
	_, _, sp, sys := paperSystem(t)
	terms := ineqKnowledgeTerm(t, sp)
	// The closed form puts P(q3,s3) = P(q3,s3,1)+P(q3,s3,2) =
	// 0.1*0.2/0.4 + 0.1*(1/10)/0.3 = 0.05 + 0.0333... ≈ 0.0833. A box
	// [0, 0.5] does not bind.
	ineq := Inequality{Terms: terms, Coeffs: []float64{1, 1}, Lo: 0, Hi: 0.5}
	sol, err := SolveWithInequalities(sys, []Inequality{ineq}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := Uniform(sp)
	for i := range want {
		if math.Abs(sol.X[i]-want[i]) > 1e-5 {
			t.Fatalf("x[%d] = %g, want %g (box should be inactive)", i, sol.X[i], want[i])
		}
	}
	if sol.Stats.MaxViolation > 1e-6 {
		t.Fatalf("violation %g", sol.Stats.MaxViolation)
	}
}

func TestInequalityBindingUpperBound(t *testing.T) {
	_, _, sp, sys := paperSystem(t)
	terms := ineqKnowledgeTerm(t, sp)
	// Force P(q3,s3) ≤ 0.04, below the unconstrained 0.0833: the bound
	// must bind (solution sits at 0.04 within tolerance).
	ineq := Inequality{Terms: terms, Coeffs: []float64{1, 1}, Lo: 0, Hi: 0.04}
	sol, err := SolveWithInequalities(sys, []Inequality{ineq}, Options{Solver: solver.Options{MaxIterations: 20000, GradTol: 1e-9}})
	if err != nil {
		t.Fatal(err)
	}
	got := sol.X[terms[0]] + sol.X[terms[1]]
	if got > 0.04+1e-6 {
		t.Fatalf("P(q3,s3) = %g, exceeds bound 0.04", got)
	}
	if got < 0.04-1e-4 {
		t.Fatalf("P(q3,s3) = %g, bound should bind near 0.04", got)
	}
	if sol.Stats.MaxViolation > 1e-5 {
		t.Fatalf("violation %g", sol.Stats.MaxViolation)
	}
}

func TestInequalityTightBoxMatchesEquality(t *testing.T) {
	// Lo = Hi = 0.1 must reproduce the equality-constrained solution of
	// the Sec. 5.5 example P(s3|q3) = 0.5.
	tbl, d, sp, sysIneq := paperSystem(t)
	terms := ineqKnowledgeTerm(t, sp)
	ineq := Inequality{Terms: terms, Coeffs: []float64{1, 1}, Lo: 0.1, Hi: 0.1}
	solIneq, err := SolveWithInequalities(sysIneq, []Inequality{ineq}, Options{Solver: solver.Options{MaxIterations: 50000, GradTol: 1e-10}})
	if err != nil {
		t.Fatal(err)
	}

	_, _, _, sysEq := paperSystem(t)
	s3 := tbl.Schema().SA().MustCode("Pneumonia")
	if err := constraint.AddKnowledge(sysEq, knowledgeFor(tbl, d, 2, s3, 0.5)); err != nil {
		t.Fatal(err)
	}
	solEq, err := Solve(sysEq, Options{Solver: solver.Options{GradTol: 1e-11}})
	if err != nil {
		t.Fatal(err)
	}
	for i := range solEq.X {
		if math.Abs(solIneq.X[i]-solEq.X[i]) > 1e-4 {
			t.Fatalf("x[%d]: inequality %g vs equality %g", i, solIneq.X[i], solEq.X[i])
		}
	}
}

func TestVagueKnowledge(t *testing.T) {
	tbl, d, sp, sys := paperSystem(t)
	s3 := tbl.Schema().SA().MustCode("Pneumonia")
	k := knowledgeFor(tbl, d, 2, s3, 0.9)
	// "P(s3|q3) is about 0.9, give or take 0.1" — the box is
	// [0.8, 1.0]·P(q3) = [0.16, 0.2].
	ineq, err := VagueKnowledge(sp, k, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ineq.Lo-0.16) > 1e-12 || math.Abs(ineq.Hi-0.2) > 1e-12 {
		t.Fatalf("box = [%g, %g], want [0.16, 0.2]", ineq.Lo, ineq.Hi)
	}
	sol, err := SolveWithInequalities(sys, []Inequality{ineq}, Options{Solver: solver.Options{MaxIterations: 20000}})
	if err != nil {
		t.Fatal(err)
	}
	got := sol.X[ineq.Terms[0]] + sol.X[ineq.Terms[1]]
	if got < 0.16-1e-4 || got > 0.2+1e-6 {
		t.Fatalf("P(q3,s3) = %g, want within [0.16, 0.2]", got)
	}
	// The unconstrained value 0.0833 is below the box: the lower bound
	// must bind.
	if got > 0.17 {
		t.Fatalf("P(q3,s3) = %g, expected to sit near the binding lower bound 0.16", got)
	}
}

func TestVagueKnowledgeZeroProbability(t *testing.T) {
	tbl, d, sp, _ := paperSystem(t)
	s1 := tbl.Schema().SA().MustCode("Breast Cancer")
	k := knowledgeFor(tbl, d, 1, s1, 0)
	ineq, err := VagueKnowledge(sp, k, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ineq.Lo != 0 || ineq.Hi != 0 {
		t.Fatalf("box = [%g, %g], want [0, 0]", ineq.Lo, ineq.Hi)
	}
	// Non-zero vagueness around zero: [0, ε]·P(Qv).
	ineq, err = VagueKnowledge(sp, k, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if ineq.Lo != 0 || math.Abs(ineq.Hi-0.05) > 1e-12 {
		t.Fatalf("box = [%g, %g], want [0, 0.05] (= 0.25 * P(q2) = 0.25*0.2)", ineq.Lo, ineq.Hi)
	}
	if _, err := VagueKnowledge(sp, k, -1); err == nil {
		t.Fatal("expected error for negative vagueness")
	}
}

func TestInequalityValidation(t *testing.T) {
	_, _, sp, sys := paperSystem(t)
	terms := ineqKnowledgeTerm(t, sp)
	cases := []Inequality{
		{Terms: terms, Coeffs: []float64{1}, Lo: 0, Hi: 1},      // arity
		{Terms: []int{-1}, Coeffs: []float64{1}, Lo: 0, Hi: 1},  // range
		{Terms: terms, Coeffs: []float64{1, 1}, Lo: 1, Hi: 0.5}, // empty box
	}
	for i, q := range cases {
		if _, err := SolveWithInequalities(sys, []Inequality{q}, Options{}); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestInequalityNoInequalitiesMatchesSolve(t *testing.T) {
	_, _, sp, sys := paperSystem(t)
	sol, err := SolveWithInequalities(sys, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := Uniform(sp)
	for i := range want {
		if math.Abs(sol.X[i]-want[i]) > 1e-6 {
			t.Fatalf("x[%d] = %g, want %g", i, sol.X[i], want[i])
		}
	}
}
