package maxent

import (
	"fmt"
	"math"

	"privacymaxent/internal/constraint"
	"privacymaxent/internal/linalg"
	"privacymaxent/internal/solver"
)

// gisResult reports a generalized-iterative-scaling run.
type gisResult struct {
	x          []float64
	iterations int
	converged  bool
}

// runGIS solves the reduced MaxEnt system with Darroch & Ratcliff's
// generalized iterative scaling [8], one of the maxent-specific methods
// the paper cites. GIS works on normalized models with non-negative
// features summing to a constant, so we (a) recover the active variables'
// total mass M from the surviving QI-invariant rows (every active
// variable appears in exactly one), (b) rescale targets to expectations
// c'_i = c_i / M, and (c) append the standard slack feature
// f₀(j) = C − Σ_i A_ij with C = max_j Σ_i A_ij.
//
// GIS requires every coefficient to be non-negative; systems with signed
// knowledge constraints must use LBFGS instead.
func runGIS(a *linalg.CSR, c []float64, red *reduced, opts Options) (gisResult, error) {
	n := a.Cols()
	m := a.Rows()

	// Validate coefficients and recover the active mass M.
	var mass float64
	haveQI := false
	for i, row := range red.rows {
		for _, v := range row.coeffs {
			if v < 0 {
				return gisResult{}, fmt.Errorf("maxent: GIS requires non-negative coefficients; constraint %q has %g (use LBFGS)", row.label, v)
			}
		}
		if row.kind == constraint.QIInvariant {
			mass += c[i]
			haveQI = true
		}
	}
	if !haveQI || mass <= 0 {
		return gisResult{}, fmt.Errorf("maxent: GIS could not determine total mass (no surviving QI-invariants)")
	}

	// Column feature sums and the slack feature.
	colSum := make([]float64, n)
	for r := 0; r < m; r++ {
		cols, vals := a.Row(r)
		for k, col := range cols {
			colSum[col] += vals[k]
		}
	}
	bigC := 0.0
	for _, s := range colSum {
		if s > bigC {
			bigC = s
		}
	}
	if bigC == 0 {
		return gisResult{}, fmt.Errorf("maxent: GIS given an all-zero constraint matrix")
	}
	slack := make([]float64, n)
	for j := range slack {
		slack[j] = bigC - colSum[j]
	}

	// Rescaled targets.
	target := make([]float64, m)
	var targetSum float64
	for i := range c {
		target[i] = c[i] / mass
		if target[i] < -presolveTol {
			return gisResult{}, &ErrInfeasible{Reason: fmt.Sprintf("constraint %q has negative target %g", red.rows[i].label, c[i])}
		}
		targetSum += target[i]
	}
	slackTarget := bigC - targetSum
	if slackTarget < -1e-9 {
		return gisResult{}, &ErrInfeasible{Reason: fmt.Sprintf("targets exceed feature budget by %g", -slackTarget)}
	}
	if slackTarget < 0 {
		slackTarget = 0
	}

	lambda := make([]float64, m)
	lambdaSlack := 0.0
	logp := make([]float64, n)
	p := make([]float64, n)
	expect := make([]float64, m)

	maxIter := opts.Solver.MaxIterations
	if maxIter <= 0 {
		maxIter = 2000
	}
	tol := opts.Solver.GradTol
	if tol <= 0 {
		tol = 1e-9
	}

	res := gisResult{x: make([]float64, n)}
	for iter := 0; iter < maxIter; iter++ {
		if opts.Solver.Interrupt != nil && opts.Solver.Interrupt() {
			return gisResult{}, solver.ErrInterrupted
		}
		// Model distribution p_j ∝ exp(Σ_i λ_i A_ij + λ₀ f₀(j)),
		// normalized via log-sum-exp for stability.
		for j := range logp {
			logp[j] = lambdaSlack * slack[j]
		}
		for r := 0; r < m; r++ {
			if lambda[r] == 0 {
				continue
			}
			cols, vals := a.Row(r)
			for k, col := range cols {
				logp[col] += lambda[r] * vals[k]
			}
		}
		maxLog := math.Inf(-1)
		for _, v := range logp {
			if v > maxLog {
				maxLog = v
			}
		}
		var z float64
		for j, v := range logp {
			p[j] = math.Exp(v - maxLog)
			z += p[j]
		}
		inv := 1 / z
		for j := range p {
			p[j] *= inv
		}

		// Expectations and convergence check (in original mass units, so
		// the tolerance is comparable to the dual gradient norm).
		a.MulVec(p, expect)
		var slackExpect float64
		for j := range p {
			slackExpect += slack[j] * p[j]
		}
		worst := math.Abs(slackExpect-slackTarget) * mass
		for i := range expect {
			if dev := math.Abs(expect[i]-target[i]) * mass; dev > worst {
				worst = dev
			}
		}
		res.iterations = iter + 1
		if tr := opts.Solver.Trace; tr != nil {
			// Same per-iteration event shape as the dual solvers: rounds
			// are 1-based (no pre-step event), the objective is the
			// entropy of the current model in mass units, and the
			// "gradient" is the worst deviation the convergence test uses.
			tr(solver.TraceEvent{Iteration: iter + 1, F: scaledEntropy(p, mass), GradNorm: worst})
		}
		if worst <= tol {
			res.converged = true
			break
		}

		// Scaling update: λ_i += ln(target_i / E_i) / C.
		for i := range lambda {
			switch {
			case target[i] <= presolveTol:
				// Presolve removes zero-target positive rows; a residual
				// one means the mass must vanish: push hard.
				lambda[i] -= 50
			case expect[i] <= 0:
				return gisResult{}, &ErrInfeasible{Reason: fmt.Sprintf("constraint %q wants mass %g but model can place none", red.rows[i].label, c[i])}
			default:
				lambda[i] += math.Log(target[i]/expect[i]) / bigC
			}
		}
		if slackTarget > presolveTol && slackExpect > 0 {
			lambdaSlack += math.Log(slackTarget/slackExpect) / bigC
		}
	}

	for j := range p {
		res.x[j] = mass * p[j]
	}
	return res, nil
}

// scaledEntropy is H(mass·p) = −Σ_j (mass·p_j) ln(mass·p_j), the entropy
// contribution of the active variables at the scaling iterate — the
// trajectory objective the scaling algorithms report in place of a dual
// value.
func scaledEntropy(p []float64, mass float64) float64 {
	var h float64
	for _, pj := range p {
		if v := mass * pj; v > 0 {
			h -= v * math.Log(v)
		}
	}
	return h
}
