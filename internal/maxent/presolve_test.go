package maxent

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"privacymaxent/internal/constraint"
)

// row is a test helper building rowData.
func row(rhs float64, kind constraint.Kind, label string, terms ...int) rowData {
	coeffs := make([]float64, len(terms))
	for i := range coeffs {
		coeffs[i] = 1
	}
	return rowData{terms: terms, coeffs: coeffs, rhs: rhs, label: label, kind: kind}
}

func TestPresolveZeroPropagation(t *testing.T) {
	// x0 + x1 = 0 pins both; then x2 + x1 = 0.3 becomes a singleton
	// pinning x2; x3 stays active via x3 + x4 = 0.5.
	rows := []rowData{
		row(0, constraint.Knowledge, "zero", 0, 1),
		row(0.3, constraint.QIInvariant, "single", 2, 1),
		row(0.5, constraint.QIInvariant, "free", 3, 4),
	}
	red, err := presolve(5, rows)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range []int{0, 1, 2} {
		if !red.fixed[j] {
			t.Fatalf("x%d not fixed", j)
		}
	}
	if red.value[0] != 0 || red.value[1] != 0 {
		t.Fatalf("zero row values = %v", red.value[:2])
	}
	if math.Abs(red.value[2]-0.3) > 1e-15 {
		t.Fatalf("x2 = %g, want 0.3", red.value[2])
	}
	if len(red.active) != 2 || red.numFixed() != 3 {
		t.Fatalf("active = %v, fixed = %d", red.active, red.numFixed())
	}
	if len(red.rows) != 1 || red.rows[0].label != "free" {
		t.Fatalf("surviving rows = %+v", red.rows)
	}
}

func TestPresolveSingletonChain(t *testing.T) {
	// A chain of singletons: x0 = 0.1; x0 + x1 = 0.3 -> x1 = 0.2;
	// x1 + x2 = 0.6 -> x2 = 0.4.
	rows := []rowData{
		row(0.1, constraint.QIInvariant, "a", 0),
		row(0.3, constraint.QIInvariant, "b", 0, 1),
		row(0.6, constraint.QIInvariant, "c", 1, 2),
	}
	red, err := presolve(3, rows)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.1, 0.2, 0.4}
	for j, w := range want {
		if !red.fixed[j] || math.Abs(red.value[j]-w) > 1e-12 {
			t.Fatalf("x%d = (%v, %g), want %g", j, red.fixed[j], red.value[j], w)
		}
	}
	if len(red.active) != 0 {
		t.Fatalf("active = %v, want none", red.active)
	}
}

func TestPresolveInfeasibleEmptyRow(t *testing.T) {
	rows := []rowData{
		row(0, constraint.Knowledge, "zero", 0, 1),
		row(0.5, constraint.QIInvariant, "conflict", 0, 1),
	}
	_, err := presolve(2, rows)
	var inf *ErrInfeasible
	if !errors.As(err, &inf) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestPresolveInfeasibleNegativeSingleton(t *testing.T) {
	rows := []rowData{
		row(0.5, constraint.QIInvariant, "a", 0),
		row(0.2, constraint.QIInvariant, "b", 0, 1), // forces x1 = -0.3
	}
	_, err := presolve(2, rows)
	var inf *ErrInfeasible
	if !errors.As(err, &inf) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestPresolveRePinConflict(t *testing.T) {
	rows := []rowData{
		row(0.1, constraint.Knowledge, "a", 0),
		row(0.2, constraint.Knowledge, "b", 0),
	}
	_, err := presolve(1, rows)
	var inf *ErrInfeasible
	if !errors.As(err, &inf) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
	// Re-pinning to the same value is fine.
	rows = []rowData{
		row(0.1, constraint.Knowledge, "a", 0),
		row(0.1, constraint.Knowledge, "b", 0),
	}
	if _, err := presolve(1, rows); err != nil {
		t.Fatal(err)
	}
}

func TestPresolveNegativeCoefficientRowsSurvive(t *testing.T) {
	// A zero-RHS row with a negative coefficient must NOT zero its
	// variables (x0 − x1 = 0 admits any x0 = x1).
	rows := []rowData{
		{terms: []int{0, 1}, coeffs: []float64{1, -1}, rhs: 0, label: "diff"},
		row(0.4, constraint.QIInvariant, "mass", 0, 1),
	}
	red, err := presolve(2, rows)
	if err != nil {
		t.Fatal(err)
	}
	if red.numFixed() != 0 || len(red.rows) != 2 {
		t.Fatalf("fixed = %d, rows = %d; want 0, 2", red.numFixed(), len(red.rows))
	}
}

func TestPresolveUnmentionedVariablesStayInert(t *testing.T) {
	rows := []rowData{row(0.5, constraint.QIInvariant, "a", 0, 1)}
	red, err := presolve(4, rows)
	if err != nil {
		t.Fatal(err)
	}
	if red.newIdx[2] != -1 || red.newIdx[3] != -1 {
		t.Fatal("unmentioned variables should not become active")
	}
	if red.fixed[2] || red.fixed[3] {
		t.Fatal("unmentioned variables should not be fixed")
	}
}

// TestPresolvePreservesSolutions is the key safety property: any
// non-negative solution of the original system assigns exactly the pinned
// values to the variables presolve fixes.
func TestPresolvePreservesSolutions(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		// Build a random feasible system: draw x* >= 0, derive RHS from
		// random subsets. Sparsify x* so zero rows appear.
		n := 3 + r.Intn(6)
		xStar := make([]float64, n)
		for j := range xStar {
			if r.Intn(2) == 0 {
				xStar[j] = r.Float64()
			}
		}
		var rows []rowData
		for i := 0; i < 2+r.Intn(5); i++ {
			var terms []int
			for j := 0; j < n; j++ {
				if r.Intn(2) == 0 {
					terms = append(terms, j)
				}
			}
			if len(terms) == 0 {
				continue
			}
			var rhs float64
			for _, j := range terms {
				rhs += xStar[j]
			}
			rows = append(rows, row(rhs, constraint.QIInvariant, "r", terms...))
		}
		red, err := presolve(n, rows)
		if err != nil {
			// Feasible by construction; presolve must not reject.
			return false
		}
		for j := 0; j < n; j++ {
			if red.fixed[j] && math.Abs(red.value[j]-xStar[j]) > 1e-9 {
				// Presolve may only pin a variable when every feasible
				// point agrees; since x* is feasible, pins must match it.
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}
